#!/usr/bin/env bash
# Fleet-tracing smoke test: a real multi-process topology (2 atlas_serve
# shards behind an atlas_router), one traced client predict through the
# router, then `atlas_client trace` pulling every process's span ring into
# one merged Chrome trace. Validates the PR-8 acceptance contract: at least
# one trace_id whose spans come from >= 2 distinct processes (pids) with a
# cross-process parent link (a span in one pid parented under a span id
# recorded by another pid).
#
# Usage: scripts/trace_topology_smoke.sh [build-dir]   (default: build)
set -euo pipefail

BUILD_DIR=${1:-build}
BIN=$(cd "$BUILD_DIR/tools" && pwd)
WORK=$(mktemp -d "${TMPDIR:-/tmp}/atlas_trace_smoke.XXXXXX")

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  for pid in "${PIDS[@]:-}"; do
    wait "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

# Ports: a randomized base keeps parallel CI runs off each other's toes.
BASE=$(( (RANDOM % 2000) + 17000 ))
PORT_A=$BASE
PORT_B=$((BASE + 1))
PORT_R=$((BASE + 2))

echo "== train a tiny model"
"$BIN/atlas_cli" train --scale 0.0025 --cycles 20 --epochs 1 \
  --out "$WORK/tiny.bin" --cache-dir "$WORK/cache" >/dev/null

echo "== generate a query design"
"$BIN/atlas_cli" gen --seed 2 --cells 300 --out "$WORK/query.v" >/dev/null

echo "== launch 2 shards + router (tracing enabled, admin gate open)"
"$BIN/atlas_serve" --models "tiny=$WORK/tiny.bin" --port "$PORT_A" \
  --allow-admin true --slow-ms 1 --trace-out "$WORK/shard_a.json" \
  2>"$WORK/shard_a.log" &
PIDS+=($!)
"$BIN/atlas_serve" --models "tiny=$WORK/tiny.bin" --port "$PORT_B" \
  --allow-admin true --slow-ms 1 --trace-out "$WORK/shard_b.json" \
  2>"$WORK/shard_b.log" &
PIDS+=($!)

for _ in $(seq 1 50); do
  if "$BIN/atlas_client" ping --port "$PORT_A" >/dev/null 2>&1 &&
     "$BIN/atlas_client" ping --port "$PORT_B" >/dev/null 2>&1; then
    break
  fi
  sleep 0.2
done

"$BIN/atlas_router" --backends "127.0.0.1:$PORT_A,127.0.0.1:$PORT_B" \
  --port "$PORT_R" --allow-admin true --trace-out "$WORK/router.json" \
  2>"$WORK/router.log" &
PIDS+=($!)

for _ in $(seq 1 50); do
  if "$BIN/atlas_client" ping --port "$PORT_R" >/dev/null 2>&1; then
    break
  fi
  sleep 0.2
done

echo "== traced predict through the router"
"$BIN/atlas_client" predict --port "$PORT_R" --model tiny \
  --in "$WORK/query.v" --cycles 20 --csv "$WORK/power.csv" \
  --trace-out "$WORK/client.json" >/dev/null
test -s "$WORK/power.csv"
test -s "$WORK/client.json"

echo "== fleet health and metrics surfaces answer"
"$BIN/atlas_client" health --port "$PORT_R" --json >/dev/null
"$BIN/atlas_client" metrics --port "$PORT_R" --fleet \
  | grep -q 'shard="router"'
"$BIN/atlas_client" metrics --port "$PORT_R" --fleet \
  | grep -q "shard=\"127.0.0.1:$PORT_A\""

echo "== pull the merged fleet trace"
"$BIN/atlas_client" trace --port "$PORT_R" --out "$WORK/merged.json" \
  --merge "$WORK/client.json"

echo "== validate cross-process linkage"
python3 - "$WORK/merged.json" <<'PY'
import json
import sys
from collections import defaultdict

doc = json.load(open(sys.argv[1]))
events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
procs = {e["pid"]: e["args"]["name"]
         for e in doc["traceEvents"]
         if e.get("ph") == "M" and e.get("name") == "process_name"}

by_trace = defaultdict(list)
for e in events:
    tid = e.get("args", {}).get("trace_id")
    if tid:
        by_trace[tid].append(e)

ok = False
for trace_id, spans in by_trace.items():
    pids = {e["pid"] for e in spans}
    if len(pids) < 2:
        continue
    span_pid = {e["args"]["span_id"]: e["pid"] for e in spans}
    for e in spans:
        parent = e["args"].get("parent_span_id")
        if parent in span_pid and span_pid[parent] != e["pid"]:
            names = sorted(procs.get(p, str(p)) for p in pids)
            print(f"  trace {trace_id}: {len(spans)} spans across "
                  f"{len(pids)} processes ({', '.join(names)}); "
                  f"cross-process link {e['name']} <- pid {span_pid[parent]}")
            ok = True
            break
    if ok:
        break

if not ok:
    sys.exit("FAIL: no trace spans >= 2 processes with a cross-pid "
             "parent link")
print("OK: merged fleet trace links client/router/shard spans")
PY

echo "== drained rings stay drained"
"$BIN/atlas_client" trace --port "$PORT_R" --out "$WORK/second.json"
python3 - "$WORK/second.json" <<'PY'
import json
import sys

doc = json.load(open(sys.argv[1]))
names = [e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"]
if "handle_predict" in names:
    sys.exit("FAIL: second trace pull still holds the drained predict spans")
print("OK: second pull is empty of the drained request")
PY

echo "PASS: trace topology smoke"
