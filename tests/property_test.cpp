// Property-based suites: invariants swept over seeds, designs and
// configurations (TEST_P), complementing the example-based unit tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "designgen/design_generator.h"
#include "layout/layout_flow.h"
#include "liberty/liberty_io.h"
#include "netlist/verilog_io.h"
#include "power/power_analyzer.h"
#include "power/vectorless.h"
#include "sim/simulator.h"
#include "transform/rewrite.h"
#include "util/rng.h"

namespace atlas {
namespace {

const liberty::Library& lib() {
  static const liberty::Library l = liberty::make_default_library();
  return l;
}

// ---------------------------------------------------------------------------
// Designs swept over seeds: structural invariants.
// ---------------------------------------------------------------------------

class DesignSeedTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  netlist::Netlist make() const {
    designgen::DesignSpec spec;
    spec.name = "p" + std::to_string(GetParam());
    spec.seed = GetParam();
    spec.target_cells = 700;
    spec.num_memories = 1;
    return designgen::generate_design(spec, lib());
  }
};

TEST_P(DesignSeedTest, AlwaysStructurallyValid) {
  const netlist::Netlist nl = make();
  EXPECT_NO_THROW(nl.check());
  EXPECT_GE(nl.num_cells(), 700u);
}

TEST_P(DesignSeedTest, EveryNetHasExactlyOneSource) {
  const netlist::Netlist nl = make();
  for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
    const auto& net = nl.net(n);
    EXPECT_TRUE(net.has_driver() != net.is_primary_input)
        << "net " << net.name << " must be cell-driven XOR primary input";
  }
}

TEST_P(DesignSeedTest, SubmodulePartitionIsExact) {
  const netlist::Netlist nl = make();
  std::size_t covered = 0;
  for (netlist::SubmoduleId sm = 0;
       sm < static_cast<netlist::SubmoduleId>(nl.submodules().size()); ++sm) {
    covered += nl.cells_in_submodule(sm).size();
  }
  EXPECT_EQ(covered, nl.num_cells());
}

TEST_P(DesignSeedTest, RegistersAllOnTheClock) {
  const netlist::Netlist nl = make();
  for (netlist::CellInstId id = 0; id < nl.num_cells(); ++id) {
    const auto& lc = nl.lib_cell(id);
    if (lc.func != liberty::CellFunc::kDff &&
        lc.func != liberty::CellFunc::kDffR) {
      continue;
    }
    EXPECT_EQ(nl.cell(id).pin_nets[1], nl.clock_net())
        << nl.cell(id).name << " must be clocked by the root clock at gate level";
  }
}

TEST_P(DesignSeedTest, FreeRunningActivityNeverDies) {
  // The heartbeat LFSR guarantees toggles in every cycle, even with inputs
  // frozen (workload spec with zero activity).
  const netlist::Netlist nl = make();
  sim::WorkloadSpec dead;
  dead.idle_activity = dead.compute_activity = dead.burst_activity = 0.0;
  dead.seed = GetParam();
  sim::CycleSimulator sim(nl);
  sim::StimulusGenerator stim(nl, dead);
  const sim::ToggleTrace t = sim.run(stim, 24);
  for (int c = 4; c < 24; ++c) {
    long long transitions = 0;
    for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
      if (n == nl.clock_net()) continue;
      transitions += t.transitions(c, n);
    }
    EXPECT_GT(transitions, 0) << "cycle " << c << " went fully static";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DesignSeedTest,
                         ::testing::Values(3u, 17u, 99u, 1234u, 888888u));

// ---------------------------------------------------------------------------
// Rewrite equivalence swept over rewrite seeds.
// ---------------------------------------------------------------------------

class RewriteSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RewriteSeedTest, PrimaryOutputsEquivalent) {
  const netlist::Netlist gate = designgen::generate_design(
      designgen::paper_design_spec(1, 0.002), lib());
  transform::RewriteConfig cfg;
  cfg.seed = GetParam();
  const netlist::Netlist plus = transform::apply_rewrites(gate, cfg);
  sim::CycleSimulator sg(gate), sp(plus);
  sim::StimulusGenerator stg(gate, sim::make_w2());
  sim::StimulusGenerator stp(plus, sim::make_w2());
  const auto tg = sg.run(stg, 25);
  const auto tp = sp.run(stp, 25);
  std::unordered_map<std::string, netlist::NetId> by_name;
  for (netlist::NetId n = 0; n < plus.num_nets(); ++n) {
    by_name.emplace(plus.net(n).name, n);
  }
  for (const netlist::NetId po : gate.primary_outputs()) {
    const auto it = by_name.find(gate.net(po).name);
    ASSERT_NE(it, by_name.end());
    for (int c = 0; c < 25; ++c) {
      ASSERT_EQ(tg.value(c, po), tp.value(c, it->second))
          << "seed " << GetParam() << " net " << gate.net(po).name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriteSeedTest,
                         ::testing::Values(1u, 2u, 5u, 42u, 31337u));

// ---------------------------------------------------------------------------
// Power accounting invariants across all six paper designs (small scale).
// ---------------------------------------------------------------------------

class PaperDesignTest : public ::testing::TestWithParam<int> {
 protected:
  netlist::Netlist make_gate() const {
    return designgen::generate_design(
        designgen::paper_design_spec(GetParam(), 0.0015), lib());
  }
};

TEST_P(PaperDesignTest, SubmodulePowerSumsToDesignEveryCycle) {
  const netlist::Netlist gate = make_gate();
  const layout::LayoutResult post = layout::run_layout(gate);
  sim::CycleSimulator sim(post.netlist);
  sim::StimulusGenerator stim(post.netlist, sim::make_w1());
  const auto trace = sim.run(stim, 15);
  const power::PowerResult r = power::analyze_power(post.netlist, trace);
  for (int c = 0; c < 15; ++c) {
    power::GroupPower sum;
    for (std::size_t sm = 0; sm < r.num_submodules(); ++sm) {
      sum += r.submodule(c, static_cast<netlist::SubmoduleId>(sm));
    }
    const auto& d = r.design(c);
    EXPECT_NEAR(sum.comb, d.comb, d.comb * 1e-9 + 1e-9);
    EXPECT_NEAR(sum.reg, d.reg, d.reg * 1e-9 + 1e-9);
    EXPECT_NEAR(sum.clock, d.clock, d.clock * 1e-9 + 1e-9);
    EXPECT_NEAR(sum.memory, d.memory, d.memory * 1e-9 + 1e-9);
  }
}

TEST_P(PaperDesignTest, PowerMonotoneInActivity) {
  // More input activity can only increase total switching energy.
  const netlist::Netlist gate = make_gate();
  auto avg_power = [&](double act) {
    sim::WorkloadSpec w = sim::make_w1();
    w.idle_activity = act * 0.2;
    w.compute_activity = act * 0.6;
    w.burst_activity = act;
    sim::CycleSimulator sim(gate);
    sim::StimulusGenerator stim(gate, w);
    const auto trace = sim.run(stim, 60);
    return power::analyze_power(gate, trace).average_design().total_no_memory();
  };
  const double lo = avg_power(0.1);
  const double hi = avg_power(0.9);
  EXPECT_GT(hi, lo);
}

TEST_P(PaperDesignTest, LayoutEquivalenceOnPrimaryOutputs) {
  const netlist::Netlist gate = make_gate();
  const layout::LayoutResult post = layout::run_layout(gate);
  sim::CycleSimulator sg(gate), sp(post.netlist);
  sim::StimulusGenerator stg(gate, sim::make_w1());
  sim::StimulusGenerator stp(post.netlist, sim::make_w1());
  const auto tg = sg.run(stg, 20);
  const auto tp = sp.run(stp, 20);
  std::unordered_map<std::string, netlist::NetId> by_name;
  for (netlist::NetId n = 0; n < post.netlist.num_nets(); ++n) {
    by_name.emplace(post.netlist.net(n).name, n);
  }
  for (const netlist::NetId po : gate.primary_outputs()) {
    const auto it = by_name.find(gate.net(po).name);
    ASSERT_NE(it, by_name.end());
    for (int c = 0; c < 20; ++c) {
      ASSERT_EQ(tg.value(c, po), tp.value(c, it->second))
          << "design C" << GetParam();
    }
  }
}

TEST_P(PaperDesignTest, VerilogRoundTripExact) {
  const netlist::Netlist gate = make_gate();
  const netlist::Netlist back =
      netlist::parse_verilog(netlist::write_verilog(gate), lib());
  ASSERT_EQ(back.num_cells(), gate.num_cells());
  for (netlist::CellInstId id = 0; id < gate.num_cells(); ++id) {
    ASSERT_EQ(back.cell(id).lib_cell, gate.cell(id).lib_cell);
    ASSERT_EQ(back.cell(id).submodule, gate.cell(id).submodule);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSix, PaperDesignTest, ::testing::Range(1, 7));

// ---------------------------------------------------------------------------
// Trace-level invariants.
// ---------------------------------------------------------------------------

TEST(TraceProperty, TransitionsConsistentWithValues) {
  const netlist::Netlist gate = designgen::generate_design(
      designgen::paper_design_spec(1, 0.002), lib());
  sim::CycleSimulator sim(gate);
  sim::StimulusGenerator stim(gate, sim::make_w1());
  const auto t = sim.run(stim, 40);
  const auto& clock_mask = sim.clock_net_mask();
  for (netlist::NetId n = 0; n < gate.num_nets(); ++n) {
    for (int c = 1; c < 40; ++c) {
      if (clock_mask[n]) {
        // Clock nets carry 0 or 2 transitions, never 1.
        EXPECT_NE(t.transitions(c, n), 1);
      } else {
        // Data nets: exactly one transition iff the value changed.
        const bool changed = t.value(c, n) != t.value(c - 1, n);
        EXPECT_EQ(t.transitions(c, n), changed ? 1 : 0)
            << gate.net(n).name << " cycle " << c;
      }
    }
  }
}

TEST(TraceProperty, TieNetsNeverToggle) {
  const netlist::Netlist gate = designgen::generate_design(
      designgen::paper_design_spec(2, 0.002), lib());
  sim::CycleSimulator sim(gate);
  sim::StimulusGenerator stim(gate, sim::make_w2());
  const auto t = sim.run(stim, 30);
  for (netlist::CellInstId id = 0; id < gate.num_cells(); ++id) {
    const auto f = gate.lib_cell(id).func;
    if (f != liberty::CellFunc::kTieHi && f != liberty::CellFunc::kTieLo) continue;
    const netlist::NetId out = gate.output_net(id);
    EXPECT_EQ(t.total_transitions(out), 0);
    EXPECT_EQ(t.value(10, out), f == liberty::CellFunc::kTieHi);
  }
}

// ---------------------------------------------------------------------------
// Liberty parser robustness sweep over malformed inputs.
// ---------------------------------------------------------------------------

class LibertyMalformedTest : public ::testing::TestWithParam<const char*> {};

TEST_P(LibertyMalformedTest, ThrowsInsteadOfCrashingOrHanging) {
  EXPECT_THROW(liberty::parse_library(GetParam()), std::exception);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LibertyMalformedTest,
    ::testing::Values("", "library", "library(", "library(x)", "library(x) {",
                      "library(x) { cell(", "library(x) { cell(Y) { ",
                      "library(x) { a : 1 }", "library(x) { \"unterminated",
                      "library(x) { /* open comment }",
                      "library(x) { cell(Y) { cell_function : \"NOPE\"; } }",
                      "notalibrary(x) { }"));

class VerilogMalformedTest : public ::testing::TestWithParam<const char*> {};

TEST_P(VerilogMalformedTest, ThrowsInsteadOfCrashingOrHanging) {
  EXPECT_THROW(netlist::parse_verilog(GetParam(), lib()), std::exception);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, VerilogMalformedTest,
    ::testing::Values("", "module", "module x", "module x (", "module x ();",
                      "module x (); wire", "module x (); wire a;",
                      "module x (); INV_X1 u0", "module x (); INV_X1 u0 (",
                      "module x (); INV_X1 u0 (.A(a)); endmodule",
                      "module x (); (* submodule = *) endmodule",
                      "module x (a); input a; input a2; NAND2_X1 u0 (.A(a), "
                      ".B(a2), .Y(a)); endmodule"));

// ---------------------------------------------------------------------------
// Vectorless statistics invariants across input assumptions.
// ---------------------------------------------------------------------------

class VectorlessSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(VectorlessSweepTest, StatisticsStayInRange) {
  const netlist::Netlist gate = designgen::generate_design(
      designgen::paper_design_spec(3, 0.0015), lib());
  power::VectorlessConfig cfg;
  cfg.input_toggle_density = GetParam();
  const auto stats = power::propagate_vectorless(gate, cfg);
  for (const auto& s : stats) {
    EXPECT_GE(s.p_high, 0.0);
    EXPECT_LE(s.p_high, 1.0);
    EXPECT_GE(s.toggle_density, 0.0);
    EXPECT_LE(s.toggle_density, 2.0);
  }
  const power::GroupPower p = power::vectorless_average_power(gate, cfg);
  EXPECT_GT(p.total(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Densities, VectorlessSweepTest,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 1.0));

// ---------------------------------------------------------------------------
// Library physics properties.
// ---------------------------------------------------------------------------

TEST(LibraryProperty, StrongerDrivesHaveMoreCapAreaLeakage) {
  const auto& l = lib();
  for (liberty::CellId id = 0; id < l.size(); ++id) {
    const auto up = l.next_drive_up(id);
    if (!up) continue;
    const auto& a = l.cell(id);
    const auto& b = l.cell(*up);
    EXPECT_GT(b.area_um2, a.area_um2) << a.name;
    EXPECT_GT(b.leakage_uw, a.leakage_uw) << a.name;
    const int out_a = a.output_pin();
    const int out_b = b.output_pin();
    if (out_a >= 0 && out_b >= 0) {
      EXPECT_GE(b.pins[static_cast<std::size_t>(out_b)].max_cap_ff,
                a.pins[static_cast<std::size_t>(out_a)].max_cap_ff)
          << a.name;
    }
  }
}

TEST(LibraryProperty, EnergyLutsAscendInLoad) {
  const auto& l = lib();
  for (liberty::CellId id = 0; id < l.size(); ++id) {
    const auto& c = l.cell(id);
    for (std::size_t i = 1; i < c.energy_index_ff.size(); ++i) {
      EXPECT_GT(c.energy_index_ff[i], c.energy_index_ff[i - 1]) << c.name;
      EXPECT_GE(c.energy_fj[i], c.energy_fj[i - 1]) << c.name;
    }
  }
}

TEST(LibraryProperty, EveryCombCellEvaluatesAllInputPatterns) {
  const auto& l = lib();
  for (liberty::CellId id = 0; id < l.size(); ++id) {
    const auto f = l.cell(id).func;
    if (!liberty::is_combinational(f) || liberty::is_clock_cell(f)) continue;
    const int n = liberty::comb_input_count(f);
    for (int pattern = 0; pattern < (1 << n); ++pattern) {
      bool in[3];
      for (int b = 0; b < n; ++b) in[b] = (pattern >> b) & 1;
      EXPECT_NO_THROW(liberty::eval_comb(f, in, n));
    }
  }
}

TEST(LibraryProperty, DualGatePairsAreComplements) {
  using liberty::CellFunc;
  const std::pair<CellFunc, CellFunc> duals[] = {
      {CellFunc::kAnd2, CellFunc::kNand2}, {CellFunc::kOr2, CellFunc::kNor2},
      {CellFunc::kAnd3, CellFunc::kNand3}, {CellFunc::kOr3, CellFunc::kNor3},
      {CellFunc::kXor2, CellFunc::kXnor2}};
  for (const auto& [pos, neg] : duals) {
    const int n = liberty::comb_input_count(pos);
    for (int pattern = 0; pattern < (1 << n); ++pattern) {
      bool in[3];
      for (int b = 0; b < n; ++b) in[b] = (pattern >> b) & 1;
      EXPECT_NE(liberty::eval_comb(pos, in, n), liberty::eval_comb(neg, in, n));
    }
  }
}

// ---------------------------------------------------------------------------
// Internal-energy LUT interpolation: the library.h contract is "linear
// interpolation, clamped extrapolation" — swept over random LUTs and loads.
// ---------------------------------------------------------------------------

class EnergyLutTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  /// A single-cell library whose LUT has `knots` strictly increasing index
  /// points and random non-negative energies.
  static liberty::Library lut_library(util::Rng& rng, int knots) {
    liberty::Library l("lut_test");
    liberty::Cell c;
    c.name = "LUT_X1";
    double x = rng.next_double(0.1, 2.0);
    for (int i = 0; i < knots; ++i) {
      c.energy_index_ff.push_back(x);
      c.energy_fj.push_back(rng.next_double(0.0, 50.0));
      x += rng.next_double(0.5, 10.0);
    }
    l.add_cell(std::move(c));
    return l;
  }
};

TEST_P(EnergyLutTest, ClampedExtrapolationAtBothEnds) {
  util::Rng rng(GetParam());
  for (const int knots : {1, 2, 3, 7}) {
    const liberty::Library l = lut_library(rng, knots);
    const auto& c = l.cell(0);
    const double lo = c.energy_index_ff.front();
    const double hi = c.energy_index_ff.back();
    // Below the first knot (including 0 and negative loads): first energy.
    EXPECT_EQ(l.internal_energy_fj(0, lo - rng.next_double(0.0, 100.0)),
              c.energy_fj.front());
    EXPECT_EQ(l.internal_energy_fj(0, lo), c.energy_fj.front());
    // Above the last knot: last energy, no matter how far out.
    EXPECT_EQ(l.internal_energy_fj(0, hi + rng.next_double(0.0, 1e6)),
              c.energy_fj.back());
    EXPECT_EQ(l.internal_energy_fj(0, hi), c.energy_fj.back());
  }
}

TEST_P(EnergyLutTest, ExactAtKnotsAndBoundedBetweenThem) {
  util::Rng rng(GetParam());
  const liberty::Library l = lut_library(rng, 6);
  const auto& c = l.cell(0);
  for (std::size_t i = 0; i < c.energy_index_ff.size(); ++i) {
    EXPECT_NEAR(l.internal_energy_fj(0, c.energy_index_ff[i]), c.energy_fj[i],
                1e-9);
  }
  // Any interior load lands within [min, max] of its bracketing knots, and
  // linearity holds: the midpoint is the average of the segment endpoints.
  for (std::size_t i = 0; i + 1 < c.energy_index_ff.size(); ++i) {
    const double x0 = c.energy_index_ff[i], x1 = c.energy_index_ff[i + 1];
    const double y0 = c.energy_fj[i], y1 = c.energy_fj[i + 1];
    const double load = rng.next_double(x0, x1);
    const double y = l.internal_energy_fj(0, load);
    EXPECT_GE(y, std::min(y0, y1) - 1e-9);
    EXPECT_LE(y, std::max(y0, y1) + 1e-9);
    EXPECT_NEAR(l.internal_energy_fj(0, 0.5 * (x0 + x1)), 0.5 * (y0 + y1),
                1e-9);
  }
}

TEST_P(EnergyLutTest, EmptyLutDrawsNoEnergy) {
  liberty::Library l("lut_test");
  liberty::Cell c;
  c.name = "MACRO";  // macros carry no LUT (access energies instead)
  l.add_cell(std::move(c));
  util::Rng rng(GetParam());
  EXPECT_EQ(l.internal_energy_fj(0, rng.next_double(0.0, 100.0)), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnergyLutTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99991u));

}  // namespace
}  // namespace atlas
