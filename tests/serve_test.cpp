// End-to-end and robustness tests for the atlas_serve subsystem.
//
// A tiny ATLAS model is trained once for the whole suite; each test spins
// up an in-process Server on an ephemeral loopback port (or a Unix socket)
// and talks to it through the real client library / raw sockets, so the
// full wire path — framing, dispatch batching, feature cache, GBDT heads —
// is exercised exactly as the daemon runs it.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "atlas/finetune.h"
#include "atlas/model.h"
#include "atlas/preprocess.h"
#include "atlas/pretrain.h"
#include "designgen/design_generator.h"
#include "graph/submodule_graph.h"
#include "liberty/liberty_io.h"
#include "netlist/verilog_io.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/feature_cache.h"
#include "serve/server.h"
#include "serve/stats.h"
#include "sim/delta_trace.h"
#include "sim/external_trace.h"
#include "sim/simulator.h"
#include "sim/stimulus.h"
#include "sim/vcd.h"
#include "util/arena.h"
#include "util/hash.h"
#include "util/parallel.h"
#include "util/serialize.h"

namespace atlas::serve {
namespace {

constexpr int kCycles = 20;

/// Expensive shared state: a trained tiny model, a query design's Verilog
/// text, and the reference prediction computed directly (no server).
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = new liberty::Library(liberty::make_default_library());

    core::PreprocessConfig pcfg;
    pcfg.cycles = 40;
    const core::DesignData train = core::prepare_design(
        designgen::paper_design_spec(1, 0.0025), *lib_, pcfg);

    core::PretrainConfig pre_cfg;
    pre_cfg.epochs = 1;
    pre_cfg.cycles_per_graph = 1;
    pre_cfg.dim = 16;
    core::PretrainResult pre = core::pretrain_encoder({&train}, pre_cfg);
    core::FinetuneConfig fcfg;
    fcfg.gbdt.n_trees = 20;
    fcfg.cycle_stride = 4;
    core::GroupModels models =
        core::finetune_models({&train}, pre.encoder, fcfg);
    model_ = new std::shared_ptr<const core::AtlasModel>(
        std::make_shared<const core::AtlasModel>(std::move(pre.encoder),
                                                 std::move(models)));

    // Query design: generation only (no layout/golden needed to predict).
    const netlist::Netlist query = designgen::generate_design(
        designgen::paper_design_spec(2, 0.0025), *lib_);
    verilog_ = new std::string(netlist::write_verilog(query));

    expected_w1_ = new core::Prediction(direct_predict("w1"));
  }

  static void TearDownTestSuite() {
    delete expected_w1_;
    delete verilog_;
    delete model_;
    delete lib_;
    expected_w1_ = nullptr;
    verilog_ = nullptr;
    model_ = nullptr;
    lib_ = nullptr;
  }

  /// The exact computation the server performs, done inline: parse the
  /// request text against `lib`, build graphs, simulate, predict with
  /// `model`.
  static core::Prediction direct_predict_with(const core::AtlasModel& model,
                                              const liberty::Library& lib,
                                              const std::string& workload) {
    netlist::Netlist gate = netlist::parse_verilog(*verilog_, lib);
    const auto graphs = graph::build_submodule_graphs(gate);
    sim::CycleSimulator simulator(gate);
    sim::WorkloadSpec spec = workload == "w2" ? sim::make_w2() : sim::make_w1();
    sim::StimulusGenerator stimulus(gate, spec);
    const sim::ToggleTrace trace = simulator.run(stimulus, kCycles);
    return model.predict(gate, graphs, trace);
  }

  static core::Prediction direct_predict(const std::string& workload) {
    return direct_predict_with(**model_, *lib_, workload);
  }

  /// A second standard-cell substrate: same cell names (so the query
  /// Verilog parses), internal-energy LUTs and leakage scaled 2x — a
  /// different library content hash and different graph features.
  static liberty::Library scaled_library() {
    liberty::Library out("atlas40lp_x2", lib_->voltage(),
                         lib_->clock_period_ns());
    for (liberty::Cell c : lib_->cells()) {
      for (double& e : c.energy_fj) e *= 2.0;
      c.leakage_uw *= 2.0;
      out.add_cell(std::move(c));
    }
    return out;
  }

  static std::shared_ptr<ModelRegistry> make_registry() {
    auto registry = std::make_shared<ModelRegistry>();
    registry->add("tiny", *model_);
    return registry;
  }

  static PredictRequest make_request(const std::string& workload = "w1",
                                     const std::string& model = "tiny") {
    PredictRequest req;
    req.model = model;
    req.netlist_verilog = *verilog_;
    req.workload = workload;
    req.cycles = kCycles;
    req.want_submodules = true;
    return req;
  }

  static void expect_matches_direct(const PredictResponse& resp,
                                    const core::Prediction& expected) {
    ASSERT_EQ(resp.num_cycles, expected.num_cycles);
    ASSERT_EQ(resp.num_submodules, expected.num_submodules);
    ASSERT_EQ(resp.design.size(), expected.design.size());
    for (std::size_t c = 0; c < expected.design.size(); ++c) {
      // Bit-identical, not approximately equal: the serve path must be the
      // same computation as a direct AtlasModel::predict call.
      EXPECT_EQ(resp.design[c].comb, expected.design[c].comb) << "cycle " << c;
      EXPECT_EQ(resp.design[c].reg, expected.design[c].reg) << "cycle " << c;
      EXPECT_EQ(resp.design[c].clock, expected.design[c].clock)
          << "cycle " << c;
    }
    ASSERT_EQ(resp.submodule.size(), expected.submodule.size());
    for (std::size_t i = 0; i < expected.submodule.size(); ++i) {
      EXPECT_EQ(resp.submodule[i].comb, expected.submodule[i].comb);
      EXPECT_EQ(resp.submodule[i].reg, expected.submodule[i].reg);
      EXPECT_EQ(resp.submodule[i].clock, expected.submodule[i].clock);
    }
  }

  /// Bit-exact comparison of per-cycle group power (no operator== on
  /// GroupPower: approximate comparison is the norm everywhere else).
  static bool same_bits(const std::vector<power::GroupPower>& a,
                        const std::vector<power::GroupPower>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].comb != b[i].comb || a[i].reg != b[i].reg ||
          a[i].clock != b[i].clock) {
        return false;
      }
    }
    return true;
  }

  static liberty::Library* lib_;
  static std::shared_ptr<const core::AtlasModel>* model_;
  static std::string* verilog_;
  static core::Prediction* expected_w1_;
};

liberty::Library* ServeTest::lib_ = nullptr;
std::shared_ptr<const core::AtlasModel>* ServeTest::model_ = nullptr;
std::string* ServeTest::verilog_ = nullptr;
core::Prediction* ServeTest::expected_w1_ = nullptr;

ServerConfig loopback_config() {
  ServerConfig cfg;
  cfg.host = "127.0.0.1";
  cfg.port = 0;  // ephemeral
  return cfg;
}

TEST_F(ServeTest, PingModelsAndStats) {
  Server server(loopback_config(), make_registry());
  server.start();
  Client client = Client::connect_tcp("127.0.0.1", server.port());
  client.ping();
  const auto models = client.models();
  ASSERT_EQ(models.size(), 1u);
  EXPECT_EQ(models[0].name, "tiny");
  EXPECT_EQ(models[0].encoder_dim, 16u);
  const std::string stats = client.stats_text();
  EXPECT_NE(stats.find("ping"), std::string::npos);
  EXPECT_NE(stats.find("cache:"), std::string::npos);
  server.stop();
}

TEST_F(ServeTest, HealthReportsRegistryCacheQueueAndDrainState) {
  Server server(loopback_config(), make_registry());
  server.start();
  Client client = Client::connect_tcp("127.0.0.1", server.port());

  const HealthResponse cold = client.health();
  EXPECT_EQ(cold.num_models, 1u);
  EXPECT_GE(cold.registry_generation, 1u);
  EXPECT_EQ(cold.cache_designs, 0u);
  EXPECT_EQ(cold.cache_total_bytes, 0u);
  EXPECT_EQ(cold.queue_depth, 0u);
  EXPECT_FALSE(cold.draining);

  // A predict leaves its footprint in the occupancy fields — the signal a
  // routing tier reads as "this shard is warm".
  client.predict(make_request());
  const HealthResponse warm = client.health();
  EXPECT_EQ(warm.cache_designs, 1u);
  EXPECT_GT(warm.cache_total_bytes, 0u);
  EXPECT_GT(warm.cache_embedding_bytes, 0u);
  EXPECT_LT(warm.cache_embedding_bytes, warm.cache_total_bytes);

  // After a Shutdown request the report flips to draining — richer than
  // ping, which keeps answering pong right up to the close.
  client.shutdown_server();
  EXPECT_TRUE(client.health().draining);
  client.ping();
  server.stop();
}

TEST_F(ServeTest, ModelListCarriesTheLibraryContentHash) {
  // The library content hash is the second component of the design-cache
  // key; a routing tier mixes it into placement, so it must travel on the
  // wire and match liberty::content_hash exactly.
  const auto x2 = std::make_shared<const liberty::Library>(scaled_library());
  auto registry = make_registry();
  registry->add("tiny_x2", *model_, x2);

  Server server(loopback_config(), registry);
  server.start();
  Client client = Client::connect_tcp("127.0.0.1", server.port());
  const auto models = client.models();
  ASSERT_EQ(models.size(), 2u);
  for (const ModelInfo& m : models) {
    const liberty::Library& lib = m.name == "tiny_x2" ? *x2 : *lib_;
    EXPECT_EQ(m.library_hash, liberty::content_hash(lib)) << m.name;
    EXPECT_NE(m.library_hash, 0u) << m.name;
  }
  EXPECT_NE(models[0].library_hash, models[1].library_hash);
  server.stop();
}

TEST_F(ServeTest, ClientTimeoutsBoundANeverAnsweringPeer) {
  // A listener nobody ever accepts from: the TCP handshake completes into
  // the kernel backlog, so connect succeeds — and then the reply never
  // comes. Without an IO timeout this hangs forever; with one it is a
  // deterministic bounded failure (this is the regression test for the
  // serve::Client timeout plumbing the router's prober depends on).
  int port = 0;
  util::Listener trap = util::Listener::tcp("127.0.0.1", port);

  ClientOptions options;
  options.connect_timeout_ms = 2000;
  options.io_timeout_ms = 250;
  const auto t0 = std::chrono::steady_clock::now();
  Client client = Client::connect_tcp("127.0.0.1", port, options);
  try {
    client.ping();
    FAIL() << "expected SocketError";
  } catch (const util::SocketError& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos)
        << e.what();
  }
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(elapsed_ms, 200);
  EXPECT_LT(elapsed_ms, 5000) << "timeout did not bound the wait";
}

TEST_F(ServeTest, ErrorCodeNamesAreStable) {
  EXPECT_STREQ(error_code_name(ErrorCode::kBadRequest), "kBadRequest");
  EXPECT_STREQ(error_code_name(ErrorCode::kUnknownModel), "kUnknownModel");
  EXPECT_STREQ(error_code_name(ErrorCode::kAdminDisabled), "kAdminDisabled");
  EXPECT_STREQ(error_code_name(ErrorCode::kStreamProtocol), "kStreamProtocol");
  EXPECT_STREQ(error_code_name(ErrorCode::kUnknownDesign), "kUnknownDesign");
  EXPECT_STREQ(error_code_name(static_cast<ErrorCode>(999)),
               "kUnknownErrorCode");
}

TEST_F(ServeTest, PredictBitIdenticalAndCachePath) {
  Server server(loopback_config(), make_registry());
  server.start();
  Client client = Client::connect_tcp("127.0.0.1", server.port());

  // Cold: no cache layer hit; results bit-identical to direct predict.
  const PredictResponse cold = client.predict(make_request());
  EXPECT_FALSE(cold.design_cache_hit());
  EXPECT_FALSE(cold.embedding_cache_hit());
  expect_matches_direct(cold, *expected_w1_);

  // Warm repeat: both layers hit (straight to the GBDT heads), same bits.
  const PredictResponse warm = client.predict(make_request());
  EXPECT_TRUE(warm.design_cache_hit());
  EXPECT_TRUE(warm.embedding_cache_hit());
  expect_matches_direct(warm, *expected_w1_);

  // Same design, new workload: graphs reused, encoder re-runs.
  const PredictResponse w2 = client.predict(make_request("w2"));
  EXPECT_TRUE(w2.design_cache_hit());
  EXPECT_FALSE(w2.embedding_cache_hit());
  expect_matches_direct(w2, direct_predict("w2"));

  const FeatureCacheStats cache = server.cache_stats();
  EXPECT_EQ(cache.design_hits, 2u);
  EXPECT_EQ(cache.design_misses, 1u);
  EXPECT_EQ(cache.embedding_hits, 1u);
  EXPECT_EQ(cache.embedding_misses, 2u);
  server.stop();
}

TEST_F(ServeTest, ConcurrentClientsAllBitIdentical) {
  ServerConfig cfg = loopback_config();
  cfg.batch_max = 4;
  Server server(cfg, make_registry());
  server.start();

  constexpr int kClients = 4;
  constexpr int kRequestsEach = 3;
  std::vector<std::vector<PredictResponse>> results(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      Client client = Client::connect_tcp("127.0.0.1", server.port());
      for (int r = 0; r < kRequestsEach; ++r) {
        results[static_cast<std::size_t>(t)].push_back(
            client.predict(make_request()));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (const auto& per_client : results) {
    ASSERT_EQ(per_client.size(), static_cast<std::size_t>(kRequestsEach));
    for (const PredictResponse& resp : per_client) {
      expect_matches_direct(resp, *expected_w1_);
    }
  }
  server.stop();
}

TEST_F(ServeTest, BadRequestsGetErrorResponsesNotCrashes) {
  Server server(loopback_config(), make_registry());
  server.start();
  Client client = Client::connect_tcp("127.0.0.1", server.port());

  PredictRequest unknown_model = make_request();
  unknown_model.model = "no_such_model";
  try {
    client.predict(unknown_model);
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnknownModel);
  }

  PredictRequest bad_workload = make_request();
  bad_workload.workload = "w9";
  try {
    client.predict(bad_workload);
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnknownWorkload);
  }

  PredictRequest bad_netlist = make_request();
  bad_netlist.netlist_verilog = "this is not verilog";
  try {
    client.predict(bad_netlist);
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
  }

  PredictRequest bad_cycles = make_request();
  bad_cycles.cycles = 0;
  try {
    client.predict(bad_cycles);
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
  }

  // The same connection still works after every rejection...
  client.ping();
  // ...and so does real work.
  expect_matches_direct(client.predict(make_request()), *expected_w1_);
  server.stop();
}

TEST_F(ServeTest, MalformedFramesNeverKillTheDaemon) {
  Server server(loopback_config(), make_registry());
  server.start();

  {
    // Garbage bytes where a frame header belongs (bad magic).
    util::Socket raw = util::connect_tcp("127.0.0.1", server.port());
    const char junk[32] = "XXXXYYYYZZZZ0123456789abcdefghi";
    raw.send_all(junk, sizeof(junk));
    // Server answers with an error frame (best effort) and disconnects.
    Frame resp;
    try {
      if (read_frame(raw, resp)) {
        EXPECT_EQ(resp.type, MsgType::kError);
      }
    } catch (const std::exception&) {
      // A clean disconnect is equally acceptable.
    }
  }
  {
    // Valid magic, hostile declared length (1 EiB).
    util::Socket raw = util::connect_tcp("127.0.0.1", server.port());
    char header[16];
    std::memcpy(header, kFrameMagic, 4);
    const std::uint32_t type = static_cast<std::uint32_t>(MsgType::kPredict);
    const std::uint64_t len = 1ULL << 60;
    std::memcpy(header + 4, &type, 4);
    std::memcpy(header + 8, &len, 8);
    raw.send_all(header, sizeof(header));
    Frame resp;
    try {
      if (read_frame(raw, resp)) {
        ASSERT_EQ(resp.type, MsgType::kError);
        const ErrorResponse err = ErrorResponse::decode(resp.payload);
        EXPECT_EQ(err.code, ErrorCode::kBadRequest);
      }
    } catch (const std::exception&) {
    }
  }
  {
    // Truncated frame: declared 100-byte payload, send 3, disconnect.
    util::Socket raw = util::connect_tcp("127.0.0.1", server.port());
    char header[16];
    std::memcpy(header, kFrameMagic, 4);
    const std::uint32_t type = static_cast<std::uint32_t>(MsgType::kPredict);
    const std::uint64_t len = 100;
    std::memcpy(header + 4, &type, 4);
    std::memcpy(header + 8, &len, 8);
    raw.send_all(header, sizeof(header));
    raw.send_all("abc", 3);
    raw.close();
  }
  {
    // Undecodable predict payload (declared length consistent, bytes junk).
    util::Socket raw = util::connect_tcp("127.0.0.1", server.port());
    write_frame(raw, MsgType::kPredict, "junk payload");
    Frame resp;
    ASSERT_TRUE(read_frame(raw, resp));
    ASSERT_EQ(resp.type, MsgType::kError);
    EXPECT_EQ(ErrorResponse::decode(resp.payload).code,
              ErrorCode::kBadRequest);
  }

  // After all of that, the daemon serves a fresh client flawlessly.
  Client client = Client::connect_tcp("127.0.0.1", server.port());
  client.ping();
  expect_matches_direct(client.predict(make_request()), *expected_w1_);
  server.stop();
}

TEST_F(ServeTest, DeadlineExceededWhileQueued) {
  ServerConfig cfg = loopback_config();
  cfg.dispatch_delay_for_test_ms = 50;  // every batch waits 50ms
  Server server(cfg, make_registry());
  server.start();
  Client client = Client::connect_tcp("127.0.0.1", server.port());

  PredictRequest req = make_request();
  req.deadline_ms = 1;  // expires during the forced dispatch delay
  try {
    client.predict(req);
    FAIL() << "expected deadline error";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded);
  }

  // No deadline: the same request succeeds despite the delay.
  expect_matches_direct(client.predict(make_request()), *expected_w1_);
  server.stop();
}

TEST_F(ServeTest, StopDrainsInFlightRequests) {
  ServerConfig cfg = loopback_config();
  cfg.dispatch_delay_for_test_ms = 100;  // hold the request in the queue
  Server server(cfg, make_registry());
  server.start();

  PredictResponse resp;
  std::thread requester([&] {
    Client client = Client::connect_tcp("127.0.0.1", server.port());
    resp = client.predict(make_request());
  });
  // Let the request reach the queue, then stop: the server must answer it
  // before shutting down (graceful drain), not drop it.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.stop();
  requester.join();
  expect_matches_direct(resp, *expected_w1_);
}

TEST_F(ServeTest, ClientShutdownRequestIsHonored) {
  Server server(loopback_config(), make_registry());
  server.start();
  EXPECT_FALSE(server.stop_requested());
  Client client = Client::connect_tcp("127.0.0.1", server.port());
  client.shutdown_server();
  EXPECT_TRUE(server.stop_requested());
  server.wait_for_stop_request();
  server.stop();
}

TEST_F(ServeTest, UnixDomainSocketServesPredictions) {
  ServerConfig cfg;
  cfg.port = -1;  // TCP disabled
  cfg.unix_path = ::testing::TempDir() + "/atlas_serve_test.sock";
  Server server(cfg, make_registry());
  server.start();
  // UDS-only: the TCP port stays at its documented -1 sentinel (and the
  // startup log omits the port kv rather than printing port=-1).
  EXPECT_EQ(server.port(), -1);
  Client client = Client::connect_unix(cfg.unix_path);
  client.ping();
  expect_matches_direct(client.predict(make_request()), *expected_w1_);
  server.stop();
}

TEST_F(ServeTest, DeadlineExceededDuringCompute) {
  ServerConfig cfg = loopback_config();
  cfg.handler_delay_for_test_ms = 60;  // compute takes ~60ms, queue wait ~0
  Server server(cfg, make_registry());
  server.start();
  Client client = Client::connect_tcp("127.0.0.1", server.port());

  obs::Counter& errors = obs::Registry::global().counter(
      "atlas_serve_request_errors_total", "endpoint=\"predict\"");
  const std::uint64_t errors_before = errors.value();

  PredictRequest req = make_request();
  req.deadline_ms = 30;  // survives the queue, expires inside the handler
  try {
    client.predict(req);
    FAIL() << "expected deadline error";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded);
  }
  // The late result counted as an error, not a slow success.
  EXPECT_EQ(errors.value(), errors_before + 1);

  // Without a deadline the same slow request succeeds.
  expect_matches_direct(client.predict(make_request()), *expected_w1_);
  server.stop();
}

// ---- Streamed toggle-trace upload -----------------------------------------

TEST_F(ServeTest, StreamedTraceBitIdenticalToDiskTrace) {
  // Record the query design's w1 workload as VCD text — exactly what
  // `atlas_cli sim` writes to disk.
  netlist::Netlist gate = netlist::parse_verilog(*verilog_, *lib_);
  sim::CycleSimulator simulator(gate);
  sim::StimulusGenerator stimulus(gate, sim::make_w1());
  const sim::ToggleTrace sim_trace = simulator.run(stimulus, kCycles);
  const std::string vcd =
      sim::write_vcd(gate, sim_trace, simulator.clock_net_mask());

  // Reference: the offline path (`atlas_cli predict --vcd`) — same
  // ExternalTrace::resolve the server uses, so equality must be exact.
  const sim::ExternalTrace ext = sim::ExternalTrace::from_vcd_text(vcd);
  const auto graphs = graph::build_submodule_graphs(gate);
  const core::Prediction direct =
      (*model_)->predict(gate, graphs, ext.resolve(gate));

  Server server(loopback_config(), make_registry());
  server.start();
  Client client = Client::connect_tcp("127.0.0.1", server.port());

  StreamBeginRequest begin;
  begin.model = "tiny";
  begin.netlist_verilog = *verilog_;
  begin.cycles = kCycles;
  begin.want_submodules = true;

  // Tiny chunks so reassembly is genuinely multi-chunk.
  const PredictResponse cold = client.predict_stream(begin, vcd, 512);
  EXPECT_FALSE(cold.embedding_cache_hit());
  expect_matches_direct(cold, direct);

  // Same trace content again: its hash pins the embedding entry, so the
  // warm path skips the VCD parse entirely and still matches exactly.
  const PredictResponse warm = client.predict_stream(begin, vcd, 512);
  EXPECT_TRUE(warm.design_cache_hit());
  EXPECT_TRUE(warm.embedding_cache_hit());
  expect_matches_direct(warm, direct);

  const FeatureCacheStats cache = server.cache_stats();
  EXPECT_EQ(cache.embedding_hits, 1u);
  server.stop();
}

TEST_F(ServeTest, StreamProtocolViolationsAreRejectedCleanly) {
  Server server(loopback_config(), make_registry());
  server.start();

  const auto expect_error = [](util::Socket& raw, ErrorCode want) {
    Frame resp;
    ASSERT_TRUE(read_frame(raw, resp));
    ASSERT_EQ(resp.type, MsgType::kError);
    EXPECT_EQ(ErrorResponse::decode(resp.payload).code, want);
  };
  const auto expect_ack = [](util::Socket& raw) {
    Frame resp;
    ASSERT_TRUE(read_frame(raw, resp));
    ASSERT_EQ(resp.type, MsgType::kStreamAck);
  };
  StreamBeginRequest begin;
  begin.model = "tiny";
  begin.netlist_verilog = *verilog_;
  begin.trace_bytes = 64;

  {
    // Chunk and End with no Begin.
    util::Socket raw = util::connect_tcp("127.0.0.1", server.port());
    StreamChunk chunk;
    chunk.data = "x";
    write_frame(raw, MsgType::kStreamChunk, chunk.encode());
    expect_error(raw, ErrorCode::kStreamProtocol);
    write_frame(raw, MsgType::kStreamEnd, StreamEndRequest{}.encode());
    expect_error(raw, ErrorCode::kStreamProtocol);
  }
  {
    // Begin while a stream is active discards the partial upload.
    util::Socket raw = util::connect_tcp("127.0.0.1", server.port());
    write_frame(raw, MsgType::kStreamBegin, begin.encode());
    expect_ack(raw);
    write_frame(raw, MsgType::kStreamBegin, begin.encode());
    expect_error(raw, ErrorCode::kStreamProtocol);
    // The reset means a follow-up chunk has no stream either.
    StreamChunk chunk;
    chunk.data = "x";
    write_frame(raw, MsgType::kStreamChunk, chunk.encode());
    expect_error(raw, ErrorCode::kStreamProtocol);
  }
  {
    // Out-of-order chunk, then bytes beyond the declared size.
    util::Socket raw = util::connect_tcp("127.0.0.1", server.port());
    write_frame(raw, MsgType::kStreamBegin, begin.encode());
    expect_ack(raw);
    StreamChunk chunk;
    chunk.seq = 5;
    chunk.data = "x";
    write_frame(raw, MsgType::kStreamChunk, chunk.encode());
    expect_error(raw, ErrorCode::kStreamProtocol);

    write_frame(raw, MsgType::kStreamBegin, begin.encode());
    expect_ack(raw);
    chunk.seq = 0;
    chunk.data = std::string(100, 'x');  // declared 64
    write_frame(raw, MsgType::kStreamChunk, chunk.encode());
    expect_error(raw, ErrorCode::kStreamProtocol);
  }
  {
    // End totals that do not match what was assembled.
    util::Socket raw = util::connect_tcp("127.0.0.1", server.port());
    write_frame(raw, MsgType::kStreamBegin, begin.encode());
    expect_ack(raw);
    StreamChunk chunk;
    chunk.data = std::string(32, 'x');
    write_frame(raw, MsgType::kStreamChunk, chunk.encode());
    expect_ack(raw);
    StreamEndRequest end;
    end.total_chunks = 1;
    end.total_bytes = 64;  // only 32 arrived
    write_frame(raw, MsgType::kStreamEnd, end.encode());
    expect_error(raw, ErrorCode::kStreamProtocol);
  }
  {
    // Hostile declared sizes are rejected at Begin, before any chunk.
    util::Socket raw = util::connect_tcp("127.0.0.1", server.port());
    StreamBeginRequest huge = begin;
    huge.trace_bytes = 1ULL << 60;
    write_frame(raw, MsgType::kStreamBegin, huge.encode());
    expect_error(raw, ErrorCode::kStreamProtocol);
    StreamBeginRequest empty = begin;
    empty.trace_bytes = 0;
    write_frame(raw, MsgType::kStreamBegin, empty.encode());
    expect_error(raw, ErrorCode::kStreamProtocol);
  }
  {
    // A complete, well-formed stream whose payload is not VCD: rejected at
    // predict time, connection survives.
    Client client = Client::connect_tcp("127.0.0.1", server.port());
    StreamBeginRequest bad = begin;
    try {
      client.predict_stream(bad, "this is not a vcd file");
      FAIL() << "expected ServeError";
    } catch (const ServeError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
    }
    client.ping();
  }
  {
    // Abandoned mid-stream upload: its state dies with the connection.
    util::Socket raw = util::connect_tcp("127.0.0.1", server.port());
    write_frame(raw, MsgType::kStreamBegin, begin.encode());
    expect_ack(raw);
    StreamChunk chunk;
    chunk.data = std::string(32, 'x');
    write_frame(raw, MsgType::kStreamChunk, chunk.encode());
    expect_ack(raw);
    raw.close();
  }

  // After all of that the daemon still serves a fresh client.
  Client client = Client::connect_tcp("127.0.0.1", server.port());
  expect_matches_direct(client.predict(make_request()), *expected_w1_);
  server.stop();
}

TEST_F(ServeTest, StreamDeadlineCoversAssembly) {
  Server server(loopback_config(), make_registry());
  server.start();
  util::Socket raw = util::connect_tcp("127.0.0.1", server.port());

  StreamBeginRequest begin;
  begin.model = "tiny";
  begin.netlist_verilog = *verilog_;
  begin.trace_bytes = 64;
  begin.deadline_ms = 1;
  write_frame(raw, MsgType::kStreamBegin, begin.encode());
  Frame resp;
  ASSERT_TRUE(read_frame(raw, resp));
  ASSERT_EQ(resp.type, MsgType::kStreamAck);

  // A slow client: the deadline expires between chunks.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  StreamChunk chunk;
  chunk.data = "x";
  write_frame(raw, MsgType::kStreamChunk, chunk.encode());
  ASSERT_TRUE(read_frame(raw, resp));
  ASSERT_EQ(resp.type, MsgType::kError);
  EXPECT_EQ(ErrorResponse::decode(resp.payload).code,
            ErrorCode::kDeadlineExceeded);
  server.stop();
}

// ---- Binary delta streams and design-by-hash --------------------------------

/// The query design's w1 trace in both wire encodings, plus the reference
/// prediction through the one ExternalTrace::resolve path they share.
struct DeltaFixture {
  netlist::Netlist gate;
  std::string vcd;
  std::string delta;
  core::Prediction direct;
};

DeltaFixture make_delta_fixture(const std::string& verilog,
                                const liberty::Library& lib,
                                const core::AtlasModel& model) {
  DeltaFixture f{netlist::parse_verilog(verilog, lib), {}, {}, {}};
  sim::CycleSimulator simulator(f.gate);
  sim::StimulusGenerator stimulus(f.gate, sim::make_w1());
  const sim::ToggleTrace trace = simulator.run(stimulus, kCycles);
  f.vcd = sim::write_vcd(f.gate, trace, simulator.clock_net_mask());
  f.delta = sim::write_delta(f.gate, trace, simulator.clock_net_mask());
  const auto graphs = graph::build_submodule_graphs(f.gate);
  f.direct = model.predict(
      f.gate, graphs,
      sim::ExternalTrace::from_delta_bytes(f.delta).resolve(f.gate));
  return f;
}

StreamBeginRequest make_stream_begin(const std::string& verilog,
                                     TraceFormat format) {
  StreamBeginRequest begin;
  begin.model = "tiny";
  begin.netlist_verilog = verilog;
  begin.cycles = kCycles;
  begin.want_submodules = true;
  begin.format = format;
  return begin;
}

TEST_F(ServeTest, DeltaStreamBitIdenticalToVcdStreamAndDirect) {
  const DeltaFixture f = make_delta_fixture(*verilog_, *lib_, **model_);

  // The acceptance bar for the encoding: on a representative sparse-toggle
  // workload the delta must beat the VCD text by >= 10x on the wire.
  EXPECT_GE(static_cast<double>(f.vcd.size()),
            10.0 * static_cast<double>(f.delta.size()))
      << "vcd=" << f.vcd.size() << "B delta=" << f.delta.size() << "B";

  Server server(loopback_config(), make_registry());
  server.start();
  Client client = Client::connect_tcp("127.0.0.1", server.port());

  // VCD text stream first: it both checks cross-format identity and primes
  // the design cache for the delta stream.
  const PredictResponse via_vcd = client.predict_stream(
      make_stream_begin(*verilog_, TraceFormat::kVcdText), f.vcd, 512);
  expect_matches_direct(via_vcd, f.direct);

  // Same trace as a delta: same design entry, but the embedding cache keys
  // on the raw bytes' hash, so the first delta upload re-encodes...
  const StreamBeginRequest dbegin =
      make_stream_begin(*verilog_, TraceFormat::kToggleDelta);
  const PredictResponse cold = client.predict_stream(dbegin, f.delta, 512);
  EXPECT_TRUE(cold.design_cache_hit());
  EXPECT_FALSE(cold.embedding_cache_hit());
  expect_matches_direct(cold, f.direct);

  // ...and the repeat skips straight to the heads, still bit-identical.
  const PredictResponse warm = client.predict_stream(dbegin, f.delta, 512);
  EXPECT_TRUE(warm.embedding_cache_hit());
  expect_matches_direct(warm, f.direct);
  server.stop();
}

namespace {

std::string wire_varint(std::uint64_t v) {
  std::string s;
  while (v >= 0x80) {
    s.push_back(static_cast<char>(0x80 | (v & 0x7f)));
    v >>= 7;
  }
  s.push_back(static_cast<char>(v));
  return s;
}

/// Hand-built ATDT header for hostile-payload construction.
std::string wire_delta_header(std::uint64_t nets, std::uint64_t cycles,
                              std::uint64_t order) {
  std::string s("ATDT\x01", 5);
  s += wire_varint(nets);
  s += wire_varint(cycles);
  for (int i = 0; i < 8; ++i) {
    s.push_back(static_cast<char>((order >> (8 * i)) & 0xff));
  }
  return s;
}

}  // namespace

TEST_F(ServeTest, MalformedDeltaStreamsRejectedWithoutKillingConnection) {
  const DeltaFixture f = make_delta_fixture(*verilog_, *lib_, **model_);
  Server server(loopback_config(), make_registry());
  server.start();
  Client client = Client::connect_tcp("127.0.0.1", server.port());
  const StreamBeginRequest dbegin =
      make_stream_begin(*verilog_, TraceFormat::kToggleDelta);

  // Every hostile payload is a complete, protocol-correct stream whose
  // *bytes* are wrong: the structural walk at StreamEnd must answer
  // kStreamProtocol and the connection must keep serving.
  const auto rejected_at_stream_end = [&](const std::string& bytes) {
    try {
      client.predict_stream(dbegin, bytes);
      FAIL() << "expected ServeError for " << bytes.size() << "-byte payload";
    } catch (const ServeError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kStreamProtocol);
    }
    client.ping();
  };

  const std::uint64_t nets = f.gate.num_nets();
  const std::uint64_t order = sim::net_order_hash(f.gate);
  // Quiet cycle-0 bitmap for the real net count.
  const std::string base =
      wire_delta_header(nets, kCycles, order) + std::string((nets + 7) / 8, '\0');

  rejected_at_stream_end("ATXX this is not a delta");
  rejected_at_stream_end(std::string("ATDT\x07", 5) + f.delta.substr(5));
  rejected_at_stream_end(f.delta.substr(0, f.delta.size() / 2));  // truncated
  // A varint that never terminates within its 10-byte budget.
  rejected_at_stream_end(std::string("ATDT\x01", 5) + std::string(11, '\x80'));
  // Declared cycle count past the server's allocation cap.
  rejected_at_stream_end(
      wire_delta_header(nets, (1u << 20) + 1, order));
  // Cycle record past the trace's own declared cycle count.
  rejected_at_stream_end(base + wire_varint(kCycles) + '\0' + wire_varint(1) +
                         wire_varint(0) + wire_varint(1));
  // RLE run addressing nets past the declared net count.
  rejected_at_stream_end(base + wire_varint(0) + '\0' + wire_varint(1) +
                         wire_varint(0) + wire_varint(nets + 5));
  // Truncated mid-run: two runs declared, one sent.
  rejected_at_stream_end(base + wire_varint(0) + '\0' + wire_varint(2) +
                         wire_varint(0) + wire_varint(1));
  // Well-formed delta whose cycle count contradicts stream_begin.
  {
    StreamBeginRequest off_by_one = dbegin;
    off_by_one.cycles = kCycles - 1;
    try {
      client.predict_stream(off_by_one, f.delta);
      FAIL() << "expected ServeError";
    } catch (const ServeError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kStreamProtocol);
    }
    client.ping();
  }

  // Structurally valid but bound to a different netlist: passes StreamEnd,
  // rejected at predict time like any unparseable trace.
  {
    std::string wrong_order = f.delta;
    wrong_order[5 + wire_varint(nets).size() + wire_varint(kCycles).size()] ^=
        0x5a;
    try {
      client.predict_stream(dbegin, wrong_order);
      FAIL() << "expected ServeError";
    } catch (const ServeError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
    }
    client.ping();
  }
  // Delta bytes mislabeled as VCD text: predict-time parse rejection.
  {
    try {
      client.predict_stream(make_stream_begin(*verilog_, TraceFormat::kVcdText),
                            f.delta);
      FAIL() << "expected ServeError";
    } catch (const ServeError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
    }
    client.ping();
  }

  // After the whole corpus the same connection still does real work.
  expect_matches_direct(client.predict_stream(dbegin, f.delta), f.direct);
  server.stop();
}

TEST_F(ServeTest, DesignByHashStreamedPredict) {
  const DeltaFixture f = make_delta_fixture(*verilog_, *lib_, **model_);
  Server server(loopback_config(), make_registry());
  server.start();
  Client client = Client::connect_tcp("127.0.0.1", server.port());
  const StreamBeginRequest dbegin =
      make_stream_begin(*verilog_, TraceFormat::kToggleDelta);

  // Cold server: the hash reference is refused at StreamBegin (before any
  // trace bytes move) and the wrapper falls back to a full upload.
  bool used_hash = true;
  const PredictResponse cold =
      client.predict_stream_cached(dbegin, f.delta, 4096, &used_hash);
  EXPECT_FALSE(used_hash);
  expect_matches_direct(cold, f.direct);

  // Warm: the netlist text never crosses the wire, and the answer is
  // bit-identical to the full-upload one.
  const PredictResponse warm =
      client.predict_stream_cached(dbegin, f.delta, 4096, &used_hash);
  EXPECT_TRUE(used_hash);
  EXPECT_TRUE(warm.design_cache_hit());
  EXPECT_TRUE(warm.embedding_cache_hit());
  expect_matches_direct(warm, f.direct);

  // The hash is orthogonal to the trace encoding: a VCD-text stream can
  // reference the same cached design.
  const PredictResponse vcd_by_hash = client.predict_stream_cached(
      make_stream_begin(*verilog_, TraceFormat::kVcdText), f.vcd, 4096,
      &used_hash);
  EXPECT_TRUE(used_hash);
  expect_matches_direct(vcd_by_hash, f.direct);

  // A hash the server has never seen is kUnknownDesign, not a parse error.
  StreamBeginRequest unknown = dbegin;
  unknown.netlist_verilog.clear();
  unknown.design_hash = 0xdeadbeefdeadbeefull;
  try {
    client.predict_stream(unknown, f.delta);
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnknownDesign);
  }

  // Sending both the hash and the text is ambiguous -> kBadRequest.
  StreamBeginRequest both = dbegin;
  both.design_hash = util::fnv1a64(*verilog_);
  try {
    client.predict_stream(both, f.delta);
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
  }

  // A hash reference against an unknown model is the model error, not a
  // misleading kUnknownDesign.
  StreamBeginRequest bad_model = unknown;
  bad_model.model = "no_such_model";
  bad_model.design_hash = util::fnv1a64(*verilog_);
  try {
    client.predict_stream(bad_model, f.delta);
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnknownModel);
  }

  // The connection survived every rejection.
  client.ping();
  expect_matches_direct(client.predict_stream(dbegin, f.delta), f.direct);
  server.stop();
}

TEST_F(ServeTest, DesignByHashEvictionRaceFallsBackCleanly) {
  // The race the StreamBegin fast-path check cannot rule out: the design is
  // cached when the hash is accepted, and evicted before the predict runs.
  // The server must answer kUnknownDesign (not recompute, not crash) and the
  // client wrapper must recover with a full upload.
  const DeltaFixture f = make_delta_fixture(*verilog_, *lib_, **model_);
  ServerConfig cfg = loopback_config();
  cfg.cache_designs = 1;  // any other design evicts ours
  Server server(cfg, make_registry());
  server.start();

  Client primer = Client::connect_tcp("127.0.0.1", server.port());
  const StreamBeginRequest dbegin =
      make_stream_begin(*verilog_, TraceFormat::kToggleDelta);
  expect_matches_direct(primer.predict_stream(dbegin, f.delta), f.direct);

  // Open a hash-referenced stream by hand: StreamBegin is accepted (the
  // design is cached right now)...
  util::Socket raw = util::connect_tcp("127.0.0.1", server.port());
  StreamBeginRequest by_hash = dbegin;
  by_hash.design_hash = util::fnv1a64(*verilog_);
  by_hash.netlist_verilog.clear();
  by_hash.trace_bytes = f.delta.size();
  write_frame(raw, MsgType::kStreamBegin, by_hash.encode());
  Frame resp;
  ASSERT_TRUE(read_frame(raw, resp));
  ASSERT_EQ(resp.type, MsgType::kStreamAck);

  // ...then another client's predict on a different design evicts it while
  // the upload is still in flight...
  {
    const std::string other_verilog = netlist::write_verilog(
        designgen::generate_design(designgen::paper_design_spec(3, 0.0025),
                                   *lib_));
    PredictRequest other = make_request();
    other.netlist_verilog = other_verilog;
    Client evictor = Client::connect_tcp("127.0.0.1", server.port());
    evictor.predict(other);
  }

  // ...so the finished stream's predict finds no artifacts to use.
  StreamChunk chunk;
  chunk.seq = 0;
  chunk.data = f.delta;
  write_frame(raw, MsgType::kStreamChunk, chunk.encode());
  ASSERT_TRUE(read_frame(raw, resp));
  ASSERT_EQ(resp.type, MsgType::kStreamAck);
  StreamEndRequest end;
  end.total_chunks = 1;
  end.total_bytes = f.delta.size();
  write_frame(raw, MsgType::kStreamEnd, end.encode());
  ASSERT_TRUE(read_frame(raw, resp));
  ASSERT_EQ(resp.type, MsgType::kError);
  EXPECT_EQ(ErrorResponse::decode(resp.payload).code,
            ErrorCode::kUnknownDesign);

  // The client wrapper sees the same rejection and re-sends the netlist.
  bool used_hash = true;
  const PredictResponse recovered =
      primer.predict_stream_cached(dbegin, f.delta, 4096, &used_hash);
  EXPECT_FALSE(used_hash);
  expect_matches_direct(recovered, f.direct);
  server.stop();
}

TEST_F(ServeTest, ConcurrentDeltaStreamsAllBitIdentical) {
  // Delta-stream assembly, validation, hash fallback and cache insertion
  // racing across connections (the TSan target for this subsystem): every
  // client must get the bit-identical answer whichever interleaving wins.
  const DeltaFixture f = make_delta_fixture(*verilog_, *lib_, **model_);
  ServerConfig cfg = loopback_config();
  cfg.batch_max = 4;
  Server server(cfg, make_registry());
  server.start();

  constexpr int kClients = 4;
  constexpr int kRequestsEach = 3;
  std::vector<std::vector<PredictResponse>> results(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      Client client = Client::connect_tcp("127.0.0.1", server.port());
      const StreamBeginRequest dbegin =
          make_stream_begin(*verilog_, TraceFormat::kToggleDelta);
      for (int r = 0; r < kRequestsEach; ++r) {
        // Odd requests go through the by-hash wrapper so cold-hash fallback
        // races warm-hash acceptance.
        results[static_cast<std::size_t>(t)].push_back(
            r % 2 == 1 ? client.predict_stream_cached(dbegin, f.delta, 2048)
                       : client.predict_stream(dbegin, f.delta, 2048));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (const auto& per_client : results) {
    ASSERT_EQ(per_client.size(), static_cast<std::size_t>(kRequestsEach));
    for (const PredictResponse& resp : per_client) {
      expect_matches_direct(resp, f.direct);
    }
  }
  server.stop();
}

TEST_F(ServeTest, StreamBeginFormatAndHashOnTheWire) {
  StreamBeginRequest r;
  r.model = "m";
  r.netlist_verilog = "module m; endmodule";
  r.format = TraceFormat::kToggleDelta;
  r.cycles = 7;
  r.deadline_ms = 9;
  r.want_submodules = true;
  r.trace_bytes = 123;
  r.design_hash = 0x1122334455667788ull;
  const StreamBeginRequest back = StreamBeginRequest::decode(r.encode());
  EXPECT_EQ(back.model, r.model);
  EXPECT_EQ(back.netlist_verilog, r.netlist_verilog);
  EXPECT_EQ(back.format, TraceFormat::kToggleDelta);
  EXPECT_EQ(back.cycles, r.cycles);
  EXPECT_EQ(back.deadline_ms, r.deadline_ms);
  EXPECT_EQ(back.want_submodules, r.want_submodules);
  EXPECT_EQ(back.trace_bytes, r.trace_bytes);
  EXPECT_EQ(back.design_hash, r.design_hash);

  // An unknown format value is refused by decode itself (kBadRequest on the
  // wire), never smuggled into dispatch as a dangling enum. Locate the
  // format field by differencing two encodings, then patch it.
  StreamBeginRequest v = r;
  v.format = TraceFormat::kVcdText;
  const std::string delta_bytes = r.encode();
  const std::string vcd_bytes = v.encode();
  ASSERT_EQ(delta_bytes.size(), vcd_bytes.size());
  std::size_t off = 0;
  while (off < delta_bytes.size() && delta_bytes[off] == vcd_bytes[off]) ++off;
  ASSERT_LT(off, delta_bytes.size());
  std::string patched = delta_bytes;
  patched[off] = 99;
  EXPECT_THROW(StreamBeginRequest::decode(patched), ProtocolError);
}

// ---- Dynamic model management ---------------------------------------------

TEST_F(ServeTest, AdminRequestsRejectedWithoutAllowAdmin) {
  Server server(loopback_config(), make_registry());  // allow_admin = false
  server.start();
  Client client = Client::connect_tcp("127.0.0.1", server.port());

  try {
    client.load_model("x", "/nonexistent.bin");
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kAdminDisabled);
  }
  try {
    client.unload_model("tiny");
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kAdminDisabled);
  }
  // The gate rejected the requests without touching the registry or the
  // connection.
  ASSERT_EQ(client.models().size(), 1u);
  expect_matches_direct(client.predict(make_request()), *expected_w1_);
  server.stop();
}

TEST_F(ServeTest, AdminLoadUnloadLifecycle) {
  const std::string model_path = ::testing::TempDir() + "atlas_admin_model.bin";
  const std::string lib_path = ::testing::TempDir() + "atlas_admin_x2.lib";
  (*model_)->save(model_path);
  liberty::save_liberty_file(scaled_library(), lib_path);

  ServerConfig cfg = loopback_config();
  cfg.allow_admin = true;
  Server server(cfg, make_registry());
  server.start();
  Client client = Client::connect_tcp("127.0.0.1", server.port());

  client.load_model("second", model_path, lib_path);
  const auto models = client.models();
  ASSERT_EQ(models.size(), 2u);
  ASSERT_EQ(models[0].name, "second");
  EXPECT_EQ(models[0].library, "atlas40lp_x2");
  EXPECT_EQ(models[1].name, "tiny");
  EXPECT_GT(models[0].generation, models[1].generation);

  // The server computes with the artifacts as loaded from disk; the Liberty
  // writer is lossy (%.9g), so the bit-identity reference must use the
  // round-tripped library, not the in-memory original.
  const core::AtlasModel loaded = core::AtlasModel::load(model_path);
  const liberty::Library round_tripped = liberty::load_liberty_file(lib_path);
  const PredictResponse resp = client.predict(make_request("w1", "second"));
  expect_matches_direct(resp, direct_predict_with(loaded, round_tripped, "w1"));

  // Unload: the name disappears and new predicts are rejected.
  client.unload_model("second");
  ASSERT_EQ(client.models().size(), 1u);
  try {
    client.predict(make_request("w1", "second"));
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnknownModel);
  }

  // Unloading a name that was never registered is kUnknownModel, not a
  // connection error.
  try {
    client.unload_model("never_registered");
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnknownModel);
  }

  // A corrupt artifact is kBadRequest; the registry and connection survive.
  const std::string corrupt_path = ::testing::TempDir() + "atlas_corrupt.bin";
  {
    std::ofstream corrupt(corrupt_path, std::ios::binary);
    corrupt << "this is not an AtlasModel artifact";
  }
  try {
    client.load_model("broken", corrupt_path);
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
  }
  ASSERT_EQ(client.models().size(), 1u);
  expect_matches_direct(client.predict(make_request()), *expected_w1_);
  server.stop();
}

TEST_F(ServeTest, PerModelLibraryKeysDesignCache) {
  // Two models over the same model weights but different Liberty libraries:
  // the same netlist text must occupy two design-cache entries (the library
  // shapes graph features), and each predict must be bit-identical to the
  // direct computation against its own library.
  const auto x2 =
      std::make_shared<const liberty::Library>(scaled_library());
  auto registry = make_registry();
  registry->add("tiny_x2", *model_, x2);

  Server server(loopback_config(), registry);
  server.start();
  Client client = Client::connect_tcp("127.0.0.1", server.port());

  const PredictResponse a = client.predict(make_request());
  EXPECT_FALSE(a.design_cache_hit());
  expect_matches_direct(a, *expected_w1_);

  // Same Verilog text, different library hash: a design-cache miss, and a
  // different prediction substrate.
  const PredictResponse b = client.predict(make_request("w1", "tiny_x2"));
  EXPECT_FALSE(b.design_cache_hit());
  expect_matches_direct(b, direct_predict_with(**model_, *x2, "w1"));

  // Both entries stay warm independently.
  EXPECT_TRUE(client.predict(make_request()).design_cache_hit());
  EXPECT_TRUE(
      client.predict(make_request("w1", "tiny_x2")).design_cache_hit());
  EXPECT_EQ(server.cache_stats().design_misses, 2u);
  server.stop();
}

TEST_F(ServeTest, ReloadUnderSameNameInvalidatesEmbeddings) {
  auto registry = make_registry();
  Server server(loopback_config(), registry);
  server.start();
  Client client = Client::connect_tcp("127.0.0.1", server.port());

  expect_matches_direct(client.predict(make_request()), *expected_w1_);
  const PredictResponse warm = client.predict(make_request());
  EXPECT_TRUE(warm.design_cache_hit());
  EXPECT_TRUE(warm.embedding_cache_hit());

  // Republish the same weights under the same name: the design entry (keyed
  // by netlist + library) survives, but the registry generation bump makes
  // cached embeddings stale — the encoder must re-run against the new entry.
  registry->add("tiny", *model_);
  const PredictResponse reloaded = client.predict(make_request());
  EXPECT_TRUE(reloaded.design_cache_hit());
  EXPECT_FALSE(reloaded.embedding_cache_hit());
  expect_matches_direct(reloaded, *expected_w1_);

  const PredictResponse rewarmed = client.predict(make_request());
  EXPECT_TRUE(rewarmed.embedding_cache_hit());
  server.stop();
}

TEST_F(ServeTest, ProcessJobFaultStillAnswers) {
  // Fault injection throws a non-std exception after the handler computed
  // its reply; the promise must still be fulfilled (an error response, not
  // a hung connection or a torn-down dispatcher).
  ServerConfig cfg = loopback_config();
  cfg.fault_inject_for_test = true;
  Server server(cfg, make_registry());
  server.start();
  Client client = Client::connect_tcp("127.0.0.1", server.port());
  for (int i = 0; i < 2; ++i) {
    try {
      client.predict(make_request());
      FAIL() << "expected ServeError";
    } catch (const ServeError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kInternal);
    }
  }
  client.ping();  // the connection thread survived both faults
  server.stop();
}

TEST_F(ServeTest, ShutdownWakeupIsPromptNotPolled) {
  Server server(loopback_config(), make_registry());
  server.start();

  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    server.wait_for_stop_request();
    woke.store(true);
  });
  // Give the waiter time to block in the condition-variable wait.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(woke.load());

  Client client = Client::connect_tcp("127.0.0.1", server.port());
  const auto t0 = std::chrono::steady_clock::now();
  client.shutdown_server();
  waiter.join();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_TRUE(woke.load());
  // The old implementation polled every 50ms (mean wakeup ~25ms); the
  // condition variable wakes in microseconds. Generous margin for CI.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            25);
  server.stop();
}

TEST_F(ServeTest, RegistryLifecycleRacesWithInFlightPredicts) {
  const std::string model_path = ::testing::TempDir() + "atlas_race_model.bin";
  const std::string lib_path = ::testing::TempDir() + "atlas_race_x2.lib";
  (*model_)->save(model_path);
  liberty::save_liberty_file(scaled_library(), lib_path);
  const core::AtlasModel hot_model = core::AtlasModel::load(model_path);
  const liberty::Library hot_lib = liberty::load_liberty_file(lib_path);
  const core::Prediction hot_ref =
      direct_predict_with(hot_model, hot_lib, "w1");

  ServerConfig cfg = loopback_config();
  cfg.allow_admin = true;
  cfg.batch_max = 4;
  auto registry = make_registry();
  Server server(cfg, registry);
  server.start();

  // Admin thread churns the registry: "hot" appears, is replaced, vanishes;
  // "tiny" is republished (replace-under-same-name) every cycle.
  constexpr int kChurns = 6;
  std::thread admin([&] {
    Client client = Client::connect_tcp("127.0.0.1", server.port());
    for (int i = 0; i < kChurns; ++i) {
      client.load_model("hot", model_path, lib_path);
      registry->add("tiny", *model_);  // replace in place
      client.load_model("hot", model_path, lib_path);  // replace in place
      client.unload_model("hot");
    }
  });

  // Predict threads race the churn. "tiny" must always answer and always
  // bit-identically; "hot" either answers bit-identically (pinned entry,
  // even if unloaded mid-flight) or is cleanly rejected as unknown.
  constexpr int kThreads = 3;
  constexpr int kIters = 6;
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Client client = Client::connect_tcp("127.0.0.1", server.port());
      for (int i = 0; i < kIters; ++i) {
        const PredictResponse tiny = client.predict(make_request());
        if (!same_bits(tiny.design, expected_w1_->design)) {
          failures[static_cast<std::size_t>(t)] = "tiny prediction diverged";
          return;
        }
        try {
          const PredictResponse hot =
              client.predict(make_request("w1", "hot"));
          if (!same_bits(hot.design, hot_ref.design)) {
            failures[static_cast<std::size_t>(t)] = "hot prediction diverged";
            return;
          }
        } catch (const ServeError& e) {
          if (e.code() != ErrorCode::kUnknownModel) {
            failures[static_cast<std::size_t>(t)] =
                "hot predict failed with unexpected code";
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  admin.join();
  for (const std::string& f : failures) EXPECT_EQ(f, "");
  // The final churn cycle unloaded "hot"; "tiny" survived every replace.
  Client client = Client::connect_tcp("127.0.0.1", server.port());
  const auto models = client.models();
  ASSERT_EQ(models.size(), 1u);
  EXPECT_EQ(models[0].name, "tiny");
  expect_matches_direct(client.predict(make_request()), *expected_w1_);
  server.stop();
}

// ---- FeatureCache unit tests ----------------------------------------------

std::shared_ptr<const DesignArtifacts> dummy_design(
    const liberty::Library& lib) {
  designgen::DesignSpec spec;
  spec.target_cells = 200;
  netlist::Netlist nl = designgen::generate_design(spec, lib);
  auto graphs = graph::build_submodule_graphs(nl);
  return std::make_shared<const DesignArtifacts>(
      DesignArtifacts{std::move(nl), std::move(graphs), 0, nullptr});
}

TEST_F(ServeTest, FeatureCacheLruEvictsOldestDesign) {
  FeatureCache cache(/*max_designs=*/2, /*max_embeddings_per_design=*/2);
  auto d = dummy_design(*lib_);
  cache.put_design(1, d);
  cache.put_design(2, d);
  EXPECT_NE(cache.find_design(1), nullptr);  // 1 is now most recent
  cache.put_design(3, d);                    // evicts 2
  EXPECT_EQ(cache.find_design(2), nullptr);
  EXPECT_NE(cache.find_design(1), nullptr);
  EXPECT_NE(cache.find_design(3), nullptr);
  EXPECT_EQ(cache.num_designs(), 2u);
  EXPECT_EQ(cache.stats().design_evictions, 1u);
}

TEST_F(ServeTest, FeatureCacheEmbeddingLayerBoundsAndEviction) {
  FeatureCache cache(2, 2);
  auto d = dummy_design(*lib_);
  cache.put_design(1, d);
  auto emb = std::make_shared<const core::DesignEmbeddings>();
  cache.put_embeddings(1, {"m", "w1", 10}, emb);
  cache.put_embeddings(1, {"m", "w2", 10}, emb);
  cache.put_embeddings(1, {"m", "w1", 20}, emb);  // evicts {m,w1,10}
  EXPECT_EQ(cache.find_embeddings(1, {"m", "w1", 10}), nullptr);
  EXPECT_NE(cache.find_embeddings(1, {"m", "w2", 10}), nullptr);
  EXPECT_NE(cache.find_embeddings(1, {"m", "w1", 20}), nullptr);
  // Embeddings for an unknown design are dropped, not crashed on.
  cache.put_embeddings(99, {"m", "w1", 10}, emb);
  EXPECT_EQ(cache.find_embeddings(99, {"m", "w1", 10}), nullptr);
}

/// DesignEmbeddings whose approx_bytes() is dominated by one matrix of
/// `rows` x 16 floats — lets a test dial entry weights apart.
std::shared_ptr<const core::DesignEmbeddings> embeddings_of_rows(
    std::size_t rows) {
  core::DesignEmbeddings emb;
  emb.graphs.emplace_back();
  emb.graphs.back().emb = ml::Matrix(rows, 16);
  return std::make_shared<const core::DesignEmbeddings>(std::move(emb));
}

TEST_F(ServeTest, FeatureCacheByteBudgetEvictsBySize) {
  auto d = dummy_design(*lib_);
  const std::size_t design_cost = approx_design_bytes(*d);
  ASSERT_GT(design_cost, 0u);
  // Count-wise all three designs fit; byte-wise the budget has headroom for
  // the designs plus a small embedding set, but not a huge one.
  FeatureCache cache(/*max_designs=*/8, /*max_embeddings_per_design=*/8,
                     /*max_bytes=*/3 * design_cost + (2u << 20));
  cache.put_design(1, d);
  cache.put_design(2, d);
  cache.put_design(3, d);
  EXPECT_EQ(cache.num_designs(), 3u);

  // ~1 KiB embedding on design 3: still under budget, nothing evicted.
  cache.put_embeddings(3, {"m", "w1", 10}, embeddings_of_rows(16));
  EXPECT_EQ(cache.num_designs(), 3u);
  EXPECT_EQ(cache.stats().design_evictions, 0u);

  // ~4 MiB embedding on design 2 blows the budget: cold entries go by LRU
  // order (1 first, then 3), the freshly used design 2 survives even though
  // it alone is over budget — a single huge design must stay servable.
  cache.put_embeddings(2, {"m", "w1", 10}, embeddings_of_rows(1u << 16));
  EXPECT_EQ(cache.num_designs(), 1u);
  EXPECT_EQ(cache.stats().design_evictions, 2u);
  EXPECT_EQ(cache.find_design(1), nullptr);
  EXPECT_EQ(cache.find_design(3), nullptr);
  EXPECT_NE(cache.find_design(2), nullptr);
  EXPECT_NE(cache.find_embeddings(2, {"m", "w1", 10}), nullptr);
  // Evicting design 3 dropped its embeddings with it.
  EXPECT_EQ(cache.find_embeddings(3, {"m", "w1", 10}), nullptr);
  // The budget still accounts the surviving over-budget entry honestly.
  EXPECT_GT(cache.total_bytes(), 3 * design_cost + (2u << 20));
}

TEST_F(ServeTest, FeatureCacheCountsDroppedEmbeddings) {
  // The eviction race a busy server hits with a tiny cache: a handler looks
  // up design 1, computes embeddings for it, but by insert time the design
  // entry is gone. The work is discarded — and must be counted, because a
  // climbing drop counter is the signal to size the cache up.
  FeatureCache cache(/*max_designs=*/1, /*max_embeddings_per_design=*/8);
  auto d = dummy_design(*lib_);
  cache.put_design(1, d);
  cache.put_design(2, d);  // evicts design 1
  EXPECT_EQ(cache.stats().embedding_drops, 0u);
  cache.put_embeddings(1, {"m", "w1", 10}, embeddings_of_rows(16));
  EXPECT_EQ(cache.stats().embedding_drops, 1u);
  EXPECT_EQ(cache.find_embeddings(1, {"m", "w1", 10}), nullptr);

  // The drop surfaces in both the gauge and the stats text.
  EXPECT_NE(obs::Registry::global().render_prometheus().find(
                "atlas_serve_cache_embedding_drops"),
            std::string::npos);
  ServerStats stats;
  EXPECT_NE(stats.render_text(cache.stats()).find("1 drops"),
            std::string::npos);
}

TEST_F(ServeTest, FeatureCacheInsertReturnsWinningEntry) {
  // Two requests race on the same cold key: both compute, both insert. The
  // first insert wins; the loser must get the winner's pointer back (so it
  // serves exactly what the cache retained), and on the eviction race the
  // caller must get its own computed embeddings back instead of nothing.
  FeatureCache cache(/*max_designs=*/2, /*max_embeddings_per_design=*/8);
  auto d1 = dummy_design(*lib_);
  auto d2 = dummy_design(*lib_);
  EXPECT_EQ(cache.put_design(1, d1), d1);  // normal insert: caller wins
  EXPECT_EQ(cache.put_design(1, d2), d1);  // racer loses: winner returned
  EXPECT_EQ(cache.find_design(1), d1);

  auto e1 = embeddings_of_rows(16);
  auto e2 = embeddings_of_rows(16);
  EXPECT_EQ(cache.put_embeddings(1, {"m", "w1", 10}, e1), e1);
  const std::size_t bytes_after_first = cache.embedding_bytes();
  // Losing racer: existing entry returned, byte accounting unchanged (the
  // duplicate is discarded, not double-counted).
  EXPECT_EQ(cache.put_embeddings(1, {"m", "w1", 10}, e2), e1);
  EXPECT_EQ(cache.embedding_bytes(), bytes_after_first);
  EXPECT_EQ(cache.find_embeddings(1, {"m", "w1", 10}), e1);

  // Eviction race: the design entry is gone by insert time. The drop is
  // counted, but the caller still gets its computed embeddings to serve.
  cache.put_design(2, d2);
  cache.put_design(3, d1);  // evicts design 1 (capacity 2)
  ASSERT_EQ(cache.find_design(1), nullptr);
  auto e3 = embeddings_of_rows(16);
  EXPECT_EQ(cache.put_embeddings(1, {"m", "w1", 10}, e3), e3);
  EXPECT_EQ(cache.stats().embedding_drops, 1u);
}

TEST_F(ServeTest, LatencyHistogramPercentiles) {
  // The serve-local LatencyHistogram was replaced by obs::Histogram; the
  // stats endpoint's percentile semantics must stay unchanged.
  obs::Histogram h;
  EXPECT_EQ(h.percentile(50), 0u);
  for (int i = 0; i < 90; ++i) h.record(100);   // bucket [64,128)
  for (int i = 0; i < 10; ++i) h.record(10000);  // bucket [8192,16384)
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.percentile(50), 128u);
  EXPECT_EQ(h.percentile(99), 16384u);
}

TEST_F(ServeTest, MetricsEndpointRoundTrip) {
  Server server(loopback_config(), make_registry());
  server.start();
  Client client = Client::connect_tcp("127.0.0.1", server.port());
  client.ping();
  expect_matches_direct(client.predict(make_request()), *expected_w1_);

  const std::string metrics = client.metrics_text();
  // Request counters/histograms with endpoint labels.
  EXPECT_NE(metrics.find("# TYPE atlas_serve_requests_total counter"),
            std::string::npos);
  EXPECT_NE(metrics.find("atlas_serve_requests_total{endpoint=\"ping\"}"),
            std::string::npos);
  EXPECT_NE(metrics.find("# TYPE atlas_serve_request_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(
      metrics.find("atlas_serve_request_latency_us_bucket{endpoint=\"predict\""),
      std::string::npos);
  EXPECT_NE(metrics.find("atlas_serve_request_latency_us_count"),
            std::string::npos);
  // Cache gauges (at least one design resident after the predict).
  EXPECT_NE(metrics.find("# TYPE atlas_serve_cache_designs gauge"),
            std::string::npos);
  EXPECT_NE(metrics.find("atlas_serve_cache_design_misses"),
            std::string::npos);
  // Thread-pool and pipeline counters ride along on the same registry.
  EXPECT_NE(metrics.find("atlas_parallel_tasks_total"), std::string::npos);
  EXPECT_NE(metrics.find("atlas_sim_runs_total"), std::string::npos);
  server.stop();
}

// ---- PR 8: distributed tracing / fleet observability ----------------------

/// Restores the global tracer to its default-off state no matter how the
/// test exits (the ring is process-global; leaking an enabled tracer would
/// couple unrelated tests).
struct TraceGuard {
  ~TraceGuard() {
    obs::Trace::disable();
    obs::Trace::clear();
  }
};

TEST_F(ServeTest, RequestTraceExtTailRoundTripAndV1Compat) {
  // A request with no context and no flags encodes the exact v1 bytes.
  const std::string v1_bytes = make_request().encode();

  PredictRequest traced = make_request();
  traced.ext.trace.trace_hi = 0x0123456789abcdefull;
  traced.ext.trace.trace_lo = 0xfedcba9876543210ull;
  traced.ext.trace.span_id = 0xc0ffee;
  traced.ext.trace.sampled = true;
  traced.ext.want_timing = true;
  const std::string v2_bytes = traced.encode();

  // The extension is a pure tail: the v1 prefix is untouched, so a v1
  // decoder reading exact base fields parses the same request.
  ASSERT_GT(v2_bytes.size(), v1_bytes.size());
  EXPECT_EQ(v2_bytes.substr(0, v1_bytes.size()), v1_bytes);

  const PredictRequest rt = PredictRequest::decode(v2_bytes);
  EXPECT_EQ(rt.model, traced.model);
  EXPECT_EQ(rt.cycles, traced.cycles);
  EXPECT_EQ(rt.ext.trace.trace_hi, traced.ext.trace.trace_hi);
  EXPECT_EQ(rt.ext.trace.trace_lo, traced.ext.trace.trace_lo);
  EXPECT_EQ(rt.ext.trace.span_id, traced.ext.trace.span_id);
  EXPECT_TRUE(rt.ext.trace.sampled);
  EXPECT_TRUE(rt.ext.want_timing);

  // Old-client path: no tail decodes to an absent context.
  const PredictRequest v1 = PredictRequest::decode(v1_bytes);
  EXPECT_FALSE(v1.ext.trace.valid());
  EXPECT_FALSE(v1.ext.want_timing);

  // Forward compat: an unknown (future) ext version is skipped wholesale,
  // leaving the base request intact and the context absent.
  std::ostringstream os(std::ios::binary);
  util::write_u32(os, 99);
  const std::string future = v1_bytes + std::move(os).str() + "future bytes";
  const PredictRequest skipped = PredictRequest::decode(future);
  EXPECT_EQ(skipped.model, "tiny");
  EXPECT_EQ(skipped.cycles, kCycles);
  EXPECT_FALSE(skipped.ext.trace.valid());
  EXPECT_FALSE(skipped.ext.want_timing);

  // StreamBegin shares the same tail.
  StreamBeginRequest begin;
  begin.model = "tiny";
  begin.cycles = kCycles;
  begin.ext.trace = traced.ext.trace;
  const StreamBeginRequest brt = StreamBeginRequest::decode(begin.encode());
  EXPECT_EQ(brt.ext.trace.trace_lo, traced.ext.trace.trace_lo);
  EXPECT_EQ(brt.ext.trace.span_id, traced.ext.trace.span_id);
}

TEST_F(ServeTest, ServerTimingTailRoundTrip) {
  PredictResponse resp;
  resp.cache_flags = kCacheHitDesign;
  resp.server_seconds = 0.25;
  resp.num_cycles = 3;
  resp.design = {{1.0, 2.0, 3.0, 0.0}};
  resp.has_timing = true;
  resp.timing.batch_wait_us = 7;
  resp.timing.queue_us = 11;
  resp.timing.cache_us = 22;
  resp.timing.encode_us = 33;
  resp.timing.predict_us = 44;
  resp.timing.serialize_us = 55;
  resp.timing.total_us = 200;

  const PredictResponse rt = PredictResponse::decode(resp.encode());
  ASSERT_TRUE(rt.has_timing);
  EXPECT_EQ(rt.timing.batch_wait_us, 7u);
  EXPECT_EQ(rt.timing.queue_us, 11u);
  EXPECT_EQ(rt.timing.cache_us, 22u);
  EXPECT_EQ(rt.timing.encode_us, 33u);
  EXPECT_EQ(rt.timing.predict_us, 44u);
  EXPECT_EQ(rt.timing.serialize_us, 55u);
  EXPECT_EQ(rt.timing.total_us, 200u);
  EXPECT_EQ(rt.design.size(), 1u);

  // append_timing_ext (the server's measure-then-attach path) produces the
  // same bytes as encoding with has_timing set.
  PredictResponse base = resp;
  base.has_timing = false;
  std::string attached = base.encode();
  append_timing_ext(attached, resp.timing);
  EXPECT_EQ(attached, resp.encode());

  // And a tail-less response decodes with has_timing false.
  EXPECT_FALSE(PredictResponse::decode(base.encode()).has_timing);

  // Back compat: a v2 tail from an older server (no batch_wait field)
  // still decodes; the missing phase reads as zero.
  std::ostringstream v2(std::ios::binary);
  util::write_u32(v2, kTraceExtVersion);
  for (const std::uint64_t v : {11ull, 22ull, 33ull, 44ull, 55ull, 200ull}) {
    util::write_u64(v2, v);
  }
  const PredictResponse old =
      PredictResponse::decode(base.encode() + std::move(v2).str());
  ASSERT_TRUE(old.has_timing);
  EXPECT_EQ(old.timing.batch_wait_us, 0u);
  EXPECT_EQ(old.timing.queue_us, 11u);
  EXPECT_EQ(old.timing.total_us, 200u);
}

TEST_F(ServeTest, PredictUnderTracingLinksClientAndServerSpans) {
  Server server(loopback_config(), make_registry());
  server.start();
  Client client = Client::connect_tcp("127.0.0.1", server.port());

  TraceGuard guard;
  obs::Trace::enable();
  obs::Trace::clear();
  expect_matches_direct(client.predict(make_request()), *expected_w1_);
  server.stop();

  // Client and server run in one process here, so both sides' spans land
  // in the same ring — the cross-process linkage (same trace id, server
  // span parented under the client span that sent the request) is directly
  // assertable.
  const auto events = obs::Trace::snapshot();
  auto find = [&](const char* name) -> const obs::TraceEventView* {
    for (const auto& e : events) {
      if (e.name == name) return &e;
    }
    return nullptr;
  };
  const obs::TraceEventView* client_span = find("predict");
  const obs::TraceEventView* server_span = find("handle_predict");
  ASSERT_NE(client_span, nullptr);
  ASSERT_NE(server_span, nullptr);
  EXPECT_EQ(client_span->category, "client");
  EXPECT_EQ(server_span->category, "serve");
  ASSERT_TRUE((client_span->ids.trace_hi | client_span->ids.trace_lo) != 0);
  EXPECT_EQ(server_span->ids.trace_hi, client_span->ids.trace_hi);
  EXPECT_EQ(server_span->ids.trace_lo, client_span->ids.trace_lo);
  EXPECT_EQ(client_span->ids.parent_span_id, 0u);  // root
  EXPECT_EQ(server_span->ids.parent_span_id, client_span->ids.span_id);
}

TEST_F(ServeTest, PredictionsBitIdenticalTracingOnVsOff) {
  Server server(loopback_config(), make_registry());
  server.start();
  Client client = Client::connect_tcp("127.0.0.1", server.port());

  const PredictResponse off = client.predict(make_request());

  TraceGuard guard;
  obs::Trace::enable();
  obs::Trace::clear();
  const PredictResponse on = client.predict(make_request());
  server.stop();

  EXPECT_TRUE(same_bits(off.design, on.design));
  EXPECT_TRUE(same_bits(off.submodule, on.submodule));
  expect_matches_direct(on, *expected_w1_);
}

TEST_F(ServeTest, WantTimingReturnsPerPhaseBreakdown) {
  Server server(loopback_config(), make_registry());
  server.start();
  Client client = Client::connect_tcp("127.0.0.1", server.port());

  // Timing is independent of tracing: no tracer enabled here.
  PredictRequest req = make_request();
  req.ext.want_timing = true;
  const PredictResponse resp = client.predict(req);
  ASSERT_TRUE(resp.has_timing);
  EXPECT_GT(resp.timing.total_us, 0u);
  EXPECT_GT(resp.timing.encode_us, 0u);  // cold request: parse + sim + encode
  // Phases are disjoint slices of the total.
  EXPECT_LE(resp.timing.batch_wait_us + resp.timing.queue_us +
                resp.timing.cache_us + resp.timing.encode_us +
                resp.timing.predict_us + resp.timing.serialize_us,
            resp.timing.total_us);

  // Without the flag the tail is absent.
  EXPECT_FALSE(client.predict(make_request()).has_timing);
  server.stop();
}

TEST_F(ServeTest, TimingPhasesSumToTotalWithBatchWaitSplit) {
  // Regression: batch_wait_us used to be folded into queue_us, so the
  // phases double-counted the pre-dispatch interval and could exceed
  // total_us. The split must hold on both execution paths, and the
  // dispatch-delay hook (which runs *after* the batch is formed) must land
  // in queue_us, not batch_wait_us.
  for (const bool fused : {true, false}) {
    ServerConfig cfg = loopback_config();
    cfg.fused_batching = fused;
    cfg.dispatch_delay_for_test_ms = 20;
    Server server(cfg, make_registry());
    server.start();
    Client client = Client::connect_tcp("127.0.0.1", server.port());

    PredictRequest req = make_request();
    req.ext.want_timing = true;
    const PredictResponse resp = client.predict(req);
    server.stop();

    ASSERT_TRUE(resp.has_timing) << "fused=" << fused;
    EXPECT_LE(resp.timing.batch_wait_us + resp.timing.queue_us +
                  resp.timing.cache_us + resp.timing.encode_us +
                  resp.timing.predict_us + resp.timing.serialize_us,
              resp.timing.total_us)
        << "fused=" << fused;
    // The 20ms dispatch delay is queue time (batch formed, not yet
    // running); batch wait only covers enqueue -> batch formation, which
    // is microseconds on an idle server.
    EXPECT_GE(resp.timing.queue_us, 20'000u) << "fused=" << fused;
    EXPECT_LT(resp.timing.batch_wait_us, 20'000u) << "fused=" << fused;
  }
}

/// Restores the global pool size no matter how a test exits.
struct ThreadCountGuard {
  ~ThreadCountGuard() { util::set_global_threads(0); }
};

TEST_F(ServeTest, FusedBatchingBitIdenticalAcrossBatchSizesAndThreads) {
  // The tentpole invariant: the fused batched path produces bit-identical
  // results to a direct AtlasModel::predict at ANY thread count and ANY
  // batch composition, cold or warm cache. Pseudo-random volley sizes
  // straddle batch_max so batches of 1..8 all occur; concurrent identical
  // requests inside one volley also race the cache inserts, exercising the
  // winner-return path end to end. The reference (request-at-a-time) path
  // runs the same volleys and must match the same direct predictions —
  // making fused and unfused transitively bit-identical.
  const core::Prediction expected_w2 = direct_predict("w2");
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  const auto next = [&rng]() {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return rng >> 33;
  };
  ThreadCountGuard guard;
  for (const int threads : {1, 3, 8}) {
    util::set_global_threads(threads);
    for (const bool fused : {true, false}) {
      ServerConfig cfg = loopback_config();
      cfg.fused_batching = fused;
      Server server(cfg, make_registry());
      server.start();
      // Round 0 is a cold cache (fresh server); later rounds are warm.
      for (int round = 0; round < 3; ++round) {
        const std::size_t n = 1 + next() % 12;
        std::vector<std::string> workloads(n);
        for (std::string& w : workloads) w = (next() & 1) ? "w2" : "w1";
        std::vector<PredictResponse> resp(n);
        std::vector<std::thread> senders;
        senders.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          senders.emplace_back([&, i] {
            Client c = Client::connect_tcp("127.0.0.1", server.port());
            resp[i] = c.predict(make_request(workloads[i]));
          });
        }
        for (std::thread& t : senders) t.join();
        for (std::size_t i = 0; i < n; ++i) {
          const core::Prediction& expected =
              workloads[i] == "w2" ? expected_w2 : *expected_w1_;
          ASSERT_EQ(resp[i].design.size(), expected.design.size())
              << "threads=" << threads << " fused=" << fused
              << " round=" << round << " i=" << i;
          EXPECT_TRUE(same_bits(resp[i].design, expected.design))
              << "threads=" << threads << " fused=" << fused
              << " round=" << round << " i=" << i << " w=" << workloads[i];
          EXPECT_TRUE(same_bits(resp[i].submodule, expected.submodule))
              << "threads=" << threads << " fused=" << fused
              << " round=" << round << " i=" << i << " w=" << workloads[i];
        }
      }
      server.stop();
    }
  }
}

TEST_F(ServeTest, ArenaPoolRecyclesAcrossBatches) {
  // Steady-state serving must stop constructing arenas once the pool has
  // warmed up: a second identical volley reuses the arenas the first one
  // created (the pool grows only under *new* peak concurrency).
  Server server(loopback_config(), make_registry());
  server.start();
  const auto volley = [&] {
    std::vector<std::thread> senders;
    for (int i = 0; i < 4; ++i) {
      senders.emplace_back([&] {
        Client c = Client::connect_tcp("127.0.0.1", server.port());
        c.predict(make_request());
      });
    }
    for (std::thread& t : senders) t.join();
  };
  volley();
  volley();  // warm cache: heads-only, arenas recycled
  server.stop();
  SUCCEED();  // recycling itself is pinned by the ArenaPool unit tests
}

TEST_F(ServeTest, SlowRequestLogEmitsBreakdownAndCountsEveryRequest) {
  ServerConfig cfg = loopback_config();
  cfg.slow_ms = 1;
  cfg.handler_delay_for_test_ms = 5;
  Server server(cfg, make_registry());
  server.start();
  Client client = Client::connect_tcp("127.0.0.1", server.port());

  std::mutex mu;
  std::vector<std::string> lines;
  obs::set_log_sink([&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  });
  const std::uint64_t before =
      obs::Registry::global().counter("atlas_serve_slow_requests_total")
          .value();
  expect_matches_direct(client.predict(make_request()), *expected_w1_);
  expect_matches_direct(client.predict(make_request()), *expected_w1_);
  obs::set_log_sink(nullptr);
  server.stop();

  // Every slow request counts; the log line is rate-limited (~1/sec) so
  // two back-to-back slow requests yield at least one line, maybe two.
  EXPECT_EQ(obs::Registry::global()
                    .counter("atlas_serve_slow_requests_total")
                    .value() -
                before,
            2u);
  std::lock_guard<std::mutex> lock(mu);
  std::size_t slow_lines = 0;
  for (const std::string& line : lines) {
    if (line.find("event=slow_request") == std::string::npos) continue;
    ++slow_lines;
    EXPECT_NE(line.find("endpoint=predict"), std::string::npos) << line;
    EXPECT_NE(line.find("total_ms="), std::string::npos) << line;
    EXPECT_NE(line.find("queue_us="), std::string::npos) << line;
    EXPECT_NE(line.find("encode_us="), std::string::npos) << line;
    EXPECT_NE(line.find("predict_us="), std::string::npos) << line;
  }
  EXPECT_GE(slow_lines, 1u);
}

TEST_F(ServeTest, TraceDumpIsAdminGated) {
  Server server(loopback_config(), make_registry());
  server.start();
  Client client = Client::connect_tcp("127.0.0.1", server.port());
  try {
    client.trace_dump_text();
    FAIL() << "trace_dump should require --allow-admin";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kAdminDisabled);
  }
  server.stop();
}

TEST_F(ServeTest, TraceDumpReturnsChromeJsonAndDrainsTheRing) {
  ServerConfig cfg = loopback_config();
  cfg.allow_admin = true;
  Server server(cfg, make_registry());
  server.start();
  Client client = Client::connect_tcp("127.0.0.1", server.port());

  TraceGuard guard;
  obs::Trace::enable();
  obs::Trace::clear();
  expect_matches_direct(client.predict(make_request()), *expected_w1_);

  const std::string dump = client.trace_dump_text();
  EXPECT_NE(dump.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(dump.find("\"handle_predict\""), std::string::npos);

  // Draining is destructive: a second dump no longer holds the span.
  const std::string second = client.trace_dump_text();
  EXPECT_NE(second.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(second.find("\"handle_predict\""), std::string::npos);
  server.stop();
}

TEST_F(ServeTest, StatsJsonSelectorReturnsStructuredSnapshot) {
  Server server(loopback_config(), make_registry());
  server.start();
  Client client = Client::connect_tcp("127.0.0.1", server.port());
  expect_matches_direct(client.predict(make_request()), *expected_w1_);

  const std::string json = client.stats_text(/*json=*/true);
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"endpoints\""), std::string::npos);
  EXPECT_NE(json.find("\"predict\""), std::string::npos);
  EXPECT_NE(json.find("\"cache\""), std::string::npos);
  EXPECT_NE(json.find("\"design_misses\""), std::string::npos);

  // The default selector still renders the human table.
  EXPECT_NE(client.stats_text().find("cache:"), std::string::npos);
  server.stop();
}

TEST_F(ServeTest, QueueDepthGaugeExportedInMetrics) {
  Server server(loopback_config(), make_registry());
  server.start();
  Client client = Client::connect_tcp("127.0.0.1", server.port());
  expect_matches_direct(client.predict(make_request()), *expected_w1_);
  const std::string metrics = client.metrics_text();
  EXPECT_NE(metrics.find("# TYPE atlas_serve_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(metrics.find("atlas_serve_queue_depth "), std::string::npos);
  server.stop();
}

// ---- PR 10: load piggyback + overload shedding ----------------------------

TEST(LoadExt, TailAppendsAndStripsByteExactly) {
  std::string payload("base-bytes\x01\x02", 12);
  const std::string original = payload;
  LoadReport in;
  in.load = 42;
  in.flags = LoadReport::kFlagWaitDominated;
  append_load_ext(payload, in);
  ASSERT_EQ(payload.size(), original.size() + kLoadExtBytes);

  LoadReport out;
  ASSERT_TRUE(strip_load_ext(payload, out));
  EXPECT_EQ(payload, original) << "strip must restore the payload exactly";
  EXPECT_EQ(out.load, 42u);
  EXPECT_TRUE(out.wait_dominated());

  // No tail present: the payload is untouched and absence is reported —
  // the router's compatibility path for backends predating the flag.
  LoadReport none;
  EXPECT_FALSE(strip_load_ext(payload, none));
  EXPECT_EQ(payload, original);
  std::string tiny = "x";
  EXPECT_FALSE(strip_load_ext(tiny, none));
  EXPECT_EQ(tiny, "x");
}

TEST(LoadExt, WantQueueDepthFlagRoundTripsOnTheWire) {
  PredictRequest req;
  req.model = "m";
  req.netlist_verilog = "module m(); endmodule";
  req.workload = "w1";
  req.cycles = 4;
  const std::string plain = req.encode();
  req.ext.want_queue_depth = true;
  const std::string flagged = req.encode();
  EXPECT_NE(plain, flagged);
  EXPECT_TRUE(PredictRequest::decode(flagged).ext.want_queue_depth);
  EXPECT_FALSE(PredictRequest::decode(plain).ext.want_queue_depth);
}

TEST_F(ServeTest, WantQueueDepthAppendsAStrippableTailOnTheWire) {
  Server server(loopback_config(), make_registry());
  server.start();
  util::Socket raw = util::connect_tcp("127.0.0.1", server.port());

  PredictRequest req = make_request();
  req.ext.want_queue_depth = true;
  write_frame(raw, MsgType::kPredict, req.encode());
  Frame resp;
  ASSERT_TRUE(read_frame(raw, resp));
  ASSERT_EQ(resp.type, MsgType::kPredictOk);
  ASSERT_GE(resp.payload.size(), kLoadExtBytes);
  EXPECT_EQ(resp.payload.substr(resp.payload.size() - kLoadExtBytes, 8),
            "ATLDRPT1");
  LoadReport report;
  ASSERT_TRUE(strip_load_ext(resp.payload, report));
  // After the strip the payload decodes to the same prediction a plain
  // request gets — the bit-identity contract the routing tier relies on.
  expect_matches_direct(PredictResponse::decode(resp.payload), *expected_w1_);

  // A request that did not ask gets no tail (v1-identical replies).
  write_frame(raw, MsgType::kPredict, make_request().encode());
  ASSERT_TRUE(read_frame(raw, resp));
  ASSERT_EQ(resp.type, MsgType::kPredictOk);
  EXPECT_FALSE(strip_load_ext(resp.payload, report));
  server.stop();
}

TEST_F(ServeTest, PredictWithLoadReportMatchesPlainPredict) {
  Server server(loopback_config(), make_registry());
  server.start();
  Client client = Client::connect_tcp("127.0.0.1", server.port());
  const PredictResponse plain = client.predict(make_request());
  LoadReport load;
  const PredictResponse with_load = client.predict(make_request(), &load);
  EXPECT_TRUE(same_bits(with_load.design, plain.design));
  EXPECT_TRUE(same_bits(with_load.submodule, plain.submodule));
  EXPECT_EQ(load.load, 0u) << "idle server: nothing else in flight";
  server.stop();
}

TEST_F(ServeTest, ColdPredictsShedPastTheWatermarkWarmAlwaysAdmitted) {
  ServerConfig cfg = loopback_config();
  cfg.shed_queue_depth = 1;
  cfg.dispatch_delay_for_test_ms = 200;  // park admitted jobs observably
  Server server(cfg, make_registry());
  server.start();
  auto wait_for = [&](const std::function<bool()>& pred) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
  };
  const std::uint64_t shed_before =
      obs::Registry::global().counter("atlas_serve_shed_total").value();

  // Warm the query design while idle: cold, but depth 0 admits it.
  Client client = Client::connect_tcp("127.0.0.1", server.port());
  expect_matches_direct(client.predict(make_request()), *expected_w1_);

  // Occupy the server with an admitted warm request...
  std::thread occupant([&] {
    try {
      Client oc = Client::connect_tcp("127.0.0.1", server.port());
      oc.predict(make_request());
    } catch (const std::exception& e) {
      ADD_FAILURE() << "occupant: " << e.what();
    }
  });
  ASSERT_TRUE(wait_for([&] { return server.inflight_jobs() >= 1; }));

  // ...now a COLD design (uncached text -> encode-heavy) answers
  // kOverloaded immediately instead of queuing toward a timeout. The shed
  // reply still carries the load tail — wait-dominated by definition — so
  // a routing tier learns the depth from the rejection itself.
  PredictRequest cold = make_request();
  cold.netlist_verilog = *verilog_ + "\n// shed-cold-variant\n";
  LoadReport load;
  Client cold_client = Client::connect_tcp("127.0.0.1", server.port());
  try {
    cold_client.predict(cold, &load);
    FAIL() << "expected kOverloaded";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kOverloaded);
  }
  EXPECT_GE(load.load, 1u);
  EXPECT_TRUE(load.wait_dominated());
  EXPECT_GE(obs::Registry::global().counter("atlas_serve_shed_total").value(),
            shed_before + 1);

  // A WARM request during the same overload is admitted (a cache hit costs
  // less than the client's retry would) and answers bit-identically.
  expect_matches_direct(client.predict(make_request()), *expected_w1_);
  occupant.join();

  // Once drained, the cold design is admitted and computes normally.
  ASSERT_TRUE(wait_for([&] { return server.inflight_jobs() == 0; }));
  expect_matches_direct(cold_client.predict(cold), *expected_w1_);
  server.stop();
}

}  // namespace
}  // namespace atlas::serve
