#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "ml/adam.h"
#include "ml/gbdt.h"
#include "ml/losses.h"
#include "ml/matrix.h"
#include "ml/mlp.h"
#include "ml/sgformer.h"
#include "util/arena.h"
#include "util/parallel.h"

namespace atlas::ml {
namespace {

TEST(MatrixTest, BasicOps) {
  Matrix a(2, 3);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(0, 2) = 3;
  a.at(1, 0) = 4;
  a.at(1, 1) = 5;
  a.at(1, 2) = 6;
  Matrix b(3, 2);
  b.at(0, 0) = 7;
  b.at(1, 0) = 8;
  b.at(2, 0) = 9;
  b.at(0, 1) = 1;
  b.at(1, 1) = 2;
  b.at(2, 1) = 3;
  const Matrix c = matmul(a, b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_FLOAT_EQ(c.at(0, 0), 1 * 7 + 2 * 8 + 3 * 9);
  EXPECT_FLOAT_EQ(c.at(1, 1), 4 * 1 + 5 * 2 + 6 * 3);
}

TEST(MatrixTest, TransposedProductsAgree) {
  util::Rng rng(3);
  const Matrix a = Matrix::randn(4, 5, rng, 1.0f);
  const Matrix b = Matrix::randn(4, 6, rng, 1.0f);
  // a^T b via matmul_tn must equal manual transpose multiply.
  const Matrix tn = matmul_tn(a, b);
  ASSERT_EQ(tn.rows(), 5u);
  ASSERT_EQ(tn.cols(), 6u);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      float expect = 0;
      for (std::size_t k = 0; k < 4; ++k) expect += a.at(k, i) * b.at(k, j);
      EXPECT_NEAR(tn.at(i, j), expect, 1e-4);
    }
  }
  const Matrix c = Matrix::randn(7, 5, rng, 1.0f);
  const Matrix d = Matrix::randn(9, 5, rng, 1.0f);
  const Matrix nt = matmul_nt(c, d);
  ASSERT_EQ(nt.rows(), 7u);
  ASSERT_EQ(nt.cols(), 9u);
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = 0; j < 9; ++j) {
      float expect = 0;
      for (std::size_t k = 0; k < 5; ++k) expect += c.at(i, k) * d.at(j, k);
      EXPECT_NEAR(nt.at(i, j), expect, 1e-4);
    }
  }
}

TEST(MatrixTest, ParallelMatmulBitIdenticalToSerial) {
  // matmul_parallel chunks rows across the pool; each output row depends
  // only on its input row, so the result must be bit-identical to the
  // serial matmul at every thread count and grain.
  util::Rng rng(11);
  const Matrix a = Matrix::randn(93, 17, rng, 1.0f);
  const Matrix b = Matrix::randn(17, 29, rng, 1.0f);
  const Matrix serial = matmul(a, b);
  for (const int threads : {1, 4}) {
    util::set_global_threads(threads);
    for (const std::size_t grain : {1u, 8u, 64u, 1024u}) {
      const Matrix par = matmul_parallel(a, b, grain);
      ASSERT_EQ(par.rows(), serial.rows());
      ASSERT_EQ(par.cols(), serial.cols());
      for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(par.data()[i], serial.data()[i])
            << "threads=" << threads << " grain=" << grain << " i=" << i;
      }
    }
  }
  util::set_global_threads(0);
}

TEST(MatrixTest, ShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
  Matrix c(2, 3), d(3, 4);
  EXPECT_THROW(matmul_tn(c, d), std::invalid_argument);
  EXPECT_THROW(matmul_nt(c, d), std::invalid_argument);
  Matrix e(2, 2);
  EXPECT_THROW(c += e, std::invalid_argument);
}

TEST(MatrixTest, ReluAndMask) {
  Matrix x(1, 4);
  x.at(0, 0) = -1;
  x.at(0, 1) = 2;
  x.at(0, 2) = -3;
  x.at(0, 3) = 4;
  const auto mask = relu_inplace(x);
  EXPECT_FLOAT_EQ(x.at(0, 0), 0);
  EXPECT_FLOAT_EQ(x.at(0, 1), 2);
  Matrix g(1, 4, 1.0f);
  relu_backward_inplace(g, mask);
  EXPECT_FLOAT_EQ(g.at(0, 0), 0);
  EXPECT_FLOAT_EQ(g.at(0, 1), 1);
  EXPECT_FLOAT_EQ(g.at(0, 2), 0);
  EXPECT_FLOAT_EQ(g.at(0, 3), 1);
}

TEST(MatrixTest, MeanRowsAndNormalize) {
  Matrix x(2, 2);
  x.at(0, 0) = 3;
  x.at(0, 1) = 4;
  x.at(1, 0) = 1;
  x.at(1, 1) = 0;
  const Matrix m = mean_rows(x);
  EXPECT_FLOAT_EQ(m.at(0, 0), 2);
  EXPECT_FLOAT_EQ(m.at(0, 1), 2);
  const auto norms = l2_normalize_rows(x);
  EXPECT_NEAR(norms[0], 5.0, 1e-5);
  EXPECT_NEAR(x.at(0, 0), 0.6, 1e-5);
  EXPECT_NEAR(x.at(0, 1), 0.8, 1e-5);
}

TEST(MatrixTest, SerializationRoundTrip) {
  util::Rng rng(5);
  const Matrix m = Matrix::randn(3, 7, rng, 2.0f);
  std::stringstream ss;
  write_matrix(ss, m);
  const Matrix back = read_matrix(ss);
  ASSERT_EQ(back.rows(), m.rows());
  ASSERT_EQ(back.cols(), m.cols());
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_FLOAT_EQ(back.data()[i], m.data()[i]);
  }
}

TEST(LossTest, SoftmaxCrossEntropyGradientNumeric) {
  util::Rng rng(11);
  Matrix logits = Matrix::randn(4, 3, rng, 1.0f);
  const std::vector<int> labels = {0, 2, 1, 2};
  const LossGrad lg = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    for (std::size_t j = 0; j < logits.cols(); ++j) {
      Matrix lp = logits;
      lp.at(i, j) += eps;
      Matrix lm = logits;
      lm.at(i, j) -= eps;
      const double num = (softmax_cross_entropy(lp, labels).loss -
                          softmax_cross_entropy(lm, labels).loss) /
                         (2 * eps);
      EXPECT_NEAR(lg.grad.at(i, j), num, 5e-3);
    }
  }
}

TEST(LossTest, MseGradient) {
  Matrix pred(3, 1);
  pred.at(0, 0) = 1;
  pred.at(1, 0) = 2;
  pred.at(2, 0) = 3;
  const std::vector<float> target = {1.5f, 2.0f, 0.0f};
  const LossGrad lg = mse(pred, target);
  EXPECT_NEAR(lg.loss, 0.5 * (0.25 + 0 + 9) / 3, 1e-6);
  EXPECT_NEAR(lg.grad.at(0, 0), -0.5 / 3, 1e-6);
  EXPECT_NEAR(lg.grad.at(2, 0), 3.0 / 3, 1e-6);
}

TEST(LossTest, InfoNceGradientNumeric) {
  util::Rng rng(13);
  Matrix a = Matrix::randn(5, 4, rng, 1.0f);
  Matrix p = Matrix::randn(5, 4, rng, 1.0f);
  const InfoNceGrad g = info_nce(a, p, 0.3f);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      Matrix ap = a;
      ap.at(i, j) += eps;
      Matrix am = a;
      am.at(i, j) -= eps;
      const double num =
          (info_nce(ap, p, 0.3f).loss - info_nce(am, p, 0.3f).loss) / (2 * eps);
      EXPECT_NEAR(g.grad_anchor.at(i, j), num, 5e-3) << i << "," << j;
      Matrix pp = p;
      pp.at(i, j) += eps;
      Matrix pm = p;
      pm.at(i, j) -= eps;
      const double nump =
          (info_nce(a, pp, 0.3f).loss - info_nce(a, pm, 0.3f).loss) / (2 * eps);
      EXPECT_NEAR(g.grad_positive.at(i, j), nump, 5e-3) << i << "," << j;
    }
  }
}

TEST(LossTest, InfoNcePerfectAlignmentHasLowLoss) {
  util::Rng rng(17);
  Matrix a = Matrix::randn(8, 16, rng, 1.0f);
  const Matrix p = a;  // positives identical to anchors
  const InfoNceGrad g = info_nce(a, p, 0.05f);
  EXPECT_GT(g.accuracy, 0.9);
  Matrix q = Matrix::randn(8, 16, rng, 1.0f);  // random positives
  const InfoNceGrad bad = info_nce(a, q, 0.05f);
  EXPECT_LT(g.loss, bad.loss);
}

TEST(LossTest, InvalidInputsThrow) {
  Matrix a(1, 4), b(2, 4);
  EXPECT_THROW(info_nce(a, b), std::invalid_argument);
  Matrix c(2, 4), d(2, 4);
  EXPECT_THROW(info_nce(c, d, -1.0f), std::invalid_argument);
  Matrix logits(2, 3);
  EXPECT_THROW(softmax_cross_entropy(logits, {0}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 5}), std::invalid_argument);
  Matrix pred(2, 2);
  EXPECT_THROW(mse(pred, {1.0f, 2.0f}), std::invalid_argument);
}

TEST(MlpTest, GradientNumeric) {
  util::Rng rng(19);
  Mlp mlp({3, 5, 2}, rng);
  const Matrix x = Matrix::randn(4, 3, rng, 1.0f);
  const std::vector<int> labels = {0, 1, 1, 0};

  // Analytic gradient of loss w.r.t. x.
  mlp.zero_grad();
  const Matrix logits = mlp.forward(x);
  const LossGrad lg = softmax_cross_entropy(logits, labels);
  const Matrix dx = mlp.backward(lg.grad);

  const float eps = 1e-3f;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      Matrix xp = x;
      xp.at(i, j) += eps;
      Matrix xm = x;
      xm.at(i, j) -= eps;
      const double lp = softmax_cross_entropy(mlp.infer(xp), labels).loss;
      const double lm = softmax_cross_entropy(mlp.infer(xm), labels).loss;
      EXPECT_NEAR(dx.at(i, j), (lp - lm) / (2 * eps), 5e-3);
    }
  }
}

TEST(MlpTest, TrainsXor) {
  util::Rng rng(23);
  Mlp mlp({2, 16, 2}, rng);
  std::vector<ParamRef> params;
  mlp.collect_params(params);
  AdamConfig cfg;
  cfg.lr = 0.01f;
  Adam adam(params, cfg);

  Matrix x(4, 2);
  x.at(0, 0) = 0;
  x.at(0, 1) = 0;
  x.at(1, 0) = 0;
  x.at(1, 1) = 1;
  x.at(2, 0) = 1;
  x.at(2, 1) = 0;
  x.at(3, 0) = 1;
  x.at(3, 1) = 1;
  const std::vector<int> labels = {0, 1, 1, 0};
  double last_loss = 1e9;
  for (int step = 0; step < 400; ++step) {
    mlp.zero_grad();
    const Matrix logits = mlp.forward(x);
    const LossGrad lg = softmax_cross_entropy(logits, labels);
    mlp.backward(lg.grad);
    adam.step();
    last_loss = lg.loss;
  }
  EXPECT_LT(last_loss, 0.05);
  EXPECT_DOUBLE_EQ(accuracy(mlp.infer(x), labels), 1.0);
}

TEST(MlpTest, SerializationPreservesInference) {
  util::Rng rng(29);
  Mlp mlp({4, 8, 3}, rng);
  const Matrix x = Matrix::randn(5, 4, rng, 1.0f);
  const Matrix y = mlp.infer(x);
  std::stringstream ss;
  mlp.save(ss);
  const Mlp back = Mlp::load(ss);
  const Matrix y2 = back.infer(x);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_FLOAT_EQ(y2.data()[i], y.data()[i]);
  }
}

class SgFormerTest : public ::testing::Test {
 protected:
  SgFormerTest() {
    cfg_.in_dim = 6;
    cfg_.dim = 8;
    cfg_.seed = 31;
    edges_ = {{0, 1}, {1, 2}, {2, 3}, {0, 3}};
    util::Rng rng(37);
    feats_ = Matrix::randn(4, 6, rng, 1.0f);
  }

  GraphView view() const {
    GraphView v;
    v.num_nodes = 4;
    v.feat_dim = 6;
    v.features = feats_.data();
    v.edges = &edges_;
    return v;
  }

  SgFormer::Config cfg_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges_;
  Matrix feats_;
};

TEST_F(SgFormerTest, ForwardShapes) {
  SgFormer enc(cfg_);
  const auto out = enc.forward(view());
  EXPECT_EQ(out.node_emb.rows(), 4u);
  EXPECT_EQ(out.node_emb.cols(), 8u);
  EXPECT_EQ(out.graph_emb.rows(), 1u);
  EXPECT_EQ(out.graph_emb.cols(), 8u);
  // Graph embedding is the mean of node embeddings.
  const Matrix m = mean_rows(out.node_emb);
  for (std::size_t j = 0; j < 8; ++j) {
    EXPECT_NEAR(out.graph_emb.at(0, j), m.at(0, j), 1e-5);
  }
}

TEST_F(SgFormerTest, DeterministicForward) {
  SgFormer a(cfg_), b(cfg_);
  const auto oa = a.forward(view());
  const auto ob = b.forward(view());
  for (std::size_t i = 0; i < oa.node_emb.size(); ++i) {
    EXPECT_FLOAT_EQ(oa.node_emb.data()[i], ob.node_emb.data()[i]);
  }
}

TEST_F(SgFormerTest, EdgesInfluenceEmbeddings) {
  SgFormer enc(cfg_);
  const auto with_edges = enc.forward(view());
  GraphView no_edges = view();
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> empty;
  no_edges.edges = &empty;
  const auto without = enc.forward(no_edges);
  double diff = 0;
  for (std::size_t i = 0; i < with_edges.node_emb.size(); ++i) {
    diff += std::abs(with_edges.node_emb.data()[i] - without.node_emb.data()[i]);
  }
  EXPECT_GT(diff, 1e-3);
}

TEST_F(SgFormerTest, GradientNumericOnWeights) {
  // Loss = sum of graph embedding; check d(loss)/d(params) numerically.
  SgFormer enc(cfg_);
  SgFormer::Cache cache;
  enc.forward(view(), &cache);
  enc.zero_grad();
  Matrix d_graph(1, 8, 1.0f);  // dL/d(graph_emb) = 1
  enc.backward(cache, Matrix(), d_graph);

  std::vector<ParamRef> params;
  enc.collect_params(params);
  auto loss_fn = [&]() {
    const auto out = enc.forward(view());
    double s = 0;
    for (std::size_t j = 0; j < 8; ++j) s += out.graph_emb.at(0, j);
    return s;
  };
  const float eps = 1e-3f;
  int checked = 0;
  for (const ParamRef& p : params) {
    // Spot-check a few entries per parameter to keep runtime low.
    for (std::size_t k = 0; k < p.size; k += std::max<std::size_t>(1, p.size / 5)) {
      const float orig = p.value[k];
      p.value[k] = orig + eps;
      const double lp = loss_fn();
      p.value[k] = orig - eps;
      const double lm = loss_fn();
      p.value[k] = orig;
      EXPECT_NEAR(p.grad[k], (lp - lm) / (2 * eps), 2e-2) << "param entry " << k;
      ++checked;
    }
  }
  EXPECT_GT(checked, 20);
}

TEST_F(SgFormerTest, GradientNumericNodeLoss) {
  // Loss over a single node embedding entry exercises the node-grad path.
  SgFormer enc(cfg_);
  SgFormer::Cache cache;
  enc.forward(view(), &cache);
  enc.zero_grad();
  Matrix d_node(4, 8);
  d_node.at(2, 3) = 1.0f;
  enc.backward(cache, d_node, Matrix());

  std::vector<ParamRef> params;
  enc.collect_params(params);
  auto loss_fn = [&]() { return static_cast<double>(enc.forward(view()).node_emb.at(2, 3)); };
  const float eps = 1e-3f;
  const ParamRef& p = params[0];  // w_in
  for (std::size_t k = 0; k < p.size; k += 7) {
    const float orig = p.value[k];
    p.value[k] = orig + eps;
    const double lp = loss_fn();
    p.value[k] = orig - eps;
    const double lm = loss_fn();
    p.value[k] = orig;
    EXPECT_NEAR(p.grad[k], (lp - lm) / (2 * eps), 2e-2);
  }
}

TEST_F(SgFormerTest, SerializationRoundTrip) {
  SgFormer enc(cfg_);
  const auto before = enc.forward(view());
  std::stringstream ss;
  enc.save(ss);
  SgFormer back = SgFormer::load(ss);
  const auto after = back.forward(view());
  for (std::size_t i = 0; i < before.node_emb.size(); ++i) {
    EXPECT_FLOAT_EQ(after.node_emb.data()[i], before.node_emb.data()[i]);
  }
}

TEST_F(SgFormerTest, FusedForwardBitIdenticalToForward) {
  // The batched-serving kernel: several graphs of different sizes and
  // topologies packed into one forward_fused call must reproduce each
  // graph's forward() embedding bit for bit, at every thread count (the
  // serve-path determinism contract rests on this).
  SgFormer enc(cfg_);
  util::Rng rng(91);
  const std::vector<std::size_t> sizes = {4, 2, 5, 1};
  const std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      edge_sets = {edges_, {{0, 1}}, {{0, 1}, {1, 2}, {2, 4}, {3, 4}, {0, 4}},
                   {}};
  std::vector<Matrix> feats;
  std::size_t total = 0;
  for (const std::size_t n : sizes) {
    feats.push_back(Matrix::randn(n, 6, rng, 1.0f));
    total += n;
  }

  std::vector<Matrix> ref;
  for (std::size_t g = 0; g < sizes.size(); ++g) {
    GraphView v;
    v.num_nodes = sizes[g];
    v.feat_dim = 6;
    v.features = feats[g].data();
    v.edges = &edge_sets[g];
    ref.push_back(enc.forward(v).graph_emb);
  }

  std::vector<SgFormer::NormAdjacency> adjs;
  adjs.reserve(sizes.size());
  std::vector<SgFormer::Segment> segs;
  for (std::size_t g = 0; g < sizes.size(); ++g) {
    adjs.push_back(SgFormer::build_norm_adjacency(sizes[g], &edge_sets[g]));
  }
  for (std::size_t g = 0; g < sizes.size(); ++g) {
    segs.push_back(SgFormer::Segment{sizes[g], &adjs[g]});
  }
  Matrix packed(total, 6);
  float* dst = packed.data();
  for (const Matrix& f : feats) {
    std::copy(f.data(), f.data() + f.size(), dst);
    dst += f.size();
  }

  for (const int threads : {1, 3, 8}) {
    util::set_global_threads(threads);
    util::Arena arena;
    std::vector<float> out(sizes.size() * 8, -1.0f);
    enc.forward_fused(segs.data(), segs.size(), packed.data(), out.data(),
                      arena);
    for (std::size_t g = 0; g < sizes.size(); ++g) {
      for (std::size_t j = 0; j < 8; ++j) {
        EXPECT_EQ(out[g * 8 + j], ref[g].at(0, j))
            << "threads=" << threads << " graph=" << g << " dim=" << j;
      }
    }
    // A recycled arena (reset, then reused) must not change results.
    arena.reset();
    std::vector<float> again(sizes.size() * 8, -2.0f);
    enc.forward_fused(segs.data(), segs.size(), packed.data(), again.data(),
                      arena);
    EXPECT_EQ(again, out) << "threads=" << threads;
  }
  util::set_global_threads(0);
}

TEST_F(SgFormerTest, BuildNormAdjacencyMatchesForward) {
  // forward() now consumes the shared adjacency builder; a graph forwarded
  // through two independently built SgFormers with the same seed stays
  // deterministic (guards the extraction refactor).
  SgFormer a(cfg_), b(cfg_);
  const auto oa = a.forward(view());
  const auto ob = b.forward(view());
  for (std::size_t i = 0; i < oa.graph_emb.size(); ++i) {
    EXPECT_EQ(oa.graph_emb.data()[i], ob.graph_emb.data()[i]);
  }
  // Self-loops plus both directions of every edge, weights positive.
  const auto adj = SgFormer::build_norm_adjacency(4, &edges_);
  EXPECT_EQ(adj.edges.size(), 4 + 2 * edges_.size());
  for (const float w : adj.weights) EXPECT_GT(w, 0.0f);
}

TEST_F(SgFormerTest, RejectsBadInputs) {
  SgFormer enc(cfg_);
  GraphView empty;
  empty.num_nodes = 0;
  EXPECT_THROW(enc.forward(empty), std::invalid_argument);
  GraphView wrong = view();
  wrong.feat_dim = 5;
  EXPECT_THROW(enc.forward(wrong), std::invalid_argument);
  SgFormer::Config bad;
  bad.in_dim = 0;
  EXPECT_THROW(SgFormer{bad}, std::invalid_argument);
}

TEST(GbdtTest, FitsLinearFunction) {
  util::Rng rng(41);
  const std::size_t n = 800;
  Matrix x(n, 3);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 3; ++j) x.at(i, j) = static_cast<float>(rng.next_double(-2, 2));
    y[i] = 3.0 * x.at(i, 0) - 2.0 * x.at(i, 1) + 0.5;
  }
  GbdtConfig cfg;
  cfg.n_trees = 150;
  cfg.learning_rate = 0.1;
  GbdtRegressor model(cfg);
  model.fit(x, y);
  EXPECT_LT(model.training_rmse(x, y), 0.6);
}

TEST(GbdtTest, FitsNonlinearInteraction) {
  util::Rng rng(43);
  const std::size_t n = 1500;
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x.at(i, 0) = static_cast<float>(rng.next_double(-1, 1));
    x.at(i, 1) = static_cast<float>(rng.next_double(-1, 1));
    // Depth-2 interaction with asymmetric thresholds (pure XOR has zero
    // marginal gain at the root, which defeats any greedy variance
    // splitter, including XGBoost's).
    y[i] = (x.at(i, 0) > 0.2 && x.at(i, 1) > -0.1) ? 5.0 : -5.0;
  }
  GbdtConfig cfg;
  cfg.n_trees = 80;
  cfg.learning_rate = 0.2;
  GbdtRegressor model(cfg);
  model.fit(x, y);
  // Quantile binning leaves irreducible error near the step boundary; the
  // bar is "far below the target's std-dev of 5", not exact recovery.
  EXPECT_LT(model.training_rmse(x, y), 3.0);
}

TEST(GbdtTest, BatchedTraversalBitIdenticalToPredictRow) {
  // The SoA forest traversal (predict_rows) must reproduce the pointer-
  // chasing predict_row exactly: same trees, same accumulation order
  // (base + tree 0 + tree 1 + ...), so every double is bit-identical —
  // including on NaN features, which fail every comparison and go right
  // in both layouts.
  util::Rng rng(47);
  const std::size_t n = 400;
  Matrix x(n, 3);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      x.at(i, j) = static_cast<float>(rng.next_double(-2, 2));
    }
    y[i] = std::sin(x.at(i, 0)) + 0.5 * x.at(i, 1) * x.at(i, 2);
  }
  GbdtConfig cfg;
  cfg.n_trees = 30;
  GbdtRegressor model(cfg);
  model.fit(x, y);

  // Queries include NaN rows and out-of-distribution values.
  Matrix q(64, 3);
  for (std::size_t i = 0; i < q.rows(); ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      q.at(i, j) = static_cast<float>(rng.next_double(-4, 4));
    }
  }
  q.at(5, 1) = std::numeric_limits<float>::quiet_NaN();
  q.at(17, 0) = std::numeric_limits<float>::quiet_NaN();

  std::vector<double> batched(q.rows());
  model.predict_rows(q.data(), q.rows(), q.cols(), batched.data());
  for (const int threads : {1, 4}) {
    util::set_global_threads(threads);
    const std::vector<double> via_predict = model.predict(q);
    for (std::size_t i = 0; i < q.rows(); ++i) {
      const double serial = model.predict_row(q.row(i));
      EXPECT_EQ(batched[i], serial) << "row " << i;
      EXPECT_EQ(via_predict[i], serial) << "row " << i << " threads "
                                        << threads;
    }
  }
  util::set_global_threads(0);
}

TEST(GbdtTest, ConstantTargetPredictsConstant) {
  Matrix x(20, 2);
  for (std::size_t i = 0; i < 20; ++i) x.at(i, 0) = static_cast<float>(i);
  std::vector<double> y(20, 7.5);
  GbdtRegressor model;
  model.fit(x, y);
  EXPECT_NEAR(model.predict_row(x.row(3)), 7.5, 1e-9);
}

TEST(GbdtTest, SerializationRoundTrip) {
  util::Rng rng(47);
  Matrix x(200, 4);
  std::vector<double> y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    for (std::size_t j = 0; j < 4; ++j) x.at(i, j) = static_cast<float>(rng.next_double());
    y[i] = x.at(i, 0) * 4 - x.at(i, 2);
  }
  GbdtConfig cfg;
  cfg.n_trees = 40;
  GbdtRegressor model(cfg);
  model.fit(x, y);
  std::stringstream ss;
  model.save(ss);
  const GbdtRegressor back = GbdtRegressor::load(ss);
  for (std::size_t i = 0; i < 200; i += 17) {
    EXPECT_DOUBLE_EQ(back.predict_row(x.row(i)), model.predict_row(x.row(i)));
  }
}

TEST(GbdtTest, InvalidInputsThrow) {
  GbdtRegressor model;
  Matrix empty;
  EXPECT_THROW(model.fit(empty, {}), std::invalid_argument);
  Matrix x(3, 2);
  EXPECT_THROW(model.fit(x, {1.0, 2.0}), std::invalid_argument);
  GbdtConfig bad;
  bad.max_depth = 0;
  EXPECT_THROW(GbdtRegressor{bad}, std::invalid_argument);
}

TEST(GbdtTest, RespectsMinLeaf) {
  // With min_samples_leaf = n, no split is possible: every prediction is
  // the target mean.
  Matrix x(10, 1);
  std::vector<double> y(10);
  for (std::size_t i = 0; i < 10; ++i) {
    x.at(i, 0) = static_cast<float>(i);
    y[i] = static_cast<double>(i);
  }
  GbdtConfig cfg;
  cfg.min_samples_leaf = 10;
  cfg.n_trees = 10;
  cfg.subsample = 1.0;  // bagging would shift the in-bag leaf mean
  GbdtRegressor model(cfg);
  model.fit(x, y);
  EXPECT_NEAR(model.predict_row(x.row(0)), 4.5, 1e-9);
  EXPECT_NEAR(model.predict_row(x.row(9)), 4.5, 1e-9);
}

TEST(AdamTest, MinimizesQuadratic) {
  // Minimize f(w) = sum (w_i - t_i)^2 directly through ParamRefs.
  std::vector<float> w(4, 0.0f);
  std::vector<float> g(4, 0.0f);
  const std::vector<float> target = {1.0f, -2.0f, 3.0f, 0.5f};
  Adam adam({ParamRef{w.data(), g.data(), 4}}, AdamConfig{.lr = 0.05f});
  for (int step = 0; step < 500; ++step) {
    for (int i = 0; i < 4; ++i) g[static_cast<std::size_t>(i)] = 2 * (w[static_cast<std::size_t>(i)] - target[static_cast<std::size_t>(i)]);
    adam.step();
  }
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(w[static_cast<std::size_t>(i)], target[static_cast<std::size_t>(i)], 1e-2);
}

}  // namespace
}  // namespace atlas::ml
