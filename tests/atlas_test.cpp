#include <gtest/gtest.h>

#include <filesystem>

#include "atlas/finetune.h"
#include "atlas/logic_cones.h"
#include "atlas/memory_model.h"
#include "atlas/metrics.h"
#include "atlas/model.h"
#include "atlas/preprocess.h"
#include "atlas/pretrain.h"
#include "netlist/verilog_io.h"
#include "util/arena.h"
#include "util/parallel.h"

namespace atlas::core {
namespace {

/// Shared, lazily built fixture data: preparing designs is the expensive
/// part, so build two small ones once for the whole suite.
class AtlasCoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = new liberty::Library(liberty::make_default_library());
    PreprocessConfig cfg;
    cfg.cycles = 40;
    train_ = new DesignData(
        prepare_design(designgen::paper_design_spec(1, 0.0025), *lib_, cfg));
    test_ = new DesignData(
        prepare_design(designgen::paper_design_spec(2, 0.0025), *lib_, cfg));
  }
  static void TearDownTestSuite() {
    delete train_;
    delete test_;
    delete lib_;
    train_ = nullptr;
    test_ = nullptr;
    lib_ = nullptr;
  }

  static liberty::Library* lib_;
  static DesignData* train_;
  static DesignData* test_;
};

liberty::Library* AtlasCoreTest::lib_ = nullptr;
DesignData* AtlasCoreTest::train_ = nullptr;
DesignData* AtlasCoreTest::test_ = nullptr;

TEST_F(AtlasCoreTest, PreprocessAlignsStages) {
  ASSERT_EQ(train_->gate_graphs.size(), train_->plus_graphs.size());
  ASSERT_EQ(train_->gate_graphs.size(), train_->post_graphs.size());
  for (std::size_t i = 0; i < train_->gate_graphs.size(); ++i) {
    EXPECT_EQ(train_->gate_graphs[i].submodule, train_->post_graphs[i].submodule);
    // Post-layout graphs may differ in size (buffers, clock tree) but not
    // wildly.
    const double ratio = static_cast<double>(train_->post_graphs[i].num_nodes()) /
                         static_cast<double>(train_->gate_graphs[i].num_nodes());
    EXPECT_GT(ratio, 0.4);
    EXPECT_LT(ratio, 2.5);
  }
}

TEST_F(AtlasCoreTest, PreprocessRecordsTimers) {
  EXPECT_GT(train_->timers.get("pnr"), 0.0);
  EXPECT_GT(train_->timers.get("golden_sim"), 0.0);
  EXPECT_GT(train_->timers.get("atlas_pre"), 0.0);
}

TEST_F(AtlasCoreTest, WorkloadDataComplete) {
  ASSERT_EQ(train_->workloads.size(), 2u);
  for (const auto& wl : train_->workloads) {
    EXPECT_EQ(wl.gate_trace.num_cycles(), 40);
    EXPECT_EQ(wl.golden.num_cycles(), 40);
    EXPECT_GT(wl.golden.average_design().total(), 0.0);
    EXPECT_GT(wl.gate_level.average_design().total(), 0.0);
    // Gate level has no clock network.
    EXPECT_DOUBLE_EQ(wl.gate_level.average_design().clock, 0.0);
    EXPECT_GT(wl.golden.average_design().clock, 0.0);
  }
}

TEST_F(AtlasCoreTest, PretrainLossesDecrease) {
  PretrainConfig cfg;
  cfg.epochs = 4;
  cfg.cycles_per_graph = 2;
  cfg.dim = 16;
  const PretrainResult res = pretrain_encoder({train_}, cfg);
  ASSERT_EQ(res.report.epochs.size(), 4u);
  const EpochStats& first = res.report.epochs.front();
  const EpochStats& last = res.report.epochs.back();
  EXPECT_LT(last.total(), first.total());
  // Toggle task is learnable well above chance.
  EXPECT_GT(last.acc_toggle, 0.6);
  // Cross-stage alignment improves over random in-batch matching.
  EXPECT_GT(last.acc_cl_cross, 0.2);
}

TEST_F(AtlasCoreTest, TaskMaskDisablesTasks) {
  PretrainConfig cfg;
  cfg.epochs = 1;
  cfg.cycles_per_graph = 1;
  cfg.dim = 16;
  TaskMask only_toggle;
  only_toggle.node_type = only_toggle.size = false;
  only_toggle.cl_gate = only_toggle.cl_cross = false;
  const PretrainResult res = pretrain_encoder({train_}, cfg, only_toggle);
  const EpochStats& s = res.report.epochs.back();
  EXPECT_GT(s.loss_toggle, 0.0);
  EXPECT_DOUBLE_EQ(s.loss_type, 0.0);
  EXPECT_DOUBLE_EQ(s.loss_size, 0.0);
  EXPECT_DOUBLE_EQ(s.loss_cl_gate, 0.0);
  EXPECT_DOUBLE_EQ(s.loss_cl_cross, 0.0);
}

TEST_F(AtlasCoreTest, PreprocessThreadEquivalenceBitExact) {
  // prepare_design runs workloads in parallel and parallelizes per-node
  // feature extraction; all outputs must be bit-identical at threads=1 vs
  // threads=4 (exact float comparisons, no tolerances).
  PreprocessConfig cfg;
  cfg.cycles = 20;
  const auto spec = designgen::paper_design_spec(3, 0.002);
  util::set_global_threads(1);
  const DesignData serial = prepare_design(spec, *lib_, cfg);
  util::set_global_threads(4);
  const DesignData threaded = prepare_design(spec, *lib_, cfg);
  util::set_global_threads(0);

  ASSERT_EQ(serial.workloads.size(), threaded.workloads.size());
  for (std::size_t w = 0; w < serial.workloads.size(); ++w) {
    const auto& a = serial.workloads[w];
    const auto& b = threaded.workloads[w];
    EXPECT_EQ(a.name, b.name);
    ASSERT_EQ(a.golden.num_cycles(), b.golden.num_cycles());
    for (int c = 0; c < a.golden.num_cycles(); ++c) {
      ASSERT_EQ(a.golden.design(c).total(), b.golden.design(c).total())
          << "workload " << w << " cycle " << c;
      ASSERT_EQ(a.gate_level.design(c).total(), b.gate_level.design(c).total())
          << "workload " << w << " cycle " << c;
      for (std::size_t sm = 0; sm < a.golden.num_submodules(); ++sm) {
        const auto id = static_cast<netlist::SubmoduleId>(sm);
        ASSERT_EQ(a.golden.submodule(c, id).total(),
                  b.golden.submodule(c, id).total());
      }
    }
    // Toggle traces byte-for-byte (gate and post-layout net spaces differ,
    // so each trace is compared over its own net range).
    ASSERT_EQ(a.gate_trace.num_nets(), b.gate_trace.num_nets());
    ASSERT_EQ(a.post_trace.num_nets(), b.post_trace.num_nets());
    for (int c = 0; c < a.gate_trace.num_cycles(); ++c) {
      for (netlist::NetId n = 0; n < a.gate_trace.num_nets(); ++n) {
        ASSERT_EQ(a.gate_trace.transitions(c, n), b.gate_trace.transitions(c, n));
        ASSERT_EQ(a.gate_trace.value(c, n), b.gate_trace.value(c, n));
      }
      for (netlist::NetId n = 0; n < a.post_trace.num_nets(); ++n) {
        ASSERT_EQ(a.post_trace.transitions(c, n), b.post_trace.transitions(c, n));
      }
    }
  }
  // Sub-module graphs: same structure and bit-identical static features.
  ASSERT_EQ(serial.gate_graphs.size(), threaded.gate_graphs.size());
  for (std::size_t g = 0; g < serial.gate_graphs.size(); ++g) {
    const auto& a = serial.gate_graphs[g];
    const auto& b = threaded.gate_graphs[g];
    ASSERT_EQ(a.submodule, b.submodule);
    ASSERT_EQ(a.cells, b.cells);
    ASSERT_EQ(a.edges, b.edges);
    ASSERT_EQ(a.num_nodes(), b.num_nodes());
    for (std::size_t i = 0; i < a.num_nodes(); ++i) {
      for (std::size_t j = 0; j < graph::kFeatureDim; ++j) {
        ASSERT_EQ(a.static_features.at(i, j), b.static_features.at(i, j))
            << "graph " << g << " node " << i << " feat " << j;
      }
    }
  }
}

TEST_F(AtlasCoreTest, SubmoduleStaticCountsMatchNetlist) {
  const auto& g = train_->gate_graphs[0];
  const SubmoduleStatic st = compute_submodule_static(train_->gate, g);
  int comb = 0, reg = 0;
  for (const auto cid : g.cells) {
    const auto group = liberty::power_group_of(train_->gate.lib_cell(cid).type);
    comb += group == liberty::PowerGroup::kComb;
    reg += group == liberty::PowerGroup::kRegister;
  }
  EXPECT_EQ(st.n_comb, comb);
  EXPECT_EQ(st.n_reg, reg);
  EXPECT_GT(st.clockpin_reg_fj, 0.0);
}

TEST_F(AtlasCoreTest, CycleExtrasZeroWhenNoToggles) {
  const auto& g = train_->gate_graphs[0];
  const SubmoduleStatic st = compute_submodule_static(train_->gate, g);
  // Build a trace with no transitions at all.
  sim::ToggleTrace quiet(train_->gate.num_nets(), 1);
  const CycleExtras ex = compute_cycle_extras(g, st, quiet, 0);
  EXPECT_FLOAT_EQ(ex.i_comb, 0.0f);
  EXPECT_FLOAT_EQ(ex.c_comb, 0.0f);
  EXPECT_FLOAT_EQ(ex.i_reg, 0.0f);
  // Physics floor is leakage (+ clock pins for registers).
  EXPECT_NEAR(comb_physics_uw(st, ex), st.leak_comb_uw, 1e-9);
  EXPECT_GT(reg_physics_uw(st, ex), st.leak_reg_uw);
}

TEST_F(AtlasCoreTest, EndToEndTrainPredictEvaluate) {
  PretrainConfig pcfg;
  pcfg.epochs = 3;
  pcfg.cycles_per_graph = 2;
  pcfg.dim = 16;
  PretrainResult pre = pretrain_encoder({train_}, pcfg);

  FinetuneConfig fcfg;
  fcfg.gbdt.n_trees = 60;
  fcfg.cycle_stride = 2;
  GroupModels models = finetune_models({train_}, pre.encoder, fcfg);

  const AtlasModel model(std::move(pre.encoder), std::move(models));
  const auto& wl = test_->workloads[0];
  const Prediction pred =
      model.predict(test_->gate, test_->gate_graphs, wl.gate_trace);
  ASSERT_EQ(pred.num_cycles, 40);
  ASSERT_EQ(pred.num_submodules, test_->gate.submodules().size());

  const GroupMape atlas_m = evaluate_prediction(wl.golden, pred);
  const GroupMape base_m = evaluate_baseline(wl.golden, wl.gate_level);
  // Single-design training at tiny scale: demand sanity, not paper accuracy.
  EXPECT_LT(atlas_m.total, 60.0);
  EXPECT_DOUBLE_EQ(base_m.clock, 100.0);
  EXPECT_LT(atlas_m.clock, base_m.clock);
  // Predictions are nonnegative everywhere.
  for (int c = 0; c < pred.num_cycles; ++c) {
    EXPECT_GE(pred.at(c).comb, 0.0);
    EXPECT_GE(pred.at(c).clock, 0.0);
    EXPECT_GE(pred.at(c).reg, 0.0);
  }
}

TEST_F(AtlasCoreTest, ModelSerializationRoundTrip) {
  PretrainConfig pcfg;
  pcfg.epochs = 1;
  pcfg.cycles_per_graph = 1;
  pcfg.dim = 16;
  PretrainResult pre = pretrain_encoder({train_}, pcfg);
  FinetuneConfig fcfg;
  fcfg.gbdt.n_trees = 20;
  fcfg.cycle_stride = 4;
  GroupModels models = finetune_models({train_}, pre.encoder, fcfg);
  const AtlasModel model(std::move(pre.encoder), std::move(models));

  const std::string path = ::testing::TempDir() + "/atlas_model_test.bin";
  model.save(path);
  const AtlasModel back = AtlasModel::load(path);
  EXPECT_EQ(back.encoder().dim(), model.encoder().dim());

  // A loaded model is the same model: every cycle and every sub-module row
  // must be bit-identical, not merely close — serving depends on artifacts
  // behaving interchangeably with the in-memory original.
  const auto& wl = test_->workloads[0];
  const Prediction a = model.predict(test_->gate, test_->gate_graphs, wl.gate_trace);
  const Prediction b = back.predict(test_->gate, test_->gate_graphs, wl.gate_trace);
  ASSERT_EQ(a.num_cycles, b.num_cycles);
  ASSERT_EQ(a.num_submodules, b.num_submodules);
  for (int c = 0; c < a.num_cycles; ++c) {
    EXPECT_EQ(a.at(c).comb, b.at(c).comb);
    EXPECT_EQ(a.at(c).clock, b.at(c).clock);
    EXPECT_EQ(a.at(c).reg, b.at(c).reg);
  }
  ASSERT_EQ(a.submodule.size(), b.submodule.size());
  for (std::size_t i = 0; i < a.submodule.size(); ++i) {
    EXPECT_EQ(a.submodule[i].comb, b.submodule[i].comb);
    EXPECT_EQ(a.submodule[i].clock, b.submodule[i].clock);
    EXPECT_EQ(a.submodule[i].reg, b.submodule[i].reg);
  }
  std::filesystem::remove(path);
}

TEST_F(AtlasCoreTest, EncodeThenPredictFromEmbeddingsMatchesPredict) {
  PretrainConfig pcfg;
  pcfg.epochs = 1;
  pcfg.cycles_per_graph = 1;
  pcfg.dim = 16;
  PretrainResult pre = pretrain_encoder({train_}, pcfg);
  FinetuneConfig fcfg;
  fcfg.gbdt.n_trees = 20;
  fcfg.cycle_stride = 4;
  GroupModels models = finetune_models({train_}, pre.encoder, fcfg);
  const AtlasModel model(std::move(pre.encoder), std::move(models));

  const auto& wl = test_->workloads[0];
  const Prediction direct =
      model.predict(test_->gate, test_->gate_graphs, wl.gate_trace);

  // The split entry points the serving feature cache relies on: encode()
  // once, then reuse the embeddings for repeated head evaluation. Both
  // evaluations must be bit-identical to the monolithic predict().
  const DesignEmbeddings emb =
      model.encode(test_->gate, test_->gate_graphs, wl.gate_trace);
  EXPECT_EQ(emb.num_cycles, direct.num_cycles);
  EXPECT_EQ(emb.graphs.size(), test_->gate_graphs.size());
  EXPECT_GT(emb.approx_bytes(), 0u);
  for (int round = 0; round < 2; ++round) {
    const Prediction split =
        model.predict_from_embeddings(test_->gate, test_->gate_graphs, emb);
    ASSERT_EQ(split.num_cycles, direct.num_cycles);
    ASSERT_EQ(split.num_submodules, direct.num_submodules);
    for (int c = 0; c < direct.num_cycles; ++c) {
      EXPECT_EQ(split.at(c).comb, direct.at(c).comb);
      EXPECT_EQ(split.at(c).clock, direct.at(c).clock);
      EXPECT_EQ(split.at(c).reg, direct.at(c).reg);
    }
    ASSERT_EQ(split.submodule.size(), direct.submodule.size());
    for (std::size_t i = 0; i < direct.submodule.size(); ++i) {
      EXPECT_EQ(split.submodule[i].comb, direct.submodule[i].comb);
      EXPECT_EQ(split.submodule[i].clock, direct.submodule[i].clock);
      EXPECT_EQ(split.submodule[i].reg, direct.submodule[i].reg);
    }
  }

  // Mismatched shapes are rejected, not silently mispredicted.
  DesignEmbeddings wrong = model.encode(test_->gate, test_->gate_graphs, wl.gate_trace);
  wrong.graphs.pop_back();
  EXPECT_THROW(model.predict_from_embeddings(test_->gate, test_->gate_graphs, wrong),
               std::invalid_argument);
}

TEST_F(AtlasCoreTest, EncodeBatchBitIdenticalToEncode) {
  // The serving dispatcher fuses a whole batch into one encode_batch call;
  // every (design, workload) item must come out bit-identical to a solo
  // encode() — at any thread count, any batch composition, and with a
  // recycled arena. Two distinct designs and two workloads per design
  // exercise mixed-shape batches.
  PretrainConfig pcfg;
  pcfg.epochs = 1;
  pcfg.cycles_per_graph = 1;
  pcfg.dim = 16;
  PretrainResult pre = pretrain_encoder({train_}, pcfg);
  FinetuneConfig fcfg;
  fcfg.gbdt.n_trees = 10;
  fcfg.cycle_stride = 4;
  GroupModels models = finetune_models({train_}, pre.encoder, fcfg);
  const AtlasModel model(std::move(pre.encoder), std::move(models));

  struct Item {
    const DesignData* design;
    const sim::ToggleTrace* trace;
  };
  std::vector<Item> inputs;
  for (const DesignData* d : {test_, train_}) {
    for (const auto& wl : d->workloads) {
      inputs.push_back(Item{d, &wl.gate_trace});
      if (inputs.size() >= 4) break;
    }
  }
  ASSERT_GE(inputs.size(), 2u);

  std::vector<DesignEmbeddings> solo;
  for (const Item& it : inputs) {
    solo.push_back(
        model.encode(it.design->gate, it.design->gate_graphs, *it.trace));
  }

  const auto expect_same = [&](const DesignEmbeddings& a,
                               const DesignEmbeddings& b, std::size_t idx) {
    ASSERT_EQ(a.num_cycles, b.num_cycles) << "item " << idx;
    ASSERT_EQ(a.graphs.size(), b.graphs.size()) << "item " << idx;
    for (std::size_t g = 0; g < a.graphs.size(); ++g) {
      ASSERT_EQ(a.graphs[g].emb.size(), b.graphs[g].emb.size());
      for (std::size_t i = 0; i < a.graphs[g].emb.size(); ++i) {
        ASSERT_EQ(a.graphs[g].emb.data()[i], b.graphs[g].emb.data()[i])
            << "item " << idx << " graph " << g << " entry " << i;
      }
      ASSERT_EQ(a.graphs[g].extras.size(), b.graphs[g].extras.size());
      EXPECT_EQ(a.graphs[g].st.n_comb, b.graphs[g].st.n_comb);
      EXPECT_EQ(a.graphs[g].st.n_reg, b.graphs[g].st.n_reg);
    }
  };

  util::Arena arena;
  for (const int threads : {1, 4}) {
    util::set_global_threads(threads);
    // Full batch, then a permuted sub-batch: composition must not matter.
    std::vector<DesignEmbeddings> out(inputs.size());
    std::vector<AtlasModel::EncodeItem> items;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      items.push_back(AtlasModel::EncodeItem{
          &inputs[i].design->gate, &inputs[i].design->gate_graphs,
          inputs[i].trace, &out[i]});
    }
    model.encode_batch(items.data(), items.size(), arena);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      expect_same(out[i], solo[i], i);
    }

    arena.reset();  // recycled scratch must not change results
    const std::size_t last = inputs.size() - 1;
    DesignEmbeddings single;
    AtlasModel::EncodeItem one{&inputs[last].design->gate,
                               &inputs[last].design->gate_graphs,
                               inputs[last].trace, &single};
    model.encode_batch(&one, 1, arena);
    expect_same(single, solo[last], last);
    arena.reset();
  }
  util::set_global_threads(0);

  // The fused embeddings drive the heads to the same bits as the
  // monolithic path — the end-to-end identity the serve tier pins.
  const Prediction direct = model.predict(
      inputs[0].design->gate, inputs[0].design->gate_graphs, *inputs[0].trace);
  util::Arena head_arena;
  const Prediction via_batch = model.predict_from_embeddings(
      inputs[0].design->gate, inputs[0].design->gate_graphs, solo[0],
      &head_arena);
  ASSERT_EQ(via_batch.num_cycles, direct.num_cycles);
  for (int c = 0; c < direct.num_cycles; ++c) {
    EXPECT_EQ(via_batch.at(c).comb, direct.at(c).comb);
    EXPECT_EQ(via_batch.at(c).clock, direct.at(c).clock);
    EXPECT_EQ(via_batch.at(c).reg, direct.at(c).reg);
  }
}

TEST_F(AtlasCoreTest, MemoryModelAccurate) {
  MemoryPowerModel mem;
  mem.fit({train_});
  EXPECT_TRUE(mem.fitted());
  // Evaluate on the unseen design.
  const auto& wl = test_->workloads[0];
  const std::vector<double> pred = mem.predict(test_->gate, wl.gate_trace);
  const std::vector<double> label =
      power::series_of(wl.golden, power::Series::kMemory);
  const double err = power::mape(label, pred);
  // Paper Sec. VI-B: ~0.5% error; the macro is unchanged by layout, so even
  // a scale-fitted model lands within a few percent here.
  EXPECT_LT(err, 6.0);
}

TEST_F(AtlasCoreTest, MetricsHelpers) {
  EXPECT_NEAR(correlation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(correlation({1, 2, 3}, {3, 2, 1}), -1.0, 1e-12);
  EXPECT_THROW(correlation({1}, {1, 2}), std::invalid_argument);
  EXPECT_NEAR(nrmse({10, 10}, {9, 11}), 10.0, 1e-9);
  EXPECT_THROW(nrmse({}, {}), std::invalid_argument);
  const GroupMape m{1, 2, 3, 4, 5};
  const std::string s = format_group_mape(m);
  EXPECT_NE(s.find("total=5.00%"), std::string::npos);
}

TEST_F(AtlasCoreTest, StructuralSplitterCoversParsedNetlist) {
  // Strip sub-module tags by writing Verilog without attributes: simulate a
  // third-party netlist, then re-split structurally.
  netlist::Netlist stripped = test_->gate;
  for (netlist::CellInstId id = 0; id < stripped.num_cells(); ++id) {
    stripped.set_cell_submodule(id, netlist::kNoSubmodule);
  }
  const int created = assign_submodules_by_structure(stripped, 120);
  EXPECT_GT(created, 3);
  for (netlist::CellInstId id = 0; id < stripped.num_cells(); ++id) {
    EXPECT_NE(stripped.cell(id).submodule, netlist::kNoSubmodule);
  }
  // Graphs build fine on the auto-partition.
  const auto graphs = graph::build_submodule_graphs(stripped);
  std::size_t covered = 0;
  for (const auto& g : graphs) covered += g.num_nodes();
  EXPECT_EQ(covered, stripped.num_cells());
}

TEST_F(AtlasCoreTest, PredictionComponentRollup) {
  PretrainConfig pcfg;
  pcfg.epochs = 1;
  pcfg.cycles_per_graph = 1;
  pcfg.dim = 16;
  PretrainResult pre = pretrain_encoder({train_}, pcfg);
  FinetuneConfig fcfg;
  fcfg.gbdt.n_trees = 20;
  fcfg.cycle_stride = 4;
  GroupModels models = finetune_models({train_}, pre.encoder, fcfg);
  const AtlasModel model(std::move(pre.encoder), std::move(models));
  const auto& wl = test_->workloads[0];
  const Prediction pred =
      model.predict(test_->gate, test_->gate_graphs, wl.gate_trace);
  const auto comps = pred.component_average(test_->gate);
  ASSERT_EQ(comps.size(), test_->gate.components().size());
  // Component totals sum to the average design total.
  double total = 0.0;
  for (const auto& c : comps) total += c.total();
  double design_avg = 0.0;
  for (int c = 0; c < pred.num_cycles; ++c) design_avg += pred.at(c).total();
  design_avg /= pred.num_cycles;
  EXPECT_NEAR(total, design_avg, design_avg * 1e-6);
}

TEST_F(AtlasCoreTest, LogicConesOneConePerRegister) {
  const auto cones = extract_logic_cones(test_->gate);
  std::size_t regs = 0;
  for (netlist::CellInstId id = 0; id < test_->gate.num_cells(); ++id) {
    regs += liberty::is_sequential(test_->gate.lib_cell(id).func);
  }
  EXPECT_EQ(cones.size(), regs);
  for (const auto& c : cones) {
    ASSERT_FALSE(c.cells.empty());
    EXPECT_EQ(c.cells.front(), c.root);
    EXPECT_TRUE(liberty::is_sequential(test_->gate.lib_cell(c.root).func));
    // Cone members other than the root are combinational.
    for (std::size_t i = 1; i < c.cells.size(); ++i) {
      EXPECT_TRUE(liberty::is_combinational(test_->gate.lib_cell(c.cells[i]).func));
    }
  }
}

TEST_F(AtlasCoreTest, LogicConesOverlapSubstantially) {
  // The paper's Sec. III-A claim: cones overlap, so cone-power sums
  // over-count true power, while the sub-module partition is exact.
  const auto cones = extract_logic_cones(test_->gate);
  const double overlap = cone_overlap_factor(cones);
  EXPECT_GT(overlap, 1.3) << "re-convergent fan-out must create overlap";
  const auto& wl = test_->workloads[0];
  const double overcount =
      cone_power_overcount(test_->gate, cones, wl.gate_trace);
  EXPECT_GT(overcount, 1.1);
}

TEST_F(AtlasCoreTest, LogicConesStopAtStateBoundaries) {
  const auto cones = extract_logic_cones(test_->gate);
  for (const auto& c : cones) {
    for (std::size_t i = 1; i < c.cells.size(); ++i) {
      EXPECT_FALSE(liberty::is_macro(test_->gate.lib_cell(c.cells[i]).func));
    }
  }
}

}  // namespace
}  // namespace atlas::core
