#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/arena.h"
#include "util/cli.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/strings.h"
#include "util/timer.h"

namespace atlas::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextBelowThrowsOnZero) {
  Rng r(7);
  EXPECT_THROW(r.next_below(0), std::invalid_argument);
}

TEST(Rng, NextIntCoversInclusiveRange) {
  Rng r(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.next_int(-3, 3));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), -3);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng r(13);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = r.next_gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, WeightedRespectsZeroWeights) {
  Rng r(17);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(r.next_weighted({0.0, 1.0, 0.0}), 1u);
  }
}

TEST(Rng, WeightedThrowsOnAllZero) {
  Rng r(17);
  EXPECT_THROW(r.next_weighted({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(r.next_weighted({-1.0, 2.0}), std::invalid_argument);
}

TEST(Rng, WeightedApproximatesDistribution) {
  Rng r(19);
  int counts[2] = {0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[r.next_weighted({1.0, 3.0})];
  EXPECT_NEAR(static_cast<double>(counts[1]) / 10000.0, 0.75, 0.03);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(23);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t x\n"), "x");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWsDropsEmpty) {
  const auto parts = split_ws("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_FALSE(starts_with("he", "hello"));
  EXPECT_TRUE(ends_with("hello", "lo"));
  EXPECT_FALSE(ends_with("lo", "hello"));
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format("%.2f", 3.14159), "3.14");
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(289384), "289,384");
  EXPECT_EQ(with_commas(-1234567), "-1,234,567");
}

TEST(Cli, ParsesFlagsAndDefaults) {
  Cli cli;
  cli.flag("cycles", "300", "number of cycles")
      .flag("scale", "0.01", "design scale")
      .flag("verbose", "false", "chatty output");
  const char* argv[] = {"prog", "--cycles", "500", "--verbose"};
  cli.parse(4, argv);
  EXPECT_EQ(cli.integer("cycles"), 500);
  EXPECT_DOUBLE_EQ(cli.real("scale"), 0.01);
  EXPECT_TRUE(cli.boolean("verbose"));
}

TEST(Cli, EqualsSyntax) {
  Cli cli;
  cli.flag("name", "C1", "design");
  const char* argv[] = {"prog", "--name=C4"};
  cli.parse(2, argv);
  EXPECT_EQ(cli.str("name"), "C4");
}

TEST(Cli, UnknownFlagThrows) {
  Cli cli;
  cli.flag("a", "1", "");
  const char* argv[] = {"prog", "--nope", "3"};
  EXPECT_THROW(cli.parse(3, argv), std::runtime_error);
}

TEST(Cli, MissingValueThrows) {
  Cli cli;
  cli.flag("a", "1", "");
  const char* argv[] = {"prog", "--a"};
  EXPECT_THROW(cli.parse(2, argv), std::runtime_error);
}

TEST(Serialize, RoundTripScalars) {
  std::stringstream ss;
  write_u32(ss, 42);
  write_u64(ss, 1ULL << 60);
  write_i64(ss, -7);
  write_f64(ss, 2.5);
  write_string(ss, "hello world");
  EXPECT_EQ(read_u32(ss), 42u);
  EXPECT_EQ(read_u64(ss), 1ULL << 60);
  EXPECT_EQ(read_i64(ss), -7);
  EXPECT_DOUBLE_EQ(read_f64(ss), 2.5);
  EXPECT_EQ(read_string(ss), "hello world");
}

TEST(Serialize, TruncatedReadThrows) {
  std::stringstream ss;
  write_u32(ss, 1);
  EXPECT_EQ(read_u32(ss), 1u);
  EXPECT_THROW(read_u64(ss), SerializeError);
}

TEST(Serialize, HeaderMismatchThrows) {
  std::stringstream ss;
  write_header(ss, "ATLS", 3);
  EXPECT_THROW(read_header(ss, "XXXX"), SerializeError);
}

TEST(Serialize, HeaderRoundTrip) {
  std::stringstream ss;
  write_header(ss, "ATLS", 3);
  EXPECT_EQ(read_header(ss, "ATLS"), 3u);
}

TEST(Serialize, VectorRoundTrip) {
  std::stringstream ss;
  std::vector<double> v{1.0, 2.5, -3.0};
  write_vector(ss, v, [](std::ostream& os, double d) { write_f64(os, d); });
  const auto back = read_vector<double>(ss, [](std::istream& is) { return read_f64(is); });
  EXPECT_EQ(back, v);
}

// Hostile streams must fail with SerializeError after bounded work — a
// declared length is not trusted until that many elements actually parse,
// so a corrupt/truncated header can't become a multi-GiB allocation
// (std::bad_alloc / OOM kill) before the truncation is noticed.
TEST(Serialize, ImplausibleVectorLengthThrows) {
  std::stringstream ss;
  write_u64(ss, kMaxSerializedElems + 1);  // length word only, no payload
  EXPECT_THROW(
      read_vector<double>(ss, [](std::istream& is) { return read_f64(is); }),
      SerializeError);
}

TEST(Serialize, HugeDeclaredVectorOnShortStreamThrows) {
  std::stringstream ss;
  write_u64(ss, 1ULL << 30);  // plausible count, absent payload
  write_f64(ss, 1.0);         // ... one element instead of a billion
  EXPECT_THROW(
      read_vector<double>(ss, [](std::istream& is) { return read_f64(is); }),
      SerializeError);
}

TEST(Serialize, ImplausibleStringLengthThrows) {
  std::stringstream ss;
  write_u64(ss, kMaxSerializedStringBytes + 1);
  EXPECT_THROW(read_string(ss), SerializeError);
}

TEST(Serialize, HugeDeclaredStringOnShortStreamThrows) {
  std::stringstream ss;
  write_u64(ss, 1ULL << 30);
  ss << "short";
  EXPECT_THROW(read_string(ss), SerializeError);
}

TEST(Serialize, F32SpanLengthMismatchThrows) {
  std::stringstream ss;
  write_u64(ss, kMaxSerializedElems + 1);
  float buf[4] = {};
  EXPECT_THROW(read_f32_span(ss, buf, 4), SerializeError);
}

TEST(Hash, Fnv1a64KnownValuesAndStability) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  // Deterministic across calls, sensitive to every byte.
  const std::string verilog = "module top(); endmodule";
  EXPECT_EQ(fnv1a64(verilog), fnv1a64(verilog));
  EXPECT_NE(fnv1a64(verilog), fnv1a64("module top();  endmodule"));
}

TEST(Hash, MixAndHexFormat) {
  const std::uint64_t a = hash_mix(fnv1a64("model"), 300);
  const std::uint64_t b = hash_mix(fnv1a64("model"), 301);
  EXPECT_NE(a, b);
  EXPECT_EQ(hash_hex(0).size(), 16u);
  EXPECT_EQ(hash_hex(0xabcULL), "0000000000000abc");
}

TEST(PhaseTimersTest, AccumulatesAndOrders) {
  PhaseTimers t;
  t.add("a", 1.0);
  t.add("b", 2.0);
  t.add("a", 0.5);
  EXPECT_DOUBLE_EQ(t.get("a"), 1.5);
  EXPECT_DOUBLE_EQ(t.get("b"), 2.0);
  EXPECT_DOUBLE_EQ(t.get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(t.total(), 3.5);
  ASSERT_EQ(t.phases().size(), 2u);
  EXPECT_EQ(t.phases()[0], "a");
}

TEST(TimerTest, MeasuresNonNegative) {
  Timer t;
  EXPECT_GE(t.seconds(), 0.0);
}

// ---- Arena / ArenaPool -----------------------------------------------------

TEST(Arena, BumpAllocationIsAlignedAndDisjoint) {
  Arena arena(/*block_bytes=*/256);
  float* a = arena.alloc_array<float>(10);
  double* b = arena.alloc_array<double>(5);
  std::uint8_t* c = static_cast<std::uint8_t*>(arena.allocate(3, 1));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % alignof(float), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(double), 0u);
  // Writes to one allocation never alias another.
  std::memset(a, 0xAA, 10 * sizeof(float));
  std::memset(b, 0xBB, 5 * sizeof(double));
  std::memset(c, 0xCC, 3);
  for (int i = 0; i < 10; ++i) {
    float expect;
    std::memset(&expect, 0xAA, sizeof expect);
    EXPECT_EQ(std::memcmp(&a[i], &expect, sizeof expect), 0);
  }
  EXPECT_GE(arena.bytes_allocated(), 10 * sizeof(float) + 5 * sizeof(double) + 3);
}

TEST(Arena, GrowsPastBlockSizeAndOversizedRequests) {
  Arena arena(/*block_bytes=*/128);
  // Many small allocations spill into additional blocks.
  for (int i = 0; i < 100; ++i) {
    auto* p = arena.alloc_array<std::uint64_t>(4);
    p[0] = static_cast<std::uint64_t>(i);  // must be writable
  }
  // One request far beyond the block size gets a dedicated block.
  auto* big = arena.alloc_array<std::uint8_t>(4096);
  big[0] = 1;
  big[4095] = 2;
  EXPECT_GE(arena.bytes_reserved(), 4096u);
}

TEST(Arena, ResetRecyclesBlocksWithoutFreeing) {
  Arena arena(/*block_bytes=*/256);
  for (int i = 0; i < 64; ++i) arena.alloc_array<double>(8);
  const std::size_t reserved = arena.bytes_reserved();
  EXPECT_GT(reserved, 0u);
  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  // Blocks survive the reset: a same-shape second pass reserves nothing new.
  for (int i = 0; i < 64; ++i) arena.alloc_array<double>(8);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(Arena, MarkRewindReusesScratchWithoutTouchingEarlierAllocations) {
  // The encode_batch pattern: long-lived allocations up front, then many
  // row blocks that each mark, allocate scratch, and rewind — peak memory
  // stays bounded by one block's scratch, and the early allocations keep
  // their bytes.
  Arena arena(/*block_bytes=*/1024);
  std::uint32_t* persistent = arena.alloc_array<std::uint32_t>(16);
  for (std::uint32_t i = 0; i < 16; ++i) persistent[i] = 0xFEEDF00Du + i;

  std::size_t reserved_after_first_block = 0;
  for (int block = 0; block < 50; ++block) {
    const Arena::Marker m = arena.mark();
    float* scratch = arena.alloc_array<float>(200);
    scratch[0] = 1.0f;
    scratch[199] = 2.0f;
    arena.rewind(m);
    if (block == 0) reserved_after_first_block = arena.bytes_reserved();
  }
  // Rewind really recycles: 50 blocks of scratch fit in what one needed.
  EXPECT_EQ(arena.bytes_reserved(), reserved_after_first_block);
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(persistent[i], 0xFEEDF00Du + i);
  }
}

TEST(ArenaPool, RecyclesArenasAcrossAcquisitions) {
  ArenaPool pool;
  {
    ArenaHandle h = pool.acquire();
    h->alloc_array<float>(100);
    EXPECT_EQ(pool.created(), 1u);
    EXPECT_EQ(pool.idle(), 0u);
  }
  // Returned (and reset) on handle destruction.
  EXPECT_EQ(pool.idle(), 1u);
  {
    ArenaHandle h = pool.acquire();
    EXPECT_EQ(h->bytes_allocated(), 0u);
    EXPECT_GT(h->bytes_reserved(), 0u);  // recycled blocks, not a new arena
    EXPECT_EQ(pool.created(), 1u);
  }
  // Two concurrent borrowers force a second arena; steady state stays at 2.
  {
    ArenaHandle a = pool.acquire();
    ArenaHandle b = pool.acquire();
    EXPECT_EQ(pool.created(), 2u);
  }
  EXPECT_EQ(pool.idle(), 2u);
  {
    ArenaHandle a = pool.acquire();
    ArenaHandle b = pool.acquire();
    EXPECT_EQ(pool.created(), 2u);
  }
}

TEST(ArenaPool, ThreadSafeUnderConcurrentBorrowers) {
  ArenaPool pool;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&pool] {
      for (int i = 0; i < 200; ++i) {
        ArenaHandle h = pool.acquire();
        auto* p = h->alloc_array<std::uint64_t>(64);
        p[0] = static_cast<std::uint64_t>(i);
        p[63] = p[0] + 1;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Every arena came home, and the pool never built more than one per
  // concurrent borrower.
  EXPECT_EQ(pool.idle(), pool.created());
  EXPECT_LE(pool.created(), 8u);
}

}  // namespace
}  // namespace atlas::util
