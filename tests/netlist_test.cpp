#include <gtest/gtest.h>

#include "liberty/library.h"
#include "netlist/netlist.h"
#include "netlist/verilog_io.h"

namespace atlas::netlist {
namespace {

using liberty::CellFunc;

class NetlistTest : public ::testing::Test {
 protected:
  NetlistTest() : lib_(liberty::make_default_library()), nl_("t", lib_) {}

  /// Tiny circuit: pi0, pi1 -> NAND -> INV -> DFF(clk) -> po.
  void build_small() {
    clk_ = nl_.add_net("clk");
    nl_.mark_primary_input(clk_);
    nl_.set_clock_net(clk_);
    pi0_ = nl_.add_net("pi0");
    pi1_ = nl_.add_net("pi1");
    nl_.mark_primary_input(pi0_);
    nl_.mark_primary_input(pi1_);
    n1_ = nl_.add_net("n1");
    n2_ = nl_.add_net("n2");
    q_ = nl_.add_net("q");
    nl_.mark_primary_output(q_);
    nand_ = nl_.add_cell("u_nand", lib_.must("NAND2_X1"), {pi0_, pi1_, n1_});
    inv_ = nl_.add_cell("u_inv", lib_.must("INV_X1"), {n1_, n2_});
    dff_ = nl_.add_cell("u_dff", lib_.must("DFF_X1"), {n2_, clk_, q_});
  }

  liberty::Library lib_;
  Netlist nl_;
  NetId clk_{}, pi0_{}, pi1_{}, n1_{}, n2_{}, q_{};
  CellInstId nand_{}, inv_{}, dff_{};
};

TEST_F(NetlistTest, ConstructionWiresDriversAndSinks) {
  build_small();
  EXPECT_EQ(nl_.num_cells(), 3u);
  EXPECT_EQ(nl_.num_nets(), 6u);
  const Net& n1 = nl_.net(n1_);
  EXPECT_TRUE(n1.has_driver());
  EXPECT_EQ(n1.driver.cell, nand_);
  ASSERT_EQ(n1.sinks.size(), 1u);
  EXPECT_EQ(n1.sinks[0].cell, inv_);
  EXPECT_EQ(nl_.output_net(nand_), n1_);
  EXPECT_EQ(nl_.output_net(inv_), n2_);
  EXPECT_EQ(nl_.output_net(dff_), q_);
  EXPECT_NO_THROW(nl_.check());
}

TEST_F(NetlistTest, AddCellRejectsWrongPinCount) {
  build_small();
  const NetId x = nl_.add_net("x");
  EXPECT_THROW(nl_.add_cell("bad", lib_.must("NAND2_X1"), {x, x}),
               std::invalid_argument);
}

TEST_F(NetlistTest, AddCellRejectsDoubleDriver) {
  build_small();
  // n1 is already driven by the NAND.
  EXPECT_THROW(nl_.add_cell("bad", lib_.must("INV_X1"), {pi0_, n1_}),
               std::invalid_argument);
}

TEST_F(NetlistTest, PrimaryInputCannotBeCellDriven) {
  build_small();
  EXPECT_THROW(nl_.add_cell("bad", lib_.must("INV_X1"), {n1_, pi0_}),
               std::invalid_argument);
  const NetId driven = nl_.add_net("driven");
  nl_.add_cell("drv", lib_.must("INV_X1"), {pi0_, driven});
  EXPECT_THROW(nl_.mark_primary_input(driven), std::invalid_argument);
}

TEST_F(NetlistTest, TopoOrderRespectsDependencies) {
  build_small();
  const auto order = nl_.comb_topo_order();
  ASSERT_EQ(order.size(), 2u);  // DFF not included
  EXPECT_EQ(order[0], nand_);
  EXPECT_EQ(order[1], inv_);
}

TEST_F(NetlistTest, CombCycleDetected) {
  build_small();
  // Create a loop: two inverters driving each other.
  const NetId a = nl_.add_net("a");
  const NetId b = nl_.add_net("b");
  nl_.add_cell("l1", lib_.must("INV_X1"), {a, b});
  nl_.add_cell("l2", lib_.must("INV_X1"), {b, a});
  EXPECT_THROW(nl_.comb_topo_order(), std::runtime_error);
  EXPECT_THROW(nl_.check(), std::runtime_error);
}

TEST_F(NetlistTest, SequentialLoopIsFine) {
  build_small();
  // q feeds back into the nand via move of pin: make a new inv from q to a
  // net feeding a second dff — registers legally break cycles.
  const NetId f = nl_.add_net("f");
  nl_.add_cell("u_fb", lib_.must("INV_X1"), {q_, f});
  const NetId q2 = nl_.add_net("q2");
  nl_.add_cell("u_dff2", lib_.must("DFF_X1"), {f, clk_, q2});
  EXPECT_NO_THROW(nl_.check());
}

TEST_F(NetlistTest, DisconnectAndCompact) {
  build_small();
  nl_.disconnect_cell(inv_);
  EXPECT_FALSE(nl_.net(n2_).has_driver());
  EXPECT_TRUE(nl_.net(n1_).sinks.empty());
  // n2 still sinks into the DFF, so it survives compaction; the INV is gone.
  nl_.compact();
  EXPECT_EQ(nl_.num_cells(), 2u);
  EXPECT_NO_THROW(nl_.comb_topo_order());
  // Clock net id stays valid after renumbering.
  EXPECT_NE(nl_.clock_net(), kNoNet);
  EXPECT_EQ(nl_.net(nl_.clock_net()).name, "clk");
}

TEST_F(NetlistTest, MovePinRewiresSinks) {
  build_small();
  // Move the INV input from n1 to pi0.
  nl_.move_pin(inv_, 0, pi0_);
  EXPECT_TRUE(nl_.net(n1_).sinks.empty());
  ASSERT_EQ(nl_.net(pi0_).sinks.size(), 2u);
  EXPECT_NO_THROW(nl_.check());
}

TEST_F(NetlistTest, ResizeCellKeepsConnectivity) {
  build_small();
  nl_.resize_cell(inv_, lib_.must("INV_X2"));
  EXPECT_EQ(nl_.lib_cell(inv_).drive, 2);
  EXPECT_NO_THROW(nl_.check());
  // Pin-incompatible swap rejected.
  EXPECT_THROW(nl_.resize_cell(inv_, lib_.must("NAND2_X1")),
               std::invalid_argument);
}

TEST_F(NetlistTest, CountsByTypeAndGroup) {
  build_small();
  const auto by_type = nl_.count_by_type();
  EXPECT_EQ(by_type[static_cast<std::size_t>(liberty::NodeType::kNand)], 1u);
  EXPECT_EQ(by_type[static_cast<std::size_t>(liberty::NodeType::kInv)], 1u);
  EXPECT_EQ(by_type[static_cast<std::size_t>(liberty::NodeType::kReg)], 1u);
  const auto by_group = nl_.count_by_group();
  EXPECT_EQ(by_group[static_cast<std::size_t>(liberty::PowerGroup::kComb)], 2u);
  EXPECT_EQ(by_group[static_cast<std::size_t>(liberty::PowerGroup::kRegister)], 1u);
}

TEST_F(NetlistTest, SubmoduleMembership) {
  const int comp = nl_.add_component("exec");
  const SubmoduleId sm = nl_.add_submodule("alu_0", "alu", comp);
  build_small();
  const NetId x = nl_.add_net("x");
  const CellInstId c = nl_.add_cell("u_in_sm", lib_.must("INV_X1"), {pi0_, x}, sm);
  const auto members = nl_.cells_in_submodule(sm);
  ASSERT_EQ(members.size(), 1u);
  EXPECT_EQ(members[0], c);
}

TEST_F(NetlistTest, PrimaryIoLists) {
  build_small();
  const auto pis = nl_.primary_inputs();
  EXPECT_EQ(pis.size(), 3u);  // clk, pi0, pi1
  const auto pos = nl_.primary_outputs();
  ASSERT_EQ(pos.size(), 1u);
  EXPECT_EQ(pos[0], q_);
}

class VerilogRoundTripTest : public NetlistTest {};

TEST_F(VerilogRoundTripTest, WriteParseRoundTrip) {
  const int comp = nl_.add_component("exec");
  const SubmoduleId sm = nl_.add_submodule("alu_0", "alu", comp);
  build_small();
  const NetId x = nl_.add_net("x");
  nl_.add_cell("u_sm", lib_.must("INV_X1"), {pi0_, x}, sm);

  const std::string text = write_verilog(nl_);
  const Netlist back = parse_verilog(text, lib_);

  EXPECT_EQ(back.name(), nl_.name());
  EXPECT_EQ(back.num_cells(), nl_.num_cells());
  EXPECT_EQ(back.num_nets(), nl_.num_nets());
  EXPECT_NO_THROW(back.check());
  ASSERT_NE(back.clock_net(), kNoNet);
  EXPECT_EQ(back.net(back.clock_net()).name, "clk");
  EXPECT_EQ(back.primary_inputs().size(), nl_.primary_inputs().size());
  EXPECT_EQ(back.primary_outputs().size(), nl_.primary_outputs().size());
  // Sub-module metadata survives.
  ASSERT_EQ(back.submodules().size(), 1u);
  EXPECT_EQ(back.submodules()[0].name, "alu_0");
  EXPECT_EQ(back.submodules()[0].role, "alu");
  ASSERT_EQ(back.components().size(), 1u);
  EXPECT_EQ(back.components()[0], "exec");
  // Cell types preserved.
  for (CellInstId id = 0; id < back.num_cells(); ++id) {
    EXPECT_EQ(back.lib_cell(id).name, nl_.lib_cell(id).name);
  }
}

TEST_F(VerilogRoundTripTest, ParseErrors) {
  EXPECT_THROW(parse_verilog("module x (", lib_), VerilogParseError);
  EXPECT_THROW(parse_verilog("module x (); WAT u0 (.A(a)); endmodule", lib_),
               VerilogParseError);
  EXPECT_THROW(
      parse_verilog("module x (); wire a; INV_X1 u0 (.NOPE(a)); endmodule", lib_),
      VerilogParseError);
  // Unconnected pin.
  EXPECT_THROW(
      parse_verilog("module x (); wire a; INV_X1 u0 (.A(a)); endmodule", lib_),
      VerilogParseError);
}

TEST_F(VerilogRoundTripTest, ParsesCommentsAndAttributes) {
  const char* text = R"(
    // header comment
    (* clock_net = "ck" *)
    module m (ck, a, y);
      input ck; input a; output y;
      /* a block comment */
      (* submodule = "s0", role = "misc", component = "c0" *)
      DFF_X1 r0 (.D(a), .CK(ck), .Q(y));
    endmodule
  )";
  const Netlist back = parse_verilog(text, lib_);
  EXPECT_EQ(back.num_cells(), 1u);
  EXPECT_NE(back.clock_net(), kNoNet);
  EXPECT_EQ(back.submodules().size(), 1u);
  EXPECT_NO_THROW(back.check());
}

}  // namespace
}  // namespace atlas::netlist
