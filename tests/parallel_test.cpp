// Property tests for the deterministic thread-pool primitives: for every
// thread count in {1, 2, 7, hardware_concurrency}, parallel_for must match
// the serial loop element-for-element and parallel_reduce must be
// BIT-identical to its own result at every other thread count (the ordered
// fixed-shape tree makes even non-associative float folds reproducible).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/parallel.h"
#include "util/rng.h"

namespace atlas::util {
namespace {

/// RAII guard: every test leaves the global pool back at its default.
class ThreadsGuard {
 public:
  ~ThreadsGuard() { set_global_threads(0); }
};

std::vector<int> thread_counts() {
  return {1, 2, 7, hardware_concurrency()};
}

TEST(ParallelForTest, EmptyAndSingleElementRanges) {
  ThreadsGuard guard;
  for (const int t : thread_counts()) {
    set_global_threads(t);
    int calls = 0;
    parallel_for(0, 4, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    std::vector<int> hits(1, 0);
    parallel_for(1, 4, [&](std::size_t i) { ++hits[i]; });
    EXPECT_EQ(hits[0], 1);
  }
}

TEST(ParallelForTest, EveryIndexVisitedExactlyOnce) {
  ThreadsGuard guard;
  Rng rng(101);
  for (const int t : thread_counts()) {
    set_global_threads(t);
    for (int round = 0; round < 8; ++round) {
      const std::size_t n = rng.next_below(2000);
      const std::size_t grain = 1 + rng.next_below(300);
      std::vector<int> hits(n, 0);
      parallel_for(n, grain, [&](std::size_t i) { ++hits[i]; });
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i], 1) << "n=" << n << " grain=" << grain
                              << " threads=" << t << " i=" << i;
      }
    }
  }
}

TEST(ParallelForChunksTest, ChunksCoverRangeDisjointly) {
  ThreadsGuard guard;
  for (const int t : thread_counts()) {
    set_global_threads(t);
    const std::size_t n = 1000;
    std::vector<int> hits(n, 0);
    parallel_for_chunks(n, 64, [&](std::size_t begin, std::size_t end) {
      ASSERT_LT(begin, end);
      ASSERT_LE(end, n);
      ASSERT_LE(end - begin, 64u);
      for (std::size_t i = begin; i < end; ++i) ++hits[i];
    });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
              static_cast<int>(n));
  }
}

TEST(ParallelReduceTest, EmptyRangeReturnsIdentity) {
  ThreadsGuard guard;
  const double out = parallel_reduce(
      0, 8, -123.5,
      [](std::size_t, std::size_t) { return 0.0; },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(out, -123.5);
}

TEST(ParallelReduceTest, SingleElementMatchesSerialFold) {
  ThreadsGuard guard;
  for (const int t : thread_counts()) {
    set_global_threads(t);
    const long long out = parallel_reduce(
        1, 100, 0LL,
        [](std::size_t begin, std::size_t end) {
          long long s = 0;
          for (std::size_t i = begin; i < end; ++i) s += static_cast<long long>(i) + 7;
          return s;
        },
        [](long long a, long long b) { return a + b; });
    EXPECT_EQ(out, 7);
  }
}

TEST(ParallelReduceTest, FloatSumBitIdenticalAcrossThreadCounts) {
  ThreadsGuard guard;
  Rng rng(7);
  for (int round = 0; round < 6; ++round) {
    const std::size_t n = 1 + rng.next_below(5000);
    const std::size_t grain = 1 + rng.next_below(700);
    // Wildly varied magnitudes make float addition maximally non-associative.
    std::vector<double> data(n);
    for (double& v : data) {
      v = (rng.next_double() - 0.5) * std::pow(10.0, rng.next_below(12));
    }
    auto run = [&] {
      return parallel_reduce(
          n, grain, 0.0,
          [&](std::size_t begin, std::size_t end) {
            double s = 0.0;
            for (std::size_t i = begin; i < end; ++i) s += data[i];
            return s;
          },
          [](double a, double b) { return a + b; });
    };
    set_global_threads(1);
    const double serial = run();
    for (const int t : thread_counts()) {
      set_global_threads(t);
      const double parallel = run();
      // Bit-level comparison: NaN-safe and stricter than operator==.
      EXPECT_EQ(std::memcmp(&serial, &parallel, sizeof serial), 0)
          << "n=" << n << " grain=" << grain << " threads=" << t;
    }
  }
}

TEST(ParallelReduceTest, OrderedTreePreservesSequenceOrder) {
  ThreadsGuard guard;
  // String concatenation is associative but not commutative: any reduction
  // that reorders chunks produces a different string.
  const std::size_t n = 137;
  std::string expected;
  for (std::size_t i = 0; i < n; ++i) expected += std::to_string(i) + ",";
  for (const int t : thread_counts()) {
    for (const std::size_t grain : {std::size_t{1}, std::size_t{5},
                                    std::size_t{64}, std::size_t{1000}}) {
      set_global_threads(t);
      const std::string out = parallel_reduce(
          n, grain, std::string(),
          [](std::size_t begin, std::size_t end) {
            std::string s;
            for (std::size_t i = begin; i < end; ++i) s += std::to_string(i) + ",";
            return s;
          },
          [](std::string a, std::string b) { return std::move(a) + b; });
      EXPECT_EQ(out, expected) << "threads=" << t << " grain=" << grain;
    }
  }
}

TEST(ParallelTest, NestedParallelRunsInline) {
  ThreadsGuard guard;
  set_global_threads(4);
  std::vector<int> hits(64 * 64, 0);
  parallel_for(64, 4, [&](std::size_t outer) {
    EXPECT_TRUE(in_parallel_region());
    parallel_for(64, 4, [&](std::size_t inner) { ++hits[outer * 64 + inner]; });
  });
  for (const int h : hits) ASSERT_EQ(h, 1);
}

TEST(ParallelTest, ExceptionsPropagateToCaller) {
  ThreadsGuard guard;
  for (const int t : {1, 4}) {
    set_global_threads(t);
    EXPECT_THROW(
        parallel_for(256, 8,
                     [](std::size_t i) {
                       if (i == 97) throw std::runtime_error("boom");
                     }),
        std::runtime_error);
    // Pool still usable afterwards.
    std::vector<int> hits(10, 0);
    parallel_for(10, 1, [&](std::size_t i) { ++hits[i]; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
  }
}

TEST(ParallelTest, GlobalThreadConfig) {
  ThreadsGuard guard;
  set_global_threads(3);
  EXPECT_EQ(global_threads(), 3);
  EXPECT_EQ(ThreadPool::global().num_threads(), 3);
  set_global_threads(0);
  EXPECT_EQ(global_threads(), hardware_concurrency());
  EXPECT_FALSE(in_parallel_region());
}

TEST(ParallelTest, ChunkCountLayout) {
  EXPECT_EQ(chunk_count(0, 8), 0u);
  EXPECT_EQ(chunk_count(1, 8), 1u);
  EXPECT_EQ(chunk_count(8, 8), 1u);
  EXPECT_EQ(chunk_count(9, 8), 2u);
  EXPECT_EQ(chunk_count(10, 0), 10u);  // grain clamps to 1
}

TEST(ParallelTest, ManyMoreChunksThanThreadsStillExact) {
  ThreadsGuard guard;
  set_global_threads(7);  // oversubscribed on small machines — still exact
  const std::size_t n = 10007;
  std::vector<std::uint8_t> hits(n, 0);
  parallel_for(n, 1, [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), std::size_t{0}), n);
}

}  // namespace
}  // namespace atlas::util
