#include <gtest/gtest.h>

#include <set>

#include "designgen/block_builder.h"
#include "designgen/blocks.h"
#include "designgen/design_generator.h"
#include "liberty/library.h"
#include "netlist/verilog_io.h"
#include "sim/simulator.h"

namespace atlas::designgen {
namespace {

using liberty::CellFunc;
using liberty::NodeType;
using netlist::NetId;
using netlist::Netlist;

class BlockTest : public ::testing::Test {
 protected:
  BlockTest()
      : lib_(liberty::make_default_library()), nl_("t", lib_), rng_(7) {
    clk_ = nl_.add_net("clk");
    nl_.mark_primary_input(clk_);
    nl_.set_clock_net(clk_);
    rstn_ = nl_.add_net("rstn");
    nl_.mark_primary_input(rstn_);
    for (int i = 0; i < 24; ++i) {
      const NetId pi = nl_.add_net("pi_" + std::to_string(i));
      nl_.mark_primary_input(pi);
      inputs_.push_back(pi);
    }
    comp_ = nl_.add_component("c");
  }

  BlockBuilder make_builder(const std::string& role) {
    const auto sm = nl_.add_submodule(role + "_0", role, comp_);
    return BlockBuilder(nl_, sm, clk_, rstn_, rng_);
  }

  /// True if `net` is driven by a sequential cell's Q pin.
  bool is_registered(NetId net) const {
    const auto& n = nl_.net(net);
    if (!n.has_driver()) return false;
    return liberty::is_sequential(nl_.lib_cell(n.driver.cell).func);
  }

  liberty::Library lib_;
  Netlist nl_;
  util::Rng rng_;
  NetId clk_{}, rstn_{};
  NetVec inputs_;
  int comp_{};
};

class BlockRoleTest : public BlockTest,
                      public ::testing::WithParamInterface<std::string> {};

TEST_P(BlockRoleTest, ProducesValidRegisteredOutputs) {
  const std::string role = GetParam();
  BlockBuilder b = make_builder(role);
  const NetVec outs = build_block(role, b, inputs_, 12);
  EXPECT_FALSE(outs.empty());
  for (const NetId o : outs) {
    EXPECT_TRUE(is_registered(o)) << role << " output must be a register Q";
  }
  EXPECT_NO_THROW(nl_.check());
  EXPECT_GT(nl_.num_cells(), 4u);
}

TEST_P(BlockRoleTest, SimulatesWithoutError) {
  const std::string role = GetParam();
  BlockBuilder b = make_builder(role);
  build_block(role, b, inputs_, 8);
  sim::CycleSimulator sim(nl_);
  sim::StimulusGenerator stim(nl_, sim::make_w1());
  const sim::ToggleTrace t = sim.run(stim, 30);
  // Some net inside the block must toggle under a random workload.
  long long total = 0;
  for (NetId n = 0; n < nl_.num_nets(); ++n) total += t.total_transitions(n);
  EXPECT_GT(total, 0) << role;
}

INSTANTIATE_TEST_SUITE_P(
    AllRoles, BlockRoleTest,
    ::testing::Values("adder", "alu", "decoder", "mux_tree", "comparator",
                      "counter", "shift_reg", "lfsr", "fsm", "parity",
                      "priority_enc", "regfile", "fifo_ctrl", "pipeline_reg",
                      "mem_ctrl", "multiplier_slice"),
    [](const auto& info) { return info.param; });

TEST_F(BlockTest, UnknownRoleThrows) {
  BlockBuilder b = make_builder("x");
  EXPECT_THROW(build_block("warp_core", b, inputs_, 8), std::invalid_argument);
}

TEST_F(BlockTest, EmptyInputPoolThrows) {
  BlockBuilder b = make_builder("adder");
  EXPECT_THROW(build_adder(b, {}, 8), std::invalid_argument);
}

TEST_F(BlockTest, AdderComputesCorrectSum) {
  // 4-bit adder from TIE constants: 0b0101 + 0b0011 = 0b1000.
  BlockBuilder b = make_builder("adder");
  const NetId hi = b.tie(true);
  const NetId lo = b.tie(false);
  // a = 0101 (LSB first: 1,0,1,0), c = 0011 (1,1,0,0).
  const NetVec in = {hi, lo, hi, lo, hi, hi, lo, lo};
  const NetVec outs = build_adder(b, in, 4);
  ASSERT_EQ(outs.size(), 5u);  // 4 sum bits + carry
  sim::CycleSimulator sim(nl_);
  sim::StimulusGenerator stim(nl_, sim::make_w1());
  const sim::ToggleTrace t = sim.run(stim, 6);
  // After the input regs (1 cycle) and output regs (1 more), results settle.
  const int c = 5;
  EXPECT_FALSE(t.value(c, outs[0]));
  EXPECT_FALSE(t.value(c, outs[1]));
  EXPECT_FALSE(t.value(c, outs[2]));
  EXPECT_TRUE(t.value(c, outs[3]));
  EXPECT_FALSE(t.value(c, outs[4]));
}

TEST_F(BlockTest, EnableMuxRegisterIdiom) {
  BlockBuilder b = make_builder("pipeline_reg");
  build_pipeline_reg(b, inputs_, 8);
  // The block must contain MUX2 cells feeding DFF D pins from their own Q
  // (the recirculating-mux idiom CTS later converts to clock gates).
  int recirculating = 0;
  for (netlist::CellInstId id = 0; id < nl_.num_cells(); ++id) {
    if (nl_.lib_cell(id).func != CellFunc::kDff) continue;
    const NetId d = nl_.cell(id).pin_nets[0];
    const auto& dn = nl_.net(d);
    if (!dn.has_driver()) continue;
    const auto& drv = nl_.lib_cell(dn.driver.cell);
    if (drv.func != CellFunc::kMux2) continue;
    const NetId mux_a = nl_.cell(dn.driver.cell).pin_nets[0];
    if (mux_a == nl_.output_net(id)) ++recirculating;
  }
  EXPECT_GE(recirculating, 8);
}

TEST_F(BlockTest, MemCtrlInstantiatesSram) {
  BlockBuilder b = make_builder("mem_ctrl");
  build_mem_ctrl(b, inputs_, 8);
  const auto by_type = nl_.count_by_type();
  EXPECT_EQ(by_type[static_cast<std::size_t>(NodeType::kMacro)], 1u);
}

TEST(DesignSpec, PaperSpecsScaleWithPaperSizes) {
  const auto specs = paper_design_specs(0.01);
  ASSERT_EQ(specs.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(specs[static_cast<std::size_t>(i)].name, "C" + std::to_string(i + 1));
    EXPECT_NEAR(static_cast<double>(specs[static_cast<std::size_t>(i)].target_cells),
                static_cast<double>(kPaperGateCells[i]) * 0.01, 1.0);
  }
  // Strictly increasing sizes, like the paper's C1 < ... < C6.
  for (int i = 1; i < 6; ++i) {
    EXPECT_GT(specs[static_cast<std::size_t>(i)].target_cells,
              specs[static_cast<std::size_t>(i - 1)].target_cells);
  }
  EXPECT_THROW(paper_design_spec(0), std::invalid_argument);
  EXPECT_THROW(paper_design_spec(7), std::invalid_argument);
}

class GeneratedDesignTest : public ::testing::Test {
 protected:
  GeneratedDesignTest()
      : lib_(liberty::make_default_library()),
        nl_(generate_design(paper_design_spec(2, 0.004), lib_)) {}
  liberty::Library lib_;
  Netlist nl_;
};

TEST_F(GeneratedDesignTest, MeetsTargetSize) {
  const auto spec = paper_design_spec(2, 0.004);
  EXPECT_GE(nl_.num_cells(), spec.target_cells);
  EXPECT_LT(nl_.num_cells(), spec.target_cells * 13 / 10);
}

TEST_F(GeneratedDesignTest, StructurallyValid) { EXPECT_NO_THROW(nl_.check()); }

TEST_F(GeneratedDesignTest, NoClockCellsAtGateLevel) {
  // Paper: the clock network exists only post-layout; Gate-Level PTPX sees
  // zero clock-tree power.
  const auto by_type = nl_.count_by_type();
  EXPECT_EQ(by_type[static_cast<std::size_t>(NodeType::kCk)], 0u);
}

TEST_F(GeneratedDesignTest, HasMemoriesRegistersAndComb) {
  const auto by_group = nl_.count_by_group();
  EXPECT_GT(by_group[static_cast<std::size_t>(liberty::PowerGroup::kComb)], 100u);
  EXPECT_GT(by_group[static_cast<std::size_t>(liberty::PowerGroup::kRegister)], 100u);
  EXPECT_GE(by_group[static_cast<std::size_t>(liberty::PowerGroup::kMemory)], 1u);
}

TEST_F(GeneratedDesignTest, EveryCellBelongsToASubmodule) {
  for (netlist::CellInstId id = 0; id < nl_.num_cells(); ++id) {
    EXPECT_NE(nl_.cell(id).submodule, netlist::kNoSubmodule)
        << nl_.cell(id).name;
  }
}

TEST_F(GeneratedDesignTest, SubmodulesAreNonOverlappingAndCover) {
  // Partition property (paper Sec. III-A): sub-module cell sets are disjoint
  // and cover the design (cells_in_submodule is keyed by the cell's single
  // submodule field, so disjointness is structural; verify coverage).
  std::size_t covered = 0;
  for (netlist::SubmoduleId sm = 0;
       sm < static_cast<netlist::SubmoduleId>(nl_.submodules().size()); ++sm) {
    covered += nl_.cells_in_submodule(sm).size();
  }
  EXPECT_EQ(covered, nl_.num_cells());
}

TEST_F(GeneratedDesignTest, ComponentsMatchSpec) {
  const auto spec = paper_design_spec(2, 0.004);
  EXPECT_EQ(nl_.components().size(), spec.components.size());
  // C2 mimics the paper's OoO CPU: five components including lsu and dcache.
  std::set<std::string> names(nl_.components().begin(), nl_.components().end());
  EXPECT_TRUE(names.count("lsu"));
  EXPECT_TRUE(names.count("dcache"));
  EXPECT_TRUE(names.count("frontend"));
}

TEST_F(GeneratedDesignTest, DeterministicForSeed) {
  const Netlist again = generate_design(paper_design_spec(2, 0.004), lib_);
  ASSERT_EQ(again.num_cells(), nl_.num_cells());
  ASSERT_EQ(again.num_nets(), nl_.num_nets());
  for (netlist::CellInstId id = 0; id < nl_.num_cells(); ++id) {
    ASSERT_EQ(again.cell(id).name, nl_.cell(id).name);
    ASSERT_EQ(again.cell(id).lib_cell, nl_.cell(id).lib_cell);
    ASSERT_EQ(again.cell(id).pin_nets, nl_.cell(id).pin_nets);
  }
}

TEST_F(GeneratedDesignTest, DifferentDesignsDiffer) {
  const Netlist other = generate_design(paper_design_spec(4, 0.004), lib_);
  EXPECT_NE(other.num_cells(), nl_.num_cells());
  EXPECT_NE(other.components().size(), nl_.components().size());
}

TEST_F(GeneratedDesignTest, VerilogRoundTripPreservesDesign) {
  const std::string text = netlist::write_verilog(nl_);
  const Netlist back = netlist::parse_verilog(text, lib_);
  EXPECT_EQ(back.num_cells(), nl_.num_cells());
  EXPECT_EQ(back.num_nets(), nl_.num_nets());
  EXPECT_EQ(back.submodules().size(), nl_.submodules().size());
  EXPECT_NO_THROW(back.check());
}

TEST_F(GeneratedDesignTest, SimulatesAndTogglesEverywhere) {
  sim::CycleSimulator sim(nl_);
  sim::StimulusGenerator stim(nl_, sim::make_w1());
  const sim::ToggleTrace t = sim.run(stim, 40);
  // A healthy fraction of nets toggles at least once in 40 cycles.
  std::size_t toggled = 0;
  for (NetId n = 0; n < nl_.num_nets(); ++n) {
    toggled += t.total_transitions(n) > 0;
  }
  EXPECT_GT(toggled, nl_.num_nets() / 4);
}

TEST(DesignGenerator, RejectsTinyTargets) {
  const liberty::Library lib = liberty::make_default_library();
  DesignSpec spec;
  spec.target_cells = 10;
  EXPECT_THROW(generate_design(spec, lib), std::invalid_argument);
}

}  // namespace
}  // namespace atlas::designgen
