#include <gtest/gtest.h>

#include "designgen/design_generator.h"
#include "layout/layout_flow.h"
#include "liberty/library.h"
#include "power/power_analyzer.h"
#include "power/power_report.h"
#include "power/vectorless.h"
#include "sim/vcd.h"
#include "sim/simulator.h"
#include "util/parallel.h"

namespace atlas::power {
namespace {

using netlist::NetId;
using netlist::Netlist;

TEST(GroupPowerTest, Accounting) {
  GroupPower p;
  p.add(liberty::PowerGroup::kComb, 10.0);
  p.add(liberty::PowerGroup::kRegister, 5.0);
  p.add(liberty::PowerGroup::kClockTree, 2.0);
  p.add(liberty::PowerGroup::kMemory, 20.0);
  EXPECT_DOUBLE_EQ(p.total(), 37.0);
  EXPECT_DOUBLE_EQ(p.total_no_memory(), 17.0);
  EXPECT_DOUBLE_EQ(p.group(liberty::PowerGroup::kComb), 10.0);
  GroupPower q = p;
  q += p;
  EXPECT_DOUBLE_EQ(q.total(), 74.0);
}

TEST(MapeTest, Basics) {
  EXPECT_DOUBLE_EQ(mape({100, 100}, {100, 100}), 0.0);
  EXPECT_DOUBLE_EQ(mape({100, 100}, {90, 110}), 10.0);
  // Zero label, nonzero prediction: counts as 100% (paper's clock-tree case).
  EXPECT_DOUBLE_EQ(mape({0.0, 0.0}, {5.0, 7.0}), 100.0);
  EXPECT_DOUBLE_EQ(mape({0.0}, {0.0}), 0.0);
  EXPECT_THROW(mape({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(mape({}, {}), std::invalid_argument);
}

class PowerShapeTest : public ::testing::Test {
 protected:
  static constexpr int kCycles = 60;

  PowerShapeTest()
      : lib_(liberty::make_default_library()),
        gate_(designgen::generate_design(designgen::paper_design_spec(2, 0.003),
                                         lib_)),
        layout_(layout::run_layout(gate_)) {
    // Golden: post-layout netlist with extracted caps.
    sim::CycleSimulator sim_p(layout_.netlist);
    sim::StimulusGenerator stim_p(layout_.netlist, sim::make_w1());
    golden_ = std::make_unique<PowerResult>(
        analyze_power(layout_.netlist, sim_p.run(stim_p, kCycles)));
    // Baseline: same engine on the gate-level netlist (zero wire caps,
    // no clock tree) — the paper's "Gate-Level PTPX".
    sim::CycleSimulator sim_g(gate_);
    sim::StimulusGenerator stim_g(gate_, sim::make_w1());
    baseline_ = std::make_unique<PowerResult>(
        analyze_power(gate_, sim_g.run(stim_g, kCycles)));
  }

  liberty::Library lib_;
  Netlist gate_;
  layout::LayoutResult layout_;
  std::unique_ptr<PowerResult> golden_;
  std::unique_ptr<PowerResult> baseline_;
};

TEST_F(PowerShapeTest, AllGroupsPositivePostLayout) {
  const GroupPower avg = golden_->average_design();
  EXPECT_GT(avg.comb, 0.0);
  EXPECT_GT(avg.reg, 0.0);
  EXPECT_GT(avg.clock, 0.0);
  EXPECT_GT(avg.memory, 0.0);
}

TEST_F(PowerShapeTest, GateLevelHasZeroClockTreePower) {
  // Paper Table III: Gate-Level PTPX clock-tree MAPE is 100% because the
  // clock network simply does not exist at the gate level.
  const GroupPower avg = baseline_->average_design();
  EXPECT_DOUBLE_EQ(avg.clock, 0.0);
  const double clock_mape = mape(series_of(*golden_, Series::kClock),
                                 series_of(*baseline_, Series::kClock));
  EXPECT_DOUBLE_EQ(clock_mape, 100.0);
}

TEST_F(PowerShapeTest, GateLevelUnderestimatesCombPower) {
  // Paper: ~70% combinational MAPE at gate level, driven by missing wire
  // caps and missing reconstruction buffers.
  const double comb_mape = mape(series_of(*golden_, Series::kComb),
                                series_of(*baseline_, Series::kComb));
  EXPECT_GT(comb_mape, 25.0);
  const GroupPower g = golden_->average_design();
  const GroupPower b = baseline_->average_design();
  EXPECT_LT(b.comb, g.comb) << "gate level must underestimate";
}

TEST_F(PowerShapeTest, RegisterPowerCloseAcrossStages) {
  // Paper: register group MAPE at gate level is only ~2.3% — registers and
  // their clock-pin energy exist at both stages.
  const double reg_mape = mape(series_of(*golden_, Series::kReg),
                               series_of(*baseline_, Series::kReg));
  EXPECT_LT(reg_mape, 30.0);
}

TEST_F(PowerShapeTest, TotalGapMatchesPaperShape) {
  // Paper: >25% total error at gate level (excluding memory).
  const double total_mape = mape(series_of(*golden_, Series::kTotalNoMemory),
                                 series_of(*baseline_, Series::kTotalNoMemory));
  EXPECT_GT(total_mape, 15.0);
  EXPECT_LT(total_mape, 90.0);
}

TEST_F(PowerShapeTest, PerCyclePowerFluctuates) {
  const auto series = series_of(*golden_, Series::kTotalNoMemory);
  const auto [mn, mx] = std::minmax_element(series.begin() + 5, series.end());
  EXPECT_GT(*mx, *mn * 1.05);
}

TEST_F(PowerShapeTest, SubmodulePowersSumToDesign) {
  // Non-overlapping sub-modules: per-cycle design power equals the sum over
  // sub-modules (paper Sec. III-A motivation for sub-module splitting).
  for (int c = 0; c < kCycles; c += 7) {
    GroupPower sum;
    for (std::size_t sm = 0; sm < golden_->num_submodules(); ++sm) {
      sum += golden_->submodule(c, static_cast<netlist::SubmoduleId>(sm));
    }
    const GroupPower& d = golden_->design(c);
    EXPECT_NEAR(sum.total(), d.total(), d.total() * 1e-9 + 1e-9);
    EXPECT_NEAR(sum.clock, d.clock, d.clock * 1e-9 + 1e-9);
  }
}

TEST_F(PowerShapeTest, MemoryDominant) {
  // Paper Sec. VI-B: SRAM is a large share of total power (≈half there).
  const GroupPower avg = golden_->average_design();
  EXPECT_GT(avg.memory / avg.total(), 0.15);
}

TEST_F(PowerShapeTest, ClockPowerVariesWithGating) {
  // ICGs make clock-tree power per cycle non-constant.
  const auto series = series_of(*golden_, Series::kClock);
  const auto [mn, mx] = std::minmax_element(series.begin() + 5, series.end());
  EXPECT_GT(*mx, *mn);
}

TEST_F(PowerShapeTest, LeakageToggleIndependentPart) {
  PowerConfig no_leak;
  no_leak.include_leakage = false;
  sim::CycleSimulator sim_p(layout_.netlist);
  sim::StimulusGenerator stim_p(layout_.netlist, sim::make_w1());
  const PowerResult without =
      analyze_power(layout_.netlist, sim_p.run(stim_p, 10), no_leak);
  // Leakage-inclusive power strictly larger.
  EXPECT_GT(golden_->design(5).total(), without.design(5).total());
}

TEST_F(PowerShapeTest, ReportHelpersProduceText) {
  const GroupPower avg = golden_->average_design();
  EXPECT_NE(summarize(avg).find("total="), std::string::npos);
  EXPECT_NE(group_table(avg).find("clock tree"), std::string::npos);
  const std::string csv = trace_csv(*golden_);
  EXPECT_NE(csv.find("cycle,comb_uw"), std::string::npos);
  // Header + one row per cycle.
  EXPECT_EQ(static_cast<int>(std::count(csv.begin(), csv.end(), '\n')),
            kCycles + 1);
}

TEST_F(PowerShapeTest, TraceNetlistMismatchThrows) {
  sim::ToggleTrace tiny(3, 2);
  EXPECT_THROW(analyze_power(gate_, tiny), std::invalid_argument);
}

TEST_F(PowerShapeTest, VectorlessStatsAreSane) {
  const auto stats = propagate_vectorless(layout_.netlist);
  ASSERT_EQ(stats.size(), layout_.netlist.num_nets());
  for (netlist::NetId n = 0; n < layout_.netlist.num_nets(); ++n) {
    EXPECT_GE(stats[n].p_high, 0.0);
    EXPECT_LE(stats[n].p_high, 1.0);
    EXPECT_GE(stats[n].toggle_density, 0.0);
    EXPECT_LE(stats[n].toggle_density, 2.0);  // clock nets reach 2
  }
  // The clock root carries two transitions per cycle.
  EXPECT_DOUBLE_EQ(stats[layout_.netlist.clock_net()].toggle_density, 2.0);
}

TEST_F(PowerShapeTest, VectorlessLandsInTheRightDecade) {
  // Vectorless average power should be the right order of magnitude vs the
  // workload-driven average — that is all the technique promises.
  const GroupPower v = vectorless_average_power(layout_.netlist);
  const GroupPower g = golden_->average_design();
  EXPECT_GT(v.total_no_memory(), g.total_no_memory() * 0.2);
  EXPECT_LT(v.total_no_memory(), g.total_no_memory() * 5.0);
  EXPECT_GT(v.clock, 0.0);
  EXPECT_GT(v.reg, 0.0);
}

TEST_F(PowerShapeTest, VectorlessRespondsToInputActivity) {
  VectorlessConfig lo;
  lo.input_toggle_density = 0.05;
  VectorlessConfig hi;
  hi.input_toggle_density = 0.5;
  const GroupPower plo = vectorless_average_power(gate_, lo);
  const GroupPower phi = vectorless_average_power(gate_, hi);
  EXPECT_GT(phi.comb, plo.comb);
}

TEST_F(PowerShapeTest, ThreadCountEquivalenceBitExact) {
  // The full per-cycle pipeline (simulation + power analysis) must produce
  // bit-identical outputs at threads=1 and threads=4: parallel loops write
  // disjoint per-cycle/per-net slots and all reductions are ordered, so
  // exact double equality is the contract, not a tolerance.
  auto run_pipeline = [&] {
    sim::CycleSimulator sim(layout_.netlist);
    sim::StimulusGenerator stim(layout_.netlist, sim::make_w1());
    return analyze_power(layout_.netlist, sim.run(stim, kCycles));
  };
  util::set_global_threads(1);
  const PowerResult serial = run_pipeline();
  util::set_global_threads(4);
  const PowerResult threaded = run_pipeline();
  util::set_global_threads(0);

  ASSERT_EQ(serial.num_cycles(), threaded.num_cycles());
  ASSERT_EQ(serial.num_submodules(), threaded.num_submodules());
  for (int c = 0; c < serial.num_cycles(); ++c) {
    const GroupPower& a = serial.design(c);
    const GroupPower& b = threaded.design(c);
    ASSERT_EQ(a.comb, b.comb) << "cycle " << c;
    ASSERT_EQ(a.reg, b.reg) << "cycle " << c;
    ASSERT_EQ(a.clock, b.clock) << "cycle " << c;
    ASSERT_EQ(a.memory, b.memory) << "cycle " << c;
    for (std::size_t sm = 0; sm < serial.num_submodules(); ++sm) {
      const auto id = static_cast<netlist::SubmoduleId>(sm);
      ASSERT_EQ(serial.submodule(c, id).total(), threaded.submodule(c, id).total())
          << "cycle " << c << " submodule " << sm;
    }
  }
  // Ordered reductions make the averages exact too.
  const GroupPower avg_a = serial.average_design();
  const GroupPower avg_b = threaded.average_design();
  EXPECT_EQ(avg_a.total(), avg_b.total());
}

TEST_F(PowerShapeTest, VcdRoundTripPowerMatches) {
  // VCD in -> trace reconstruction -> power analysis must reproduce the
  // direct analysis (clock activity is reconstructed, not stored).
  sim::CycleSimulator sim(layout_.netlist);
  sim::StimulusGenerator stim(layout_.netlist, sim::make_w1());
  const sim::ToggleTrace trace = sim.run(stim, 20);
  const std::string text = sim::write_vcd(layout_.netlist, trace,
                                          sim.clock_net_mask());
  const sim::VcdData vcd = sim::parse_vcd(text, layout_.netlist);
  const sim::ToggleTrace rebuilt = sim::trace_from_vcd(vcd, layout_.netlist);
  const PowerResult direct = analyze_power(layout_.netlist, trace);
  const PowerResult via_vcd = analyze_power(layout_.netlist, rebuilt);
  // Cycle 0 differs (VCD has no pre-cycle reference value); compare later
  // cycles exactly.
  for (int c = 2; c < 20; c += 3) {
    EXPECT_NEAR(via_vcd.design(c).total(), direct.design(c).total(),
                direct.design(c).total() * 0.02)
        << "cycle " << c;
    EXPECT_NEAR(via_vcd.design(c).clock, direct.design(c).clock,
                direct.design(c).clock * 0.02 + 1e-9);
  }
}

}  // namespace
}  // namespace atlas::power
