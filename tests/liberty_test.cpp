#include <gtest/gtest.h>

#include "liberty/liberty_io.h"
#include "liberty/library.h"
#include "liberty/types.h"

namespace atlas::liberty {
namespace {

TEST(Types, EighteenNodeTypes) {
  EXPECT_EQ(kNumNodeTypes, 18);
  // Names are unique and round-trip.
  for (int i = 0; i < kNumNodeTypes; ++i) {
    const NodeType t = static_cast<NodeType>(i);
    EXPECT_EQ(node_type_from_name(node_type_name(t)), t);
  }
}

TEST(Types, NodeTypeOfCoversFamilies) {
  EXPECT_EQ(node_type_of(CellFunc::kNand3), NodeType::kNand);
  EXPECT_EQ(node_type_of(CellFunc::kFaSum), NodeType::kAdd);
  EXPECT_EQ(node_type_of(CellFunc::kMaj3), NodeType::kAdd);
  EXPECT_EQ(node_type_of(CellFunc::kCkGate), NodeType::kCk);
  EXPECT_EQ(node_type_of(CellFunc::kDffR), NodeType::kRegR);
  EXPECT_EQ(node_type_of(CellFunc::kSram), NodeType::kMacro);
}

TEST(Types, PowerGroups) {
  EXPECT_EQ(power_group_of(NodeType::kNand), PowerGroup::kComb);
  EXPECT_EQ(power_group_of(NodeType::kReg), PowerGroup::kRegister);
  EXPECT_EQ(power_group_of(NodeType::kRegR), PowerGroup::kRegister);
  EXPECT_EQ(power_group_of(NodeType::kLatch), PowerGroup::kRegister);
  EXPECT_EQ(power_group_of(NodeType::kCk), PowerGroup::kClockTree);
  EXPECT_EQ(power_group_of(NodeType::kMacro), PowerGroup::kMemory);
  EXPECT_EQ(power_group_of(NodeType::kTie), PowerGroup::kComb);
}

struct EvalCase {
  CellFunc func;
  std::vector<bool> inputs;
  bool expected;
};

class EvalCombTest : public ::testing::TestWithParam<EvalCase> {};

TEST_P(EvalCombTest, TruthTable) {
  const EvalCase& c = GetParam();
  std::vector<bool> in = c.inputs;
  bool raw[3];
  for (std::size_t i = 0; i < in.size(); ++i) raw[i] = in[i];
  EXPECT_EQ(eval_comb(c.func, raw, static_cast<int>(in.size())), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    TruthTables, EvalCombTest,
    ::testing::Values(
        EvalCase{CellFunc::kInv, {false}, true},
        EvalCase{CellFunc::kInv, {true}, false},
        EvalCase{CellFunc::kBuf, {true}, true},
        EvalCase{CellFunc::kAnd2, {true, false}, false},
        EvalCase{CellFunc::kAnd2, {true, true}, true},
        EvalCase{CellFunc::kAnd3, {true, true, true}, true},
        EvalCase{CellFunc::kAnd3, {true, true, false}, false},
        EvalCase{CellFunc::kOr2, {false, false}, false},
        EvalCase{CellFunc::kOr3, {false, false, true}, true},
        EvalCase{CellFunc::kNand2, {true, true}, false},
        EvalCase{CellFunc::kNand3, {true, false, true}, true},
        EvalCase{CellFunc::kNor2, {false, false}, true},
        EvalCase{CellFunc::kNor3, {false, true, false}, false},
        EvalCase{CellFunc::kXor2, {true, false}, true},
        EvalCase{CellFunc::kXor2, {true, true}, false},
        EvalCase{CellFunc::kXnor2, {true, true}, true},
        EvalCase{CellFunc::kMux2, {true, false, false}, true},   // S=0 -> A
        EvalCase{CellFunc::kMux2, {true, false, true}, false},   // S=1 -> B
        EvalCase{CellFunc::kAoi21, {true, true, false}, false},
        EvalCase{CellFunc::kAoi21, {false, true, false}, true},
        EvalCase{CellFunc::kOai21, {false, false, true}, true},
        EvalCase{CellFunc::kOai21, {true, false, true}, false},
        EvalCase{CellFunc::kFaSum, {true, true, true}, true},
        EvalCase{CellFunc::kFaSum, {true, true, false}, false},
        EvalCase{CellFunc::kMaj3, {true, true, false}, true},
        EvalCase{CellFunc::kMaj3, {true, false, false}, false},
        EvalCase{CellFunc::kTieHi, {}, true},
        EvalCase{CellFunc::kTieLo, {}, false},
        EvalCase{CellFunc::kCkGate, {true, true}, true},
        EvalCase{CellFunc::kCkGate, {true, false}, false}));

TEST(Types, EvalCombWrongArityThrows) {
  bool in[3] = {true, true, true};
  EXPECT_THROW(eval_comb(CellFunc::kInv, in, 2), std::invalid_argument);
  EXPECT_THROW(eval_comb(CellFunc::kDff, in, 0), std::invalid_argument);
}

TEST(Types, Classification) {
  EXPECT_TRUE(is_sequential(CellFunc::kDff));
  EXPECT_TRUE(is_sequential(CellFunc::kLatch));
  EXPECT_FALSE(is_sequential(CellFunc::kCkGate));
  EXPECT_TRUE(is_clock_cell(CellFunc::kCkBuf));
  EXPECT_TRUE(is_clock_cell(CellFunc::kCkGate));
  EXPECT_FALSE(is_clock_cell(CellFunc::kBuf));
  EXPECT_TRUE(is_macro(CellFunc::kSram));
  EXPECT_TRUE(is_combinational(CellFunc::kNand2));
  EXPECT_TRUE(is_combinational(CellFunc::kTieHi));
  EXPECT_FALSE(is_combinational(CellFunc::kDff));
  EXPECT_FALSE(is_combinational(CellFunc::kSram));
}

class DefaultLibraryTest : public ::testing::Test {
 protected:
  Library lib_ = make_default_library();
};

TEST_F(DefaultLibraryTest, HasAllFunctions) {
  for (int f = 0; f <= static_cast<int>(CellFunc::kSram); ++f) {
    EXPECT_NO_THROW(lib_.cell_for(static_cast<CellFunc>(f)));
  }
}

TEST_F(DefaultLibraryTest, LookupByName) {
  const CellId id = lib_.must("NAND2_X1");
  EXPECT_EQ(lib_.cell(id).func, CellFunc::kNand2);
  EXPECT_EQ(lib_.cell(id).drive, 1);
  EXPECT_FALSE(lib_.find("NAND2_X99").has_value());
  EXPECT_THROW(lib_.must("NOPE"), std::out_of_range);
}

TEST_F(DefaultLibraryTest, DriveUpChain) {
  const CellId x1 = lib_.must("INV_X1");
  const auto x2 = lib_.next_drive_up(x1);
  ASSERT_TRUE(x2.has_value());
  EXPECT_EQ(lib_.cell(*x2).drive, 2);
  const auto x4 = lib_.next_drive_up(*x2);
  ASSERT_TRUE(x4.has_value());
  EXPECT_EQ(lib_.cell(*x4).drive, 4);
  EXPECT_FALSE(lib_.next_drive_up(*x4).has_value());
}

TEST_F(DefaultLibraryTest, EnergyInterpolationMonotone) {
  const CellId id = lib_.must("NAND2_X1");
  double prev = -1.0;
  for (double load = 0.0; load <= 80.0; load += 4.0) {
    const double e = lib_.internal_energy_fj(id, load);
    EXPECT_GE(e, prev);
    prev = e;
  }
}

TEST_F(DefaultLibraryTest, EnergyClampedOutsideLut) {
  const CellId id = lib_.must("NAND2_X1");
  EXPECT_DOUBLE_EQ(lib_.internal_energy_fj(id, -5.0),
                   lib_.internal_energy_fj(id, 0.0));
  EXPECT_DOUBLE_EQ(lib_.internal_energy_fj(id, 1000.0),
                   lib_.internal_energy_fj(id, 64.0));
}

TEST_F(DefaultLibraryTest, InterpolationBetweenPoints) {
  const CellId id = lib_.must("INV_X1");
  const double e4 = lib_.internal_energy_fj(id, 4.0);
  const double e8 = lib_.internal_energy_fj(id, 8.0);
  EXPECT_NEAR(lib_.internal_energy_fj(id, 6.0), 0.5 * (e4 + e8), 1e-12);
}

TEST_F(DefaultLibraryTest, SwitchingEnergyFormula) {
  // 0.5 * C * V^2: 10 fF at 0.9 V -> 4.05 fJ.
  EXPECT_NEAR(lib_.switching_energy_fj(10.0), 4.05, 1e-9);
}

TEST_F(DefaultLibraryTest, RegistersDominatedByClockPinEnergy) {
  const Cell& dff = lib_.cell(lib_.must("DFF_X1"));
  EXPECT_GT(dff.clock_pin_energy_fj, 0.0);
  // Clock pin flagged.
  const auto ck = dff.pin_index("CK");
  ASSERT_TRUE(ck.has_value());
  EXPECT_TRUE(dff.pins[static_cast<std::size_t>(*ck)].is_clock);
}

TEST_F(DefaultLibraryTest, SramMacroShape) {
  const Cell& sram = lib_.cell(lib_.cell_for(CellFunc::kSram));
  EXPECT_GT(sram.read_energy_fj, 1000.0);
  EXPECT_GT(sram.write_energy_fj, sram.read_energy_fj);
  int outs = 0;
  for (const Pin& p : sram.pins) outs += p.dir == PinDir::kOutput;
  EXPECT_EQ(outs, 16);
  EXPECT_EQ(sram.pins.size(), 3u + 8u + 16u + 16u);
  EXPECT_GT(sram.leakage_uw, 1.0);  // macro leakage dwarfs cell leakage
}

TEST_F(DefaultLibraryTest, DuplicateCellNameRejected) {
  Library lib("t", 0.9, 1.0);
  Cell c;
  c.name = "X";
  lib.add_cell(c);
  EXPECT_THROW(lib.add_cell(c), std::invalid_argument);
}

TEST_F(DefaultLibraryTest, PinOrderConventions) {
  const Cell& dffr = lib_.cell(lib_.must("DFFR_X1"));
  ASSERT_EQ(dffr.pins.size(), 4u);
  EXPECT_EQ(dffr.pins[0].name, "D");
  EXPECT_EQ(dffr.pins[1].name, "CK");
  EXPECT_EQ(dffr.pins[2].name, "RN");
  EXPECT_EQ(dffr.pins[3].name, "Q");
  const Cell& mux = lib_.cell(lib_.must("MUX2_X1"));
  EXPECT_EQ(mux.pins[2].name, "S");
}

TEST(LibertyIo, WriterParserRoundTrip) {
  const Library lib = make_default_library();
  const std::string text = write_liberty(lib);
  const Library back = parse_library(text);
  ASSERT_EQ(back.size(), lib.size());
  EXPECT_DOUBLE_EQ(back.voltage(), lib.voltage());
  EXPECT_EQ(back.name(), lib.name());
  for (CellId id = 0; id < lib.size(); ++id) {
    const Cell& a = lib.cell(id);
    const auto bid = back.find(a.name);
    ASSERT_TRUE(bid.has_value()) << a.name;
    const Cell& b = back.cell(*bid);
    EXPECT_EQ(b.func, a.func);
    EXPECT_EQ(b.type, a.type);
    EXPECT_EQ(b.drive, a.drive);
    EXPECT_NEAR(b.leakage_uw, a.leakage_uw, 1e-9);
    EXPECT_NEAR(b.clock_pin_energy_fj, a.clock_pin_energy_fj, 1e-9);
    ASSERT_EQ(b.pins.size(), a.pins.size());
    for (std::size_t p = 0; p < a.pins.size(); ++p) {
      EXPECT_EQ(b.pins[p].name, a.pins[p].name);
      EXPECT_EQ(b.pins[p].dir, a.pins[p].dir);
      EXPECT_NEAR(b.pins[p].cap_ff, a.pins[p].cap_ff, 1e-9);
      EXPECT_EQ(b.pins[p].is_clock, a.pins[p].is_clock);
    }
    ASSERT_EQ(b.energy_fj.size(), a.energy_fj.size());
    for (std::size_t i = 0; i < a.energy_fj.size(); ++i) {
      EXPECT_NEAR(b.energy_fj[i], a.energy_fj[i], 1e-6);
    }
  }
}

TEST(LibertyIo, ParsesCommentsAndWhitespace) {
  const char* text = R"(
    /* block comment */
    library(mini) { // line comment
      nom_voltage : 1.1;
      cell(INV_T) {
        cell_function : "INV";
        area : 1.0;
        pin(A) { direction : input; capacitance : 0.5; }
        pin(Y) { direction : output; max_capacitance : 10; }
        internal_power() { index_1("0, 10"); values("0.2, 0.4"); }
      }
    }
  )";
  const Library lib = parse_library(text);
  EXPECT_DOUBLE_EQ(lib.voltage(), 1.1);
  const Cell& c = lib.cell(lib.must("INV_T"));
  EXPECT_EQ(c.func, CellFunc::kInv);
  EXPECT_NEAR(lib.internal_energy_fj(lib.must("INV_T"), 5.0), 0.3, 1e-12);
}

TEST(LibertyIo, MalformedInputThrows) {
  EXPECT_THROW(parse_liberty_text("library(x) {"), LibertyParseError);
  EXPECT_THROW(parse_liberty_text("library(x) } "), LibertyParseError);
  EXPECT_THROW(parse_liberty_text("library(x) { foo }"), LibertyParseError);
  EXPECT_THROW(parse_liberty_text("library(x) { a : ; }"), LibertyParseError);
  EXPECT_THROW(parse_library("cell(x) { }"), LibertyParseError);
}

TEST(LibertyIo, UnknownCellFunctionThrows) {
  const char* text = R"(library(m) { cell(Z) { cell_function : "WAT"; } })";
  EXPECT_THROW(parse_library(text), std::invalid_argument);
}

TEST(LibertyIo, GenericAstExposesStructure) {
  const LibertyGroup g = parse_liberty_text(
      "library(n) { k : v; sub(a, b) { x : 1; } }");
  EXPECT_EQ(g.kind, "library");
  ASSERT_EQ(g.args.size(), 1u);
  EXPECT_EQ(g.attr("k"), "v");
  EXPECT_TRUE(g.has_attr("k"));
  EXPECT_FALSE(g.has_attr("nope"));
  EXPECT_EQ(g.attr("nope", "dflt"), "dflt");
  ASSERT_EQ(g.children.size(), 1u);
  EXPECT_EQ(g.children[0].kind, "sub");
  ASSERT_EQ(g.children[0].args.size(), 2u);
}

TEST(LibertyIo, FileRoundTrip) {
  const Library lib = make_default_library();
  const std::string path = ::testing::TempDir() + "/atlas_lib_test.lib";
  save_liberty_file(lib, path);
  const Library back = load_liberty_file(path);
  EXPECT_EQ(back.size(), lib.size());
}

TEST(LibertyIo, ContentHashIsDeterministicAndRoundTripStable) {
  // Two independently built copies hash equal; and because the hash is
  // defined over the canonical serialization, a write/parse round trip
  // (which quantizes values through %.9g) keeps the hash stable — so a
  // library loaded from disk keys the same cache entries as its source.
  const Library a = make_default_library();
  const Library b = make_default_library();
  EXPECT_NE(content_hash(a), 0u);
  EXPECT_EQ(content_hash(a), content_hash(b));
  EXPECT_EQ(content_hash(parse_library(write_liberty(a))), content_hash(a));
}

TEST(LibertyIo, ContentHashSeparatesDifferentLibraries) {
  const Library base = make_default_library();
  Library scaled("scaled", base.voltage(), base.clock_period_ns());
  for (Cell c : base.cells()) {
    for (double& e : c.energy_fj) e *= 2.0;
    c.leakage_uw *= 2.0;
    scaled.add_cell(std::move(c));
  }
  EXPECT_NE(content_hash(base), content_hash(scaled));

  // The name alone also separates: same cells, different header.
  Library renamed("renamed", base.voltage(), base.clock_period_ns());
  for (Cell c : base.cells()) renamed.add_cell(std::move(c));
  EXPECT_NE(content_hash(base), content_hash(renamed));
}

}  // namespace
}  // namespace atlas::liberty
