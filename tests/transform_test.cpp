#include <gtest/gtest.h>

#include <unordered_map>

#include "designgen/design_generator.h"
#include "liberty/library.h"
#include "sim/simulator.h"
#include "transform/rewrite.h"

namespace atlas::transform {
namespace {

using netlist::NetId;
using netlist::Netlist;

class RewriteTest : public ::testing::Test {
 protected:
  RewriteTest()
      : lib_(liberty::make_default_library()),
        nl_(designgen::generate_design(designgen::paper_design_spec(1, 0.003),
                                       lib_)) {}

  liberty::Library lib_;
  Netlist nl_;
};

TEST_F(RewriteTest, ProducesStructurallyDifferentNetlist) {
  RewriteStats stats;
  const Netlist plus = apply_rewrites(nl_, RewriteConfig{}, &stats);
  EXPECT_GT(stats.total(), 50);
  EXPECT_NE(plus.num_cells(), nl_.num_cells());
  EXPECT_NO_THROW(plus.check());
  EXPECT_EQ(plus.name(), nl_.name() + "_plus");
  // Structure differs: type histogram changes.
  EXPECT_NE(plus.count_by_type(), nl_.count_by_type());
}

TEST_F(RewriteTest, PreservesSubmodulePartition) {
  const Netlist plus = apply_rewrites(nl_, RewriteConfig{});
  EXPECT_EQ(plus.submodules().size(), nl_.submodules().size());
  for (netlist::CellInstId id = 0; id < plus.num_cells(); ++id) {
    EXPECT_NE(plus.cell(id).submodule, netlist::kNoSubmodule);
  }
}

TEST_F(RewriteTest, PreservesRegistersAndMacros) {
  const Netlist plus = apply_rewrites(nl_, RewriteConfig{});
  const auto a = nl_.count_by_group();
  const auto b = plus.count_by_group();
  using liberty::PowerGroup;
  EXPECT_EQ(b[static_cast<std::size_t>(PowerGroup::kRegister)],
            a[static_cast<std::size_t>(PowerGroup::kRegister)]);
  EXPECT_EQ(b[static_cast<std::size_t>(PowerGroup::kMemory)],
            a[static_cast<std::size_t>(PowerGroup::kMemory)]);
}

/// The central property: N_g+ is Boolean-equivalent to N_g. Simulate both
/// under the same workload and compare every surviving original net by name.
TEST_F(RewriteTest, FunctionalEquivalenceUnderSimulation) {
  const Netlist plus = apply_rewrites(nl_, RewriteConfig{});
  sim::CycleSimulator sim_g(nl_);
  sim::CycleSimulator sim_p(plus);
  sim::StimulusGenerator stim_g(nl_, sim::make_w1());
  sim::StimulusGenerator stim_p(plus, sim::make_w1());
  const int cycles = 40;
  const sim::ToggleTrace tg = sim_g.run(stim_g, cycles);
  const sim::ToggleTrace tp = sim_p.run(stim_p, cycles);

  std::unordered_map<std::string, NetId> plus_by_name;
  for (NetId n = 0; n < plus.num_nets(); ++n) {
    plus_by_name.emplace(plus.net(n).name, n);
  }
  std::size_t compared = 0;
  for (NetId n = 0; n < nl_.num_nets(); ++n) {
    const auto it = plus_by_name.find(nl_.net(n).name);
    if (it == plus_by_name.end()) continue;
    for (int c = 0; c < cycles; ++c) {
      ASSERT_EQ(tg.value(c, n), tp.value(c, it->second))
          << "net " << nl_.net(n).name << " cycle " << c;
    }
    ++compared;
  }
  // Nearly all original nets survive rewriting (they keep their names).
  EXPECT_GT(compared, nl_.num_nets() * 9 / 10);
}

TEST_F(RewriteTest, DeterministicForSeed) {
  const Netlist a = apply_rewrites(nl_, RewriteConfig{});
  const Netlist b = apply_rewrites(nl_, RewriteConfig{});
  ASSERT_EQ(a.num_cells(), b.num_cells());
  for (netlist::CellInstId id = 0; id < a.num_cells(); ++id) {
    ASSERT_EQ(a.cell(id).lib_cell, b.cell(id).lib_cell);
  }
}

TEST_F(RewriteTest, DifferentSeedsGiveDifferentStructures) {
  RewriteConfig c1;
  c1.seed = 1;
  RewriteConfig c2;
  c2.seed = 99;
  const Netlist a = apply_rewrites(nl_, c1);
  const Netlist b = apply_rewrites(nl_, c2);
  EXPECT_NE(a.num_cells(), b.num_cells());
}

TEST_F(RewriteTest, ZeroProbabilitiesLeaveNetlistUnchanged) {
  RewriteConfig cfg;
  cfg.p_demorgan = cfg.p_split_wide = cfg.p_mux_decompose = 0.0;
  cfg.p_xor_decompose = cfg.p_adder_decompose = cfg.p_aoi_flatten = 0.0;
  cfg.p_double_inv = cfg.p_buffer = 0.0;
  RewriteStats stats;
  const Netlist same = apply_rewrites(nl_, cfg, &stats);
  EXPECT_EQ(stats.total(), 0);
  EXPECT_EQ(same.num_cells(), nl_.num_cells());
}

TEST_F(RewriteTest, MaxProbabilitiesStillEquivalent) {
  RewriteConfig cfg;
  cfg.p_demorgan = cfg.p_split_wide = cfg.p_mux_decompose = 1.0;
  cfg.p_adder_decompose = cfg.p_aoi_flatten = 1.0;
  cfg.p_double_inv = 0.3;
  cfg.p_buffer = 0.3;
  RewriteStats stats;
  const Netlist plus = apply_rewrites(nl_, cfg, &stats);
  EXPECT_NO_THROW(plus.check());
  EXPECT_GT(stats.demorgan, 0);
  EXPECT_GT(stats.split_wide, 0);
  EXPECT_GT(stats.mux_decompose, 0);
  EXPECT_GT(stats.adder_decompose, 0);
  EXPECT_GT(stats.double_inv, 0);
  EXPECT_GT(stats.buffer, 0);

  // Spot-check equivalence on a short run.
  sim::CycleSimulator sim_g(nl_);
  sim::CycleSimulator sim_p(plus);
  sim::StimulusGenerator stim_g(nl_, sim::make_w2());
  sim::StimulusGenerator stim_p(plus, sim::make_w2());
  const sim::ToggleTrace tg = sim_g.run(stim_g, 15);
  const sim::ToggleTrace tp = sim_p.run(stim_p, 15);
  std::unordered_map<std::string, NetId> plus_by_name;
  for (NetId n = 0; n < plus.num_nets(); ++n) {
    plus_by_name.emplace(plus.net(n).name, n);
  }
  for (const NetId po : nl_.primary_outputs()) {
    const auto it = plus_by_name.find(nl_.net(po).name);
    ASSERT_NE(it, plus_by_name.end());
    for (int c = 0; c < 15; ++c) {
      ASSERT_EQ(tg.value(c, po), tp.value(c, it->second));
    }
  }
}

}  // namespace
}  // namespace atlas::transform
