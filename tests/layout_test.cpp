#include <gtest/gtest.h>

#include <unordered_map>

#include "designgen/design_generator.h"
#include "layout/layout_flow.h"
#include "liberty/library.h"
#include "sim/simulator.h"

namespace atlas::layout {
namespace {

using liberty::NodeType;
using netlist::NetId;
using netlist::Netlist;

class LayoutTest : public ::testing::Test {
 protected:
  LayoutTest()
      : lib_(liberty::make_default_library()),
        gate_(designgen::generate_design(designgen::paper_design_spec(1, 0.003),
                                         lib_)),
        result_(run_layout(gate_)) {}

  liberty::Library lib_;
  Netlist gate_;
  LayoutResult result_;
};

TEST_F(LayoutTest, PlacementCoversAllCells) {
  const Placement pl = place(gate_);
  EXPECT_EQ(pl.size(), gate_.num_cells());
  EXPECT_GT(pl.die_size_um, 10.0);
  for (netlist::CellInstId id = 0; id < gate_.num_cells(); ++id) {
    const Point& p = pl.of(id);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, pl.die_size_um);
    EXPECT_GE(p.y, 0.0);
  }
}

TEST_F(LayoutTest, PlacementKeepsSubmodulesLocal) {
  const Placement pl = place(gate_);
  // Average intra-sub-module net HPWL must be well below the die size.
  double intra = 0.0;
  int count = 0;
  for (NetId n = 0; n < gate_.num_nets(); ++n) {
    const auto& net = gate_.net(n);
    if (!net.has_driver() || net.sinks.empty()) continue;
    const auto sm = gate_.cell(net.driver.cell).submodule;
    bool local = true;
    for (const auto& s : net.sinks) local = local && gate_.cell(s.cell).submodule == sm;
    if (!local) continue;
    intra += pl.net_hpwl(gate_, n);
    ++count;
  }
  ASSERT_GT(count, 100);
  EXPECT_LT(intra / count, pl.die_size_um * 0.4);
}

TEST_F(LayoutTest, ExtractionScalesWithWirelength) {
  const Placement pl = place(gate_);
  const Parasitics par = extract(gate_, pl);
  ASSERT_EQ(par.wire_cap_ff.size(), gate_.num_nets());
  EXPECT_GT(par.total_cap_ff(), 0.0);
  // Caps nonnegative and correlated with HPWL.
  for (NetId n = 0; n < gate_.num_nets(); ++n) {
    EXPECT_GE(par.wire_cap_ff[n], 0.0);
  }
  const NetId clk = gate_.clock_net();
  // Pre-CTS clock net spans the die: it must be among the largest caps.
  double max_cap = 0.0;
  for (const double c : par.wire_cap_ff) max_cap = std::max(max_cap, c);
  EXPECT_NEAR(par.wire_cap_ff[clk], max_cap, max_cap * 0.5);
}

TEST_F(LayoutTest, SpefRoundTrip) {
  const Placement pl = place(gate_);
  const Parasitics par = extract(gate_, pl);
  const std::string text = write_spef(gate_, par);
  const Parasitics back = parse_spef(text, gate_);
  ASSERT_EQ(back.wire_cap_ff.size(), par.wire_cap_ff.size());
  for (NetId n = 0; n < gate_.num_nets(); ++n) {
    EXPECT_NEAR(back.wire_cap_ff[n], par.wire_cap_ff[n], 1e-4);
  }
}

TEST_F(LayoutTest, SpefParseErrors) {
  EXPECT_THROW(parse_spef("", gate_), std::runtime_error);
  EXPECT_THROW(parse_spef("*SPEF \"x\"\n*D_NET *1 0.5\n", gate_),
               std::runtime_error);  // name map missing
}

TEST_F(LayoutTest, FlowProducesValidNetlist) {
  EXPECT_NO_THROW(result_.netlist.check());
  EXPECT_EQ(result_.placement.size(), result_.netlist.num_cells());
  EXPECT_EQ(result_.parasitics.wire_cap_ff.size(), result_.netlist.num_nets());
}

TEST_F(LayoutTest, CellCountGrowsLikePaperTable2) {
  // Paper Table II: post-layout cell count exceeds gate-level by ~4-7%.
  EXPECT_GT(result_.netlist.num_cells(), gate_.num_cells());
  const double growth = static_cast<double>(result_.netlist.num_cells()) /
                        static_cast<double>(gate_.num_cells());
  EXPECT_LT(growth, 1.35) << "growth should stay moderate";
}

TEST_F(LayoutTest, ClockTreeExists) {
  const auto by_type = result_.netlist.count_by_type();
  EXPECT_GT(by_type[static_cast<std::size_t>(NodeType::kCk)], 5u);
  EXPECT_GT(result_.cts_stats.clock_buffers, 0);
  EXPECT_GT(result_.cts_stats.tree_levels, 0);
  EXPECT_GT(result_.cts_stats.icgs, 0);
  EXPECT_GT(result_.cts_stats.gated_registers,
            3 * result_.cts_stats.icgs - 1);
}

TEST_F(LayoutTest, TimingOptimizationActuallyFired) {
  EXPECT_GT(result_.timing_stats.resized + result_.timing_stats.buffers_inserted, 0);
}

TEST_F(LayoutTest, NoOverloadedDriversRemain) {
  const Netlist& nl = result_.netlist;
  int overloaded = 0;
  for (netlist::CellInstId id = 0; id < nl.num_cells(); ++id) {
    const auto& lc = nl.lib_cell(id);
    const int out_pin = lc.output_pin();
    if (out_pin < 0) continue;
    const NetId out = nl.cell(id).pin_nets[static_cast<std::size_t>(out_pin)];
    if (out == nl.clock_net()) continue;
    const double load = net_load_ff(nl, out);
    const double limit = lc.pins[static_cast<std::size_t>(out_pin)].max_cap_ff;
    // Clock buffers drive clock nets with their own budget.
    if (liberty::is_clock_cell(lc.func)) continue;
    if (load > limit * 1.05) ++overloaded;
  }
  // A handful of stragglers is acceptable (macro pins etc.), not a pattern.
  EXPECT_LT(overloaded, static_cast<int>(nl.num_cells() / 100));
}

TEST_F(LayoutTest, RegistersPreserved) {
  using liberty::PowerGroup;
  const auto a = gate_.count_by_group();
  const auto b = result_.netlist.count_by_group();
  EXPECT_EQ(b[static_cast<std::size_t>(PowerGroup::kRegister)],
            a[static_cast<std::size_t>(PowerGroup::kRegister)]);
  EXPECT_EQ(b[static_cast<std::size_t>(PowerGroup::kMemory)],
            a[static_cast<std::size_t>(PowerGroup::kMemory)]);
}

TEST_F(LayoutTest, WireCapsAnnotated) {
  double annotated = 0.0;
  for (NetId n = 0; n < result_.netlist.num_nets(); ++n) {
    annotated += result_.netlist.net(n).wire_cap_ff;
  }
  EXPECT_GT(annotated, 0.0);
  // Gate-level netlist carries no annotation.
  for (NetId n = 0; n < gate_.num_nets(); ++n) {
    EXPECT_EQ(gate_.net(n).wire_cap_ff, 0.0);
  }
}

/// Central cross-stage property: N_p is functionally equivalent to N_g
/// (timing optimization inserts buffers; CTS converts enable-mux registers
/// to ICGs with identical cycle semantics).
TEST_F(LayoutTest, PostLayoutFunctionallyEquivalent) {
  const Netlist& post = result_.netlist;
  sim::CycleSimulator sim_g(gate_);
  sim::CycleSimulator sim_p(post);
  sim::StimulusGenerator stim_g(gate_, sim::make_w1());
  sim::StimulusGenerator stim_p(post, sim::make_w1());
  const int cycles = 40;
  const sim::ToggleTrace tg = sim_g.run(stim_g, cycles);
  const sim::ToggleTrace tp = sim_p.run(stim_p, cycles);

  std::unordered_map<std::string, NetId> post_by_name;
  for (NetId n = 0; n < post.num_nets(); ++n) {
    post_by_name.emplace(post.net(n).name, n);
  }
  // Compare all register outputs (every DFF Q net name survives layout).
  std::size_t compared = 0;
  for (netlist::CellInstId id = 0; id < gate_.num_cells(); ++id) {
    if (!liberty::is_sequential(gate_.lib_cell(id).func)) continue;
    const NetId q = gate_.output_net(id);
    const auto it = post_by_name.find(gate_.net(q).name);
    ASSERT_NE(it, post_by_name.end()) << gate_.net(q).name;
    for (int c = 0; c < cycles; ++c) {
      ASSERT_EQ(tg.value(c, q), tp.value(c, it->second))
          << "register " << gate_.net(q).name << " cycle " << c;
    }
    ++compared;
  }
  EXPECT_GT(compared, 100u);
}

TEST_F(LayoutTest, DeterministicFlow) {
  const LayoutResult again = run_layout(gate_);
  ASSERT_EQ(again.netlist.num_cells(), result_.netlist.num_cells());
  ASSERT_EQ(again.netlist.num_nets(), result_.netlist.num_nets());
  for (NetId n = 0; n < again.netlist.num_nets(); ++n) {
    ASSERT_DOUBLE_EQ(again.netlist.net(n).wire_cap_ff,
                     result_.netlist.net(n).wire_cap_ff);
  }
}

}  // namespace
}  // namespace atlas::layout
