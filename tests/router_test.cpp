// Tests for the atlas_router sharding tier: hash-ring placement properties
// (balance, minimal movement, determinism), backend pool liveness, and
// end-to-end 2-backend topologies — sharded cache warmth, bit-identity with
// a direct atlas_serve, mid-workload backend death with failover (predict
// and mid-stream), admin fan-out, and the router's metrics surface.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <thread>

// TSan's ~10x slowdown serializes concurrent volleys, so assertions about
// load-balance *quality* (not correctness) are skipped under it.
#if defined(__SANITIZE_THREAD__)
#define ATLAS_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ATLAS_TSAN_ACTIVE 1
#endif
#endif
#ifndef ATLAS_TSAN_ACTIVE
#define ATLAS_TSAN_ACTIVE 0
#endif

#include "atlas/finetune.h"
#include "atlas/model.h"
#include "atlas/preprocess.h"
#include "atlas/pretrain.h"
#include "designgen/design_generator.h"
#include "graph/submodule_graph.h"
#include "liberty/liberty_io.h"
#include "netlist/verilog_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "router/backend_pool.h"
#include "router/hot_keys.h"
#include "router/fleet_obs.h"
#include "router/hash_ring.h"
#include "router/router.h"
#include "serve/client.h"
#include "serve/server.h"
#include "sim/external_trace.h"
#include "sim/simulator.h"
#include "sim/stimulus.h"
#include "sim/vcd.h"
#include "util/hash.h"
#include "util/socket.h"

namespace atlas::router {
namespace {

using serve::Client;
using serve::ErrorCode;
using serve::HealthResponse;
using serve::PredictRequest;
using serve::PredictResponse;
using serve::ServeError;

// ---- Hash ring properties -------------------------------------------------

std::vector<std::string> make_backend_ids(std::size_t n) {
  std::vector<std::string> ids;
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back("10.0.0." + std::to_string(i + 1) + ":7433");
  }
  return ids;
}

TEST(HashRing, DistributionIsBalancedAcrossVirtualNodes) {
  constexpr std::size_t kBackends = 8;
  constexpr std::size_t kKeys = 20000;
  HashRing ring(64);
  for (const std::string& id : make_backend_ids(kBackends)) ring.add(id);

  std::map<std::string, std::size_t> load;
  for (std::size_t k = 0; k < kKeys; ++k) {
    load[ring.lookup(util::hash_mix(0x9e3779b97f4a7c15ull, k))]++;
  }
  ASSERT_EQ(load.size(), kBackends) << "some backend owns no keys";
  const double mean = static_cast<double>(kKeys) / kBackends;
  for (const auto& [id, n] : load) {
    // 64 vnodes keeps the spread well inside 2x of fair share; a ring bug
    // (bad mixing, vnode collisions) blows far past this.
    EXPECT_GT(static_cast<double>(n), 0.45 * mean) << id;
    EXPECT_LT(static_cast<double>(n), 1.8 * mean) << id;
  }
}

TEST(HashRing, RemovalMovesOnlyTheRemovedBackendsKeys) {
  constexpr std::size_t kBackends = 6;
  constexpr std::size_t kKeys = 10000;
  const std::vector<std::string> ids = make_backend_ids(kBackends);
  HashRing ring(64);
  for (const std::string& id : ids) ring.add(id);

  std::vector<std::uint64_t> keys;
  std::vector<std::string> before;
  for (std::size_t k = 0; k < kKeys; ++k) {
    keys.push_back(util::hash_mix(0x517cc1b727220a95ull, k));
    before.push_back(ring.lookup(keys.back()));
  }

  const std::string& victim = ids[2];
  ASSERT_TRUE(ring.remove(victim));
  std::size_t moved = 0;
  for (std::size_t k = 0; k < kKeys; ++k) {
    const std::string after = ring.lookup(keys[k]);
    if (before[k] == victim) {
      EXPECT_NE(after, victim);
      ++moved;
    } else {
      // The consistent-hashing contract: keys not owned by the removed
      // backend do not move at all.
      EXPECT_EQ(after, before[k]) << "key " << k << " moved gratuitously";
    }
  }
  // The victim owned roughly 1/6 of the keyspace; all of it (and only it)
  // was reassigned.
  EXPECT_GT(moved, kKeys / 12);
  EXPECT_LT(moved, kKeys / 3);

  // Re-adding restores the original placement exactly (pure content
  // hashing: membership determines placement, history does not).
  ring.add(victim);
  for (std::size_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(ring.lookup(keys[k]), before[k]);
  }
}

TEST(HashRing, PlacementIsDeterministicAcrossInstancesAndInsertionOrder) {
  const std::vector<std::string> ids = make_backend_ids(5);
  HashRing forward(64);
  for (auto it = ids.begin(); it != ids.end(); ++it) forward.add(*it);
  HashRing reverse(64);
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) reverse.add(*it);
  // A third instance that saw churn before converging on the same members —
  // the "router restart mid-outage" case.
  HashRing churned(64);
  for (const std::string& id : ids) churned.add(id);
  churned.remove(ids[0]);
  churned.remove(ids[3]);
  churned.add(ids[3]);
  churned.add(ids[0]);

  for (std::size_t k = 0; k < 5000; ++k) {
    const std::uint64_t key = util::hash_mix(0x2545f4914f6cdd1dull, k);
    const std::string owner = forward.lookup(key);
    EXPECT_EQ(reverse.lookup(key), owner);
    EXPECT_EQ(churned.lookup(key), owner);
  }
}

TEST(HashRing, PreferenceChainIsTheFailoverOrder) {
  const std::vector<std::string> ids = make_backend_ids(4);
  HashRing ring(64);
  for (const std::string& id : ids) ring.add(id);

  for (std::size_t k = 0; k < 500; ++k) {
    const std::uint64_t key = util::hash_mix(0xd6e8feb86659fd93ull, k);
    const std::vector<std::string> chain = ring.preference(key, ids.size());
    ASSERT_EQ(chain.size(), ids.size());
    EXPECT_EQ(chain[0], ring.lookup(key));
    EXPECT_EQ(std::set<std::string>(chain.begin(), chain.end()).size(),
              chain.size())
        << "preference chain has duplicates";
    // The first successor is exactly where the key re-homes after the owner
    // leaves — a failed-over request warms the shard that keeps the key.
    HashRing without = ring;
    without.remove(chain[0]);
    EXPECT_EQ(without.lookup(key), chain[1]);
  }
}

TEST(HashRing, EmptyAndSingleMemberEdges) {
  HashRing ring(8);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.lookup(42), "");
  EXPECT_TRUE(ring.preference(42, 3).empty());
  EXPECT_FALSE(ring.remove("ghost"));

  ring.add("only:1");
  ring.add("only:1");  // idempotent
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.lookup(0), "only:1");
  EXPECT_EQ(ring.lookup(~0ull), "only:1");
  EXPECT_EQ(ring.preference(7, 5), std::vector<std::string>{"only:1"});
}

// ---- Backend spec parsing -------------------------------------------------

TEST(BackendSpec, ParsesTcpAndUnixForms) {
  const BackendAddress tcp = parse_backend("127.0.0.1:7433");
  EXPECT_FALSE(tcp.is_unix());
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 7433);
  EXPECT_EQ(tcp.id, "127.0.0.1:7433");

  const BackendAddress uds = parse_backend("unix:/tmp/a.sock");
  EXPECT_TRUE(uds.is_unix());
  EXPECT_EQ(uds.unix_path, "/tmp/a.sock");
  EXPECT_EQ(uds.id, "unix:/tmp/a.sock");

  const auto list = parse_backend_list("127.0.0.1:1,unix:/tmp/b.sock, ");
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].id, "127.0.0.1:1");
  EXPECT_EQ(list[1].id, "unix:/tmp/b.sock");
}

TEST(BackendSpec, RejectsMalformedAndDuplicateSpecs) {
  EXPECT_THROW(parse_backend("no-port"), std::runtime_error);
  EXPECT_THROW(parse_backend("host:"), std::runtime_error);
  EXPECT_THROW(parse_backend(":7433"), std::runtime_error);
  EXPECT_THROW(parse_backend("host:notaport"), std::runtime_error);
  EXPECT_THROW(parse_backend("host:70000"), std::runtime_error);
  EXPECT_THROW(parse_backend("host:-1"), std::runtime_error);
  EXPECT_THROW(parse_backend("unix:"), std::runtime_error);
  EXPECT_THROW(parse_backend_list(""), std::runtime_error);
  EXPECT_THROW(parse_backend_list("a:1,a:1"), std::runtime_error);
}

TEST(BackendPoolTest, UnreachableBackendNeverJoinsTheRing) {
  // Port 1 on loopback: nothing listens there, connects fail fast.
  ProbeConfig probe;
  probe.interval_ms = 50;
  probe.timeout_ms = 200;
  BackendPool pool({parse_backend("127.0.0.1:1")}, probe);
  pool.start();
  EXPECT_EQ(pool.ring_size(), 0u);
  EXPECT_TRUE(pool.route(123).empty());
  const auto statuses = pool.snapshot();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].state, BackendState::kDown);
  EXPECT_FALSE(statuses[0].in_ring);
  EXPECT_GE(statuses[0].probes_failed, 1u);
  pool.stop();
}

// ---- End-to-end 2-backend topologies --------------------------------------

constexpr int kCycles = 20;

/// Expensive shared state (mirrors ServeTest): one tiny trained model, a
/// query design, and its direct (serverless) w1 prediction.
class RouterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = new liberty::Library(liberty::make_default_library());

    core::PreprocessConfig pcfg;
    pcfg.cycles = 40;
    const core::DesignData train = core::prepare_design(
        designgen::paper_design_spec(1, 0.0025), *lib_, pcfg);

    core::PretrainConfig pre_cfg;
    pre_cfg.epochs = 1;
    pre_cfg.cycles_per_graph = 1;
    pre_cfg.dim = 16;
    core::PretrainResult pre = core::pretrain_encoder({&train}, pre_cfg);
    core::FinetuneConfig fcfg;
    fcfg.gbdt.n_trees = 20;
    fcfg.cycle_stride = 4;
    core::GroupModels models =
        core::finetune_models({&train}, pre.encoder, fcfg);
    model_ = new std::shared_ptr<const core::AtlasModel>(
        std::make_shared<const core::AtlasModel>(std::move(pre.encoder),
                                                 std::move(models)));

    const netlist::Netlist query = designgen::generate_design(
        designgen::paper_design_spec(2, 0.0025), *lib_);
    verilog_ = new std::string(netlist::write_verilog(query));
    expected_w1_ = new core::Prediction(direct_predict(*verilog_));
  }

  static void TearDownTestSuite() {
    delete expected_w1_;
    delete verilog_;
    delete model_;
    delete lib_;
    expected_w1_ = nullptr;
    verilog_ = nullptr;
    model_ = nullptr;
    lib_ = nullptr;
  }

  static core::Prediction direct_predict(const std::string& verilog) {
    netlist::Netlist gate = netlist::parse_verilog(verilog, *lib_);
    const auto graphs = graph::build_submodule_graphs(gate);
    sim::CycleSimulator simulator(gate);
    sim::StimulusGenerator stimulus(gate, sim::make_w1());
    const sim::ToggleTrace trace = simulator.run(stimulus, kCycles);
    return (*model_)->predict(gate, graphs, trace);
  }

  /// Distinct netlist *text* (distinct content hash, so distinct placement
  /// and cache identity) that parses to the identical design — comments are
  /// stripped — so every variant's prediction is bit-identical to
  /// expected_w1_. This is how the sharding tests get N designs without
  /// training N references.
  static std::string design_variant(int i) {
    return *verilog_ + "\n// shard-variant " + std::to_string(i) + "\n";
  }

  static std::shared_ptr<serve::ModelRegistry> make_registry() {
    auto registry = std::make_shared<serve::ModelRegistry>();
    registry->add("tiny", *model_);
    return registry;
  }

  static PredictRequest make_request(const std::string& verilog) {
    PredictRequest req;
    req.model = "tiny";
    req.netlist_verilog = verilog;
    req.workload = "w1";
    req.cycles = kCycles;
    req.want_submodules = true;
    return req;
  }

  static void expect_matches(const PredictResponse& resp,
                             const core::Prediction& expected) {
    ASSERT_EQ(resp.num_cycles, expected.num_cycles);
    ASSERT_EQ(resp.design.size(), expected.design.size());
    for (std::size_t c = 0; c < expected.design.size(); ++c) {
      // Bit-identical: routing through the tier must not perturb a single
      // bit relative to a direct atlas_serve (it relays raw frames).
      EXPECT_EQ(resp.design[c].comb, expected.design[c].comb) << "cycle " << c;
      EXPECT_EQ(resp.design[c].reg, expected.design[c].reg) << "cycle " << c;
      EXPECT_EQ(resp.design[c].clock, expected.design[c].clock)
          << "cycle " << c;
    }
  }

  /// Two in-process backends plus a router in front, all on ephemeral
  /// loopback ports, probing fast enough that membership tests stay quick.
  struct Fleet {
    std::unique_ptr<serve::Server> a;
    std::unique_ptr<serve::Server> b;
    std::unique_ptr<Router> router;
    std::string id_a;
    std::string id_b;

    Fleet() = default;
    Fleet(Fleet&&) = default;
    Fleet& operator=(Fleet&&) = default;

    ~Fleet() {
      if (router) router->stop();
      if (a) a->stop();
      if (b) b->stop();
    }
  };

  static std::unique_ptr<serve::Server> start_backend(bool allow_admin) {
    serve::ServerConfig cfg;
    cfg.host = "127.0.0.1";
    cfg.port = 0;
    cfg.allow_admin = allow_admin;
    auto server = std::make_unique<serve::Server>(cfg, make_registry());
    server->start();
    return server;
  }

  static Fleet start_fleet(bool allow_admin = false) {
    Fleet fleet;
    fleet.a = start_backend(allow_admin);
    fleet.b = start_backend(allow_admin);
    fleet.id_a = "127.0.0.1:" + std::to_string(fleet.a->port());
    fleet.id_b = "127.0.0.1:" + std::to_string(fleet.b->port());

    RouterConfig cfg;
    cfg.host = "127.0.0.1";
    cfg.port = 0;
    cfg.probe.interval_ms = 100;
    cfg.probe.timeout_ms = 1000;
    cfg.probe.fail_threshold = 2;
    cfg.allow_admin = allow_admin;
    fleet.router = std::make_unique<Router>(
        cfg, parse_backend_list(fleet.id_a + "," + fleet.id_b));
    fleet.router->start();
    return fleet;
  }

  static Client connect(const Fleet& fleet) {
    return Client::connect_tcp("127.0.0.1", fleet.router->port());
  }

  /// The shard the router must route `verilog` to: the same ring the
  /// BackendPool builds (same vnode default), keyed exactly as the router
  /// keys placements.
  static std::string expected_owner(const Fleet& fleet,
                                    const std::string& verilog) {
    HashRing ring(ProbeConfig{}.vnodes);
    ring.add(fleet.id_a);
    ring.add(fleet.id_b);
    return ring.lookup(util::hash_mix(util::fnv1a64(verilog),
                                      liberty::content_hash(*lib_)));
  }

  static bool wait_for(const std::function<bool()>& pred, int timeout_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return pred();
  }

  static liberty::Library* lib_;
  static std::shared_ptr<const core::AtlasModel>* model_;
  static std::string* verilog_;
  static core::Prediction* expected_w1_;
};

liberty::Library* RouterTest::lib_ = nullptr;
std::shared_ptr<const core::AtlasModel>* RouterTest::model_ = nullptr;
std::string* RouterTest::verilog_ = nullptr;
core::Prediction* RouterTest::expected_w1_ = nullptr;

TEST_F(RouterTest, ShardsDesignsAcrossBackendsBitIdentically) {
  Fleet fleet = start_fleet();
  Client client = connect(fleet);
  ASSERT_EQ(fleet.router->pool().ring_size(), 2u);

  constexpr int kDesigns = 8;
  std::map<std::string, std::uint64_t> expected_per_shard;
  for (int i = 0; i < kDesigns; ++i) {
    const std::string verilog = design_variant(i);
    expected_per_shard[expected_owner(fleet, verilog)]++;
    const PredictResponse cold = client.predict(make_request(verilog));
    EXPECT_FALSE(cold.design_cache_hit()) << "design " << i;
    expect_matches(cold, *expected_w1_);
  }
  // Second pass: every repeat hits the same shard's warm cache — the
  // sharded-warmth contract (round-robin or re-keyed routing would miss).
  for (int i = 0; i < kDesigns; ++i) {
    const PredictResponse warm =
        client.predict(make_request(design_variant(i)));
    EXPECT_TRUE(warm.design_cache_hit()) << "design " << i;
    EXPECT_TRUE(warm.embedding_cache_hit()) << "design " << i;
    expect_matches(warm, *expected_w1_);
  }

  // Per-shard occupancy matches the ring's placement exactly, and the
  // fleet holds each design exactly once (disjoint caches, no duplication).
  const HealthResponse ha = fleet.a->health_snapshot();
  const HealthResponse hb = fleet.b->health_snapshot();
  EXPECT_EQ(ha.cache_designs, expected_per_shard[fleet.id_a]);
  EXPECT_EQ(hb.cache_designs, expected_per_shard[fleet.id_b]);
  EXPECT_EQ(ha.cache_designs + hb.cache_designs,
            static_cast<std::uint64_t>(kDesigns));

  // The router's aggregated health sees the union of both caches.
  const HealthResponse agg = client.health();
  EXPECT_EQ(agg.cache_designs, static_cast<std::uint64_t>(kDesigns));
  EXPECT_EQ(agg.num_models, 1u);
  EXPECT_FALSE(agg.draining);
}

TEST_F(RouterTest, FailsOverWhenABackendDiesMidWorkloadAndRebalancesOnJoin) {
  Fleet fleet = start_fleet();
  Client client = connect(fleet);

  const std::string verilog = design_variant(100);
  const std::string owner = expected_owner(fleet, verilog);
  serve::Server& owner_server =
      owner == fleet.id_a ? *fleet.a : *fleet.b;
  serve::Server& survivor_server =
      owner == fleet.id_a ? *fleet.b : *fleet.a;
  const int owner_port = owner_server.port();

  // Warm the owner, then kill it mid-workload.
  expect_matches(client.predict(make_request(verilog)), *expected_w1_);
  EXPECT_EQ(owner_server.health_snapshot().cache_designs, 1u);
  owner_server.stop();

  // Same connection, same design: the router fails over to the ring
  // successor transparently — cold there, but bit-identical.
  const PredictResponse failed_over = client.predict(make_request(verilog));
  EXPECT_FALSE(failed_over.design_cache_hit());
  expect_matches(failed_over, *expected_w1_);
  EXPECT_EQ(fleet.router->pool().ring_size(), 1u);
  EXPECT_EQ(survivor_server.health_snapshot().cache_designs, 1u);

  // And the repeat is warm on the survivor (the key's new steady-state
  // home, by the minimal-movement property).
  EXPECT_TRUE(client.predict(make_request(verilog)).design_cache_hit());

  // The failover left a per-backend trail in the router's metrics.
  const std::string metrics = client.metrics_text();
  EXPECT_NE(metrics.find("atlas_router_failovers_total"), std::string::npos);
  EXPECT_NE(metrics.find("atlas_router_requests_total"), std::string::npos);
  EXPECT_NE(metrics.find("atlas_router_ring_backends"), std::string::npos);

  // A backend coming back on the same endpoint rejoins via the prober and
  // the ring rebalances to both shards.
  serve::ServerConfig cfg;
  cfg.host = "127.0.0.1";
  cfg.port = owner_port;
  serve::Server reborn(cfg, make_registry());
  reborn.start();
  EXPECT_TRUE(wait_for(
      [&] { return fleet.router->pool().ring_size() == 2; }, 5000))
      << "prober never re-added the restarted backend";
  reborn.stop();
}

TEST_F(RouterTest, StreamsArePinnedAndSurviveMidStreamBackendDeath) {
  // Record the query design's w1 trace as VCD text and compute the direct
  // streamed reference (same path serve_test pins).
  netlist::Netlist gate = netlist::parse_verilog(*verilog_, *lib_);
  sim::CycleSimulator simulator(gate);
  sim::StimulusGenerator stimulus(gate, sim::make_w1());
  const sim::ToggleTrace sim_trace = simulator.run(stimulus, kCycles);
  const std::string vcd =
      sim::write_vcd(gate, sim_trace, simulator.clock_net_mask());
  const sim::ExternalTrace ext = sim::ExternalTrace::from_vcd_text(vcd);
  const auto graphs = graph::build_submodule_graphs(gate);
  const core::Prediction direct =
      (*model_)->predict(gate, graphs, ext.resolve(gate));

  Fleet fleet = start_fleet();

  // Whole-stream relay through the router is bit-identical, and the upload
  // landed on the ring owner only.
  {
    Client client = connect(fleet);
    serve::StreamBeginRequest begin;
    begin.model = "tiny";
    begin.netlist_verilog = *verilog_;
    begin.cycles = kCycles;
    const PredictResponse resp = client.predict_stream(begin, vcd, 512);
    expect_matches(resp, direct);
    const std::string owner = expected_owner(fleet, *verilog_);
    const serve::Server& owner_server =
        owner == fleet.id_a ? *fleet.a : *fleet.b;
    const serve::Server& other_server =
        owner == fleet.id_a ? *fleet.b : *fleet.a;
    EXPECT_EQ(owner_server.health_snapshot().cache_designs, 1u);
    EXPECT_EQ(other_server.health_snapshot().cache_designs, 0u);

    // Design-by-hash through the router: first call falls back (relayed
    // kUnknownDesign is part of the client protocol)... except the full
    // upload above already warmed the owner, so the hash path hits.
    bool used_hash = false;
    const PredictResponse by_hash =
        client.predict_stream_cached(begin, vcd, 512, &used_hash);
    EXPECT_TRUE(used_hash);
    expect_matches(by_hash, direct);
  }

  // Mid-stream kill: drive the stream frame-by-frame on a raw socket, stop
  // the pinned backend after the first chunk, and expect the router to
  // replay the buffered prefix onto the survivor and finish the stream.
  {
    const std::string verilog = design_variant(200);
    const std::string owner = expected_owner(fleet, verilog);
    serve::Server& owner_server = owner == fleet.id_a ? *fleet.a : *fleet.b;

    util::Socket raw =
        util::connect_tcp("127.0.0.1", fleet.router->port());
    serve::StreamBeginRequest begin;
    begin.model = "tiny";
    begin.netlist_verilog = verilog;
    begin.cycles = kCycles;
    begin.trace_bytes = vcd.size();
    serve::write_frame(raw, serve::MsgType::kStreamBegin, begin.encode());
    serve::Frame resp;
    ASSERT_TRUE(serve::read_frame(raw, resp));
    ASSERT_EQ(resp.type, serve::MsgType::kStreamAck);

    const std::size_t kChunk = 512;
    std::uint64_t seq = 0;
    std::size_t off = 0;
    // First chunk lands on the owner...
    serve::StreamChunk chunk;
    chunk.seq = seq++;
    chunk.data = vcd.substr(off, kChunk);
    off += chunk.data.size();
    serve::write_frame(raw, serve::MsgType::kStreamChunk, chunk.encode());
    ASSERT_TRUE(serve::read_frame(raw, resp));
    ASSERT_EQ(resp.type, serve::MsgType::kStreamAck);

    // ...which dies mid-upload.
    owner_server.stop();

    // The remaining chunks must keep streaming: the router replays the
    // acked prefix onto the ring successor and continues there.
    while (off < vcd.size()) {
      chunk.seq = seq++;
      chunk.data = vcd.substr(off, kChunk);
      off += chunk.data.size();
      serve::write_frame(raw, serve::MsgType::kStreamChunk, chunk.encode());
      ASSERT_TRUE(serve::read_frame(raw, resp));
      ASSERT_EQ(resp.type, serve::MsgType::kStreamAck)
          << serve::ErrorResponse::decode(resp.payload).message;
    }
    serve::StreamEndRequest end;
    end.total_chunks = seq;
    end.total_bytes = vcd.size();
    serve::write_frame(raw, serve::MsgType::kStreamEnd, end.encode());
    ASSERT_TRUE(serve::read_frame(raw, resp));
    ASSERT_EQ(resp.type, serve::MsgType::kPredictOk)
        << serve::ErrorResponse::decode(resp.payload).message;
    expect_matches(serve::PredictResponse::decode(resp.payload), direct);
    EXPECT_EQ(fleet.router->pool().ring_size(), 1u);
  }
}

TEST_F(RouterTest, AdminFanOutReachesEveryShard) {
  Fleet fleet = start_fleet(/*allow_admin=*/true);
  Client client = connect(fleet);

  const std::string model_path =
      ::testing::TempDir() + "atlas_router_fanout_model.bin";
  (*model_)->save(model_path);

  // Load lands on *both* shards (models are replicated, designs sharded).
  client.load_model("second", model_path);
  EXPECT_EQ(fleet.a->registry().size(), 2u);
  EXPECT_EQ(fleet.b->registry().size(), 2u);
  ASSERT_EQ(client.models().size(), 2u);

  // Unload retires the name fleet-wide.
  client.unload_model("second");
  EXPECT_EQ(fleet.a->registry().size(), 1u);
  EXPECT_EQ(fleet.b->registry().size(), 1u);

  // With one shard dead the fan-out reports partial application as an
  // error naming the unreachable shard — never a silent half-applied load.
  fleet.b->stop();
  try {
    client.load_model("third", model_path);
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInternal);
    EXPECT_NE(std::string(e.what()).find(fleet.id_b), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("unreachable"), std::string::npos);
  }
  // The live shard did apply it — the report said so, and the registry
  // agrees.
  EXPECT_EQ(fleet.a->registry().size(), 2u);
}

TEST_F(RouterTest, AdminGateAndControlPlane) {
  Fleet fleet = start_fleet(/*allow_admin=*/false);
  Client client = connect(fleet);

  client.ping();
  try {
    client.unload_model("tiny");
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kAdminDisabled);
  }
  // The gate rejected at the tier edge; backends untouched.
  EXPECT_EQ(fleet.a->registry().size(), 1u);

  // models routes to a live shard like any request.
  const auto models = client.models();
  ASSERT_EQ(models.size(), 1u);
  EXPECT_EQ(models[0].name, "tiny");
  EXPECT_EQ(models[0].library_hash, liberty::content_hash(*lib_));

  // stats is the router's own per-backend table...
  const std::string stats = client.stats_text();
  EXPECT_NE(stats.find("atlas_router:"), std::string::npos);
  EXPECT_NE(stats.find(fleet.id_a), std::string::npos);
  EXPECT_NE(stats.find(fleet.id_b), std::string::npos);
  EXPECT_NE(stats.find("2/2 backends up"), std::string::npos);

  // ...and metrics expose the probe/ring series.
  const std::string metrics = client.metrics_text();
  EXPECT_NE(metrics.find("atlas_router_probe_latency_us"), std::string::npos);
  EXPECT_NE(metrics.find("atlas_router_ring_backends 2"), std::string::npos);
}

// ---- PR 8: fleet observability --------------------------------------------

TEST(FleetObs, MergePrometheusInjectsShardLabelsAndRegroupsFamilies) {
  const std::string a =
      "# HELP req_total requests\n"
      "# TYPE req_total counter\n"
      "req_total{endpoint=\"predict\"} 3\n"
      "req_total 1\n"
      "# TYPE lat_us histogram\n"
      "lat_us_bucket{le=\"64\"} 2\n"
      "lat_us_sum 100\n"
      "lat_us_count 2\n";
  const std::string b =
      "# TYPE lat_us histogram\n"
      "lat_us_bucket{le=\"64\"} 5\n"
      "lat_us_sum 400\n"
      "lat_us_count 5\n"
      "# TYPE up gauge\n"
      "up 1\n";
  const std::string merged = merge_prometheus({{"s1", a}, {"s2", b}});

  // Labeled and unlabeled samples both pick up the shard label.
  EXPECT_NE(merged.find("req_total{endpoint=\"predict\",shard=\"s1\"} 3"),
            std::string::npos)
      << merged;
  EXPECT_NE(merged.find("req_total{shard=\"s1\"} 1"), std::string::npos);
  EXPECT_NE(merged.find("lat_us_bucket{le=\"64\",shard=\"s1\"} 2"),
            std::string::npos);
  EXPECT_NE(merged.find("lat_us_bucket{le=\"64\",shard=\"s2\"} 5"),
            std::string::npos);
  EXPECT_NE(merged.find("up{shard=\"s2\"} 1"), std::string::npos);

  // One TYPE header per family even when two shards export it, histogram
  // sub-series (_bucket/_sum/_count) grouped under the base family, and
  // families emitted in sorted order. HELP lines are dropped.
  auto count = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = merged.find(needle); pos != std::string::npos;
         pos = merged.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("# TYPE lat_us histogram"), 1u);
  EXPECT_EQ(count("# TYPE req_total counter"), 1u);
  EXPECT_EQ(count("# HELP"), 0u);
  const std::size_t lat = merged.find("# TYPE lat_us");
  const std::size_t req = merged.find("# TYPE req_total");
  const std::size_t up = merged.find("# TYPE up");
  EXPECT_LT(lat, req);
  EXPECT_LT(req, up);
  // Both shards' lat_us samples sit between the lat_us header and the next
  // family header (contiguous family block).
  EXPECT_LT(merged.find("lat_us_count{shard=\"s2\"} 5"), req);
}

TEST(FleetObs, MergePrometheusAsymmetricFleetEmitsOneTypePerSampleName) {
  // Regression: shard s1 exports the lat_us histogram, shard s2 does not
  // have it but exports a standalone counter whose name collides with the
  // histogram's _count sub-series. Grouping each shard independently used
  // to emit two # TYPE headers covering the `lat_us_count` sample name —
  // an invalid exposition. The standalone family must fold into the
  // histogram block instead.
  const std::string s1 =
      "# TYPE lat_us histogram\n"
      "lat_us_bucket{le=\"64\"} 2\n"
      "lat_us_sum 100\n"
      "lat_us_count 2\n";
  const std::string s2 =
      "# TYPE lat_us_count counter\n"
      "lat_us_count 7\n"
      "# TYPE up gauge\n"
      "up 1\n";
  auto count = [](const std::string& hay, const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = hay.find(needle); pos != std::string::npos;
         pos = hay.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };

  // Both shard orders: the histogram may be parsed before or after the
  // colliding standalone family, the fold must be order-independent.
  for (const auto& shards :
       {std::vector<std::pair<std::string, std::string>>{{"s1", s1},
                                                         {"s2", s2}},
        std::vector<std::pair<std::string, std::string>>{{"s2", s2},
                                                         {"s1", s1}}}) {
    const std::string merged = merge_prometheus(shards);
    EXPECT_EQ(count(merged, "# TYPE lat_us histogram"), 1u) << merged;
    EXPECT_EQ(count(merged, "# TYPE lat_us_count"), 0u) << merged;
    // Neither shard's samples are lost: both lat_us_count series survive
    // under the one histogram header, inside the family's block.
    EXPECT_NE(merged.find("lat_us_count{shard=\"s1\"} 2"), std::string::npos)
        << merged;
    EXPECT_NE(merged.find("lat_us_count{shard=\"s2\"} 7"), std::string::npos)
        << merged;
    const std::size_t hist = merged.find("# TYPE lat_us histogram");
    const std::size_t up = merged.find("# TYPE up gauge");
    ASSERT_NE(up, std::string::npos);
    EXPECT_LT(hist, merged.find("lat_us_count{shard=\"s2\"} 7"));
    EXPECT_LT(merged.find("lat_us_count{shard=\"s2\"} 7"), up);
  }
}

/// Restores the global tracer to its default-off state no matter how the
/// test exits (the ring is process-global).
struct TraceGuard {
  ~TraceGuard() {
    obs::Trace::disable();
    obs::Trace::clear();
  }
};

const obs::TraceEventView* find_span(
    const std::vector<obs::TraceEventView>& events, const std::string& category,
    const std::string& name) {
  for (const auto& e : events) {
    if (e.category == category && e.name == name) return &e;
  }
  return nullptr;
}

TEST_F(RouterTest, PredictThroughRouterLinksAllThreeTiersInOneTrace) {
  Fleet fleet = start_fleet();
  Client client = connect(fleet);
  ASSERT_EQ(fleet.router->pool().ring_size(), 2u);

  const std::string verilog = design_variant(300);
  const std::string owner = expected_owner(fleet, verilog);

  TraceGuard guard;
  obs::Trace::enable();
  obs::Trace::clear();
  expect_matches(client.predict(make_request(verilog)), *expected_w1_);

  // Client, router and both backends run in one process here, so every
  // tier's spans land in the same ring and the full cross-tier parent
  // chain — the acceptance contract for merged fleet traces — is directly
  // assertable: client predict -> router predict -> forward:<owner> ->
  // serve handle_predict, all under one 128-bit trace id.
  const auto events = obs::Trace::snapshot();
  const obs::TraceEventView* cli = find_span(events, "client", "predict");
  const obs::TraceEventView* rtr = find_span(events, "router", "predict");
  const obs::TraceEventView* fwd =
      find_span(events, "router", "forward:" + owner);
  const obs::TraceEventView* srv = find_span(events, "serve", "handle_predict");
  ASSERT_NE(cli, nullptr);
  ASSERT_NE(rtr, nullptr);
  ASSERT_NE(fwd, nullptr);
  ASSERT_NE(srv, nullptr);

  ASSERT_TRUE((cli->ids.trace_hi | cli->ids.trace_lo) != 0);
  for (const obs::TraceEventView* e : {rtr, fwd, srv}) {
    EXPECT_EQ(e->ids.trace_hi, cli->ids.trace_hi);
    EXPECT_EQ(e->ids.trace_lo, cli->ids.trace_lo);
  }
  EXPECT_EQ(cli->ids.parent_span_id, 0u);  // the client originated the trace
  EXPECT_EQ(rtr->ids.parent_span_id, cli->ids.span_id);
  EXPECT_EQ(fwd->ids.parent_span_id, rtr->ids.span_id);
  EXPECT_EQ(srv->ids.parent_span_id, fwd->ids.span_id);
}

TEST_F(RouterTest, FailoverAttemptsStayInTheRequestsTrace) {
  // Hand-built fleet with an hour-long probe interval: after the initial
  // sweep admits both backends, the prober never runs again, so killing
  // the owner cannot race the ring eviction — the router is guaranteed to
  // route to the dead owner first and fail over *in-request*, which is
  // the path whose spans this test pins.
  Fleet fleet;
  fleet.a = start_backend(false);
  fleet.b = start_backend(false);
  fleet.id_a = "127.0.0.1:" + std::to_string(fleet.a->port());
  fleet.id_b = "127.0.0.1:" + std::to_string(fleet.b->port());
  RouterConfig cfg;
  cfg.host = "127.0.0.1";
  cfg.port = 0;
  cfg.probe.interval_ms = 3'600'000;
  cfg.probe.timeout_ms = 1000;
  fleet.router = std::make_unique<Router>(
      cfg, parse_backend_list(fleet.id_a + "," + fleet.id_b));
  fleet.router->start();
  Client client = connect(fleet);
  ASSERT_EQ(fleet.router->pool().ring_size(), 2u);

  const std::string verilog = design_variant(301);
  const std::string owner = expected_owner(fleet, verilog);
  serve::Server& owner_server = owner == fleet.id_a ? *fleet.a : *fleet.b;
  const std::string survivor = owner == fleet.id_a ? fleet.id_b : fleet.id_a;

  TraceGuard guard;
  obs::Trace::enable();
  obs::Trace::clear();

  owner_server.stop();
  expect_matches(client.predict(make_request(verilog)), *expected_w1_);

  const auto events = obs::Trace::snapshot();
  const obs::TraceEventView* rtr = find_span(events, "router", "predict");
  const obs::TraceEventView* dead =
      find_span(events, "router", "forward:" + owner);
  const obs::TraceEventView* live =
      find_span(events, "router", "forward:" + survivor);
  const obs::TraceEventView* srv = find_span(events, "serve", "handle_predict");
  ASSERT_NE(rtr, nullptr);
  ASSERT_NE(dead, nullptr) << "failed attempt left no span";
  ASSERT_NE(live, nullptr);
  ASSERT_NE(srv, nullptr);

  // Both attempts are children of the same router span in the same trace;
  // the backend's span hangs off the attempt that reached it.
  EXPECT_EQ(dead->ids.trace_lo, rtr->ids.trace_lo);
  EXPECT_EQ(live->ids.trace_lo, rtr->ids.trace_lo);
  EXPECT_EQ(dead->ids.parent_span_id, rtr->ids.span_id);
  EXPECT_EQ(live->ids.parent_span_id, rtr->ids.span_id);
  EXPECT_EQ(srv->ids.parent_span_id, live->ids.span_id);
}

TEST_F(RouterTest, RoutedPredictionsBitIdenticalTracingOnVsOff) {
  Fleet fleet = start_fleet();
  Client client = connect(fleet);

  const std::string verilog = design_variant(302);
  const PredictResponse off = client.predict(make_request(verilog));
  expect_matches(off, *expected_w1_);

  TraceGuard guard;
  obs::Trace::enable();
  obs::Trace::clear();
  // The traced path re-encodes the forwarded request (to stamp the
  // per-attempt context); the payload the backend computes on must be
  // unchanged, so the answer stays bit-identical to the untraced one.
  const PredictResponse on = client.predict(make_request(verilog));
  expect_matches(on, *expected_w1_);
  ASSERT_EQ(on.design.size(), off.design.size());
  for (std::size_t c = 0; c < off.design.size(); ++c) {
    EXPECT_EQ(on.design[c].comb, off.design[c].comb);
    EXPECT_EQ(on.design[c].reg, off.design[c].reg);
    EXPECT_EQ(on.design[c].clock, off.design[c].clock);
  }
}

TEST_F(RouterTest, FleetMetricsSelectorAggregatesAllShardsWithLabels) {
  Fleet fleet = start_fleet();
  Client client = connect(fleet);
  expect_matches(client.predict(make_request(design_variant(303))),
                 *expected_w1_);

  // Plain metrics: the router's own registry, including the per-backend
  // queue-depth gauge fed by health probes.
  const std::string own = client.metrics_text();
  EXPECT_NE(own.find("atlas_router_backend_up{backend=\"" + fleet.id_a +
                     "\"} 1"),
            std::string::npos);
  EXPECT_NE(own.find("# TYPE atlas_router_backend_queue_depth gauge"),
            std::string::npos);

  // --fleet: one scrape covering the router plus every backend, with each
  // series labeled by its source shard.
  const std::string fleet_text = client.metrics_text(/*fleet=*/true);
  EXPECT_NE(fleet_text.find("shard=\"router\""), std::string::npos);
  EXPECT_NE(fleet_text.find("shard=\"" + fleet.id_a + "\""),
            std::string::npos);
  EXPECT_NE(fleet_text.find("shard=\"" + fleet.id_b + "\""),
            std::string::npos);
  EXPECT_NE(fleet_text.find("atlas_router_ring_backends{shard=\"router\"} 2"),
            std::string::npos);

  // Merged output regroups families: one TYPE header per family even
  // though three sources exported overlapping registries.
  auto count = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = fleet_text.find(needle); pos != std::string::npos;
         pos = fleet_text.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("# TYPE atlas_serve_requests_total counter"), 1u);
  EXPECT_EQ(count("# TYPE atlas_serve_request_latency_us histogram"), 1u);
}

TEST_F(RouterTest, TraceDumpFansOutAndIsAdminGated) {
  {
    Fleet fleet = start_fleet(/*allow_admin=*/false);
    Client client = connect(fleet);
    try {
      client.trace_dump_text();
      FAIL() << "router trace_dump should require --allow-admin";
    } catch (const ServeError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kAdminDisabled);
    }
  }

  Fleet fleet = start_fleet(/*allow_admin=*/true);
  Client client = connect(fleet);

  TraceGuard guard;
  obs::Trace::enable();
  obs::Trace::clear();
  expect_matches(client.predict(make_request(design_variant(304))),
                 *expected_w1_);

  // The router drains its own ring and every backend's, answering one
  // merged Chrome trace document (in-process the ring is shared, so the
  // router's own drain already carries all tiers' spans — the merge and
  // fan-out paths still execute for real over the wire).
  const std::string merged = client.trace_dump_text();
  EXPECT_NE(merged.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(merged.find("\"handle_predict\""), std::string::npos);
  EXPECT_NE(merged.find("\"forward:"), std::string::npos);
  EXPECT_NE(merged.find("\"displayTimeUnit\""), std::string::npos);

  // Drained: a second fleet dump no longer carries the request's spans.
  EXPECT_EQ(client.trace_dump_text().find("\"handle_predict\""),
            std::string::npos);
}

// ---- PR 10: load-aware routing (hot-key replication + shedding) -----------

TEST(HotKeys, PromotionNeedsMinCountAndARankInsideTopK) {
  HotKeyTracker t(/*capacity=*/8, /*decay_interval=*/1'000'000);
  t.record(1);
  EXPECT_FALSE(t.is_hot(1, /*top_k=*/4, /*min_count=*/2)) << "below min_count";
  t.record(1);
  EXPECT_TRUE(t.is_hot(1, 4, 2));

  // Four keys pull strictly ahead of key 9 (count 5 vs 3): with top_k = 4
  // it is crowded out of the hot set, with top_k = 5 it is back in.
  for (std::uint64_t k = 2; k <= 5; ++k) {
    for (int i = 0; i < 5; ++i) t.record(k);
  }
  for (int i = 0; i < 3; ++i) t.record(9);
  EXPECT_EQ(t.count(9), 3u);
  EXPECT_FALSE(t.is_hot(9, 4, 2));
  EXPECT_TRUE(t.is_hot(9, 5, 2));
  // Equal counts rank by key ascending, so key 2 leads the count-5 tie and
  // nothing is strictly ahead of it.
  EXPECT_TRUE(t.is_hot(2, 1, 2));
  EXPECT_FALSE(t.is_hot(5, 2, 2));  // keys 2,3 ahead within the tie
  EXPECT_FALSE(t.is_hot(1, 0, 1)) << "top_k 0 means nothing is hot";
}

TEST(HotKeys, DecayHalvesCountsSoYesterdaysHotKeyAgesOut) {
  HotKeyTracker t(/*capacity=*/8, /*decay_interval=*/16);
  for (int i = 0; i < 10; ++i) t.record(1);
  ASSERT_EQ(t.count(1), 10u);
  // Records 11..15 count key 2 normally; the 16th triggers the halving
  // first (1: 10 -> 5, 2: 5 -> 2), then counts.
  for (int i = 0; i < 6; ++i) t.record(2);
  EXPECT_EQ(t.count(1), 5u);
  EXPECT_EQ(t.count(2), 3u);
  // Keys decayed to zero leave the tracker entirely (capacity reclaimed).
  HotKeyTracker d(8, 4);
  d.record(7);
  for (int i = 0; i < 4; ++i) d.record(8);
  EXPECT_EQ(d.count(7), 0u);
  EXPECT_EQ(d.tracked(), 1u);
}

TEST(HotKeys, EvictionIsDeterministicAndOverestimatesNewcomers) {
  HotKeyTracker t(/*capacity=*/2, /*decay_interval=*/1'000'000);
  for (int i = 0; i < 3; ++i) t.record(1);
  t.record(2);
  ASSERT_EQ(t.tracked(), 2u);
  // Full tracker: the newcomer evicts the minimum and inherits min + 1 —
  // the space-saving overestimate can promote early, never suppress.
  t.record(7);
  EXPECT_EQ(t.count(2), 0u);
  EXPECT_EQ(t.count(7), 2u);
  EXPECT_EQ(t.count(1), 3u);

  // Count ties pick the smallest key as victim — identical histories give
  // identical tracker states on any router replica.
  HotKeyTracker u(2, 1'000'000);
  u.record(9);
  u.record(5);
  u.record(7);
  EXPECT_EQ(u.count(5), 0u) << "min-key tie-break must evict key 5";
  EXPECT_EQ(u.count(9), 1u);
  EXPECT_EQ(u.count(7), 2u);
}

TEST(RoutePolicy, OrderCandidatesIsDeterministicAndWarmthStable) {
  auto cand = [](const char* id, std::size_t pos, std::uint64_t load,
                 bool fresh, bool overloaded) {
    RouteCandidate c;
    c.id = id;
    c.chain_pos = pos;
    c.load = load;
    c.load_fresh = fresh;
    c.overloaded = overloaded;
    return c;
  };

  // Fresh lower depth beats fresh higher depth; any fresh depth beats a
  // stale one (whatever number the stale one froze at); overloaded sorts
  // last regardless of depth.
  auto ordered = order_candidates({
      cand("overloaded-idle", 0, 0, true, true),
      cand("stale-zero", 1, 0, false, false),
      cand("fresh-busy", 2, 5, true, false),
      cand("fresh-idle", 3, 1, true, false),
  });
  ASSERT_EQ(ordered.size(), 4u);
  EXPECT_EQ(ordered[0].id, "fresh-idle");
  EXPECT_EQ(ordered[1].id, "fresh-busy");
  EXPECT_EQ(ordered[2].id, "stale-zero");
  EXPECT_EQ(ordered[3].id, "overloaded-idle");

  // The warmth-stability contract: equal-load replicas always resolve to
  // the earliest chain position (the owner), so an idle fleet routes
  // exactly like single-owner consistent hashing — no oscillation that
  // would cold-start both replicas. Pinned across input orderings.
  for (int perm = 0; perm < 2; ++perm) {
    std::vector<RouteCandidate> tie = {cand("successor", 1, 0, true, false),
                                       cand("owner", 0, 0, true, false)};
    if (perm == 1) std::swap(tie[0], tie[1]);
    const auto out = order_candidates(std::move(tie));
    EXPECT_EQ(out[0].id, "owner") << "perm " << perm;
    EXPECT_EQ(out[1].id, "successor") << "perm " << perm;
  }
}

TEST(HashRing, ReplicasAreAlwaysAPrefixOfThePreferenceChain) {
  const std::vector<std::string> ids = make_backend_ids(5);
  HashRing ring(64);
  for (const std::string& id : ids) ring.add(id);
  for (std::size_t k = 0; k < 300; ++k) {
    const std::uint64_t key = util::hash_mix(0xbf58476d1ce4e5b9ull, k);
    const std::vector<std::string> chain = ring.preference(key, ids.size());
    for (std::size_t r = 0; r <= ids.size() + 1; ++r) {
      const std::vector<std::string> reps = ring.replicas(key, r);
      ASSERT_EQ(reps.size(), std::min(r, chain.size()));
      for (std::size_t i = 0; i < reps.size(); ++i) {
        // The containment invariant route_load_aware leans on: promotion
        // to hot only widens placement to shards already in the failover
        // order, so failover from any replica lands on another replica or
        // the successor that would inherit the key's arc.
        EXPECT_EQ(reps[i], chain[i]) << "key " << k << " r " << r;
      }
    }
  }
}

/// Minimal ATSP speaker answering health probes with a fixed queue depth
/// (and an empty model list). Real servers drain their dispatcher queue
/// too fast for a test to pin a nonzero depth; this keeps the number the
/// probe sees under test control.
class FakeBackend {
 public:
  explicit FakeBackend(std::uint64_t queue_depth) : depth_(queue_depth) {
    listener_ = util::Listener::tcp("127.0.0.1", port_);
    thread_ = std::thread([this] { serve_loop(); });
  }
  ~FakeBackend() { stop(); }

  void stop() {
    if (stopped_.exchange(true)) return;
    if (thread_.joinable()) thread_.join();
    listener_.close();
  }

  std::string id() const { return "127.0.0.1:" + std::to_string(port_); }

 private:
  void serve_loop() {
    while (!stopped_) {
      std::optional<util::Socket> sock = listener_.accept(50);
      if (!sock) continue;
      try {
        serve::Frame frame;
        while (serve::read_frame(*sock, frame)) {
          if (frame.type == serve::MsgType::kHealth) {
            serve::HealthResponse health;
            health.registry_generation = 1;
            health.num_models = 1;
            health.queue_depth = depth_;
            serve::write_frame(*sock, serve::MsgType::kHealthReport,
                               health.encode());
          } else if (frame.type == serve::MsgType::kListModels) {
            serve::write_frame(*sock, serve::MsgType::kModelList,
                               serve::ModelListResponse{}.encode());
          } else {
            break;
          }
        }
      } catch (const std::exception&) {
        // Peer went away mid-frame; keep accepting.
      }
    }
  }

  std::uint64_t depth_;
  int port_ = 0;
  util::Listener listener_;
  std::atomic<bool> stopped_{false};
  std::thread thread_;
};

TEST(BackendPoolTest, QueueDepthGaugeZeroesOnTheFirstFailedProbe) {
  FakeBackend backend(/*queue_depth=*/7);
  ProbeConfig probe;
  probe.interval_ms = 3'600'000;  // sweeps driven by hand, never scheduled
  probe.timeout_ms = 500;
  probe.fail_threshold = 2;
  BackendPool pool({parse_backend(backend.id())}, probe);
  obs::Gauge& gauge = obs::Registry::global().gauge(
      "atlas_router_backend_queue_depth", "backend=\"" + backend.id() + "\"");

  pool.probe_all_now();
  std::vector<BackendStatus> statuses = pool.snapshot();
  ASSERT_EQ(statuses.size(), 1u);
  ASSERT_EQ(statuses[0].state, BackendState::kUp);
  EXPECT_TRUE(statuses[0].load_fresh);
  EXPECT_EQ(statuses[0].load, 7u);
  EXPECT_EQ(gauge.value(), 7);

  // ONE failed probe: below fail_threshold the backend stays kUp and in
  // the ring, but the depth is now a number about a backend that may be
  // gone. Regression (the staleness bug this PR fixes): the gauge kept
  // publishing 7 — and the snapshot kept claiming the depth was current —
  // until the second failure evicted the backend.
  backend.stop();
  pool.probe_all_now();
  statuses = pool.snapshot();
  EXPECT_EQ(statuses[0].consecutive_failures, 1);
  EXPECT_EQ(statuses[0].state, BackendState::kUp);
  EXPECT_TRUE(statuses[0].in_ring);
  EXPECT_FALSE(statuses[0].load_fresh);
  EXPECT_EQ(gauge.value(), 0);
}

TEST(BackendPoolTest, SynchronousSweepIsBoundedByOneTimeoutNotPerBackend) {
  // Black holes: bound and listening but never accepting. A probe's
  // connect lands in the kernel backlog and succeeds, then the health
  // round trip stalls until the IO timeout — the worst case a
  // dead-but-routable shard can offer, and the slowest probe there is.
  constexpr int kBackends = 4;
  constexpr int kTimeoutMs = 600;
  std::vector<util::Listener> holes;
  std::string csv;
  for (int i = 0; i < kBackends; ++i) {
    int port = 0;
    holes.push_back(util::Listener::tcp("127.0.0.1", port));
    if (!csv.empty()) csv += ",";
    csv += "127.0.0.1:" + std::to_string(port);
  }
  ProbeConfig probe;
  probe.interval_ms = 3'600'000;
  probe.timeout_ms = kTimeoutMs;
  BackendPool pool(parse_backend_list(csv), probe);

  const auto t0 = std::chrono::steady_clock::now();
  pool.probe_all_now();  // what a client `health` request runs synchronously
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  // Regression (the blocking bug this PR fixes): the sequential sweep cost
  // timeout x backends — 2.4s here — per health request. The concurrent
  // sweep is bounded near ONE timeout; 2x leaves slack for thread spin-up
  // on a loaded CI box while staying far under the sequential cost.
  EXPECT_LT(elapsed_ms, 2 * kTimeoutMs) << "sweep took " << elapsed_ms << "ms";
  for (const BackendStatus& s : pool.snapshot()) {
    EXPECT_GE(s.probes_failed, 1u) << s.address.id;
    EXPECT_FALSE(s.load_fresh);
  }
}

std::uint64_t routed_requests(const std::string& backend) {
  return obs::Registry::global()
      .counter("atlas_router_requests_total", "backend=\"" + backend + "\"")
      .value();
}

TEST_F(RouterTest, HotDesignReplicationBalancesSkewBitIdentically) {
  // Three shards; >=70% of the volley hits ONE design. With replicas=2 the
  // hot key's chain prefix becomes eligible and the queue-depth policy
  // spreads it — while every response stays bit-identical to direct
  // serving (the piggybacked load tail must never leak to the client).
  serve::ServerConfig bcfg;
  bcfg.host = "127.0.0.1";
  bcfg.port = 0;
  bcfg.dispatch_delay_for_test_ms = 20;  // keep in-flight depth observable
  std::vector<std::unique_ptr<serve::Server>> shards;
  std::vector<std::string> ids;
  std::string csv;
  for (int i = 0; i < 3; ++i) {
    shards.push_back(std::make_unique<serve::Server>(bcfg, make_registry()));
    shards.back()->start();
    ids.push_back("127.0.0.1:" + std::to_string(shards.back()->port()));
    csv += (i ? "," : "") + ids.back();
  }
  RouterConfig rcfg;
  rcfg.host = "127.0.0.1";
  rcfg.port = 0;
  rcfg.probe.interval_ms = 100;
  rcfg.probe.timeout_ms = 1000;
  rcfg.routing.replicas = 2;
  rcfg.routing.hot_top_k = 4;
  rcfg.routing.hot_min_requests = 4;
  Router router(rcfg, parse_backend_list(csv));
  router.start();
  ASSERT_EQ(router.pool().ring_size(), 3u);

  const std::string hot = design_variant(400);
  const std::uint64_t key =
      util::hash_mix(util::fnv1a64(hot), liberty::content_hash(*lib_));
  HashRing ring(ProbeConfig{}.vnodes);
  for (const std::string& id : ids) ring.add(id);
  const std::vector<std::string> chain = ring.preference(key, ids.size());
  ASSERT_EQ(chain.size(), 3u);

  std::map<std::string, std::uint64_t> before;
  for (const std::string& id : ids) before[id] = routed_requests(id);

  // Warm-up: sequential hot requests cross hot_min_requests and promote
  // the key...
  Client warm = Client::connect_tcp("127.0.0.1", router.port());
  constexpr int kWarmup = 6;
  for (int i = 0; i < kWarmup; ++i) {
    expect_matches(warm.predict(make_request(hot)), *expected_w1_);
  }
  EXPECT_TRUE(router.pool().is_hot_key(key));
  auto server_for = [&](const std::string& id) -> serve::Server& {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] == id) return *shards[i];
    }
    throw std::logic_error("unknown shard " + id);
  };
  // ...while an idle fleet's depth ties keep resolving to the owner
  // (warmth-stable tie-breaking): replication eligibility alone moved no
  // traffic, so the first replica is still cold.
  EXPECT_EQ(server_for(chain[0]).health_snapshot().cache_designs, 1u);
  EXPECT_EQ(server_for(chain[1]).health_snapshot().cache_designs, 0u);

  // Skewed volley: 4 concurrent clients, 70% on the hot design.
  constexpr int kClients = 4;
  constexpr int kPerClient = 16;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        Client rc = Client::connect_tcp("127.0.0.1", router.port());
        for (int r = 0; r < kPerClient; ++r) {
          const bool hot_request = (r % 16) < 11;  // ~70% on one design
          const std::string verilog =
              hot_request ? hot : design_variant(2000 + c * 100 + r);
          expect_matches(rc.predict(make_request(verilog)), *expected_w1_);
        }
      } catch (const std::exception& e) {
        ADD_FAILURE() << "volley client " << c << ": " << e.what();
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);

  std::map<std::string, std::uint64_t> counts;
  std::uint64_t total = 0;
  std::uint64_t max_count = 0;
  for (const std::string& id : ids) {
    counts[id] = routed_requests(id) - before[id];
    total += counts[id];
    max_count = std::max(max_count, counts[id]);
  }
  // Every request routed (the counter ticks once per forward attempt, so a
  // rare transient failover may add a unit — never subtract one).
  const std::uint64_t sent =
      static_cast<std::uint64_t>(kWarmup + kClients * kPerClient);
  EXPECT_GE(total, sent);
  EXPECT_LE(total, sent + 4);
#if !ATLAS_TSAN_ACTIVE
  // The acceptance bound: with the hot design spread over its replicas no
  // shard carries more than 2x the mean request share. Single-owner
  // routing parks ~75% of this volley on the owner and fails it. Skipped
  // under TSan: its ~10x slowdown serializes the clients, so requests
  // rarely overlap, every load tie re-prefers the owner, and the skew
  // never spreads — a timing artifact, not a policy regression. The
  // deterministic assertions (bit-identity, totals, failover) still run.
  EXPECT_LE(max_count * ids.size(), 2 * total)
      << chain[0] << "=" << counts[chain[0]] << " " << chain[1] << "="
      << counts[chain[1]] << " " << chain[2] << "=" << counts[chain[2]];
  // Both replicas took a meaningful share, and both hold the hot design's
  // artifacts now (cache duplication bounded to the replicated key).
  EXPECT_GE(counts[chain[1]], total / 10);
  EXPECT_GE(server_for(chain[1]).health_snapshot().cache_designs, 1u);
#endif

  // The stats surface reports the new policy state.
  const std::string stats = router.stats_text();
  EXPECT_NE(stats.find("(replicas 2)"), std::string::npos) << stats;
  EXPECT_NE(stats.find("hot keys"), std::string::npos);
  EXPECT_NE(stats.find(", load "), std::string::npos);

  // A dying replica must not strand the hot key: kill the tie-preferred
  // shard and the next hot request fails over inside the chain, still
  // bit-identical (the second replica is even warm already).
  server_for(chain[0]).stop();
  expect_matches(warm.predict(make_request(hot)), *expected_w1_);
  router.stop();
}

TEST_F(RouterTest, ReplicatedStreamFailsOverWithReplayWhenTheReplicaDies) {
  // Streamed reference for the replicated design (comments are stripped at
  // parse, so the variant predicts identically to the base design).
  netlist::Netlist gate = netlist::parse_verilog(*verilog_, *lib_);
  sim::CycleSimulator simulator(gate);
  sim::StimulusGenerator stimulus(gate, sim::make_w1());
  const sim::ToggleTrace sim_trace = simulator.run(stimulus, kCycles);
  const std::string vcd =
      sim::write_vcd(gate, sim_trace, simulator.clock_net_mask());
  const sim::ExternalTrace ext = sim::ExternalTrace::from_vcd_text(vcd);
  const auto graphs = graph::build_submodule_graphs(gate);
  const core::Prediction direct =
      (*model_)->predict(gate, graphs, ext.resolve(gate));

  // Hand-built fleet: replication on, hour-long probe interval so ring
  // membership is frozen after the initial sweep — the mid-stream kill
  // must be discovered by the data path, not the prober.
  Fleet fleet;
  fleet.a = start_backend(false);
  fleet.b = start_backend(false);
  fleet.id_a = "127.0.0.1:" + std::to_string(fleet.a->port());
  fleet.id_b = "127.0.0.1:" + std::to_string(fleet.b->port());
  RouterConfig cfg;
  cfg.host = "127.0.0.1";
  cfg.port = 0;
  cfg.probe.interval_ms = 3'600'000;
  cfg.probe.timeout_ms = 1000;
  cfg.routing.replicas = 2;
  cfg.routing.hot_top_k = 2;
  cfg.routing.hot_min_requests = 2;
  fleet.router = std::make_unique<Router>(
      cfg, parse_backend_list(fleet.id_a + "," + fleet.id_b));
  fleet.router->start();
  Client client = connect(fleet);
  ASSERT_EQ(fleet.router->pool().ring_size(), 2u);

  const std::string verilog = design_variant(500);
  const std::string owner = expected_owner(fleet, verilog);
  serve::Server& owner_server = owner == fleet.id_a ? *fleet.a : *fleet.b;
  serve::Server& survivor_server = owner == fleet.id_a ? *fleet.b : *fleet.a;

  // Promote the key hot; with both replicas idle (fresh depth 0 from the
  // initial sweep and the request piggyback) every tie resolves to the
  // owner, so the owner alone is warm — deterministically.
  for (int i = 0; i < 3; ++i) {
    expect_matches(client.predict(make_request(verilog)), *expected_w1_);
  }
  const std::uint64_t key =
      util::hash_mix(util::fnv1a64(verilog), liberty::content_hash(*lib_));
  ASSERT_TRUE(fleet.router->pool().is_hot_key(key));
  EXPECT_EQ(owner_server.health_snapshot().cache_designs, 1u);
  EXPECT_EQ(survivor_server.health_snapshot().cache_designs, 0u);

  // Stream the replicated design frame by frame; kill the chosen replica
  // after the first chunk. The router must replay the acked prefix onto
  // the other replica and finish the stream bit-identically.
  util::Socket raw = util::connect_tcp("127.0.0.1", fleet.router->port());
  serve::StreamBeginRequest begin;
  begin.model = "tiny";
  begin.netlist_verilog = verilog;
  begin.cycles = kCycles;
  begin.trace_bytes = vcd.size();
  serve::write_frame(raw, serve::MsgType::kStreamBegin, begin.encode());
  serve::Frame resp;
  ASSERT_TRUE(serve::read_frame(raw, resp));
  ASSERT_EQ(resp.type, serve::MsgType::kStreamAck);

  const std::size_t kChunk = 512;
  std::uint64_t seq = 0;
  std::size_t off = 0;
  serve::StreamChunk chunk;
  chunk.seq = seq++;
  chunk.data = vcd.substr(off, kChunk);
  off += chunk.data.size();
  serve::write_frame(raw, serve::MsgType::kStreamChunk, chunk.encode());
  ASSERT_TRUE(serve::read_frame(raw, resp));
  ASSERT_EQ(resp.type, serve::MsgType::kStreamAck);

  owner_server.stop();

  while (off < vcd.size()) {
    chunk.seq = seq++;
    chunk.data = vcd.substr(off, kChunk);
    off += chunk.data.size();
    serve::write_frame(raw, serve::MsgType::kStreamChunk, chunk.encode());
    ASSERT_TRUE(serve::read_frame(raw, resp));
    ASSERT_EQ(resp.type, serve::MsgType::kStreamAck)
        << serve::ErrorResponse::decode(resp.payload).message;
  }
  serve::StreamEndRequest end;
  end.total_chunks = seq;
  end.total_bytes = vcd.size();
  serve::write_frame(raw, serve::MsgType::kStreamEnd, end.encode());
  ASSERT_TRUE(serve::read_frame(raw, resp));
  ASSERT_EQ(resp.type, serve::MsgType::kPredictOk)
      << serve::ErrorResponse::decode(resp.payload).message;
  expect_matches(serve::PredictResponse::decode(resp.payload), direct);
  EXPECT_EQ(fleet.router->pool().ring_size(), 1u);
  EXPECT_GE(survivor_server.health_snapshot().cache_designs, 1u);
}

TEST_F(RouterTest, RelaysOverloadedWhenEveryCandidateSheds) {
  // Single shedding backend behind the router: when the whole chain
  // answers kOverloaded the router must relay the error (not mask it as
  // kInternal or retry forever) so the client sees a clean backpressure
  // signal — and the shard must NOT be evicted: it is busy, not dead.
  serve::ServerConfig bcfg;
  bcfg.host = "127.0.0.1";
  bcfg.port = 0;
  bcfg.shed_queue_depth = 1;
  bcfg.dispatch_delay_for_test_ms = 200;
  auto backend = std::make_unique<serve::Server>(bcfg, make_registry());
  backend->start();
  const std::string id = "127.0.0.1:" + std::to_string(backend->port());

  RouterConfig cfg;
  cfg.host = "127.0.0.1";
  cfg.port = 0;
  cfg.probe.interval_ms = 3'600'000;
  cfg.probe.timeout_ms = 1000;
  Router router(cfg, parse_backend_list(id));
  router.start();
  Client client = Client::connect_tcp("127.0.0.1", router.port());

  // Warm the design while idle (admitted: depth 0 is under the watermark).
  const std::string warm_design = design_variant(600);
  expect_matches(client.predict(make_request(warm_design)), *expected_w1_);

  // Occupy the backend with an admitted warm request...
  std::thread occupant([&] {
    try {
      Client oc = Client::connect_tcp("127.0.0.1", router.port());
      oc.predict(make_request(warm_design));
    } catch (const std::exception& e) {
      ADD_FAILURE() << "occupant: " << e.what();
    }
  });
  ASSERT_TRUE(wait_for([&] { return backend->inflight_jobs() >= 1; }, 5000));

  // ...then a COLD design must come back kOverloaded through the router.
  try {
    client.predict(make_request(design_variant(601)));
    FAIL() << "expected kOverloaded";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kOverloaded);
  }
  EXPECT_EQ(router.pool().ring_size(), 1u) << "shedding must not evict";
  occupant.join();

  // Once the shard drains, the same cold design is admitted and computes.
  ASSERT_TRUE(wait_for([&] { return backend->inflight_jobs() == 0; }, 5000));
  expect_matches(client.predict(make_request(design_variant(601))),
                 *expected_w1_);
  router.stop();
  backend->stop();
}

}  // namespace
}  // namespace atlas::router
