#include <gtest/gtest.h>

#include <fstream>

#include "designgen/design_generator.h"
#include "liberty/library.h"
#include "netlist/netlist.h"
#include "sim/delta_trace.h"
#include "sim/external_trace.h"
#include "sim/simulator.h"
#include "sim/stimulus.h"
#include "sim/vcd.h"
#include "util/rng.h"

namespace atlas::sim {
namespace {

using liberty::CellFunc;
using netlist::CellInstId;
using netlist::NetId;
using netlist::Netlist;

/// Stimulus that drives a fixed per-cycle pattern on chosen nets.
class FixedStim : public StimulusGenerator {
 public:
  // Reuse base with an empty workload; we override by direct application.
  FixedStim(const Netlist& nl, std::vector<std::pair<NetId, std::vector<int>>> seq)
      : StimulusGenerator(nl, WorkloadSpec{}), seq_(std::move(seq)) {}

  void apply_fixed(int cycle, std::vector<std::uint8_t>& values) const {
    for (const auto& [net, pattern] : seq_) {
      values[net] = static_cast<std::uint8_t>(
          pattern[static_cast<std::size_t>(cycle) % pattern.size()]);
    }
  }

 private:
  std::vector<std::pair<NetId, std::vector<int>>> seq_;
};

class SimTest : public ::testing::Test {
 protected:
  SimTest() : lib_(liberty::make_default_library()) {}
  liberty::Library lib_;
};

// The StimulusGenerator API drives only PIs; to test exact logic we build
// designs whose PIs carry deterministic patterns via the workload RNG seed
// being irrelevant (we probe structure instead). For exact-value tests we
// exercise the simulator through tiny designs with constant ties.
TEST_F(SimTest, ConstantPropagation) {
  Netlist nl("t", lib_);
  const NetId clk = nl.add_net("clk");
  nl.mark_primary_input(clk);
  nl.set_clock_net(clk);
  const NetId hi = nl.add_net("hi");
  const NetId lo = nl.add_net("lo");
  nl.add_cell("th", lib_.must("TIEHI_X1"), {hi});
  nl.add_cell("tl", lib_.must("TIELO_X1"), {lo});
  const NetId y = nl.add_net("y");
  nl.add_cell("g", lib_.must("NAND2_X1"), {hi, lo, y});
  CycleSimulator sim(nl);
  StimulusGenerator stim(nl, make_w1());
  const ToggleTrace trace = sim.run(stim, 5);
  for (int c = 0; c < 5; ++c) {
    EXPECT_TRUE(trace.value(c, hi));
    EXPECT_FALSE(trace.value(c, lo));
    EXPECT_TRUE(trace.value(c, y));  // NAND(1,0) = 1
    EXPECT_EQ(trace.transitions(c, y), 0);
  }
}

TEST_F(SimTest, ClockNetsToggleTwicePerCycle) {
  Netlist nl("t", lib_);
  const NetId clk = nl.add_net("clk");
  nl.mark_primary_input(clk);
  nl.set_clock_net(clk);
  const NetId buffed = nl.add_net("ckb");
  nl.add_cell("cb", lib_.must("CKBUF_X1"), {clk, buffed});
  const NetId hi = nl.add_net("hi");
  nl.add_cell("th", lib_.must("TIEHI_X1"), {hi});
  const NetId q = nl.add_net("q");
  nl.add_cell("r", lib_.must("DFF_X1"), {hi, buffed, q});
  CycleSimulator sim(nl);
  StimulusGenerator stim(nl, make_w1());
  const ToggleTrace trace = sim.run(stim, 4);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(trace.transitions(c, clk), 2);
    EXPECT_EQ(trace.transitions(c, buffed), 2);
  }
  // The register captures the tie-high after the first edge.
  EXPECT_TRUE(trace.value(1, q));
  EXPECT_TRUE(trace.value(3, q));
}

TEST_F(SimTest, ClockGateBlocksDownstreamActivity) {
  Netlist nl("t", lib_);
  const NetId clk = nl.add_net("clk");
  nl.mark_primary_input(clk);
  nl.set_clock_net(clk);
  const NetId en = nl.add_net("en");
  nl.mark_primary_input(en);  // data PI; workload drives it randomly
  const NetId lo = nl.add_net("lo");
  nl.add_cell("tl", lib_.must("TIELO_X1"), {lo});
  const NetId gck = nl.add_net("gck");
  nl.add_cell("icg", lib_.must("CKGATE_X1"), {clk, lo, gck});  // EN tied low
  const NetId hi = nl.add_net("hi");
  nl.add_cell("th", lib_.must("TIEHI_X1"), {hi});
  const NetId q = nl.add_net("q");
  nl.add_cell("r", lib_.must("DFF_X1"), {hi, gck, q});
  CycleSimulator sim(nl);
  StimulusGenerator stim(nl, make_w1());
  const ToggleTrace trace = sim.run(stim, 6);
  for (int c = 0; c < 6; ++c) {
    EXPECT_EQ(trace.transitions(c, gck), 0) << "gated clock must not toggle";
    EXPECT_FALSE(trace.value(c, q)) << "gated register must hold reset value";
  }
}

TEST_F(SimTest, DffrResetsSynchronously) {
  Netlist nl("t", lib_);
  const NetId clk = nl.add_net("clk");
  nl.mark_primary_input(clk);
  nl.set_clock_net(clk);
  const NetId rstn = nl.add_net("rstn");
  nl.mark_primary_input(rstn);
  const NetId hi = nl.add_net("hi");
  nl.add_cell("th", lib_.must("TIEHI_X1"), {hi});
  const NetId q = nl.add_net("q");
  nl.add_cell("r", lib_.must("DFFR_X1"), {hi, clk, rstn, q});
  CycleSimulator sim(nl);
  WorkloadSpec spec = make_w1();
  spec.reset_cycles = 3;
  StimulusGenerator stim(nl, spec);
  const ToggleTrace trace = sim.run(stim, 8);
  // While rstn=0 the register stays 0; after deassertion it captures 1.
  EXPECT_FALSE(trace.value(0, q));
  EXPECT_FALSE(trace.value(2, q));
  EXPECT_TRUE(trace.value(5, q));
  EXPECT_TRUE(trace.value(7, q));
}

TEST_F(SimTest, SramWritesThenReads) {
  Netlist nl("t", lib_);
  const NetId clk = nl.add_net("clk");
  nl.mark_primary_input(clk);
  nl.set_clock_net(clk);
  const liberty::CellId sram = lib_.cell_for(CellFunc::kSram);
  const liberty::Cell& sc = lib_.cell(sram);
  // CSB=0 (always selected), WEB toggles: write phase then read phase driven
  // by a register chain: WEB = q of a DFF capturing rstn-like PI. For
  // simplicity tie CSB low and drive WEB from a data PI.
  const NetId lo = nl.add_net("lo");
  nl.add_cell("tl", lib_.must("TIELO_X1"), {lo});
  const NetId hi = nl.add_net("hi");
  nl.add_cell("th", lib_.must("TIEHI_X1"), {hi});
  const NetId web = nl.add_net("web");
  nl.mark_primary_input(web);
  std::vector<NetId> pins;
  pins.push_back(clk);
  pins.push_back(lo);   // CSB active
  pins.push_back(web);  // WEB from PI
  // addr = all zero, din = all one.
  for (std::size_t i = 0; i < 8; ++i) pins.push_back(lo);
  for (std::size_t i = 0; i < 16; ++i) pins.push_back(hi);
  std::vector<NetId> qnets;
  for (std::size_t i = 0; i < 16; ++i) {
    qnets.push_back(nl.add_net("q" + std::to_string(i)));
    pins.push_back(qnets.back());
  }
  ASSERT_EQ(pins.size(), sc.pins.size());
  nl.add_cell("mem", sram, pins);
  CycleSimulator sim(nl);
  // Drive WEB: low (write) for cycles 0-2, high (read) after. The stimulus
  // generator can't express that, so approximate with reset_cycles trick:
  // name the PI "rstn" is taken; instead run twice with constant web.
  // Here: WEB low -> always writing; Q holds 0.
  {
    WorkloadSpec spec = make_w1();
    spec.idle_activity = spec.compute_activity = spec.burst_activity = 0.0;
    StimulusGenerator stim(nl, spec);  // PIs stay 0 -> WEB=0 (write)
    const ToggleTrace t = sim.run(stim, 4);
    for (const NetId q : qnets) EXPECT_FALSE(t.value(3, q));
  }
  // Fresh simulator; write once then read by toggling WEB via bus activity
  // is stochastic — instead validate read path: memory zeroed, read gives 0,
  // then after writes of all-ones appear when WEB low... covered above.
  // Read phase: WEB stuck high reads address 0 (still zero).
  {
    CycleSimulator sim2(nl);
    WorkloadSpec spec = make_w1();
    spec.idle_activity = spec.compute_activity = spec.burst_activity = 1.0;
    StimulusGenerator stim(nl, spec);
    const ToggleTrace t = sim2.run(stim, 12);
    // With WEB random, eventually a write of ones lands at addr 0 and a later
    // read returns ones.
    bool saw_ones = false;
    for (int c = 0; c < 12; ++c) saw_ones = saw_ones || t.value(c, qnets[0]);
    EXPECT_TRUE(saw_ones);
  }
}

TEST_F(SimTest, ToggleTraceAccounting) {
  ToggleTrace t(3, 4);
  t.set(0, 1, true, 1);
  t.set(1, 1, false, 1);
  t.set(2, 1, false, 0);
  t.set(3, 1, true, 1);
  EXPECT_EQ(t.total_transitions(1), 3);
  EXPECT_DOUBLE_EQ(t.toggle_rate(1), 0.75);
  EXPECT_EQ(t.total_transitions(0), 0);
  EXPECT_TRUE(t.value(3, 1));
  EXPECT_FALSE(t.value(2, 1));
}

TEST_F(SimTest, DeterministicAcrossRuns) {
  const auto spec = designgen::paper_design_spec(1, 0.002);
  const Netlist nl = designgen::generate_design(spec, lib_);
  CycleSimulator sim(nl);
  StimulusGenerator s1(nl, make_w1());
  StimulusGenerator s2(nl, make_w1());
  CycleSimulator sim2(nl);
  const ToggleTrace a = sim.run(s1, 20);
  const ToggleTrace b = sim2.run(s2, 20);
  for (int c = 0; c < 20; ++c) {
    for (NetId n = 0; n < nl.num_nets(); ++n) {
      ASSERT_EQ(a.value(c, n), b.value(c, n));
      ASSERT_EQ(a.transitions(c, n), b.transitions(c, n));
    }
  }
}

TEST_F(SimTest, WorkloadsProduceDifferentActivity) {
  const auto spec = designgen::paper_design_spec(1, 0.002);
  const Netlist nl = designgen::generate_design(spec, lib_);
  CycleSimulator sim(nl);
  StimulusGenerator s1(nl, make_w1());
  const ToggleTrace a = sim.run(s1, 50);
  CycleSimulator sim2(nl);
  StimulusGenerator s2(nl, make_w2());
  const ToggleTrace b = sim2.run(s2, 50);
  long long ta = 0, tb = 0;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    ta += a.total_transitions(n);
    tb += b.total_transitions(n);
  }
  EXPECT_GT(ta, 0);
  EXPECT_GT(tb, 0);
  EXPECT_NE(ta, tb);
}

TEST_F(SimTest, ActivityVariesOverTime) {
  // Per-cycle power modeling is pointless if activity is flat; check the
  // workload produces fluctuating per-cycle toggle totals.
  const auto spec = designgen::paper_design_spec(2, 0.002);
  const Netlist nl = designgen::generate_design(spec, lib_);
  CycleSimulator sim(nl);
  StimulusGenerator stim(nl, make_w1());
  const ToggleTrace t = sim.run(stim, 100);
  std::vector<long long> per_cycle(100, 0);
  for (int c = 0; c < 100; ++c) {
    for (NetId n = 0; n < nl.num_nets(); ++n) per_cycle[static_cast<std::size_t>(c)] += t.transitions(c, n);
  }
  const auto [mn, mx] = std::minmax_element(per_cycle.begin() + 5, per_cycle.end());
  EXPECT_GT(*mx, *mn * 1.2) << "per-cycle activity should fluctuate";
}

TEST_F(SimTest, VcdRoundTrip) {
  const auto spec = designgen::paper_design_spec(1, 0.002);
  const Netlist nl = designgen::generate_design(spec, lib_);
  CycleSimulator sim(nl);
  StimulusGenerator stim(nl, make_w1());
  const ToggleTrace t = sim.run(stim, 10);
  const std::string text = write_vcd(nl, t, sim.clock_net_mask());
  const VcdData back = parse_vcd(text, nl);
  ASSERT_EQ(back.num_cycles, 10);
  int checked = 0;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    if (sim.clock_net_mask()[n]) continue;
    for (int c = 0; c < 10; ++c) {
      ASSERT_EQ(back.value(c, n), t.value(c, n))
          << "net " << nl.net(n).name << " cycle " << c;
    }
    ++checked;
  }
  EXPECT_GT(checked, 100);
}

TEST_F(SimTest, MalformedVcdThrowsInsteadOfCrashing) {
  // The corpus the serve layer relies on: every hostile or corrupt input a
  // streamed upload could carry must throw (and be turned into an error
  // reply) rather than crash or over-allocate.
  const auto spec = designgen::paper_design_spec(1, 0.002);
  const Netlist nl = designgen::generate_design(spec, lib_);
  CycleSimulator sim(nl);
  StimulusGenerator stim(nl, make_w1());
  const std::string good = write_vcd(nl, sim.run(stim, 4), sim.clock_net_mask());

  // Truncated $var declaration.
  EXPECT_THROW(parse_vcd("$var wire 1 ! $end\n", nl), std::exception);
  // Net name that does not exist in the netlist.
  EXPECT_THROW(
      parse_vcd("$var wire 1 ! no_such_net $end\n$enddefinitions $end\n#0\n",
                nl),
      std::exception);
  // Value change for an identifier never declared.
  EXPECT_THROW(parse_vcd("$enddefinitions $end\n#0\n1@@@\n", nl),
               std::exception);
  // Garbage line in the value-change section.
  EXPECT_THROW(parse_vcd("$enddefinitions $end\n#0\nhello world\n", nl),
               std::exception);
  // Non-decimal, signed, and empty timestamps.
  EXPECT_THROW(parse_vcd("$enddefinitions $end\n#12x\n", nl), std::exception);
  EXPECT_THROW(parse_vcd("$enddefinitions $end\n#-3\n", nl), std::exception);
  EXPECT_THROW(parse_vcd("$enddefinitions $end\n#\n", nl), std::exception);
  // A timestamp past the cycle cap throws before frames are materialized —
  // the allocation-bomb guard (this declares ~10^18 cycles).
  EXPECT_THROW(parse_vcd("$enddefinitions $end\n#999999999999999999\n", nl),
               std::exception);
  EXPECT_THROW(parse_vcd("$enddefinitions $end\n#0\n#10\n", nl,
                         /*max_cycles=*/5),
               std::exception);

  // The well-formed dump still parses after all that.
  EXPECT_EQ(parse_vcd(good, nl).num_cycles, 4);
}

TEST_F(SimTest, ExternalTraceResolvesIdenticallyToParseVcd) {
  const auto spec = designgen::paper_design_spec(1, 0.002);
  const Netlist nl = designgen::generate_design(spec, lib_);
  CycleSimulator sim(nl);
  StimulusGenerator stim(nl, make_w1());
  const ToggleTrace original = sim.run(stim, 10);
  const std::string text = write_vcd(nl, original, sim.clock_net_mask());

  const ExternalTrace trace = ExternalTrace::from_vcd_text(text);
  EXPECT_FALSE(trace.empty());
  EXPECT_EQ(trace.size_bytes(), text.size());
  EXPECT_EQ(trace.declared_cycles(), 10);
  // Content-addressed: same bytes, same hash; different bytes, different.
  EXPECT_EQ(trace.content_hash(),
            ExternalTrace::from_vcd_text(text).content_hash());
  EXPECT_NE(trace.content_hash(),
            ExternalTrace::from_vcd_text(text + "\n#11\n").content_hash());

  // resolve() is the one shared decode path (disk or wire): it must equal
  // the explicit parse + reconstruct pipeline transition-for-transition.
  const ToggleTrace resolved = trace.resolve(nl);
  const ToggleTrace expected = trace_from_vcd(parse_vcd(text, nl), nl);
  ASSERT_EQ(resolved.num_cycles(), expected.num_cycles());
  for (int c = 0; c < resolved.num_cycles(); ++c) {
    for (NetId n = 0; n < nl.num_nets(); ++n) {
      ASSERT_EQ(resolved.transitions(c, n), expected.transitions(c, n));
      ASSERT_EQ(resolved.value(c, n), expected.value(c, n));
    }
  }

  // from_vcd_file reads the same bytes back (hash proves it).
  const std::string path = ::testing::TempDir() + "/external_trace_test.vcd";
  {
    std::ofstream os(path, std::ios::binary);
    os << text;
  }
  EXPECT_EQ(ExternalTrace::from_vcd_file(path).content_hash(),
            trace.content_hash());
  EXPECT_THROW(ExternalTrace::from_vcd_file(path + ".missing"),
               std::exception);
}

// ---- ATDT delta codec (sim/delta_trace.h) ----------------------------------

namespace {

/// Assert two parsed traces carry identical per-cycle levels for every net.
void expect_same_vcd_data(const VcdData& a, const VcdData& b) {
  ASSERT_EQ(a.num_cycles, b.num_cycles);
  ASSERT_EQ(a.num_nets, b.num_nets);
  ASSERT_EQ(a.values, b.values);
}

/// Assert two resolved traces are bit-identical (values AND transitions).
void expect_same_toggle_trace(const ToggleTrace& a, const ToggleTrace& b) {
  ASSERT_EQ(a.num_cycles(), b.num_cycles());
  ASSERT_EQ(a.num_nets(), b.num_nets());
  for (int c = 0; c < a.num_cycles(); ++c) {
    for (NetId n = 0; n < a.num_nets(); ++n) {
      ASSERT_EQ(a.value(c, n), b.value(c, n)) << "net " << n << " cycle " << c;
      ASSERT_EQ(a.transitions(c, n), b.transitions(c, n))
          << "net " << n << " cycle " << c;
    }
  }
}

std::string varint(std::uint64_t v) {
  std::string s;
  while (v >= 0x80) {
    s.push_back(static_cast<char>(0x80 | (v & 0x7f)));
    v >>= 7;
  }
  s.push_back(static_cast<char>(v));
  return s;
}

std::string le64(std::uint64_t v) {
  std::string s;
  for (int i = 0; i < 8; ++i) s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  return s;
}

/// Hand-build an ATDT header (magic, version, nets, cycles, order hash).
std::string delta_header(std::uint64_t nets, std::uint64_t cycles,
                         std::uint64_t order) {
  std::string s("ATDT\x01", 5);
  s += varint(nets);
  s += varint(cycles);
  s += le64(order);
  return s;
}

}  // namespace

TEST_F(SimTest, DeltaRoundTripMatchesVcdResolve) {
  const auto spec = designgen::paper_design_spec(1, 0.002);
  const Netlist nl = designgen::generate_design(spec, lib_);
  CycleSimulator sim(nl);
  StimulusGenerator stim(nl, make_w1());
  const ToggleTrace original = sim.run(stim, 10);
  const std::string text = write_vcd(nl, original, sim.clock_net_mask());
  const std::string delta = write_delta(nl, original, sim.clock_net_mask());

  // The VcdData transcode overload emits the same bytes as encoding the
  // ToggleTrace directly — the offline converter and the simulator dump
  // agree byte-for-byte.
  EXPECT_EQ(write_delta(nl, parse_vcd(text, nl)), delta);

  EXPECT_TRUE(looks_like_delta(delta));
  EXPECT_FALSE(looks_like_delta(text));
  EXPECT_LT(delta.size(), text.size());

  // Decoded levels equal the VCD parse exactly; the resolved traces (the
  // single path the server and atlas_cli --vcd both take) are bit-identical
  // including the reconstructed clock activity.
  expect_same_vcd_data(parse_delta(delta, nl), parse_vcd(text, nl));
  expect_same_toggle_trace(
      ExternalTrace::from_delta_bytes(delta).resolve(nl),
      ExternalTrace::from_vcd_text(text).resolve(nl));

  const ExternalTrace ext = ExternalTrace::from_delta_bytes(delta);
  EXPECT_EQ(ext.encoding(), TraceEncoding::kDelta);
  EXPECT_EQ(ext.declared_cycles(), 10);
  EXPECT_NE(ext.content_hash(),
            ExternalTrace::from_vcd_text(text).content_hash());

  // from_file sniffs the ATDT magic and picks the delta decoder.
  const std::string path = ::testing::TempDir() + "/delta_trace_test.atdt";
  {
    std::ofstream os(path, std::ios::binary);
    os << delta;
  }
  const ExternalTrace sniffed = ExternalTrace::from_file(path);
  EXPECT_EQ(sniffed.encoding(), TraceEncoding::kDelta);
  EXPECT_EQ(sniffed.content_hash(), ext.content_hash());
  // (Not compared against `original` directly: resolve() documents that
  // cycle 0 carries no data-net transitions, unlike a live simulation.)
  expect_same_toggle_trace(sniffed.resolve(nl),
                           ExternalTrace::from_vcd_text(text).resolve(nl));
}

TEST_F(SimTest, DeltaPropertyRandomizedRoundTrip) {
  // Property: for ANY per-cycle level assignment, VCD text and delta bytes
  // decode to identical VcdData. Sweep toggle densities from all-quiet to
  // every-net-toggles-every-cycle across several seeds.
  const auto spec = designgen::paper_design_spec(3, 0.002);
  const Netlist nl = designgen::generate_design(spec, lib_);
  CycleSimulator sim(nl);
  const std::vector<bool>& mask = sim.clock_net_mask();
  const int cycles = 17;

  for (const double density : {0.0, 0.01, 0.3, 1.0}) {
    for (const std::uint64_t seed : {7ull, 8ull, 9ull}) {
      util::Rng rng(seed);
      ToggleTrace t(nl.num_nets(), cycles);
      std::vector<std::uint8_t> level(nl.num_nets(), 0);
      for (NetId n = 0; n < nl.num_nets(); ++n) level[n] = rng.next_bool(0.5);
      for (int c = 0; c < cycles; ++c) {
        for (NetId n = 0; n < nl.num_nets(); ++n) {
          if (c > 0 && (density >= 1.0 || rng.next_bool(density))) {
            level[n] ^= 1u;
          }
          t.set(c, n, level[n] != 0, 0);
        }
      }
      const std::string text = write_vcd(nl, t, mask);
      const std::string delta = write_delta(nl, t, mask);
      expect_same_vcd_data(parse_delta(delta, nl), parse_vcd(text, nl));
      validate_delta(delta);  // every encoder output passes the server check
      if (density == 0.0) {
        // All-quiet: header + initial bitmap only, no cycle records.
        const std::size_t header = 4 + 1 + varint(nl.num_nets()).size() +
                                   varint(cycles).size() + 8;
        EXPECT_EQ(delta.size(), header + (nl.num_nets() + 7) / 8);
      }
    }
  }
}

TEST_F(SimTest, DeltaSingleNetDesign) {
  // Degenerate shape: one data net (plus the clock root).
  Netlist nl("t", lib_);
  const NetId clk = nl.add_net("clk");
  nl.mark_primary_input(clk);
  nl.set_clock_net(clk);
  const NetId hi = nl.add_net("hi");
  nl.add_cell("th", lib_.must("TIEHI_X1"), {hi});
  CycleSimulator sim(nl);
  StimulusGenerator stim(nl, make_w1());
  const ToggleTrace t = sim.run(stim, 5);
  const std::string text = write_vcd(nl, t, sim.clock_net_mask());
  const std::string delta = write_delta(nl, t, sim.clock_net_mask());
  expect_same_vcd_data(parse_delta(delta, nl), parse_vcd(text, nl));
  expect_same_toggle_trace(ExternalTrace::from_delta_bytes(delta).resolve(nl),
                           ExternalTrace::from_vcd_text(text).resolve(nl));
}

TEST_F(SimTest, DeltaAtExactlyMaxVcdCycles) {
  // An all-quiet trace at exactly the cycle cap encodes to a few bytes and
  // decodes fine; one cycle more is rejected up front (allocation-bomb
  // guard), as is a smaller explicit max_cycles.
  Netlist nl("t", lib_);
  const NetId clk = nl.add_net("clk");
  nl.mark_primary_input(clk);
  nl.set_clock_net(clk);
  const NetId hi = nl.add_net("hi");
  nl.add_cell("th", lib_.must("TIEHI_X1"), {hi});
  const std::vector<bool> mask = {true, false};

  const ToggleTrace at_cap(nl.num_nets(), kMaxVcdCycles);
  const std::string delta = write_delta(nl, at_cap, mask);
  EXPECT_LT(delta.size(), 32u);
  const VcdData back = parse_delta(delta, nl);
  EXPECT_EQ(back.num_cycles, kMaxVcdCycles);
  EXPECT_EQ(ExternalTrace::from_delta_bytes(delta).declared_cycles(),
            kMaxVcdCycles);
  validate_delta(delta);

  const ToggleTrace past_cap(nl.num_nets(), kMaxVcdCycles + 1);
  const std::string too_long = write_delta(nl, past_cap, mask);
  EXPECT_THROW(parse_delta(too_long, nl), DeltaError);
  EXPECT_THROW(validate_delta(too_long), DeltaError);
  EXPECT_THROW(parse_delta(delta, nl, /*max_cycles=*/16), DeltaError);
}

TEST_F(SimTest, MalformedDeltaThrowsInsteadOfCrashing) {
  // The wire-facing corpus: every hostile shape throws DeltaError from both
  // parse_delta (netlist-bound) and validate_delta (the server's nl-free
  // pre-dispatch walk) — never a crash or an allocation bomb.
  const auto spec = designgen::paper_design_spec(1, 0.002);
  const Netlist nl = designgen::generate_design(spec, lib_);
  CycleSimulator sim(nl);
  StimulusGenerator stim(nl, make_w1());
  const std::string good = write_delta(nl, sim.run(stim, 4),
                                       sim.clock_net_mask());
  const std::uint64_t order = net_order_hash(nl);

  int case_index = 0;
  const auto throws_everywhere = [&](const std::string& bytes) {
    SCOPED_TRACE("corpus case " + std::to_string(case_index++));
    EXPECT_THROW(parse_delta(bytes, nl), DeltaError);
    EXPECT_THROW(validate_delta(bytes), DeltaError);
  };

  // Framing: empty, wrong magic, unknown version, truncated header.
  throws_everywhere("");
  throws_everywhere("ATXX");
  throws_everywhere(std::string("ATDT\x02", 5) + varint(2) + varint(1));
  throws_everywhere(std::string("ATDT\x01", 5));
  // A varint that never terminates within its 10-byte budget.
  throws_everywhere(std::string("ATDT\x01", 5) +
                    std::string(11, '\x80'));
  // Truncated net-order hash.
  throws_everywhere(std::string("ATDT\x01", 5) + varint(2) + varint(1) +
                    "\x01\x02\x03");
  // Truncated initial level bitmap (2 nets declare 1 byte; none provided).
  throws_everywhere(delta_header(2, 3, order));
  // Padding bits set in the initial bitmap (3 nets -> top 5 bits must be 0).
  throws_everywhere(delta_header(3, 1, order) + "\xF8");
  // Trailing record in a zero-cycle trace.
  throws_everywhere(delta_header(2, 0, order) + std::string(1, '\0'));

  // Cycle records. Base: 2 nets, 4 cycles, quiet initial bitmap.
  const std::string base = delta_header(2, 4, order) + std::string(1, '\0');
  // Record skipped past the declared cycle count.
  throws_everywhere(base + varint(3) + '\0' + varint(1) + varint(0) +
                    varint(1));
  // Varint-encoded skip of ~2^63 (overflow probe).
  throws_everywhere(base + std::string(9, '\x80') + '\x7f');
  // Unknown record kind.
  throws_everywhere(base + varint(0) + '\x02');
  // RLE: zero runs / zero-length run / unmerged adjacent runs / run past
  // the net count / more runs than nets / truncated mid-run.
  throws_everywhere(base + varint(0) + '\0' + varint(0));
  throws_everywhere(base + varint(0) + '\0' + varint(1) + varint(0) +
                    varint(0));
  throws_everywhere(base + varint(0) + '\0' + varint(2) + varint(0) +
                    varint(1) + varint(0) + varint(1));
  throws_everywhere(base + varint(0) + '\0' + varint(1) + varint(0) +
                    varint(3));
  throws_everywhere(base + varint(0) + '\0' + varint(5));
  throws_everywhere(base + varint(0) + '\0' + varint(2) + varint(0) +
                    varint(1));
  // Bitmap records: truncated / all-zero (quiet cycles must be skipped,
  // not sent) / padding bits set.
  throws_everywhere(base + varint(0) + '\x01');
  throws_everywhere(base + varint(0) + '\x01' + std::string(1, '\0'));
  throws_everywhere(base + varint(0) + '\x01' + "\xFF");

  // Netlist binding: net-count and net-order mismatches fail parse_delta
  // but pass the structural walk (the server defers them to predict time,
  // where the netlist is known).
  const std::string wrong_count =
      delta_header(nl.num_nets() + 1, 0, order);
  EXPECT_THROW(parse_delta(wrong_count, nl), DeltaError);
  validate_delta(wrong_count);
  std::string wrong_order = good;
  wrong_order[5 + varint(nl.num_nets()).size() + varint(4).size()] ^= 0x5a;
  EXPECT_THROW(parse_delta(wrong_order, nl), DeltaError);
  validate_delta(wrong_order);

  // The well-formed encoding still decodes after all that.
  EXPECT_EQ(parse_delta(good, nl).num_cycles, 4);
  validate_delta(good);
}

}  // namespace
}  // namespace atlas::sim
