// Golden-file regression test for the fig5 per-cycle power pipeline.
//
// The committed fig5_C2_W1.csv / fig5_C4_W1.csv (repo root) were produced
// by `build/bench/bench_fig5` at its default flags (scale=0.01,
// cycles=300). Their label_* columns are the golden power analysis
// (post-layout netlist + extracted caps) and their gate_* columns are the
// Gate-Level-PTPX baseline — both fully deterministic given the seeded
// design generator. This test rebuilds exactly that pipeline for C2 and C4
// and compares every deterministic column of all 300 cycles against the
// committed files, so a perf PR that silently changes numerics fails here.
//
// (The atlas_* columns depend on the trained model and are covered by the
// shape checks in bench_fig5 itself, not pinned by this test.)
//
// Regenerating after an *intentional* numerics change:
//   cmake --build build -j && (cd <repo-root> && ./build/bench/bench_fig5)
// then commit the rewritten fig5_C2_W1.csv / fig5_C4_W1.csv.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "atlas/finetune.h"
#include "atlas/model.h"
#include "atlas/preprocess.h"
#include "atlas/pretrain.h"
#include "designgen/design_generator.h"
#include "graph/submodule_graph.h"
#include "layout/layout_flow.h"
#include "liberty/library.h"
#include "power/power_analyzer.h"
#include "sim/simulator.h"
#include "util/arena.h"
#include "util/parallel.h"

#ifndef ATLAS_SOURCE_DIR
#error "ATLAS_SOURCE_DIR must point at the repository root"
#endif

namespace atlas {
namespace {

constexpr int kCycles = 300;     // bench default: --cycles 300
constexpr double kScale = 0.01;  // bench default: --scale 0.01

struct CsvRow {
  // Column order in the committed files (see bench_fig5.cpp).
  double label_comb, label_clock, label_reg, label_total;
  double atlas_comb, atlas_clock, atlas_reg, atlas_total;
  double gate_comb, gate_clock, gate_reg, gate_total;
};

std::vector<CsvRow> load_golden_csv(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::string line;
  std::getline(in, line);  // header
  EXPECT_NE(line.find("label_comb"), std::string::npos);
  std::vector<CsvRow> rows;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string field;
    std::vector<double> v;
    while (std::getline(ls, field, ',')) v.push_back(std::stod(field));
    EXPECT_EQ(v.size(), 13u) << "malformed row in " << path << ": " << line;
    rows.push_back(CsvRow{v[1], v[2], v[3], v[4], v[5], v[6], v[7], v[8], v[9],
                          v[10], v[11], v[12]});
  }
  return rows;
}

/// The CSV stores %.3f-rounded values; allow rounding plus a whisker of
/// relative slack for compiler/libm variation.
void expect_close(double golden, double computed, const char* col, int cycle) {
  const double tol = 2e-3 + 5e-7 * std::fabs(golden);
  EXPECT_NEAR(golden, computed, tol) << col << " at cycle " << cycle;
}

void check_design(int design_index, const std::string& csv_name) {
  const liberty::Library lib = liberty::make_default_library();
  const netlist::Netlist gate = designgen::generate_design(
      designgen::paper_design_spec(design_index, kScale), lib);
  const layout::LayoutResult post = layout::run_layout(gate);

  // Golden labels: W1 on the post-layout netlist with extracted caps.
  sim::CycleSimulator sim_post(post.netlist);
  sim::StimulusGenerator stim_post(post.netlist, sim::make_w1());
  const power::PowerResult golden =
      power::analyze_power(post.netlist, sim_post.run(stim_post, kCycles));

  // Gate-Level PTPX baseline: same engine on the gate-level netlist.
  sim::CycleSimulator sim_gate(gate);
  sim::StimulusGenerator stim_gate(gate, sim::make_w1());
  const power::PowerResult baseline =
      power::analyze_power(gate, sim_gate.run(stim_gate, kCycles));

  const std::vector<CsvRow> rows =
      load_golden_csv(std::string(ATLAS_SOURCE_DIR) + "/" + csv_name);
  ASSERT_EQ(rows.size(), static_cast<std::size_t>(kCycles)) << csv_name;
  for (int c = 0; c < kCycles; ++c) {
    const CsvRow& r = rows[static_cast<std::size_t>(c)];
    const power::GroupPower& lab = golden.design(c);
    const power::GroupPower& gl = baseline.design(c);
    expect_close(r.label_comb, lab.comb, "label_comb", c);
    expect_close(r.label_clock, lab.clock, "label_clock", c);
    expect_close(r.label_reg, lab.reg, "label_reg", c);
    expect_close(r.label_total, lab.total_no_memory(), "label_total", c);
    expect_close(r.gate_comb, gl.comb, "gate_comb", c);
    expect_close(r.gate_clock, gl.clock, "gate_clock", c);
    expect_close(r.gate_reg, gl.reg, "gate_reg", c);
    expect_close(r.gate_total, gl.total_no_memory(), "gate_total", c);
    if (::testing::Test::HasFailure()) {
      FAIL() << "golden mismatch in " << csv_name << " — if intentional, "
             << "regenerate with ./build/bench/bench_fig5 (run from the repo "
             << "root) and commit the new CSVs";
    }
  }
}

TEST(GoldenFig5Test, C2PerCyclePowerMatchesCommittedCsv) {
  check_design(2, "fig5_C2_W1.csv");
}

TEST(GoldenFig5Test, C4PerCyclePowerMatchesCommittedCsv) {
  check_design(4, "fig5_C4_W1.csv");
}

/// The fused batched inference path (encode_batch + predict_from_embeddings,
/// the serving dispatcher's hot path) must be bit-identical to the
/// request-at-a-time predict() on the exact golden fig5 pipeline: design C2
/// at the bench's default scale under W1 over 300 cycles. This ties the
/// serve-path property suite to the same deterministic inputs the committed
/// CSVs pin, so a fused-kernel numerics drift fails alongside the golden
/// columns instead of only in small synthetic tests.
TEST(GoldenFig5Test, FusedBatchedPredictionBitIdenticalOnGoldenC2) {
  struct ThreadCountGuard {
    ~ThreadCountGuard() { util::set_global_threads(0); }
  } guard;

  // A small trained model (same recipe as the atlas unit suite) — the test
  // pins fused-vs-solo identity, not prediction quality.
  const liberty::Library lib = liberty::make_default_library();
  core::PreprocessConfig pcfg_data;
  pcfg_data.cycles = 40;
  const core::DesignData train = core::prepare_design(
      designgen::paper_design_spec(1, 0.0025), lib, pcfg_data);
  core::PretrainConfig pcfg;
  pcfg.epochs = 1;
  pcfg.cycles_per_graph = 1;
  pcfg.dim = 16;
  core::PretrainResult pre = core::pretrain_encoder({&train}, pcfg);
  core::FinetuneConfig fcfg;
  fcfg.gbdt.n_trees = 10;
  fcfg.cycle_stride = 4;
  core::GroupModels models = core::finetune_models({&train}, pre.encoder, fcfg);
  const core::AtlasModel model(std::move(pre.encoder), std::move(models));

  // The golden pipeline's gate-level inputs: C2 at bench defaults, W1.
  const netlist::Netlist gate = designgen::generate_design(
      designgen::paper_design_spec(2, kScale), lib);
  const std::vector<graph::SubmoduleGraph> graphs =
      graph::build_submodule_graphs(gate);
  sim::CycleSimulator sim_gate(gate);
  sim::StimulusGenerator stim_gate(gate, sim::make_w1());
  const sim::ToggleTrace trace = sim_gate.run(stim_gate, kCycles);

  const core::Prediction ref = model.predict(gate, graphs, trace);
  ASSERT_EQ(ref.num_cycles, kCycles);

  for (const unsigned threads : {1u, 8u}) {
    util::set_global_threads(threads);
    core::DesignEmbeddings emb;
    core::AtlasModel::EncodeItem item;
    item.gate = &gate;
    item.graphs = &graphs;
    item.trace = &trace;
    item.out = &emb;
    util::Arena arena;
    model.encode_batch(&item, 1, arena);
    const core::Prediction fused =
        model.predict_from_embeddings(gate, graphs, emb, &arena);
    ASSERT_EQ(fused.num_cycles, ref.num_cycles);
    ASSERT_EQ(fused.num_submodules, ref.num_submodules);
    for (int c = 0; c < ref.num_cycles; ++c) {
      const power::GroupPower& a = ref.at(c);
      const power::GroupPower& b = fused.at(c);
      ASSERT_EQ(a.comb, b.comb) << "threads=" << threads << " cycle=" << c;
      ASSERT_EQ(a.clock, b.clock) << "threads=" << threads << " cycle=" << c;
      ASSERT_EQ(a.reg, b.reg) << "threads=" << threads << " cycle=" << c;
    }
  }
}

}  // namespace
}  // namespace atlas
