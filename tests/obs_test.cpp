// Tests for the observability layer (src/obs/): metrics registry,
// span tracer + Chrome trace JSON export, and the structured logger.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/parallel.h"

namespace atlas::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough to validate the Chrome trace export.
// Parses objects/arrays/strings/numbers into a tagged struct; throws on
// malformed input so EXPECT_NO_THROW doubles as a well-formedness check.
// ---------------------------------------------------------------------------

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  const Json& at(const std::string& key) const {
    auto it = obj.find(key);
    if (it == obj.end()) throw std::runtime_error("missing key " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return obj.count(key) != 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing JSON garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end of JSON");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  Json value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return literal("true", [] { Json j; j.type = Json::Type::kBool; j.b = true; return j; }());
      case 'f': return literal("false", [] { Json j; j.type = Json::Type::kBool; return j; }());
      case 'n': return literal("null", Json{});
      default: return number();
    }
  }

  Json literal(const std::string& word, Json result) {
    if (s_.compare(pos_, word.size(), word) != 0) {
      throw std::runtime_error("bad JSON literal at " + std::to_string(pos_));
    }
    pos_ += word.size();
    return result;
  }

  Json object() {
    expect('{');
    Json j;
    j.type = Json::Type::kObject;
    if (peek() == '}') { ++pos_; return j; }
    while (true) {
      Json key = string_value();
      expect(':');
      j.obj.emplace(key.str, value());
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return j;
    }
  }

  Json array() {
    expect('[');
    Json j;
    j.type = Json::Type::kArray;
    if (peek() == ']') { ++pos_; return j; }
    while (true) {
      j.arr.push_back(value());
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return j;
    }
  }

  Json string_value() {
    expect('"');
    Json j;
    j.type = Json::Type::kString;
    while (true) {
      if (pos_ >= s_.size()) throw std::runtime_error("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return j;
      if (c == '\\') {
        if (pos_ >= s_.size()) throw std::runtime_error("bad escape");
        char e = s_[pos_++];
        switch (e) {
          case '"': j.str += '"'; break;
          case '\\': j.str += '\\'; break;
          case '/': j.str += '/'; break;
          case 'n': j.str += '\n'; break;
          case 't': j.str += '\t'; break;
          case 'r': j.str += '\r'; break;
          case 'b': j.str += '\b'; break;
          case 'f': j.str += '\f'; break;
          case 'u':
            if (pos_ + 4 > s_.size()) throw std::runtime_error("bad \\u");
            pos_ += 4;  // validated but not decoded; trace export is ASCII
            j.str += '?';
            break;
          default: throw std::runtime_error("bad escape char");
        }
        continue;
      }
      j.str += c;
    }
  }

  Json number() {
    std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad JSON number");
    Json j;
    j.type = Json::Type::kNumber;
    j.num = std::stod(s_.substr(start, pos_ - start));
    return j;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(ObsMetricsTest, CounterAndGaugeBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge g;
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
  g.add(10);
  EXPECT_EQ(g.value(), 3);
}

TEST(ObsMetricsTest, RegistryReturnsSameSeriesAndIsExactUnderParallelFor) {
  Registry& reg = Registry::global();
  Counter& c = reg.counter("atlas_test_parallel_incs_total");
  EXPECT_EQ(&c, &reg.counter("atlas_test_parallel_incs_total"));

  const std::uint64_t before = c.value();
  constexpr std::size_t kN = 100000;
  util::parallel_for(kN, 256, [&](std::size_t) {
    // Steady-state pattern: cached pointer, one relaxed fetch_add per hit.
    static Counter* cached =
        &Registry::global().counter("atlas_test_parallel_incs_total");
    cached->inc();
  });
  EXPECT_EQ(c.value(), before + kN);
}

TEST(ObsMetricsTest, KindConflictThrowsLogicError) {
  Registry& reg = Registry::global();
  reg.counter("atlas_test_kind_conflict");
  EXPECT_THROW(reg.gauge("atlas_test_kind_conflict"), std::logic_error);
  EXPECT_THROW(reg.histogram("atlas_test_kind_conflict"), std::logic_error);
}

TEST(ObsMetricsTest, HistogramBucketsAndPercentiles) {
  Histogram h;
  EXPECT_EQ(h.percentile(50), 0u);  // empty

  for (int i = 0; i < 90; ++i) h.record(100);   // bucket [64,128)
  for (int i = 0; i < 10; ++i) h.record(10000);  // bucket [8192,16384)
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 90u * 100u + 10u * 10000u);
  EXPECT_EQ(h.percentile(50), 128u);
  EXPECT_EQ(h.percentile(90), 128u);
  EXPECT_EQ(h.percentile(91), 16384u);
  EXPECT_EQ(h.percentile(99), 16384u);
  EXPECT_EQ(h.percentile(100), 16384u);
}

TEST(ObsMetricsTest, HistogramSingleSampleReturnsItsBucketForAllP) {
  Histogram h;
  h.record(100);  // bucket [64,128) -> bound 128
  for (double p : {0.001, 1.0, 25.0, 50.0, 75.0, 99.0, 100.0}) {
    EXPECT_EQ(h.percentile(p), 128u) << "p=" << p;
  }
}

TEST(ObsMetricsTest, HistogramOverflowBucketIsExplicit) {
  Histogram h;
  h.record(1);
  h.record(std::uint64_t{1} << 40);  // >= 2^32: overflow, not top bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.overflow_count(), 1u);
  EXPECT_EQ(h.percentile(50), 2u);
  EXPECT_EQ(h.percentile(100), Histogram::kOverflowBound);
}

TEST(ObsMetricsTest, HistogramZeroLandsInBucketZero) {
  Histogram h;
  h.record(0);
  h.record(1);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.percentile(100), 2u);
}

TEST(ObsMetricsTest, PrometheusRenderShapes) {
  Registry& reg = Registry::global();
  reg.counter("atlas_test_render_total", "endpoint=\"a\"").inc(3);
  reg.counter("atlas_test_render_total", "endpoint=\"b\"").inc(1);
  reg.gauge("atlas_test_render_gauge").set(-5);
  Histogram& h = reg.histogram("atlas_test_render_hist");
  h.record(100);
  h.record(100000);

  const std::string text = reg.render_prometheus();
  EXPECT_NE(text.find("# TYPE atlas_test_render_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("atlas_test_render_total{endpoint=\"a\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("atlas_test_render_total{endpoint=\"b\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE atlas_test_render_gauge gauge"),
            std::string::npos);
  EXPECT_NE(text.find("atlas_test_render_gauge -5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE atlas_test_render_hist histogram"),
            std::string::npos);
  // Cumulative buckets end in +Inf; _count and _sum are present.
  EXPECT_NE(text.find("atlas_test_render_hist_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("atlas_test_render_hist_count 2"), std::string::npos);
  EXPECT_NE(text.find("atlas_test_render_hist_sum 100100"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace
// ---------------------------------------------------------------------------

class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Trace::disable();
    Trace::clear();
  }
  void TearDown() override {
    Trace::disable();
    Trace::clear();
    Trace::set_output_path("");
  }
};

TEST_F(ObsTraceTest, DisabledSpansRecordNothing) {
  ASSERT_FALSE(trace_enabled());
  { ObsSpan span("test", "invisible"); }
  EXPECT_EQ(Trace::size(), 0u);
}

TEST_F(ObsTraceTest, SpansProduceValidChromeTraceJson) {
  Trace::enable();
  {
    ObsSpan outer("test", "outer");
    ObsSpan inner("test", std::string("inner_dyn"));
  }
  Trace::record_complete("test", "explicit", 10, 5);
  ASSERT_EQ(Trace::size(), 3u);

  const std::string json_text = Trace::render_chrome_json();
  Json root;
  ASSERT_NO_THROW(root = JsonParser(json_text).parse());
  ASSERT_EQ(root.type, Json::Type::kObject);
  ASSERT_TRUE(root.has("traceEvents"));
  EXPECT_EQ(root.at("displayTimeUnit").str, "ms");
  EXPECT_EQ(root.at("atlasDroppedEvents").num, 0.0);

  // The first event labels the process (real OS pid + name); the span
  // events follow, all under the same pid.
  const std::vector<Json>& events = root.at("traceEvents").arr;
  ASSERT_EQ(events.size(), 4u);
  const Json& meta = events.front();
  EXPECT_EQ(meta.at("ph").str, "M");
  EXPECT_EQ(meta.at("name").str, "process_name");
  EXPECT_GT(meta.at("pid").num, 0.0);
  std::vector<std::string> names;
  for (std::size_t i = 1; i < events.size(); ++i) {
    const Json& e = events[i];
    EXPECT_EQ(e.at("ph").str, "X");
    EXPECT_EQ(e.at("cat").str, "test");
    EXPECT_EQ(e.at("pid").num, meta.at("pid").num);
    EXPECT_GT(e.at("tid").num, 0.0);
    EXPECT_GE(e.at("dur").num, 0.0);
    names.push_back(e.at("name").str);
  }
  // Ring order is completion order: inner closes before outer.
  EXPECT_NE(std::find(names.begin(), names.end(), "outer"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "inner_dyn"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "explicit"), names.end());
}

TEST_F(ObsTraceTest, RingIsBoundedAndCountsDropped) {
  constexpr std::size_t kCap = 8;
  Trace::enable(kCap);
  for (int i = 0; i < 20; ++i) {
    Trace::record_complete("test", "e", static_cast<std::uint64_t>(i), 1);
  }
  EXPECT_EQ(Trace::size(), kCap);
  EXPECT_EQ(Trace::dropped(), 20u - kCap);

  const Json root = JsonParser(Trace::render_chrome_json()).parse();
  // +1: the process_name metadata event precedes the ring contents.
  EXPECT_EQ(root.at("traceEvents").arr.size(), kCap + 1);
  EXPECT_EQ(root.at("atlasDroppedEvents").num, static_cast<double>(20 - kCap));
  // Oldest events were overwritten: the surviving ones are the last kCap.
  EXPECT_EQ(root.at("traceEvents").arr[1].at("ts").num, 12.0);
}

TEST_F(ObsTraceTest, ConcurrentSpansFromParallelForAllLand) {
  Trace::enable();
  constexpr std::size_t kN = 64;
  util::parallel_for(kN, 1, [](std::size_t) {
    ObsSpan span("test", "worker_span");
  });
  // The pool may add its own "pool_batch" span, so count by name.
  Json root;
  ASSERT_NO_THROW(root = JsonParser(Trace::render_chrome_json()).parse());
  std::size_t worker_spans = 0;
  for (const Json& e : root.at("traceEvents").arr) {
    if (e.at("name").str == "worker_span") ++worker_spans;
  }
  EXPECT_EQ(worker_spans, kN);
}

TEST_F(ObsTraceTest, FlushFileReturnsFalseWithoutPath) {
  Trace::enable();
  Trace::set_output_path("");
  EXPECT_FALSE(Trace::flush_file());
}

// ---------------------------------------------------------------------------
// Distributed trace context
// ---------------------------------------------------------------------------

TEST_F(ObsTraceTest, MakeRootContextIsValidUniqueAndParentless) {
  const TraceContext a = make_root_context(/*sampled=*/true);
  const TraceContext b = make_root_context(/*sampled=*/true);
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(a.span_id, 0u);  // root: no enclosing span
  EXPECT_TRUE(a.trace_hi != b.trace_hi || a.trace_lo != b.trace_lo);
  EXPECT_FALSE(TraceContext{}.valid());
  EXPECT_FALSE(current_trace_context().valid());
}

TEST_F(ObsTraceTest, ContextScopeInstallsAndRestoresAmbient) {
  const TraceContext root = make_root_context(/*sampled=*/true);
  {
    TraceContextScope scope(root);
    const TraceContext seen = current_trace_context();
    EXPECT_EQ(seen.trace_hi, root.trace_hi);
    EXPECT_EQ(seen.trace_lo, root.trace_lo);
    EXPECT_EQ(seen.span_id, 0u);
    EXPECT_TRUE(seen.sampled);
  }
  EXPECT_FALSE(current_trace_context().valid());
}

TEST_F(ObsTraceTest, SpansUnderContextChainParentIds) {
  Trace::enable();
  const TraceContext root = make_root_context(/*sampled=*/true);
  std::uint64_t outer_id = 0;
  std::uint64_t inner_id = 0;
  {
    TraceContextScope scope(root);
    ObsSpan outer("test", "ctx_outer");
    outer_id = outer.span_id();
    EXPECT_NE(outer_id, 0u);
    // The outer span is now the ambient parent for nested work...
    EXPECT_EQ(current_trace_context().span_id, outer_id);
    {
      ObsSpan inner("test", "ctx_inner");
      inner_id = inner.span_id();
    }
    // ...and the chain unwinds as spans close.
    EXPECT_EQ(current_trace_context().span_id, outer_id);
  }
  const std::vector<TraceEventView> events = Trace::snapshot();
  ASSERT_EQ(events.size(), 2u);  // completion order: inner first
  const TraceEventView& inner = events[0];
  const TraceEventView& outer = events[1];
  EXPECT_EQ(inner.name, "ctx_inner");
  EXPECT_EQ(outer.name, "ctx_outer");
  EXPECT_EQ(inner.ids.trace_hi, root.trace_hi);
  EXPECT_EQ(inner.ids.trace_lo, root.trace_lo);
  EXPECT_EQ(outer.ids.trace_hi, root.trace_hi);
  EXPECT_EQ(outer.ids.parent_span_id, 0u);  // child of the root context
  EXPECT_EQ(inner.ids.parent_span_id, outer_id);
  EXPECT_EQ(inner.ids.span_id, inner_id);
  EXPECT_NE(inner_id, outer_id);
}

TEST_F(ObsTraceTest, SpanWithoutContextRecordsZeroIds) {
  Trace::enable();
  { ObsSpan span("test", "no_ctx"); }
  const std::vector<TraceEventView> events = Trace::snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ids.trace_hi | events[0].ids.trace_lo, 0u);
  EXPECT_EQ(events[0].ids.span_id, 0u);
}

TEST_F(ObsTraceTest, UnsampledContextChainsIdsWithoutRecording) {
  Trace::enable();
  const TraceContext root = make_root_context(/*sampled=*/false);
  TraceContextScope scope(root);
  TraceContext forwarded;
  {
    ObsSpan span("test", "unsampled");
    // The id chain must stay correct for downstream processes even though
    // nothing lands in this process's ring.
    forwarded = span.context();
  }
  EXPECT_EQ(Trace::size(), 0u);
  EXPECT_TRUE(forwarded.valid());
  EXPECT_NE(forwarded.span_id, 0u);
  EXPECT_FALSE(forwarded.sampled);
  EXPECT_EQ(forwarded.trace_hi, root.trace_hi);
}

TEST_F(ObsTraceTest, ContextChainsEvenWithTracingDisabledLocally) {
  ASSERT_FALSE(trace_enabled());
  const TraceContext root = make_root_context(/*sampled=*/true);
  TraceContextScope scope(root);
  ObsSpan outer("test", "relay_outer");
  ObsSpan inner("test", "relay_inner");
  // A relay process with tracing off still allocates ids and parents
  // correctly (this is what keeps router-less traces linkable), it just
  // records nothing.
  EXPECT_EQ(Trace::size(), 0u);
  EXPECT_NE(outer.span_id(), 0u);
  EXPECT_EQ(inner.context().span_id, current_trace_context().span_id);
  EXPECT_EQ(current_trace_context().trace_hi, root.trace_hi);
}

TEST_F(ObsTraceTest, JsonCarriesProcessNameAndSpanIdArgs) {
  Trace::set_process_name("unit_proc");
  Trace::enable();
  const TraceContext root = make_root_context(/*sampled=*/true);
  {
    TraceContextScope scope(root);
    ObsSpan span("test", "args_span");
  }
  const Json doc = JsonParser(Trace::render_chrome_json()).parse();
  const std::vector<Json>& events = doc.at("traceEvents").arr;
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("args").at("name").str, "unit_proc");
  const Json& args = events[1].at("args");
  EXPECT_EQ(args.at("trace_id").str.size(), 32u);  // 128-bit hex
  EXPECT_EQ(args.at("span_id").str.size(), 16u);
  EXPECT_EQ(args.at("parent_span_id").str.size(), 16u);
  EXPECT_NE(args.at("span_id").str, std::string(16, '0'));
  Trace::set_process_name("");
}

TEST_F(ObsTraceTest, MergeChromeJsonSplicesDocumentsAndSumsDropped) {
  constexpr std::size_t kCap = 4;
  Trace::enable(kCap);
  for (int i = 0; i < 6; ++i) {
    Trace::record_complete("test", "first_doc", static_cast<std::uint64_t>(i),
                           1);
  }
  const std::string doc1 = Trace::drain_chrome_json();  // 4 events, 2 dropped
  EXPECT_EQ(Trace::size(), 0u);  // drain has clear semantics
  Trace::record_complete("test", "second_doc", 100, 1);
  const std::string doc2 = Trace::drain_chrome_json();

  const std::string merged =
      merge_chrome_json({doc1, "not a trace document", doc2});
  Json root;
  ASSERT_NO_THROW(root = JsonParser(merged).parse());
  std::size_t first = 0;
  std::size_t second = 0;
  std::size_t meta = 0;
  for (const Json& e : root.at("traceEvents").arr) {
    if (e.at("name").str == "first_doc") ++first;
    if (e.at("name").str == "second_doc") ++second;
    if (e.at("name").str == "process_name") ++meta;
  }
  EXPECT_EQ(first, kCap);
  EXPECT_EQ(second, 1u);
  EXPECT_EQ(meta, 2u);  // one per source document
  EXPECT_EQ(root.at("atlasDroppedEvents").num, 2.0);
}

// ---------------------------------------------------------------------------
// Logger
// ---------------------------------------------------------------------------

class ObsLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lines_.clear();
    set_log_sink([this](const std::string& line) { lines_.push_back(line); });
    set_log_level(LogLevel::kInfo);
  }
  void TearDown() override {
    set_log_sink(nullptr);
    set_log_level(LogLevel::kInfo);
  }
  std::vector<std::string> lines_;
};

TEST_F(ObsLogTest, LevelFilteringSuppressesBelowMinimum) {
  LogLine(LogLevel::kDebug, "test").kv("event", "hidden");
  ASSERT_TRUE(lines_.empty());
  LogLine(LogLevel::kInfo, "test").kv("event", "shown");
  ASSERT_EQ(lines_.size(), 1u);

  set_log_level(LogLevel::kError);
  LogLine(LogLevel::kWarn, "test").kv("event", "hidden2");
  LogLine(LogLevel::kError, "test").kv("event", "shown2");
  ASSERT_EQ(lines_.size(), 2u);

  set_log_level(LogLevel::kOff);
  LogLine(LogLevel::kError, "test").kv("event", "hidden3");
  EXPECT_EQ(lines_.size(), 2u);
}

TEST_F(ObsLogTest, LineFormatAndValueTypes) {
  LogLine(LogLevel::kInfo, "mymod")
      .kv("str", "plain")
      .kv("quoted", "has spaces")
      .kv("n", 42)
      .kv("neg", -3)
      .kv("f", 1.5)
      .kv("flag", true);
  ASSERT_EQ(lines_.size(), 1u);
  const std::string& line = lines_[0];
  EXPECT_EQ(line.compare(0, 3, "ts="), 0);
  EXPECT_NE(line.find(" level=info "), std::string::npos);
  EXPECT_NE(line.find(" mod=mymod "), std::string::npos);
  EXPECT_NE(line.find(" str=plain"), std::string::npos);
  EXPECT_NE(line.find(" quoted=\"has spaces\""), std::string::npos);
  EXPECT_NE(line.find(" n=42"), std::string::npos);
  EXPECT_NE(line.find(" neg=-3"), std::string::npos);
  EXPECT_NE(line.find(" flag=true"), std::string::npos);
  EXPECT_EQ(line.back(), '\n');
}

TEST_F(ObsLogTest, ParseLogLevelNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kInfo);
}

TEST_F(ObsLogTest, LogEnabledMatchesMinimumLevel) {
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
}

}  // namespace
}  // namespace atlas::obs
