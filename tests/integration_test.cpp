// Cross-module integration tests: whole-pipeline invariants that no single
// module test can see, run at small scale.
#include <gtest/gtest.h>

#include <unordered_map>

#include "atlas/preprocess.h"
#include "layout/layout_flow.h"
#include "liberty/liberty_io.h"
#include "netlist/verilog_io.h"
#include "power/power_report.h"
#include "sim/vcd.h"
#include "transform/rewrite.h"

namespace atlas {
namespace {

using netlist::NetId;
using netlist::Netlist;

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = new liberty::Library(liberty::make_default_library());
    core::PreprocessConfig cfg;
    cfg.cycles = 30;
    data_ = new core::DesignData(core::prepare_design(
        designgen::paper_design_spec(3, 0.002), *lib_, cfg));
  }
  static void TearDownTestSuite() {
    delete data_;
    delete lib_;
    data_ = nullptr;
    lib_ = nullptr;
  }

  static liberty::Library* lib_;
  static core::DesignData* data_;
};

liberty::Library* IntegrationTest::lib_ = nullptr;
core::DesignData* IntegrationTest::data_ = nullptr;

/// All three netlist stages stay functionally equivalent on register values.
TEST_F(IntegrationTest, ThreeStageFunctionalEquivalence) {
  const Netlist& gate = data_->gate;
  auto name_to_net = [](const Netlist& nl) {
    std::unordered_map<std::string, NetId> m;
    for (NetId n = 0; n < nl.num_nets(); ++n) m.emplace(nl.net(n).name, n);
    return m;
  };
  const auto plus_names = name_to_net(data_->plus);
  const auto post_names = name_to_net(data_->layout.netlist);
  const auto& wl = data_->workloads[0];
  std::size_t checked = 0;
  for (netlist::CellInstId id = 0; id < gate.num_cells(); ++id) {
    if (!liberty::is_sequential(gate.lib_cell(id).func)) continue;
    const NetId q = gate.output_net(id);
    const auto& qname = gate.net(q).name;
    const auto ip = plus_names.find(qname);
    const auto io = post_names.find(qname);
    ASSERT_NE(ip, plus_names.end());
    ASSERT_NE(io, post_names.end());
    for (int c = 0; c < 30; ++c) {
      ASSERT_EQ(wl.gate_trace.value(c, q), wl.plus_trace.value(c, ip->second))
          << qname << " cycle " << c << " (N_g vs N_g+)";
      ASSERT_EQ(wl.gate_trace.value(c, q), wl.post_trace.value(c, io->second))
          << qname << " cycle " << c << " (N_g vs N_p)";
    }
    ++checked;
  }
  EXPECT_GT(checked, 50u);
}

/// Golden power strictly exceeds gate-level power (wires, buffers, clock).
TEST_F(IntegrationTest, LayoutPowerExceedsGateLevelPower) {
  for (const auto& wl : data_->workloads) {
    const power::GroupPower g = wl.golden.average_design();
    const power::GroupPower b = wl.gate_level.average_design();
    EXPECT_GT(g.total_no_memory(), b.total_no_memory());
    EXPECT_GT(g.comb, b.comb);
    EXPECT_GT(g.clock, 0.0);
    EXPECT_DOUBLE_EQ(b.clock, 0.0);
  }
}

/// Full file-format round trip: Verilog + Liberty + SPEF + VCD reproduce the
/// golden power analysis bit-for-bit from disk artifacts.
TEST_F(IntegrationTest, PowerFromDiskArtifactsMatches) {
  const std::string dir = ::testing::TempDir();
  const Netlist& post = data_->layout.netlist;
  const auto& wl = data_->workloads[0];

  liberty::save_liberty_file(*lib_, dir + "/it.lib");
  netlist::save_verilog_file(post, dir + "/it.v");
  layout::save_spef_file(post, data_->layout.parasitics, dir + "/it.spef");

  const liberty::Library lib2 = liberty::load_liberty_file(dir + "/it.lib");
  Netlist post2 = netlist::load_verilog_file(dir + "/it.v", lib2);
  const layout::Parasitics par2 = layout::load_spef_file(dir + "/it.spef", post2);
  layout::annotate(post2, par2);
  EXPECT_NO_THROW(post2.check());

  // Re-simulate the same workload on the reloaded netlist.
  sim::CycleSimulator sim2(post2);
  sim::StimulusGenerator stim2(post2, sim::make_w1());
  const sim::ToggleTrace trace2 = sim2.run(stim2, 30);
  const power::PowerResult result2 = power::analyze_power(post2, trace2);

  const power::GroupPower a = wl.golden.average_design();
  const power::GroupPower b = result2.average_design();
  EXPECT_NEAR(b.total(), a.total(), a.total() * 1e-4);
  EXPECT_NEAR(b.clock, a.clock, a.clock * 1e-4);
  EXPECT_NEAR(b.comb, a.comb, a.comb * 1e-4);
}

/// The rewritten netlist N_g+ has ~equal gate-level power character: same
/// registers, slightly different comb structure.
TEST_F(IntegrationTest, RewrittenNetlistPowerIsClose) {
  const auto& wl = data_->workloads[0];
  const power::PowerResult plus_power =
      power::analyze_power(data_->plus, wl.plus_trace);
  const power::GroupPower a = wl.gate_level.average_design();
  const power::GroupPower b = plus_power.average_design();
  EXPECT_NEAR(b.reg, a.reg, a.reg * 0.1);
  EXPECT_NEAR(b.comb, a.comb, a.comb * 0.5);
}

/// Per-cycle golden power is deterministic end to end.
TEST_F(IntegrationTest, PipelineDeterminism) {
  core::PreprocessConfig cfg;
  cfg.cycles = 30;
  const core::DesignData again = core::prepare_design(
      designgen::paper_design_spec(3, 0.002), *lib_, cfg);
  for (int c = 0; c < 30; c += 5) {
    EXPECT_DOUBLE_EQ(again.workloads[0].golden.design(c).total(),
                     data_->workloads[0].golden.design(c).total());
  }
}

/// Clock-tree power responds to gating: a workload with more enable
/// activity produces different per-cycle clock power.
TEST_F(IntegrationTest, ClockPowerTracksGating) {
  const auto clock_series =
      power::series_of(data_->workloads[0].golden, power::Series::kClock);
  const auto [mn, mx] = std::minmax_element(clock_series.begin() + 3,
                                            clock_series.end());
  EXPECT_GT(*mx, *mn) << "ICGs must modulate clock-tree power";
}

}  // namespace
}  // namespace atlas
