#include <gtest/gtest.h>

#include "designgen/design_generator.h"
#include "graph/submodule_graph.h"
#include "liberty/library.h"
#include "sim/simulator.h"
#include "sim/stimulus.h"

namespace atlas::graph {
namespace {

using netlist::Netlist;

class GraphTest : public ::testing::Test {
 protected:
  GraphTest()
      : lib_(liberty::make_default_library()),
        nl_(designgen::generate_design(designgen::paper_design_spec(1, 0.003),
                                       lib_)) {}

  liberty::Library lib_;
  Netlist nl_;
};

TEST_F(GraphTest, FeatureLayoutConstants) {
  EXPECT_EQ(kFeatureDim, 24);
  EXPECT_EQ(kToggleOffset, 18);
  EXPECT_LT(kMaskToggleFlag, kFeatureDim);
  EXPECT_LT(kCapOffset, kFeatureDim);
}

TEST_F(GraphTest, BuildsGraphForEverySubmodule) {
  const auto graphs = build_submodule_graphs(nl_);
  EXPECT_EQ(graphs.size(), nl_.submodules().size());
  std::size_t covered = 0;
  for (const auto& g : graphs) {
    EXPECT_GT(g.num_nodes(), 0u);
    EXPECT_EQ(g.static_features.rows(), g.num_nodes());
    EXPECT_EQ(g.static_features.cols(),
              static_cast<std::size_t>(kFeatureDim));
    covered += g.num_nodes();
  }
  EXPECT_EQ(covered, nl_.num_cells());
}

TEST_F(GraphTest, OneHotTypesAreConsistent) {
  const auto g = build_submodule_graph(nl_, 0);
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    int ones = 0;
    int hot = -1;
    for (int t = 0; t < liberty::kNumNodeTypes; ++t) {
      if (g.static_features.at(i, static_cast<std::size_t>(kTypeOffset + t)) == 1.0f) {
        ++ones;
        hot = t;
      }
    }
    EXPECT_EQ(ones, 1);
    EXPECT_EQ(hot, g.node_type[i]);
    EXPECT_EQ(hot, static_cast<int>(nl_.lib_cell(g.cells[i]).type));
  }
}

TEST_F(GraphTest, EdgesStayInsideSubmodule) {
  for (const auto& g : build_submodule_graphs(nl_)) {
    for (const auto& [src, dst] : g.edges) {
      ASSERT_LT(src, g.num_nodes());
      ASSERT_LT(dst, g.num_nodes());
      // Edge direction follows driver -> sink in the netlist.
      const netlist::NetId net = g.out_net[src];
      ASSERT_NE(net, netlist::kNoNet);
      bool found = false;
      for (const auto& s : nl_.net(net).sinks) found = found || s.cell == g.cells[dst];
      EXPECT_TRUE(found);
    }
  }
}

TEST_F(GraphTest, MaskFlagsStartZero) {
  const auto g = build_submodule_graph(nl_, 0);
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    EXPECT_EQ(g.static_features.at(i, kMaskToggleFlag), 0.0f);
    EXPECT_EQ(g.static_features.at(i, kMaskTypeFlag), 0.0f);
    EXPECT_EQ(g.static_features.at(i, kToggleOffset), 0.0f);
  }
}

TEST_F(GraphTest, PowerFeaturesPositive) {
  const auto g = build_submodule_graph(nl_, 0);
  int with_energy = 0;
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    EXPECT_GE(g.static_features.at(i, kLeakageOffset), 0.0f);
    with_energy += g.static_features.at(i, kInternalOffset) > 0.0f;
  }
  EXPECT_GT(with_energy, static_cast<int>(g.num_nodes() / 2));
}

TEST_F(GraphTest, CycleFeaturesTrackToggles) {
  sim::CycleSimulator sim(nl_);
  sim::StimulusGenerator stim(nl_, sim::make_w1());
  const sim::ToggleTrace trace = sim.run(stim, 20);
  const auto g = build_submodule_graph(nl_, 0);
  ml::Matrix feats;
  fill_cycle_features(g, trace, 10, feats);
  ASSERT_EQ(feats.rows(), g.num_nodes());
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    const netlist::NetId net = g.out_net[i];
    if (net == netlist::kNoNet) continue;
    EXPECT_FLOAT_EQ(feats.at(i, kToggleOffset),
                    static_cast<float>(trace.transitions(10, net)) * 0.5f);
    // Static channels untouched.
    EXPECT_FLOAT_EQ(feats.at(i, kCapOffset), g.static_features.at(i, kCapOffset));
  }
}

TEST_F(GraphTest, ViewExposesCorrectShape) {
  const auto g = build_submodule_graph(nl_, 0);
  const ml::GraphView v = g.view();
  EXPECT_EQ(v.num_nodes, g.num_nodes());
  EXPECT_EQ(v.feat_dim, static_cast<std::size_t>(kFeatureDim));
  EXPECT_EQ(v.edges, &g.edges);
  ml::Matrix wrong(g.num_nodes(), 3);
  EXPECT_THROW(view_with_features(g, wrong), std::invalid_argument);
}

TEST_F(GraphTest, EmptySubmoduleThrows) {
  Netlist empty("e", lib_);
  empty.add_component("c");
  const auto sm = empty.add_submodule("s", "r", 0);
  EXPECT_THROW(build_submodule_graph(empty, sm), std::invalid_argument);
}

}  // namespace
}  // namespace atlas::graph
