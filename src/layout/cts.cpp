#include "layout/cts.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <string>

namespace atlas::layout {

using liberty::CellFunc;
using netlist::CellInstId;
using netlist::kNoNet;
using netlist::NetId;
using netlist::PinRef;
using netlist::SubmoduleId;

namespace {

struct ClockSink {
  PinRef pin;              // the CK/CLK input pin to re-home
  Point pos;
  SubmoduleId submodule;
};

/// Majority sub-module of a group of sinks.
SubmoduleId majority_submodule(const std::vector<ClockSink>& group) {
  std::map<SubmoduleId, int> votes;
  for (const ClockSink& s : group) ++votes[s.submodule];
  SubmoduleId best = netlist::kNoSubmodule;
  int best_votes = -1;
  for (const auto& [sm, v] : votes) {
    if (v > best_votes) {
      best = sm;
      best_votes = v;
    }
  }
  return best;
}

Point centroid(const std::vector<ClockSink>& group) {
  Point c;
  for (const ClockSink& s : group) {
    c.x += s.pos.x;
    c.y += s.pos.y;
  }
  if (!group.empty()) {
    c.x /= static_cast<double>(group.size());
    c.y /= static_cast<double>(group.size());
  }
  return c;
}

}  // namespace

CtsStats synthesize_clock_tree(netlist::Netlist& nl, Placement& pl,
                               const CtsConfig& config) {
  CtsStats stats;
  const NetId root = nl.clock_net();
  if (root == kNoNet) {
    throw std::invalid_argument("synthesize_clock_tree: netlist has no clock net");
  }
  const liberty::Library& lib = nl.library();
  const liberty::CellId ckgate = lib.cell_for(CellFunc::kCkGate, 2);
  const liberty::CellId ckbuf = lib.cell_for(CellFunc::kCkBuf, 4);

  // -------------------------------------------------------------------------
  // Phase 1: clock-gating conversion.
  // Detect DFFs whose D is MUX2(Q, next, EN): group by (EN net, sub-module).
  // -------------------------------------------------------------------------
  struct GateCandidate {
    CellInstId reg;
    CellInstId mux;
    NetId next_value;  // mux B leg
  };
  std::map<std::pair<NetId, SubmoduleId>, std::vector<GateCandidate>> groups;
  for (CellInstId id = 0; id < nl.num_cells(); ++id) {
    if (nl.lib_cell(id).func != CellFunc::kDff) continue;
    if (nl.cell(id).pin_nets[1] != root) continue;  // only root-clocked regs
    const NetId d = nl.cell(id).pin_nets[0];
    const netlist::Net& dn = nl.net(d);
    if (!dn.has_driver() || dn.sinks.size() != 1) continue;
    const CellInstId mux = dn.driver.cell;
    if (nl.lib_cell(mux).func != CellFunc::kMux2) continue;
    const auto& mpins = nl.cell(mux).pin_nets;
    if (mpins[0] != nl.output_net(id)) continue;  // A leg must recirculate Q
    const NetId en = mpins[2];
    groups[{en, nl.cell(id).submodule}].push_back(
        GateCandidate{id, mux, mpins[1]});
  }
  for (const auto& [key, cands] : groups) {
    if (static_cast<int>(cands.size()) < config.min_gate_group) continue;
    const auto [en, sm] = key;
    const NetId gck = nl.add_net("gck" + std::to_string(nl.num_nets()));
    nl.add_cell("icg" + std::to_string(nl.num_cells()), ckgate, {root, en, gck},
                sm);
    // Place the ICG at the centroid of its registers.
    Point c;
    for (const GateCandidate& g : cands) {
      c.x += pl.of(g.reg).x;
      c.y += pl.of(g.reg).y;
    }
    c.x /= static_cast<double>(cands.size());
    c.y /= static_cast<double>(cands.size());
    pl.append(c);
    for (const GateCandidate& g : cands) {
      nl.disconnect_cell(g.mux);
      nl.move_pin(g.reg, /*D pin*/ 0, g.next_value);
      nl.move_pin(g.reg, /*CK pin*/ 1, gck);
      ++stats.gated_registers;
    }
    ++stats.icgs;
  }

  // -------------------------------------------------------------------------
  // Phase 2: balanced buffer tree over every sink still on the root net.
  // -------------------------------------------------------------------------
  auto collect_sinks = [&]() {
    std::vector<ClockSink> sinks;
    for (const PinRef& s : nl.net(root).sinks) {
      sinks.push_back(ClockSink{s, pl.of(s.cell), nl.cell(s.cell).submodule});
    }
    return sinks;
  };
  std::vector<ClockSink> level = collect_sinks();
  int fanout = config.max_leaf_fanout;
  while (static_cast<int>(level.size()) > config.max_branch_fanout) {
    // Geographic clustering: sort by coarse row, then x.
    std::sort(level.begin(), level.end(),
              [](const ClockSink& a, const ClockSink& b) {
                const double ya = std::floor(a.pos.y / 12.0);
                const double yb = std::floor(b.pos.y / 12.0);
                if (ya != yb) return ya < yb;
                return a.pos.x < b.pos.x;
              });
    std::vector<ClockSink> next_level;
    for (std::size_t i = 0; i < level.size();
         i += static_cast<std::size_t>(fanout)) {
      const std::size_t end =
          std::min(i + static_cast<std::size_t>(fanout), level.size());
      std::vector<ClockSink> group(level.begin() + static_cast<long>(i),
                                   level.begin() + static_cast<long>(end));
      const SubmoduleId sm = majority_submodule(group);
      const NetId bnet = nl.add_net("ckn" + std::to_string(nl.num_nets()));
      const CellInstId buf = nl.add_cell(
          "ckb" + std::to_string(nl.num_cells()), ckbuf, {root, bnet}, sm);
      const Point c = centroid(group);
      pl.append(c);
      for (const ClockSink& s : group) nl.move_pin(s.pin.cell, s.pin.pin, bnet);
      next_level.push_back(ClockSink{PinRef{buf, 0}, c, sm});
      ++stats.clock_buffers;
    }
    level = std::move(next_level);
    fanout = config.max_branch_fanout;
    ++stats.tree_levels;
  }

  const auto cell_map = nl.compact();
  pl.remap(cell_map);
  nl.check();
  return stats;
}

}  // namespace atlas::layout
