#include "layout/spef.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "util/strings.h"

namespace atlas::layout {

std::string write_spef(const netlist::Netlist& nl, const Parasitics& parasitics) {
  std::ostringstream os;
  os << "*SPEF \"IEEE 1481-1998\"\n";
  os << "*DESIGN \"" << nl.name() << "\"\n";
  os << "*PROGRAM \"atlas layout flow\"\n";
  os << "*T_UNIT 1 NS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n*L_UNIT 1 HENRY\n";
  os << "*NAME_MAP\n";
  for (netlist::NetId net = 0; net < nl.num_nets(); ++net) {
    os << "*" << net + 1 << " " << nl.net(net).name << "\n";
  }
  for (netlist::NetId net = 0; net < nl.num_nets(); ++net) {
    os << "*D_NET *" << net + 1 << " "
       << util::format("%.6f", parasitics.wire_cap_ff.at(net)) << "\n*END\n";
  }
  return os.str();
}

Parasitics parse_spef(std::string_view text, const netlist::Netlist& nl) {
  std::unordered_map<std::string, netlist::NetId> by_name;
  for (netlist::NetId net = 0; net < nl.num_nets(); ++net) {
    by_name.emplace(nl.net(net).name, net);
  }
  std::unordered_map<std::string, netlist::NetId> name_map;  // "*k" -> net
  Parasitics out;
  out.wire_cap_ff.assign(nl.num_nets(), 0.0);

  std::istringstream is{std::string(text)};
  std::string line;
  bool in_name_map = false;
  std::size_t dnets = 0;
  while (std::getline(is, line)) {
    const auto t = util::trim(line);
    if (t.empty()) continue;
    if (util::starts_with(t, "*NAME_MAP")) {
      in_name_map = true;
      continue;
    }
    if (util::starts_with(t, "*D_NET")) {
      in_name_map = false;
      const auto parts = util::split_ws(t);
      if (parts.size() < 3) throw std::runtime_error("spef: malformed *D_NET");
      const auto it = name_map.find(parts[1]);
      if (it == name_map.end()) {
        throw std::runtime_error("spef: *D_NET references unmapped name " + parts[1]);
      }
      out.wire_cap_ff[it->second] = std::stod(parts[2]);
      ++dnets;
      continue;
    }
    if (in_name_map && util::starts_with(t, "*")) {
      const auto parts = util::split_ws(t);
      if (parts.size() != 2) throw std::runtime_error("spef: malformed name map entry");
      const auto net_it = by_name.find(parts[1]);
      if (net_it == by_name.end()) {
        throw std::runtime_error("spef: unknown net " + parts[1]);
      }
      name_map.emplace(parts[0], net_it->second);
      continue;
    }
    // Header lines and *END markers are skipped.
  }
  if (dnets == 0) throw std::runtime_error("spef: no *D_NET sections found");
  return out;
}

void save_spef_file(const netlist::Netlist& nl, const Parasitics& parasitics,
                    const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  os << write_spef(nl, parasitics);
  if (!os) throw std::runtime_error("write failed: " + path);
}

Parasitics load_spef_file(const std::string& path, const netlist::Netlist& nl) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse_spef(buf.str(), nl);
}

}  // namespace atlas::layout
