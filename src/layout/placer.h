// Placement model.
//
// Substitutes for Innovus mixed-size placement. Cells are packed in
// sub-module order (components contiguous, sub-modules contiguous inside
// them) along a serpentine row curve sized from total cell area — giving the
// intra-module locality and inter-module distance that make wire length, and
// therefore extracted wire capacitance, realistic in shape: short nets inside
// a sub-module, long nets between components.
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace atlas::layout {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Cell coordinates in micrometres, indexed by CellInstId. Grows as the
/// layout flow inserts buffers / clock cells.
class Placement {
 public:
  Placement() = default;
  explicit Placement(std::size_t num_cells) : pos_(num_cells) {}

  std::size_t size() const { return pos_.size(); }
  const Point& of(netlist::CellInstId id) const { return pos_.at(id); }
  void set(netlist::CellInstId id, Point p);
  /// Register a newly added cell at the given location.
  void append(Point p) { pos_.push_back(p); }

  /// Follow a Netlist::compact() renumbering (old->new map, kNoCell dropped).
  void remap(const std::vector<netlist::CellInstId>& cell_map);

  /// Die edge length (set by the placer).
  double die_size_um = 0.0;

  /// Half-perimeter wire length of a net under this placement (um).
  /// Primary-I/O nets anchor at the die edge (x = 0).
  double net_hpwl(const netlist::Netlist& nl, netlist::NetId net) const;

 private:
  std::vector<Point> pos_;
};

struct PlacerConfig {
  double row_height_um = 1.4;   // standard-cell row pitch
  double utilization = 0.70;    // area utilization target
};

/// Place all cells of `nl`. Deterministic.
Placement place(const netlist::Netlist& nl, const PlacerConfig& config = {});

}  // namespace atlas::layout
