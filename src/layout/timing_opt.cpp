#include "layout/timing_opt.h"

#include <algorithm>
#include <string>

namespace atlas::layout {

using liberty::CellFunc;
using netlist::CellInstId;
using netlist::NetId;

namespace {

Point centroid(const Placement& pl,
               const std::vector<netlist::PinRef>& sinks) {
  Point c;
  if (sinks.empty()) return c;
  for (const netlist::PinRef& s : sinks) {
    c.x += pl.of(s.cell).x;
    c.y += pl.of(s.cell).y;
  }
  c.x /= static_cast<double>(sinks.size());
  c.y /= static_cast<double>(sinks.size());
  return c;
}

}  // namespace

TimingOptStats optimize_timing(netlist::Netlist& nl, Placement& pl,
                               const TimingOptConfig& config) {
  TimingOptStats stats;
  const liberty::Library& lib = nl.library();
  const liberty::CellId buf_x4 = lib.cell_for(CellFunc::kBuf, 4);

  for (int pass = 0; pass < config.max_passes; ++pass) {
    ++stats.passes;
    annotate(nl, extract(nl, pl, config.extract));
    bool changed = false;
    const std::size_t cells_this_pass = nl.num_cells();
    for (CellInstId id = 0; id < cells_this_pass; ++id) {
      const liberty::Cell& lc = nl.lib_cell(id);
      const int out_pin = lc.output_pin();
      if (out_pin < 0) continue;
      const NetId out = nl.cell(id).pin_nets[static_cast<std::size_t>(out_pin)];
      if (out == nl.clock_net()) continue;  // CTS owns the clock network
      double load = net_load_ff(nl, out);
      double limit = lc.pins[static_cast<std::size_t>(out_pin)].max_cap_ff *
                     config.headroom;
      // 1. Upsize through the drive ladder.
      while (load > limit) {
        const auto up = lib.next_drive_up(nl.cell(id).lib_cell);
        if (!up) break;
        nl.resize_cell(id, *up);
        ++stats.resized;
        changed = true;
        const liberty::Cell& stronger = nl.lib_cell(id);
        limit = stronger.pins[static_cast<std::size_t>(out_pin)].max_cap_ff *
                config.headroom;
      }
      // 2. Still overloaded: split sinks behind buffers. A single-sink net
      //    gets a relay buffer at the wire midpoint, halving the driver's
      //    wire load per pass.
      if (load > limit && !nl.net(out).sinks.empty()) {
        // Sort a copy of the sinks by position so each buffer serves a
        // spatially coherent cluster.
        std::vector<netlist::PinRef> sinks = nl.net(out).sinks;
        std::sort(sinks.begin(), sinks.end(),
                  [&](const netlist::PinRef& a, const netlist::PinRef& b) {
                    const Point& pa = pl.of(a.cell);
                    const Point& pb = pl.of(b.cell);
                    return pa.x + pa.y < pb.x + pb.y;
                  });
        const std::size_t chunk =
            std::max<std::size_t>(1, static_cast<std::size_t>(config.buffer_fanout));
        const netlist::SubmoduleId sm = nl.cell(id).submodule;
        for (std::size_t i = 0; i < sinks.size(); i += chunk) {
          const std::size_t end = std::min(i + chunk, sinks.size());
          std::vector<netlist::PinRef> group(sinks.begin() + static_cast<long>(i),
                                             sinks.begin() + static_cast<long>(end));
          const NetId bnet = nl.add_net("buf_n" + std::to_string(nl.num_nets()));
          nl.add_cell("tbuf" + std::to_string(nl.num_cells()), buf_x4,
                      {out, bnet}, sm);
          // Midpoint between driver and cluster: splits long wires so the
          // driver's wire load actually shrinks.
          const Point c = centroid(pl, group);
          const Point d = pl.of(id);
          pl.append(Point{0.5 * (c.x + d.x), 0.5 * (c.y + d.y)});
          for (const netlist::PinRef& s : group) nl.move_pin(s.cell, s.pin, bnet);
          ++stats.buffers_inserted;
        }
        changed = true;
      }
    }
    if (!changed) break;
  }
  annotate(nl, extract(nl, pl, config.extract));
  return stats;
}

}  // namespace atlas::layout
