// Parasitic extraction.
//
// Substitutes for Innovus detailed-route RC extraction. Wire capacitance per
// net is modeled as HPWL x unit capacitance (plus a per-sink via/branch
// overhead) — the standard Steiner-free estimate. The result can be
// annotated onto the netlist (Net::wire_cap_ff) and round-tripped through
// the SPEF-subset writer/parser (spef.h), which is what PTPX consumes in the
// paper's golden flow.
#pragma once

#include <vector>

#include "layout/placer.h"
#include "netlist/netlist.h"

namespace atlas::layout {

struct ExtractConfig {
  double cap_per_um_ff = 0.22;   // 40nm-class routed wire capacitance
  double via_cap_ff = 0.08;      // per-sink branch/via overhead
  /// Routing detour factor over HPWL.
  double route_factor = 1.15;
};

struct Parasitics {
  /// Wire capacitance in fF, indexed by NetId.
  std::vector<double> wire_cap_ff;

  double total_cap_ff() const;
};

/// Extract wire caps for every net under the given placement.
Parasitics extract(const netlist::Netlist& nl, const Placement& pl,
                   const ExtractConfig& config = {});

/// Copy extracted caps onto the netlist's Net::wire_cap_ff fields.
void annotate(netlist::Netlist& nl, const Parasitics& parasitics);

/// Total capacitive load seen by a net's driver: wire cap (from the netlist
/// annotation) plus all sink input-pin caps. Used by timing optimization and
/// the power analyzer.
double net_load_ff(const netlist::Netlist& nl, netlist::NetId net);

}  // namespace atlas::layout
