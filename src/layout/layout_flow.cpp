#include "layout/layout_flow.h"

namespace atlas::layout {

LayoutResult run_layout(const netlist::Netlist& gate_level,
                        const LayoutConfig& config) {
  netlist::Netlist nl = gate_level;  // value copy; library reference shared
  nl.set_name(gate_level.name() + "_layout");

  Placement pl = place(nl, config.placer);
  TimingOptConfig timing = config.timing;
  timing.extract = config.extract;
  const TimingOptStats timing_stats = optimize_timing(nl, pl, timing);
  const CtsStats cts_stats = synthesize_clock_tree(nl, pl, config.cts);

  Parasitics parasitics = extract(nl, pl, config.extract);
  annotate(nl, parasitics);
  nl.check();

  return LayoutResult{std::move(nl), std::move(pl), std::move(parasitics),
                      timing_stats, cts_stats};
}

}  // namespace atlas::layout
