#include "layout/placer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace atlas::layout {

using netlist::CellInstId;
using netlist::NetId;

void Placement::set(CellInstId id, Point p) { pos_.at(id) = p; }

void Placement::remap(const std::vector<CellInstId>& cell_map) {
  std::vector<Point> next;
  next.reserve(pos_.size());
  // cell_map is monotone over kept cells, so a single forward pass suffices.
  for (std::size_t old = 0; old < cell_map.size() && old < pos_.size(); ++old) {
    if (cell_map[old] != netlist::kNoCell) next.push_back(pos_[old]);
  }
  pos_ = std::move(next);
}

double Placement::net_hpwl(const netlist::Netlist& nl, NetId net) const {
  const netlist::Net& n = nl.net(net);
  double min_x = 0, max_x = 0, min_y = 0, max_y = 0;
  bool first = true;
  auto visit = [&](const Point& p) {
    if (first) {
      min_x = max_x = p.x;
      min_y = max_y = p.y;
      first = false;
    } else {
      min_x = std::min(min_x, p.x);
      max_x = std::max(max_x, p.x);
      min_y = std::min(min_y, p.y);
      max_y = std::max(max_y, p.y);
    }
  };
  if (n.has_driver()) visit(of(n.driver.cell));
  for (const netlist::PinRef& s : n.sinks) visit(of(s.cell));
  // Primary I/O anchors at the left die edge at mid-height.
  if (n.is_primary_input || n.is_primary_output) {
    visit(Point{0.0, die_size_um * 0.5});
  }
  if (first) return 0.0;
  return (max_x - min_x) + (max_y - min_y);
}

Placement place(const netlist::Netlist& nl, const PlacerConfig& config) {
  if (config.utilization <= 0.0 || config.utilization > 1.0) {
    throw std::invalid_argument("place: utilization must be in (0, 1]");
  }
  // Macros (SRAMs) are placed in a strip above the standard-cell region;
  // the die is sized from standard-cell area only.
  constexpr double kMacroAreaThreshold = 200.0;
  double std_area = 0.0;
  std::vector<CellInstId> macros;
  for (CellInstId id = 0; id < nl.num_cells(); ++id) {
    const double a = nl.lib_cell(id).area_um2;
    if (a > kMacroAreaThreshold) {
      macros.push_back(id);
    } else {
      std_area += a;
    }
  }
  const double die = std::sqrt(std::max(std_area, 1.0) / config.utilization);

  // Order: standard cells grouped by (component, sub-module), preserving
  // generation order inside each group; untagged cells go last.
  std::vector<CellInstId> order;
  order.reserve(nl.num_cells());
  for (CellInstId id = 0; id < nl.num_cells(); ++id) {
    if (nl.lib_cell(id).area_um2 <= kMacroAreaThreshold) order.push_back(id);
  }
  auto group_key = [&](CellInstId id) -> std::pair<int, int> {
    const auto sm = nl.cell(id).submodule;
    if (sm == netlist::kNoSubmodule) return {1 << 20, 1 << 20};
    const auto& s = nl.submodules()[static_cast<std::size_t>(sm)];
    return {s.component, static_cast<int>(sm)};
  };
  std::stable_sort(order.begin(), order.end(), [&](CellInstId a, CellInstId b) {
    return group_key(a) < group_key(b);
  });

  Placement pl(nl.num_cells());
  pl.die_size_um = die;
  double x = 0.0;
  double y = 0.0;
  int row = 0;
  const double row_h = config.row_height_um;
  for (const CellInstId id : order) {
    const double w =
        std::max(0.4, nl.lib_cell(id).area_um2 / row_h);  // cell width in row
    if (x + w > die) {
      ++row;
      x = 0.0;
      y = row * row_h;
    }
    // Serpentine: odd rows fill right-to-left for locality at row turns.
    const double cx = (row % 2 == 0) ? x + w * 0.5 : die - (x + w * 0.5);
    pl.set(id, Point{cx, y + row_h * 0.5});
    x += w;
  }
  // Macro strip above the standard-cell region.
  double mx = 0.0;
  const double strip_y = (row + 2) * row_h;
  for (const CellInstId id : macros) {
    const double side = std::sqrt(nl.lib_cell(id).area_um2);
    pl.set(id, Point{mx + side * 0.5, strip_y + side * 0.5});
    mx += side + 2.0;
  }
  return pl;
}

}  // namespace atlas::layout
