// Clock-tree synthesis with clock-gating conversion.
//
// Substitutes for Innovus CTS. Two phases:
//
// 1. Clock-gating conversion. Registers built with the recirculating-mux
//    enable idiom (D = EN ? next : Q) are detected structurally; groups of
//    at least `min_gate_group` registers sharing an enable net inside one
//    sub-module are converted to an integrated clock gate (CKGATE): the mux
//    disappears, D connects to the mux's data leg, and the register clock
//    pins move onto the gated clock. This is functionally exact (the ICG
//    samples its enable one phase early, which matches the mux's one-cycle
//    semantics in our cycle simulator) and is why the post-layout clock-tree
//    power varies per cycle — the effect ATLAS's F_CT model must capture.
//
// 2. Balanced buffer-tree construction over all clock sinks (register CK
//    pins, ICG CK pins, macro CLK pins): sinks are clustered geographically
//    into groups behind placed CKBUFs, recursively, until the root fanout is
//    acceptable. Each clock cell is attributed to the sub-module that owns
//    the majority of its fanout, keeping the sub-module partition a true
//    partition post-layout.
#pragma once

#include "layout/placer.h"
#include "netlist/netlist.h"

namespace atlas::layout {

struct CtsConfig {
  int min_gate_group = 3;    // registers sharing an enable to justify an ICG
  int max_leaf_fanout = 8;  // sinks per leaf clock buffer
  int max_branch_fanout = 4; // buffers per upper-level buffer
};

struct CtsStats {
  int icgs = 0;
  int gated_registers = 0;
  int clock_buffers = 0;
  int tree_levels = 0;
};

/// Run CTS in place. New cells are appended to `pl`; the netlist is
/// compacted (removed recirculation muxes disappear) and `pl` follows the
/// renumbering. The netlist passes check() afterwards.
CtsStats synthesize_clock_tree(netlist::Netlist& nl, Placement& pl,
                               const CtsConfig& config = {});

}  // namespace atlas::layout
