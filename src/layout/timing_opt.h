// Timing-driven netlist reconstruction: gate resizing and buffer insertion.
//
// Substitutes for Innovus's in-place optimization. The paper calls out
// exactly these transformations ("buffer insertion, netlist reconstruction")
// as the reason gate-level and post-layout power diverge: inserted buffers
// and upsized drivers add internal + switching power the gate-level netlist
// never sees, which the ATLAS encoder must learn to anticipate.
//
// The optimization loop is electrical-rule driven: any driver whose load
// exceeds its library max_capacitance is first upsized through the drive
// ladder (X1 -> X2 -> X4) and, if still overloaded, its sink set is split
// behind placed buffers. The clock net is left alone — CTS owns it.
#pragma once

#include "layout/extraction.h"
#include "layout/placer.h"
#include "netlist/netlist.h"

namespace atlas::layout {

struct TimingOptConfig {
  int max_passes = 6;
  /// Loads above max_cap * headroom trigger optimization.
  double headroom = 0.55;
  /// Sinks per inserted buffer when splitting an overloaded net.
  int buffer_fanout = 6;
  ExtractConfig extract;
};

struct TimingOptStats {
  int resized = 0;
  int buffers_inserted = 0;
  int passes = 0;
};

/// Optimize in place; inserted buffers are appended to `pl` at the centroid
/// of the sinks they take over. Re-extracts and re-annotates wire caps after
/// every pass (the netlist ends annotated).
TimingOptStats optimize_timing(netlist::Netlist& nl, Placement& pl,
                               const TimingOptConfig& config = {});

}  // namespace atlas::layout
