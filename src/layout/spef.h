// SPEF (Standard Parasitic Exchange Format) subset writer and parser.
//
// The paper's golden flow dumps post-route RC as SPEF and feeds it to PTPX;
// this module reproduces that interchange for our extracted parasitics. The
// subset keeps the standard header, the name map, and lumped-cap *D_NET
// sections:
//
//   *SPEF "IEEE 1481-1998"
//   *DESIGN "C2"
//   ...
//   *NAME_MAP
//   *1 n42
//   *D_NET *1 0.4513
//   *END
#pragma once

#include <string>
#include <string_view>

#include "layout/extraction.h"
#include "netlist/netlist.h"

namespace atlas::layout {

std::string write_spef(const netlist::Netlist& nl, const Parasitics& parasitics);

/// Parse SPEF text (the writer's subset) into per-net caps resolved against
/// `nl` by net name. Throws std::runtime_error on malformed input / unknown
/// net names.
Parasitics parse_spef(std::string_view text, const netlist::Netlist& nl);

void save_spef_file(const netlist::Netlist& nl, const Parasitics& parasitics,
                    const std::string& path);
Parasitics load_spef_file(const std::string& path, const netlist::Netlist& nl);

}  // namespace atlas::layout
