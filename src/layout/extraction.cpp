#include "layout/extraction.h"

namespace atlas::layout {

double Parasitics::total_cap_ff() const {
  double t = 0.0;
  for (const double c : wire_cap_ff) t += c;
  return t;
}

Parasitics extract(const netlist::Netlist& nl, const Placement& pl,
                   const ExtractConfig& config) {
  Parasitics out;
  out.wire_cap_ff.resize(nl.num_nets(), 0.0);
  for (netlist::NetId net = 0; net < nl.num_nets(); ++net) {
    const double hpwl = pl.net_hpwl(nl, net);
    const double length = hpwl * config.route_factor;
    out.wire_cap_ff[net] = length * config.cap_per_um_ff +
                           config.via_cap_ff *
                               static_cast<double>(nl.net(net).sinks.size());
  }
  return out;
}

void annotate(netlist::Netlist& nl, const Parasitics& parasitics) {
  for (netlist::NetId net = 0; net < nl.num_nets(); ++net) {
    nl.mutable_net(net).wire_cap_ff = parasitics.wire_cap_ff.at(net);
  }
}

double net_load_ff(const netlist::Netlist& nl, netlist::NetId net) {
  const netlist::Net& n = nl.net(net);
  double load = n.wire_cap_ff;
  for (const netlist::PinRef& s : n.sinks) {
    load += nl.lib_cell(s.cell).pins[static_cast<std::size_t>(s.pin)].cap_ff;
  }
  return load;
}

}  // namespace atlas::layout
