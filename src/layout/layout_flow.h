// End-to-end layout flow: place -> timing optimization -> CTS -> extraction.
//
// Substitutes for the paper's Innovus flow ("mixed-size placement, clock
// tree synthesis, and routing, with each step including timing
// optimization") that turns the gate-level netlist N_g into the post-layout
// netlist N_p plus SPEF parasitics, from which PTPX computes golden
// per-cycle power.
#pragma once

#include "layout/cts.h"
#include "layout/extraction.h"
#include "layout/placer.h"
#include "layout/spef.h"
#include "layout/timing_opt.h"
#include "netlist/netlist.h"

namespace atlas::layout {

struct LayoutConfig {
  PlacerConfig placer;
  TimingOptConfig timing;
  CtsConfig cts;
  ExtractConfig extract;
};

struct LayoutResult {
  netlist::Netlist netlist;   // post-layout netlist (wire caps annotated)
  Placement placement;
  Parasitics parasitics;      // final extraction (same data as annotation)
  TimingOptStats timing_stats;
  CtsStats cts_stats;
};

/// Run the full layout flow on a gate-level netlist. The input is untouched;
/// the result's netlist is named "<design>_layout" and passes check().
LayoutResult run_layout(const netlist::Netlist& gate_level,
                        const LayoutConfig& config = {});

}  // namespace atlas::layout
