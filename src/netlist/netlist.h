// Gate-level netlist intermediate representation.
//
// This is the core IR every stage operates on: the design generator emits it,
// the rewriter (N_g+), layout flow (N_p), simulator, power analyzer, and the
// ATLAS graph builder all consume it. Cells reference liberty::Library cells;
// pin order inside a CellInst follows the library cell's pin order.
//
// Sub-module structure (paper Sec. III-A): every cell belongs to exactly one
// non-overlapping sub-module; sub-modules group into named components
// (e.g. "frontend", "lsu"). Layout-inserted cells (buffers, clock tree) are
// attributed to the sub-module whose net they serve, keeping the partition
// non-overlapping across stages.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "liberty/library.h"

namespace atlas::netlist {

using CellInstId = std::uint32_t;
using NetId = std::uint32_t;
using SubmoduleId = std::int32_t;
inline constexpr CellInstId kNoCell = static_cast<CellInstId>(-1);
inline constexpr NetId kNoNet = static_cast<NetId>(-1);
inline constexpr SubmoduleId kNoSubmodule = -1;

struct PinRef {
  CellInstId cell = kNoCell;
  int pin = -1;  // index into the library cell's pin list

  bool operator==(const PinRef&) const = default;
};

struct Net {
  std::string name;
  PinRef driver;                       // invalid if driven by a primary input
  std::vector<PinRef> sinks;           // input pins this net feeds
  bool is_primary_input = false;
  bool is_primary_output = false;
  /// Wire capacitance in fF. Zero in a fresh netlist; the layout flow
  /// annotates extracted values, the gate-level power baseline annotates a
  /// wire-load-model estimate.
  double wire_cap_ff = 0.0;

  bool has_driver() const { return driver.cell != kNoCell; }
};

struct CellInst {
  std::string name;
  liberty::CellId lib_cell = liberty::kInvalidCell;
  std::vector<NetId> pin_nets;         // parallel to library pin order
  SubmoduleId submodule = kNoSubmodule;
};

struct Submodule {
  std::string name;   // e.g. "alu_3"
  std::string role;   // functional role, e.g. "alu"
  int component = -1; // index into components()
};

/// A design, its cells, nets, and sub-module partition.
class Netlist {
 public:
  Netlist(std::string name, const liberty::Library& lib);

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }
  const liberty::Library& library() const { return *lib_; }

  // ---- construction -------------------------------------------------------
  NetId add_net(std::string name);
  /// Add a cell instance; `pin_nets` must match the library cell's pin count.
  /// Output pins become drivers of their nets, inputs become sinks.
  CellInstId add_cell(std::string name, liberty::CellId lib_cell,
                      std::vector<NetId> pin_nets,
                      SubmoduleId submodule = kNoSubmodule);
  SubmoduleId add_submodule(std::string name, std::string role, int component);
  int add_component(std::string name);

  void mark_primary_input(NetId net);
  void mark_primary_output(NetId net);
  void set_clock_net(NetId net) { clock_net_ = net; }
  NetId clock_net() const { return clock_net_; }

  /// Detach a cell from all its nets (used by rewrites / layout resizing).
  /// The cell stays allocated but inert; compact() drops it.
  void disconnect_cell(CellInstId id);

  /// Reconnect one pin of an existing (connected) cell to another net.
  void move_pin(CellInstId id, int pin, NetId new_net);

  /// Swap the library cell of an instance for a pin-compatible variant
  /// (same pin count/order), e.g. drive resizing.
  void resize_cell(CellInstId id, liberty::CellId new_lib_cell);

  /// Re-tag a cell's sub-module (used by the structural fallback splitter).
  void set_cell_submodule(CellInstId id, SubmoduleId sm) {
    cells_.at(id).submodule = sm;
  }

  /// Drop disconnected cells and unused nets, renumbering ids. Returns the
  /// old->new cell id map (kNoCell for dropped cells) so side structures
  /// (e.g. placement) can follow the renumbering.
  std::vector<CellInstId> compact();

  // ---- access --------------------------------------------------------------
  std::size_t num_cells() const { return cells_.size(); }
  std::size_t num_nets() const { return nets_.size(); }
  const CellInst& cell(CellInstId id) const { return cells_.at(id); }
  const Net& net(NetId id) const { return nets_.at(id); }
  Net& mutable_net(NetId id) { return nets_.at(id); }
  const std::vector<CellInst>& cells() const { return cells_; }
  const std::vector<Net>& nets() const { return nets_; }

  const liberty::Cell& lib_cell(CellInstId id) const {
    return lib_->cell(cells_.at(id).lib_cell);
  }

  /// Net driven by the cell's (single) output pin; kNoNet for none.
  NetId output_net(CellInstId id) const;

  const std::vector<Submodule>& submodules() const { return submodules_; }
  const std::vector<std::string>& components() const { return components_; }
  Submodule& mutable_submodule(SubmoduleId id) { return submodules_.at(static_cast<std::size_t>(id)); }

  std::vector<NetId> primary_inputs() const;
  std::vector<NetId> primary_outputs() const;

  /// Cells in combinational topological order: TIE/sequential-Q/macro-Q and
  /// primary inputs are sources; every combinational cell appears after all
  /// cells driving its inputs. Clock cells are included (clock nets form a
  /// tree). Throws std::runtime_error on a combinational cycle.
  std::vector<CellInstId> comb_topo_order() const;

  /// Structural validation; throws std::runtime_error describing the first
  /// violation (unconnected pin, multi-driven net, direction mismatch,
  /// combinational cycle, sub-module index out of range).
  void check() const;

  // ---- statistics ----------------------------------------------------------
  /// Cell count per node type (index by NodeType).
  std::vector<std::size_t> count_by_type() const;
  /// Cell count per power group (index by PowerGroup).
  std::vector<std::size_t> count_by_group() const;
  /// Cells in a given sub-module.
  std::vector<CellInstId> cells_in_submodule(SubmoduleId id) const;

 private:
  std::string name_;
  const liberty::Library* lib_;
  std::vector<CellInst> cells_;
  std::vector<Net> nets_;
  std::vector<Submodule> submodules_;
  std::vector<std::string> components_;
  NetId clock_net_ = kNoNet;
};

}  // namespace atlas::netlist
