#include "netlist/netlist.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "util/strings.h"

namespace atlas::netlist {

using liberty::CellFunc;
using liberty::PinDir;

Netlist::Netlist(std::string name, const liberty::Library& lib)
    : name_(std::move(name)), lib_(&lib) {}

NetId Netlist::add_net(std::string name) {
  const NetId id = static_cast<NetId>(nets_.size());
  Net n;
  n.name = std::move(name);
  nets_.push_back(std::move(n));
  return id;
}

CellInstId Netlist::add_cell(std::string name, liberty::CellId lib_cell,
                             std::vector<NetId> pin_nets, SubmoduleId submodule) {
  const liberty::Cell& lc = lib_->cell(lib_cell);
  if (pin_nets.size() != lc.pins.size()) {
    throw std::invalid_argument(util::format(
        "add_cell(%s): %zu nets for %zu pins of %s", name.c_str(),
        pin_nets.size(), lc.pins.size(), lc.name.c_str()));
  }
  const CellInstId id = static_cast<CellInstId>(cells_.size());
  for (std::size_t p = 0; p < pin_nets.size(); ++p) {
    Net& net = nets_.at(pin_nets[p]);
    if (lc.pins[p].dir == PinDir::kOutput) {
      if (net.has_driver() || net.is_primary_input) {
        throw std::invalid_argument("add_cell(" + name + "): net " + net.name +
                                    " already driven");
      }
      net.driver = PinRef{id, static_cast<int>(p)};
    } else {
      net.sinks.push_back(PinRef{id, static_cast<int>(p)});
    }
  }
  CellInst inst;
  inst.name = std::move(name);
  inst.lib_cell = lib_cell;
  inst.pin_nets = std::move(pin_nets);
  inst.submodule = submodule;
  cells_.push_back(std::move(inst));
  return id;
}

SubmoduleId Netlist::add_submodule(std::string name, std::string role,
                                   int component) {
  const SubmoduleId id = static_cast<SubmoduleId>(submodules_.size());
  submodules_.push_back(Submodule{std::move(name), std::move(role), component});
  return id;
}

int Netlist::add_component(std::string name) {
  components_.push_back(std::move(name));
  return static_cast<int>(components_.size()) - 1;
}

void Netlist::mark_primary_input(NetId net) {
  Net& n = nets_.at(net);
  if (n.has_driver()) {
    throw std::invalid_argument("primary input net already cell-driven: " + n.name);
  }
  n.is_primary_input = true;
}

void Netlist::mark_primary_output(NetId net) {
  nets_.at(net).is_primary_output = true;
}

void Netlist::disconnect_cell(CellInstId id) {
  CellInst& inst = cells_.at(id);
  const liberty::Cell& lc = lib_->cell(inst.lib_cell);
  for (std::size_t p = 0; p < inst.pin_nets.size(); ++p) {
    if (inst.pin_nets[p] == kNoNet) continue;
    Net& net = nets_.at(inst.pin_nets[p]);
    const PinRef ref{id, static_cast<int>(p)};
    if (lc.pins[p].dir == PinDir::kOutput) {
      if (net.driver == ref) net.driver = PinRef{};
    } else {
      net.sinks.erase(std::remove(net.sinks.begin(), net.sinks.end(), ref),
                      net.sinks.end());
    }
    inst.pin_nets[p] = kNoNet;
  }
}

void Netlist::move_pin(CellInstId id, int pin, NetId new_net) {
  CellInst& inst = cells_.at(id);
  const liberty::Cell& lc = lib_->cell(inst.lib_cell);
  const NetId old = inst.pin_nets.at(static_cast<std::size_t>(pin));
  const PinRef ref{id, pin};
  if (old != kNoNet) {
    Net& onet = nets_.at(old);
    if (lc.pins[static_cast<std::size_t>(pin)].dir == PinDir::kOutput) {
      if (onet.driver == ref) onet.driver = PinRef{};
    } else {
      onet.sinks.erase(std::remove(onet.sinks.begin(), onet.sinks.end(), ref),
                       onet.sinks.end());
    }
  }
  Net& nnet = nets_.at(new_net);
  if (lc.pins[static_cast<std::size_t>(pin)].dir == PinDir::kOutput) {
    if (nnet.has_driver() || nnet.is_primary_input) {
      throw std::invalid_argument("move_pin: target net already driven: " +
                                  nnet.name);
    }
    nnet.driver = ref;
  } else {
    nnet.sinks.push_back(ref);
  }
  inst.pin_nets[static_cast<std::size_t>(pin)] = new_net;
}

void Netlist::resize_cell(CellInstId id, liberty::CellId new_lib_cell) {
  CellInst& inst = cells_.at(id);
  const liberty::Cell& oldc = lib_->cell(inst.lib_cell);
  const liberty::Cell& newc = lib_->cell(new_lib_cell);
  if (oldc.pins.size() != newc.pins.size()) {
    throw std::invalid_argument("resize_cell: pin count mismatch " + oldc.name +
                                " -> " + newc.name);
  }
  for (std::size_t p = 0; p < oldc.pins.size(); ++p) {
    if (oldc.pins[p].dir != newc.pins[p].dir) {
      throw std::invalid_argument("resize_cell: pin direction mismatch");
    }
  }
  inst.lib_cell = new_lib_cell;
}

std::vector<CellInstId> Netlist::compact() {
  // Map old cell ids -> new ids, dropping fully disconnected cells.
  std::vector<CellInstId> cell_map(cells_.size(), kNoCell);
  std::vector<CellInst> new_cells;
  new_cells.reserve(cells_.size());
  for (CellInstId id = 0; id < cells_.size(); ++id) {
    const bool connected = std::any_of(
        cells_[id].pin_nets.begin(), cells_[id].pin_nets.end(),
        [](NetId n) { return n != kNoNet; });
    if (!connected) continue;
    cell_map[id] = static_cast<CellInstId>(new_cells.size());
    new_cells.push_back(std::move(cells_[id]));
  }
  // Drop nets with no driver, no PI flag, and no sinks.
  std::vector<NetId> net_map(nets_.size(), kNoNet);
  std::vector<Net> new_nets;
  new_nets.reserve(nets_.size());
  for (NetId id = 0; id < nets_.size(); ++id) {
    Net& n = nets_[id];
    // Remap/refresh endpoints first (cells may have been dropped).
    if (n.has_driver() && cell_map[n.driver.cell] == kNoCell) n.driver = PinRef{};
    std::erase_if(n.sinks,
                  [&](const PinRef& r) { return cell_map[r.cell] == kNoCell; });
    const bool used = n.has_driver() || n.is_primary_input ||
                      n.is_primary_output || !n.sinks.empty();
    if (!used) continue;
    net_map[id] = static_cast<NetId>(new_nets.size());
    new_nets.push_back(std::move(n));
  }
  for (Net& n : new_nets) {
    if (n.has_driver()) n.driver.cell = cell_map[n.driver.cell];
    for (PinRef& r : n.sinks) r.cell = cell_map[r.cell];
  }
  for (CellInst& c : new_cells) {
    for (NetId& nid : c.pin_nets) {
      nid = (nid == kNoNet) ? kNoNet : net_map[nid];
    }
  }
  cells_ = std::move(new_cells);
  nets_ = std::move(new_nets);
  if (clock_net_ != kNoNet) clock_net_ = net_map[clock_net_];
  return cell_map;
}

NetId Netlist::output_net(CellInstId id) const {
  const liberty::Cell& lc = lib_cell(id);
  const int p = lc.output_pin();
  if (p < 0) return kNoNet;
  return cells_.at(id).pin_nets[static_cast<std::size_t>(p)];
}

std::vector<NetId> Netlist::primary_inputs() const {
  std::vector<NetId> out;
  for (NetId id = 0; id < nets_.size(); ++id) {
    if (nets_[id].is_primary_input) out.push_back(id);
  }
  return out;
}

std::vector<NetId> Netlist::primary_outputs() const {
  std::vector<NetId> out;
  for (NetId id = 0; id < nets_.size(); ++id) {
    if (nets_[id].is_primary_output) out.push_back(id);
  }
  return out;
}

std::vector<CellInstId> Netlist::comb_topo_order() const {
  // Kahn's algorithm over combinational cells (incl. clock cells). Data edges
  // from sequential Q / macro Q outputs and primary inputs are cut (their
  // values are state, not combinationally derived).
  std::vector<int> pending(cells_.size(), 0);
  std::vector<CellInstId> ready;
  for (CellInstId id = 0; id < cells_.size(); ++id) {
    const liberty::Cell& lc = lib_cell(id);
    if (!liberty::is_combinational(lc.func)) continue;  // seq/macro: not ordered
    int deps = 0;
    for (std::size_t p = 0; p < lc.pins.size(); ++p) {
      if (lc.pins[p].dir != PinDir::kInput) continue;
      const NetId nid = cells_[id].pin_nets[p];
      if (nid == kNoNet) continue;
      const Net& n = nets_[nid];
      if (!n.has_driver()) continue;  // primary input
      const liberty::Cell& drv = lib_cell(n.driver.cell);
      if (liberty::is_combinational(drv.func)) ++deps;
    }
    pending[id] = deps;
    if (deps == 0) ready.push_back(id);
  }
  std::vector<CellInstId> order;
  order.reserve(cells_.size());
  std::size_t head = 0;
  std::vector<CellInstId> queue = std::move(ready);
  std::size_t comb_count = 0;
  for (CellInstId id = 0; id < cells_.size(); ++id) {
    if (liberty::is_combinational(lib_cell(id).func)) ++comb_count;
  }
  while (head < queue.size()) {
    const CellInstId id = queue[head++];
    order.push_back(id);
    const NetId out = output_net(id);
    if (out == kNoNet) continue;
    for (const PinRef& sink : nets_[out].sinks) {
      const liberty::Cell& sc = lib_cell(sink.cell);
      if (!liberty::is_combinational(sc.func)) continue;
      if (--pending[sink.cell] == 0) queue.push_back(sink.cell);
    }
  }
  if (order.size() != comb_count) {
    throw std::runtime_error(util::format(
        "comb_topo_order: combinational cycle (%zu of %zu cells ordered)",
        order.size(), comb_count));
  }
  return order;
}

void Netlist::check() const {
  for (CellInstId id = 0; id < cells_.size(); ++id) {
    const CellInst& inst = cells_[id];
    const liberty::Cell& lc = lib_cell(id);
    if (inst.pin_nets.size() != lc.pins.size()) {
      throw std::runtime_error("check: pin/net arity mismatch on " + inst.name);
    }
    for (std::size_t p = 0; p < lc.pins.size(); ++p) {
      const NetId nid = inst.pin_nets[p];
      if (nid == kNoNet) {
        throw std::runtime_error("check: unconnected pin " + lc.pins[p].name +
                                 " on " + inst.name);
      }
      const Net& n = nets_.at(nid);
      const PinRef ref{id, static_cast<int>(p)};
      if (lc.pins[p].dir == PinDir::kOutput) {
        if (!(n.driver == ref)) {
          throw std::runtime_error("check: net " + n.name +
                                   " driver inconsistent with cell " + inst.name);
        }
      } else {
        if (std::find(n.sinks.begin(), n.sinks.end(), ref) == n.sinks.end()) {
          throw std::runtime_error("check: net " + n.name +
                                   " missing sink back-reference to " + inst.name);
        }
      }
    }
    if (inst.submodule != kNoSubmodule &&
        static_cast<std::size_t>(inst.submodule) >= submodules_.size()) {
      throw std::runtime_error("check: sub-module index out of range on " +
                               inst.name);
    }
  }
  for (const Net& n : nets_) {
    if (n.has_driver() && n.is_primary_input) {
      throw std::runtime_error("check: net both cell-driven and primary input: " +
                               n.name);
    }
    for (const PinRef& s : n.sinks) {
      if (s.cell >= cells_.size()) {
        throw std::runtime_error("check: dangling sink on net " + n.name);
      }
    }
  }
  for (const Submodule& sm : submodules_) {
    if (sm.component >= static_cast<int>(components_.size())) {
      throw std::runtime_error("check: component index out of range in " + sm.name);
    }
  }
  comb_topo_order();  // throws on combinational cycles
}

std::vector<std::size_t> Netlist::count_by_type() const {
  std::vector<std::size_t> counts(liberty::kNumNodeTypes, 0);
  for (CellInstId id = 0; id < cells_.size(); ++id) {
    ++counts[static_cast<std::size_t>(lib_cell(id).type)];
  }
  return counts;
}

std::vector<std::size_t> Netlist::count_by_group() const {
  std::vector<std::size_t> counts(liberty::kNumPowerGroups, 0);
  for (CellInstId id = 0; id < cells_.size(); ++id) {
    ++counts[static_cast<std::size_t>(liberty::power_group_of(lib_cell(id).type))];
  }
  return counts;
}

std::vector<CellInstId> Netlist::cells_in_submodule(SubmoduleId id) const {
  std::vector<CellInstId> out;
  for (CellInstId c = 0; c < cells_.size(); ++c) {
    if (cells_[c].submodule == id) out.push_back(c);
  }
  return out;
}

}  // namespace atlas::netlist
