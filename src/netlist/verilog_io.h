// Structural-Verilog (subset) writer and parser for gate-level netlists.
//
// The writer emits one flat module with scalar ports, wire declarations, and
// named-pin cell instantiations. Sub-module membership / roles / components
// and the clock net are carried in standard `(* attr = "value" *)` attribute
// instances so a round-trip preserves the ATLAS partition:
//
//   (* clock_net = "clk" *)
//   module C2 (clk, pi_0, po_0);
//     input clk; input pi_0; output po_0;
//     wire n1;
//     (* submodule = "alu_0", role = "alu", component = "exec" *)
//     NAND2_X1 u42 (.A(pi_0), .B(n1), .Y(po_0));
//   endmodule
//
// The parser accepts exactly this subset (plus comments and whitespace), and
// resolves cell names against a provided liberty::Library.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "netlist/netlist.h"

namespace atlas::netlist {

class VerilogParseError : public std::runtime_error {
 public:
  VerilogParseError(const std::string& message, int line);
  int line() const { return line_; }

 private:
  int line_;
};

std::string write_verilog(const Netlist& nl);

Netlist parse_verilog(std::string_view text, const liberty::Library& lib);

void save_verilog_file(const Netlist& nl, const std::string& path);
Netlist load_verilog_file(const std::string& path, const liberty::Library& lib);

}  // namespace atlas::netlist
