// Sub-module directed graphs with ATLAS node features (paper Sec. III-C).
//
// Each sub-module becomes one DG: nodes are cell instances, directed edges
// follow driver -> sink wires inside the sub-module. Node features:
//
//   [0..17]  one-hot node type (18 categories)
//   [18]     per-cycle toggle (transitions / 2, so clock nets read 1.0)
//   [19]     [MASK_TOGGLE] flag   (set by pre-training masking)
//   [20]     [MASK_NODE_TYPE] flag
//   [21]     cell internal energy at its actual load (scaled)
//   [22]     cell leakage (log-scaled; SRAM leakage is orders larger)
//   [23]     output load capacitance (scaled)
//
// The type one-hot, powers and caps are static per netlist; the toggle
// channel is filled per cycle from a ToggleTrace. Masking flags are zero
// here and driven by the pre-training tasks.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/matrix.h"
#include "ml/sgformer.h"
#include "netlist/netlist.h"
#include "sim/simulator.h"

namespace atlas::graph {

inline constexpr int kTypeOffset = 0;
inline constexpr int kToggleOffset = 18;
inline constexpr int kMaskToggleFlag = 19;
inline constexpr int kMaskTypeFlag = 20;
inline constexpr int kInternalOffset = 21;
inline constexpr int kLeakageOffset = 22;
inline constexpr int kCapOffset = 23;
inline constexpr int kFeatureDim = 24;

// Feature scaling constants (documented normalizers, not learned).
inline constexpr float kInternalScale = 1.0f / 3.0f;   // fJ -> O(1)
inline constexpr float kCapScale = 1.0f / 30.0f;       // fF -> O(1)

struct SubmoduleGraph {
  netlist::SubmoduleId submodule = netlist::kNoSubmodule;
  std::vector<netlist::CellInstId> cells;            // node index -> cell
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;  // driver->sink
  std::vector<netlist::NetId> out_net;               // node -> output net
  std::vector<int> node_type;                        // node -> NodeType index
  ml::Matrix static_features;                        // N x kFeatureDim

  std::size_t num_nodes() const { return cells.size(); }

  /// View over the static features (toggle channel zero).
  ml::GraphView view() const;
};

/// Build the DG of one sub-module. Throws if the sub-module is empty.
SubmoduleGraph build_submodule_graph(const netlist::Netlist& nl,
                                     netlist::SubmoduleId submodule);

/// Build DGs for all sub-modules of a design (skipping empty ones).
std::vector<SubmoduleGraph> build_submodule_graphs(const netlist::Netlist& nl);

/// Copy static features and fill the per-cycle toggle channel from a trace.
/// `out` is resized as needed.
void fill_cycle_features(const SubmoduleGraph& g, const sim::ToggleTrace& trace,
                         int cycle, ml::Matrix& out);

/// Same, into a raw row-major buffer of num_nodes x kFeatureDim floats
/// (arena-backed scratch in the fused batched encode path). Writes exactly
/// the values of the Matrix overload.
void fill_cycle_features(const SubmoduleGraph& g, const sim::ToggleTrace& trace,
                         int cycle, float* out);

/// A GraphView over externally prepared features for graph `g`.
ml::GraphView view_with_features(const SubmoduleGraph& g, const ml::Matrix& feats);

}  // namespace atlas::graph
