#include "graph/submodule_graph.h"

#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "layout/extraction.h"
#include "util/parallel.h"

namespace atlas::graph {

using netlist::CellInstId;
using netlist::kNoNet;
using netlist::NetId;

ml::GraphView SubmoduleGraph::view() const {
  return view_with_features(*this, static_features);
}

ml::GraphView view_with_features(const SubmoduleGraph& g, const ml::Matrix& feats) {
  if (feats.rows() != g.num_nodes() || feats.cols() != kFeatureDim) {
    throw std::invalid_argument("view_with_features: feature shape mismatch");
  }
  ml::GraphView v;
  v.num_nodes = g.num_nodes();
  v.feat_dim = kFeatureDim;
  v.features = feats.data();
  v.edges = &g.edges;
  return v;
}

SubmoduleGraph build_submodule_graph(const netlist::Netlist& nl,
                                     netlist::SubmoduleId submodule) {
  SubmoduleGraph g;
  g.submodule = submodule;
  g.cells = nl.cells_in_submodule(submodule);
  if (g.cells.empty()) {
    throw std::invalid_argument("build_submodule_graph: empty sub-module");
  }
  std::unordered_map<CellInstId, std::uint32_t> node_of;
  node_of.reserve(g.cells.size());
  for (std::uint32_t i = 0; i < g.cells.size(); ++i) node_of.emplace(g.cells[i], i);

  const liberty::Library& lib = nl.library();
  g.out_net.resize(g.cells.size(), kNoNet);
  g.node_type.resize(g.cells.size(), 0);
  g.static_features = ml::Matrix(g.cells.size(), kFeatureDim);

  for (std::uint32_t i = 0; i < g.cells.size(); ++i) {
    const CellInstId cid = g.cells[i];
    const liberty::Cell& lc = nl.lib_cell(cid);
    g.node_type[i] = static_cast<int>(lc.type);
    g.out_net[i] = nl.output_net(cid);

    float* f = g.static_features.row(i);
    f[kTypeOffset + g.node_type[i]] = 1.0f;
    double load_ff = 0.0;
    if (g.out_net[i] != kNoNet) {
      load_ff = layout::net_load_ff(nl, g.out_net[i]);
      // Intra-sub-module edges: driver -> each sink in the same sub-module.
      for (const netlist::PinRef& s : nl.net(g.out_net[i]).sinks) {
        const auto it = node_of.find(s.cell);
        if (it != node_of.end()) g.edges.emplace_back(i, it->second);
      }
    }
    const double internal =
        lib.internal_energy_fj(nl.cell(cid).lib_cell, load_ff) +
        lc.clock_pin_energy_fj;
    f[kInternalOffset] = static_cast<float>(internal) * kInternalScale;
    f[kLeakageOffset] =
        static_cast<float>(std::log1p(lc.leakage_uw * 1000.0) * 0.1);
    f[kCapOffset] = static_cast<float>(load_ff) * kCapScale;
  }
  return g;
}

std::vector<SubmoduleGraph> build_submodule_graphs(const netlist::Netlist& nl) {
  // Sub-modules build independently: collect the non-empty ids first (the
  // output keeps ascending SubmoduleId order), then extract each graph's
  // per-node features in parallel.
  std::vector<netlist::SubmoduleId> live;
  live.reserve(nl.submodules().size());
  for (netlist::SubmoduleId sm = 0;
       sm < static_cast<netlist::SubmoduleId>(nl.submodules().size()); ++sm) {
    if (!nl.cells_in_submodule(sm).empty()) live.push_back(sm);
  }
  std::vector<SubmoduleGraph> graphs(live.size());
  util::parallel_for(live.size(), std::size_t{1}, [&](std::size_t i) {
    graphs[i] = build_submodule_graph(nl, live[i]);
  });
  return graphs;
}

void fill_cycle_features(const SubmoduleGraph& g, const sim::ToggleTrace& trace,
                         int cycle, ml::Matrix& out) {
  out = g.static_features;
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    const NetId net = g.out_net[i];
    if (net == kNoNet) continue;
    out.at(i, kToggleOffset) =
        static_cast<float>(trace.transitions(cycle, net)) * 0.5f;
  }
}

void fill_cycle_features(const SubmoduleGraph& g, const sim::ToggleTrace& trace,
                         int cycle, float* out) {
  const float* src = g.static_features.data();
  std::copy(src, src + g.num_nodes() * kFeatureDim, out);
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    const NetId net = g.out_net[i];
    if (net == kNoNet) continue;
    out[i * kFeatureDim + kToggleOffset] =
        static_cast<float>(trace.transitions(cycle, net)) * 0.5f;
  }
}

}  // namespace atlas::graph
