#include "sim/stimulus.h"

namespace atlas::sim {

WorkloadSpec make_w1() {
  WorkloadSpec w;
  w.name = "W1";
  w.seed = 101;
  return w;
}

WorkloadSpec make_w2() {
  WorkloadSpec w;
  w.name = "W2";
  w.seed = 202;
  w.idle_activity = 0.06;
  w.compute_activity = 0.24;
  w.burst_activity = 0.70;
  w.phase_persistence = 0.80;
  w.idle_weight = 1.5;
  w.compute_weight = 1.5;
  w.burst_weight = 1.0;
  return w;
}

StimulusGenerator::StimulusGenerator(const netlist::Netlist& nl, WorkloadSpec spec)
    : spec_(std::move(spec)), rng_(spec_.seed) {
  std::vector<netlist::NetId> data_pis;
  for (const netlist::NetId id : nl.primary_inputs()) {
    if (id == nl.clock_net()) continue;
    if (nl.net(id).name == "rstn") {
      rstn_ = id;
      continue;
    }
    data_pis.push_back(id);
  }
  const int width = spec_.bus_width > 0 ? spec_.bus_width : 1;
  for (std::size_t i = 0; i < data_pis.size(); i += static_cast<std::size_t>(width)) {
    std::vector<netlist::NetId> bus;
    for (std::size_t j = i; j < data_pis.size() && j < i + static_cast<std::size_t>(width); ++j) {
      bus.push_back(data_pis[j]);
    }
    buses_.push_back(std::move(bus));
  }
}

double StimulusGenerator::activity() const {
  switch (phase_) {
    case Phase::kIdle: return spec_.idle_activity;
    case Phase::kCompute: return spec_.compute_activity;
    case Phase::kBurst: return spec_.burst_activity;
  }
  return spec_.compute_activity;
}

void StimulusGenerator::apply(int cycle, std::vector<std::uint8_t>& net_values) {
  // Phase transition.
  if (!rng_.next_bool(spec_.phase_persistence)) {
    const std::size_t next = rng_.next_weighted(
        {spec_.idle_weight, spec_.compute_weight, spec_.burst_weight});
    phase_ = static_cast<Phase>(next);
  }
  if (rstn_ != netlist::kNoNet) {
    net_values[rstn_] = cycle >= spec_.reset_cycles ? 1 : 0;
  }
  const double act = activity();
  for (const auto& bus : buses_) {
    if (!rng_.next_bool(act)) continue;  // bus holds its value this cycle
    for (const netlist::NetId id : bus) {
      net_values[id] = rng_.next_bool(0.5) ? 1 : 0;
    }
  }
}

}  // namespace atlas::sim
