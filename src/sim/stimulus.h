// Workload stimulus generation.
//
// Substitutes for the paper's VCS-simulated realistic workloads (W1, W2).
// Primary inputs are grouped into bus-like clusters that switch together; a
// Markov chain over activity phases (idle / compute / burst) produces the
// temporally-correlated, phase-structured switching that real workloads show
// (and that makes per-cycle power fluctuate, which is what ATLAS predicts).
//
// Conventions understood by the generator:
//   * the clock primary input (Netlist::clock_net) is never driven here;
//   * a primary input named "rstn" is held low for the first two cycles and
//     high afterwards (active-low reset).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "util/rng.h"

namespace atlas::sim {

enum class Phase : std::uint8_t { kIdle = 0, kCompute, kBurst };

struct WorkloadSpec {
  std::string name = "W1";
  std::uint64_t seed = 101;
  /// Probability that a bus group gets a new random value, per phase.
  double idle_activity = 0.04;
  double compute_activity = 0.30;
  double burst_activity = 0.60;
  /// Probability of remaining in the current phase each cycle.
  double phase_persistence = 0.88;
  /// Relative weight of each phase when transitioning (idle/compute/burst).
  double idle_weight = 1.0;
  double compute_weight = 2.0;
  double burst_weight = 1.0;
  /// Bus width used to cluster primary inputs.
  int bus_width = 8;
  int reset_cycles = 2;
};

/// The two workloads used in the paper's evaluation.
WorkloadSpec make_w1();
WorkloadSpec make_w2();

class StimulusGenerator {
 public:
  StimulusGenerator(const netlist::Netlist& nl, WorkloadSpec spec);

  /// Advance one cycle and write this cycle's primary-input values into
  /// `net_values` (indexed by NetId). Only data PIs are touched.
  void apply(int cycle, std::vector<std::uint8_t>& net_values);

  Phase phase() const { return phase_; }
  const WorkloadSpec& spec() const { return spec_; }

 private:
  double activity() const;

  WorkloadSpec spec_;
  util::Rng rng_;
  Phase phase_ = Phase::kIdle;
  std::vector<std::vector<netlist::NetId>> buses_;  // grouped data PIs
  netlist::NetId rstn_ = netlist::kNoNet;
};

}  // namespace atlas::sim
