#include "sim/simulator.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/parallel.h"
#include "util/strings.h"

namespace atlas::sim {

using liberty::CellFunc;
using netlist::CellInstId;
using netlist::kNoNet;
using netlist::NetId;

ToggleTrace::ToggleTrace(std::size_t num_nets, int num_cycles)
    : num_nets_(num_nets), num_cycles_(num_cycles),
      data_(num_nets * static_cast<std::size_t>(num_cycles), 0) {}

void ToggleTrace::set(int cycle, NetId net, bool value, int transitions) {
  data_[static_cast<std::size_t>(cycle) * num_nets_ + net] =
      static_cast<std::uint8_t>((transitions << 1) | (value ? 1 : 0));
}

double ToggleTrace::toggle_rate(NetId net) const {
  if (num_cycles_ == 0) return 0.0;
  return static_cast<double>(total_transitions(net)) / num_cycles_;
}

long long ToggleTrace::total_transitions(NetId net) const {
  // Integer sum via the ordered reduction — exact under any association,
  // the helper only buys wall-clock on very long traces (grain keeps short
  // traces on the serial single-chunk path).
  return util::parallel_reduce(
      static_cast<std::size_t>(num_cycles_), std::size_t{4096}, 0LL,
      [this, net](std::size_t begin, std::size_t end) {
        long long partial = 0;
        for (std::size_t c = begin; c < end; ++c) {
          partial += transitions(static_cast<int>(c), net);
        }
        return partial;
      },
      [](long long a, long long b) { return a + b; });
}

CycleSimulator::CycleSimulator(const netlist::Netlist& nl) : nl_(nl) {
  is_clock_net_.assign(nl.num_nets(), false);
  if (nl.clock_net() != kNoNet) is_clock_net_[nl.clock_net()] = true;

  const std::vector<CellInstId> topo = nl.comb_topo_order();
  // Clock cells appear in topo order, so a single pass classifies the whole
  // clock network (each CK cell's input is produced before it).
  for (const CellInstId id : topo) {
    const liberty::Cell& lc = nl.lib_cell(id);
    if (liberty::is_clock_cell(lc.func)) {
      ClockCellStep step;
      step.cell = id;
      step.in = nl.cell(id).pin_nets[0];
      step.en = lc.func == CellFunc::kCkGate ? nl.cell(id).pin_nets[1] : kNoNet;
      step.out = nl.output_net(id);
      if (!is_clock_net_[step.in]) {
        throw std::runtime_error("simulator: clock cell " + nl.cell(id).name +
                                 " fed by non-clock net " + nl.net(step.in).name);
      }
      is_clock_net_[step.out] = true;
      clock_steps_.push_back(step);
    } else {
      comb_order_.push_back(id);
    }
  }

  for (CellInstId id = 0; id < nl.num_cells(); ++id) {
    const liberty::Cell& lc = nl.lib_cell(id);
    const auto& pins = nl.cell(id).pin_nets;
    if (liberty::is_sequential(lc.func)) {
      SeqCell s;
      s.cell = id;
      s.d = pins[0];
      s.ck = pins[1];
      s.resettable = lc.func == CellFunc::kDffR;
      s.is_latch = lc.func == CellFunc::kLatch;
      s.rn = s.resettable ? pins[2] : kNoNet;
      s.q = pins[s.resettable ? 3 : 2];
      seq_cells_.push_back(s);
    } else if (liberty::is_macro(lc.func)) {
      MacroCell m;
      m.cell = id;
      m.clk = pins[0];
      m.csb = pins[1];
      m.web = pins[2];
      std::size_t p = 3;
      // Pin layout: A0..A{na-1}, D0..D{nd-1}, Q0..Q{nd-1} (library convention).
      const std::size_t rest = lc.pins.size() - 3;
      const std::size_t nd = [&lc] {
        std::size_t outs = 0;
        for (const auto& pin : lc.pins) outs += pin.dir == liberty::PinDir::kOutput;
        return outs;
      }();
      const std::size_t na = rest - 2 * nd;
      for (std::size_t i = 0; i < na; ++i) m.addr.push_back(pins[p++]);
      for (std::size_t i = 0; i < nd; ++i) m.din.push_back(pins[p++]);
      for (std::size_t i = 0; i < nd; ++i) m.dout.push_back(pins[p++]);
      if (nd > 16) throw std::runtime_error("simulator: macro wider than 16 bits");
      m.mem.assign(std::size_t{1} << na, 0);
      macros_.push_back(std::move(m));
    }
  }
}

ToggleTrace CycleSimulator::run(StimulusGenerator& stim, int num_cycles) {
  obs::ObsSpan span("sim", "simulate");
  {
    obs::Registry& reg = obs::Registry::global();
    static obs::Counter* runs = &reg.counter("atlas_sim_runs_total");
    static obs::Counter* cycles = &reg.counter("atlas_sim_cycles_total");
    runs->inc();
    cycles->inc(static_cast<std::uint64_t>(num_cycles < 0 ? 0 : num_cycles));
  }
  const std::size_t n_nets = nl_.num_nets();
  std::vector<std::uint8_t> prev(n_nets, 0);  // values at end of previous cycle
  std::vector<std::uint8_t> cur(n_nets, 0);
  std::vector<std::uint8_t> clock_active(n_nets, 0);

  auto eval_cell = [&](CellInstId id, std::vector<std::uint8_t>& vals) {
    const liberty::Cell& lc = nl_.lib_cell(id);
    const auto& pins = nl_.cell(id).pin_nets;
    bool in[3];
    const int n_in = liberty::comb_input_count(lc.func);
    for (int i = 0; i < n_in; ++i) in[i] = vals[pins[static_cast<std::size_t>(i)]] != 0;
    const int out_pin = lc.output_pin();
    vals[pins[static_cast<std::size_t>(out_pin)]] =
        liberty::eval_comb(lc.func, in, n_in) ? 1 : 0;
  };

  // Settle pass ("cycle -1"): reset asserted, registers at zero, combinational
  // values consistent. Not recorded in the trace.
  {
    std::vector<std::uint8_t> scratch(n_nets, 0);
    StimulusGenerator settle_stim(stim);  // copy: do not consume real stream
    settle_stim.apply(0, scratch);
    for (const CellInstId id : comb_order_) eval_cell(id, scratch);
    prev = scratch;
  }

  ToggleTrace trace(n_nets, num_cycles);
  for (int cycle = 0; cycle < num_cycles; ++cycle) {
    cur = prev;

    // 1. Clock activity for this cycle (ICG enables sampled from prev cycle).
    if (nl_.clock_net() != kNoNet) clock_active[nl_.clock_net()] = 1;
    for (const ClockCellStep& step : clock_steps_) {
      std::uint8_t act = clock_active[step.in];
      if (step.en != kNoNet) act = act && prev[step.en];
      clock_active[step.out] = act;
    }

    // 2. Sequential elements capture previous-cycle D on active edges.
    for (const SeqCell& s : seq_cells_) {
      const bool clocked =
          is_clock_net_[s.ck] ? clock_active[s.ck] != 0 : prev[s.ck] != 0;
      if (!clocked) continue;
      std::uint8_t q = prev[s.d];
      if (s.resettable && prev[s.rn] == 0) q = 0;
      cur[s.q] = q;
    }

    // 3. Macros: synchronous 1RW port.
    for (MacroCell& m : macros_) {
      const bool clocked =
          is_clock_net_[m.clk] ? clock_active[m.clk] != 0 : prev[m.clk] != 0;
      if (!clocked || prev[m.csb] != 0) continue;  // CSB active low
      std::size_t addr = 0;
      for (std::size_t i = 0; i < m.addr.size(); ++i) {
        addr |= static_cast<std::size_t>(prev[m.addr[i]] != 0) << i;
      }
      if (prev[m.web] == 0) {  // write
        std::uint16_t word = 0;
        for (std::size_t i = 0; i < m.din.size(); ++i) {
          word |= static_cast<std::uint16_t>((prev[m.din[i]] != 0) << i);
        }
        m.mem[addr] = word;
      } else {  // read
        const std::uint16_t word = m.mem[addr];
        for (std::size_t i = 0; i < m.dout.size(); ++i) {
          cur[m.dout[i]] = (word >> i) & 1;
        }
      }
    }

    // 4. New primary-input values.
    stim.apply(cycle, cur);

    // 5. Combinational propagation.
    for (const CellInstId id : comb_order_) eval_cell(id, cur);

    // 6. Record values and transition counts. Nets are independent (each
    // writes its own trace byte and cur slot), so the per-cycle toggle
    // count parallelizes bit-identically to the serial loop.
    util::parallel_for_chunks(n_nets, std::size_t{8192},
                              [&](std::size_t begin, std::size_t end) {
      for (NetId net = static_cast<NetId>(begin);
           net < static_cast<NetId>(end); ++net) {
        if (is_clock_net_[net]) {
          const bool act = clock_active[net] != 0;
          trace.set(cycle, net, act, act ? 2 : 0);
          cur[net] = act ? 1 : 0;
        } else {
          const int transitions = (cur[net] != prev[net]) ? 1 : 0;
          trace.set(cycle, net, cur[net] != 0, transitions);
        }
      }
    });
    prev.swap(cur);
  }
  return trace;
}

}  // namespace atlas::sim
