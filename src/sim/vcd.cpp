#include "sim/vcd.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "util/strings.h"

namespace atlas::sim {
namespace {

/// VCD short identifiers: printable ASCII 33..126, little-endian base-94.
std::string vcd_id(std::size_t index) {
  std::string id;
  do {
    id.push_back(static_cast<char>(33 + index % 94));
    index /= 94;
  } while (index > 0);
  return id;
}

}  // namespace

std::string write_vcd(const netlist::Netlist& nl, const ToggleTrace& trace,
                      const std::vector<bool>& clock_net_mask) {
  std::ostringstream os;
  os << "$date atlas $end\n";
  os << "$version atlas vcd writer $end\n";
  os << "$timescale 1ns $end\n";
  os << "$scope module " << nl.name() << " $end\n";
  std::vector<netlist::NetId> dumped;
  for (netlist::NetId id = 0; id < nl.num_nets(); ++id) {
    if (id < clock_net_mask.size() && clock_net_mask[id]) continue;
    os << "$var wire 1 " << vcd_id(dumped.size()) << " " << nl.net(id).name
       << " $end\n";
    dumped.push_back(id);
  }
  os << "$upscope $end\n$enddefinitions $end\n";
  std::vector<std::uint8_t> last(dumped.size(), 2);  // force initial dump
  for (int cycle = 0; cycle < trace.num_cycles(); ++cycle) {
    os << "#" << cycle << "\n";
    for (std::size_t i = 0; i < dumped.size(); ++i) {
      const std::uint8_t v = trace.value(cycle, dumped[i]) ? 1 : 0;
      if (v == last[i]) continue;
      os << (v ? '1' : '0') << vcd_id(i) << "\n";
      last[i] = v;
    }
  }
  os << "#" << trace.num_cycles() << "\n";
  return os.str();
}

VcdData parse_vcd(std::string_view text, const netlist::Netlist& nl,
                  int max_cycles) {
  std::unordered_map<std::string, netlist::NetId> net_by_name;
  for (netlist::NetId id = 0; id < nl.num_nets(); ++id) {
    net_by_name.emplace(nl.net(id).name, id);
  }

  std::unordered_map<std::string, netlist::NetId> id_to_net;
  std::istringstream is{std::string(text)};
  std::string line;
  bool in_defs = true;
  int last_stamp = -1;
  std::vector<std::uint8_t> current(nl.num_nets(), 0);
  std::vector<std::vector<std::uint8_t>> frames;

  auto flush_until = [&](int stamp) {
    // Fill cycles (last_stamp, stamp) with the running values.
    for (int c = static_cast<int>(frames.size()); c < stamp; ++c) {
      frames.push_back(current);
    }
  };

  while (std::getline(is, line)) {
    const auto t = util::trim(line);
    if (t.empty()) continue;
    if (in_defs) {
      if (util::starts_with(t, "$var")) {
        const auto parts = util::split_ws(t);
        // $var wire 1 <id> <name> $end
        if (parts.size() < 6) throw std::runtime_error("vcd: malformed $var");
        const auto it = net_by_name.find(parts[4]);
        if (it == net_by_name.end()) {
          throw std::runtime_error("vcd: unknown net " + parts[4]);
        }
        id_to_net.emplace(parts[3], it->second);
      } else if (util::starts_with(t, "$enddefinitions")) {
        in_defs = false;
      }
      continue;
    }
    if (t[0] == '#') {
      // Manual digit parse: std::stoi would accept signs/whitespace and
      // throw logic_error subclasses; timestamps must be plain decimal and
      // stay under the cycle cap *before* any frame is allocated.
      const std::string digits{t.substr(1)};
      if (digits.empty() ||
          digits.find_first_not_of("0123456789") != std::string::npos) {
        throw std::runtime_error("vcd: bad timestamp: " + std::string(t));
      }
      long long stamp = 0;
      for (const char c : digits) {
        stamp = stamp * 10 + (c - '0');
        if (stamp > max_cycles) {
          throw std::runtime_error("vcd: timestamp " + digits +
                                   " exceeds cycle limit " +
                                   std::to_string(max_cycles));
        }
      }
      if (last_stamp >= 0) flush_until(static_cast<int>(stamp));
      last_stamp = static_cast<int>(stamp);
      continue;
    }
    if (t[0] == '0' || t[0] == '1') {
      const std::string sig{t.substr(1)};
      const auto it = id_to_net.find(sig);
      if (it == id_to_net.end()) throw std::runtime_error("vcd: unknown id " + sig);
      current[it->second] = t[0] == '1' ? 1 : 0;
      continue;
    }
    throw std::runtime_error("vcd: unexpected line: " + std::string(t));
  }

  VcdData out;
  out.num_nets = nl.num_nets();
  out.num_cycles = static_cast<int>(frames.size());
  out.values.reserve(frames.size() * nl.num_nets());
  for (const auto& f : frames) {
    out.values.insert(out.values.end(), f.begin(), f.end());
  }
  return out;
}

ToggleTrace trace_from_vcd(const VcdData& vcd, const netlist::Netlist& nl) {
  if (vcd.num_nets != nl.num_nets()) {
    throw std::runtime_error("trace_from_vcd: net count mismatch");
  }
  // Clock-network classification mirrors CycleSimulator's constructor.
  std::vector<bool> is_clock(nl.num_nets(), false);
  if (nl.clock_net() != netlist::kNoNet) is_clock[nl.clock_net()] = true;
  struct ClockStep {
    netlist::NetId in, en, out;
  };
  std::vector<ClockStep> steps;
  for (const netlist::CellInstId id : nl.comb_topo_order()) {
    const liberty::Cell& lc = nl.lib_cell(id);
    if (!liberty::is_clock_cell(lc.func)) continue;
    ClockStep s;
    s.in = nl.cell(id).pin_nets[0];
    s.en = lc.func == liberty::CellFunc::kCkGate ? nl.cell(id).pin_nets[1]
                                                 : netlist::kNoNet;
    s.out = nl.output_net(id);
    is_clock[s.out] = true;
    steps.push_back(s);
  }

  ToggleTrace trace(nl.num_nets(), vcd.num_cycles);
  std::vector<std::uint8_t> active(nl.num_nets(), 0);
  for (int c = 0; c < vcd.num_cycles; ++c) {
    if (nl.clock_net() != netlist::kNoNet) active[nl.clock_net()] = 1;
    for (const ClockStep& s : steps) {
      std::uint8_t a = active[s.in];
      if (s.en != netlist::kNoNet && c > 0) a = a && vcd.value(c - 1, s.en);
      active[s.out] = a;
    }
    for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
      if (is_clock[n]) {
        trace.set(c, n, active[n] != 0, active[n] ? 2 : 0);
      } else {
        const bool v = vcd.value(c, n);
        const bool changed = c > 0 && v != vcd.value(c - 1, n);
        trace.set(c, n, v, changed ? 1 : 0);
      }
    }
  }
  return trace;
}

void save_vcd_file(const netlist::Netlist& nl, const ToggleTrace& trace,
                   const std::vector<bool>& clock_net_mask,
                   const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  os << write_vcd(nl, trace, clock_net_mask);
  if (!os) throw std::runtime_error("write failed: " + path);
}

}  // namespace atlas::sim
