#include "sim/external_trace.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sim/delta_trace.h"
#include "util/hash.h"
#include "util/strings.h"

namespace atlas::sim {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  if (in.bad()) throw std::runtime_error("read failed: " + path);
  return std::move(text).str();
}

}  // namespace

ExternalTrace ExternalTrace::from_vcd_text(std::string text) {
  ExternalTrace t;
  t.hash_ = util::fnv1a64(text);
  t.bytes_ = std::move(text);
  t.encoding_ = TraceEncoding::kVcdText;
  return t;
}

ExternalTrace ExternalTrace::from_delta_bytes(std::string bytes) {
  ExternalTrace t;
  t.hash_ = util::fnv1a64(bytes);
  t.bytes_ = std::move(bytes);
  t.encoding_ = TraceEncoding::kDelta;
  return t;
}

ExternalTrace ExternalTrace::from_vcd_file(const std::string& path) {
  return from_vcd_text(slurp(path));
}

ExternalTrace ExternalTrace::from_file(const std::string& path) {
  std::string bytes = slurp(path);
  if (looks_like_delta(bytes)) return from_delta_bytes(std::move(bytes));
  return from_vcd_text(std::move(bytes));
}

ToggleTrace ExternalTrace::resolve(const netlist::Netlist& nl,
                                   int max_cycles) const {
  const VcdData vcd = encoding_ == TraceEncoding::kDelta
                          ? parse_delta(bytes_, nl, max_cycles)
                          : parse_vcd(bytes_, nl, max_cycles);
  return trace_from_vcd(vcd, nl);
}

int ExternalTrace::declared_cycles(int max_cycles) const {
  if (encoding_ == TraceEncoding::kDelta) {
    return delta_declared_cycles(bytes_, max_cycles);
  }
  // The writer's convention (one timestep per cycle, trailing "#N"
  // sentinel) makes the largest timestamp the cycle count; parse_vcd's
  // frame filling yields exactly that many cycles.
  std::istringstream is(bytes_);
  std::string line;
  long long last = 0;
  while (std::getline(is, line)) {
    const auto t = util::trim(line);
    if (t.empty() || t[0] != '#') continue;
    const std::string digits{t.substr(1)};
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      throw std::runtime_error("vcd: bad timestamp: " + std::string(t));
    }
    long long stamp = 0;
    for (const char c : digits) {
      stamp = stamp * 10 + (c - '0');
      if (stamp > max_cycles) {
        throw std::runtime_error("vcd: timestamp " + digits +
                                 " exceeds cycle limit " +
                                 std::to_string(max_cycles));
      }
    }
    if (stamp > last) last = stamp;
  }
  return static_cast<int>(last);
}

}  // namespace atlas::sim
