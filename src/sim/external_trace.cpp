#include "sim/external_trace.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/hash.h"
#include "util/strings.h"

namespace atlas::sim {

ExternalTrace ExternalTrace::from_vcd_text(std::string text) {
  ExternalTrace t;
  t.hash_ = util::fnv1a64(text);
  t.text_ = std::move(text);
  return t;
}

ExternalTrace ExternalTrace::from_vcd_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  if (in.bad()) throw std::runtime_error("read failed: " + path);
  return from_vcd_text(std::move(text).str());
}

ToggleTrace ExternalTrace::resolve(const netlist::Netlist& nl,
                                   int max_cycles) const {
  const VcdData vcd = parse_vcd(text_, nl, max_cycles);
  return trace_from_vcd(vcd, nl);
}

int ExternalTrace::declared_cycles(int max_cycles) const {
  // The writer's convention (one timestep per cycle, trailing "#N"
  // sentinel) makes the largest timestamp the cycle count; parse_vcd's
  // frame filling yields exactly that many cycles.
  std::istringstream is(text_);
  std::string line;
  long long last = 0;
  while (std::getline(is, line)) {
    const auto t = util::trim(line);
    if (t.empty() || t[0] != '#') continue;
    const std::string digits{t.substr(1)};
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      throw std::runtime_error("vcd: bad timestamp: " + std::string(t));
    }
    long long stamp = 0;
    for (const char c : digits) {
      stamp = stamp * 10 + (c - '0');
      if (stamp > max_cycles) {
        throw std::runtime_error("vcd: timestamp " + digits +
                                 " exceeds cycle limit " +
                                 std::to_string(max_cycles));
      }
    }
    if (stamp > last) last = stamp;
  }
  return static_cast<int>(last);
}

}  // namespace atlas::sim
