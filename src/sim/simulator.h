// Cycle-based gate-level logic simulator and per-cycle toggle traces.
//
// Substitutes for the paper's VCS gate-level workload simulation. The model
// is a zero-delay, glitch-free, 2-value cycle simulator:
//
//   * data nets record logic value per cycle and 0/1 transitions per cycle;
//   * clock-network nets (the clock primary input and everything reached
//     through CK cells) toggle twice per active cycle; an integrated clock
//     gate (CKGATE) blocks downstream clock activity when its enable —
//     sampled from the previous cycle, as a real ICG latch does — is low;
//   * registers capture D from the end of the previous cycle on each active
//     clock edge; DFFR applies an active-low synchronous reset; latches are
//     approximated as edge-triggered on their previous-cycle enable;
//   * SRAM macros implement 1RW synchronous read/write (CSB/WEB active low).
//
// This is exactly the information ATLAS consumes (per-cycle toggles) and the
// power analyzer integrates (transition counts per net per cycle).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"
#include "sim/stimulus.h"

namespace atlas::sim {

/// Per-net, per-cycle values and transition counts.
class ToggleTrace {
 public:
  /// Empty trace (0 nets, 0 cycles); assign a real one before use.
  ToggleTrace() = default;
  ToggleTrace(std::size_t num_nets, int num_cycles);

  std::size_t num_nets() const { return num_nets_; }
  int num_cycles() const { return num_cycles_; }

  bool value(int cycle, netlist::NetId net) const {
    return (at(cycle, net) & 0x1) != 0;
  }
  /// Transitions on the net during this cycle: 0, 1 (data flip) or 2 (clock).
  int transitions(int cycle, netlist::NetId net) const {
    return at(cycle, net) >> 1;
  }
  void set(int cycle, netlist::NetId net, bool value, int transitions);

  /// Average transitions per cycle over the whole trace.
  double toggle_rate(netlist::NetId net) const;

  /// Total transitions on a net across all cycles.
  long long total_transitions(netlist::NetId net) const;

 private:
  std::uint8_t at(int cycle, netlist::NetId net) const {
    return data_[static_cast<std::size_t>(cycle) * num_nets_ + net];
  }

  std::size_t num_nets_ = 0;
  int num_cycles_ = 0;
  std::vector<std::uint8_t> data_;  // bit0 value, bits1.. transition count
};

class CycleSimulator {
 public:
  /// Precomputes topological order and clock-network structure.
  /// Throws if the netlist fails structural checks relevant to simulation.
  explicit CycleSimulator(const netlist::Netlist& nl);

  /// Simulate `num_cycles` cycles driven by `stim`.
  ToggleTrace run(StimulusGenerator& stim, int num_cycles);

  /// Nets classified as part of the clock network (incl. the clock root).
  const std::vector<bool>& clock_net_mask() const { return is_clock_net_; }

 private:
  struct SeqCell {
    netlist::CellInstId cell;
    netlist::NetId d, ck, rn, q;
    bool resettable;
    bool is_latch;
  };
  struct MacroCell {
    netlist::CellInstId cell;
    netlist::NetId clk, csb, web;
    std::vector<netlist::NetId> addr, din, dout;
    std::vector<std::uint16_t> mem;  // 2^addr_bits words of data_bits<=16
  };
  struct ClockCellStep {
    netlist::CellInstId cell;
    netlist::NetId in, en, out;  // en == kNoNet for buffers/inverters
  };

  const netlist::Netlist& nl_;
  std::vector<netlist::CellInstId> comb_order_;   // data cells, topo order
  std::vector<ClockCellStep> clock_steps_;        // clock cells, topo order
  std::vector<SeqCell> seq_cells_;
  std::vector<MacroCell> macros_;
  std::vector<bool> is_clock_net_;
};

}  // namespace atlas::sim
