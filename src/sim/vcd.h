// Minimal VCD (Value Change Dump) writer and reader.
//
// The paper's workloads arrive as .fsdb/.vcd activity files; this module
// provides the same interchange for our traces so workloads can be dumped
// from the simulator, inspected with standard tools, and read back into a
// ToggleTrace-equivalent form.
//
// One VCD timestep = one clock cycle (clock-network nets are omitted from
// the dump; their activity is reconstructed from the netlist when reading).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.h"
#include "sim/simulator.h"

namespace atlas::sim {

/// Serialize the data-net values of a trace as VCD text.
std::string write_vcd(const netlist::Netlist& nl, const ToggleTrace& trace,
                      const std::vector<bool>& clock_net_mask);

/// Values parsed back from a VCD: per-net per-cycle levels for the nets that
/// were dumped (absent nets keep value 0).
struct VcdData {
  int num_cycles = 0;
  /// Indexed [cycle * num_nets + net]; 0/1 levels.
  std::vector<std::uint8_t> values;
  std::size_t num_nets = 0;

  bool value(int cycle, netlist::NetId net) const {
    return values[static_cast<std::size_t>(cycle) * num_nets + net] != 0;
  }
};

/// Hard ceiling on the cycle count a parsed VCD may declare. The parser
/// materializes one frame per timestep, so a hostile `#<huge>` timestamp
/// would otherwise be an allocation bomb; anything past the cap throws
/// before the frames are allocated. Matches the serve layer's per-request
/// cycle limit.
inline constexpr int kMaxVcdCycles = 1 << 20;

/// Parse VCD text produced by write_vcd, resolving signal names against `nl`.
/// Throws std::runtime_error on malformed input, unknown net names, or a
/// trace longer than `max_cycles` — never crashes or over-allocates on
/// hostile input (see the malformed-VCD corpus in sim_test).
VcdData parse_vcd(std::string_view text, const netlist::Netlist& nl,
                  int max_cycles = kMaxVcdCycles);

void save_vcd_file(const netlist::Netlist& nl, const ToggleTrace& trace,
                   const std::vector<bool>& clock_net_mask,
                   const std::string& path);

/// Rebuild a ToggleTrace from parsed VCD values: data-net transitions are
/// derived from value changes; clock-network activity (not stored in the
/// dump) is reconstructed from the netlist structure, assuming ungated
/// clocks run every cycle and ICG enables follow their (previous-cycle) data
/// values — the same convention the simulator uses. This closes the loop for
/// externally supplied workloads: VCD in, power analysis out.
ToggleTrace trace_from_vcd(const VcdData& vcd, const netlist::Netlist& nl);

}  // namespace atlas::sim
