#include "sim/delta_trace.h"

#include <cstring>
#include <string>
#include <vector>

#include "util/hash.h"

namespace atlas::sim {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw DeltaError("delta: " + what);
}

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>(0x80 | (v & 0x7f)));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

std::size_t bitmap_bytes_for(std::uint64_t num_nets) {
  return static_cast<std::size_t>((num_nets + 7) / 8);
}

/// Mask of the bits in the final bitmap byte that address real nets; set
/// padding bits are a decode error so every valid trace has one canonical
/// byte form.
unsigned last_byte_mask(std::uint64_t num_nets) {
  const unsigned rem = static_cast<unsigned>(num_nets % 8);
  return rem == 0 ? 0xffu : (1u << rem) - 1u;
}

struct Cursor {
  const unsigned char* p;
  const unsigned char* end;

  std::size_t remaining() const { return static_cast<std::size_t>(end - p); }

  std::uint64_t varint(const char* what) {
    std::uint64_t v = 0;
    for (int i = 0; i < 10; ++i) {
      if (p == end) fail(std::string(what) + ": truncated varint");
      const unsigned char b = *p++;
      v |= static_cast<std::uint64_t>(b & 0x7f) << (7 * i);
      if ((b & 0x80) == 0) return v;
    }
    fail(std::string(what) + ": varint exceeds 10 bytes");
  }

  unsigned char byte(const char* what) {
    if (p == end) fail(std::string(what) + ": truncated");
    return *p++;
  }

  const unsigned char* bytes(std::size_t n, const char* what) {
    if (remaining() < n) fail(std::string(what) + ": truncated");
    const unsigned char* at = p;
    p += n;
    return at;
  }
};

/// Shared encoder over any level(cycle, net) source; both public overloads
/// feed it the same levels for the same trace, so their bytes are identical.
template <typename LevelFn>
std::string encode_delta(const netlist::Netlist& nl, int num_cycles,
                         LevelFn&& level) {
  const std::size_t num_nets = nl.num_nets();
  const std::size_t bm_bytes = bitmap_bytes_for(num_nets);

  std::string out;
  out.append(kDeltaMagic, sizeof(kDeltaMagic));
  out.push_back(static_cast<char>(kDeltaVersion));
  put_varint(out, num_nets);
  put_varint(out, static_cast<std::uint64_t>(num_cycles));
  const std::uint64_t order = net_order_hash(nl);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((order >> (8 * i)) & 0xff));
  }
  if (num_cycles <= 0) return out;

  std::string bitmap(bm_bytes, '\0');
  for (netlist::NetId n = 0; n < num_nets; ++n) {
    if (level(0, n)) bitmap[n / 8] |= static_cast<char>(1u << (n % 8));
  }
  out += bitmap;

  std::vector<netlist::NetId> toggled;
  std::string rle;
  int prev_record_cycle = 0;
  for (int c = 1; c < num_cycles; ++c) {
    toggled.clear();
    for (netlist::NetId n = 0; n < num_nets; ++n) {
      if (level(c, n) != level(c - 1, n)) toggled.push_back(n);
    }
    if (toggled.empty()) continue;

    // Gather [start, start+len) runs of consecutive toggled indices.
    rle.clear();
    std::uint64_t nruns = 0;
    {
      std::string runs;
      std::size_t i = 0, prev_end = 0;
      while (i < toggled.size()) {
        std::size_t j = i + 1;
        while (j < toggled.size() && toggled[j] == toggled[j - 1] + 1) ++j;
        put_varint(runs, toggled[i] - prev_end);
        put_varint(runs, j - i);
        prev_end = toggled[i] + (j - i);
        ++nruns;
        i = j;
      }
      put_varint(rle, nruns);
      rle += runs;
    }

    put_varint(out, static_cast<std::uint64_t>(c - prev_record_cycle - 1));
    prev_record_cycle = c;
    if (rle.size() <= bm_bytes) {
      out.push_back('\0');  // kind 0: RLE
      out += rle;
    } else {
      out.push_back('\1');  // kind 1: raw bitmap
      bitmap.assign(bm_bytes, '\0');
      for (const netlist::NetId n : toggled) {
        bitmap[n / 8] |= static_cast<char>(1u << (n % 8));
      }
      out += bitmap;
    }
  }
  return out;
}

/// Decode/validate core. With `nl` set the trace must match the netlist;
/// with `out` set per-cycle frames are materialized (parse), otherwise the
/// walk only checks structure and never allocates proportionally to the
/// declared sizes (validate).
void decode_delta(std::string_view bytes, int max_cycles,
                  const netlist::Netlist* nl, VcdData* out) {
  Cursor cur{reinterpret_cast<const unsigned char*>(bytes.data()),
             reinterpret_cast<const unsigned char*>(bytes.data()) +
                 bytes.size()};
  if (cur.remaining() < sizeof(kDeltaMagic) ||
      std::memcmp(cur.p, kDeltaMagic, sizeof(kDeltaMagic)) != 0) {
    fail("bad magic (not an ATDT delta trace)");
  }
  cur.p += sizeof(kDeltaMagic);
  const unsigned char version = cur.byte("version");
  if (version != kDeltaVersion) {
    fail("unsupported version " + std::to_string(version));
  }
  const std::uint64_t num_nets = cur.varint("num_nets");
  const std::uint64_t num_cycles = cur.varint("num_cycles");
  if (max_cycles < 0) max_cycles = 0;
  if (num_cycles > static_cast<std::uint64_t>(max_cycles)) {
    fail("declared cycle count " + std::to_string(num_cycles) +
         " exceeds cycle limit " + std::to_string(max_cycles));
  }
  std::uint64_t order = 0;
  {
    const unsigned char* h = cur.bytes(8, "net-order hash");
    for (int i = 0; i < 8; ++i) order |= static_cast<std::uint64_t>(h[i])
                                         << (8 * i);
  }
  if (nl != nullptr) {
    if (num_nets != nl->num_nets()) {
      fail("net count mismatch: trace has " + std::to_string(num_nets) +
           " nets, netlist has " + std::to_string(nl->num_nets()));
    }
    if (order != net_order_hash(*nl)) {
      fail("net-order hash mismatch (trace was encoded against a different "
           "netlist)");
    }
  }

  const std::size_t bm_bytes = bitmap_bytes_for(num_nets);
  const unsigned pad_mask = last_byte_mask(num_nets);
  std::vector<std::uint8_t> current;
  if (out != nullptr) {
    out->num_nets = static_cast<std::size_t>(num_nets);
    out->num_cycles = static_cast<int>(num_cycles);
    current.assign(static_cast<std::size_t>(num_nets), 0);
  }
  if (num_cycles == 0) {
    if (cur.remaining() != 0) fail("cycle record in a zero-cycle trace");
    return;
  }

  const unsigned char* init = cur.bytes(bm_bytes, "initial level bitmap");
  if (bm_bytes > 0 && (init[bm_bytes - 1] & ~pad_mask) != 0) {
    fail("padding bits set in initial level bitmap");
  }
  if (out != nullptr) {
    for (std::uint64_t n = 0; n < num_nets; ++n) {
      current[n] = (init[n / 8] >> (n % 8)) & 1u;
    }
    out->values.insert(out->values.end(), current.begin(), current.end());
  }

  std::uint64_t cycle = 0;  // last materialized cycle
  const auto emit_through = [&](std::uint64_t c) {
    if (out == nullptr) return;
    while (cycle < c) {
      out->values.insert(out->values.end(), current.begin(), current.end());
      ++cycle;
    }
  };

  while (cur.remaining() != 0) {
    const std::uint64_t skip = cur.varint("cycle skip");
    if (skip >= num_cycles || cycle + 1 + skip >= num_cycles) {
      fail("cycle record at cycle " +
           std::to_string(static_cast<unsigned long long>(cycle) + 1 + skip) +
           " past declared count " + std::to_string(num_cycles));
    }
    const std::uint64_t c = cycle + 1 + skip;
    emit_through(c - 1);  // quiet cycles repeat the previous levels

    const unsigned char kind = cur.byte("record kind");
    if (kind == 0) {
      const std::uint64_t nruns = cur.varint("run count");
      if (nruns == 0) fail("RLE record with zero runs");
      if (nruns > num_nets) {
        fail("run count " + std::to_string(nruns) + " exceeds net count " +
             std::to_string(num_nets));
      }
      std::uint64_t pos = 0;
      for (std::uint64_t r = 0; r < nruns; ++r) {
        const std::uint64_t gap = cur.varint("run gap");
        const std::uint64_t len = cur.varint("run length");
        if (len == 0) fail("zero-length RLE run");
        if (r > 0 && gap == 0) fail("adjacent RLE runs must be merged");
        if (gap > num_nets - pos || len > num_nets - pos - gap) {
          fail("RLE run past net count " + std::to_string(num_nets));
        }
        const std::uint64_t start = pos + gap;
        if (out != nullptr) {
          for (std::uint64_t n = start; n < start + len; ++n) current[n] ^= 1u;
        }
        pos = start + len;
      }
    } else if (kind == 1) {
      const unsigned char* bm = cur.bytes(bm_bytes, "toggle bitmap");
      if (bm_bytes == 0) fail("empty toggle bitmap record");
      if ((bm[bm_bytes - 1] & ~pad_mask) != 0) {
        fail("padding bits set in toggle bitmap");
      }
      bool any = false;
      for (std::size_t i = 0; i < bm_bytes; ++i) any = any || bm[i] != 0;
      if (!any) fail("empty toggle bitmap record");
      if (out != nullptr) {
        for (std::uint64_t n = 0; n < num_nets; ++n) {
          current[n] ^= (bm[n / 8] >> (n % 8)) & 1u;
        }
      }
    } else {
      fail("unknown record kind " + std::to_string(kind));
    }
    if (out != nullptr) {
      out->values.insert(out->values.end(), current.begin(), current.end());
      cycle = c;
    } else {
      cycle = c;
    }
  }
  emit_through(num_cycles - 1);  // trailing quiet cycles
}

}  // namespace

bool looks_like_delta(std::string_view bytes) {
  return bytes.size() >= sizeof(kDeltaMagic) &&
         std::memcmp(bytes.data(), kDeltaMagic, sizeof(kDeltaMagic)) == 0;
}

std::uint64_t net_order_hash(const netlist::Netlist& nl) {
  std::uint64_t h = util::kFnvOffsetBasis;
  for (const netlist::Net& net : nl.nets()) {
    h = util::fnv1a64(net.name.data(), net.name.size(), h);
    const char zero = '\0';
    h = util::fnv1a64(&zero, 1, h);
  }
  return h;
}

std::string write_delta(const netlist::Netlist& nl, const ToggleTrace& trace,
                        const std::vector<bool>& clock_net_mask) {
  if (trace.num_nets() != nl.num_nets()) {
    fail("trace net count does not match netlist");
  }
  if (clock_net_mask.size() != nl.num_nets()) {
    fail("clock mask size does not match netlist");
  }
  return encode_delta(nl, trace.num_cycles(),
                      [&](int c, netlist::NetId n) {
                        return !clock_net_mask[n] && trace.value(c, n);
                      });
}

std::string write_delta(const netlist::Netlist& nl, const VcdData& vcd) {
  if (vcd.num_nets != nl.num_nets()) {
    fail("vcd net count does not match netlist");
  }
  return encode_delta(nl, vcd.num_cycles, [&](int c, netlist::NetId n) {
    return vcd.value(c, n);
  });
}

VcdData parse_delta(std::string_view bytes, const netlist::Netlist& nl,
                    int max_cycles) {
  VcdData out;
  decode_delta(bytes, max_cycles, &nl, &out);
  return out;
}

void validate_delta(std::string_view bytes, int max_cycles) {
  decode_delta(bytes, max_cycles, nullptr, nullptr);
}

int delta_declared_cycles(std::string_view bytes, int max_cycles) {
  Cursor cur{reinterpret_cast<const unsigned char*>(bytes.data()),
             reinterpret_cast<const unsigned char*>(bytes.data()) +
                 bytes.size()};
  if (cur.remaining() < sizeof(kDeltaMagic) ||
      std::memcmp(cur.p, kDeltaMagic, sizeof(kDeltaMagic)) != 0) {
    fail("bad magic (not an ATDT delta trace)");
  }
  cur.p += sizeof(kDeltaMagic);
  const unsigned char version = cur.byte("version");
  if (version != kDeltaVersion) {
    fail("unsupported version " + std::to_string(version));
  }
  (void)cur.varint("num_nets");
  const std::uint64_t num_cycles = cur.varint("num_cycles");
  if (max_cycles < 0) max_cycles = 0;
  if (num_cycles > static_cast<std::uint64_t>(max_cycles)) {
    fail("declared cycle count " + std::to_string(num_cycles) +
         " exceeds cycle limit " + std::to_string(max_cycles));
  }
  return static_cast<int>(num_cycles);
}

}  // namespace atlas::sim
