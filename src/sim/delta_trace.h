// Binary toggle-delta trace codec ("ATDT") — the compact wire format for
// per-cycle toggle activity.
//
// VCD text re-states every net name in its header and spends ~4 bytes per
// value change plus a timestamp line per cycle; for the streamed-predict
// path that makes the trace the wire bottleneck. The delta format instead
// assumes the decoder knows the target netlist (it always does: the netlist
// text — or its hash, for design-by-hash streaming — travels in the same
// request) and encodes only *which nets toggled each cycle*:
//
//   offset  size             field
//   0       4                magic "ATDT"
//   4       1                version (currently 1)
//   5       varint           num_nets   (must equal the target netlist's)
//   ..      varint           num_cycles
//   ..      8                net-order hash (u64 LE): FNV-1a over every net
//                            name + '\0' in NetId order — decoding against a
//                            netlist with different net names/order is an
//                            error, never a silent misattribution
//   ..      ceil(nets/8)     cycle-0 level bitmap (bit n = level of net n;
//                            clock-network nets are 0, as in a parsed VCD)
//   ..      ...              cycle records, consuming the rest of the buffer
//
// Each cycle record encodes the nets that toggled on one cycle c >= 1:
//
//   varint  skip             fully-quiet cycles since the previous record
//                            (first record: since cycle 0); trailing quiet
//                            cycles are implied by num_cycles
//   u8      kind             0 = RLE runs, 1 = raw bitmap
//   kind 0: varint nruns (>= 1), then nruns x { varint gap, varint len }:
//           run i covers nets [start, start+len), len >= 1, start = gap for
//           the first run and previous run end + gap (gap >= 1) after —
//           adjacent runs must be merged, indices must stay < num_nets
//   kind 1: ceil(nets/8) bytes, bit n set = net n toggled; at least one bit
//           must be set (a quiet cycle is encoded by skipping, never by an
//           empty record)
//
// The encoder emits whichever of the two body kinds is smaller per cycle, so
// sparse cycles cost a few varints and dense cycles are capped at one bit
// per net. All varints are LEB128, at most 10 bytes. Every structural
// violation — truncation, oversized varints, out-of-range net indices,
// records past num_cycles, empty records — throws DeltaError before any
// allocation proportional to the hostile declaration (the same contract as
// the hardened VCD parser). Versioning: the u8 after the magic gates the
// layout; decoders reject versions they do not know, so a future v2 (e.g.
// per-record checksums or multi-bit nets) is a clean break, not a misparse.
//
// Decoding produces the same VcdData that parse_vcd yields for the
// equivalent VCD text, so both formats flow through the one
// trace_from_vcd/resolve() path and stay bit-identical by construction.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "netlist/netlist.h"
#include "sim/simulator.h"
#include "sim/vcd.h"

namespace atlas::sim {

/// Malformed or mismatched delta-trace bytes (the typed lib-side error the
/// serve layer maps to kStreamProtocol / kBadRequest).
class DeltaError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr char kDeltaMagic[4] = {'A', 'T', 'D', 'T'};
inline constexpr std::uint8_t kDeltaVersion = 1;

/// True when `bytes` starts with the ATDT magic (format sniffing for files
/// and tools; not a validity check).
bool looks_like_delta(std::string_view bytes);

/// FNV-1a over every net name + '\0' in NetId order — the header field that
/// binds a delta trace to the net ordering it was encoded against.
std::uint64_t net_order_hash(const netlist::Netlist& nl);

/// Encode the data-net levels of `trace` (the same net set write_vcd dumps;
/// clock-network nets are encoded as constant 0).
std::string write_delta(const netlist::Netlist& nl, const ToggleTrace& trace,
                        const std::vector<bool>& clock_net_mask);

/// Transcode already-parsed VCD values. Produces bytes identical to the
/// ToggleTrace overload for the same underlying trace.
std::string write_delta(const netlist::Netlist& nl, const VcdData& vcd);

/// Decode delta bytes against `nl` into the per-cycle levels parse_vcd
/// would yield for the equivalent VCD text. Throws DeltaError on malformed
/// bytes, a num_nets/net-order mismatch with `nl`, or a declared cycle
/// count past `max_cycles` (checked before frames are allocated).
VcdData parse_delta(std::string_view bytes, const netlist::Netlist& nl,
                    int max_cycles = kMaxVcdCycles);

/// Structural validation without a netlist: header, varint and record
/// framing, run/bitmap bounds against the declared num_nets, cycle bounds
/// against num_cycles and `max_cycles`. Never allocates proportionally to
/// declared sizes — the serve layer runs this on the connection thread
/// before dispatching a streamed delta upload. Throws DeltaError.
void validate_delta(std::string_view bytes, int max_cycles = kMaxVcdCycles);

/// Cycle count declared in the header (cheap peek, no body walk). Throws
/// DeltaError on a malformed header or a count past `max_cycles`.
int delta_declared_cycles(std::string_view bytes,
                          int max_cycles = kMaxVcdCycles);

}  // namespace atlas::sim
