// Externally supplied per-cycle toggle traces (the "real workload" input).
//
// The paper's headline use case is time-based power analysis on real
// activity, not just the built-in synthetic W1/W2 stimuli. An ExternalTrace
// carries a client-supplied VCD-subset trace as an immutable blob plus its
// content hash, and resolves it against a netlist into the same ToggleTrace
// the cycle simulator produces — so the power analyzer and the ATLAS model
// consume external activity through exactly the code path they already use.
//
// The blob is kept verbatim (not pre-parsed) on purpose:
//   * the serve layer caches embeddings keyed by content_hash(), so a warm
//     request never parses the trace at all;
//   * resolution needs the target netlist for name binding, which arrives
//     separately (offline: a Verilog file; online: the request's netlist
//     text), and must be bit-identical either way — one resolve() path
//     guarantees that.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.h"
#include "sim/simulator.h"
#include "sim/vcd.h"

namespace atlas::sim {

class ExternalTrace {
 public:
  ExternalTrace() = default;

  /// Wrap VCD text (write_vcd subset). The text is validated lazily by
  /// resolve(); construction only hashes it.
  static ExternalTrace from_vcd_text(std::string text);

  /// Read a .vcd file from disk. Throws std::runtime_error on I/O failure.
  static ExternalTrace from_vcd_file(const std::string& path);

  bool empty() const { return text_.empty(); }
  const std::string& text() const { return text_; }
  std::size_t size_bytes() const { return text_.size(); }

  /// FNV-1a of the raw trace bytes — the serve-layer embedding-cache key
  /// component, stable across processes and transports.
  std::uint64_t content_hash() const { return hash_; }

  /// Parse against `nl` and rebuild per-net per-cycle values + transitions
  /// (clock-network activity reconstructed as trace_from_vcd documents).
  /// Cycle 0 carries no data-net transitions: a VCD stores levels, so
  /// switching relative to the pre-trace state is unknowable — replayed
  /// power matches a live simulation exactly from cycle 1 on.
  /// Throws std::runtime_error on malformed text, unknown net names, or a
  /// trace longer than `max_cycles`.
  ToggleTrace resolve(const netlist::Netlist& nl,
                      int max_cycles = kMaxVcdCycles) const;

  /// Cycle count the trace declares, without resolving against a netlist
  /// (a cheap scan of the timestamp lines). Throws on malformed timestamps.
  int declared_cycles(int max_cycles = kMaxVcdCycles) const;

 private:
  std::string text_;
  std::uint64_t hash_ = 0;
};

}  // namespace atlas::sim
