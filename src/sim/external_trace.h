// Externally supplied per-cycle toggle traces (the "real workload" input).
//
// The paper's headline use case is time-based power analysis on real
// activity, not just the built-in synthetic W1/W2 stimuli. An ExternalTrace
// carries a client-supplied trace as an immutable blob plus its content
// hash, and resolves it against a netlist into the same ToggleTrace the
// cycle simulator produces — so the power analyzer and the ATLAS model
// consume external activity through exactly the code path they already use.
//
// Two encodings are carried behind the one resolve() path: the VCD text
// subset write_vcd emits, and the binary ATDT toggle-delta format
// (sim/delta_trace.h) that the streamed-predict wire path uses to avoid
// multi-megabyte VCD uploads. Both decode to the same VcdData and flow
// through trace_from_vcd, so offline `atlas_cli --vcd` and both wire
// formats stay bit-identical on the same underlying trace.
//
// The blob is kept verbatim (not pre-parsed) on purpose:
//   * the serve layer caches embeddings keyed by content_hash(), so a warm
//     request never parses the trace at all;
//   * resolution needs the target netlist for name/index binding, which
//     arrives separately (offline: a Verilog file; online: the request's
//     netlist text or design hash), and must be bit-identical either way —
//     one resolve() path guarantees that.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.h"
#include "sim/simulator.h"
#include "sim/vcd.h"

namespace atlas::sim {

/// On-wire / on-disk encoding of an ExternalTrace blob.
enum class TraceEncoding {
  kVcdText,  ///< write_vcd text subset
  kDelta,    ///< binary ATDT toggle-delta (sim/delta_trace.h)
};

class ExternalTrace {
 public:
  ExternalTrace() = default;

  /// Wrap VCD text (write_vcd subset). The text is validated lazily by
  /// resolve(); construction only hashes it.
  static ExternalTrace from_vcd_text(std::string text);

  /// Wrap binary ATDT delta bytes. Validated lazily by resolve(), same as
  /// the VCD constructor (use validate_delta for an eager structural check).
  static ExternalTrace from_delta_bytes(std::string bytes);

  /// Read a .vcd file from disk. Throws std::runtime_error on I/O failure.
  static ExternalTrace from_vcd_file(const std::string& path);

  /// Read a trace file of either encoding, sniffing the ATDT magic to pick
  /// between delta and VCD text. Throws std::runtime_error on I/O failure.
  static ExternalTrace from_file(const std::string& path);

  bool empty() const { return bytes_.empty(); }
  TraceEncoding encoding() const { return encoding_; }
  /// The raw trace blob (VCD text or ATDT bytes, per encoding()).
  const std::string& bytes() const { return bytes_; }
  /// Deprecated spelling of bytes() from when VCD text was the only
  /// encoding; kept for existing callers.
  const std::string& text() const { return bytes_; }
  std::size_t size_bytes() const { return bytes_.size(); }

  /// FNV-1a of the raw trace bytes — the serve-layer embedding-cache key
  /// component, stable across processes and transports. (The same trace in
  /// the two encodings hashes differently; the cache just warms per form.)
  std::uint64_t content_hash() const { return hash_; }

  /// Parse against `nl` and rebuild per-net per-cycle values + transitions
  /// (clock-network activity reconstructed as trace_from_vcd documents).
  /// Cycle 0 carries no data-net transitions: both encodings store levels,
  /// so switching relative to the pre-trace state is unknowable — replayed
  /// power matches a live simulation exactly from cycle 1 on.
  /// Throws std::runtime_error (DeltaError for delta blobs) on malformed
  /// bytes, a netlist mismatch, or a trace longer than `max_cycles`.
  ToggleTrace resolve(const netlist::Netlist& nl,
                      int max_cycles = kMaxVcdCycles) const;

  /// Cycle count the trace declares, without resolving against a netlist
  /// (VCD: a cheap scan of the timestamp lines; delta: a header peek).
  /// Throws on malformed input.
  int declared_cycles(int max_cycles = kMaxVcdCycles) const;

 private:
  std::string bytes_;
  std::uint64_t hash_ = 0;
  TraceEncoding encoding_ = TraceEncoding::kVcdText;
};

}  // namespace atlas::sim
