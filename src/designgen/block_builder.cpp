#include "designgen/block_builder.h"

#include <stdexcept>

#include "util/strings.h"

namespace atlas::designgen {

using liberty::CellFunc;
using netlist::NetId;

BlockBuilder::BlockBuilder(netlist::Netlist& nl, netlist::SubmoduleId submodule,
                           NetId clk, NetId rstn, util::Rng& rng)
    : nl_(nl), submodule_(submodule), clk_(clk), rstn_(rstn), rng_(rng) {}

NetId BlockBuilder::net() {
  return nl_.add_net("n" + std::to_string(nl_.num_nets()));
}

NetId BlockBuilder::gate(CellFunc func, const std::vector<NetId>& ins) {
  const liberty::CellId lc = nl_.library().cell_for(func, 1);
  const int expected = liberty::comb_input_count(func);
  if (static_cast<int>(ins.size()) != expected) {
    throw std::invalid_argument(util::format(
        "BlockBuilder::gate(%s): got %zu inputs, need %d",
        std::string(liberty::cell_func_name(func)).c_str(), ins.size(), expected));
  }
  const NetId out = net();
  std::vector<NetId> pins = ins;
  pins.push_back(out);
  nl_.add_cell("u" + std::to_string(nl_.num_cells()), lc, std::move(pins),
               submodule_);
  return out;
}

NetId BlockBuilder::dff(NetId d, double p_resettable) {
  const bool resettable = rstn_ != netlist::kNoNet && rng_.next_bool(p_resettable);
  const NetId q = net();
  if (resettable) {
    const liberty::CellId lc = nl_.library().cell_for(CellFunc::kDffR, 1);
    nl_.add_cell("u" + std::to_string(nl_.num_cells()), lc, {d, clk_, rstn_, q},
                 submodule_);
  } else {
    const liberty::CellId lc = nl_.library().cell_for(CellFunc::kDff, 1);
    nl_.add_cell("u" + std::to_string(nl_.num_cells()), lc, {d, clk_, q},
                 submodule_);
  }
  return q;
}

NetId BlockBuilder::dff_en(NetId d, NetId en) {
  // Q feedback through a recirculating mux. The mux is created first with a
  // placeholder for the Q input, then rewired once the register exists.
  const NetId q = net();
  const NetId muxed = net();
  const liberty::CellId mux_lc = nl_.library().cell_for(CellFunc::kMux2, 1);
  const netlist::CellInstId mux = nl_.add_cell(
      "u" + std::to_string(nl_.num_cells()), mux_lc, {q, d, en, muxed}, submodule_);
  (void)mux;
  const liberty::CellId dff_lc = nl_.library().cell_for(CellFunc::kDff, 1);
  nl_.add_cell("u" + std::to_string(nl_.num_cells()), dff_lc, {muxed, clk_, q},
               submodule_);
  return q;
}

void BlockBuilder::dff_into(NetId d, NetId q, double p_resettable) {
  const bool resettable = rstn_ != netlist::kNoNet && rng_.next_bool(p_resettable);
  if (resettable) {
    const liberty::CellId lc = nl_.library().cell_for(CellFunc::kDffR, 1);
    nl_.add_cell("u" + std::to_string(nl_.num_cells()), lc, {d, clk_, rstn_, q},
                 submodule_);
  } else {
    const liberty::CellId lc = nl_.library().cell_for(CellFunc::kDff, 1);
    nl_.add_cell("u" + std::to_string(nl_.num_cells()), lc, {d, clk_, q},
                 submodule_);
  }
}

void BlockBuilder::dff_en_into(NetId d, NetId en, NetId q) {
  const NetId muxed = net();
  const liberty::CellId mux_lc = nl_.library().cell_for(CellFunc::kMux2, 1);
  nl_.add_cell("u" + std::to_string(nl_.num_cells()), mux_lc, {q, d, en, muxed},
               submodule_);
  const liberty::CellId dff_lc = nl_.library().cell_for(CellFunc::kDff, 1);
  nl_.add_cell("u" + std::to_string(nl_.num_cells()), dff_lc, {muxed, clk_, q},
               submodule_);
}

NetId BlockBuilder::latch(NetId d, NetId en) {
  const liberty::CellId lc = nl_.library().cell_for(CellFunc::kLatch, 1);
  const NetId q = net();
  nl_.add_cell("u" + std::to_string(nl_.num_cells()), lc, {d, en, q}, submodule_);
  return q;
}

NetId BlockBuilder::tie(bool high) {
  NetId& cached = high ? tiehi_ : tielo_;
  if (cached != netlist::kNoNet) return cached;
  const liberty::CellId lc =
      nl_.library().cell_for(high ? CellFunc::kTieHi : CellFunc::kTieLo, 1);
  cached = net();
  nl_.add_cell("u" + std::to_string(nl_.num_cells()), lc, {cached}, submodule_);
  return cached;
}

netlist::CellInstId BlockBuilder::macro(liberty::CellId sram_cell,
                                        std::vector<NetId> pin_nets) {
  return nl_.add_cell("u" + std::to_string(nl_.num_cells()), sram_cell,
                      std::move(pin_nets), submodule_);
}

// The reduction trees deliberately mix equivalent gate choices (And3 for
// triples, NAND/NOR + INV for pairs) so generated designs exercise the full
// node-type taxonomy, as real synthesized netlists do.
NetId BlockBuilder::xor_tree(std::vector<NetId> nets) {
  if (nets.empty()) throw std::invalid_argument("xor_tree: empty input");
  while (nets.size() > 1) {
    std::vector<NetId> next;
    std::size_t i = 0;
    for (; i + 1 < nets.size(); i += 2) {
      if (rng_.next_bool(0.25)) {
        next.push_back(inv(gate(liberty::CellFunc::kXnor2, {nets[i], nets[i + 1]})));
      } else {
        next.push_back(xor2(nets[i], nets[i + 1]));
      }
    }
    if (i < nets.size()) next.push_back(nets.back());
    nets = std::move(next);
  }
  return nets[0];
}

NetId BlockBuilder::and_tree(std::vector<NetId> nets) {
  if (nets.empty()) throw std::invalid_argument("and_tree: empty input");
  while (nets.size() > 1) {
    std::vector<NetId> next;
    std::size_t i = 0;
    while (i < nets.size()) {
      const std::size_t left = nets.size() - i;
      if (left >= 3 && rng_.next_bool(0.4)) {
        const bool nand_form = rng_.next_bool(0.3);
        const NetId t = gate(nand_form ? liberty::CellFunc::kNand3
                                       : liberty::CellFunc::kAnd3,
                             {nets[i], nets[i + 1], nets[i + 2]});
        next.push_back(nand_form ? inv(t) : t);
        i += 3;
      } else if (left >= 2) {
        if (rng_.next_bool(0.25)) {
          next.push_back(inv(nand2(nets[i], nets[i + 1])));
        } else {
          next.push_back(and2(nets[i], nets[i + 1]));
        }
        i += 2;
      } else {
        next.push_back(nets[i]);
        ++i;
      }
    }
    nets = std::move(next);
  }
  return nets[0];
}

NetId BlockBuilder::or_tree(std::vector<NetId> nets) {
  if (nets.empty()) throw std::invalid_argument("or_tree: empty input");
  while (nets.size() > 1) {
    std::vector<NetId> next;
    std::size_t i = 0;
    while (i < nets.size()) {
      const std::size_t left = nets.size() - i;
      if (left >= 3 && rng_.next_bool(0.4)) {
        const bool nor_form = rng_.next_bool(0.3);
        const NetId t = gate(nor_form ? liberty::CellFunc::kNor3
                                      : liberty::CellFunc::kOr3,
                             {nets[i], nets[i + 1], nets[i + 2]});
        next.push_back(nor_form ? inv(t) : t);
        i += 3;
      } else if (left >= 2) {
        if (rng_.next_bool(0.25)) {
          next.push_back(inv(nor2(nets[i], nets[i + 1])));
        } else {
          next.push_back(or2(nets[i], nets[i + 1]));
        }
        i += 2;
      } else {
        next.push_back(nets[i]);
        ++i;
      }
    }
    nets = std::move(next);
  }
  return nets[0];
}

}  // namespace atlas::designgen
