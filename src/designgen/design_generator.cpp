#include "designgen/design_generator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "designgen/blocks.h"
#include "util/rng.h"
#include "util/strings.h"

namespace atlas::designgen {

using netlist::NetId;

namespace {

struct RoleWeight {
  std::string_view role;
  double weight;
};

// mem_ctrl is excluded here: memories are placed explicitly.
constexpr RoleWeight kRoleWeights[] = {
    {"adder", 1.2},       {"alu", 1.5},          {"decoder", 0.8},
    {"mux_tree", 1.2},    {"comparator", 0.8},   {"counter", 0.8},
    {"shift_reg", 0.8},   {"lfsr", 0.5},         {"fsm", 1.0},
    {"parity", 0.7},      {"priority_enc", 0.7}, {"regfile", 1.0},
    {"fifo_ctrl", 0.8},   {"pipeline_reg", 1.5}, {"multiplier_slice", 0.7},
};

const std::vector<std::string> kComponentPool = {
    "frontend", "decode", "exec", "lsu", "dcache", "icache", "ctrl", "retire"};

/// Sample from the pool with Rent-rule-style locality: most wires come from
/// a bounded window of recently produced nets (so average wirelength does
/// not grow with design size), with a small fraction of global wires.
NetId sample_net(const std::vector<NetId>& pool, util::Rng& rng) {
  constexpr std::size_t kLocalWindow = 300;
  constexpr double kGlobalFraction = 0.12;
  if (pool.size() > kLocalWindow && !rng.next_bool(kGlobalFraction)) {
    const std::size_t idx =
        pool.size() - 1 - static_cast<std::size_t>(rng.next_below(kLocalWindow));
    return pool[idx];
  }
  return pool[rng.next_below(pool.size())];
}

}  // namespace

DesignSpec paper_design_spec(int index, double scale) {
  if (index < 1 || index > 6) {
    throw std::invalid_argument("paper_design_spec: index must be 1..6");
  }
  DesignSpec spec;
  spec.name = "C" + std::to_string(index);
  spec.seed = 1000 + static_cast<std::uint64_t>(index) * 7919;
  spec.target_cells = static_cast<std::size_t>(
      std::llround(static_cast<double>(kPaperGateCells[index - 1]) * scale));
  // Distinct component mixes; C2 mirrors the paper's out-of-order CPU
  // (frontend / decode / exec / lsu / dcache — Fig. 6 shows five components).
  switch (index) {
    case 1: spec.components = {"frontend", "exec", "ctrl", "dcache"}; break;
    case 2: spec.components = {"frontend", "decode", "exec", "lsu", "dcache"}; break;
    case 3: spec.components = {"frontend", "decode", "exec", "retire", "icache"}; break;
    case 4: spec.components = {"frontend", "exec", "lsu", "ctrl", "dcache", "retire"}; break;
    case 5: spec.components = {"decode", "exec", "lsu", "ctrl", "icache", "dcache"}; break;
    case 6: spec.components = {"frontend", "decode", "exec", "lsu", "retire", "ctrl", "dcache"}; break;
    default: break;
  }
  spec.num_memories = 1 + index / 3;  // bigger designs carry more SRAMs
  spec.num_primary_inputs = 64 + index * 8;
  spec.num_primary_outputs = 32;
  return spec;
}

std::vector<DesignSpec> paper_design_specs(double scale) {
  std::vector<DesignSpec> specs;
  for (int i = 1; i <= 6; ++i) specs.push_back(paper_design_spec(i, scale));
  return specs;
}

netlist::Netlist generate_design(const DesignSpec& spec,
                                 const liberty::Library& lib) {
  if (spec.target_cells < 200) {
    throw std::invalid_argument("generate_design: target_cells too small");
  }
  util::Rng rng(spec.seed);
  netlist::Netlist nl(spec.name, lib);

  // Clock / reset / data primary inputs.
  const NetId clk = nl.add_net("clk");
  nl.mark_primary_input(clk);
  nl.set_clock_net(clk);
  const NetId rstn = nl.add_net("rstn");
  nl.mark_primary_input(rstn);
  std::vector<NetId> pool;
  for (int i = 0; i < spec.num_primary_inputs; ++i) {
    const NetId pi = nl.add_net("pi_" + std::to_string(i));
    nl.mark_primary_input(pi);
    pool.push_back(pi);
  }

  std::vector<std::string> components =
      spec.components.empty() ? kComponentPool : spec.components;
  std::vector<int> comp_ids;
  comp_ids.reserve(components.size());
  for (const auto& c : components) comp_ids.push_back(nl.add_component(c));

  // Identify cache-like components for memory placement.
  std::vector<std::size_t> cache_comps;
  for (std::size_t i = 0; i < components.size(); ++i) {
    if (components[i].find("cache") != std::string::npos) cache_comps.push_back(i);
  }
  if (cache_comps.empty()) cache_comps.push_back(components.size() - 1);

  // Role selection draws from a shuffled weighted deck: every role appears in
  // each deck pass, so any design with enough sub-modules covers the full
  // role taxonomy while bigger weights still occur more often.
  std::vector<std::string_view> deck;
  auto refill_deck = [&]() {
    // Extras (weight-proportional) at the bottom, one-of-each on top: the
    // first draws of every pass cover all roles.
    std::vector<std::string_view> extras;
    std::vector<std::string_view> base;
    for (const RoleWeight& rw : kRoleWeights) {
      base.push_back(rw.role);
      const int copies = std::max(0, static_cast<int>(std::lround(rw.weight * 2.0)) - 1);
      for (int i = 0; i < copies; ++i) extras.push_back(rw.role);
    }
    rng.shuffle(extras);
    rng.shuffle(base);
    deck = std::move(extras);
    deck.insert(deck.end(), base.begin(), base.end());
  };
  refill_deck();

  int block_counter = 0;
  int memories_placed = 0;
  std::size_t comp_cursor = 0;

  auto place_block = [&](std::string_view role, std::size_t comp_index) {
    const std::string sm_name =
        std::string(role) + "_" + std::to_string(block_counter++);
    const netlist::SubmoduleId sm = nl.add_submodule(
        sm_name, std::string(role), comp_ids[comp_index]);
    BlockBuilder builder(nl, sm, clk, rstn, rng);
    const int n_inputs = 16 + static_cast<int>(rng.next_below(32));
    NetVec inputs;
    inputs.reserve(static_cast<std::size_t>(n_inputs));
    for (int i = 0; i < n_inputs; ++i) inputs.push_back(sample_net(pool, rng));
    const int width = 6 + static_cast<int>(rng.next_below(24));
    NetVec outs = build_block(role, builder, inputs, width);
    pool.insert(pool.end(), outs.begin(), outs.end());
  };

  // Every design starts with a free-running PRBS/timer block: real SoCs
  // always contain free-running counters, and they keep background activity
  // (and hence per-cycle power) alive through idle workload phases.
  place_block("lfsr", 0);

  while (nl.num_cells() < spec.target_cells) {
    const std::size_t comp_index = comp_cursor % components.size();
    ++comp_cursor;
    // Place memories spread through generation inside cache components.
    const bool want_memory =
        memories_placed < spec.num_memories &&
        nl.num_cells() > spec.target_cells / 4 * static_cast<std::size_t>(memories_placed + 1) /
                             static_cast<std::size_t>(spec.num_memories > 0 ? spec.num_memories : 1);
    if (want_memory) {
      place_block("mem_ctrl", cache_comps[static_cast<std::size_t>(memories_placed) %
                                          cache_comps.size()]);
      ++memories_placed;
      continue;
    }
    if (deck.empty()) refill_deck();
    const std::string_view role = deck.back();
    deck.pop_back();
    place_block(role, comp_index);
  }
  while (memories_placed < spec.num_memories) {
    place_block("mem_ctrl",
                cache_comps[static_cast<std::size_t>(memories_placed) % cache_comps.size()]);
    ++memories_placed;
  }

  // Primary outputs: the most recently produced registered nets.
  const int n_po = std::min<int>(spec.num_primary_outputs,
                                 static_cast<int>(pool.size()));
  for (int i = 0; i < n_po; ++i) {
    nl.mark_primary_output(pool[pool.size() - 1 - static_cast<std::size_t>(i)]);
  }

  nl.check();
  return nl;
}

}  // namespace atlas::designgen
