// Functional block generators.
//
// Each generator emits one sub-module's worth of logic (registers plus the
// combinational cone feeding them) and returns the block's registered output
// nets. Input nets are consumed round-robin from the caller-provided pool
// (registered outputs of other blocks and primary inputs), so designs are
// combinationally acyclic by construction.
#pragma once

#include <string_view>
#include <vector>

#include "designgen/block_builder.h"

namespace atlas::designgen {

using NetVec = std::vector<netlist::NetId>;

/// All roles the composer can pick from. `mem_ctrl` instantiates an SRAM
/// macro; the others are standard-cell only.
inline constexpr std::string_view kBlockRoles[] = {
    "adder",     "alu",          "decoder",   "mux_tree", "comparator",
    "counter",   "shift_reg",    "lfsr",      "fsm",      "parity",
    "priority_enc", "regfile",   "fifo_ctrl", "pipeline_reg", "mem_ctrl",
    "multiplier_slice"};

/// Dispatch by role name; `width` scales the block (clamped per role).
/// Throws std::invalid_argument for an unknown role.
NetVec build_block(std::string_view role, BlockBuilder& b, const NetVec& inputs,
                   int width);

// Individual generators (exposed for tests).
NetVec build_adder(BlockBuilder& b, const NetVec& in, int width);
NetVec build_alu(BlockBuilder& b, const NetVec& in, int width);
NetVec build_decoder(BlockBuilder& b, const NetVec& in, int width);
NetVec build_mux_tree(BlockBuilder& b, const NetVec& in, int width);
NetVec build_comparator(BlockBuilder& b, const NetVec& in, int width);
NetVec build_counter(BlockBuilder& b, const NetVec& in, int width);
NetVec build_shift_reg(BlockBuilder& b, const NetVec& in, int width);
NetVec build_lfsr(BlockBuilder& b, const NetVec& in, int width);
NetVec build_fsm(BlockBuilder& b, const NetVec& in, int width);
NetVec build_parity(BlockBuilder& b, const NetVec& in, int width);
NetVec build_priority_enc(BlockBuilder& b, const NetVec& in, int width);
NetVec build_regfile(BlockBuilder& b, const NetVec& in, int width);
NetVec build_fifo_ctrl(BlockBuilder& b, const NetVec& in, int width);
NetVec build_pipeline_reg(BlockBuilder& b, const NetVec& in, int width);
NetVec build_mem_ctrl(BlockBuilder& b, const NetVec& in, int width);
NetVec build_multiplier_slice(BlockBuilder& b, const NetVec& in, int width);

}  // namespace atlas::designgen
