#include "designgen/blocks.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace atlas::designgen {

using liberty::CellFunc;
using netlist::NetId;

namespace {

/// Round-robin reader over the caller-provided input pool.
class InputFeed {
 public:
  explicit InputFeed(const NetVec& v) : v_(v) {
    if (v_.empty()) throw std::invalid_argument("block inputs must be non-empty");
  }
  NetId next() {
    const NetId id = v_[i_ % v_.size()];
    ++i_;
    return id;
  }
  NetVec take(int n) {
    NetVec out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) out.push_back(next());
    return out;
  }

 private:
  const NetVec& v_;
  std::size_t i_ = 0;
};

int clamp_width(int width, int lo, int hi) {
  return std::clamp(width, lo, hi);
}

/// Ripple-carry sum of two equally wide vectors; returns sum bits (no regs).
NetVec ripple_add(BlockBuilder& b, const NetVec& a, const NetVec& c) {
  NetVec sum;
  NetId carry = b.tie(false);
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum.push_back(b.gate(CellFunc::kFaSum, {a[i], c[i], carry}));
    carry = b.gate(CellFunc::kMaj3, {a[i], c[i], carry});
  }
  sum.push_back(carry);
  return sum;
}

}  // namespace

NetVec build_adder(BlockBuilder& b, const NetVec& in, int width) {
  const int w = clamp_width(width, 4, 32);
  InputFeed feed(in);
  NetVec a, c;
  for (int i = 0; i < w; ++i) a.push_back(b.dff(feed.next()));
  for (int i = 0; i < w; ++i) c.push_back(b.dff(feed.next()));
  NetVec sum = ripple_add(b, a, c);
  NetVec out;
  for (const NetId s : sum) out.push_back(b.dff(s));
  return out;
}

NetVec build_alu(BlockBuilder& b, const NetVec& in, int width) {
  const int w = clamp_width(width, 4, 24);
  InputFeed feed(in);
  NetVec a, c;
  for (int i = 0; i < w; ++i) a.push_back(b.dff(feed.next()));
  for (int i = 0; i < w; ++i) c.push_back(b.dff(feed.next()));
  const NetId sel0 = b.dff(feed.next());
  const NetId sel1 = b.dff(feed.next());
  const NetVec sum = ripple_add(b, a, c);
  NetVec out;
  for (int i = 0; i < w; ++i) {
    const std::size_t u = static_cast<std::size_t>(i);
    const NetId andv = b.and2(a[u], c[u]);
    const NetId xorv = b.xor2(a[u], c[u]);
    const NetId orv = b.or2(a[u], c[u]);
    const NetId lo = b.mux2(sum[u], andv, sel0);   // sel0 ? and : sum
    const NetId hi = b.mux2(xorv, orv, sel0);      // sel0 ? or : xor
    out.push_back(b.dff(b.mux2(lo, hi, sel1)));
  }
  return out;
}

NetVec build_decoder(BlockBuilder& b, const NetVec& in, int width) {
  const int bits = clamp_width(width / 4 + 2, 2, 5);
  InputFeed feed(in);
  NetVec sel, nsel;
  for (int i = 0; i < bits; ++i) {
    const NetId s = b.dff(feed.next());
    sel.push_back(s);
    nsel.push_back(b.inv(s));
  }
  const NetId en = b.dff(feed.next());
  NetVec out;
  const int lines = 1 << bits;
  for (int line = 0; line < lines; ++line) {
    NetVec terms;
    for (int i = 0; i < bits; ++i) {
      terms.push_back((line >> i) & 1 ? sel[static_cast<std::size_t>(i)]
                                      : nsel[static_cast<std::size_t>(i)]);
    }
    terms.push_back(en);
    out.push_back(b.dff(b.and_tree(terms)));
  }
  return out;
}

NetVec build_mux_tree(BlockBuilder& b, const NetVec& in, int width) {
  const int w = clamp_width(width, 4, 24);
  InputFeed feed(in);
  NetVec bus0, bus1, bus2, bus3;
  for (int i = 0; i < w; ++i) bus0.push_back(b.dff(feed.next()));
  for (int i = 0; i < w; ++i) bus1.push_back(b.dff(feed.next()));
  for (int i = 0; i < w; ++i) bus2.push_back(b.dff(feed.next()));
  for (int i = 0; i < w; ++i) bus3.push_back(b.dff(feed.next()));
  const NetId s0 = b.dff(feed.next());
  const NetId s1 = b.dff(feed.next());
  NetVec out;
  for (int i = 0; i < w; ++i) {
    const std::size_t u = static_cast<std::size_t>(i);
    const NetId lo = b.mux2(bus0[u], bus1[u], s0);
    const NetId hi = b.mux2(bus2[u], bus3[u], s0);
    out.push_back(b.dff(b.mux2(lo, hi, s1)));
  }
  return out;
}

NetVec build_comparator(BlockBuilder& b, const NetVec& in, int width) {
  const int w = clamp_width(width, 4, 24);
  InputFeed feed(in);
  NetVec a, c;
  for (int i = 0; i < w; ++i) a.push_back(b.dff(feed.next()));
  for (int i = 0; i < w; ++i) c.push_back(b.dff(feed.next()));
  NetVec eq_bits;
  for (int i = 0; i < w; ++i) {
    eq_bits.push_back(b.xor2(a[static_cast<std::size_t>(i)],
                             c[static_cast<std::size_t>(i)]));
  }
  // eq = NOR of all difference bits.
  const NetId any_diff = b.or_tree(eq_bits);
  const NetId eq = b.inv(any_diff);
  // less-than: ripple from LSB: lt_i = (!a_i & c_i) | (eq_i & lt_{i-1}).
  NetId lt = b.tie(false);
  for (int i = 0; i < w; ++i) {
    const std::size_t u = static_cast<std::size_t>(i);
    const NetId na = b.inv(a[u]);
    const NetId strictly = b.and2(na, c[u]);
    const NetId same = b.gate(CellFunc::kXnor2, {a[u], c[u]});
    const NetId keep = b.and2(same, lt);
    lt = b.or2(strictly, keep);
  }
  return {b.dff(eq), b.dff(lt), b.dff(any_diff)};
}

NetVec build_counter(BlockBuilder& b, const NetVec& in, int width) {
  const int w = clamp_width(width, 4, 16);
  InputFeed feed(in);
  const NetId en = b.dff(feed.next());
  // Real feedback counter: q + 1 when enabled; registers share the enable so
  // the CTS pass can gate the whole bank.
  NetVec q;
  for (int i = 0; i < w; ++i) q.push_back(b.feedback_net());
  NetId carry = b.tie(true);
  for (int i = 0; i < w; ++i) {
    const std::size_t u = static_cast<std::size_t>(i);
    const NetId d = b.xor2(q[u], carry);
    carry = b.and2(q[u], carry);
    b.dff_en_into(d, en, q[u]);
  }
  q.push_back(b.dff(carry));  // wrap flag (registered)
  return q;
}

NetVec build_shift_reg(BlockBuilder& b, const NetVec& in, int width) {
  const int w = clamp_width(width, 4, 32);
  InputFeed feed(in);
  const NetId en = b.dff(feed.next());
  NetId stage = b.dff(feed.next());
  NetVec out;
  for (int i = 0; i < w; ++i) {
    stage = b.dff_en(stage, en);
    if (i % 4 == 3) out.push_back(stage);
  }
  out.push_back(stage);
  return out;
}

NetVec build_lfsr(BlockBuilder& b, const NetVec& in, int width) {
  const int w = clamp_width(width, 6, 24);
  InputFeed feed(in);
  // Free-running Fibonacci LFSR with XNOR feedback (escapes the all-zero
  // reset state) — real designs always contain free-running timers/PRBS
  // generators, which keep background switching alive in idle phases.
  NetVec q;
  for (int i = 0; i < w; ++i) q.push_back(b.feedback_net());
  const NetId seed = b.dff(feed.next());
  const NetId taps = b.gate(CellFunc::kXnor2,
                            {q.back(), q[static_cast<std::size_t>(w / 2)]});
  const NetId fb = b.xor2(taps, seed);
  b.dff_into(fb, q[0], /*p_resettable=*/0.0);
  for (int i = 1; i < w; ++i) {
    b.dff_into(q[static_cast<std::size_t>(i - 1)], q[static_cast<std::size_t>(i)],
               /*p_resettable=*/0.0);
  }
  return q;
}

NetVec build_fsm(BlockBuilder& b, const NetVec& in, int width) {
  const int bits = clamp_width(width / 4, 3, 6);
  InputFeed feed(in);
  NetVec state;
  for (int i = 0; i < bits; ++i) state.push_back(b.feedback_net());
  NetVec ins;
  for (int i = 0; i < bits + 2; ++i) ins.push_back(b.dff(feed.next()));
  // Random next-state logic with true state feedback.
  util::Rng& rng = b.rng();
  for (int i = 0; i < bits; ++i) {
    NetVec terms;
    const int n_terms = 2 + static_cast<int>(rng.next_below(3));
    for (int t = 0; t < n_terms; ++t) {
      const NetId x = state[rng.next_below(state.size())];
      const NetId y = ins[rng.next_below(ins.size())];
      switch (rng.next_below(5)) {
        case 0: terms.push_back(b.and2(x, y)); break;
        case 1: terms.push_back(b.or2(x, y)); break;
        case 2: terms.push_back(b.xor2(x, y)); break;
        case 3:
          terms.push_back(
              b.gate(CellFunc::kAoi21, {x, y, ins[rng.next_below(ins.size())]}));
          break;
        default:
          terms.push_back(
              b.gate(CellFunc::kOai21, {x, y, ins[rng.next_below(ins.size())]}));
      }
    }
    b.dff_into(b.xor_tree(terms), state[static_cast<std::size_t>(i)],
               /*p_resettable=*/0.9);
  }
  // Moore outputs.
  NetVec out = state;
  out.push_back(b.dff(b.and_tree(state)));
  out.push_back(b.dff(b.or_tree(state)));
  return out;
}

NetVec build_parity(BlockBuilder& b, const NetVec& in, int width) {
  const int w = clamp_width(width, 8, 48);
  InputFeed feed(in);
  NetVec bits;
  for (int i = 0; i < w; ++i) bits.push_back(b.dff(feed.next()));
  NetVec out;
  // Sliced parities (one per byte) plus overall parity.
  for (std::size_t i = 0; i < bits.size(); i += 8) {
    NetVec slice(bits.begin() + static_cast<long>(i),
                 bits.begin() + static_cast<long>(std::min(i + 8, bits.size())));
    out.push_back(b.dff(b.xor_tree(slice)));
  }
  out.push_back(b.dff(b.xor_tree(bits)));
  return out;
}

NetVec build_priority_enc(BlockBuilder& b, const NetVec& in, int width) {
  const int w = clamp_width(width, 4, 24);
  InputFeed feed(in);
  NetVec req;
  for (int i = 0; i < w; ++i) req.push_back(b.dff(feed.next()));
  NetVec out;
  NetId higher = b.tie(false);  // any higher-priority request seen
  for (int i = 0; i < w; ++i) {
    const std::size_t u = static_cast<std::size_t>(i);
    // grant = req & !higher, in NOR form for gate diversity.
    const NetId grant = b.nor2(b.inv(req[u]), higher);
    higher = b.or2(higher, req[u]);
    if (i % 2 == 0) out.push_back(b.dff(grant));
  }
  out.push_back(b.dff(higher));  // any-request flag
  return out;
}

NetVec build_regfile(BlockBuilder& b, const NetVec& in, int width) {
  const int w = clamp_width(width, 4, 16);
  constexpr int kEntries = 4;
  InputFeed feed(in);
  const NetId we = b.dff(feed.next());
  const NetId wa0 = b.dff(feed.next());
  const NetId wa1 = b.dff(feed.next());
  const NetId ra0 = b.dff(feed.next());
  const NetId ra1 = b.dff(feed.next());
  NetVec wdata;
  for (int i = 0; i < w; ++i) wdata.push_back(b.dff(feed.next()));
  const NetId nwa0 = b.inv(wa0);
  const NetId nwa1 = b.inv(wa1);
  std::vector<NetVec> entries(kEntries);
  for (int e = 0; e < kEntries; ++e) {
    const NetId m0 = (e & 1) ? wa0 : nwa0;
    const NetId m1 = (e & 2) ? wa1 : nwa1;
    const NetId wen = b.and2(we, b.and2(m0, m1));
    // One enable per entry: each entry bank is a CTS clock-gating candidate.
    for (int i = 0; i < w; ++i) {
      entries[static_cast<std::size_t>(e)].push_back(
          b.dff_en(wdata[static_cast<std::size_t>(i)], wen));
    }
  }
  NetVec out;
  for (int i = 0; i < w; ++i) {
    const std::size_t u = static_cast<std::size_t>(i);
    const NetId lo = b.mux2(entries[0][u], entries[1][u], ra0);
    const NetId hi = b.mux2(entries[2][u], entries[3][u], ra0);
    out.push_back(b.dff(b.mux2(lo, hi, ra1)));
  }
  return out;
}

NetVec build_fifo_ctrl(BlockBuilder& b, const NetVec& in, int width) {
  const int bits = clamp_width(width / 4, 3, 6);
  InputFeed feed(in);
  const NetId push = b.dff(feed.next());
  const NetId pop = b.dff(feed.next());
  // Write/read pointers as real enabled feedback counters.
  auto pointer = [&](NetId en) {
    NetVec q;
    for (int i = 0; i < bits; ++i) q.push_back(b.feedback_net());
    NetId carry = b.tie(true);
    for (int i = 0; i < bits; ++i) {
      const std::size_t u = static_cast<std::size_t>(i);
      const NetId d = b.xor2(q[u], carry);
      carry = b.and2(q[u], carry);
      b.dff_en_into(d, en, q[u]);
    }
    return q;
  };
  const NetVec wptr = pointer(push);
  const NetVec rptr = pointer(pop);
  NetVec same_bits;
  for (int i = 0; i < bits; ++i) {
    same_bits.push_back(b.gate(CellFunc::kXnor2,
                               {wptr[static_cast<std::size_t>(i)],
                                rptr[static_cast<std::size_t>(i)]}));
  }
  const NetId ptr_eq = b.and_tree(same_bits);
  const NetId level_toggle = b.dff(b.xor2(push, pop));
  const NetId empty = b.and2(ptr_eq, b.inv(level_toggle));
  const NetId full = b.and2(ptr_eq, level_toggle);
  NetVec out = wptr;
  out.insert(out.end(), rptr.begin(), rptr.end());
  out.push_back(b.dff(empty));
  out.push_back(b.dff(full));
  return out;
}

NetVec build_pipeline_reg(BlockBuilder& b, const NetVec& in, int width) {
  const int w = clamp_width(width, 8, 32);
  InputFeed feed(in);
  const NetId en0 = b.dff(feed.next());
  const NetId en1 = b.dff(feed.next());
  NetVec stage;
  for (int i = 0; i < w; ++i) stage.push_back(b.dff(feed.next()));
  NetVec s1;
  for (int i = 0; i < w; ++i) {
    s1.push_back(b.dff_en(stage[static_cast<std::size_t>(i)], en0));
  }
  NetVec out;
  for (int i = 0; i < w; ++i) {
    // Light logic between stages (bit mixing); every fourth bit passes
    // through a level latch for sequential-cell diversity.
    const std::size_t u = static_cast<std::size_t>(i);
    NetId mixed = b.xor2(s1[u], s1[(u + 1) % s1.size()]);
    if (i % 4 == 3) mixed = b.latch(mixed, en1);
    out.push_back(b.dff_en(mixed, en1));
  }
  return out;
}

NetVec build_mem_ctrl(BlockBuilder& b, const NetVec& in, int width) {
  (void)width;  // macro geometry is fixed by the library SRAM cell
  InputFeed feed(in);
  const liberty::Library& lib = b.library();
  const liberty::CellId sram = lib.cell_for(liberty::CellFunc::kSram, 1);
  const liberty::Cell& sc = lib.cell(sram);
  // Derive address/data widths from the macro's pin list.
  std::size_t nd = 0;
  for (const auto& p : sc.pins) nd += p.dir == liberty::PinDir::kOutput;
  const std::size_t na = sc.pins.size() - 3 - 2 * nd;

  const NetId req = b.dff(feed.next());
  const NetId we = b.dff(feed.next());
  NetVec addr;
  for (std::size_t i = 0; i < na; ++i) addr.push_back(b.dff(feed.next()));
  NetVec din;
  for (std::size_t i = 0; i < nd; ++i) din.push_back(b.dff(feed.next()));

  const NetId csb = b.inv(req);
  const NetId web = b.inv(b.and2(we, req));
  NetVec pins;
  pins.push_back(b.clk());
  // CSB / WEB nets must be the computed ones.
  NetVec qnets;
  for (std::size_t i = 0; i < nd; ++i) qnets.push_back(b.net());
  pins.push_back(csb);
  pins.push_back(web);
  for (const NetId a : addr) pins.push_back(a);
  for (const NetId d : din) pins.push_back(d);
  for (const NetId q : qnets) pins.push_back(q);
  b.macro(sram, pins);

  NetVec out;
  for (const NetId q : qnets) out.push_back(b.dff(q));
  out.push_back(b.dff(b.xor_tree(qnets)));  // response parity
  return out;
}

NetVec build_multiplier_slice(BlockBuilder& b, const NetVec& in, int width) {
  const int w = clamp_width(width, 4, 12);
  InputFeed feed(in);
  NetVec a, c;
  for (int i = 0; i < w; ++i) a.push_back(b.dff(feed.next()));
  for (int i = 0; i < 3; ++i) c.push_back(b.dff(feed.next()));
  // Three partial-product rows compressed with full adders.
  std::vector<NetVec> rows;
  for (std::size_t r = 0; r < c.size(); ++r) {
    NetVec row;
    for (int i = 0; i < w; ++i) {
      row.push_back(b.and2(a[static_cast<std::size_t>(i)], c[r]));
    }
    rows.push_back(std::move(row));
  }
  NetVec out;
  NetId carry = b.tie(false);
  for (int i = 0; i < w; ++i) {
    const std::size_t u = static_cast<std::size_t>(i);
    const NetId s = b.gate(CellFunc::kFaSum, {rows[0][u], rows[1][u], rows[2][u]});
    const NetId k = b.gate(CellFunc::kMaj3, {rows[0][u], rows[1][u], rows[2][u]});
    const NetId s2 = b.gate(CellFunc::kFaSum, {s, carry, b.tie(false)});
    carry = b.or2(k, b.and2(s, carry));
    out.push_back(b.dff(s2));
  }
  out.push_back(b.dff(carry));
  return out;
}

NetVec build_block(std::string_view role, BlockBuilder& b, const NetVec& inputs,
                   int width) {
  if (role == "adder") return build_adder(b, inputs, width);
  if (role == "alu") return build_alu(b, inputs, width);
  if (role == "decoder") return build_decoder(b, inputs, width);
  if (role == "mux_tree") return build_mux_tree(b, inputs, width);
  if (role == "comparator") return build_comparator(b, inputs, width);
  if (role == "counter") return build_counter(b, inputs, width);
  if (role == "shift_reg") return build_shift_reg(b, inputs, width);
  if (role == "lfsr") return build_lfsr(b, inputs, width);
  if (role == "fsm") return build_fsm(b, inputs, width);
  if (role == "parity") return build_parity(b, inputs, width);
  if (role == "priority_enc") return build_priority_enc(b, inputs, width);
  if (role == "regfile") return build_regfile(b, inputs, width);
  if (role == "fifo_ctrl") return build_fifo_ctrl(b, inputs, width);
  if (role == "pipeline_reg") return build_pipeline_reg(b, inputs, width);
  if (role == "mem_ctrl") return build_mem_ctrl(b, inputs, width);
  if (role == "multiplier_slice") return build_multiplier_slice(b, inputs, width);
  throw std::invalid_argument("unknown block role: " + std::string(role));
}

}  // namespace atlas::designgen
