// Helper for emitting gate-level logic into one sub-module of a netlist.
//
// Every functional block generator (adder, ALU, FSM, ...) writes its cells
// through a BlockBuilder, which handles net/cell naming, clocking, reset and
// the enable-mux register idiom. Design rule enforced here: a block's
// externally visible outputs are always register Q nets, so inter-block
// wiring can never create a combinational cycle.
//
// Gate-level netlists produced through this builder contain no clock cells;
// low-activity register banks use the recirculating-mux enable idiom
// (D = EN ? next : Q), which the layout flow later converts into integrated
// clock gates — mirroring how the paper's designs acquire a clock network
// only at the layout stage (their Gate-Level PTPX clock-tree error is 100%).
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "util/rng.h"

namespace atlas::designgen {

class BlockBuilder {
 public:
  BlockBuilder(netlist::Netlist& nl, netlist::SubmoduleId submodule,
               netlist::NetId clk, netlist::NetId rstn, util::Rng& rng);

  netlist::Netlist& netlist() { return nl_; }
  const liberty::Library& library() const { return nl_.library(); }
  util::Rng& rng() { return rng_; }
  netlist::NetId clk() const { return clk_; }
  netlist::NetId rstn() const { return rstn_; }

  /// Fresh anonymous wire.
  netlist::NetId net();

  /// Instantiate a combinational gate; returns its output net. Drive strength
  /// is X1 (the layout flow handles resizing).
  netlist::NetId gate(liberty::CellFunc func, const std::vector<netlist::NetId>& ins);

  netlist::NetId inv(netlist::NetId a) { return gate(liberty::CellFunc::kInv, {a}); }
  netlist::NetId buf(netlist::NetId a) { return gate(liberty::CellFunc::kBuf, {a}); }
  netlist::NetId and2(netlist::NetId a, netlist::NetId b) {
    return gate(liberty::CellFunc::kAnd2, {a, b});
  }
  netlist::NetId or2(netlist::NetId a, netlist::NetId b) {
    return gate(liberty::CellFunc::kOr2, {a, b});
  }
  netlist::NetId xor2(netlist::NetId a, netlist::NetId b) {
    return gate(liberty::CellFunc::kXor2, {a, b});
  }
  netlist::NetId nand2(netlist::NetId a, netlist::NetId b) {
    return gate(liberty::CellFunc::kNand2, {a, b});
  }
  netlist::NetId nor2(netlist::NetId a, netlist::NetId b) {
    return gate(liberty::CellFunc::kNor2, {a, b});
  }
  /// Y = s ? b : a.
  netlist::NetId mux2(netlist::NetId a, netlist::NetId b, netlist::NetId s) {
    return gate(liberty::CellFunc::kMux2, {a, b, s});
  }

  /// Plain D flip-flop (resettable with probability `p_resettable`); returns Q.
  netlist::NetId dff(netlist::NetId d, double p_resettable = 0.5);

  /// Enable-mux register: Q updates to `d` when `en` is high, else holds.
  /// Emitted as MUX2(Q, d, en) -> DFF; the CTS pass may later convert groups
  /// of these into an integrated clock gate.
  netlist::NetId dff_en(netlist::NetId d, netlist::NetId en);

  /// Pre-allocate a register output net so feedback logic (counters, LFSRs,
  /// FSM state) can be built from Q before the register exists; close the
  /// loop with dff_into / dff_en_into.
  netlist::NetId feedback_net() { return net(); }
  void dff_into(netlist::NetId d, netlist::NetId q, double p_resettable = 0.5);
  void dff_en_into(netlist::NetId d, netlist::NetId en, netlist::NetId q);

  /// Transparent-high latch (cycle-approximated by the simulator); returns Q.
  netlist::NetId latch(netlist::NetId d, netlist::NetId en);

  /// Constant nets (one TIEHI / TIELO cell per block, shared).
  netlist::NetId tie(bool high);

  /// Instantiate the SRAM macro; pin nets in library pin order.
  netlist::CellInstId macro(liberty::CellId sram_cell,
                            std::vector<netlist::NetId> pin_nets);

  /// XOR-reduce a vector of nets (balanced tree). Requires non-empty input.
  netlist::NetId xor_tree(std::vector<netlist::NetId> nets);
  /// AND-reduce / OR-reduce balanced trees.
  netlist::NetId and_tree(std::vector<netlist::NetId> nets);
  netlist::NetId or_tree(std::vector<netlist::NetId> nets);

 private:
  netlist::Netlist& nl_;
  netlist::SubmoduleId submodule_;
  netlist::NetId clk_;
  netlist::NetId rstn_;
  util::Rng& rng_;
  netlist::NetId tiehi_ = netlist::kNoNet;
  netlist::NetId tielo_ = netlist::kNoNet;
};

}  // namespace atlas::designgen
