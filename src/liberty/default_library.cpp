// Builder for the synthetic 40nm-class default library.
//
// Values are not any foundry's numbers; they are chosen to reproduce the
// *relative* magnitudes that drive the paper's observations: register
// clock-pin energy dominates register power, clock buffers are strong
// drivers, SRAM access energy dwarfs standard cells, and internal energy
// grows mildly with output load.
#include <string>
#include <vector>

#include "liberty/library.h"

namespace atlas::liberty {
namespace {

struct FuncSpec {
  CellFunc func;
  double area_um2;
  double in_cap_ff;
  double base_energy_fj;  // per output transition at zero load, X1
  double leakage_uw;
  double max_cap_ff;      // X1 drive limit
};

// Complexity-ordered energy/area ladder for the combinational family.
constexpr FuncSpec kCombSpecs[] = {
    {CellFunc::kInv, 0.6, 0.9, 0.35, 0.0006, 30.0},
    {CellFunc::kBuf, 0.9, 1.0, 0.55, 0.0008, 42.0},
    {CellFunc::kAnd2, 1.2, 1.1, 0.78, 0.0012, 32.0},
    {CellFunc::kAnd3, 1.5, 1.1, 0.95, 0.0016, 32.0},
    {CellFunc::kOr2, 1.2, 1.1, 0.80, 0.0012, 32.0},
    {CellFunc::kOr3, 1.5, 1.1, 0.98, 0.0016, 32.0},
    {CellFunc::kNand2, 0.9, 1.0, 0.55, 0.0009, 30.0},
    {CellFunc::kNand3, 1.2, 1.0, 0.72, 0.0013, 30.0},
    {CellFunc::kNor2, 0.9, 1.1, 0.58, 0.0009, 28.0},
    {CellFunc::kNor3, 1.2, 1.1, 0.76, 0.0013, 28.0},
    {CellFunc::kXor2, 1.8, 1.4, 1.25, 0.0018, 28.0},
    {CellFunc::kXnor2, 1.8, 1.4, 1.22, 0.0018, 28.0},
    {CellFunc::kMux2, 1.8, 1.2, 1.05, 0.0017, 30.0},
    {CellFunc::kAoi21, 1.2, 1.1, 0.70, 0.0012, 28.0},
    {CellFunc::kOai21, 1.2, 1.1, 0.71, 0.0012, 28.0},
    {CellFunc::kFaSum, 2.4, 1.5, 1.65, 0.0024, 28.0},
    {CellFunc::kMaj3, 2.1, 1.4, 1.30, 0.0021, 28.0},
};

const std::vector<double> kLoadIndexFf = {0.0, 4.0, 8.0, 16.0, 32.0, 64.0};

std::vector<double> energy_lut(double base_fj, int drive) {
  // Internal energy grows mildly with load; stronger drives flatten the
  // slope but cost more at zero load (bigger internal nodes).
  std::vector<double> e;
  e.reserve(kLoadIndexFf.size());
  const double zero_load = base_fj * (drive == 1 ? 1.0 : (drive == 2 ? 1.55 : 2.4));
  for (double load : kLoadIndexFf) {
    e.push_back(zero_load * (1.0 + 0.055 * load / drive));
  }
  return e;
}

std::string drive_suffix(int drive) { return "_X" + std::to_string(drive); }

double drive_scale_cap(int drive) {
  return drive == 1 ? 1.0 : (drive == 2 ? 1.6 : 2.5);
}
double drive_scale_area(int drive) {
  return drive == 1 ? 1.0 : (drive == 2 ? 1.5 : 2.3);
}
double drive_scale_leak(int drive) {
  return drive == 1 ? 1.0 : (drive == 2 ? 1.8 : 3.2);
}

Cell make_comb_cell(const FuncSpec& s, int drive) {
  Cell c;
  c.func = s.func;
  c.type = node_type_of(s.func);
  c.drive = drive;
  c.name = std::string(cell_func_name(s.func)) + drive_suffix(drive);
  c.area_um2 = s.area_um2 * drive_scale_area(drive);
  c.leakage_uw = s.leakage_uw * drive_scale_leak(drive);
  c.energy_index_ff = kLoadIndexFf;
  c.energy_fj = energy_lut(s.base_energy_fj, drive);

  static const char* kInputNames[] = {"A", "B", "C"};
  const int n_in = comb_input_count(s.func);
  for (int i = 0; i < n_in; ++i) {
    Pin p;
    p.name = kInputNames[i];
    p.dir = PinDir::kInput;
    p.cap_ff = s.in_cap_ff * drive_scale_cap(drive);
    c.pins.push_back(p);
  }
  // MUX2 select pin naming (A, B, S) reads better than (A, B, C).
  if (s.func == CellFunc::kMux2) c.pins[2].name = "S";
  Pin y;
  y.name = "Y";
  y.dir = PinDir::kOutput;
  y.max_cap_ff = s.max_cap_ff * drive;
  c.pins.push_back(y);
  return c;
}

Pin in_pin(std::string name, double cap_ff, bool is_clock = false) {
  Pin p;
  p.name = std::move(name);
  p.dir = PinDir::kInput;
  p.cap_ff = cap_ff;
  p.is_clock = is_clock;
  return p;
}

Pin out_pin(std::string name, double max_cap_ff) {
  Pin p;
  p.name = std::move(name);
  p.dir = PinDir::kOutput;
  p.max_cap_ff = max_cap_ff;
  return p;
}

Cell make_dff(bool resettable, int drive) {
  Cell c;
  c.func = resettable ? CellFunc::kDffR : CellFunc::kDff;
  c.type = node_type_of(c.func);
  c.drive = drive;
  c.name = std::string(resettable ? "DFFR" : "DFF") + drive_suffix(drive);
  c.area_um2 = (resettable ? 5.4 : 4.5) * drive_scale_area(drive);
  c.leakage_uw = (resettable ? 0.0048 : 0.0040) * drive_scale_leak(drive);
  c.energy_index_ff = kLoadIndexFf;
  c.energy_fj = energy_lut(0.95, drive);  // Q output transition energy
  // Clock-pin energy per edge: dominates register power (paper footnote 3).
  c.clock_pin_energy_fj = resettable ? 0.88 : 0.82;
  c.pins.push_back(in_pin("D", 1.0 * drive_scale_cap(drive)));
  c.pins.push_back(in_pin("CK", 0.8, /*is_clock=*/true));
  if (resettable) c.pins.push_back(in_pin("RN", 0.7));
  c.pins.push_back(out_pin("Q", 30.0 * drive));
  return c;
}

Cell make_latch(int drive) {
  Cell c;
  c.func = CellFunc::kLatch;
  c.type = NodeType::kLatch;
  c.drive = drive;
  c.name = "LATCH" + drive_suffix(drive);
  c.area_um2 = 3.0 * drive_scale_area(drive);
  c.leakage_uw = 0.0030 * drive_scale_leak(drive);
  c.energy_index_ff = kLoadIndexFf;
  c.energy_fj = energy_lut(0.75, drive);
  c.clock_pin_energy_fj = 0.55;
  c.pins.push_back(in_pin("D", 1.0 * drive_scale_cap(drive)));
  c.pins.push_back(in_pin("EN", 0.75, /*is_clock=*/true));
  c.pins.push_back(out_pin("Q", 28.0 * drive));
  return c;
}

Cell make_clock_cell(CellFunc func, int drive) {
  Cell c;
  c.func = func;
  c.type = NodeType::kCk;
  c.drive = drive;
  c.name = std::string(cell_func_name(func)) + drive_suffix(drive);
  const bool gate = (func == CellFunc::kCkGate);
  c.area_um2 = (gate ? 3.6 : 1.1) * drive_scale_area(drive);
  c.leakage_uw = (gate ? 0.0036 : 0.0011) * drive_scale_leak(drive);
  c.energy_index_ff = kLoadIndexFf;
  c.energy_fj = energy_lut(gate ? 0.85 : 0.62, drive);
  if (gate) c.clock_pin_energy_fj = 0.6;
  c.pins.push_back(in_pin("CK", 0.9 * drive_scale_cap(drive), /*is_clock=*/true));
  if (gate) c.pins.push_back(in_pin("EN", 0.9));
  // Clock buffers are built to drive large clock nets: generous max cap.
  c.pins.push_back(out_pin(gate ? "GCK" : "Y", 90.0 * drive));
  return c;
}

Cell make_tie(bool high) {
  Cell c;
  c.func = high ? CellFunc::kTieHi : CellFunc::kTieLo;
  c.type = NodeType::kTie;
  c.drive = 1;
  c.name = high ? "TIEHI_X1" : "TIELO_X1";
  c.area_um2 = 0.6;
  c.leakage_uw = 0.0004;
  c.energy_index_ff = kLoadIndexFf;
  c.energy_fj = std::vector<double>(kLoadIndexFf.size(), 0.0);  // never toggles
  c.pins.push_back(out_pin("Y", 20.0));
  return c;
}

Cell make_sram(int addr_bits, int data_bits) {
  Cell c;
  c.func = CellFunc::kSram;
  c.type = NodeType::kMacro;
  c.drive = 1;
  c.name = "SRAM_1RW_" + std::to_string(1 << addr_bits) + "x" +
           std::to_string(data_bits);
  c.area_um2 = 5200.0;
  c.leakage_uw = 4.0;
  // Paper Sec. VI-B: memory power predicted from port toggles x .lib access
  // energy; access energy dwarfs standard-cell energies. Values are scaled
  // so the memory group is roughly half of total design power at this
  // repo's 1:100 design scale, matching the paper's share.
  c.read_energy_fj = 2600.0;
  c.write_energy_fj = 3400.0;
  c.clock_pin_energy_fj = 9.0;  // clock-pin load even when idle
  c.pins.push_back(in_pin("CLK", 4.5, /*is_clock=*/true));
  c.pins.push_back(in_pin("CSB", 1.6));
  c.pins.push_back(in_pin("WEB", 1.6));
  for (int i = 0; i < addr_bits; ++i) c.pins.push_back(in_pin("A" + std::to_string(i), 1.5));
  for (int i = 0; i < data_bits; ++i) c.pins.push_back(in_pin("D" + std::to_string(i), 1.4));
  for (int i = 0; i < data_bits; ++i) c.pins.push_back(out_pin("Q" + std::to_string(i), 40.0));
  return c;
}

}  // namespace

Library make_default_library() {
  Library lib("atlas40lp", /*voltage=*/0.9, /*clock_period_ns=*/1.0);
  for (const FuncSpec& s : kCombSpecs) {
    for (int drive : {1, 2, 4}) lib.add_cell(make_comb_cell(s, drive));
  }
  for (int drive : {1, 2}) {
    lib.add_cell(make_dff(/*resettable=*/false, drive));
    lib.add_cell(make_dff(/*resettable=*/true, drive));
    lib.add_cell(make_latch(drive));
  }
  for (int drive : {1, 2, 4}) {
    lib.add_cell(make_clock_cell(CellFunc::kCkBuf, drive));
    lib.add_cell(make_clock_cell(CellFunc::kCkInv, drive));
  }
  for (int drive : {1, 2}) lib.add_cell(make_clock_cell(CellFunc::kCkGate, drive));
  lib.add_cell(make_tie(/*high=*/true));
  lib.add_cell(make_tie(/*high=*/false));
  lib.add_cell(make_sram(/*addr_bits=*/8, /*data_bits=*/16));
  return lib;
}

}  // namespace atlas::liberty
