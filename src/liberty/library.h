// Technology-library model: cells, pins, and power lookup tables.
//
// Substitutes for the TSMC 40nm .lib the paper uses. ATLAS only consumes the
// library through lookup tables (pin capacitance, per-transition internal
// energy vs. output load, leakage), so the model keeps exactly those.
//
// Unit system (consistent across the repo):
//   voltage            V      (nominal 0.9 V)
//   capacitance        fF
//   energy             fJ     (0.5 * C[fF] * V^2 -> fJ)
//   time               ns     (clock period 1 ns = 1 GHz, as in the paper)
//   power              uW     (fJ per ns), design totals reported in mW
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "liberty/types.h"

namespace atlas::liberty {

using CellId = std::uint32_t;
inline constexpr CellId kInvalidCell = static_cast<CellId>(-1);

enum class PinDir : std::uint8_t { kInput, kOutput };

struct Pin {
  std::string name;
  PinDir dir = PinDir::kInput;
  double cap_ff = 0.0;      // input pin capacitance
  double max_cap_ff = 0.0;  // output drive limit (outputs only)
  bool is_clock = false;    // clock input pin (CK / CLK / EN of a latch)
};

/// One library cell (one drive-strength variant of one function).
struct Cell {
  std::string name;            // e.g. "NAND2_X1"
  CellFunc func = CellFunc::kInv;
  NodeType type = NodeType::kInv;
  int drive = 1;               // 1 / 2 / 4
  double area_um2 = 0.0;
  double leakage_uw = 0.0;

  /// Pin order convention (relied on by the simulator):
  ///   combinational:  [inputs in eval order..., Y]
  ///   DFF:            [D, CK, Q]      DFFR: [D, CK, RN, Q]
  ///   LATCH:          [D, EN, Q]
  ///   CKBUF/CKINV:    [CK, Y]         CKGATE: [CK, EN, GCK]
  ///   SRAM:           [CLK, CSB, WEB, A0..A{na-1}, D0..D{nd-1}, Q0..Q{nd-1}]
  std::vector<Pin> pins;

  /// Internal-energy lookup table: energy_fj[i] is the per-output-transition
  /// internal energy at load energy_index_ff[i]; linear interpolation, clamped
  /// extrapolation. Empty for macros (they use access_energy_fj).
  std::vector<double> energy_index_ff;
  std::vector<double> energy_fj;

  /// Sequential / clock-gate cells: internal energy drawn per clock edge at
  /// the clock pin, regardless of data switching (dominant register power).
  double clock_pin_energy_fj = 0.0;

  /// Macros only: energy per read/write access and idle leakage already in
  /// leakage_uw (paper Sec. VI-B memory model uses exactly these numbers).
  double read_energy_fj = 0.0;
  double write_energy_fj = 0.0;

  int input_count() const;
  int output_pin() const;  // index of the (single) output pin; -1 for none
  std::optional<int> pin_index(std::string_view pin_name) const;
};

class Library {
 public:
  explicit Library(std::string name = "atlas40lp", double voltage = 0.9,
                   double clock_period_ns = 1.0);

  const std::string& name() const { return name_; }
  double voltage() const { return voltage_; }
  double clock_period_ns() const { return clock_period_ns_; }
  double frequency_ghz() const { return 1.0 / clock_period_ns_; }

  CellId add_cell(Cell cell);
  std::size_t size() const { return cells_.size(); }

  const Cell& cell(CellId id) const { return cells_.at(id); }

  std::optional<CellId> find(std::string_view name) const;
  /// Lookup that throws with the cell name on miss.
  CellId must(std::string_view name) const;

  /// The lowest-drive variant implementing `func`; throws if absent.
  CellId cell_for(CellFunc func, int drive = 1) const;

  /// Next stronger variant of the same function, or nullopt at max drive.
  std::optional<CellId> next_drive_up(CellId id) const;

  /// Per-transition internal energy at the given output load (interpolated).
  double internal_energy_fj(CellId id, double load_ff) const;

  /// ½·C·V² in fJ for a capacitance in fF at library voltage.
  double switching_energy_fj(double cap_ff) const;

  const std::vector<Cell>& cells() const { return cells_; }

 private:
  std::string name_;
  double voltage_;
  double clock_period_ns_;
  std::vector<Cell> cells_;
  std::vector<std::pair<std::string, CellId>> by_name_;  // sorted
};

/// Build the synthetic 40nm-class default library used throughout the repo.
/// Deterministic (no RNG): realistic relative magnitudes between cell types.
Library make_default_library();

}  // namespace atlas::liberty
