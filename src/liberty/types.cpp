#include "liberty/types.h"

#include <array>
#include <stdexcept>
#include <string>

namespace atlas::liberty {
namespace {

constexpr std::array<std::string_view, kNumNodeTypes> kNodeTypeNames = {
    "INV",  "BUF",  "AND",  "OR",    "NAND", "NOR",
    "XOR",  "XNOR", "MUX",  "AOI",   "OAI",  "ADD",
    "TIE",  "REG",  "REGR", "LATCH", "CK",   "MACRO"};

constexpr std::array<std::string_view, 26> kCellFuncNames = {
    "INV",   "BUF",   "AND2",  "AND3",  "OR2",    "OR3",   "NAND2",
    "NAND3", "NOR2",  "NOR3",  "XOR2",  "XNOR2",  "MUX2",  "AOI21",
    "OAI21", "FASUM", "MAJ3",  "TIEHI", "TIELO",  "DFF",   "DFFR",
    "LATCH", "CKBUF", "CKINV", "CKGATE", "SRAM"};

}  // namespace

std::string_view node_type_name(NodeType t) {
  return kNodeTypeNames.at(static_cast<std::size_t>(t));
}

std::string_view cell_func_name(CellFunc f) {
  return kCellFuncNames.at(static_cast<std::size_t>(f));
}

NodeType node_type_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kNodeTypeNames.size(); ++i) {
    if (kNodeTypeNames[i] == name) return static_cast<NodeType>(i);
  }
  throw std::invalid_argument("unknown node type: " + std::string(name));
}

CellFunc cell_func_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kCellFuncNames.size(); ++i) {
    if (kCellFuncNames[i] == name) return static_cast<CellFunc>(i);
  }
  throw std::invalid_argument("unknown cell function: " + std::string(name));
}

NodeType node_type_of(CellFunc f) {
  switch (f) {
    case CellFunc::kInv: return NodeType::kInv;
    case CellFunc::kBuf: return NodeType::kBuf;
    case CellFunc::kAnd2:
    case CellFunc::kAnd3: return NodeType::kAnd;
    case CellFunc::kOr2:
    case CellFunc::kOr3: return NodeType::kOr;
    case CellFunc::kNand2:
    case CellFunc::kNand3: return NodeType::kNand;
    case CellFunc::kNor2:
    case CellFunc::kNor3: return NodeType::kNor;
    case CellFunc::kXor2: return NodeType::kXor;
    case CellFunc::kXnor2: return NodeType::kXnor;
    case CellFunc::kMux2: return NodeType::kMux;
    case CellFunc::kAoi21: return NodeType::kAoi;
    case CellFunc::kOai21: return NodeType::kOai;
    case CellFunc::kFaSum:
    case CellFunc::kMaj3: return NodeType::kAdd;
    case CellFunc::kTieHi:
    case CellFunc::kTieLo: return NodeType::kTie;
    case CellFunc::kDff: return NodeType::kReg;
    case CellFunc::kDffR: return NodeType::kRegR;
    case CellFunc::kLatch: return NodeType::kLatch;
    case CellFunc::kCkBuf:
    case CellFunc::kCkInv:
    case CellFunc::kCkGate: return NodeType::kCk;
    case CellFunc::kSram: return NodeType::kMacro;
  }
  throw std::logic_error("node_type_of: unhandled cell function");
}

int comb_input_count(CellFunc f) {
  switch (f) {
    case CellFunc::kInv:
    case CellFunc::kBuf:
    case CellFunc::kCkBuf:
    case CellFunc::kCkInv: return 1;
    case CellFunc::kAnd2:
    case CellFunc::kOr2:
    case CellFunc::kNand2:
    case CellFunc::kNor2:
    case CellFunc::kXor2:
    case CellFunc::kXnor2:
    case CellFunc::kCkGate: return 2;
    case CellFunc::kAnd3:
    case CellFunc::kOr3:
    case CellFunc::kNand3:
    case CellFunc::kNor3:
    case CellFunc::kMux2:
    case CellFunc::kAoi21:
    case CellFunc::kOai21:
    case CellFunc::kFaSum:
    case CellFunc::kMaj3: return 3;
    case CellFunc::kTieHi:
    case CellFunc::kTieLo: return 0;
    case CellFunc::kDff:
    case CellFunc::kDffR:
    case CellFunc::kLatch:
    case CellFunc::kSram: return 0;
  }
  throw std::logic_error("comb_input_count: unhandled cell function");
}

bool is_sequential(CellFunc f) {
  return f == CellFunc::kDff || f == CellFunc::kDffR || f == CellFunc::kLatch;
}

bool is_clock_cell(CellFunc f) {
  return f == CellFunc::kCkBuf || f == CellFunc::kCkInv ||
         f == CellFunc::kCkGate;
}

bool is_macro(CellFunc f) { return f == CellFunc::kSram; }

bool is_combinational(CellFunc f) {
  return !is_sequential(f) && !is_macro(f);
}

bool eval_comb(CellFunc f, const bool* in, int n) {
  const auto need = comb_input_count(f);
  if (n != need) throw std::invalid_argument("eval_comb: wrong input count");
  switch (f) {
    case CellFunc::kInv: return !in[0];
    case CellFunc::kBuf: return in[0];
    case CellFunc::kAnd2: return in[0] && in[1];
    case CellFunc::kAnd3: return in[0] && in[1] && in[2];
    case CellFunc::kOr2: return in[0] || in[1];
    case CellFunc::kOr3: return in[0] || in[1] || in[2];
    case CellFunc::kNand2: return !(in[0] && in[1]);
    case CellFunc::kNand3: return !(in[0] && in[1] && in[2]);
    case CellFunc::kNor2: return !(in[0] || in[1]);
    case CellFunc::kNor3: return !(in[0] || in[1] || in[2]);
    case CellFunc::kXor2: return in[0] != in[1];
    case CellFunc::kXnor2: return in[0] == in[1];
    case CellFunc::kMux2: return in[2] ? in[1] : in[0];
    case CellFunc::kAoi21: return !((in[0] && in[1]) || in[2]);
    case CellFunc::kOai21: return !((in[0] || in[1]) && in[2]);
    case CellFunc::kFaSum: return (in[0] != in[1]) != in[2];
    case CellFunc::kMaj3:
      return (in[0] && in[1]) || (in[0] && in[2]) || (in[1] && in[2]);
    case CellFunc::kTieHi: return true;
    case CellFunc::kTieLo: return false;
    case CellFunc::kCkBuf: return in[0];
    case CellFunc::kCkInv: return !in[0];
    case CellFunc::kCkGate: return in[0] && in[1];
    default:
      throw std::invalid_argument("eval_comb: not a combinational function");
  }
}

std::string_view power_group_name(PowerGroup g) {
  switch (g) {
    case PowerGroup::kComb: return "combinational";
    case PowerGroup::kRegister: return "register";
    case PowerGroup::kClockTree: return "clock_tree";
    case PowerGroup::kMemory: return "memory";
  }
  throw std::logic_error("power_group_name: unhandled group");
}

PowerGroup power_group_of(NodeType t) {
  switch (t) {
    case NodeType::kReg:
    case NodeType::kRegR:
    case NodeType::kLatch: return PowerGroup::kRegister;
    case NodeType::kCk: return PowerGroup::kClockTree;
    case NodeType::kMacro: return PowerGroup::kMemory;
    default: return PowerGroup::kComb;
  }
}

}  // namespace atlas::liberty
