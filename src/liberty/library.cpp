#include "liberty/library.h"

#include <algorithm>
#include <stdexcept>

namespace atlas::liberty {

int Cell::input_count() const {
  int n = 0;
  for (const Pin& p : pins) n += (p.dir == PinDir::kInput) ? 1 : 0;
  return n;
}

int Cell::output_pin() const {
  for (std::size_t i = 0; i < pins.size(); ++i) {
    if (pins[i].dir == PinDir::kOutput) return static_cast<int>(i);
  }
  return -1;
}

std::optional<int> Cell::pin_index(std::string_view pin_name) const {
  for (std::size_t i = 0; i < pins.size(); ++i) {
    if (pins[i].name == pin_name) return static_cast<int>(i);
  }
  return std::nullopt;
}

Library::Library(std::string name, double voltage, double clock_period_ns)
    : name_(std::move(name)), voltage_(voltage),
      clock_period_ns_(clock_period_ns) {
  if (voltage_ <= 0 || clock_period_ns_ <= 0) {
    throw std::invalid_argument("Library: voltage and period must be positive");
  }
}

CellId Library::add_cell(Cell cell) {
  if (find(cell.name)) {
    throw std::invalid_argument("Library: duplicate cell name " + cell.name);
  }
  if (cell.energy_index_ff.size() != cell.energy_fj.size()) {
    throw std::invalid_argument("Library: LUT index/value size mismatch in " +
                                cell.name);
  }
  const CellId id = static_cast<CellId>(cells_.size());
  const auto pos = std::lower_bound(
      by_name_.begin(), by_name_.end(), cell.name,
      [](const auto& entry, const std::string& key) { return entry.first < key; });
  by_name_.insert(pos, {cell.name, id});
  cells_.push_back(std::move(cell));
  return id;
}

std::optional<CellId> Library::find(std::string_view name) const {
  const auto pos = std::lower_bound(
      by_name_.begin(), by_name_.end(), name,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  if (pos != by_name_.end() && pos->first == name) return pos->second;
  return std::nullopt;
}

CellId Library::must(std::string_view name) const {
  if (const auto id = find(name)) return *id;
  throw std::out_of_range("Library: no cell named " + std::string(name));
}

CellId Library::cell_for(CellFunc func, int drive) const {
  CellId best = kInvalidCell;
  for (CellId id = 0; id < cells_.size(); ++id) {
    const Cell& c = cells_[id];
    if (c.func != func) continue;
    if (c.drive == drive) return id;
    if (best == kInvalidCell || c.drive < cells_[best].drive) best = id;
  }
  if (best == kInvalidCell) {
    throw std::out_of_range(std::string("Library: no cell implements ") +
                            std::string(cell_func_name(func)));
  }
  return best;
}

std::optional<CellId> Library::next_drive_up(CellId id) const {
  const Cell& c = cell(id);
  CellId best = kInvalidCell;
  for (CellId other = 0; other < cells_.size(); ++other) {
    const Cell& o = cells_[other];
    if (o.func != c.func || o.drive <= c.drive) continue;
    if (best == kInvalidCell || o.drive < cells_[best].drive) best = other;
  }
  if (best == kInvalidCell) return std::nullopt;
  return best;
}

double Library::internal_energy_fj(CellId id, double load_ff) const {
  const Cell& c = cell(id);
  const auto& xs = c.energy_index_ff;
  const auto& ys = c.energy_fj;
  if (xs.empty()) return 0.0;
  if (xs.size() == 1 || load_ff <= xs.front()) return ys.front();
  if (load_ff >= xs.back()) return ys.back();
  // xs is ascending (validated by the default builder / parser).
  const auto it = std::upper_bound(xs.begin(), xs.end(), load_ff);
  const std::size_t hi = static_cast<std::size_t>(it - xs.begin());
  const std::size_t lo = hi - 1;
  const double t = (load_ff - xs[lo]) / (xs[hi] - xs[lo]);
  return ys[lo] + t * (ys[hi] - ys[lo]);
}

double Library::switching_energy_fj(double cap_ff) const {
  return 0.5 * cap_ff * voltage_ * voltage_;
}

}  // namespace atlas::liberty
