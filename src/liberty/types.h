// Cell taxonomy shared by the whole stack.
//
// The paper (Sec. III-C) categorizes all standard cells into 18 functional
// node types; the one-hot node type is both an encoder input feature and the
// target of the masked-node-type pre-training task (#2). Power grouping
// (combinational / register / clock tree / memory) is derived from the type.
#pragma once

#include <cstdint>
#include <string_view>

namespace atlas::liberty {

/// The 18 functional node-type categories (paper Sec. III-C.1).
enum class NodeType : std::uint8_t {
  kInv = 0,
  kBuf,
  kAnd,
  kOr,
  kNand,
  kNor,
  kXor,
  kXnor,
  kMux,
  kAoi,
  kOai,
  kAdd,    // adder cells (full-adder sum, majority/carry)
  kTie,    // constant generators
  kReg,    // plain D flip-flop
  kRegR,   // resettable D flip-flop
  kLatch,
  kCk,     // all clock cells: clock buffer / inverter / gate (paper: "CK")
  kMacro,  // SRAM macro
};

inline constexpr int kNumNodeTypes = 18;

/// Concrete cell logic functions (what the simulator evaluates).
enum class CellFunc : std::uint8_t {
  kInv = 0,
  kBuf,
  kAnd2,
  kAnd3,
  kOr2,
  kOr3,
  kNand2,
  kNand3,
  kNor2,
  kNor3,
  kXor2,
  kXnor2,
  kMux2,   // inputs A, B, S; Y = S ? B : A
  kAoi21,  // Y = !((A & B) | C)
  kOai21,  // Y = !((A | B) & C)
  kFaSum,  // Y = A ^ B ^ C
  kMaj3,   // Y = majority(A, B, C) — full-adder carry
  kTieHi,
  kTieLo,
  kDff,    // D, CK -> Q
  kDffR,   // D, CK, RN -> Q (synchronous active-low reset)
  kLatch,  // D, EN -> Q (transparent high)
  kCkBuf,
  kCkInv,
  kCkGate, // CK, EN -> GCK (integrated clock gate; modeled as AND)
  kSram,   // 1RW SRAM macro
};

std::string_view node_type_name(NodeType t);
std::string_view cell_func_name(CellFunc f);

/// Parse a node-type name as written by the Liberty writer. Throws on unknown.
NodeType node_type_from_name(std::string_view name);
CellFunc cell_func_from_name(std::string_view name);

/// Node type implied by a cell function.
NodeType node_type_of(CellFunc f);

/// Number of data inputs of a combinational function (0 for sequential/macro;
/// kCkGate reports 2: CK and EN).
int comb_input_count(CellFunc f);

bool is_sequential(CellFunc f);  // DFF / DFFR / LATCH
bool is_clock_cell(CellFunc f);  // CKBUF / CKINV / CKGATE
bool is_macro(CellFunc f);
bool is_combinational(CellFunc f);  // everything else incl. TIE

/// Evaluate a combinational cell function. `inputs` must hold
/// comb_input_count(f) values. kCkGate evaluates as CK & EN.
bool eval_comb(CellFunc f, const bool* inputs, int n);

/// Power groups used for labels and reporting (paper Sec. V / footnote 3:
/// the register group owns each register's clock-pin power; the clock-tree
/// group owns everything else on the clock network).
enum class PowerGroup : std::uint8_t { kComb = 0, kRegister, kClockTree, kMemory };

inline constexpr int kNumPowerGroups = 4;

std::string_view power_group_name(PowerGroup g);

/// Group a node type maps to. Clock-gating cells and clock buffers are
/// kClockTree; REG/REGR/LATCH are kRegister; MACRO is kMemory.
PowerGroup power_group_of(NodeType t);

}  // namespace atlas::liberty
