#include "liberty/liberty_io.h"

#include <cctype>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/hash.h"
#include "util/strings.h"

namespace atlas::liberty {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class TokKind { kIdent, kString, kPunct, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    skip_ws_and_comments();
    Token t;
    t.line = line_;
    if (pos_ >= text_.size()) return t;
    const char c = text_[pos_];
    if (c == '"') {
      ++pos_;
      const std::size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ >= text_.size()) throw LibertyParseError("unterminated string", t.line);
      t.kind = TokKind::kString;
      t.text = std::string(text_.substr(start, pos_ - start));
      ++pos_;
      return t;
    }
    if (std::strchr("(){}:;,", c) != nullptr) {
      t.kind = TokKind::kPunct;
      t.text = std::string(1, c);
      ++pos_;
      return t;
    }
    const std::size_t start = pos_;
    while (pos_ < text_.size() && !std::isspace(static_cast<unsigned char>(text_[pos_])) &&
           std::strchr("(){}:;,\"", text_[pos_]) == nullptr) {
      ++pos_;
    }
    if (pos_ == start) throw LibertyParseError("unexpected character", line_);
    t.kind = TokKind::kIdent;
    t.text = std::string(text_.substr(start, pos_ - start));
    return t;
  }

 private:
  void skip_ws_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < text_.size() &&
               !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
          if (text_[pos_] == '\n') ++line_;
          ++pos_;
        }
        if (pos_ + 1 >= text_.size()) throw LibertyParseError("unterminated comment", line_);
        pos_ += 2;
      } else {
        return;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

// ---------------------------------------------------------------------------
// Recursive-descent group parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) { advance(); }

  LibertyGroup parse_top() {
    LibertyGroup g = parse_group();
    if (cur_.kind != TokKind::kEnd) {
      throw LibertyParseError("trailing content after top-level group", cur_.line);
    }
    return g;
  }

 private:
  void advance() { cur_ = lexer_.next(); }

  void expect_punct(char c) {
    if (cur_.kind != TokKind::kPunct || cur_.text[0] != c) {
      throw LibertyParseError(std::string("expected '") + c + "', got '" +
                                  cur_.text + "'",
                              cur_.line);
    }
    advance();
  }

  bool at_punct(char c) const {
    return cur_.kind == TokKind::kPunct && cur_.text[0] == c;
  }

  // Expects the current token to be the group kind identifier.
  LibertyGroup parse_group() {
    if (cur_.kind != TokKind::kIdent) {
      throw LibertyParseError("expected group kind identifier", cur_.line);
    }
    LibertyGroup g;
    g.kind = cur_.text;
    advance();
    expect_punct('(');
    while (!at_punct(')')) {
      if (cur_.kind == TokKind::kEnd) throw LibertyParseError("unterminated group args", cur_.line);
      if (!at_punct(',')) g.args.push_back(cur_.text);
      advance();
    }
    expect_punct(')');
    expect_punct('{');
    while (!at_punct('}')) {
      if (cur_.kind == TokKind::kEnd) throw LibertyParseError("unterminated group body", cur_.line);
      parse_member(g);
    }
    expect_punct('}');
    return g;
  }

  void parse_member(LibertyGroup& g) {
    if (cur_.kind != TokKind::kIdent && cur_.kind != TokKind::kString) {
      throw LibertyParseError("expected attribute or group, got '" + cur_.text + "'",
                              cur_.line);
    }
    const std::string name = cur_.text;
    advance();
    if (at_punct(':')) {
      // Simple attribute: name : value ;
      advance();
      if (cur_.kind == TokKind::kEnd) throw LibertyParseError("missing attribute value", cur_.line);
      std::string value = cur_.text;
      advance();
      // Multi-token values (e.g. `1 ns`) are joined with spaces.
      while (!at_punct(';')) {
        if (cur_.kind == TokKind::kEnd) throw LibertyParseError("missing ';'", cur_.line);
        value += " " + cur_.text;
        advance();
      }
      expect_punct(';');
      g.attributes.emplace_back(name, value);
      return;
    }
    if (at_punct('(')) {
      // Either a complex attribute `name(v, ...);` or a child group
      // `name(args) { ... }`. Disambiguate after the closing paren.
      std::vector<std::string> args;
      advance();
      while (!at_punct(')')) {
        if (cur_.kind == TokKind::kEnd) throw LibertyParseError("unterminated '('", cur_.line);
        if (!at_punct(',')) args.push_back(cur_.text);
        advance();
      }
      expect_punct(')');
      if (at_punct('{')) {
        LibertyGroup child;
        child.kind = name;
        child.args = std::move(args);
        advance();  // consume '{'
        while (!at_punct('}')) {
          if (cur_.kind == TokKind::kEnd) throw LibertyParseError("unterminated group body", cur_.line);
          parse_member(child);
        }
        expect_punct('}');
        g.children.push_back(std::move(child));
      } else {
        if (at_punct(';')) advance();
        std::string joined;
        for (std::size_t i = 0; i < args.size(); ++i) {
          if (i > 0) joined += ", ";
          joined += args[i];
        }
        g.attributes.emplace_back(name, joined);
      }
      return;
    }
    throw LibertyParseError("expected ':' or '(' after '" + name + "'", cur_.line);
  }

  Lexer lexer_;
  Token cur_;
};

std::vector<double> parse_number_list(std::string_view s) {
  std::vector<double> out;
  for (const std::string& tok : util::split(s, ',')) {
    const auto t = util::trim(tok);
    if (t.empty()) continue;
    out.push_back(std::stod(std::string(t)));
  }
  return out;
}

std::string number_list(const std::vector<double>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ", ";
    out += util::format("%.9g", v[i]);
  }
  return out;
}

}  // namespace

LibertyParseError::LibertyParseError(const std::string& message, int line)
    : std::runtime_error(util::format("liberty parse error (line %d): %s", line,
                                      message.c_str())),
      line_(line) {}

std::string LibertyGroup::attr(std::string_view name, std::string_view fallback) const {
  for (const auto& [k, v] : attributes) {
    if (k == name) return v;
  }
  return std::string(fallback);
}

bool LibertyGroup::has_attr(std::string_view name) const {
  for (const auto& [k, v] : attributes) {
    if (k == name) return true;
  }
  return false;
}

LibertyGroup parse_liberty_text(std::string_view text) {
  return Parser(text).parse_top();
}

std::string write_liberty(const Library& lib) {
  std::ostringstream os;
  os << "/* Generated by atlas liberty writer */\n";
  os << "library(" << lib.name() << ") {\n";
  os << "  delay_model : table_lookup;\n";
  os << "  time_unit : \"1ns\";\n";
  os << "  capacitive_load_unit(1, ff);\n";
  os << "  nom_voltage : " << util::format("%.9g", lib.voltage()) << ";\n";
  os << "  clock_period_ns : " << util::format("%.9g", lib.clock_period_ns())
     << ";\n\n";
  for (const Cell& c : lib.cells()) {
    os << "  cell(" << c.name << ") {\n";
    os << "    cell_function : \"" << cell_func_name(c.func) << "\";\n";
    os << "    node_type : \"" << node_type_name(c.type) << "\";\n";
    os << "    drive_strength : " << c.drive << ";\n";
    os << "    area : " << util::format("%.9g", c.area_um2) << ";\n";
    os << "    cell_leakage_power : " << util::format("%.9g", c.leakage_uw) << ";\n";
    if (c.clock_pin_energy_fj > 0) {
      os << "    clock_pin_energy : " << util::format("%.9g", c.clock_pin_energy_fj)
         << ";\n";
    }
    if (c.read_energy_fj > 0) {
      os << "    read_energy : " << util::format("%.9g", c.read_energy_fj) << ";\n";
      os << "    write_energy : " << util::format("%.9g", c.write_energy_fj) << ";\n";
    }
    for (const Pin& p : c.pins) {
      os << "    pin(" << p.name << ") {\n";
      os << "      direction : " << (p.dir == PinDir::kInput ? "input" : "output")
         << ";\n";
      if (p.dir == PinDir::kInput) {
        os << "      capacitance : " << util::format("%.9g", p.cap_ff) << ";\n";
        if (p.is_clock) os << "      clock : true;\n";
      } else {
        os << "      max_capacitance : " << util::format("%.9g", p.max_cap_ff)
           << ";\n";
      }
      os << "    }\n";
    }
    if (!c.energy_index_ff.empty()) {
      os << "    internal_power() {\n";
      os << "      index_1(\"" << number_list(c.energy_index_ff) << "\");\n";
      os << "      values(\"" << number_list(c.energy_fj) << "\");\n";
      os << "    }\n";
    }
    os << "  }\n";
  }
  os << "}\n";
  return os.str();
}

Library library_from_group(const LibertyGroup& root) {
  if (root.kind != "library" || root.args.empty()) {
    throw LibertyParseError("top-level group must be library(name)", 0);
  }
  const double voltage = std::stod(root.attr("nom_voltage", "0.9"));
  const double period = std::stod(root.attr("clock_period_ns", "1.0"));
  Library lib(root.args[0], voltage, period);

  for (const LibertyGroup& cg : root.children) {
    if (cg.kind != "cell") continue;
    if (cg.args.empty()) throw LibertyParseError("cell group without name", 0);
    Cell c;
    c.name = cg.args[0];
    c.func = cell_func_from_name(cg.attr("cell_function"));
    c.type = cg.has_attr("node_type") ? node_type_from_name(cg.attr("node_type"))
                                      : node_type_of(c.func);
    c.drive = std::stoi(cg.attr("drive_strength", "1"));
    c.area_um2 = std::stod(cg.attr("area", "0"));
    c.leakage_uw = std::stod(cg.attr("cell_leakage_power", "0"));
    c.clock_pin_energy_fj = std::stod(cg.attr("clock_pin_energy", "0"));
    c.read_energy_fj = std::stod(cg.attr("read_energy", "0"));
    c.write_energy_fj = std::stod(cg.attr("write_energy", "0"));
    for (const LibertyGroup& sub : cg.children) {
      if (sub.kind == "pin") {
        if (sub.args.empty()) throw LibertyParseError("pin group without name", 0);
        Pin p;
        p.name = sub.args[0];
        p.dir = sub.attr("direction") == "output" ? PinDir::kOutput : PinDir::kInput;
        p.cap_ff = std::stod(sub.attr("capacitance", "0"));
        p.max_cap_ff = std::stod(sub.attr("max_capacitance", "0"));
        p.is_clock = sub.attr("clock", "false") == "true";
        c.pins.push_back(std::move(p));
      } else if (sub.kind == "internal_power") {
        c.energy_index_ff = parse_number_list(sub.attr("index_1"));
        c.energy_fj = parse_number_list(sub.attr("values"));
      }
    }
    lib.add_cell(std::move(c));
  }
  return lib;
}

Library parse_library(std::string_view text) {
  return library_from_group(parse_liberty_text(text));
}

void save_liberty_file(const Library& lib, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  os << write_liberty(lib);
  if (!os) throw std::runtime_error("write failed: " + path);
}

Library load_liberty_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse_library(buf.str());
}

std::uint64_t content_hash(const Library& lib) {
  return util::fnv1a64(write_liberty(lib));
}

}  // namespace atlas::liberty
