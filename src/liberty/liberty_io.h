// Liberty-format (subset) reader and writer.
//
// The paper's flow parses cell internal power, capacitance, and leakage out
// of the foundry .lib; this module reproduces that code path. The grammar
// subset is the standard Liberty group/attribute structure:
//
//   group_kind(arg, ...) { attr : value; "complex_attr"("a, b"); group...{...} }
//
// The generic AST (LibertyGroup) is exposed so tests can poke at structure,
// plus typed conversion to/from liberty::Library.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "liberty/library.h"

namespace atlas::liberty {

/// Generic parsed Liberty group.
struct LibertyGroup {
  std::string kind;                // e.g. "library", "cell", "pin"
  std::vector<std::string> args;   // group arguments
  /// Simple attributes `name : value;` and complex attributes
  /// `name(v1, v2, ...);` (values joined verbatim).
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<LibertyGroup> children;

  /// First attribute value by name, or `fallback`.
  std::string attr(std::string_view name, std::string_view fallback = "") const;
  bool has_attr(std::string_view name) const;
};

class LibertyParseError : public std::runtime_error {
 public:
  LibertyParseError(const std::string& message, int line);
  int line() const { return line_; }

 private:
  int line_;
};

/// Parse Liberty text into its (single) top-level group.
LibertyGroup parse_liberty_text(std::string_view text);

/// Serialize a Library to Liberty text.
std::string write_liberty(const Library& lib);

/// Interpret a parsed Liberty AST as a Library (expects the writer's schema).
Library library_from_group(const LibertyGroup& root);

/// Convenience: parse text straight into a Library.
Library parse_library(std::string_view text);

/// File round-trip helpers (throw std::runtime_error on I/O failure).
void save_liberty_file(const Library& lib, const std::string& path);
Library load_liberty_file(const std::string& path);

/// Content hash of a Library: FNV-1a over its canonical Liberty text
/// (write_liberty). Two libraries hash equal iff they serialize to the same
/// bytes, so a parse/write round-trip is hash-stable and any cell, LUT,
/// voltage or period difference changes the hash. The serve layer keys
/// cached design artifacts on (netlist hash, library hash) with this, so
/// models fine-tuned on different standard-cell substrates can never serve
/// each other's parsed netlists.
std::uint64_t content_hash(const Library& lib);

}  // namespace atlas::liberty
