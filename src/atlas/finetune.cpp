#include "atlas/finetune.h"

#include <algorithm>
#include <stdexcept>

namespace atlas::core {

using graph::SubmoduleGraph;
using ml::Matrix;

SubmoduleStatic compute_submodule_static(const netlist::Netlist& gate,
                                         const SubmoduleGraph& g) {
  SubmoduleStatic st;
  const liberty::Library& lib = gate.library();
  st.volt_sq = lib.voltage() * lib.voltage();
  st.period_ns = lib.clock_period_ns();
  st.internal_fj.resize(g.num_nodes(), 0.0f);
  st.cap_ff.resize(g.num_nodes(), 0.0f);
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    const netlist::CellInstId cid = g.cells[i];
    const liberty::Cell& lc = gate.lib_cell(cid);
    const liberty::PowerGroup group = liberty::power_group_of(lc.type);
    if (group == liberty::PowerGroup::kComb) {
      ++st.n_comb;
      st.leak_comb_uw += lc.leakage_uw;
    }
    if (group == liberty::PowerGroup::kRegister) {
      ++st.n_reg;
      st.leak_reg_uw += lc.leakage_uw;
      st.clockpin_reg_fj += lc.clock_pin_energy_fj;
    }
    double load = 0.0;
    if (g.out_net[i] != netlist::kNoNet) {
      load = layout::net_load_ff(gate, g.out_net[i]);
    }
    st.internal_fj[i] = static_cast<float>(
        lib.internal_energy_fj(gate.cell(cid).lib_cell, load));
    st.cap_ff[i] = static_cast<float>(load);
  }
  return st;
}

double comb_physics_uw(const SubmoduleStatic& st, const CycleExtras& ex) {
  const double switching = 0.5 * st.volt_sq * static_cast<double>(ex.c_comb);
  return (static_cast<double>(ex.i_comb) + switching) / st.period_ns +
         st.leak_comb_uw;
}

double reg_physics_uw(const SubmoduleStatic& st, const CycleExtras& ex) {
  const double switching = 0.5 * st.volt_sq * static_cast<double>(ex.c_reg);
  // Register clock pins see two edges per cycle at the gate level.
  return (static_cast<double>(ex.i_reg) + switching + 2.0 * st.clockpin_reg_fj) /
             st.period_ns +
         st.leak_reg_uw;
}

double ct_normalizer(const SubmoduleStatic& st) {
  return std::max(1, st.n_reg);
}

CycleExtras compute_cycle_extras(const SubmoduleGraph& g,
                                 const SubmoduleStatic& st,
                                 const sim::ToggleTrace& gate_trace, int cycle) {
  CycleExtras ex;
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    const netlist::NetId net = g.out_net[i];
    if (net == netlist::kNoNet) continue;
    const float toggles =
        static_cast<float>(gate_trace.transitions(cycle, net));
    if (toggles == 0.0f) continue;
    const auto type = static_cast<liberty::NodeType>(g.node_type[i]);
    const liberty::PowerGroup group = liberty::power_group_of(type);
    if (group == liberty::PowerGroup::kComb) {
      ex.i_comb += st.internal_fj[i] * toggles;
      ex.c_comb += st.cap_ff[i] * toggles;
    } else if (group == liberty::PowerGroup::kRegister) {
      ex.i_reg += st.internal_fj[i] * toggles;
      ex.c_reg += st.cap_ff[i] * toggles;
    }
  }
  return ex;
}

std::size_t ct_dim(std::size_t d) { return d; }
std::size_t comb_dim(std::size_t d) { return d + 3; }
std::size_t reg_dim(std::size_t d) { return d + 3; }

void fill_ct_row(const Matrix& emb, float* row) {
  std::copy(emb.row(0), emb.row(0) + emb.cols(), row);
}

void fill_comb_row(const Matrix& emb, const SubmoduleStatic& st,
                   const CycleExtras& ex, float* row) {
  std::copy(emb.row(0), emb.row(0) + emb.cols(), row);
  row[emb.cols()] = static_cast<float>(st.n_comb);
  row[emb.cols() + 1] = ex.i_comb;
  row[emb.cols() + 2] = ex.c_comb;
}

void fill_reg_row(const Matrix& emb, const SubmoduleStatic& st,
                  const CycleExtras& ex, float* row) {
  std::copy(emb.row(0), emb.row(0) + emb.cols(), row);
  row[emb.cols()] = static_cast<float>(st.n_reg);
  row[emb.cols() + 1] = ex.i_reg;
  row[emb.cols() + 2] = ex.c_reg;
}

GroupModels finetune_models(const std::vector<const DesignData*>& designs,
                            const ml::SgFormer& encoder,
                            const FinetuneConfig& config) {
  if (designs.empty()) throw std::invalid_argument("finetune: no designs");
  const std::size_t d = encoder.dim();
  const int stride = std::max(1, config.cycle_stride);

  // Count rows first.
  std::size_t rows = 0;
  for (const DesignData* dd : designs) {
    for (const auto& wl : dd->workloads) {
      const int cycles = wl.gate_trace.num_cycles();
      rows += dd->gate_graphs.size() *
              static_cast<std::size_t>((cycles + stride - 1) / stride);
    }
  }
  Matrix x_ct(rows, ct_dim(d));
  Matrix x_comb(rows, comb_dim(d));
  Matrix x_reg(rows, reg_dim(d));
  std::vector<double> y_ct, y_comb, y_reg;
  y_ct.reserve(rows);
  y_comb.reserve(rows);
  y_reg.reserve(rows);

  Matrix feats;
  std::size_t row = 0;
  for (const DesignData* dd : designs) {
    std::vector<SubmoduleStatic> statics;
    statics.reserve(dd->gate_graphs.size());
    for (const SubmoduleGraph& g : dd->gate_graphs) {
      statics.push_back(compute_submodule_static(dd->gate, g));
    }
    for (const auto& wl : dd->workloads) {
      const int cycles = wl.gate_trace.num_cycles();
      for (std::size_t gi = 0; gi < dd->gate_graphs.size(); ++gi) {
        const SubmoduleGraph& g = dd->gate_graphs[gi];
        for (int c = 0; c < cycles; c += stride) {
          graph::fill_cycle_features(g, wl.gate_trace, c, feats);
          const auto out = encoder.forward(graph::view_with_features(g, feats));
          const CycleExtras ex =
              compute_cycle_extras(g, statics[gi], wl.gate_trace, c);
          fill_ct_row(out.graph_emb, x_ct.row(row));
          fill_comb_row(out.graph_emb, statics[gi], ex, x_comb.row(row));
          fill_reg_row(out.graph_emb, statics[gi], ex, x_reg.row(row));
          const power::GroupPower& label = wl.golden.submodule(c, g.submodule);
          // Ratio targets against the analytic gate-level estimates (see
          // comb_physics_uw): trees model the bounded layout-uplift ratio.
          y_ct.push_back(label.clock / ct_normalizer(statics[gi]));
          y_comb.push_back(label.comb /
                           (comb_physics_uw(statics[gi], ex) + kRatioEps));
          y_reg.push_back(label.reg /
                          (reg_physics_uw(statics[gi], ex) + kRatioEps));
          ++row;
        }
      }
    }
  }
  if (row != rows) throw std::logic_error("finetune: row accounting mismatch");

  GroupModels models{ml::GbdtRegressor(config.gbdt),
                     ml::GbdtRegressor(config.gbdt),
                     ml::GbdtRegressor(config.gbdt)};
  models.f_ct.fit(x_ct, y_ct);
  models.f_comb.fit(x_comb, y_comb);
  models.f_reg.fit(x_reg, y_reg);
  return models;
}

}  // namespace atlas::core
