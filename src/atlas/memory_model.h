// Memory-group power model (paper Sec. VI-B).
//
// The paper excludes SRAM from ATLAS's learned models because "the SRAM
// macro is unchanged during layout": a basic model over port toggle
// activity and .lib energy values reaches ~0.5% error. This reproduces that
// model: per cycle, per macro, predict access energy from the gate-level
// trace's CSB/WEB levels and the macro's read/write/clock-pin energies, with
// a single least-squares scale factor fitted on training designs to absorb
// residual layout effects.
#pragma once

#include <vector>

#include "atlas/preprocess.h"

namespace atlas::core {

class MemoryPowerModel {
 public:
  /// Fit the scale factor from training designs (gate traces vs golden
  /// memory-group power).
  void fit(const std::vector<const DesignData*>& designs);

  /// Per-cycle memory-group power (uW) for a gate-level netlist + trace.
  std::vector<double> predict(const netlist::Netlist& gate,
                              const sim::ToggleTrace& gate_trace) const;

  double scale() const { return scale_; }
  bool fitted() const { return fitted_; }

 private:
  static std::vector<double> raw_estimate(const netlist::Netlist& gate,
                                          const sim::ToggleTrace& trace);

  double scale_ = 1.0;
  bool fitted_ = false;
};

}  // namespace atlas::core
