#include "atlas/memory_model.h"

#include <stdexcept>

#include "power/power_report.h"

namespace atlas::core {

std::vector<double> MemoryPowerModel::raw_estimate(const netlist::Netlist& gate,
                                                   const sim::ToggleTrace& trace) {
  const liberty::Library& lib = gate.library();
  const double period = lib.clock_period_ns();
  std::vector<double> out(static_cast<std::size_t>(trace.num_cycles()), 0.0);
  for (netlist::CellInstId id = 0; id < gate.num_cells(); ++id) {
    const liberty::Cell& lc = gate.lib_cell(id);
    if (!liberty::is_macro(lc.func)) continue;
    const auto& pins = gate.cell(id).pin_nets;
    const netlist::NetId clk = pins[0];
    const netlist::NetId csb = pins[1];
    const netlist::NetId web = pins[2];
    for (int c = 0; c < trace.num_cycles(); ++c) {
      double energy = lc.leakage_uw * period;  // uW * ns = fJ-equivalent scale
      const int ck_tr = trace.transitions(c, clk);
      energy += ck_tr * lc.clock_pin_energy_fj;
      if (!trace.value(c, csb)) {
        energy += trace.value(c, web) ? lc.read_energy_fj : lc.write_energy_fj;
      }
      out[static_cast<std::size_t>(c)] += energy / period;
    }
  }
  return out;
}

void MemoryPowerModel::fit(const std::vector<const DesignData*>& designs) {
  double num = 0.0, den = 0.0;
  for (const DesignData* d : designs) {
    for (const auto& wl : d->workloads) {
      const std::vector<double> est = raw_estimate(d->gate, wl.gate_trace);
      const std::vector<double> label =
          power::series_of(wl.golden, power::Series::kMemory);
      if (est.size() != label.size()) {
        throw std::invalid_argument("MemoryPowerModel::fit: size mismatch");
      }
      for (std::size_t i = 0; i < est.size(); ++i) {
        num += est[i] * label[i];
        den += est[i] * est[i];
      }
    }
  }
  if (den <= 0.0) throw std::invalid_argument("MemoryPowerModel::fit: no memory activity");
  scale_ = num / den;
  fitted_ = true;
}

std::vector<double> MemoryPowerModel::predict(
    const netlist::Netlist& gate, const sim::ToggleTrace& gate_trace) const {
  std::vector<double> est = raw_estimate(gate, gate_trace);
  for (double& v : est) v *= scale_;
  return est;
}

}  // namespace atlas::core
