// Logic-cone extraction — the *rejected* circuit-splitting alternative.
//
// Prior PPA-prediction works (paper refs [6]-[8]) split circuits into logic
// cones: for each flip-flop, the cone contains the flip-flop plus the whole
// combinational fan-in up to register/PI boundaries. The paper's Sec. III-A
// argues cones are inappropriate for power modeling because cones overlap:
// summing per-cone power over-counts shared logic, so cone estimates cannot
// roll up to component or design totals. This module implements cone
// extraction so the claim is measurable (see bench_ablation's cone section
// and the unit tests): `overlap_factor` is the paper's argument in one
// number.
#pragma once

#include <vector>

#include "netlist/netlist.h"
#include "power/power_analyzer.h"
#include "sim/simulator.h"

namespace atlas::core {

/// One logic cone: the root register plus its combinational fan-in.
struct LogicCone {
  netlist::CellInstId root;                 // the flip-flop
  std::vector<netlist::CellInstId> cells;   // root + fan-in comb cells
};

/// Extract the cone of every sequential cell. Cones share combinational
/// cells whenever fan-out re-converges (which is constantly, in real logic).
std::vector<LogicCone> extract_logic_cones(const netlist::Netlist& nl);

/// Sum of cone sizes divided by the number of distinct cells covered —
/// 1.0 would mean a true partition; real designs land well above it.
double cone_overlap_factor(const std::vector<LogicCone>& cones);

/// Average per-cycle power obtained by summing per-cone power (each cell
/// counted once per cone containing it) vs. the true design power. The
/// ratio quantifies the double-counting the paper calls out.
double cone_power_overcount(const netlist::Netlist& nl,
                            const std::vector<LogicCone>& cones,
                            const sim::ToggleTrace& trace);

}  // namespace atlas::core
