#include "atlas/metrics.h"

#include <cmath>
#include <stdexcept>

#include "util/strings.h"

namespace atlas::core {
namespace {

std::vector<double> golden_series(const power::PowerResult& golden,
                                  power::Series s) {
  return power::series_of(golden, s);
}

std::vector<double> prediction_series(const Prediction& p, power::Series s) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(p.num_cycles));
  for (int c = 0; c < p.num_cycles; ++c) {
    const power::GroupPower& g = p.at(c);
    switch (s) {
      case power::Series::kComb: out.push_back(g.comb); break;
      case power::Series::kReg: out.push_back(g.reg); break;
      case power::Series::kClock: out.push_back(g.clock); break;
      case power::Series::kMemory: out.push_back(g.memory); break;
      case power::Series::kRegPlusClock: out.push_back(g.reg + g.clock); break;
      case power::Series::kTotalNoMemory: out.push_back(g.total_no_memory()); break;
      case power::Series::kTotal: out.push_back(g.total()); break;
    }
  }
  return out;
}

}  // namespace

GroupMape evaluate_prediction(const power::PowerResult& golden,
                              const Prediction& prediction) {
  GroupMape m;
  using power::Series;
  m.comb = power::mape(golden_series(golden, Series::kComb),
                       prediction_series(prediction, Series::kComb));
  m.clock = power::mape(golden_series(golden, Series::kClock),
                        prediction_series(prediction, Series::kClock));
  m.reg = power::mape(golden_series(golden, Series::kReg),
                      prediction_series(prediction, Series::kReg));
  m.clock_plus_reg =
      power::mape(golden_series(golden, Series::kRegPlusClock),
                  prediction_series(prediction, Series::kRegPlusClock));
  m.total = power::mape(golden_series(golden, Series::kTotalNoMemory),
                        prediction_series(prediction, Series::kTotalNoMemory));
  return m;
}

GroupMape evaluate_baseline(const power::PowerResult& golden,
                            const power::PowerResult& gate_level) {
  GroupMape m;
  using power::Series;
  m.comb = power::mape(power::series_of(golden, Series::kComb),
                       power::series_of(gate_level, Series::kComb));
  m.clock = power::mape(power::series_of(golden, Series::kClock),
                        power::series_of(gate_level, Series::kClock));
  m.reg = power::mape(power::series_of(golden, Series::kReg),
                      power::series_of(gate_level, Series::kReg));
  m.clock_plus_reg =
      power::mape(power::series_of(golden, Series::kRegPlusClock),
                  power::series_of(gate_level, Series::kRegPlusClock));
  m.total = power::mape(power::series_of(golden, Series::kTotalNoMemory),
                        power::series_of(gate_level, Series::kTotalNoMemory));
  return m;
}

double correlation(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("correlation: size mismatch or empty");
  }
  const double n = static_cast<double>(a.size());
  double ma = 0, mb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0, va = 0, vb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va <= 0 || vb <= 0) return 0.0;
  return cov / std::sqrt(va * vb);
}

double nrmse(const std::vector<double>& labels, const std::vector<double>& preds) {
  if (labels.size() != preds.size() || labels.empty()) {
    throw std::invalid_argument("nrmse: size mismatch or empty");
  }
  double sq = 0, mean = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    sq += (labels[i] - preds[i]) * (labels[i] - preds[i]);
    mean += labels[i];
  }
  mean /= static_cast<double>(labels.size());
  if (mean == 0.0) throw std::invalid_argument("nrmse: zero-mean labels");
  return 100.0 * std::sqrt(sq / static_cast<double>(labels.size())) / mean;
}

std::vector<double> prediction_series_total(const Prediction& p) {
  return prediction_series(p, power::Series::kTotalNoMemory);
}

std::string format_group_mape(const GroupMape& m) {
  return util::format(
      "comb=%.2f%% clock=%.2f%% reg=%.2f%% clock+reg=%.2f%% total=%.2f%%",
      m.comb, m.clock, m.reg, m.clock_plus_reg, m.total);
}

}  // namespace atlas::core
