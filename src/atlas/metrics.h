// Evaluation metrics and Table III-style result rows.
#pragma once

#include <string>
#include <vector>

#include "atlas/model.h"
#include "power/power_report.h"

namespace atlas::core {

/// MAPE per power group for one (design, workload) evaluation — one row of
/// the paper's Table III, for either ATLAS or the gate-level baseline.
struct GroupMape {
  double comb = 0.0;
  double clock = 0.0;
  double reg = 0.0;
  double clock_plus_reg = 0.0;
  double total = 0.0;  // total excluding memory (paper convention)
};

/// Compare an ATLAS prediction against the golden per-cycle result.
GroupMape evaluate_prediction(const power::PowerResult& golden,
                              const Prediction& prediction);

/// Compare the gate-level PTPX-substitute baseline against golden.
GroupMape evaluate_baseline(const power::PowerResult& golden,
                            const power::PowerResult& gate_level);

/// Pearson correlation between two per-cycle series (trace-shape metric).
double correlation(const std::vector<double>& a, const std::vector<double>& b);

/// Normalized RMSE (% of label mean).
double nrmse(const std::vector<double>& labels, const std::vector<double>& preds);

/// Extract the per-cycle total-no-memory series from a prediction.
std::vector<double> prediction_series_total(const Prediction& p);

std::string format_group_mape(const GroupMape& m);

}  // namespace atlas::core
