#include "atlas/logic_cones.h"

#include <unordered_set>

#include "layout/extraction.h"

namespace atlas::core {

using netlist::CellInstId;
using netlist::kNoNet;
using netlist::NetId;

std::vector<LogicCone> extract_logic_cones(const netlist::Netlist& nl) {
  std::vector<LogicCone> cones;
  for (CellInstId id = 0; id < nl.num_cells(); ++id) {
    if (!liberty::is_sequential(nl.lib_cell(id).func)) continue;
    LogicCone cone;
    cone.root = id;
    std::unordered_set<CellInstId> seen{id};
    std::vector<CellInstId> stack{id};
    while (!stack.empty()) {
      const CellInstId cur = stack.back();
      stack.pop_back();
      cone.cells.push_back(cur);
      const liberty::Cell& lc = nl.lib_cell(cur);
      for (std::size_t p = 0; p < lc.pins.size(); ++p) {
        if (lc.pins[p].dir != liberty::PinDir::kInput) continue;
        if (lc.pins[p].is_clock) continue;  // stop at the clock network
        const NetId net = nl.cell(cur).pin_nets[p];
        if (net == kNoNet) continue;
        const netlist::Net& n = nl.net(net);
        if (!n.has_driver()) continue;  // primary input boundary
        const CellInstId drv = n.driver.cell;
        const liberty::Cell& dc = nl.lib_cell(drv);
        // Cone boundary: stop at registers and macros (their outputs are
        // state, owned by their own cones).
        if (liberty::is_sequential(dc.func) || liberty::is_macro(dc.func)) continue;
        if (seen.insert(drv).second) stack.push_back(drv);
      }
    }
    cones.push_back(std::move(cone));
  }
  return cones;
}

double cone_overlap_factor(const std::vector<LogicCone>& cones) {
  std::unordered_set<CellInstId> distinct;
  std::size_t total = 0;
  for (const LogicCone& c : cones) {
    total += c.cells.size();
    distinct.insert(c.cells.begin(), c.cells.end());
  }
  if (distinct.empty()) return 0.0;
  return static_cast<double>(total) / static_cast<double>(distinct.size());
}

double cone_power_overcount(const netlist::Netlist& nl,
                            const std::vector<LogicCone>& cones,
                            const sim::ToggleTrace& trace) {
  // Average per-cell power over the trace (uW), computed once.
  const liberty::Library& lib = nl.library();
  const double period = lib.clock_period_ns();
  std::vector<double> cell_uw(nl.num_cells(), 0.0);
  for (CellInstId id = 0; id < nl.num_cells(); ++id) {
    const liberty::Cell& lc = nl.lib_cell(id);
    double uw = lc.leakage_uw;
    const NetId out = nl.output_net(id);
    if (out != kNoNet && !liberty::is_macro(lc.func)) {
      const double load = layout::net_load_ff(nl, out);
      const double per_tr = lib.internal_energy_fj(nl.cell(id).lib_cell, load) +
                            lib.switching_energy_fj(load);
      uw += per_tr * trace.toggle_rate(out) / period;
    }
    if (lc.clock_pin_energy_fj > 0.0) {
      for (std::size_t p = 0; p < lc.pins.size(); ++p) {
        if (!lc.pins[p].is_clock) continue;
        uw += lc.clock_pin_energy_fj *
              trace.toggle_rate(nl.cell(id).pin_nets[p]) / period;
        break;
      }
    }
    cell_uw[id] = uw;
  }
  double cone_sum = 0.0;
  for (const LogicCone& c : cones) {
    for (const CellInstId id : c.cells) cone_sum += cell_uw[id];
  }
  double design_total = 0.0;
  std::unordered_set<CellInstId> covered;
  for (const LogicCone& c : cones) covered.insert(c.cells.begin(), c.cells.end());
  for (const CellInstId id : covered) design_total += cell_uw[id];
  if (design_total <= 0.0) return 0.0;
  return cone_sum / design_total;
}

}  // namespace atlas::core
