// ATLAS fine-tuning (paper Sec. V).
//
// Three lightweight GBDT models, one per power group, consume the
// pre-trained encoder's per-(sub-module, cycle) graph embedding E_g plus
// the paper's hand-selected gate-level features:
//
//   F_CT  (E_g)                                  — clock tree (layout-only!)
//   F_Comb(E_g, n_Comb, I_Comb, C_Comb)          — combinational
//   F_Reg (E_g, n_Reg,  I_Reg,  C_Reg)           — register
//
// where I_* / C_* are cell internal energy / load capacitance summed over
// the group's cells weighted by each cell's per-cycle output toggle, exactly
// as described in the paper. Labels are the golden post-layout per-cycle
// per-sub-module group powers.
#pragma once

#include <vector>

#include "atlas/preprocess.h"
#include "ml/gbdt.h"
#include "ml/sgformer.h"

namespace atlas::core {

/// Static (cycle-independent) per-sub-module feature context on N_g.
struct SubmoduleStatic {
  int n_comb = 0;
  int n_reg = 0;
  /// Per-node (internal energy, load cap) for the toggle-weighted sums,
  /// aligned with the sub-module graph's node indexing. Internal energy
  /// excludes register clock-pin energy (that burns every cycle, not per
  /// output toggle) — it is accumulated in clockpin_reg_fj instead.
  std::vector<float> internal_fj;
  std::vector<float> cap_ff;
  double clockpin_reg_fj = 0.0;  // sum of register clock-pin energies (per edge)
  double leak_comb_uw = 0.0;
  double leak_reg_uw = 0.0;
  double volt_sq = 0.81;         // library voltage squared
  double period_ns = 1.0;
};

SubmoduleStatic compute_submodule_static(const netlist::Netlist& gate,
                                         const graph::SubmoduleGraph& g);

/// The paper's per-cycle extra features for one sub-module.
struct CycleExtras {
  float i_comb = 0.0f, c_comb = 0.0f;
  float i_reg = 0.0f, c_reg = 0.0f;
};

CycleExtras compute_cycle_extras(const graph::SubmoduleGraph& g,
                                 const SubmoduleStatic& st,
                                 const sim::ToggleTrace& gate_trace, int cycle);

/// Analytic gate-level power estimates (uW) for one sub-module cycle. The
/// GBDTs regress the *ratio* of golden post-layout power to these estimates:
/// depth-limited trees cannot extrapolate raw magnitudes across designs of
/// different size, but the layout uplift ratio is smooth and bounded. The
/// prediction multiplies the ratio back (see AtlasModel::predict).
double comb_physics_uw(const SubmoduleStatic& st, const CycleExtras& ex);
double reg_physics_uw(const SubmoduleStatic& st, const CycleExtras& ex);
/// Clock-tree normalizer: per-register scale (the tree serves the registers).
double ct_normalizer(const SubmoduleStatic& st);

/// Stabilizer added to the physics estimates before forming ratios.
inline constexpr double kRatioEps = 1.0;  // uW

struct FinetuneConfig {
  ml::GbdtConfig gbdt;   // paper: 500 trees, depth 5
  /// Stride over cycles when building training rows (1 = all cycles).
  int cycle_stride = 1;
};

/// The three fine-tuned group models.
struct GroupModels {
  ml::GbdtRegressor f_ct;
  ml::GbdtRegressor f_comb;
  ml::GbdtRegressor f_reg;
};

/// Feature-matrix dimensions for each model given encoder dim d:
///   CT: d      Comb: d + 3      Reg: d + 3
std::size_t ct_dim(std::size_t d);
std::size_t comb_dim(std::size_t d);
std::size_t reg_dim(std::size_t d);

/// Assemble one feature row. `emb` is the 1 x d graph embedding.
void fill_ct_row(const ml::Matrix& emb, float* row);
void fill_comb_row(const ml::Matrix& emb, const SubmoduleStatic& st,
                   const CycleExtras& ex, float* row);
void fill_reg_row(const ml::Matrix& emb, const SubmoduleStatic& st,
                  const CycleExtras& ex, float* row);

/// Train the three group models from the given training designs (all
/// workloads), using `encoder` embeddings on N_g graphs.
GroupModels finetune_models(const std::vector<const DesignData*>& designs,
                            const ml::SgFormer& encoder,
                            const FinetuneConfig& config);

}  // namespace atlas::core
