#include "atlas/flow.h"

#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "obs/log.h"
#include "obs/trace.h"
#include "util/strings.h"
#include "util/timer.h"

namespace atlas::core {
namespace {

std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t config_hash(const ExperimentConfig& c) {
  std::uint64_t h = 0xA71A5ULL;
  h = hash_mix(h, static_cast<std::uint64_t>(c.scale * 1e9));
  h = hash_mix(h, static_cast<std::uint64_t>(c.cycles));
  h = hash_mix(h, static_cast<std::uint64_t>(c.pretrain.epochs));
  h = hash_mix(h, static_cast<std::uint64_t>(c.pretrain.batch_graphs));
  h = hash_mix(h, static_cast<std::uint64_t>(c.pretrain.lr * 1e9));
  h = hash_mix(h, static_cast<std::uint64_t>(c.pretrain.mask_fraction * 1e6));
  h = hash_mix(h, static_cast<std::uint64_t>(c.pretrain.cycles_per_graph));
  h = hash_mix(h, static_cast<std::uint64_t>(c.pretrain.dim));
  h = hash_mix(h, c.pretrain.seed);
  h = hash_mix(h, static_cast<std::uint64_t>(c.finetune.gbdt.n_trees));
  h = hash_mix(h, static_cast<std::uint64_t>(c.finetune.gbdt.max_depth));
  h = hash_mix(h, static_cast<std::uint64_t>(c.finetune.cycle_stride));
  h = hash_mix(h, static_cast<std::uint64_t>(c.pretrain_tasks.toggle) |
                      (static_cast<std::uint64_t>(c.pretrain_tasks.node_type) << 1) |
                      (static_cast<std::uint64_t>(c.pretrain_tasks.size) << 2) |
                      (static_cast<std::uint64_t>(c.pretrain_tasks.cl_gate) << 3) |
                      (static_cast<std::uint64_t>(c.pretrain_tasks.cl_cross) << 4));
  for (const int d : c.train_designs) h = hash_mix(h, static_cast<std::uint64_t>(d));
  return h;
}

// Verbose runs log at info (visible by default); quiet runs demote to
// debug so ATLAS_LOG_LEVEL=debug can still surface the flow narrative.
void log_line(const ExperimentConfig& c, const std::string& msg) {
  obs::LogLine(c.verbose ? obs::LogLevel::kInfo : obs::LogLevel::kDebug, "flow")
      .kv("msg", msg);
}

}  // namespace

Experiment::Experiment(ExperimentConfig config)
    : config_(std::move(config)), lib_(liberty::make_default_library()) {
  PreprocessConfig pre;
  pre.cycles = config_.cycles;
  designs_.reserve(6);
  for (int i = 1; i <= 6; ++i) {
    obs::ObsSpan span("flow", "prepare_C" + std::to_string(i));
    log_line(config_, util::format("preparing design C%d (scale %.4f)...", i,
                                   config_.scale));
    designs_.push_back(prepare_design(
        designgen::paper_design_spec(i, config_.scale), lib_, pre));
    const DesignData& d = designs_.back();
    log_line(config_,
             util::format("  C%d: %zu gate cells -> %zu post-layout cells, "
                          "%zu sub-modules",
                          i, d.gate.num_cells(), d.layout.netlist.num_cells(),
                          d.gate_graphs.size()));
  }
  train_or_load();
  std::vector<const DesignData*> train;
  for (const int i : config_.train_designs) train.push_back(&design(i));
  memory_model_.fit(train);
}

const DesignData& Experiment::design(int index) const {
  if (index < 1 || index > static_cast<int>(designs_.size())) {
    throw std::out_of_range("Experiment::design: index must be 1..6");
  }
  return designs_[static_cast<std::size_t>(index - 1)];
}

std::string Experiment::cache_path() const {
  return config_.cache_dir + "/model_" +
         util::format("%016llx",
                      static_cast<unsigned long long>(config_hash(config_))) +
         ".bin";
}

void Experiment::train_or_load() {
  const std::string path = cache_path();
  if (config_.use_cache && std::filesystem::exists(path)) {
    obs::ObsSpan span("flow", "model_load_cache");
    log_line(config_, "loading cached model from " + path);
    model_ = AtlasModel::load(path);
    model_from_cache_ = true;
    return;
  }
  std::vector<const DesignData*> train;
  for (const int i : config_.train_designs) train.push_back(&design(i));

  log_line(config_, util::format("pre-training encoder (%d epochs)...",
                                 config_.pretrain.epochs));
  util::Timer t1;
  PretrainResult pre = [&] {
    obs::ObsSpan span("flow", "pretrain");
    return pretrain_encoder(train, config_.pretrain, config_.pretrain_tasks);
  }();
  pretrain_seconds_ = t1.seconds();
  pretrain_report_ = pre.report;
  if (!pre.report.epochs.empty()) {
    const EpochStats& last = pre.report.epochs.back();
    log_line(config_,
             util::format("  final losses: toggle=%.3f type=%.3f size=%.3f "
                          "cl1=%.3f cl2=%.3f (acc: tog=%.2f type=%.2f xstage=%.2f)",
                          last.loss_toggle, last.loss_type, last.loss_size,
                          last.loss_cl_gate, last.loss_cl_cross, last.acc_toggle,
                          last.acc_type, last.acc_cl_cross));
  }

  log_line(config_, "fine-tuning group models...");
  util::Timer t2;
  GroupModels models = [&] {
    obs::ObsSpan span("flow", "finetune");
    return finetune_models(train, pre.encoder, config_.finetune);
  }();
  finetune_seconds_ = t2.seconds();

  model_.emplace(std::move(pre.encoder), std::move(models));
  if (config_.use_cache) {
    std::filesystem::create_directories(config_.cache_dir);
    model_->save(path);
    log_line(config_, "model cached at " + path);
  }
}

EvalRow Experiment::evaluate(int design_index, int workload_index) const {
  const DesignData& d = design(design_index);
  if (workload_index < 0 ||
      workload_index >= static_cast<int>(d.workloads.size())) {
    throw std::out_of_range("Experiment::evaluate: bad workload index");
  }
  const auto& wl = d.workloads[static_cast<std::size_t>(workload_index)];
  obs::ObsSpan span("flow", "evaluate");
  EvalRow row;
  row.design = d.spec.name;
  row.workload = wl.name;
  util::Timer t;
  row.prediction = model_->predict(d.gate, d.gate_graphs, wl.gate_trace);
  row.infer_seconds = t.seconds();
  row.atlas = evaluate_prediction(wl.golden, row.prediction);
  row.baseline = evaluate_baseline(wl.golden, wl.gate_level);
  return row;
}

}  // namespace atlas::core
