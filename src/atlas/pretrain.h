// ATLAS self-supervised pre-training (paper Sec. IV).
//
// Trains the SGFormer encoder jointly on the five tasks, without power
// labels:
//
//   #1 masked toggle propagation  — CE on hidden per-cycle toggle bits
//   #2 masked node type           — CE on hidden 18-way node types
//   #3 sub-module size            — MSE on log(node count) from graph emb.
//   #4 gate-level contrastive     — InfoNCE(E_g, E_g+) with in-batch negatives
//   #5 cross-stage alignment      — InfoNCE(E_g, E_p)  with in-batch negatives
//
// Each training sample is a (sub-module, cycle) pair; the three aligned
// graphs (g_i from N_g, g_i+ from N_g+, p_i from N_p) are encoded per batch,
// heads are temporary MLPs discarded after pre-training, and the joint loss
// is the unweighted sum (paper Eq. 6).
#pragma once

#include <vector>

#include "atlas/preprocess.h"
#include "ml/adam.h"
#include "ml/sgformer.h"

namespace atlas::core {

struct PretrainConfig {
  int epochs = 10;
  int batch_graphs = 16;         // paper: batch size 16
  double lr = 1e-3;
  float mask_fraction = 0.15f;   // nodes masked per task
  float temperature = 0.2f;      // InfoNCE temperature
  int cycles_per_graph = 4;      // sampled cycles per sub-module per epoch
  std::size_t dim = 32;          // encoder embedding dimension
  std::uint64_t seed = 2024;
};

struct EpochStats {
  double loss_toggle = 0.0;   // task #1
  double loss_type = 0.0;     // task #2
  double loss_size = 0.0;     // task #3
  double loss_cl_gate = 0.0;  // task #4
  double loss_cl_cross = 0.0; // task #5
  double acc_toggle = 0.0;
  double acc_type = 0.0;
  double acc_cl_cross = 0.0;

  double total() const {
    return loss_toggle + loss_type + loss_size + loss_cl_gate + loss_cl_cross;
  }
};

struct PretrainReport {
  std::vector<EpochStats> epochs;
  int num_samples = 0;
};

/// Selects which of the five tasks are active — used by the ablation bench.
struct TaskMask {
  bool toggle = true;
  bool node_type = true;
  bool size = true;
  bool cl_gate = true;
  bool cl_cross = true;
};

/// Pre-train a fresh encoder on the given training designs.
/// Returns the encoder plus per-epoch statistics.
struct PretrainResult {
  ml::SgFormer encoder;
  PretrainReport report;
};
PretrainResult pretrain_encoder(const std::vector<const DesignData*>& designs,
                                const PretrainConfig& config,
                                const TaskMask& tasks = {});

}  // namespace atlas::core
