#include "atlas/model.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/serialize.h"

namespace atlas::core {

using graph::SubmoduleGraph;
using ml::Matrix;

AtlasModel::AtlasModel(ml::SgFormer encoder, GroupModels models)
    : encoder_(std::move(encoder)), models_(std::move(models)) {}

std::vector<power::GroupPower> Prediction::component_average(
    const netlist::Netlist& gate) const {
  std::vector<power::GroupPower> avg(gate.components().size());
  if (num_cycles == 0) return avg;
  for (int c = 0; c < num_cycles; ++c) {
    for (std::size_t sm = 0; sm < num_submodules; ++sm) {
      const int comp = gate.submodules()[sm].component;
      if (comp < 0) continue;
      avg[static_cast<std::size_t>(comp)] +=
          at(c, static_cast<netlist::SubmoduleId>(sm));
    }
  }
  for (power::GroupPower& g : avg) {
    const double inv = 1.0 / num_cycles;
    g.comb *= inv;
    g.reg *= inv;
    g.clock *= inv;
    g.memory *= inv;
  }
  return avg;
}

std::size_t DesignEmbeddings::approx_bytes() const {
  std::size_t total = sizeof(*this);
  for (const PerGraph& g : graphs) {
    total += sizeof(PerGraph) + g.emb.size() * sizeof(float) +
             g.extras.size() * sizeof(CycleExtras) +
             (g.st.internal_fj.size() + g.st.cap_ff.size()) * sizeof(float);
  }
  return total;
}

Prediction AtlasModel::predict(const netlist::Netlist& gate,
                               const std::vector<SubmoduleGraph>& graphs,
                               const sim::ToggleTrace& gate_trace) const {
  return predict_from_embeddings(gate, graphs,
                                 encode(gate, graphs, gate_trace));
}

DesignEmbeddings AtlasModel::encode(
    const netlist::Netlist& gate, const std::vector<SubmoduleGraph>& graphs,
    const sim::ToggleTrace& gate_trace) const {
  obs::ObsSpan span("model", "encode");
  static obs::Counter* encodes =
      &obs::Registry::global().counter("atlas_model_encodes_total");
  encodes->inc();
  DesignEmbeddings emb;
  emb.num_cycles = gate_trace.num_cycles();
  emb.graphs.reserve(graphs.size());

  const std::size_t d = encoder_.dim();
  Matrix feats;
  for (const SubmoduleGraph& g : graphs) {
    DesignEmbeddings::PerGraph pg;
    pg.st = compute_submodule_static(gate, g);
    pg.emb = Matrix(static_cast<std::size_t>(emb.num_cycles), d);
    pg.extras.resize(static_cast<std::size_t>(emb.num_cycles));
    for (int c = 0; c < emb.num_cycles; ++c) {
      graph::fill_cycle_features(g, gate_trace, c, feats);
      const auto out = encoder_.forward(graph::view_with_features(g, feats));
      std::copy(out.graph_emb.row(0), out.graph_emb.row(0) + d,
                pg.emb.row(static_cast<std::size_t>(c)));
      pg.extras[static_cast<std::size_t>(c)] =
          compute_cycle_extras(g, pg.st, gate_trace, c);
    }
    emb.graphs.push_back(std::move(pg));
  }
  return emb;
}

Prediction AtlasModel::predict_from_embeddings(
    const netlist::Netlist& gate, const std::vector<SubmoduleGraph>& graphs,
    const DesignEmbeddings& emb) const {
  if (emb.graphs.size() != graphs.size()) {
    throw std::invalid_argument(
        "predict_from_embeddings: embeddings/graphs mismatch");
  }
  obs::ObsSpan span("model", "gbdt_heads");
  static obs::Counter* predictions =
      &obs::Registry::global().counter("atlas_model_predictions_total");
  predictions->inc();
  Prediction pred;
  pred.num_cycles = emb.num_cycles;
  pred.num_submodules = gate.submodules().size();
  pred.design.assign(static_cast<std::size_t>(pred.num_cycles), {});
  pred.submodule.assign(
      static_cast<std::size_t>(pred.num_cycles) * pred.num_submodules, {});

  const std::size_t d = encoder_.dim();
  std::vector<float> ct_row(ct_dim(d));
  std::vector<float> comb_row(comb_dim(d));
  std::vector<float> reg_row(reg_dim(d));
  Matrix cycle_emb(1, d);

  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    const SubmoduleGraph& g = graphs[gi];
    const DesignEmbeddings::PerGraph& pg = emb.graphs[gi];
    const SubmoduleStatic& st = pg.st;
    for (int c = 0; c < pred.num_cycles; ++c) {
      std::copy(pg.emb.row(static_cast<std::size_t>(c)),
                pg.emb.row(static_cast<std::size_t>(c)) + d,
                cycle_emb.row(0));
      const CycleExtras& ex = pg.extras[static_cast<std::size_t>(c)];
      fill_ct_row(cycle_emb, ct_row.data());
      fill_comb_row(cycle_emb, st, ex, comb_row.data());
      fill_reg_row(cycle_emb, st, ex, reg_row.data());
      power::GroupPower p;
      // The regressors predict ratios to the analytic gate-level estimates;
      // multiply back and clamp at zero (power cannot be negative).
      p.clock = std::max(0.0, models_.f_ct.predict_row(ct_row.data())) *
                ct_normalizer(st);
      p.comb = std::max(0.0, models_.f_comb.predict_row(comb_row.data())) *
               (comb_physics_uw(st, ex) + kRatioEps);
      p.reg = std::max(0.0, models_.f_reg.predict_row(reg_row.data())) *
              (reg_physics_uw(st, ex) + kRatioEps);
      pred.submodule[static_cast<std::size_t>(c) * pred.num_submodules +
                     static_cast<std::size_t>(g.submodule)] = p;
      pred.design[static_cast<std::size_t>(c)] += p;
    }
  }
  return pred;
}

void AtlasModel::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("AtlasModel::save: cannot open " + path);
  util::write_header(os, "ATLS", 1);
  encoder_.save(os);
  models_.f_ct.save(os);
  models_.f_comb.save(os);
  models_.f_reg.save(os);
  if (!os) throw std::runtime_error("AtlasModel::save: write failed");
}

AtlasModel AtlasModel::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("AtlasModel::load: cannot open " + path);
  util::read_header(is, "ATLS");
  ml::SgFormer encoder = ml::SgFormer::load(is);
  GroupModels models{ml::GbdtRegressor::load(is), ml::GbdtRegressor::load(is),
                     ml::GbdtRegressor::load(is)};
  return AtlasModel(std::move(encoder), std::move(models));
}

}  // namespace atlas::core
