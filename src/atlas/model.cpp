#include "atlas/model.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/parallel.h"
#include "util/serialize.h"

namespace atlas::core {

using graph::SubmoduleGraph;
using ml::Matrix;

AtlasModel::AtlasModel(ml::SgFormer encoder, GroupModels models)
    : encoder_(std::move(encoder)), models_(std::move(models)) {}

std::vector<power::GroupPower> Prediction::component_average(
    const netlist::Netlist& gate) const {
  std::vector<power::GroupPower> avg(gate.components().size());
  if (num_cycles == 0) return avg;
  for (int c = 0; c < num_cycles; ++c) {
    for (std::size_t sm = 0; sm < num_submodules; ++sm) {
      const int comp = gate.submodules()[sm].component;
      if (comp < 0) continue;
      avg[static_cast<std::size_t>(comp)] +=
          at(c, static_cast<netlist::SubmoduleId>(sm));
    }
  }
  for (power::GroupPower& g : avg) {
    const double inv = 1.0 / num_cycles;
    g.comb *= inv;
    g.reg *= inv;
    g.clock *= inv;
    g.memory *= inv;
  }
  return avg;
}

std::size_t DesignEmbeddings::approx_bytes() const {
  std::size_t total = sizeof(*this);
  for (const PerGraph& g : graphs) {
    total += sizeof(PerGraph) + g.emb.size() * sizeof(float) +
             g.extras.size() * sizeof(CycleExtras) +
             (g.st.internal_fj.size() + g.st.cap_ff.size()) * sizeof(float);
  }
  return total;
}

Prediction AtlasModel::predict(const netlist::Netlist& gate,
                               const std::vector<SubmoduleGraph>& graphs,
                               const sim::ToggleTrace& gate_trace) const {
  return predict_from_embeddings(gate, graphs,
                                 encode(gate, graphs, gate_trace));
}

DesignEmbeddings AtlasModel::encode(
    const netlist::Netlist& gate, const std::vector<SubmoduleGraph>& graphs,
    const sim::ToggleTrace& gate_trace) const {
  obs::ObsSpan span("model", "encode");
  static obs::Counter* encodes =
      &obs::Registry::global().counter("atlas_model_encodes_total");
  encodes->inc();
  DesignEmbeddings emb;
  emb.num_cycles = gate_trace.num_cycles();
  emb.graphs.reserve(graphs.size());

  const std::size_t d = encoder_.dim();
  Matrix feats;
  for (const SubmoduleGraph& g : graphs) {
    DesignEmbeddings::PerGraph pg;
    pg.st = compute_submodule_static(gate, g);
    pg.emb = Matrix(static_cast<std::size_t>(emb.num_cycles), d);
    pg.extras.resize(static_cast<std::size_t>(emb.num_cycles));
    for (int c = 0; c < emb.num_cycles; ++c) {
      graph::fill_cycle_features(g, gate_trace, c, feats);
      const auto out = encoder_.forward(graph::view_with_features(g, feats));
      std::copy(out.graph_emb.row(0), out.graph_emb.row(0) + d,
                pg.emb.row(static_cast<std::size_t>(c)));
      pg.extras[static_cast<std::size_t>(c)] =
          compute_cycle_extras(g, pg.st, gate_trace, c);
    }
    emb.graphs.push_back(std::move(pg));
  }
  return emb;
}

void AtlasModel::encode_batch(const EncodeItem* items, std::size_t n,
                              util::Arena& arena) const {
  obs::ObsSpan span("model", "encode_batch");
  static obs::Counter* encodes =
      &obs::Registry::global().counter("atlas_model_encodes_total");
  encodes->inc(n);

  const std::size_t d = encoder_.dim();

  // Per-graph setup: static context, extras, the output matrix, and the
  // shared normalized adjacency (cycle-invariant, built once per graph
  // instead of once per forward). All independent across graphs.
  struct GraphRef {
    const netlist::Netlist* gate = nullptr;
    const SubmoduleGraph* g = nullptr;
    const sim::ToggleTrace* trace = nullptr;
    DesignEmbeddings::PerGraph* pg = nullptr;
    ml::SgFormer::NormAdjacency adj;
  };
  std::vector<GraphRef> grefs;
  for (std::size_t i = 0; i < n; ++i) {
    const EncodeItem& it = items[i];
    DesignEmbeddings& out = *it.out;
    out.num_cycles = it.trace->num_cycles();
    out.graphs.assign(it.graphs->size(), {});
    for (std::size_t gi = 0; gi < it.graphs->size(); ++gi) {
      GraphRef r;
      r.gate = it.gate;
      r.g = &(*it.graphs)[gi];
      r.trace = it.trace;
      r.pg = &out.graphs[gi];
      grefs.push_back(std::move(r));
    }
  }
  util::parallel_for(grefs.size(), 1, [&](std::size_t i) {
    GraphRef& r = grefs[i];
    DesignEmbeddings::PerGraph& pg = *r.pg;
    pg.st = compute_submodule_static(*r.gate, *r.g);
    const int cycles = r.trace->num_cycles();
    pg.emb = Matrix(static_cast<std::size_t>(cycles), d);
    pg.extras.resize(static_cast<std::size_t>(cycles));
    for (int c = 0; c < cycles; ++c) {
      pg.extras[static_cast<std::size_t>(c)] =
          compute_cycle_extras(*r.g, pg.st, *r.trace, c);
    }
    r.adj = ml::SgFormer::build_norm_adjacency(r.g->num_nodes(), &r.g->edges);
  });

  // Flatten to (graph, cycle) segments and run the fused encoder over row
  // blocks. Blocking only bounds peak scratch — segment results never cross
  // block boundaries, so the split points cannot affect numerics.
  struct Seg {
    const GraphRef* ref = nullptr;
    int cycle = 0;
  };
  std::vector<ml::SgFormer::Segment> segs;
  std::vector<Seg> meta;
  for (const GraphRef& r : grefs) {
    const int cycles = r.trace->num_cycles();
    for (int c = 0; c < cycles; ++c) {
      segs.push_back(ml::SgFormer::Segment{r.g->num_nodes(), &r.adj});
      meta.push_back(Seg{&r, c});
    }
  }

  constexpr std::size_t kMaxFusedRows = 8192;
  std::size_t s0 = 0;
  while (s0 < segs.size()) {
    std::size_t s1 = s0;
    std::size_t rows = 0;
    while (s1 < segs.size() &&
           (s1 == s0 || rows + segs[s1].num_nodes <= kMaxFusedRows)) {
      rows += segs[s1].num_nodes;
      ++s1;
    }
    const std::size_t count = s1 - s0;
    const util::Arena::Marker marker = arena.mark();
    std::size_t* off = arena.alloc_array<std::size_t>(count + 1);
    off[0] = 0;
    for (std::size_t k = 0; k < count; ++k) {
      off[k + 1] = off[k] + segs[s0 + k].num_nodes;
    }
    float* feats =
        arena.alloc_array<float>(rows * static_cast<std::size_t>(graph::kFeatureDim));
    float* gemb = arena.alloc_array<float>(count * d);
    util::parallel_for(count, 1, [&](std::size_t k) {
      const Seg& m = meta[s0 + k];
      graph::fill_cycle_features(
          *m.ref->g, *m.ref->trace, m.cycle,
          feats + off[k] * static_cast<std::size_t>(graph::kFeatureDim));
    });
    encoder_.forward_fused(segs.data() + s0, count, feats, gemb, arena);
    util::parallel_for(count, 1, [&](std::size_t k) {
      const Seg& m = meta[s0 + k];
      std::copy(gemb + k * d, gemb + (k + 1) * d,
                m.ref->pg->emb.row(static_cast<std::size_t>(m.cycle)));
    });
    arena.rewind(marker);
    s0 = s1;
  }
}

Prediction AtlasModel::predict_from_embeddings(
    const netlist::Netlist& gate, const std::vector<SubmoduleGraph>& graphs,
    const DesignEmbeddings& emb, util::Arena* arena) const {
  if (emb.graphs.size() != graphs.size()) {
    throw std::invalid_argument(
        "predict_from_embeddings: embeddings/graphs mismatch");
  }
  obs::ObsSpan span("model", "gbdt_heads");
  static obs::Counter* predictions =
      &obs::Registry::global().counter("atlas_model_predictions_total");
  predictions->inc();
  Prediction pred;
  pred.num_cycles = emb.num_cycles;
  pred.num_submodules = gate.submodules().size();
  pred.design.assign(static_cast<std::size_t>(pred.num_cycles), {});
  pred.submodule.assign(
      static_cast<std::size_t>(pred.num_cycles) * pred.num_submodules, {});

  const std::size_t d = encoder_.dim();
  const std::size_t cycles = static_cast<std::size_t>(pred.num_cycles);
  const std::size_t ncg = graphs.size() * cycles;
  if (ncg == 0) return pred;

  // Assemble head feature rows for every (graph, cycle) into one block and
  // evaluate each forest with its batched SoA traversal. Row values and the
  // per-row accumulation are exactly what the scalar fill_*_row +
  // predict_row path computed, so predictions are bit-identical.
  util::Arena local;
  util::Arena& a = arena != nullptr ? *arena : local;
  const util::Arena::Marker marker = a.mark();
  const std::size_t cdim = ct_dim(d);
  const std::size_t odim = comb_dim(d);
  const std::size_t rdim = reg_dim(d);
  float* ct_rows = a.alloc_array<float>(ncg * cdim);
  float* comb_rows = a.alloc_array<float>(ncg * odim);
  float* reg_rows = a.alloc_array<float>(ncg * rdim);
  double* out_ct = a.alloc_array<double>(ncg);
  double* out_comb = a.alloc_array<double>(ncg);
  double* out_reg = a.alloc_array<double>(ncg);

  util::parallel_for(graphs.size(), 1, [&](std::size_t gi) {
    const DesignEmbeddings::PerGraph& pg = emb.graphs[gi];
    const SubmoduleStatic& st = pg.st;
    for (std::size_t c = 0; c < cycles; ++c) {
      const std::size_t r = gi * cycles + c;
      const float* e = pg.emb.row(c);
      const CycleExtras& ex = pg.extras[c];
      std::copy(e, e + d, ct_rows + r * cdim);
      float* cr = comb_rows + r * odim;
      std::copy(e, e + d, cr);
      cr[d] = static_cast<float>(st.n_comb);
      cr[d + 1] = ex.i_comb;
      cr[d + 2] = ex.c_comb;
      float* rr = reg_rows + r * rdim;
      std::copy(e, e + d, rr);
      rr[d] = static_cast<float>(st.n_reg);
      rr[d + 1] = ex.i_reg;
      rr[d + 2] = ex.c_reg;
    }
  });

  util::parallel_for_chunks(ncg, 512, [&](std::size_t r0, std::size_t r1) {
    models_.f_ct.predict_rows(ct_rows + r0 * cdim, r1 - r0, cdim, out_ct + r0);
    models_.f_comb.predict_rows(comb_rows + r0 * odim, r1 - r0, odim,
                                out_comb + r0);
    models_.f_reg.predict_rows(reg_rows + r0 * rdim, r1 - r0, rdim,
                               out_reg + r0);
  });

  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    const SubmoduleGraph& g = graphs[gi];
    const DesignEmbeddings::PerGraph& pg = emb.graphs[gi];
    const SubmoduleStatic& st = pg.st;
    for (std::size_t c = 0; c < cycles; ++c) {
      const std::size_t r = gi * cycles + c;
      const CycleExtras& ex = pg.extras[c];
      power::GroupPower p;
      // The regressors predict ratios to the analytic gate-level estimates;
      // multiply back and clamp at zero (power cannot be negative).
      p.clock = std::max(0.0, out_ct[r]) * ct_normalizer(st);
      p.comb = std::max(0.0, out_comb[r]) * (comb_physics_uw(st, ex) + kRatioEps);
      p.reg = std::max(0.0, out_reg[r]) * (reg_physics_uw(st, ex) + kRatioEps);
      pred.submodule[c * pred.num_submodules +
                     static_cast<std::size_t>(g.submodule)] = p;
      pred.design[c] += p;
    }
  }
  a.rewind(marker);
  return pred;
}

void AtlasModel::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("AtlasModel::save: cannot open " + path);
  util::write_header(os, "ATLS", 1);
  encoder_.save(os);
  models_.f_ct.save(os);
  models_.f_comb.save(os);
  models_.f_reg.save(os);
  if (!os) throw std::runtime_error("AtlasModel::save: write failed");
}

AtlasModel AtlasModel::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("AtlasModel::load: cannot open " + path);
  util::read_header(is, "ATLS");
  ml::SgFormer encoder = ml::SgFormer::load(is);
  GroupModels models{ml::GbdtRegressor::load(is), ml::GbdtRegressor::load(is),
                     ml::GbdtRegressor::load(is)};
  return AtlasModel(std::move(encoder), std::move(models));
}

}  // namespace atlas::core
