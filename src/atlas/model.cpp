#include "atlas/model.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "util/serialize.h"

namespace atlas::core {

using graph::SubmoduleGraph;
using ml::Matrix;

AtlasModel::AtlasModel(ml::SgFormer encoder, GroupModels models)
    : encoder_(std::move(encoder)), models_(std::move(models)) {}

std::vector<power::GroupPower> Prediction::component_average(
    const netlist::Netlist& gate) const {
  std::vector<power::GroupPower> avg(gate.components().size());
  if (num_cycles == 0) return avg;
  for (int c = 0; c < num_cycles; ++c) {
    for (std::size_t sm = 0; sm < num_submodules; ++sm) {
      const int comp = gate.submodules()[sm].component;
      if (comp < 0) continue;
      avg[static_cast<std::size_t>(comp)] +=
          at(c, static_cast<netlist::SubmoduleId>(sm));
    }
  }
  for (power::GroupPower& g : avg) {
    const double inv = 1.0 / num_cycles;
    g.comb *= inv;
    g.reg *= inv;
    g.clock *= inv;
    g.memory *= inv;
  }
  return avg;
}

Prediction AtlasModel::predict(const netlist::Netlist& gate,
                               const std::vector<SubmoduleGraph>& graphs,
                               const sim::ToggleTrace& gate_trace) const {
  Prediction pred;
  pred.num_cycles = gate_trace.num_cycles();
  pred.num_submodules = gate.submodules().size();
  pred.design.assign(static_cast<std::size_t>(pred.num_cycles), {});
  pred.submodule.assign(
      static_cast<std::size_t>(pred.num_cycles) * pred.num_submodules, {});

  const std::size_t d = encoder_.dim();
  std::vector<float> ct_row(ct_dim(d));
  std::vector<float> comb_row(comb_dim(d));
  std::vector<float> reg_row(reg_dim(d));

  Matrix feats;
  for (const SubmoduleGraph& g : graphs) {
    const SubmoduleStatic st = compute_submodule_static(gate, g);
    for (int c = 0; c < pred.num_cycles; ++c) {
      graph::fill_cycle_features(g, gate_trace, c, feats);
      const auto out = encoder_.forward(graph::view_with_features(g, feats));
      const CycleExtras ex = compute_cycle_extras(g, st, gate_trace, c);
      fill_ct_row(out.graph_emb, ct_row.data());
      fill_comb_row(out.graph_emb, st, ex, comb_row.data());
      fill_reg_row(out.graph_emb, st, ex, reg_row.data());
      power::GroupPower p;
      // The regressors predict ratios to the analytic gate-level estimates;
      // multiply back and clamp at zero (power cannot be negative).
      p.clock = std::max(0.0, models_.f_ct.predict_row(ct_row.data())) *
                ct_normalizer(st);
      p.comb = std::max(0.0, models_.f_comb.predict_row(comb_row.data())) *
               (comb_physics_uw(st, ex) + kRatioEps);
      p.reg = std::max(0.0, models_.f_reg.predict_row(reg_row.data())) *
              (reg_physics_uw(st, ex) + kRatioEps);
      pred.submodule[static_cast<std::size_t>(c) * pred.num_submodules +
                     static_cast<std::size_t>(g.submodule)] = p;
      pred.design[static_cast<std::size_t>(c)] += p;
    }
  }
  return pred;
}

void AtlasModel::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("AtlasModel::save: cannot open " + path);
  util::write_header(os, "ATLS", 1);
  encoder_.save(os);
  models_.f_ct.save(os);
  models_.f_comb.save(os);
  models_.f_reg.save(os);
  if (!os) throw std::runtime_error("AtlasModel::save: write failed");
}

AtlasModel AtlasModel::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("AtlasModel::load: cannot open " + path);
  util::read_header(is, "ATLS");
  ml::SgFormer encoder = ml::SgFormer::load(is);
  GroupModels models{ml::GbdtRegressor::load(is), ml::GbdtRegressor::load(is),
                     ml::GbdtRegressor::load(is)};
  return AtlasModel(std::move(encoder), std::move(models));
}

}  // namespace atlas::core
