// End-to-end experiment orchestration for the paper's evaluation.
//
// Builds the six designs (C1..C6) at a configurable scale, runs the full
// preprocessing (rewrite, layout, workload simulation, golden power), then
// pre-trains + fine-tunes ATLAS on the training split (C1, C3, C5, C6) and
// evaluates on the unseen designs (C2, C4) — the paper's exact protocol.
//
// The trained model is cached on disk keyed by a hash of the configuration,
// so the several bench binaries that share one experiment train only once.
#pragma once

#include <optional>
#include <string>

#include "atlas/memory_model.h"
#include "atlas/metrics.h"
#include "atlas/model.h"

namespace atlas::core {

struct ExperimentConfig {
  double scale = 0.01;          // fraction of the paper's design sizes
  int cycles = 300;             // paper evaluates 300-cycle windows
  PretrainConfig pretrain;
  FinetuneConfig finetune;
  TaskMask pretrain_tasks;      // ablation hook
  std::vector<int> train_designs = {1, 3, 5, 6};
  std::vector<int> test_designs = {2, 4};
  std::string cache_dir = "atlas_cache";
  bool use_cache = true;
  bool verbose = true;

  ExperimentConfig() {
    // Experiment-scale defaults: lighter than the library defaults so the
    // whole evaluation runs in minutes on one core.
    finetune.gbdt.n_trees = 300;
    finetune.cycle_stride = 2;
  }
};

/// One evaluated (design, workload) pair — a row of Table III.
struct EvalRow {
  std::string design;
  std::string workload;
  GroupMape atlas;
  GroupMape baseline;      // Gate-Level PTPX substitute
  Prediction prediction;
  double infer_seconds = 0.0;
};

class Experiment {
 public:
  Experiment(ExperimentConfig config);

  const ExperimentConfig& config() const { return config_; }
  const liberty::Library& library() const { return lib_; }
  /// 1-based paper index (C1..C6).
  const DesignData& design(int index) const;
  const AtlasModel& model() const { return *model_; }
  const MemoryPowerModel& memory_model() const { return memory_model_; }

  double pretrain_seconds() const { return pretrain_seconds_; }
  double finetune_seconds() const { return finetune_seconds_; }
  bool model_from_cache() const { return model_from_cache_; }
  const PretrainReport& pretrain_report() const { return pretrain_report_; }

  /// Evaluate one test design under one workload (0-based workload index).
  EvalRow evaluate(int design_index, int workload_index) const;

 private:
  void train_or_load();
  std::string cache_path() const;

  ExperimentConfig config_;
  liberty::Library lib_;
  std::vector<DesignData> designs_;  // index 0..5 <-> C1..C6
  std::optional<AtlasModel> model_;
  MemoryPowerModel memory_model_;
  PretrainReport pretrain_report_;
  double pretrain_seconds_ = 0.0;
  double finetune_seconds_ = 0.0;
  bool model_from_cache_ = false;
};

}  // namespace atlas::core
