#include "atlas/preprocess.h"

#include <deque>
#include <stdexcept>

#include "obs/trace.h"
#include "util/parallel.h"

namespace atlas::core {

using netlist::CellInstId;
using netlist::NetId;
using netlist::Netlist;

namespace {

DesignData::WorkloadData run_workload(const Netlist& gate, const Netlist& plus,
                                      const Netlist& post,
                                      const sim::WorkloadSpec& spec, int cycles,
                                      util::PhaseTimers& timers) {
  obs::ObsSpan span("preprocess", "workload:" + spec.name);
  DesignData::WorkloadData w;
  w.name = spec.name;
  {
    // Gate-level simulation feeds ATLAS features: counts as ATLAS
    // preprocessing time (paper Table IV column "Pre.").
    util::ScopedPhase t(timers, "atlas_pre");
    sim::CycleSimulator s(gate);
    sim::StimulusGenerator stim(gate, spec);
    w.gate_trace = s.run(stim, cycles);
  }
  {
    sim::CycleSimulator s(plus);
    sim::StimulusGenerator stim(plus, spec);
    w.plus_trace = s.run(stim, cycles);
  }
  {
    // Post-layout simulation + power analysis = the traditional flow's
    // "time-based power simulation" (Table IV column "Simulation").
    util::ScopedPhase t(timers, "golden_sim");
    sim::CycleSimulator s(post);
    sim::StimulusGenerator stim(post, spec);
    w.post_trace = s.run(stim, cycles);
    w.golden = power::analyze_power(post, w.post_trace);
  }
  w.gate_level = power::analyze_power(gate, w.gate_trace);
  return w;
}

}  // namespace

DesignData prepare_design(const designgen::DesignSpec& spec,
                          const liberty::Library& lib,
                          const PreprocessConfig& config) {
  PreprocessConfig cfg = config;
  if (cfg.workloads.empty()) cfg.workloads = {sim::make_w1(), sim::make_w2()};

  util::PhaseTimers timers;
  Netlist gate = [&] {
    util::ScopedPhase t(timers, "generate");
    obs::ObsSpan span("preprocess", "generate");
    return designgen::generate_design(spec, lib);
  }();
  transform::RewriteConfig rw = cfg.rewrite;
  rw.seed = spec.seed ^ 0x5eedULL;
  Netlist plus = [&] {
    util::ScopedPhase t(timers, "rewrite");
    obs::ObsSpan span("preprocess", "rewrite");
    return transform::apply_rewrites(gate, rw);
  }();
  layout::LayoutResult layout_result = [&] {
    util::ScopedPhase t(timers, "pnr");
    obs::ObsSpan span("preprocess", "pnr");
    return layout::run_layout(gate, cfg.layout);
  }();

  DesignData data{spec,
                  std::move(gate),
                  std::move(plus),
                  std::move(layout_result),
                  {},
                  {},
                  {},
                  {},
                  std::move(timers)};

  // Workloads are independent (each simulates all three netlists with its
  // own simulator state), so they run in parallel. Each records wall time
  // into a private PhaseTimers merged below in workload order, keeping the
  // timer phases deterministic.
  data.workloads.resize(cfg.workloads.size());
  std::vector<util::PhaseTimers> workload_timers(cfg.workloads.size());
  util::parallel_for(cfg.workloads.size(), std::size_t{1}, [&](std::size_t i) {
    data.workloads[i] =
        run_workload(data.gate, data.plus, data.layout.netlist,
                     cfg.workloads[i], cfg.cycles, workload_timers[i]);
  });
  for (const util::PhaseTimers& t : workload_timers) data.timers.merge(t);

  {
    util::ScopedPhase t(data.timers, "atlas_pre");
    obs::ObsSpan span("preprocess", "graph_build");
    data.gate_graphs = graph::build_submodule_graphs(data.gate);
    data.plus_graphs = graph::build_submodule_graphs(data.plus);
  }
  data.post_graphs = graph::build_submodule_graphs(data.layout.netlist);
  if (data.gate_graphs.size() != data.plus_graphs.size() ||
      data.gate_graphs.size() != data.post_graphs.size()) {
    throw std::runtime_error(
        "prepare_design: sub-module graphs misaligned across stages");
  }
  for (std::size_t i = 0; i < data.gate_graphs.size(); ++i) {
    if (data.gate_graphs[i].submodule != data.plus_graphs[i].submodule ||
        data.gate_graphs[i].submodule != data.post_graphs[i].submodule) {
      throw std::runtime_error("prepare_design: sub-module id mismatch");
    }
  }
  return data;
}

int assign_submodules_by_structure(Netlist& nl, int target_cells) {
  if (target_cells < 1) throw std::invalid_argument("target_cells must be >= 1");
  // Component bucket for auto-created sub-modules.
  int auto_component = -1;
  for (std::size_t i = 0; i < nl.components().size(); ++i) {
    if (nl.components()[i] == "auto") auto_component = static_cast<int>(i);
  }

  std::vector<bool> tagged(nl.num_cells(), false);
  for (CellInstId id = 0; id < nl.num_cells(); ++id) {
    tagged[id] = nl.cell(id).submodule != netlist::kNoSubmodule;
  }

  int created = 0;
  for (CellInstId seed = 0; seed < nl.num_cells(); ++seed) {
    if (tagged[seed]) continue;
    if (auto_component < 0) auto_component = nl.add_component("auto");
    const netlist::SubmoduleId sm = nl.add_submodule(
        "auto_" + std::to_string(created), "auto", auto_component);
    ++created;
    // BFS over net connectivity, preferring register-bounded growth.
    std::deque<CellInstId> queue{seed};
    tagged[seed] = true;
    int count = 0;
    auto tag = [&](CellInstId id) { nl.set_cell_submodule(id, sm); };
    while (!queue.empty() && count < target_cells) {
      const CellInstId id = queue.front();
      queue.pop_front();
      tag(id);
      ++count;
      // Expand over all pins' nets.
      for (const NetId net : nl.cell(id).pin_nets) {
        if (net == netlist::kNoNet || net == nl.clock_net()) continue;
        const netlist::Net& n = nl.net(net);
        auto consider = [&](CellInstId other) {
          if (other == netlist::kNoCell || tagged[other]) return;
          tagged[other] = true;
          queue.push_back(other);
        };
        if (n.has_driver()) consider(n.driver.cell);
        for (const netlist::PinRef& s : n.sinks) consider(s.cell);
      }
    }
    // Whatever remains queued but untagged-by-sm still belongs here to keep
    // the partition total (they were marked tagged when enqueued).
    while (!queue.empty()) {
      tag(queue.front());
      queue.pop_front();
    }
  }
  return created;
}

}  // namespace atlas::core
