// ATLAS netlist preprocessing (paper Sec. III).
//
// For each design this produces the aligned netlist triple the pre-training
// stage consumes — N_g (gate level), N_g+ (logic-invariant rewrite), N_p
// (post-layout) — plus, per workload, toggle traces for all three and the
// golden / gate-level-baseline power analyses. Sub-module ids are preserved
// across all three netlists, so graphs align positionally (g_i, g_i+, p_i).
#pragma once

#include <string>
#include <vector>

#include "designgen/design_generator.h"
#include "graph/submodule_graph.h"
#include "layout/layout_flow.h"
#include "netlist/netlist.h"
#include "power/power_analyzer.h"
#include "sim/simulator.h"
#include "transform/rewrite.h"
#include "util/timer.h"

namespace atlas::core {

struct PreprocessConfig {
  int cycles = 300;
  std::vector<sim::WorkloadSpec> workloads;  // defaults to {W1, W2}
  transform::RewriteConfig rewrite;
  layout::LayoutConfig layout;
};

/// Everything ATLAS training/evaluation needs about one design.
struct DesignData {
  designgen::DesignSpec spec;
  netlist::Netlist gate;             // N_g
  netlist::Netlist plus;             // N_g+
  layout::LayoutResult layout;       // N_p (+ placement, parasitics)

  struct WorkloadData {
    std::string name;
    sim::ToggleTrace gate_trace;     // N_g toggles (ATLAS input features)
    sim::ToggleTrace plus_trace;     // N_g+ toggles (pre-training task #4)
    sim::ToggleTrace post_trace;     // N_p toggles (golden + task #5)
    power::PowerResult golden;       // PTPX substitute on N_p + SPEF caps
    power::PowerResult gate_level;   // "Gate-Level PTPX" baseline on N_g
  };
  std::vector<WorkloadData> workloads;

  // Sub-module DGs, indexed by SubmoduleId, aligned across stages.
  std::vector<graph::SubmoduleGraph> gate_graphs;
  std::vector<graph::SubmoduleGraph> plus_graphs;
  std::vector<graph::SubmoduleGraph> post_graphs;

  /// Wall-clock attribution for the Table IV runtime experiment; phases:
  /// "generate", "rewrite", "pnr", "golden_sim", "atlas_pre".
  util::PhaseTimers timers;
};

/// Run the full preprocessing pipeline for one design spec.
DesignData prepare_design(const designgen::DesignSpec& spec,
                          const liberty::Library& lib,
                          const PreprocessConfig& config = {});

/// Structural fallback sub-module splitter for netlists parsed from Verilog
/// without sub-module attributes (paper's splitter works from functional
/// roles; this clusters cells around register groups via BFS). Tags every
/// untagged cell; resulting sub-modules have roughly `target_cells` cells.
/// Returns the number of sub-modules created.
int assign_submodules_by_structure(netlist::Netlist& nl, int target_cells = 150);

}  // namespace atlas::core
