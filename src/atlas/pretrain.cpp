#include "atlas/pretrain.h"

#include <cmath>
#include <stdexcept>

#include "graph/submodule_graph.h"
#include "ml/losses.h"
#include "util/rng.h"

namespace atlas::core {

using graph::SubmoduleGraph;
using ml::Matrix;

namespace {

struct Sample {
  const DesignData* design = nullptr;
  std::size_t graph_idx = 0;
  int workload = 0;
  int cycle = 0;
};

/// Per-sample forward state within a batch.
struct SampleState {
  ml::SgFormer::Cache cache_masked;  // masked gate graph (tasks #1-#3)
  ml::SgFormer::Cache cache_gate;    // unmasked gate graph (CL anchor)
  ml::SgFormer::Cache cache_plus;    // N_g+ graph (CL1 positive)
  ml::SgFormer::Cache cache_post;    // N_p graph (CL2 positive)
  Matrix emb_gate, emb_plus, emb_post;  // graph embeddings (1 x d)
  std::vector<std::uint32_t> toggle_nodes;  // masked node indices
  std::vector<int> toggle_labels;
  std::vector<std::uint32_t> type_nodes;
  std::vector<int> type_labels;
  std::size_t n_nodes = 0;
};

int toggle_bit(const SubmoduleGraph& g, const sim::ToggleTrace& trace, int cycle,
               std::uint32_t node) {
  const netlist::NetId net = g.out_net[node];
  if (net == netlist::kNoNet) return 0;
  return trace.transitions(cycle, net) > 0 ? 1 : 0;
}

}  // namespace

PretrainResult pretrain_encoder(const std::vector<const DesignData*>& designs,
                                const PretrainConfig& config,
                                const TaskMask& tasks) {
  if (designs.empty()) throw std::invalid_argument("pretrain: no designs");
  util::Rng rng(config.seed);

  ml::SgFormer::Config enc_cfg;
  enc_cfg.in_dim = graph::kFeatureDim;
  enc_cfg.dim = config.dim;
  enc_cfg.seed = rng.next_u64();
  ml::SgFormer encoder(enc_cfg);

  util::Rng head_rng(rng.next_u64());
  ml::Mlp toggle_head({config.dim, config.dim, 2}, head_rng);
  ml::Mlp type_head({config.dim, config.dim, liberty::kNumNodeTypes}, head_rng);
  ml::Mlp size_head({config.dim, config.dim, 1}, head_rng);

  std::vector<ml::ParamRef> params;
  encoder.collect_params(params);
  toggle_head.collect_params(params);
  type_head.collect_params(params);
  size_head.collect_params(params);
  ml::AdamConfig adam_cfg;
  adam_cfg.lr = static_cast<float>(config.lr);
  ml::Adam adam(params, adam_cfg);

  PretrainResult result{std::move(encoder), {}};
  ml::SgFormer& enc = result.encoder;

  // Sample universe: every (design, graph); cycles drawn fresh per epoch.
  std::vector<std::pair<const DesignData*, std::size_t>> universe;
  for (const DesignData* d : designs) {
    if (d->workloads.empty()) throw std::invalid_argument("pretrain: design has no workloads");
    for (std::size_t g = 0; g < d->gate_graphs.size(); ++g) {
      universe.emplace_back(d, g);
    }
  }
  if (universe.empty()) throw std::invalid_argument("pretrain: no sub-module graphs");

  Matrix feats;  // scratch
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    // Draw this epoch's samples.
    std::vector<Sample> samples;
    samples.reserve(universe.size() * static_cast<std::size_t>(config.cycles_per_graph));
    for (const auto& [d, g] : universe) {
      for (int k = 0; k < config.cycles_per_graph; ++k) {
        Sample s;
        s.design = d;
        s.graph_idx = g;
        s.workload = static_cast<int>(rng.next_below(d->workloads.size()));
        s.cycle = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(
                d->workloads[static_cast<std::size_t>(s.workload)].gate_trace.num_cycles())));
        samples.push_back(s);
      }
    }
    rng.shuffle(samples);
    result.report.num_samples = static_cast<int>(samples.size());

    EpochStats stats;
    int batches = 0;
    for (std::size_t start = 0; start + 2 <= samples.size();
         start += static_cast<std::size_t>(config.batch_graphs)) {
      const std::size_t end =
          std::min(samples.size(), start + static_cast<std::size_t>(config.batch_graphs));
      const std::size_t bsz = end - start;
      if (bsz < 2) break;  // contrastive losses need >= 2 graphs

      enc.zero_grad();
      toggle_head.zero_grad();
      type_head.zero_grad();
      size_head.zero_grad();

      std::vector<SampleState> states(bsz);
      Matrix anchors(bsz, config.dim), pos_plus(bsz, config.dim),
          pos_post(bsz, config.dim);
      std::vector<float> size_targets(bsz);

      // ---- Forward all graphs of the batch --------------------------------
      for (std::size_t b = 0; b < bsz; ++b) {
        const Sample& s = samples[start + b];
        SampleState& st = states[b];
        const auto& wl = s.design->workloads[static_cast<std::size_t>(s.workload)];
        const SubmoduleGraph& gg = s.design->gate_graphs[s.graph_idx];
        const SubmoduleGraph& gp = s.design->plus_graphs[s.graph_idx];
        const SubmoduleGraph& gq = s.design->post_graphs[s.graph_idx];
        st.n_nodes = gg.num_nodes();

        // Masked gate graph.
        graph::fill_cycle_features(gg, wl.gate_trace, s.cycle, feats);
        const std::size_t n = gg.num_nodes();
        const int n_mask = std::max<int>(1, static_cast<int>(
                                                std::lround(config.mask_fraction *
                                                            static_cast<double>(n))));
        for (int m = 0; m < n_mask; ++m) {
          const auto node = static_cast<std::uint32_t>(rng.next_below(n));
          st.toggle_nodes.push_back(node);
          st.toggle_labels.push_back(toggle_bit(gg, wl.gate_trace, s.cycle, node));
          feats.at(node, graph::kToggleOffset) = 0.0f;
          feats.at(node, graph::kMaskToggleFlag) = 1.0f;
        }
        for (int m = 0; m < n_mask; ++m) {
          const auto node = static_cast<std::uint32_t>(rng.next_below(n));
          st.type_nodes.push_back(node);
          st.type_labels.push_back(gg.node_type[node]);
          for (int t = 0; t < liberty::kNumNodeTypes; ++t) {
            feats.at(node, static_cast<std::size_t>(graph::kTypeOffset + t)) = 0.0f;
          }
          feats.at(node, graph::kMaskTypeFlag) = 1.0f;
        }
        enc.forward(graph::view_with_features(gg, feats), &st.cache_masked);

        // Unmasked gate graph (CL anchor).
        graph::fill_cycle_features(gg, wl.gate_trace, s.cycle, feats);
        const auto out_g =
            enc.forward(graph::view_with_features(gg, feats), &st.cache_gate);
        st.emb_gate = out_g.graph_emb;

        // N_g+ positive.
        graph::fill_cycle_features(gp, wl.plus_trace, s.cycle, feats);
        const auto out_p =
            enc.forward(graph::view_with_features(gp, feats), &st.cache_plus);
        st.emb_plus = out_p.graph_emb;

        // N_p positive.
        graph::fill_cycle_features(gq, wl.post_trace, s.cycle, feats);
        const auto out_q =
            enc.forward(graph::view_with_features(gq, feats), &st.cache_post);
        st.emb_post = out_q.graph_emb;

        for (std::size_t j = 0; j < config.dim; ++j) {
          anchors.at(b, j) = st.emb_gate.at(0, j);
          pos_plus.at(b, j) = st.emb_plus.at(0, j);
          pos_post.at(b, j) = st.emb_post.at(0, j);
        }
        size_targets[b] = std::log1p(static_cast<float>(n));
      }

      // ---- Task #1: masked toggle ------------------------------------------
      // Gather masked node embeddings across the batch.
      std::vector<Matrix> d_node_masked(bsz);
      for (std::size_t b = 0; b < bsz; ++b) {
        d_node_masked[b] = Matrix(states[b].n_nodes, config.dim);
      }
      if (tasks.toggle) {
        std::size_t total = 0;
        for (const SampleState& st : states) total += st.toggle_nodes.size();
        Matrix gathered(total, config.dim);
        std::vector<int> labels;
        labels.reserve(total);
        std::size_t row = 0;
        for (const SampleState& st : states) {
          for (std::size_t m = 0; m < st.toggle_nodes.size(); ++m) {
            const float* src = st.cache_masked.node_emb.row(st.toggle_nodes[m]);
            std::copy(src, src + config.dim, gathered.row(row));
            labels.push_back(st.toggle_labels[m]);
            ++row;
          }
        }
        const Matrix logits = toggle_head.forward(gathered);
        const ml::LossGrad lg = ml::softmax_cross_entropy(logits, labels);
        stats.loss_toggle += lg.loss;
        stats.acc_toggle += ml::accuracy(logits, labels);
        const Matrix dg = toggle_head.backward(lg.grad);
        row = 0;
        for (std::size_t b = 0; b < bsz; ++b) {
          for (const std::uint32_t node : states[b].toggle_nodes) {
            const float* src = dg.row(row++);
            float* dst = d_node_masked[b].row(node);
            for (std::size_t j = 0; j < config.dim; ++j) dst[j] += src[j];
          }
        }
      }

      // ---- Task #2: masked node type ---------------------------------------
      if (tasks.node_type) {
        std::size_t total = 0;
        for (const SampleState& st : states) total += st.type_nodes.size();
        Matrix gathered(total, config.dim);
        std::vector<int> labels;
        labels.reserve(total);
        std::size_t row = 0;
        for (const SampleState& st : states) {
          for (std::size_t m = 0; m < st.type_nodes.size(); ++m) {
            const float* src = st.cache_masked.node_emb.row(st.type_nodes[m]);
            std::copy(src, src + config.dim, gathered.row(row));
            labels.push_back(st.type_labels[m]);
            ++row;
          }
        }
        const Matrix logits = type_head.forward(gathered);
        const ml::LossGrad lg = ml::softmax_cross_entropy(logits, labels);
        stats.loss_type += lg.loss;
        stats.acc_type += ml::accuracy(logits, labels);
        const Matrix dg = type_head.backward(lg.grad);
        row = 0;
        for (std::size_t b = 0; b < bsz; ++b) {
          for (const std::uint32_t node : states[b].type_nodes) {
            const float* src = dg.row(row++);
            float* dst = d_node_masked[b].row(node);
            for (std::size_t j = 0; j < config.dim; ++j) dst[j] += src[j];
          }
        }
      }

      // ---- Task #3: sub-module size ----------------------------------------
      std::vector<Matrix> d_graph_masked(bsz);
      if (tasks.size) {
        Matrix graph_embs(bsz, config.dim);
        for (std::size_t b = 0; b < bsz; ++b) {
          const Matrix pooled = ml::mean_rows(states[b].cache_masked.node_emb);
          std::copy(pooled.row(0), pooled.row(0) + config.dim, graph_embs.row(b));
        }
        const Matrix pred = size_head.forward(graph_embs);
        const ml::LossGrad lg = ml::mse(pred, size_targets);
        stats.loss_size += lg.loss;
        const Matrix dg = size_head.backward(lg.grad);
        for (std::size_t b = 0; b < bsz; ++b) {
          d_graph_masked[b] = Matrix(1, config.dim);
          std::copy(dg.row(b), dg.row(b) + config.dim, d_graph_masked[b].row(0));
        }
      }

      // ---- Tasks #4, #5: contrastive ---------------------------------------
      Matrix d_anchor(bsz, config.dim);
      Matrix d_plus, d_post;
      if (tasks.cl_gate) {
        const ml::InfoNceGrad cl = ml::info_nce(anchors, pos_plus, config.temperature);
        stats.loss_cl_gate += cl.loss;
        d_anchor += cl.grad_anchor;
        d_plus = cl.grad_positive;
      }
      if (tasks.cl_cross) {
        const ml::InfoNceGrad cl = ml::info_nce(anchors, pos_post, config.temperature);
        stats.loss_cl_cross += cl.loss;
        stats.acc_cl_cross += cl.accuracy;
        d_anchor += cl.grad_anchor;
        d_post = cl.grad_positive;
      }

      // ---- Backward through the encoder ------------------------------------
      for (std::size_t b = 0; b < bsz; ++b) {
        const SampleState& st = states[b];
        const bool have_node = tasks.toggle || tasks.node_type;
        enc.backward(st.cache_masked,
                     have_node ? d_node_masked[b] : Matrix(),
                     tasks.size ? d_graph_masked[b] : Matrix());
        Matrix da(1, config.dim);
        std::copy(d_anchor.row(b), d_anchor.row(b) + config.dim, da.row(0));
        if (tasks.cl_gate || tasks.cl_cross) {
          enc.backward(st.cache_gate, Matrix(), da);
        }
        if (tasks.cl_gate) {
          Matrix dp(1, config.dim);
          std::copy(d_plus.row(b), d_plus.row(b) + config.dim, dp.row(0));
          enc.backward(st.cache_plus, Matrix(), dp);
        }
        if (tasks.cl_cross) {
          Matrix dq(1, config.dim);
          std::copy(d_post.row(b), d_post.row(b) + config.dim, dq.row(0));
          enc.backward(st.cache_post, Matrix(), dq);
        }
      }
      adam.step();
      ++batches;
    }

    if (batches > 0) {
      const double inv = 1.0 / batches;
      stats.loss_toggle *= inv;
      stats.loss_type *= inv;
      stats.loss_size *= inv;
      stats.loss_cl_gate *= inv;
      stats.loss_cl_cross *= inv;
      stats.acc_toggle *= inv;
      stats.acc_type *= inv;
      stats.acc_cl_cross *= inv;
    }
    result.report.epochs.push_back(stats);
  }
  return result;
}

}  // namespace atlas::core
