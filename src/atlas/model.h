// The assembled ATLAS model: pre-trained encoder + three fine-tuned group
// models, with serialization and the end-user prediction API (paper Eq. 7):
//
//   P_total(cycle) = sum over sub-modules of
//       F_CT(E_g) + F_Comb(E_g, n, I, C) + F_Reg(E_g, n, I, C)
//
// Prediction consumes only the gate-level netlist and a workload trace on
// it — no layout information — and produces per-cycle power per group, per
// sub-module, per component, and for the whole design.
#pragma once

#include <string>

#include "atlas/finetune.h"
#include "atlas/pretrain.h"
#include "util/arena.h"

namespace atlas::core {

/// Per-cycle predicted power for one design under one workload.
struct Prediction {
  int num_cycles = 0;
  std::size_t num_submodules = 0;
  /// Per-cycle design-level group predictions (uW); memory is zero unless
  /// filled by the separate memory model.
  std::vector<power::GroupPower> design;                 // [cycle]
  std::vector<power::GroupPower> submodule;              // [cycle*nsm + sm]

  const power::GroupPower& at(int cycle) const {
    return design.at(static_cast<std::size_t>(cycle));
  }
  const power::GroupPower& at(int cycle, netlist::SubmoduleId sm) const {
    return submodule.at(static_cast<std::size_t>(cycle) * num_submodules +
                        static_cast<std::size_t>(sm));
  }

  /// Roll predictions up to named components (index by component id).
  std::vector<power::GroupPower> component_average(
      const netlist::Netlist& gate) const;
};

/// Everything the GBDT heads consume for one design under one workload:
/// per-sub-module static context plus, per cycle, the encoder's graph
/// embedding and the paper's extra toggle-weighted features. Computing this
/// is the expensive part of prediction (per-cycle encoder forwards); the
/// serve-layer feature cache stores it so repeat queries on the same
/// (design, workload) skip straight to the GBDT heads.
struct DesignEmbeddings {
  struct PerGraph {
    SubmoduleStatic st;
    ml::Matrix emb;                   // num_cycles x encoder dim
    std::vector<CycleExtras> extras;  // [cycle]
  };
  int num_cycles = 0;
  std::vector<PerGraph> graphs;  // aligned with the SubmoduleGraph vector

  std::size_t approx_bytes() const;
};

class AtlasModel {
 public:
  AtlasModel(ml::SgFormer encoder, GroupModels models);

  const ml::SgFormer& encoder() const { return encoder_; }
  const GroupModels& models() const { return models_; }

  /// Predict per-cycle post-layout power from the gate-level netlist and its
  /// workload trace. `graphs` must come from build_submodule_graphs(gate).
  /// Exactly encode() followed by predict_from_embeddings().
  Prediction predict(const netlist::Netlist& gate,
                     const std::vector<graph::SubmoduleGraph>& graphs,
                     const sim::ToggleTrace& gate_trace) const;

  /// Stage 1: run the encoder over every (sub-module, cycle) and collect
  /// the head inputs. Reusable across predictions with the same workload.
  DesignEmbeddings encode(const netlist::Netlist& gate,
                          const std::vector<graph::SubmoduleGraph>& graphs,
                          const sim::ToggleTrace& gate_trace) const;

  /// One design in a fused encode batch (the dispatcher's formed batch,
  /// grouped by model).
  struct EncodeItem {
    const netlist::Netlist* gate = nullptr;
    const std::vector<graph::SubmoduleGraph>* graphs = nullptr;
    const sim::ToggleTrace* trace = nullptr;
    DesignEmbeddings* out = nullptr;  // filled by encode_batch
  };

  /// Stage 1 over a whole batch: packs every (design, sub-module, cycle)
  /// into row blocks and runs the encoder's fused kernels over them — one
  /// GEMM per layer over the concatenated node features instead of one
  /// small forward per cycle. Each graph's normalized adjacency is built
  /// once and shared across its cycles. Scratch (feature rows, activations,
  /// embeddings) is bump-allocated from `arena` and recycled by the caller.
  /// Bit-identical to calling encode() once per item, at any thread count
  /// and any batch composition.
  void encode_batch(const EncodeItem* items, std::size_t n,
                    util::Arena& arena) const;

  /// Stage 2: GBDT heads only. Bit-identical to predict() when `emb` comes
  /// from encode() on the same inputs — pinned by tests; the serve feature
  /// cache depends on it. Head feature rows for all (sub-module, cycle)
  /// pairs are assembled into one block and evaluated with the forests'
  /// batched SoA traversal; `arena` (optional) supplies the scratch.
  Prediction predict_from_embeddings(
      const netlist::Netlist& gate,
      const std::vector<graph::SubmoduleGraph>& graphs,
      const DesignEmbeddings& emb, util::Arena* arena = nullptr) const;

  void save(const std::string& path) const;
  static AtlasModel load(const std::string& path);

 private:
  ml::SgFormer encoder_;
  GroupModels models_;
};

}  // namespace atlas::core
