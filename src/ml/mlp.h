// Linear layers and MLPs with manual backprop.
//
// Used for the temporary pre-training heads the paper attaches to the
// encoder (masked-toggle classifier, masked-node-type classifier, size
// regressor) and discarded after pre-training.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "ml/matrix.h"

namespace atlas::ml {

/// View onto a trainable parameter buffer and its gradient (for Adam).
struct ParamRef {
  float* value = nullptr;
  float* grad = nullptr;
  std::size_t size = 0;
};

class Linear {
 public:
  Linear() = default;
  Linear(std::size_t in, std::size_t out, util::Rng& rng);

  /// y = x W + b; caches x for backward.
  Matrix forward(const Matrix& x);
  /// Accumulates dW/db from the cached input; returns dx.
  Matrix backward(const Matrix& dy);
  /// Forward without caching (inference).
  Matrix infer(const Matrix& x) const;

  void zero_grad();
  void collect_params(std::vector<ParamRef>& out);

  std::size_t in_dim() const { return w_.rows(); }
  std::size_t out_dim() const { return w_.cols(); }

  void save(std::ostream& os) const;
  static Linear load(std::istream& is);

 private:
  Matrix w_, b_;    // weights (in x out), bias (1 x out)
  Matrix gw_, gb_;  // gradients
  Matrix cached_x_;
};

/// MLP: Linear (+ReLU) stacks; last layer linear (logits / regression).
class Mlp {
 public:
  Mlp() = default;
  /// dims = {in, hidden..., out}.
  Mlp(const std::vector<std::size_t>& dims, util::Rng& rng);

  Matrix forward(const Matrix& x);
  Matrix backward(const Matrix& dy);
  Matrix infer(const Matrix& x) const;

  void zero_grad();
  void collect_params(std::vector<ParamRef>& out);

  void save(std::ostream& os) const;
  static Mlp load(std::istream& is);

 private:
  std::vector<Linear> layers_;
  std::vector<std::vector<bool>> relu_masks_;
};

}  // namespace atlas::ml
