#include "ml/losses.h"

#include <cmath>
#include <stdexcept>

namespace atlas::ml {
namespace {

/// Row-wise softmax in place.
void softmax_rows(Matrix& x) {
  for (std::size_t i = 0; i < x.rows(); ++i) {
    float* r = x.row(i);
    float mx = r[0];
    for (std::size_t j = 1; j < x.cols(); ++j) mx = std::max(mx, r[j]);
    float sum = 0.0f;
    for (std::size_t j = 0; j < x.cols(); ++j) {
      r[j] = std::exp(r[j] - mx);
      sum += r[j];
    }
    const float inv = 1.0f / sum;
    for (std::size_t j = 0; j < x.cols(); ++j) r[j] *= inv;
  }
}

/// dx for x-hat = x / (|x| + eps) given d(x-hat); norms from forward pass.
Matrix l2_normalize_backward(const Matrix& normalized, const Matrix& d_normalized,
                             const std::vector<float>& norms) {
  Matrix dx(normalized.rows(), normalized.cols());
  for (std::size_t i = 0; i < normalized.rows(); ++i) {
    const float* xh = normalized.row(i);
    const float* dxh = d_normalized.row(i);
    float dot = 0.0f;
    for (std::size_t j = 0; j < normalized.cols(); ++j) dot += xh[j] * dxh[j];
    const float inv_n = 1.0f / norms[i];
    float* out = dx.row(i);
    for (std::size_t j = 0; j < normalized.cols(); ++j) {
      out[j] = (dxh[j] - xh[j] * dot) * inv_n;
    }
  }
  return dx;
}

}  // namespace

LossGrad softmax_cross_entropy(const Matrix& logits,
                               const std::vector<int>& labels) {
  if (labels.size() != logits.rows()) {
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
  }
  if (logits.rows() == 0) throw std::invalid_argument("softmax_cross_entropy: empty");
  Matrix probs = logits;
  softmax_rows(probs);
  LossGrad out;
  out.grad = probs;
  const float inv_n = 1.0f / static_cast<float>(logits.rows());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const int y = labels[i];
    if (y < 0 || static_cast<std::size_t>(y) >= logits.cols()) {
      throw std::invalid_argument("softmax_cross_entropy: label out of range");
    }
    out.loss -= std::log(std::max(probs.at(i, static_cast<std::size_t>(y)), 1e-12f));
    out.grad.at(i, static_cast<std::size_t>(y)) -= 1.0f;
  }
  out.loss /= static_cast<double>(logits.rows());
  out.grad *= inv_n;
  return out;
}

double accuracy(const Matrix& logits, const std::vector<int>& labels) {
  if (labels.size() != logits.rows() || logits.rows() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const float* r = logits.row(i);
    std::size_t best = 0;
    for (std::size_t j = 1; j < logits.cols(); ++j) {
      if (r[j] > r[best]) best = j;
    }
    correct += static_cast<int>(best) == labels[i];
  }
  return static_cast<double>(correct) / static_cast<double>(logits.rows());
}

LossGrad mse(const Matrix& pred, const std::vector<float>& target) {
  if (pred.cols() != 1 || pred.rows() != target.size()) {
    throw std::invalid_argument("mse: shape mismatch");
  }
  if (pred.rows() == 0) throw std::invalid_argument("mse: empty");
  LossGrad out;
  out.grad = Matrix(pred.rows(), 1);
  const float inv_n = 1.0f / static_cast<float>(pred.rows());
  for (std::size_t i = 0; i < pred.rows(); ++i) {
    const float diff = pred.at(i, 0) - target[i];
    out.loss += 0.5 * static_cast<double>(diff) * diff;
    out.grad.at(i, 0) = diff * inv_n;
  }
  out.loss *= inv_n;
  return out;
}

InfoNceGrad info_nce(const Matrix& anchors, const Matrix& positives,
                     float temperature) {
  if (anchors.rows() != positives.rows() || anchors.cols() != positives.cols()) {
    throw std::invalid_argument("info_nce: shape mismatch");
  }
  const std::size_t n = anchors.rows();
  if (n < 2) throw std::invalid_argument("info_nce: need at least 2 rows");
  if (temperature <= 0.0f) throw std::invalid_argument("info_nce: temperature <= 0");

  Matrix a = anchors;
  Matrix p = positives;
  const std::vector<float> a_norms = l2_normalize_rows(a);
  const std::vector<float> p_norms = l2_normalize_rows(p);

  // Similarity matrix S[i][j] = a_i . p_j / tau; correct class is j == i.
  Matrix s = matmul_nt(a, p);
  s *= 1.0f / temperature;

  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) labels[i] = static_cast<int>(i);
  InfoNceGrad out;
  out.accuracy = accuracy(s, labels);
  const LossGrad ce = softmax_cross_entropy(s, labels);
  out.loss = ce.loss;

  // dS -> d(a-hat), d(p-hat) -> through normalization.
  Matrix ds = ce.grad;
  ds *= 1.0f / temperature;
  const Matrix da_hat = matmul(ds, p);      // [N, d]
  const Matrix dp_hat = matmul_tn(ds, a);   // [N, d]
  out.grad_anchor = l2_normalize_backward(a, da_hat, a_norms);
  out.grad_positive = l2_normalize_backward(p, dp_hat, p_norms);
  return out;
}

}  // namespace atlas::ml
