// SGFormer-style graph transformer encoder (paper Sec. IV, ref [13]).
//
// Architecture, following SGFormer's "simple global attention" design:
//
//   H   = ReLU(X W_in + b_in)                      input projection
//   att = 0.5 * (V + Q (K^T V) / N)                single-layer global linear
//         with Q = H Wq, K = H Wk, V = H Wv        attention, O(N d^2)
//   gcn = A_norm H Wg                              one-hop graph convolution,
//         A_norm = D^-1/2 (A + A^T + I) D^-1/2     symmetric-normalized
//   E   = ReLU(alpha*att + (1-alpha)*gcn) W_out + b_out   node embeddings
//   g   = mean over nodes of E                     graph embedding
//
// No positional encodings, no preprocessing — matching the properties the
// paper cites for choosing SGFormer. Backprop is hand-derived; gradients
// accumulate in the encoder so multiple graphs can contribute to one step
// (required by the contrastive tasks, whose loss couples whole batches of
// graphs).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "ml/mlp.h"
#include "util/arena.h"

namespace atlas::ml {

/// Read-only view of one graph: node features plus directed edges.
struct GraphView {
  std::size_t num_nodes = 0;
  std::size_t feat_dim = 0;
  const float* features = nullptr;  // row-major num_nodes x feat_dim
  const std::vector<std::pair<std::uint32_t, std::uint32_t>>* edges = nullptr;
};

class SgFormer {
 public:
  struct Config {
    std::size_t in_dim = 0;
    std::size_t dim = 32;     // hidden = embedding dimension
    float alpha = 0.5f;       // attention/GCN mixing weight
    std::uint64_t seed = 1;
  };

  explicit SgFormer(const Config& config);

  /// Forward intermediates for one graph, kept for backward.
  struct Cache {
    Matrix x, h, q, k, v, ktv, att, ah, combined, node_emb;
    std::vector<bool> mask_in, mask_mid;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> norm_edges;  // incl. loops
    std::vector<float> norm_weights;
    std::size_t n = 0;
  };

  struct Output {
    Matrix node_emb;   // N x dim
    Matrix graph_emb;  // 1 x dim
  };

  /// Encode one graph. Pass a Cache to enable a later backward() call.
  Output forward(const GraphView& g, Cache* cache = nullptr) const;

  /// Symmetric-normalized adjacency of one graph in edge-list form, exactly
  /// as forward() constructs it internally. Cycle- and feature-invariant, so
  /// one instance is reused across every cycle of a graph and across every
  /// request touching that graph.
  struct NormAdjacency {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;  // incl. loops
    std::vector<float> weights;
  };
  static NormAdjacency build_norm_adjacency(
      std::size_t num_nodes,
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>* edges);

  /// One (graph, cycle) instance inside a fused batch: a row block of
  /// `num_nodes` feature rows plus the graph's prebuilt adjacency.
  struct Segment {
    std::size_t num_nodes = 0;
    const NormAdjacency* adj = nullptr;
  };

  /// Inference-only fused forward over a batch of segments whose features
  /// are packed row-major into `features` (sum of num_nodes x in_dim).
  /// Writes segment s's 1 x dim graph embedding to graph_emb + s * dim.
  ///
  /// The per-node projections run as one GEMM per layer over the whole
  /// concatenated row block (parallelized over row chunks); attention
  /// normalization, adjacency propagation, and the mean pool stay
  /// per-segment. Every output row of the shared GEMM kernel depends only
  /// on its own input row, and all per-segment reductions (K^T V, A_norm
  /// propagation, mean pool) run in the same serial order as forward(), so
  /// the result is bit-identical to calling forward() once per segment —
  /// at any thread count and any batch composition. Scratch comes from
  /// `arena` (no heap traffic when the arena is recycled).
  void forward_fused(const Segment* segs, std::size_t num_segs,
                     const float* features, float* graph_emb,
                     util::Arena& arena) const;

  /// Accumulate parameter gradients for one graph. `d_node` may be empty
  /// (zero); `d_graph` may be empty (zero).
  void backward(const Cache& cache, const Matrix& d_node, const Matrix& d_graph);

  void zero_grad();
  void collect_params(std::vector<ParamRef>& out);

  std::size_t dim() const { return config_.dim; }
  std::size_t in_dim() const { return config_.in_dim; }

  void save(std::ostream& os) const;
  static SgFormer load(std::istream& is);

 private:
  void propagate(const Cache& cache, const Matrix& x, Matrix& y) const;

  Config config_;
  Matrix w_in_, b_in_, wq_, wk_, wv_, wg_, w_out_, b_out_;
  Matrix gw_in_, gb_in_, gwq_, gwk_, gwv_, gwg_, gw_out_, gb_out_;
};

}  // namespace atlas::ml
