// SGFormer-style graph transformer encoder (paper Sec. IV, ref [13]).
//
// Architecture, following SGFormer's "simple global attention" design:
//
//   H   = ReLU(X W_in + b_in)                      input projection
//   att = 0.5 * (V + Q (K^T V) / N)                single-layer global linear
//         with Q = H Wq, K = H Wk, V = H Wv        attention, O(N d^2)
//   gcn = A_norm H Wg                              one-hop graph convolution,
//         A_norm = D^-1/2 (A + A^T + I) D^-1/2     symmetric-normalized
//   E   = ReLU(alpha*att + (1-alpha)*gcn) W_out + b_out   node embeddings
//   g   = mean over nodes of E                     graph embedding
//
// No positional encodings, no preprocessing — matching the properties the
// paper cites for choosing SGFormer. Backprop is hand-derived; gradients
// accumulate in the encoder so multiple graphs can contribute to one step
// (required by the contrastive tasks, whose loss couples whole batches of
// graphs).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "ml/mlp.h"

namespace atlas::ml {

/// Read-only view of one graph: node features plus directed edges.
struct GraphView {
  std::size_t num_nodes = 0;
  std::size_t feat_dim = 0;
  const float* features = nullptr;  // row-major num_nodes x feat_dim
  const std::vector<std::pair<std::uint32_t, std::uint32_t>>* edges = nullptr;
};

class SgFormer {
 public:
  struct Config {
    std::size_t in_dim = 0;
    std::size_t dim = 32;     // hidden = embedding dimension
    float alpha = 0.5f;       // attention/GCN mixing weight
    std::uint64_t seed = 1;
  };

  explicit SgFormer(const Config& config);

  /// Forward intermediates for one graph, kept for backward.
  struct Cache {
    Matrix x, h, q, k, v, ktv, att, ah, combined, node_emb;
    std::vector<bool> mask_in, mask_mid;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> norm_edges;  // incl. loops
    std::vector<float> norm_weights;
    std::size_t n = 0;
  };

  struct Output {
    Matrix node_emb;   // N x dim
    Matrix graph_emb;  // 1 x dim
  };

  /// Encode one graph. Pass a Cache to enable a later backward() call.
  Output forward(const GraphView& g, Cache* cache = nullptr) const;

  /// Accumulate parameter gradients for one graph. `d_node` may be empty
  /// (zero); `d_graph` may be empty (zero).
  void backward(const Cache& cache, const Matrix& d_node, const Matrix& d_graph);

  void zero_grad();
  void collect_params(std::vector<ParamRef>& out);

  std::size_t dim() const { return config_.dim; }
  std::size_t in_dim() const { return config_.in_dim; }

  void save(std::ostream& os) const;
  static SgFormer load(std::istream& is);

 private:
  void propagate(const Cache& cache, const Matrix& x, Matrix& y) const;

  Config config_;
  Matrix w_in_, b_in_, wq_, wk_, wv_, wg_, w_out_, b_out_;
  Matrix gw_in_, gb_in_, gwq_, gwk_, gwv_, gwg_, gw_out_, gb_out_;
};

}  // namespace atlas::ml
