#include "ml/adam.h"

#include <cmath>

namespace atlas::ml {

Adam::Adam(std::vector<ParamRef> params, const AdamConfig& config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const ParamRef& p : params_) {
    m_.emplace_back(p.size, 0.0f);
    v_.emplace_back(p.size, 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    const ParamRef& p = params_[k];
    std::vector<float>& m = m_[k];
    std::vector<float>& v = v_[k];
    for (std::size_t i = 0; i < p.size; ++i) {
      float g = p.grad[i] + config_.weight_decay * p.value[i];
      m[i] = config_.beta1 * m[i] + (1.0f - config_.beta1) * g;
      v[i] = config_.beta2 * v[i] + (1.0f - config_.beta2) * g * g;
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      p.value[i] -= config_.lr * mhat / (std::sqrt(vhat) + config_.eps);
    }
  }
}

}  // namespace atlas::ml
