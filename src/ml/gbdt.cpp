#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/parallel.h"
#include "util/serialize.h"

namespace atlas::ml {

namespace {
// Grain for row-indexed parallel loops. Rows are cheap (a handful of tree
// traversals or binary searches), so chunks are sized in the hundreds.
constexpr std::size_t kRowsPerChunk = 512;
}  // namespace

double GbdtRegressor::Tree::predict(const float* features) const {
  int idx = 0;
  while (nodes[static_cast<std::size_t>(idx)].feature >= 0) {
    const Node& n = nodes[static_cast<std::size_t>(idx)];
    idx = features[n.feature] <= n.threshold ? n.left : n.right;
  }
  return nodes[static_cast<std::size_t>(idx)].value;
}

GbdtRegressor::GbdtRegressor(const GbdtConfig& config) : config_(config) {
  if (config_.n_trees < 0 || config_.max_depth < 1 || config_.n_bins < 2 ||
      config_.learning_rate <= 0.0) {
    throw std::invalid_argument("GbdtRegressor: invalid config");
  }
}

void GbdtRegressor::fit(const Matrix& x, const std::vector<double>& y) {
  obs::ObsSpan span("ml", "gbdt_fit");
  const std::size_t n = x.rows();
  const std::size_t f = x.cols();
  if (n == 0 || f == 0) throw std::invalid_argument("Gbdt::fit: empty input");
  if (y.size() != n) throw std::invalid_argument("Gbdt::fit: target size mismatch");
  trees_.clear();
  num_features_ = f;

  base_ = 0.0;
  for (const double v : y) base_ += v;
  base_ /= static_cast<double>(n);

  // ---- Quantile binning -----------------------------------------------------
  const int n_bins = config_.n_bins;
  // cuts[feat] has n_bins-1 ascending thresholds; bin = upper_bound(cuts, v).
  std::vector<std::vector<float>> cuts(f);
  {
    std::vector<float> vals(n);
    for (std::size_t j = 0; j < f; ++j) {
      for (std::size_t i = 0; i < n; ++i) vals[i] = x.at(i, j);
      std::sort(vals.begin(), vals.end());
      auto& c = cuts[j];
      for (int b = 1; b < n_bins; ++b) {
        const std::size_t idx =
            std::min(n - 1, static_cast<std::size_t>(
                                static_cast<double>(b) * static_cast<double>(n) /
                                n_bins));
        const float cut = vals[idx];
        if (c.empty() || cut > c.back()) c.push_back(cut);
      }
    }
  }
  // Rows bin independently — parallel, bit-identical to the serial loop.
  std::vector<std::uint8_t> binned(n * f);
  util::parallel_for(n, kRowsPerChunk, [&](std::size_t i) {
    for (std::size_t j = 0; j < f; ++j) {
      const auto& c = cuts[j];
      const float v = x.at(i, j);
      const auto it = std::upper_bound(c.begin(), c.end(), v);
      binned[i * f + j] = static_cast<std::uint8_t>(it - c.begin());
    }
  });

  std::vector<double> residual(y);
  for (std::size_t i = 0; i < n; ++i) residual[i] -= base_;

  util::Rng rng(config_.seed);
  std::vector<int> node_of(n);
  const int max_nodes_per_level = 1 << config_.max_depth;
  std::vector<double> sum(static_cast<std::size_t>(max_nodes_per_level));
  std::vector<int> cnt(static_cast<std::size_t>(max_nodes_per_level));

  for (int t = 0; t < config_.n_trees; ++t) {
    // Row subsample.
    std::vector<std::uint8_t> in_bag(n, 1);
    if (config_.subsample < 1.0) {
      for (std::size_t i = 0; i < n; ++i) {
        in_bag[i] = rng.next_bool(config_.subsample) ? 1 : 0;
      }
    }

    Tree tree;
    tree.nodes.push_back(Node{});
    // frontier: node ids at the current level.
    std::vector<int> frontier = {0};
    std::fill(node_of.begin(), node_of.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (!in_bag[i]) node_of[i] = -1;
    }

    for (int depth = 0; depth < config_.max_depth && !frontier.empty(); ++depth) {
      // Histograms: [frontier_slot][feature][bin] -> (sum, count).
      const std::size_t slots = frontier.size();
      std::vector<int> slot_of_node(tree.nodes.size(), -1);
      for (std::size_t s = 0; s < slots; ++s) {
        slot_of_node[static_cast<std::size_t>(frontier[s])] = static_cast<int>(s);
      }
      std::vector<double> hist_sum(slots * f * static_cast<std::size_t>(n_bins), 0.0);
      std::vector<int> hist_cnt(slots * f * static_cast<std::size_t>(n_bins), 0);
      for (std::size_t i = 0; i < n; ++i) {
        const int node = node_of[i];
        if (node < 0) continue;
        const int s = slot_of_node[static_cast<std::size_t>(node)];
        if (s < 0) continue;
        const double r = residual[i];
        const std::uint8_t* row_bins = &binned[i * f];
        const std::size_t base_idx =
            static_cast<std::size_t>(s) * f * static_cast<std::size_t>(n_bins);
        for (std::size_t j = 0; j < f; ++j) {
          const std::size_t idx =
              base_idx + j * static_cast<std::size_t>(n_bins) + row_bins[j];
          hist_sum[idx] += r;
          ++hist_cnt[idx];
        }
      }

      // Pick the best split per frontier node.
      struct Split {
        int feature = -1;
        int bin = -1;  // go left if bin <= this
        double gain = 0.0;
      };
      std::vector<Split> best(slots);
      for (std::size_t s = 0; s < slots; ++s) {
        // Node totals from feature 0 histogram.
        double total_sum = 0.0;
        int total_cnt = 0;
        const std::size_t base_idx =
            s * f * static_cast<std::size_t>(n_bins);
        for (int b = 0; b < n_bins; ++b) {
          total_sum += hist_sum[base_idx + static_cast<std::size_t>(b)];
          total_cnt += hist_cnt[base_idx + static_cast<std::size_t>(b)];
        }
        if (total_cnt < 2 * config_.min_samples_leaf) continue;
        const double parent_score = total_sum * total_sum / total_cnt;
        for (std::size_t j = 0; j < f; ++j) {
          double left_sum = 0.0;
          int left_cnt = 0;
          const std::size_t fbase = base_idx + j * static_cast<std::size_t>(n_bins);
          for (int b = 0; b + 1 < n_bins; ++b) {
            left_sum += hist_sum[fbase + static_cast<std::size_t>(b)];
            left_cnt += hist_cnt[fbase + static_cast<std::size_t>(b)];
            const int right_cnt = total_cnt - left_cnt;
            if (left_cnt < config_.min_samples_leaf ||
                right_cnt < config_.min_samples_leaf) {
              continue;
            }
            const double right_sum = total_sum - left_sum;
            const double gain = left_sum * left_sum / left_cnt +
                                right_sum * right_sum / right_cnt - parent_score;
            if (gain > best[s].gain + 1e-12) {
              best[s] = Split{static_cast<int>(j), b, gain};
            }
          }
        }
      }

      // Materialize splits.
      std::vector<int> next_frontier;
      std::vector<std::uint8_t> has_split(tree.nodes.size(), 0);
      for (std::size_t s = 0; s < slots; ++s) {
        if (best[s].feature < 0) continue;
        const int node_id = frontier[s];
        const int left = static_cast<int>(tree.nodes.size());
        const int right = left + 1;
        {
          // Scoped: the push_backs below may reallocate tree.nodes and
          // would dangle this reference (caught by TSan as use-after-free).
          Node& node = tree.nodes[static_cast<std::size_t>(node_id)];
          node.feature = best[s].feature;
          const auto& c = cuts[static_cast<std::size_t>(best[s].feature)];
          // Bin b covers values <= c[b] (last bin unbounded).
          node.threshold = best[s].bin < static_cast<int>(c.size())
                               ? c[static_cast<std::size_t>(best[s].bin)]
                               : std::numeric_limits<float>::max();
          node.left = left;
          node.right = right;
        }
        tree.nodes.push_back(Node{});
        tree.nodes.push_back(Node{});
        next_frontier.push_back(left);
        next_frontier.push_back(right);
        has_split.resize(tree.nodes.size(), 0);
        has_split[static_cast<std::size_t>(node_id)] = 1;
      }
      if (next_frontier.empty()) break;
      // Reassign samples to children (row-independent -> parallel).
      util::parallel_for(n, kRowsPerChunk, [&](std::size_t i) {
        const int node = node_of[i];
        if (node < 0 || static_cast<std::size_t>(node) >= has_split.size() ||
            !has_split[static_cast<std::size_t>(node)]) {
          return;
        }
        const Node& nd = tree.nodes[static_cast<std::size_t>(node)];
        const float v = x.at(i, static_cast<std::size_t>(nd.feature));
        node_of[i] = v <= nd.threshold ? nd.left : nd.right;
      });
      frontier = std::move(next_frontier);
    }

    // Leaf values: mean residual of in-bag samples, with shrinkage.
    const std::size_t n_nodes = tree.nodes.size();
    sum.assign(n_nodes, 0.0);
    cnt.assign(n_nodes, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const int node = node_of[i];
      if (node < 0) continue;
      sum[static_cast<std::size_t>(node)] += residual[i];
      ++cnt[static_cast<std::size_t>(node)];
    }
    for (std::size_t k = 0; k < n_nodes; ++k) {
      Node& nd = tree.nodes[k];
      if (nd.feature >= 0) continue;
      nd.value = cnt[k] > 0
                     ? config_.learning_rate * sum[k] / static_cast<double>(cnt[k])
                     : 0.0;
    }

    // Update residuals with this tree (all rows, including out-of-bag).
    // Trees themselves are inherently sequential — boosting fits each tree
    // to the previous trees' residuals — so within-tree row loops are the
    // parallel axis here. Histogram accumulation above stays serial: its
    // float adds would re-associate under chunking, and we keep training
    // numerics bit-identical to the original serial implementation.
    util::parallel_for(n, kRowsPerChunk, [&](std::size_t i) {
      residual[i] -= tree.predict(x.row(i));
    });
    trees_.push_back(std::move(tree));
  }
  rebuild_forest();
  static obs::Counter* trees_trained =
      &obs::Registry::global().counter("atlas_ml_gbdt_trees_trained_total");
  trees_trained->inc(static_cast<std::uint64_t>(trees_.size()));
}

void GbdtRegressor::rebuild_forest() {
  forest_ = Forest{};
  std::size_t total = 0;
  for (const Tree& t : trees_) total += t.nodes.size();
  forest_.feature.reserve(total);
  forest_.threshold.reserve(total);
  forest_.left.reserve(total);
  forest_.right.reserve(total);
  forest_.value.reserve(total);
  forest_.roots.reserve(trees_.size());
  forest_.depth.reserve(trees_.size());
  for (const Tree& t : trees_) {
    const std::int32_t base = static_cast<std::int32_t>(forest_.feature.size());
    forest_.roots.push_back(base);
    for (std::size_t i = 0; i < t.nodes.size(); ++i) {
      const Node& n = t.nodes[i];
      const std::int32_t self = base + static_cast<std::int32_t>(i);
      if (n.feature < 0) {
        forest_.feature.push_back(0);
        forest_.threshold.push_back(std::numeric_limits<float>::infinity());
        forest_.left.push_back(self);
        forest_.right.push_back(self);
      } else {
        forest_.feature.push_back(n.feature);
        forest_.threshold.push_back(n.threshold);
        forest_.left.push_back(base + n.left);
        forest_.right.push_back(base + n.right);
      }
      forest_.value.push_back(n.value);
    }
    // Steps needed so every row reaches its leaf: the tree's max node depth.
    std::vector<std::int32_t> node_depth(t.nodes.size(), 0);
    std::int32_t max_depth = 0;
    for (std::size_t i = 0; i < t.nodes.size(); ++i) {
      const Node& n = t.nodes[i];
      if (n.feature < 0) continue;
      // Children are always appended after their parent, so one forward
      // pass assigns depths top-down.
      node_depth[static_cast<std::size_t>(n.left)] = node_depth[i] + 1;
      node_depth[static_cast<std::size_t>(n.right)] = node_depth[i] + 1;
      if (node_depth[i] + 1 > max_depth) max_depth = node_depth[i] + 1;
    }
    forest_.depth.push_back(max_depth);
  }
}

double GbdtRegressor::predict_row(const float* features) const {
  double out = base_;
  for (const Tree& t : trees_) out += t.predict(features);
  return out;
}

void GbdtRegressor::predict_rows(const float* rows, std::size_t n,
                                 std::size_t stride, double* out) const {
  for (std::size_t i = 0; i < n; ++i) out[i] = base_;
  constexpr std::size_t kBlock = 64;
  std::int32_t idx[kBlock];
  for (std::size_t b0 = 0; b0 < n; b0 += kBlock) {
    const std::size_t bn = std::min(kBlock, n - b0);
    const float* block = rows + b0 * stride;
    for (std::size_t t = 0; t < forest_.roots.size(); ++t) {
      const std::int32_t root = forest_.roots[t];
      for (std::size_t i = 0; i < bn; ++i) idx[i] = root;
      for (std::int32_t lvl = 0; lvl < forest_.depth[t]; ++lvl) {
        for (std::size_t i = 0; i < bn; ++i) {
          const std::int32_t id = idx[i];
          const float fv =
              block[i * stride + static_cast<std::size_t>(forest_.feature[id])];
          idx[i] = fv <= forest_.threshold[id] ? forest_.left[id]
                                               : forest_.right[id];
        }
      }
      for (std::size_t i = 0; i < bn; ++i) {
        out[b0 + i] += forest_.value[idx[i]];
      }
    }
  }
}

std::vector<double> GbdtRegressor::predict(const Matrix& x) const {
  if (x.cols() != num_features_ && !trees_.empty()) {
    throw std::invalid_argument("Gbdt::predict: feature count mismatch");
  }
  std::vector<double> out(x.rows());
  static obs::Counter* rows =
      &obs::Registry::global().counter("atlas_ml_gbdt_predict_rows_total");
  rows->inc(static_cast<std::uint64_t>(x.rows()));
  util::parallel_for_chunks(x.rows(), kRowsPerChunk,
                            [&](std::size_t r0, std::size_t r1) {
                              predict_rows(x.row(r0), r1 - r0, x.cols(),
                                           out.data() + r0);
                            });
  return out;
}

double GbdtRegressor::training_rmse(const Matrix& x,
                                    const std::vector<double>& y) const {
  const std::vector<double> p = predict(x);
  double sq = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    sq += (p[i] - y[i]) * (p[i] - y[i]);
  }
  return std::sqrt(sq / static_cast<double>(y.size()));
}

void GbdtRegressor::save(std::ostream& os) const {
  util::write_header(os, "GBDT", 1);
  util::write_u64(os, num_features_);
  util::write_f64(os, base_);
  util::write_u64(os, trees_.size());
  for (const Tree& t : trees_) {
    util::write_u64(os, t.nodes.size());
    for (const Node& n : t.nodes) {
      util::write_i64(os, n.feature);
      util::write_f32(os, n.threshold);
      util::write_i64(os, n.left);
      util::write_i64(os, n.right);
      util::write_f64(os, n.value);
    }
  }
}

GbdtRegressor GbdtRegressor::load(std::istream& is) {
  util::read_header(is, "GBDT");
  GbdtRegressor m;
  m.num_features_ = util::read_u64(is);
  m.base_ = util::read_f64(is);
  const std::size_t n_trees = util::read_u64(is);
  m.trees_.resize(n_trees);
  for (Tree& t : m.trees_) {
    t.nodes.resize(util::read_u64(is));
    for (Node& n : t.nodes) {
      n.feature = static_cast<int>(util::read_i64(is));
      n.threshold = util::read_f32(is);
      n.left = static_cast<int>(util::read_i64(is));
      n.right = static_cast<int>(util::read_i64(is));
      n.value = util::read_f64(is);
    }
  }
  m.rebuild_forest();
  return m;
}

}  // namespace atlas::ml
