#include "ml/sgformer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"
#include "util/parallel.h"
#include "util/serialize.h"

namespace atlas::ml {

namespace {
// forward/backward are called once per graph per cycle — far too hot for
// spans, so they only bump relaxed counters through cached references.
obs::Counter& forward_counter() {
  static obs::Counter* c =
      &obs::Registry::global().counter("atlas_ml_sgformer_forward_total");
  return *c;
}
obs::Counter& backward_counter() {
  static obs::Counter* c =
      &obs::Registry::global().counter("atlas_ml_sgformer_backward_total");
  return *c;
}
}  // namespace

SgFormer::SgFormer(const Config& config) : config_(config) {
  if (config_.in_dim == 0 || config_.dim == 0) {
    throw std::invalid_argument("SgFormer: dims must be positive");
  }
  util::Rng rng(config_.seed);
  const std::size_t d = config_.dim;
  w_in_ = Matrix::xavier(config_.in_dim, d, rng);
  b_in_ = Matrix(1, d);
  wq_ = Matrix::xavier(d, d, rng);
  wk_ = Matrix::xavier(d, d, rng);
  wv_ = Matrix::xavier(d, d, rng);
  wg_ = Matrix::xavier(d, d, rng);
  w_out_ = Matrix::xavier(d, d, rng);
  b_out_ = Matrix(1, d);
  gw_in_ = Matrix(config_.in_dim, d);
  gb_in_ = Matrix(1, d);
  gwq_ = Matrix(d, d);
  gwk_ = Matrix(d, d);
  gwv_ = Matrix(d, d);
  gwg_ = Matrix(d, d);
  gw_out_ = Matrix(d, d);
  gb_out_ = Matrix(1, d);
}

void SgFormer::propagate(const Cache& cache, const Matrix& x, Matrix& y) const {
  // y = A_norm x, A_norm symmetric -> also used for the transposed product.
  y = Matrix(x.rows(), x.cols());
  for (std::size_t e = 0; e < cache.norm_edges.size(); ++e) {
    const auto [i, j] = cache.norm_edges[e];
    const float w = cache.norm_weights[e];
    const float* src = x.row(j);
    float* dst = y.row(i);
    for (std::size_t c = 0; c < x.cols(); ++c) dst[c] += w * src[c];
  }
}

SgFormer::Output SgFormer::forward(const GraphView& g, Cache* cache) const {
  forward_counter().inc();
  if (g.num_nodes == 0) throw std::invalid_argument("SgFormer: empty graph");
  if (g.feat_dim != config_.in_dim) {
    throw std::invalid_argument("SgFormer: feature dim mismatch");
  }
  Cache local;
  Cache& c = cache ? *cache : local;
  c.n = g.num_nodes;

  // Features into a matrix.
  c.x = Matrix(g.num_nodes, g.feat_dim);
  std::copy(g.features, g.features + g.num_nodes * g.feat_dim, c.x.data());

  // Normalized adjacency (undirected + self loops).
  {
    NormAdjacency adj = build_norm_adjacency(g.num_nodes, g.edges);
    c.norm_edges = std::move(adj.edges);
    c.norm_weights = std::move(adj.weights);
  }

  // Input projection.
  c.h = matmul(c.x, w_in_);
  add_row_bias(c.h, b_in_);
  c.mask_in = relu_inplace(c.h);

  // Global linear attention.
  c.q = matmul(c.h, wq_);
  c.k = matmul(c.h, wk_);
  c.v = matmul(c.h, wv_);
  c.ktv = matmul_tn(c.k, c.v);  // d x d
  c.att = matmul(c.q, c.ktv);
  const float inv_n = 1.0f / static_cast<float>(c.n);
  c.att *= 0.5f * inv_n;
  // att = 0.5*(V + Q K^T V / N): add the skip half.
  {
    Matrix half_v = c.v;
    half_v *= 0.5f;
    c.att += half_v;
  }

  // Graph convolution branch.
  Matrix prop;
  propagate(c, c.h, prop);
  c.ah = std::move(prop);
  Matrix gcn = matmul(c.ah, wg_);

  // Combine, nonlinearity, output projection.
  c.combined = gcn;
  c.combined *= (1.0f - config_.alpha);
  {
    Matrix att_scaled = c.att;
    att_scaled *= config_.alpha;
    c.combined += att_scaled;
  }
  c.mask_mid = relu_inplace(c.combined);
  c.node_emb = matmul(c.combined, w_out_);
  add_row_bias(c.node_emb, b_out_);

  Output out;
  out.node_emb = c.node_emb;
  out.graph_emb = mean_rows(c.node_emb);
  return out;
}

SgFormer::NormAdjacency SgFormer::build_norm_adjacency(
    std::size_t num_nodes,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>* edges) {
  NormAdjacency adj;
  std::vector<float> degree(num_nodes, 1.0f);  // self loop
  if (edges != nullptr) {
    for (const auto& [s, d] : *edges) {
      degree[s] += 1.0f;
      degree[d] += 1.0f;
    }
  }
  const std::size_t n_edges = edges ? edges->size() : 0;
  adj.edges.reserve(2 * n_edges + num_nodes);
  adj.weights.reserve(2 * n_edges + num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    adj.edges.emplace_back(i, i);
    adj.weights.push_back(1.0f / degree[i]);
  }
  if (edges != nullptr) {
    for (const auto& [s, d] : *edges) {
      const float w = 1.0f / std::sqrt(degree[s] * degree[d]);
      adj.edges.emplace_back(d, s);
      adj.weights.push_back(w);
      adj.edges.emplace_back(s, d);
      adj.weights.push_back(w);
    }
  }
  return adj;
}

void SgFormer::forward_fused(const Segment* segs, std::size_t num_segs,
                             const float* features, float* graph_emb,
                             util::Arena& arena) const {
  if (num_segs == 0) return;
  const std::size_t d = config_.dim;
  const std::size_t in_dim = config_.in_dim;
  std::size_t* off = arena.alloc_array<std::size_t>(num_segs + 1);
  off[0] = 0;
  for (std::size_t s = 0; s < num_segs; ++s) {
    if (segs[s].num_nodes == 0 || segs[s].adj == nullptr) {
      throw std::invalid_argument("forward_fused: empty segment");
    }
    off[s + 1] = off[s] + segs[s].num_nodes;
  }
  const std::size_t total = off[num_segs];
  forward_counter().inc(num_segs);

  // All scratch up front, on the calling thread (Arena is single-threaded;
  // worker lambdas below only touch disjoint row ranges of these buffers).
  float* h = arena.alloc_array<float>(total * d);
  float* q = arena.alloc_array<float>(total * d);
  float* k = arena.alloc_array<float>(total * d);
  float* v = arena.alloc_array<float>(total * d);
  float* att = arena.alloc_array<float>(total * d);
  float* ah = arena.alloc_array<float>(total * d);
  float* gcn = arena.alloc_array<float>(total * d);
  float* emb = arena.alloc_array<float>(total * d);
  float* ktv = arena.alloc_array<float>(num_segs * d * d);
  std::fill(ktv, ktv + num_segs * d * d, 0.0f);

  // GEMM accumulators must start at zero, matching matmul()'s zero-init.
  const std::size_t grain = 64;  // rows per chunk for whole-batch GEMMs
  util::parallel_for_chunks(total, grain, [&](std::size_t r0, std::size_t r1) {
    const std::size_t n = (r1 - r0) * d;
    for (float* buf : {h, q, k, v, att, ah, gcn, emb}) {
      std::fill(buf + r0 * d, buf + r0 * d + n, 0.0f);
    }
    // H = ReLU(X W_in + b_in), one fused row-chunk pass.
    raw::gemm_rows(features, in_dim, w_in_.data(), d, h, r0, r1);
    raw::add_row_bias_rows(h, d, b_in_.data(), r0, r1);
    raw::relu(h + r0 * d, n);
  });

  // Q/K/V projections over the whole concatenated batch.
  util::parallel_for_chunks(total, grain, [&](std::size_t r0, std::size_t r1) {
    raw::gemm_rows(h, d, wq_.data(), d, q, r0, r1);
    raw::gemm_rows(h, d, wk_.data(), d, k, r0, r1);
    raw::gemm_rows(h, d, wv_.data(), d, v, r0, r1);
  });

  // Per-segment reductions: K^T V, attention normalization + skip, and
  // A_norm propagation — each in forward()'s exact serial order.
  util::parallel_for(num_segs, 1, [&](std::size_t s) {
    const std::size_t r0 = off[s];
    const std::size_t n = segs[s].num_nodes;
    float* kt = ktv + s * d * d;
    raw::gemm_tn(k + r0 * d, d, v + r0 * d, d, n, kt);
    raw::gemm_rows(q, d, kt, d, att, r0, r0 + n);
    const float inv_n = 1.0f / static_cast<float>(n);
    const float att_scale = 0.5f * inv_n;
    float* ar = att + r0 * d;
    const float* vr = v + r0 * d;
    for (std::size_t i = 0; i < n * d; ++i) ar[i] *= att_scale;
    for (std::size_t i = 0; i < n * d; ++i) {
      const float hv = vr[i] * 0.5f;
      ar[i] += hv;
    }
    const NormAdjacency& adj = *segs[s].adj;
    const float* x = h + r0 * d;
    float* y = ah + r0 * d;
    for (std::size_t e = 0; e < adj.edges.size(); ++e) {
      const auto [i, j] = adj.edges[e];
      const float w = adj.weights[e];
      const float* src = x + j * d;
      float* dst = y + i * d;
      for (std::size_t c = 0; c < d; ++c) dst[c] += w * src[c];
    }
  });

  // GCN projection, branch combine, ReLU, output projection — all row-local,
  // so one fused row-chunk pass over the whole batch.
  const float alpha = config_.alpha;
  const float beta = 1.0f - config_.alpha;
  util::parallel_for_chunks(total, grain, [&](std::size_t r0, std::size_t r1) {
    raw::gemm_rows(ah, d, wg_.data(), d, gcn, r0, r1);
    for (std::size_t i = r0 * d; i < r1 * d; ++i) {
      float cv = gcn[i] * beta;
      const float as = att[i] * alpha;
      cv += as;
      gcn[i] = cv;
    }
    raw::relu(gcn + r0 * d, (r1 - r0) * d);
    raw::gemm_rows(gcn, d, w_out_.data(), d, emb, r0, r1);
    raw::add_row_bias_rows(emb, d, b_out_.data(), r0, r1);
  });

  // Per-segment mean pool into the caller's output rows.
  util::parallel_for(num_segs, 1, [&](std::size_t s) {
    raw::mean_rows(emb + off[s] * d, segs[s].num_nodes, d, graph_emb + s * d);
  });
}

void SgFormer::backward(const Cache& c, const Matrix& d_node,
                        const Matrix& d_graph) {
  backward_counter().inc();
  const std::size_t n = c.n;
  const std::size_t d = config_.dim;
  Matrix de(n, d);
  if (!d_node.empty()) {
    if (d_node.rows() != n || d_node.cols() != d) {
      throw std::invalid_argument("SgFormer::backward: d_node shape mismatch");
    }
    de += d_node;
  }
  if (!d_graph.empty()) {
    if (d_graph.rows() != 1 || d_graph.cols() != d) {
      throw std::invalid_argument("SgFormer::backward: d_graph shape mismatch");
    }
    const float inv_n = 1.0f / static_cast<float>(n);
    for (std::size_t i = 0; i < n; ++i) {
      float* r = de.row(i);
      for (std::size_t j = 0; j < d; ++j) r[j] += d_graph.at(0, j) * inv_n;
    }
  }

  // Output projection.
  gw_out_ += matmul_tn(c.combined, de);
  for (std::size_t i = 0; i < n; ++i) {
    const float* r = de.row(i);
    for (std::size_t j = 0; j < d; ++j) gb_out_.at(0, j) += r[j];
  }
  Matrix dc = matmul_nt(de, w_out_);
  relu_backward_inplace(dc, c.mask_mid);

  // Split into attention / gcn branches.
  Matrix datt = dc;
  datt *= config_.alpha;
  Matrix dgcn = dc;
  dgcn *= (1.0f - config_.alpha);

  Matrix dh(n, d);  // accumulates gradient w.r.t. post-ReLU H

  // GCN branch: gcn = (A H) Wg.
  gwg_ += matmul_tn(c.ah, dgcn);
  {
    const Matrix dah = matmul_nt(dgcn, wg_);
    Matrix dprop;
    propagate(c, dah, dprop);  // A symmetric: A^T = A
    dh += dprop;
  }

  // Attention branch: att = 0.5 V + 0.5/N * Q (K^T V).
  const float half_inv_n = 0.5f / static_cast<float>(n);
  {
    // dV from the skip term.
    Matrix dv = datt;
    dv *= 0.5f;
    // dQ = s * datt (K^T V)^T ; dKtV = s * Q^T datt.
    Matrix dq = matmul_nt(datt, c.ktv);
    dq *= half_inv_n;
    Matrix dktv = matmul_tn(c.q, datt);
    dktv *= half_inv_n;
    // KtV = K^T V: dK = V dKtV^T ; dV += K dKtV.
    {
      // dK = V * dktv^T  -> use matmul_nt(V, dktv).
      const Matrix dk = matmul_nt(c.v, dktv);
      gwk_ += matmul_tn(c.h, dk);
      dh += matmul_nt(dk, wk_);
    }
    {
      Matrix dv2 = matmul(c.k, dktv);
      dv += dv2;
    }
    gwq_ += matmul_tn(c.h, dq);
    dh += matmul_nt(dq, wq_);
    gwv_ += matmul_tn(c.h, dv);
    dh += matmul_nt(dv, wv_);
  }

  // Input projection.
  relu_backward_inplace(dh, c.mask_in);
  gw_in_ += matmul_tn(c.x, dh);
  for (std::size_t i = 0; i < n; ++i) {
    const float* r = dh.row(i);
    for (std::size_t j = 0; j < d; ++j) gb_in_.at(0, j) += r[j];
  }
}

void SgFormer::zero_grad() {
  gw_in_.fill(0.0f);
  gb_in_.fill(0.0f);
  gwq_.fill(0.0f);
  gwk_.fill(0.0f);
  gwv_.fill(0.0f);
  gwg_.fill(0.0f);
  gw_out_.fill(0.0f);
  gb_out_.fill(0.0f);
}

void SgFormer::collect_params(std::vector<ParamRef>& out) {
  auto add = [&](Matrix& w, Matrix& g) {
    out.push_back(ParamRef{w.data(), g.data(), w.size()});
  };
  add(w_in_, gw_in_);
  add(b_in_, gb_in_);
  add(wq_, gwq_);
  add(wk_, gwk_);
  add(wv_, gwv_);
  add(wg_, gwg_);
  add(w_out_, gw_out_);
  add(b_out_, gb_out_);
}

void SgFormer::save(std::ostream& os) const {
  util::write_header(os, "SGFM", 1);
  util::write_u64(os, config_.in_dim);
  util::write_u64(os, config_.dim);
  util::write_f64(os, config_.alpha);
  util::write_u64(os, config_.seed);
  for (const Matrix* m : {&w_in_, &b_in_, &wq_, &wk_, &wv_, &wg_, &w_out_, &b_out_}) {
    write_matrix(os, *m);
  }
}

SgFormer SgFormer::load(std::istream& is) {
  util::read_header(is, "SGFM");
  Config cfg;
  cfg.in_dim = util::read_u64(is);
  cfg.dim = util::read_u64(is);
  cfg.alpha = static_cast<float>(util::read_f64(is));
  cfg.seed = util::read_u64(is);
  SgFormer m(cfg);
  for (Matrix* w : {&m.w_in_, &m.b_in_, &m.wq_, &m.wk_, &m.wv_, &m.wg_,
                    &m.w_out_, &m.b_out_}) {
    *w = read_matrix(is);
  }
  return m;
}

}  // namespace atlas::ml
