#include "ml/sgformer.h"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"
#include "util/serialize.h"

namespace atlas::ml {

namespace {
// forward/backward are called once per graph per cycle — far too hot for
// spans, so they only bump relaxed counters through cached references.
obs::Counter& forward_counter() {
  static obs::Counter* c =
      &obs::Registry::global().counter("atlas_ml_sgformer_forward_total");
  return *c;
}
obs::Counter& backward_counter() {
  static obs::Counter* c =
      &obs::Registry::global().counter("atlas_ml_sgformer_backward_total");
  return *c;
}
}  // namespace

SgFormer::SgFormer(const Config& config) : config_(config) {
  if (config_.in_dim == 0 || config_.dim == 0) {
    throw std::invalid_argument("SgFormer: dims must be positive");
  }
  util::Rng rng(config_.seed);
  const std::size_t d = config_.dim;
  w_in_ = Matrix::xavier(config_.in_dim, d, rng);
  b_in_ = Matrix(1, d);
  wq_ = Matrix::xavier(d, d, rng);
  wk_ = Matrix::xavier(d, d, rng);
  wv_ = Matrix::xavier(d, d, rng);
  wg_ = Matrix::xavier(d, d, rng);
  w_out_ = Matrix::xavier(d, d, rng);
  b_out_ = Matrix(1, d);
  gw_in_ = Matrix(config_.in_dim, d);
  gb_in_ = Matrix(1, d);
  gwq_ = Matrix(d, d);
  gwk_ = Matrix(d, d);
  gwv_ = Matrix(d, d);
  gwg_ = Matrix(d, d);
  gw_out_ = Matrix(d, d);
  gb_out_ = Matrix(1, d);
}

void SgFormer::propagate(const Cache& cache, const Matrix& x, Matrix& y) const {
  // y = A_norm x, A_norm symmetric -> also used for the transposed product.
  y = Matrix(x.rows(), x.cols());
  for (std::size_t e = 0; e < cache.norm_edges.size(); ++e) {
    const auto [i, j] = cache.norm_edges[e];
    const float w = cache.norm_weights[e];
    const float* src = x.row(j);
    float* dst = y.row(i);
    for (std::size_t c = 0; c < x.cols(); ++c) dst[c] += w * src[c];
  }
}

SgFormer::Output SgFormer::forward(const GraphView& g, Cache* cache) const {
  forward_counter().inc();
  if (g.num_nodes == 0) throw std::invalid_argument("SgFormer: empty graph");
  if (g.feat_dim != config_.in_dim) {
    throw std::invalid_argument("SgFormer: feature dim mismatch");
  }
  Cache local;
  Cache& c = cache ? *cache : local;
  c.n = g.num_nodes;

  // Features into a matrix.
  c.x = Matrix(g.num_nodes, g.feat_dim);
  std::copy(g.features, g.features + g.num_nodes * g.feat_dim, c.x.data());

  // Normalized adjacency (undirected + self loops).
  std::vector<float> degree(g.num_nodes, 1.0f);  // self loop
  if (g.edges != nullptr) {
    for (const auto& [s, d] : *g.edges) {
      degree[s] += 1.0f;
      degree[d] += 1.0f;
    }
  }
  c.norm_edges.clear();
  c.norm_weights.clear();
  const std::size_t n_edges = g.edges ? g.edges->size() : 0;
  c.norm_edges.reserve(2 * n_edges + g.num_nodes);
  c.norm_weights.reserve(2 * n_edges + g.num_nodes);
  for (std::uint32_t i = 0; i < g.num_nodes; ++i) {
    c.norm_edges.emplace_back(i, i);
    c.norm_weights.push_back(1.0f / degree[i]);
  }
  if (g.edges != nullptr) {
    for (const auto& [s, d] : *g.edges) {
      const float w = 1.0f / std::sqrt(degree[s] * degree[d]);
      c.norm_edges.emplace_back(d, s);
      c.norm_weights.push_back(w);
      c.norm_edges.emplace_back(s, d);
      c.norm_weights.push_back(w);
    }
  }

  // Input projection.
  c.h = matmul(c.x, w_in_);
  add_row_bias(c.h, b_in_);
  c.mask_in = relu_inplace(c.h);

  // Global linear attention.
  c.q = matmul(c.h, wq_);
  c.k = matmul(c.h, wk_);
  c.v = matmul(c.h, wv_);
  c.ktv = matmul_tn(c.k, c.v);  // d x d
  c.att = matmul(c.q, c.ktv);
  const float inv_n = 1.0f / static_cast<float>(c.n);
  c.att *= 0.5f * inv_n;
  // att = 0.5*(V + Q K^T V / N): add the skip half.
  {
    Matrix half_v = c.v;
    half_v *= 0.5f;
    c.att += half_v;
  }

  // Graph convolution branch.
  Matrix prop;
  propagate(c, c.h, prop);
  c.ah = std::move(prop);
  Matrix gcn = matmul(c.ah, wg_);

  // Combine, nonlinearity, output projection.
  c.combined = gcn;
  c.combined *= (1.0f - config_.alpha);
  {
    Matrix att_scaled = c.att;
    att_scaled *= config_.alpha;
    c.combined += att_scaled;
  }
  c.mask_mid = relu_inplace(c.combined);
  c.node_emb = matmul(c.combined, w_out_);
  add_row_bias(c.node_emb, b_out_);

  Output out;
  out.node_emb = c.node_emb;
  out.graph_emb = mean_rows(c.node_emb);
  return out;
}

void SgFormer::backward(const Cache& c, const Matrix& d_node,
                        const Matrix& d_graph) {
  backward_counter().inc();
  const std::size_t n = c.n;
  const std::size_t d = config_.dim;
  Matrix de(n, d);
  if (!d_node.empty()) {
    if (d_node.rows() != n || d_node.cols() != d) {
      throw std::invalid_argument("SgFormer::backward: d_node shape mismatch");
    }
    de += d_node;
  }
  if (!d_graph.empty()) {
    if (d_graph.rows() != 1 || d_graph.cols() != d) {
      throw std::invalid_argument("SgFormer::backward: d_graph shape mismatch");
    }
    const float inv_n = 1.0f / static_cast<float>(n);
    for (std::size_t i = 0; i < n; ++i) {
      float* r = de.row(i);
      for (std::size_t j = 0; j < d; ++j) r[j] += d_graph.at(0, j) * inv_n;
    }
  }

  // Output projection.
  gw_out_ += matmul_tn(c.combined, de);
  for (std::size_t i = 0; i < n; ++i) {
    const float* r = de.row(i);
    for (std::size_t j = 0; j < d; ++j) gb_out_.at(0, j) += r[j];
  }
  Matrix dc = matmul_nt(de, w_out_);
  relu_backward_inplace(dc, c.mask_mid);

  // Split into attention / gcn branches.
  Matrix datt = dc;
  datt *= config_.alpha;
  Matrix dgcn = dc;
  dgcn *= (1.0f - config_.alpha);

  Matrix dh(n, d);  // accumulates gradient w.r.t. post-ReLU H

  // GCN branch: gcn = (A H) Wg.
  gwg_ += matmul_tn(c.ah, dgcn);
  {
    const Matrix dah = matmul_nt(dgcn, wg_);
    Matrix dprop;
    propagate(c, dah, dprop);  // A symmetric: A^T = A
    dh += dprop;
  }

  // Attention branch: att = 0.5 V + 0.5/N * Q (K^T V).
  const float half_inv_n = 0.5f / static_cast<float>(n);
  {
    // dV from the skip term.
    Matrix dv = datt;
    dv *= 0.5f;
    // dQ = s * datt (K^T V)^T ; dKtV = s * Q^T datt.
    Matrix dq = matmul_nt(datt, c.ktv);
    dq *= half_inv_n;
    Matrix dktv = matmul_tn(c.q, datt);
    dktv *= half_inv_n;
    // KtV = K^T V: dK = V dKtV^T ; dV += K dKtV.
    {
      // dK = V * dktv^T  -> use matmul_nt(V, dktv).
      const Matrix dk = matmul_nt(c.v, dktv);
      gwk_ += matmul_tn(c.h, dk);
      dh += matmul_nt(dk, wk_);
    }
    {
      Matrix dv2 = matmul(c.k, dktv);
      dv += dv2;
    }
    gwq_ += matmul_tn(c.h, dq);
    dh += matmul_nt(dq, wq_);
    gwv_ += matmul_tn(c.h, dv);
    dh += matmul_nt(dv, wv_);
  }

  // Input projection.
  relu_backward_inplace(dh, c.mask_in);
  gw_in_ += matmul_tn(c.x, dh);
  for (std::size_t i = 0; i < n; ++i) {
    const float* r = dh.row(i);
    for (std::size_t j = 0; j < d; ++j) gb_in_.at(0, j) += r[j];
  }
}

void SgFormer::zero_grad() {
  gw_in_.fill(0.0f);
  gb_in_.fill(0.0f);
  gwq_.fill(0.0f);
  gwk_.fill(0.0f);
  gwv_.fill(0.0f);
  gwg_.fill(0.0f);
  gw_out_.fill(0.0f);
  gb_out_.fill(0.0f);
}

void SgFormer::collect_params(std::vector<ParamRef>& out) {
  auto add = [&](Matrix& w, Matrix& g) {
    out.push_back(ParamRef{w.data(), g.data(), w.size()});
  };
  add(w_in_, gw_in_);
  add(b_in_, gb_in_);
  add(wq_, gwq_);
  add(wk_, gwk_);
  add(wv_, gwv_);
  add(wg_, gwg_);
  add(w_out_, gw_out_);
  add(b_out_, gb_out_);
}

void SgFormer::save(std::ostream& os) const {
  util::write_header(os, "SGFM", 1);
  util::write_u64(os, config_.in_dim);
  util::write_u64(os, config_.dim);
  util::write_f64(os, config_.alpha);
  util::write_u64(os, config_.seed);
  for (const Matrix* m : {&w_in_, &b_in_, &wq_, &wk_, &wv_, &wg_, &w_out_, &b_out_}) {
    write_matrix(os, *m);
  }
}

SgFormer SgFormer::load(std::istream& is) {
  util::read_header(is, "SGFM");
  Config cfg;
  cfg.in_dim = util::read_u64(is);
  cfg.dim = util::read_u64(is);
  cfg.alpha = static_cast<float>(util::read_f64(is));
  cfg.seed = util::read_u64(is);
  SgFormer m(cfg);
  for (Matrix* w : {&m.w_in_, &m.b_in_, &m.wq_, &m.wk_, &m.wv_, &m.wg_,
                    &m.w_out_, &m.b_out_}) {
    *w = read_matrix(is);
  }
  return m;
}

}  // namespace atlas::ml
