#include "ml/matrix.h"

#include <cmath>
#include <stdexcept>

#include "util/parallel.h"
#include "util/serialize.h"

namespace atlas::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols, float init)
    : rows_(rows), cols_(cols), data_(rows * cols, init) {}

Matrix Matrix::randn(std::size_t rows, std::size_t cols, util::Rng& rng,
                     float stddev) {
  Matrix m(rows, cols);
  for (float& v : m.data_) {
    v = static_cast<float>(rng.next_gaussian()) * stddev;
  }
  return m;
}

Matrix Matrix::xavier(std::size_t fan_in, std::size_t fan_out, util::Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in + fan_out));
  return randn(fan_in, fan_out, rng, stddev);
}

void Matrix::fill(float v) {
  for (float& x : data_) x = v;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  if (rows_ != o.rows_ || cols_ != o.cols_) {
    throw std::invalid_argument("Matrix+=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(float s) {
  for (float& x : data_) x *= s;
  return *this;
}

namespace raw {

void gemm_rows(const float* a, std::size_t a_cols, const float* b,
               std::size_t b_cols, float* c, std::size_t r0, std::size_t r1) {
  for (std::size_t i = r0; i < r1; ++i) {
    const float* ar = a + i * a_cols;
    float* cr = c + i * b_cols;
    for (std::size_t k = 0; k < a_cols; ++k) {
      const float av = ar[k];
      if (av == 0.0f) continue;
      const float* br = b + k * b_cols;
      for (std::size_t j = 0; j < b_cols; ++j) cr[j] += av * br[j];
    }
  }
}

void gemm_tn(const float* a, std::size_t a_cols, const float* b,
             std::size_t b_cols, std::size_t n, float* c) {
  for (std::size_t k = 0; k < n; ++k) {
    const float* ar = a + k * a_cols;
    const float* br = b + k * b_cols;
    for (std::size_t i = 0; i < a_cols; ++i) {
      const float av = ar[i];
      if (av == 0.0f) continue;
      float* cr = c + i * b_cols;
      for (std::size_t j = 0; j < b_cols; ++j) cr[j] += av * br[j];
    }
  }
}

void add_row_bias_rows(float* x, std::size_t cols, const float* bias,
                       std::size_t r0, std::size_t r1) {
  for (std::size_t i = r0; i < r1; ++i) {
    float* r = x + i * cols;
    for (std::size_t j = 0; j < cols; ++j) r[j] += bias[j];
  }
}

void relu(float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!(x[i] > 0.0f)) x[i] = 0.0f;
  }
}

void mean_rows(const float* x, std::size_t rows, std::size_t cols, float* out) {
  for (std::size_t j = 0; j < cols; ++j) out[j] = 0.0f;
  if (rows == 0) return;
  for (std::size_t i = 0; i < rows; ++i) {
    const float* r = x + i * cols;
    for (std::size_t j = 0; j < cols; ++j) out[j] += r[j];
  }
  const float inv = 1.0f / static_cast<float>(rows);
  for (std::size_t j = 0; j < cols; ++j) out[j] *= inv;
}

}  // namespace raw

Matrix matmul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("matmul: shape mismatch");
  Matrix c(a.rows(), b.cols());
  raw::gemm_rows(a.data(), a.cols(), b.data(), b.cols(), c.data(), 0, a.rows());
  return c;
}

Matrix matmul_parallel(const Matrix& a, const Matrix& b, std::size_t grain) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("matmul_parallel: shape mismatch");
  }
  Matrix c(a.rows(), b.cols());
  util::parallel_for_chunks(a.rows(), grain, [&](std::size_t r0, std::size_t r1) {
    raw::gemm_rows(a.data(), a.cols(), b.data(), b.cols(), c.data(), r0, r1);
  });
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) throw std::invalid_argument("matmul_tn: shape mismatch");
  Matrix c(a.cols(), b.cols());
  raw::gemm_tn(a.data(), a.cols(), b.data(), b.cols(), a.rows(), c.data());
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols()) throw std::invalid_argument("matmul_nt: shape mismatch");
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* ar = a.row(i);
    float* cr = c.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const float* br = b.row(j);
      float dot = 0.0f;
      for (std::size_t k = 0; k < a.cols(); ++k) dot += ar[k] * br[k];
      cr[j] = dot;
    }
  }
  return c;
}

void add_row_bias(Matrix& x, const Matrix& bias) {
  if (bias.rows() != 1 || bias.cols() != x.cols()) {
    throw std::invalid_argument("add_row_bias: shape mismatch");
  }
  for (std::size_t i = 0; i < x.rows(); ++i) {
    float* r = x.row(i);
    const float* b = bias.row(0);
    for (std::size_t j = 0; j < x.cols(); ++j) r[j] += b[j];
  }
}

std::vector<bool> relu_inplace(Matrix& x) {
  std::vector<bool> mask(x.size());
  float* d = x.data();
  for (std::size_t i = 0; i < x.size(); ++i) {
    const bool on = d[i] > 0.0f;
    mask[i] = on;
    if (!on) d[i] = 0.0f;
  }
  return mask;
}

void relu_backward_inplace(Matrix& grad, const std::vector<bool>& mask) {
  if (mask.size() != grad.size()) {
    throw std::invalid_argument("relu_backward: mask size mismatch");
  }
  float* d = grad.data();
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (!mask[i]) d[i] = 0.0f;
  }
}

Matrix mean_rows(const Matrix& x) {
  Matrix m(1, x.cols());
  if (x.rows() == 0) return m;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const float* r = x.row(i);
    for (std::size_t j = 0; j < x.cols(); ++j) m.at(0, j) += r[j];
  }
  const float inv = 1.0f / static_cast<float>(x.rows());
  for (std::size_t j = 0; j < x.cols(); ++j) m.at(0, j) *= inv;
  return m;
}

std::vector<float> l2_normalize_rows(Matrix& x, float eps) {
  std::vector<float> norms(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    float* r = x.row(i);
    float sq = 0.0f;
    for (std::size_t j = 0; j < x.cols(); ++j) sq += r[j] * r[j];
    const float n = std::sqrt(sq) + eps;
    norms[i] = n;
    for (std::size_t j = 0; j < x.cols(); ++j) r[j] /= n;
  }
  return norms;
}

void write_matrix(std::ostream& os, const Matrix& m) {
  util::write_u64(os, m.rows());
  util::write_u64(os, m.cols());
  util::write_f32_span(os, m.data(), m.size());
}

Matrix read_matrix(std::istream& is) {
  const std::size_t rows = util::read_u64(is);
  const std::size_t cols = util::read_u64(is);
  Matrix m(rows, cols);
  util::read_f32_span(is, m.data(), m.size());
  return m;
}

}  // namespace atlas::ml
