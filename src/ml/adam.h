// Adam optimizer over flat parameter buffers (paper: Adam, lr 1e-4).
#pragma once

#include <vector>

#include "ml/mlp.h"

namespace atlas::ml {

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

class Adam {
 public:
  /// Binds to the given parameter views; the views must stay valid (no
  /// reallocation of the underlying buffers) for the optimizer's lifetime.
  Adam(std::vector<ParamRef> params, const AdamConfig& config = {});

  /// Apply one update from the accumulated gradients (does not zero them).
  void step();

  int steps_taken() const { return t_; }

 private:
  std::vector<ParamRef> params_;
  AdamConfig config_;
  std::vector<std::vector<float>> m_, v_;
  int t_ = 0;
};

}  // namespace atlas::ml
