// Loss functions with analytic gradients.
//
// Covers the paper's pre-training objectives: cross-entropy for the masked
// recovery tasks (#1, #2), MSE for size recognition (#3), and InfoNCE for
// the two contrastive tasks (#4, #5).
#pragma once

#include <vector>

#include "ml/matrix.h"

namespace atlas::ml {

struct LossGrad {
  double loss = 0.0;
  Matrix grad;  // d loss / d input (same shape as the input)
};

/// Softmax cross-entropy over rows of `logits` [N, C] against integer labels.
LossGrad softmax_cross_entropy(const Matrix& logits,
                               const std::vector<int>& labels);

/// Row-wise classification accuracy (argmax vs labels).
double accuracy(const Matrix& logits, const std::vector<int>& labels);

/// Mean squared error between predictions [N, 1] and targets.
LossGrad mse(const Matrix& pred, const std::vector<float>& target);

/// InfoNCE with in-batch negatives (paper Eq. 4/5): anchors [N, d] and
/// positives [N, d] are L2-normalized internally; row i's positive is
/// positives[i], its negatives are all other rows. Returns gradients for
/// both inputs (grad = anchors grad; grad_positive = positives grad).
struct InfoNceGrad {
  double loss = 0.0;
  Matrix grad_anchor;
  Matrix grad_positive;
  double accuracy = 0.0;  // fraction of rows whose own positive scores highest
};
InfoNceGrad info_nce(const Matrix& anchors, const Matrix& positives,
                     float temperature = 0.2f);

}  // namespace atlas::ml
