// Dense row-major float matrix and the small op set the ML stack needs.
//
// Substitutes for the paper's PyTorch tensor substrate at the scale this
// repo trains (graphs of 10^2..10^4 nodes, hidden dims of 16..128).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "util/rng.h"

namespace atlas::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float init = 0.0f);

  /// Gaussian init with the given std deviation.
  static Matrix randn(std::size_t rows, std::size_t cols, util::Rng& rng,
                      float stddev);
  /// Xavier/Glorot-scaled init for a (fan_in x fan_out) weight.
  static Matrix xavier(std::size_t fan_in, std::size_t fan_out, util::Rng& rng);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void fill(float v);

  Matrix& operator+=(const Matrix& o);
  Matrix& operator*=(float s);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// C = A * B. Dimension mismatches throw std::invalid_argument.
Matrix matmul(const Matrix& a, const Matrix& b);
/// C = A^T * B.
Matrix matmul_tn(const Matrix& a, const Matrix& b);
/// C = A * B^T.
Matrix matmul_nt(const Matrix& a, const Matrix& b);

/// y = x with each row offset by bias (bias is 1 x cols).
void add_row_bias(Matrix& x, const Matrix& bias);

/// ReLU forward (in place) returning a mask usable for backward.
std::vector<bool> relu_inplace(Matrix& x);
/// Zero grad entries where the forward activation was clipped.
void relu_backward_inplace(Matrix& grad, const std::vector<bool>& mask);

/// Mean over rows -> 1 x cols.
Matrix mean_rows(const Matrix& x);

/// L2-normalize each row in place; returns the original norms (for backward).
std::vector<float> l2_normalize_rows(Matrix& x, float eps = 1e-8f);

void write_matrix(std::ostream& os, const Matrix& m);
Matrix read_matrix(std::istream& is);

}  // namespace atlas::ml
