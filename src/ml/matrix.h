// Dense row-major float matrix and the small op set the ML stack needs.
//
// Substitutes for the paper's PyTorch tensor substrate at the scale this
// repo trains (graphs of 10^2..10^4 nodes, hidden dims of 16..128).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "util/rng.h"

namespace atlas::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float init = 0.0f);

  /// Gaussian init with the given std deviation.
  static Matrix randn(std::size_t rows, std::size_t cols, util::Rng& rng,
                      float stddev);
  /// Xavier/Glorot-scaled init for a (fan_in x fan_out) weight.
  static Matrix xavier(std::size_t fan_in, std::size_t fan_out, util::Rng& rng);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void fill(float v);

  Matrix& operator+=(const Matrix& o);
  Matrix& operator*=(float s);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

// Raw row-major kernels. These are the single source of truth for the
// arithmetic: the Matrix entry points below and the fused batched encoder
// (sgformer forward_fused) both delegate here, so the request-at-a-time and
// batched paths share identical loop order and rounding by construction.
// Each output row of gemm_rows depends only on the matching input row, which
// is what makes row-chunk parallelism and batch concatenation bit-identical
// to the serial per-request ops.
namespace raw {

/// C rows [r0, r1) = A rows [r0, r1) * B. C rows must be pre-zeroed.
/// A is (? x a_cols) row-major, B is (a_cols x b_cols), C is (? x b_cols).
void gemm_rows(const float* a, std::size_t a_cols, const float* b,
               std::size_t b_cols, float* c, std::size_t r0, std::size_t r1);

/// C (a_cols x b_cols, pre-zeroed) += A^T * B over rows [0, n), k ascending.
void gemm_tn(const float* a, std::size_t a_cols, const float* b,
             std::size_t b_cols, std::size_t n, float* c);

/// Rows [r0, r1) of x (row-major, cols wide) get bias (1 x cols) added.
void add_row_bias_rows(float* x, std::size_t cols, const float* bias,
                       std::size_t r0, std::size_t r1);

/// ReLU over n contiguous floats (no backward mask).
void relu(float* x, std::size_t n);

/// out (1 x cols) = mean over `rows` rows of x: row-order sum, then * 1/rows.
void mean_rows(const float* x, std::size_t rows, std::size_t cols, float* out);

}  // namespace raw

/// C = A * B. Dimension mismatches throw std::invalid_argument.
Matrix matmul(const Matrix& a, const Matrix& b);
/// C = A * B with output rows computed in deterministic parallel chunks;
/// bit-identical to matmul() at any thread count.
Matrix matmul_parallel(const Matrix& a, const Matrix& b,
                       std::size_t grain = 64);
/// C = A^T * B.
Matrix matmul_tn(const Matrix& a, const Matrix& b);
/// C = A * B^T.
Matrix matmul_nt(const Matrix& a, const Matrix& b);

/// y = x with each row offset by bias (bias is 1 x cols).
void add_row_bias(Matrix& x, const Matrix& bias);

/// ReLU forward (in place) returning a mask usable for backward.
std::vector<bool> relu_inplace(Matrix& x);
/// Zero grad entries where the forward activation was clipped.
void relu_backward_inplace(Matrix& grad, const std::vector<bool>& mask);

/// Mean over rows -> 1 x cols.
Matrix mean_rows(const Matrix& x);

/// L2-normalize each row in place; returns the original norms (for backward).
std::vector<float> l2_normalize_rows(Matrix& x, float eps = 1e-8f);

void write_matrix(std::ostream& os, const Matrix& m);
Matrix read_matrix(std::istream& is);

}  // namespace atlas::ml
