#include "ml/mlp.h"

#include <stdexcept>

#include "util/serialize.h"

namespace atlas::ml {

Linear::Linear(std::size_t in, std::size_t out, util::Rng& rng)
    : w_(Matrix::xavier(in, out, rng)), b_(1, out), gw_(in, out), gb_(1, out) {}

Matrix Linear::forward(const Matrix& x) {
  cached_x_ = x;
  Matrix y = matmul(x, w_);
  add_row_bias(y, b_);
  return y;
}

Matrix Linear::infer(const Matrix& x) const {
  Matrix y = matmul(x, w_);
  add_row_bias(y, b_);
  return y;
}

Matrix Linear::backward(const Matrix& dy) {
  if (cached_x_.empty()) throw std::logic_error("Linear::backward before forward");
  gw_ += matmul_tn(cached_x_, dy);
  // db = column sums of dy.
  for (std::size_t i = 0; i < dy.rows(); ++i) {
    const float* r = dy.row(i);
    for (std::size_t j = 0; j < dy.cols(); ++j) gb_.at(0, j) += r[j];
  }
  return matmul_nt(dy, w_);
}

void Linear::zero_grad() {
  gw_.fill(0.0f);
  gb_.fill(0.0f);
}

void Linear::collect_params(std::vector<ParamRef>& out) {
  out.push_back(ParamRef{w_.data(), gw_.data(), w_.size()});
  out.push_back(ParamRef{b_.data(), gb_.data(), b_.size()});
}

void Linear::save(std::ostream& os) const {
  write_matrix(os, w_);
  write_matrix(os, b_);
}

Linear Linear::load(std::istream& is) {
  Linear l;
  l.w_ = read_matrix(is);
  l.b_ = read_matrix(is);
  l.gw_ = Matrix(l.w_.rows(), l.w_.cols());
  l.gb_ = Matrix(1, l.b_.cols());
  return l;
}

Mlp::Mlp(const std::vector<std::size_t>& dims, util::Rng& rng) {
  if (dims.size() < 2) throw std::invalid_argument("Mlp: need at least in/out dims");
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng);
  }
}

Matrix Mlp::forward(const Matrix& x) {
  relu_masks_.clear();
  Matrix h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].forward(h);
    if (i + 1 < layers_.size()) relu_masks_.push_back(relu_inplace(h));
  }
  return h;
}

Matrix Mlp::infer(const Matrix& x) const {
  Matrix h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].infer(h);
    if (i + 1 < layers_.size()) relu_inplace(h);
  }
  return h;
}

Matrix Mlp::backward(const Matrix& dy) {
  Matrix g = dy;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    g = layers_[i].backward(g);
    if (i > 0) relu_backward_inplace(g, relu_masks_[i - 1]);
  }
  return g;
}

void Mlp::zero_grad() {
  for (Linear& l : layers_) l.zero_grad();
}

void Mlp::collect_params(std::vector<ParamRef>& out) {
  for (Linear& l : layers_) l.collect_params(out);
}

void Mlp::save(std::ostream& os) const {
  util::write_u64(os, layers_.size());
  for (const Linear& l : layers_) l.save(os);
}

Mlp Mlp::load(std::istream& is) {
  Mlp m;
  const std::size_t n = util::read_u64(is);
  for (std::size_t i = 0; i < n; ++i) m.layers_.push_back(Linear::load(is));
  return m;
}

}  // namespace atlas::ml
