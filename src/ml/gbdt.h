// Gradient-boosted regression trees (squared loss), histogram-based.
//
// Substitutes for XGBoost in the fine-tuning stage (paper Sec. V/VI: "500
// estimators and a depth of 5, taking only several seconds for training").
// Trees are grown level-wise on quantile-binned features; each tree fits the
// current residuals and contributes shrinkage * leaf_mean to the prediction.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ml/matrix.h"

namespace atlas::ml {

struct GbdtConfig {
  int n_trees = 500;
  int max_depth = 5;
  double learning_rate = 0.08;
  int min_samples_leaf = 4;
  double subsample = 0.8;   // row subsampling per tree
  int n_bins = 32;
  std::uint64_t seed = 7;
};

class GbdtRegressor {
 public:
  explicit GbdtRegressor(const GbdtConfig& config = {});

  /// Fit on features [N, F] and targets y (size N). Throws on shape errors
  /// or empty input. Refitting replaces the previous model.
  void fit(const Matrix& x, const std::vector<double>& y);

  double predict_row(const float* features) const;
  std::vector<double> predict(const Matrix& x) const;

  /// Batched inference over `n` feature rows laid out row-major with
  /// `stride` floats between row starts; writes one double per row to `out`.
  /// Traverses the flattened SoA forest trees-outer / row-block-inner, so
  /// the contiguous feature/threshold/child arrays stream through cache once
  /// per tree while a block of rows advances level-by-level in lockstep (the
  /// inner loop is a branch-free compare/select over the block). Per-row
  /// accumulation order (base + tree 0 + tree 1 + ...) matches predict_row
  /// exactly, so results are bit-identical.
  void predict_rows(const float* rows, std::size_t n, std::size_t stride,
                    double* out) const;

  bool trained() const { return !trees_.empty() || base_ != 0.0; }
  std::size_t num_features() const { return num_features_; }
  std::size_t num_trees() const { return trees_.size(); }

  /// Mean absolute deviation improvement diagnostics.
  double training_rmse(const Matrix& x, const std::vector<double>& y) const;

  void save(std::ostream& os) const;
  static GbdtRegressor load(std::istream& is);

 private:
  struct Node {
    int feature = -1;        // -1: leaf
    float threshold = 0.0f;  // go left if value <= threshold
    int left = -1;
    int right = -1;
    double value = 0.0;      // leaf output (already shrunk)
  };
  struct Tree {
    std::vector<Node> nodes;
    double predict(const float* features) const;
  };

  /// SoA mirror of trees_ for batched traversal (rebuilt by fit/load).
  /// Leaves are rewritten as self-loops (feature 0, threshold +inf,
  /// left = right = self) so a block of rows can take a fixed number of
  /// unconditional compare/select steps per tree: internal-node decisions
  /// are unchanged, and a row already at its leaf just spins in place.
  struct Forest {
    std::vector<std::int32_t> feature;
    std::vector<float> threshold;
    std::vector<std::int32_t> left, right;  // absolute node indices
    std::vector<double> value;
    std::vector<std::int32_t> roots;  // root node index per tree
    std::vector<std::int32_t> depth;  // traversal steps needed per tree
  };
  void rebuild_forest();

  GbdtConfig config_;
  std::size_t num_features_ = 0;
  double base_ = 0.0;  // mean target
  std::vector<Tree> trees_;
  Forest forest_;
};

}  // namespace atlas::ml
