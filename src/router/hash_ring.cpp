#include "router/hash_ring.h"

#include "util/hash.h"

namespace atlas::router {
namespace {

/// splitmix64 finalizer: full-avalanche bit mix. FNV-1a chaining alone
/// leaves the high bits poorly mixed, and ring positions are compared as
/// full 64-bit values — without this, the ~size*vnodes points cluster and
/// arc lengths (= backend load shares) spread 3-4x instead of ~1.3x.
std::uint64_t finalize(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Ring point for (backend, vnode): content hash only, so every process
/// ever built places the same backends at the same points.
std::uint64_t ring_point(const std::string& backend, std::size_t vnode) {
  return finalize(util::hash_mix(util::fnv1a64(backend),
                                 static_cast<std::uint64_t>(vnode)));
}

}  // namespace

HashRing::HashRing(std::size_t vnodes_per_backend)
    : vnodes_(vnodes_per_backend == 0 ? 1 : vnodes_per_backend) {}

void HashRing::add(const std::string& backend) {
  if (!members_.insert(backend).second) return;
  for (std::size_t v = 0; v < vnodes_; ++v) {
    auto [it, inserted] = ring_.emplace(ring_point(backend, v), backend);
    // Point collision: the lexicographically smaller id owns the point
    // regardless of which was added first.
    if (!inserted && backend < it->second) it->second = backend;
  }
}

bool HashRing::remove(const std::string& backend) {
  if (members_.erase(backend) == 0) return false;
  // Rebuild rather than erase-by-owner: a collided point this backend won
  // must fall back to the other member, and membership churn is rare and
  // tiny (|members| * vnodes hashes) next to any request.
  ring_.clear();
  std::set<std::string> members = std::move(members_);
  members_.clear();
  for (const std::string& m : members) add(m);
  return true;
}

bool HashRing::contains(const std::string& backend) const {
  return members_.count(backend) != 0;
}

std::size_t HashRing::size() const { return members_.size(); }

std::string HashRing::lookup(std::uint64_t key) const {
  if (ring_.empty()) return std::string();
  // Keys get the same finalizer as ring points: callers pass whatever
  // 64-bit hash they have (FNV-mixed content hashes included) and still
  // sample arcs uniformly.
  auto it = ring_.lower_bound(finalize(key));
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

std::vector<std::string> HashRing::preference(std::uint64_t key,
                                              std::size_t n) const {
  std::vector<std::string> out;
  if (ring_.empty() || n == 0) return out;
  const std::size_t want = std::min(n, members_.size());
  std::set<std::string> seen;
  auto it = ring_.lower_bound(finalize(key));
  for (std::size_t steps = 0; steps < ring_.size() && out.size() < want;
       ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    if (seen.insert(it->second).second) out.push_back(it->second);
    ++it;
  }
  return out;
}

std::vector<std::string> HashRing::replicas(std::uint64_t key,
                                            std::size_t r) const {
  return preference(key, r);
}

std::vector<std::string> HashRing::backends() const {
  return std::vector<std::string>(members_.begin(), members_.end());
}

}  // namespace atlas::router
