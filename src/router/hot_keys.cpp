#include "router/hot_keys.h"

namespace atlas::router {

HotKeyTracker::HotKeyTracker(std::size_t capacity,
                             std::uint64_t decay_interval)
    : capacity_(capacity < 1 ? 1 : capacity),
      decay_interval_(decay_interval < 1 ? 1 : decay_interval) {}

void HotKeyTracker::record(std::uint64_t key) {
  if (++records_since_decay_ >= decay_interval_) {
    decay();
    records_since_decay_ = 0;
  }
  const auto it = counts_.find(key);
  if (it != counts_.end()) {
    ++it->second;
    return;
  }
  if (counts_.size() < capacity_) {
    counts_.emplace(key, 1);
    return;
  }
  evict_min_and_insert(key);
}

void HotKeyTracker::evict_min_and_insert(std::uint64_t key) {
  // Space-saving eviction: the newcomer inherits min + 1, overestimating
  // its count — so a key that is genuinely hot is promoted at worst early,
  // never suppressed. The victim is deterministic (min count, then min
  // key) so identical histories produce identical tracker states.
  auto victim = counts_.begin();
  for (auto it = counts_.begin(); it != counts_.end(); ++it) {
    if (it->second < victim->second ||
        (it->second == victim->second && it->first < victim->first)) {
      victim = it;
    }
  }
  const std::uint64_t inherited = victim->second + 1;
  counts_.erase(victim);
  counts_.emplace(key, inherited);
}

void HotKeyTracker::decay() {
  for (auto it = counts_.begin(); it != counts_.end();) {
    it->second /= 2;
    if (it->second == 0) {
      it = counts_.erase(it);
    } else {
      ++it;
    }
  }
}

bool HotKeyTracker::is_hot(std::uint64_t key, std::size_t top_k,
                           std::uint64_t min_count) const {
  if (top_k == 0) return false;
  const auto it = counts_.find(key);
  if (it == counts_.end() || it->second < min_count) return false;
  // Rank = keys strictly ahead under (count desc, key asc). Early-exit once
  // top_k keys are ahead; capacity bounds the scan.
  std::size_t ahead = 0;
  for (const auto& [k, c] : counts_) {
    if (k == key) continue;
    if (c > it->second || (c == it->second && k < key)) {
      if (++ahead >= top_k) return false;
    }
  }
  return true;
}

std::uint64_t HotKeyTracker::count(std::uint64_t key) const {
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace atlas::router
