// Backend membership, liveness and placement state for atlas_router.
//
// The pool owns the hash ring plus one status entry per configured backend
// and keeps both current from two signals:
//
//   * a **background prober** that round-trips the rich `health` request
//     (bounded by connect/IO timeouts) on a per-backend schedule —
//     `interval_ms` while healthy, exponential backoff up to
//     `max_backoff_ms` while failing. `fail_threshold` consecutive probe
//     failures take a backend out of the ring; the next successful probe
//     puts it back (re-join is instant, not thresholded — a freshly
//     restarted backend should start taking its arcs again immediately). A
//     backend whose health report says `draining` leaves the ring too but
//     keeps its state distinct from dead, so operators can tell a rolling
//     restart from an outage.
//   * **data-path reports**: a connection thread that hits a transport
//     error forwarding to a backend calls report_failure, which removes it
//     from the ring immediately — in-flight requests fail over to the ring
//     successor without waiting out a probe cycle — and the prober brings
//     it back when it answers again.
//
// The prober also ingests each backend's model list, maintaining the
// model -> Liberty-content-hash map the router mixes into placement keys:
// routing by (netlist hash, library hash) — the backends' own design-cache
// key — means two model names sharing a substrate share one shard's parsed
// designs instead of duplicating them.
//
// All state is guarded by one mutex; probe I/O runs unlocked.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "router/hash_ring.h"
#include "router/hot_keys.h"
#include "serve/protocol.h"

namespace atlas::router {

/// One backend endpoint: TCP ("host:port") or Unix-domain ("unix:<path>").
/// `id` is the canonical spelling used on the ring, in metrics labels and
/// in admin fan-out replies.
struct BackendAddress {
  std::string id;
  std::string host;
  int port = -1;
  std::string unix_path;

  bool is_unix() const { return !unix_path.empty(); }
};

/// Parse "host:port" or "unix:/path/to.sock"; throws std::runtime_error on
/// anything else.
BackendAddress parse_backend(const std::string& spec);

/// Parse a comma-separated backend list, rejecting duplicates.
std::vector<BackendAddress> parse_backend_list(const std::string& csv);

struct ProbeConfig {
  /// Steady-state probe period per healthy backend.
  int interval_ms = 500;
  /// Connect + per-IO bound for one probe round-trip.
  int timeout_ms = 1000;
  /// Consecutive probe failures before a backend leaves the ring (data-path
  /// failures bypass this and evict immediately).
  int fail_threshold = 2;
  /// Probe backoff ceiling while a backend stays dead.
  int max_backoff_ms = 5000;
  /// Virtual nodes per backend on the ring.
  std::size_t vnodes = 64;
};

/// Load-aware routing policy knobs (hot-key replication + overload
/// avoidance). Replication widens placement for the hottest keys only:
/// cold keys keep single-owner consistent hashing, so fleet-wide cache
/// duplication stays bounded by `hot_top_k * (replicas - 1)` designs.
struct RoutingConfig {
  /// Replication factor for hot placement keys: the first `replicas`
  /// distinct shards of the key's preference chain are all eligible
  /// targets. 1 disables replication (pure consistent hashing).
  std::size_t replicas = 1;
  /// At most this many keys are treated as hot at once.
  std::size_t hot_top_k = 8;
  /// Decayed request count a key must accumulate before promotion —
  /// guards against replicating (and thus cache-duplicating) keys that
  /// merely lead a cold tracker.
  std::uint64_t hot_min_requests = 16;
  /// A fresh wait-dominated load report at/above this depth marks the
  /// shard overloaded: eligible replicas rank behind every non-overloaded
  /// one until a newer report clears it.
  std::uint64_t overload_load = 8;
};

enum class BackendState { kUp, kDown, kDraining };
const char* backend_state_name(BackendState state);

/// Point-in-time per-backend view (for stats text and tests).
struct BackendStatus {
  BackendAddress address;
  BackendState state = BackendState::kDown;
  /// Last successful probe's report (zeroed until one succeeds).
  serve::HealthResponse health;
  std::uint64_t probes_ok = 0;
  std::uint64_t probes_failed = 0;
  int consecutive_failures = 0;
  bool in_ring = false;
  /// Freshest known queued + in-flight depth (piggybacked on data-path
  /// replies, refreshed by probes) and whether it is current — false from
  /// the first failed probe or data-path error until the next signal.
  std::uint64_t load = 0;
  bool load_fresh = false;
  /// Last load report was wait-dominated past RoutingConfig::overload_load
  /// (or the shard answered kOverloaded).
  bool overloaded = false;
};

/// One replica-eligible shard as the routing policy sees it.
struct RouteCandidate {
  std::string id;
  /// Position in the key's preference chain (0 = owner).
  std::size_t chain_pos = 0;
  std::uint64_t load = 0;
  bool load_fresh = false;
  bool overloaded = false;
};

/// Deterministic selection order among eligible replicas: non-overloaded
/// before overloaded, fresh depth before stale, lower fresh depth first,
/// then chain position. The final tie-break is what keeps cache warmth
/// stable — equal-load replicas always resolve to the earliest chain
/// position (the owner), so an idle fleet routes exactly like single-owner
/// consistent hashing instead of oscillating between replicas. Pure
/// (sorts its argument, touches no pool state) so tests pin the order.
std::vector<RouteCandidate> order_candidates(
    std::vector<RouteCandidate> candidates);

class BackendPool {
 public:
  BackendPool(std::vector<BackendAddress> backends, ProbeConfig config,
              RoutingConfig routing = {});
  ~BackendPool();

  BackendPool(const BackendPool&) = delete;
  BackendPool& operator=(const BackendPool&) = delete;

  /// Run one synchronous probe sweep (so the ring and model map are
  /// populated before the first request routes), then start the prober.
  void start();
  void stop();

  /// Failover preference chain for `key`: the owner shard first, then ring
  /// successors, live backends only. Empty when every backend is out.
  std::vector<std::string> route(std::uint64_t key) const;

  /// Load-aware variant of route(): records `key` in the hot-key tracker,
  /// and when the key is hot reorders the first min(replicas, chain)
  /// entries by order_candidates() — freshest-lowest depth first, warmth-
  /// stable ties — leaving the rest of the chain as failover candidates.
  /// Cold keys (and replicas <= 1) return the plain preference chain, so
  /// the replica set is always a prefix of the failover chain: promotion
  /// only ever *adds* warm shards, and failing over from any replica lands
  /// on another replica or the successor that would inherit the key's arc.
  std::vector<std::string> route_load_aware(std::uint64_t key);

  /// Ingest a data-path load report piggybacked on a reply from `id`:
  /// request-fresh queued + in-flight depth, and whether the shard's time
  /// is going to waiting rather than compute. Marks the depth fresh and
  /// recomputes the overload flag against RoutingConfig::overload_load.
  void note_load(const std::string& id, std::uint64_t load,
                 bool wait_dominated);
  /// Backend answered kOverloaded: rank it last among eligible replicas
  /// until a newer load report or successful probe clears the mark. Unlike
  /// report_failure this does NOT evict — the shard is healthy, just busy.
  void note_overloaded(const std::string& id);

  /// Hot-key tracker views (stats text and tests); is_hot_key does not
  /// record, so probing it is free of routing side effects.
  std::size_t hot_keys_tracked() const;
  bool is_hot_key(std::uint64_t key) const;
  const RoutingConfig& routing() const { return routing_; }

  std::optional<BackendAddress> address(const std::string& id) const;

  /// Every configured backend in configuration order — the admin fan-out
  /// target set, regardless of liveness (a dead shard is reported
  /// unreachable, not silently skipped).
  std::vector<BackendAddress> all_backends() const;

  /// Data-path transport failure: evict from the ring now.
  void report_failure(const std::string& id);
  /// Backend answered kShuttingDown: it is draining — stop routing new
  /// keys there but keep it distinct from dead.
  void report_draining(const std::string& id);

  std::vector<BackendStatus> snapshot() const;
  std::size_t ring_size() const;
  /// Bumps on every ring membership change (join/leave/death).
  std::uint64_t ring_generation() const;

  /// Liberty content hash bound to `model` (learned from backend model
  /// lists); 0 when unknown — the router falls back to hashing the model
  /// name, which partitions correctly but cannot share designs across
  /// model names on one substrate.
  std::uint64_t library_hash_for(const std::string& model) const;

  /// Tier-wide health: sums of cache occupancy and queue depth over live
  /// backends, max of registry generations. `draining` is left false (the
  /// router overlays its own drain state).
  serve::HealthResponse aggregate_health() const;

  /// Probe every backend once and wait for all results (start() prelude;
  /// `health` and admin fan-out call it to refresh the fleet view). Probes
  /// run concurrently — one thread per backend — so the wall-clock bound is
  /// a single probe timeout, not timeout x dead backends.
  void probe_all_now();

 private:
  struct Entry {
    BackendAddress address;
    BackendState state = BackendState::kDown;
    serve::HealthResponse health;
    std::uint64_t probes_ok = 0;
    std::uint64_t probes_failed = 0;
    int consecutive_failures = 0;
    int backoff_ms = 0;
    std::chrono::steady_clock::time_point next_probe_at;
    /// Freshest queued + in-flight depth and its trust bit (see
    /// BackendStatus). Distinct from health.queue_depth, which is the
    /// dispatcher queue alone as of the last *successful probe* — this is
    /// refreshed by every data-path reply too.
    std::uint64_t load = 0;
    bool load_fresh = false;
    bool overloaded = false;
  };
  /// Outcome of one unlocked probe round-trip.
  struct ProbeResult {
    bool ok = false;
    serve::HealthResponse health;
    std::vector<serve::ModelInfo> models;
    std::uint64_t latency_us = 0;
  };

  void prober_loop();
  ProbeResult probe_backend(const BackendAddress& address) const;
  /// Caller must hold mu_. Applies a probe outcome to `e`, updating the
  /// ring and gauges on state transitions.
  void apply_probe_result(Entry& e, const ProbeResult& result);
  /// Caller must hold mu_.
  void set_in_ring(Entry& e, bool in_ring);
  /// Caller must hold mu_.
  void publish_gauges() const;

  const ProbeConfig config_;
  const RoutingConfig routing_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool started_ = false;
  std::vector<Entry> entries_;
  HashRing ring_;
  HotKeyTracker hot_keys_;  // guarded by mu_
  std::uint64_t ring_generation_ = 0;
  std::map<std::string, std::uint64_t> model_library_hash_;
  std::thread prober_;
};

}  // namespace atlas::router
