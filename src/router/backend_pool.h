// Backend membership, liveness and placement state for atlas_router.
//
// The pool owns the hash ring plus one status entry per configured backend
// and keeps both current from two signals:
//
//   * a **background prober** that round-trips the rich `health` request
//     (bounded by connect/IO timeouts) on a per-backend schedule —
//     `interval_ms` while healthy, exponential backoff up to
//     `max_backoff_ms` while failing. `fail_threshold` consecutive probe
//     failures take a backend out of the ring; the next successful probe
//     puts it back (re-join is instant, not thresholded — a freshly
//     restarted backend should start taking its arcs again immediately). A
//     backend whose health report says `draining` leaves the ring too but
//     keeps its state distinct from dead, so operators can tell a rolling
//     restart from an outage.
//   * **data-path reports**: a connection thread that hits a transport
//     error forwarding to a backend calls report_failure, which removes it
//     from the ring immediately — in-flight requests fail over to the ring
//     successor without waiting out a probe cycle — and the prober brings
//     it back when it answers again.
//
// The prober also ingests each backend's model list, maintaining the
// model -> Liberty-content-hash map the router mixes into placement keys:
// routing by (netlist hash, library hash) — the backends' own design-cache
// key — means two model names sharing a substrate share one shard's parsed
// designs instead of duplicating them.
//
// All state is guarded by one mutex; probe I/O runs unlocked.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "router/hash_ring.h"
#include "serve/protocol.h"

namespace atlas::router {

/// One backend endpoint: TCP ("host:port") or Unix-domain ("unix:<path>").
/// `id` is the canonical spelling used on the ring, in metrics labels and
/// in admin fan-out replies.
struct BackendAddress {
  std::string id;
  std::string host;
  int port = -1;
  std::string unix_path;

  bool is_unix() const { return !unix_path.empty(); }
};

/// Parse "host:port" or "unix:/path/to.sock"; throws std::runtime_error on
/// anything else.
BackendAddress parse_backend(const std::string& spec);

/// Parse a comma-separated backend list, rejecting duplicates.
std::vector<BackendAddress> parse_backend_list(const std::string& csv);

struct ProbeConfig {
  /// Steady-state probe period per healthy backend.
  int interval_ms = 500;
  /// Connect + per-IO bound for one probe round-trip.
  int timeout_ms = 1000;
  /// Consecutive probe failures before a backend leaves the ring (data-path
  /// failures bypass this and evict immediately).
  int fail_threshold = 2;
  /// Probe backoff ceiling while a backend stays dead.
  int max_backoff_ms = 5000;
  /// Virtual nodes per backend on the ring.
  std::size_t vnodes = 64;
};

enum class BackendState { kUp, kDown, kDraining };
const char* backend_state_name(BackendState state);

/// Point-in-time per-backend view (for stats text and tests).
struct BackendStatus {
  BackendAddress address;
  BackendState state = BackendState::kDown;
  /// Last successful probe's report (zeroed until one succeeds).
  serve::HealthResponse health;
  std::uint64_t probes_ok = 0;
  std::uint64_t probes_failed = 0;
  int consecutive_failures = 0;
  bool in_ring = false;
};

class BackendPool {
 public:
  BackendPool(std::vector<BackendAddress> backends, ProbeConfig config);
  ~BackendPool();

  BackendPool(const BackendPool&) = delete;
  BackendPool& operator=(const BackendPool&) = delete;

  /// Run one synchronous probe sweep (so the ring and model map are
  /// populated before the first request routes), then start the prober.
  void start();
  void stop();

  /// Failover preference chain for `key`: the owner shard first, then ring
  /// successors, live backends only. Empty when every backend is out.
  std::vector<std::string> route(std::uint64_t key) const;

  std::optional<BackendAddress> address(const std::string& id) const;

  /// Every configured backend in configuration order — the admin fan-out
  /// target set, regardless of liveness (a dead shard is reported
  /// unreachable, not silently skipped).
  std::vector<BackendAddress> all_backends() const;

  /// Data-path transport failure: evict from the ring now.
  void report_failure(const std::string& id);
  /// Backend answered kShuttingDown: it is draining — stop routing new
  /// keys there but keep it distinct from dead.
  void report_draining(const std::string& id);

  std::vector<BackendStatus> snapshot() const;
  std::size_t ring_size() const;
  /// Bumps on every ring membership change (join/leave/death).
  std::uint64_t ring_generation() const;

  /// Liberty content hash bound to `model` (learned from backend model
  /// lists); 0 when unknown — the router falls back to hashing the model
  /// name, which partitions correctly but cannot share designs across
  /// model names on one substrate.
  std::uint64_t library_hash_for(const std::string& model) const;

  /// Tier-wide health: sums of cache occupancy and queue depth over live
  /// backends, max of registry generations. `draining` is left false (the
  /// router overlays its own drain state).
  serve::HealthResponse aggregate_health() const;

  /// Probe every backend once, synchronously (start() prelude; admin
  /// fan-out calls it to refresh the model map after a load/unload).
  void probe_all_now();

 private:
  struct Entry {
    BackendAddress address;
    BackendState state = BackendState::kDown;
    serve::HealthResponse health;
    std::uint64_t probes_ok = 0;
    std::uint64_t probes_failed = 0;
    int consecutive_failures = 0;
    int backoff_ms = 0;
    std::chrono::steady_clock::time_point next_probe_at;
  };
  /// Outcome of one unlocked probe round-trip.
  struct ProbeResult {
    bool ok = false;
    serve::HealthResponse health;
    std::vector<serve::ModelInfo> models;
    std::uint64_t latency_us = 0;
  };

  void prober_loop();
  ProbeResult probe_backend(const BackendAddress& address) const;
  /// Caller must hold mu_. Applies a probe outcome to `e`, updating the
  /// ring and gauges on state transitions.
  void apply_probe_result(Entry& e, const ProbeResult& result);
  /// Caller must hold mu_.
  void set_in_ring(Entry& e, bool in_ring);
  /// Caller must hold mu_.
  void publish_gauges() const;

  const ProbeConfig config_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool started_ = false;
  std::vector<Entry> entries_;
  HashRing ring_;
  std::uint64_t ring_generation_ = 0;
  std::map<std::string, std::uint64_t> model_library_hash_;
  std::thread prober_;
};

}  // namespace atlas::router
