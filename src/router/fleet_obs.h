// Fleet-wide metrics aggregation for the router tier: merge the Prometheus
// text expositions of N shards into one document a single scrape can read.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace atlas::router {

/// Merge per-shard Prometheus expositions into one. Every sample line gets a
/// shard="<id>" label injected (appended to an existing label set, or added
/// as the sole label), so identically-named series from different shards stay
/// distinct instead of colliding. Series are regrouped by metric family —
/// one # TYPE header per family (first-seen kind wins), all shards' samples
/// under it — because Prometheus parsers reject a family declared twice.
/// Histogram sub-series (_bucket/_sum/_count) follow their base family.
/// Input order is preserved within a family; families are emitted sorted.
std::string merge_prometheus(
    const std::vector<std::pair<std::string, std::string>>& shards);

}  // namespace atlas::router
