// Consistent hash ring: the placement function of the atlas_router tier.
//
// Each backend contributes `vnodes` points on a 64-bit ring (FNV-1a of the
// backend id mixed with the vnode index), and a key is owned by the first
// point clockwise from the key's hash. Two properties make this the right
// partitioner for the serve feature caches:
//
//   * **Determinism.** Points are pure content hashes of the backend id —
//     no RNG, no insertion-order dependence, no process state — so every
//     router instance (and every restart) maps the same (netlist hash,
//     library hash) key to the same shard. Cache warmth survives router
//     restarts and multiple routers agree without coordination.
//   * **Minimal movement.** Removing a backend reassigns only the keys it
//     owned (to each arc's successor); adding one steals only the arcs its
//     points land in. The rest of the fleet's caches stay warm through
//     membership churn, which is the whole point of routing by hash rather
//     than round-robin.
//
// `preference(key, n)` returns the owner followed by the next distinct
// backends in ring order — the failover chain: when the owner is dead, the
// first successor is exactly where consistent hashing would re-home the
// key after removal, so a failed-over request warms the shard that will
// keep serving the key.
//
// Not internally synchronized: BackendPool guards its ring with the pool
// mutex; standalone use (tests) is single-threaded.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace atlas::router {

class HashRing {
 public:
  /// More virtual nodes = flatter load distribution at the cost of ring
  /// memory; 64 keeps max/mean below ~1.35 for small fleets.
  explicit HashRing(std::size_t vnodes_per_backend = 64);

  /// Idempotent; re-adding an existing backend is a no-op.
  void add(const std::string& backend);
  /// Returns false when the backend was not a member.
  bool remove(const std::string& backend);
  bool contains(const std::string& backend) const;

  /// Member count (backends, not virtual nodes).
  std::size_t size() const;
  bool empty() const { return size() == 0; }

  /// Owner of `key`; empty string on an empty ring.
  std::string lookup(std::uint64_t key) const;

  /// Up to `n` distinct backends in ring order starting at the owner of
  /// `key`: the failover preference chain.
  std::vector<std::string> preference(std::uint64_t key, std::size_t n) const;

  /// The replica set for `key` at replication factor `r`: by definition the
  /// first `r` entries of the preference chain. Its own accessor to name
  /// the containment invariant hot-key replication leans on — replicas are
  /// a *prefix* of the failover chain, so promoting a key from 1 to R
  /// replicas only adds warm shards (the owner stays first on ties), and
  /// failover from any replica lands on another replica or on the
  /// successor that would inherit the key's arc after a removal.
  std::vector<std::string> replicas(std::uint64_t key, std::size_t r) const;

  /// Sorted member ids.
  std::vector<std::string> backends() const;

 private:
  std::size_t vnodes_;
  /// point -> backend id. On the (astronomically unlikely) point collision
  /// the lexicographically smaller id wins, keeping placement independent
  /// of insertion order.
  std::map<std::uint64_t, std::string> ring_;
  std::set<std::string> members_;
};

}  // namespace atlas::router
