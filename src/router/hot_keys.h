// Decayed space-saving frequency tracker: which placement keys are hot?
//
// The router replicates only the hottest (netlist, library) keys — a full
// per-key request histogram would grow with the design population, so this
// keeps a fixed-capacity summary instead (Metwally's space-saving sketch):
//
//   * a bounded map of key -> approximate count. A recorded key that is
//     present increments; one that is absent while the map is full evicts
//     the current minimum and enters at its count + 1 (the classic
//     space-saving overestimate, which can only promote a key *earlier*,
//     never hide a genuinely hot one).
//   * periodic halving decay (every `decay_interval` records) so the
//     ranking tracks the current workload: yesterday's hot design ages out
//     instead of squatting in the top-K forever.
//
// Hotness is a query-time property, not stored state: `is_hot` asks
// whether the key's decayed count clears `min_count` AND fewer than
// `top_k` other keys rank strictly ahead of it. Both the eviction victim
// and the ranking use (count, key) with the key as the tie-break, so the
// answer is a pure function of the recorded history — two routers that saw
// the same requests agree on the hot set, and a re-run of a test does too.
//
// Not internally synchronized: BackendPool records/queries under its own
// mutex; standalone use (tests) is single-threaded.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>

namespace atlas::router {

class HotKeyTracker {
 public:
  /// `capacity` bounds the tracked key set; `decay_interval` is how many
  /// record() calls pass between halvings of every count.
  explicit HotKeyTracker(std::size_t capacity = 1024,
                         std::uint64_t decay_interval = 4096);

  /// Count one request for `key`.
  void record(std::uint64_t key);

  /// True when `key`'s decayed count is at least `min_count` and fewer
  /// than `top_k` other keys rank strictly ahead (count desc, key asc).
  bool is_hot(std::uint64_t key, std::size_t top_k,
              std::uint64_t min_count) const;

  /// Approximate decayed count for `key` (0 when untracked).
  std::uint64_t count(std::uint64_t key) const;

  /// Number of keys currently tracked (bounded by capacity).
  std::size_t tracked() const { return counts_.size(); }

 private:
  void evict_min_and_insert(std::uint64_t key);
  void decay();

  const std::size_t capacity_;
  const std::uint64_t decay_interval_;
  std::uint64_t records_since_decay_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> counts_;
};

}  // namespace atlas::router
