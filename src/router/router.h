// atlas_router: a sharding front tier speaking the same ATSP protocol as
// atlas_serve, so every existing client (atlas_client, serve::Client,
// bench_serve) points at a router unchanged.
//
// Request handling splits three ways:
//
//   * **Routed data path** (Predict, StreamBegin/Chunk/End): the router
//     computes the backends' own design-cache key — hash_mix(netlist
//     content hash, Liberty content hash of the request's model, learned
//     from backend model lists) — and forwards the raw frames to the shard
//     the hash ring owns that key to. One (design, substrate) pair lands on
//     exactly one shard, so N backends hold N disjoint warm feature caches
//     instead of N copies of the same one — except the hottest keys, which
//     (with --replicas > 1) are eligible on the first R shards of their
//     preference chain, picked by freshest-known queue depth with warmth-
//     stable tie-breaking (see RoutingConfig / DESIGN.md §4k). Forwarded
//     predicts ask the shard to piggyback its live load on the reply; the
//     router strips that tail before relaying, so client payloads stay
//     bit-identical to direct serving. Transport failures and
//     kShuttingDown replies evict the shard from the ring and fail the
//     request over to the ring successor — the shard that inherits the
//     key's arc — transparently to the client; kOverloaded marks the shard
//     busy and tries the next replica (relayed only if every candidate
//     sheds); every other backend Error is authoritative and relayed
//     (kUnknownDesign in particular drives the client's documented
//     full-upload fallback).
//   * **Streamed uploads** are pinned: the whole Begin/Chunk*/End exchange
//     goes to one shard over one upstream connection (backend stream state
//     is per-connection). The router buffers the acked frames — bounded by
//     the declared trace size, which is validated against max_stream_bytes
//     at Begin — so a backend dying mid-upload is survivable: the buffered
//     prefix is replayed to the successor and the stream continues.
//   * **Local + fan-out control plane**: Ping, Health (aggregated over
//     live shards), Stats (per-backend table), Metrics (the router
//     process's Prometheus registry; payload selector "fleet" instead
//     fans out to every backend and merges the expositions under
//     per-shard shard="host:port" labels) and Shutdown are answered by
//     the router itself; LoadModel/UnloadModel fan out to every configured
//     backend — models are replicated fleet-wide, designs are sharded —
//     and the reply aggregates per-shard status (any shard failing turns
//     the aggregate into an Error naming exactly which shards diverged).
//     TraceDump (admin-gated) drains the router's own span ring plus every
//     reachable backend's and answers one merged Chrome trace document.
//
// Distributed tracing: a traced Predict/StreamBegin carries its context in
// the request's ext tail. The router adopts it (or — tracing enabled — mints
// a root for untraced v1 clients), runs the request under a "router" span,
// and re-encodes the forwarded payload with a fresh per-attempt child span
// ("forward:<backend>" / "stream_failover:<backend>") as the backend's
// parent, so failovers appear in the merged timeline as sibling attempts.
// Untraced requests keep the raw zero-copy forwarding path.
//
// Threading mirrors serve::Server: one accept thread per listener, one
// thread per client connection. Each connection thread owns its upstream
// sockets (one per backend, lazily connected, reused across requests), so
// the data path shares no mutable state across connections — only the
// BackendPool (internally locked) and the obs metrics registry (atomics).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "router/backend_pool.h"
#include "serve/protocol.h"
#include "util/socket.h"

namespace atlas::router {

struct RouterConfig {
  /// TCP endpoint; port 0 binds an ephemeral port (see Router::port()),
  /// port < 0 disables TCP.
  std::string host = "127.0.0.1";
  int port = 0;
  /// Unix-domain socket path; empty disables.
  std::string unix_path;

  std::size_t max_frame_bytes = serve::kDefaultMaxFrameBytes;
  /// Bound on the per-stream replay buffer (and thus on what StreamBegin
  /// may declare). Should not exceed the backends' own max_stream_bytes —
  /// they would reject the upload anyway.
  std::size_t max_stream_bytes = 256ull << 20;  // 256 MiB

  ProbeConfig probe;
  /// Hot-key replication and overload-avoidance policy (see RoutingConfig);
  /// defaults keep replication off (replicas = 1).
  RoutingConfig routing;

  /// Data-path upstream connect bound. IO on an established upstream is
  /// deliberately unbounded by default: a predict may legitimately compute
  /// for a long time, and a dead backend surfaces as a socket error, not
  /// a silent stall (the kernel detects the close).
  int backend_connect_timeout_ms = 2000;
  int backend_io_timeout_ms = 0;

  /// Honor LoadModel/UnloadModel fan-out. Off by default, mirroring
  /// atlas_serve: admin is an operator capability. The backends enforce
  /// their own flag too — this gate just fails fast at the tier edge.
  bool allow_admin = false;
  bool verbose = false;
};

class Router {
 public:
  Router(RouterConfig config, std::vector<BackendAddress> backends);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Probe the fleet once (so the ring is populated), start the prober,
  /// bind listeners, launch accept threads.
  void start();
  void stop();

  /// Resolved TCP port after an ephemeral bind; -1 when TCP is disabled.
  int port() const { return resolved_port_; }

  bool stop_requested() const { return stop_requested_.load(); }
  void wait_for_stop_request(const std::function<bool()>& poll = {});

  /// Membership/liveness state (tests assert on it directly).
  BackendPool& pool() { return *pool_; }

  /// The per-backend table the Stats wire request answers with.
  std::string stats_text() const;

 private:
  struct Connection {
    util::Socket sock;
    std::thread thread;
    std::atomic<bool> done{false};
  };
  /// Lazily-connected upstream sockets, one per backend id, owned by a
  /// single connection thread.
  using UpstreamMap = std::map<std::string, util::Socket>;
  /// Streamed-upload relay state (per client connection).
  struct StreamRelay {
    bool active = false;
    std::string backend;             // pinned shard
    std::vector<std::string> chain;  // failover order captured at Begin
    std::size_t chain_pos = 0;
    std::string begin_payload;              // Begin payload, for replay
    std::vector<std::string> chunk_payloads;  // acked chunks, in order
    /// Trace context adopted at Begin (zero when the stream is untraced);
    /// failover attempts parent their spans — and the re-encoded Begin
    /// replayed to the successor — under it.
    obs::TraceContext ctx;

    void reset() {
      active = false;
      backend.clear();
      chain.clear();
      chain_pos = 0;
      begin_payload.clear();
      chunk_payloads.clear();
      chunk_payloads.shrink_to_fit();
      ctx = obs::TraceContext{};
    }
  };

  void accept_loop(util::Listener* listener);
  void connection_loop(Connection* conn);
  void reap_finished_connections();

  /// Borrow (connecting if needed) the upstream socket for `id`; nullptr
  /// when the backend is unknown or unreachable.
  util::Socket* upstream(UpstreamMap& upstreams, const std::string& id);
  /// One raw round-trip to `id`. Returns false on transport failure
  /// (connect/send/recv error, framing corruption, EOF) — the upstream
  /// socket is dropped and the pool told — after which the caller fails
  /// over. A reply frame of any type (including Error) returns true.
  bool forward(UpstreamMap& upstreams, const std::string& id,
               const serve::Frame& request, serve::Frame& response);

  /// The placement key for (netlist hash, model): mixes in the model's
  /// Liberty content hash when the prober has learned it, else a hash of
  /// the model name (correct partitioning, no cross-model design sharing).
  std::uint64_t placement_key(std::uint64_t netlist_hash,
                              const std::string& model) const;

  std::pair<serve::MsgType, std::string> route_predict(UpstreamMap& upstreams,
                                                       const serve::Frame& frame);
  std::pair<serve::MsgType, std::string> handle_stream(UpstreamMap& upstreams,
                                                       const serve::Frame& frame,
                                                       StreamRelay& relay);
  /// Replay the buffered stream prefix (Begin + acked chunks) to `id`.
  /// Returns true when every frame was acked; an authoritative error reply
  /// lands in `error` with `authoritative` = true (relay it, the stream is
  /// dead); transport failure returns false with `authoritative` = false
  /// (try the next candidate).
  bool replay_stream(UpstreamMap& upstreams, const std::string& id,
                     const StreamRelay& relay, serve::Frame& error,
                     bool& authoritative);
  /// Fail the active stream over to the next candidate in its chain,
  /// replaying the buffered prefix. Returns true and repoints
  /// relay.backend on success; on authoritative rejection or chain
  /// exhaustion returns false with the reply to send in `reply`.
  bool failover_stream(UpstreamMap& upstreams, StreamRelay& relay,
                       std::pair<serve::MsgType, std::string>& reply);

  std::pair<serve::MsgType, std::string> admin_fanout(const serve::Frame& frame);
  /// Admin-gated TraceDump: drain the local span ring and every reachable
  /// backend's, answer one merged Chrome trace (kTraceJson). Unreachable or
  /// admin-disabled shards are skipped — a forensic pull should return what
  /// the rest of the fleet has, not fail on the sickest member.
  std::pair<serve::MsgType, std::string> trace_dump_fanout();
  /// Metrics "fleet" selector: every backend's Prometheus exposition merged
  /// with per-shard shard="<id>" labels, the router's own registry included
  /// as shard="router".
  std::string fleet_metrics();
  serve::HealthResponse health_snapshot() const;

  RouterConfig config_;
  std::unique_ptr<BackendPool> pool_;

  util::Listener tcp_listener_;
  util::Listener unix_listener_;
  int resolved_port_ = -1;

  std::vector<std::thread> accept_threads_;
  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> stop_requested_{false};
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace atlas::router
