#include "router/fleet_obs.h"

#include <map>
#include <sstream>

namespace atlas::router {
namespace {

/// Inject shard="<id>" into one sample line (`name{labels} value` or
/// `name value`). Uses the last '}' as the label-set close so label values
/// containing '{' cannot fool it; a line with neither braces nor a value
/// separator is passed through untouched.
std::string inject_shard(const std::string& line, const std::string& shard) {
  const std::string label = "shard=\"" + shard + "\"";
  const std::size_t open = line.find('{');
  const std::size_t space = line.find(' ');
  if (open != std::string::npos &&
      (space == std::string::npos || open < space)) {
    const std::size_t close = line.rfind('}');
    if (close == std::string::npos || close < open) return line;
    std::string out = line.substr(0, close);
    if (close > open + 1) out += ',';
    out += label;
    out += line.substr(close);
    return out;
  }
  if (space == std::string::npos) return line;
  return line.substr(0, space) + "{" + label + "}" + line.substr(space);
}

/// True when `sample` belongs to histogram family `family`: the exact name
/// or one of the _bucket/_sum/_count sub-series.
bool in_family(const std::string& sample, const std::string& family) {
  if (sample.compare(0, family.size(), family) != 0) return false;
  const std::string rest = sample.substr(family.size());
  return rest.empty() || rest == "_bucket" || rest == "_sum" ||
         rest == "_count";
}

/// True when the recorded "# TYPE <name> <kind>" header declares a
/// histogram family.
bool is_histogram(const std::string& type_line) {
  const std::size_t last_space = type_line.rfind(' ');
  return last_space != std::string::npos &&
         type_line.substr(last_space + 1) == "histogram";
}

}  // namespace

std::string merge_prometheus(
    const std::vector<std::pair<std::string, std::string>>& shards) {
  struct Family {
    std::string type_line;  // "# TYPE <name> <kind>"; first seen wins
    std::vector<std::string> samples;
  };
  std::map<std::string, Family> families;
  for (const auto& [shard, text] : shards) {
    // Each input is a well-formed exposition: a family's # TYPE header
    // precedes its samples, so the current family tracks sub-series
    // (histogram _bucket/_sum/_count) without a suffix-stripping heuristic.
    std::string current;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (line.rfind("# TYPE ", 0) == 0) {
        std::istringstream header(line.substr(7));
        std::string name;
        header >> name;
        if (name.empty()) continue;
        current = name;
        Family& fam = families[name];
        if (fam.type_line.empty()) fam.type_line = line;
        continue;
      }
      if (line[0] == '#') continue;  // HELP and other comments: dropped
      const std::size_t name_end = line.find_first_of("{ ");
      if (name_end == std::string::npos) continue;
      const std::string name = line.substr(0, name_end);
      const std::string family =
          !current.empty() && in_family(name, current) ? current : name;
      families[family].samples.push_back(inject_shard(line, shard));
    }
  }
  // When a histogram family lives on only a subset of shards, another shard
  // can export a standalone family whose *name* is one of the histogram's
  // sub-series names (e.g. a plain `lat_us_count` counter next to shard 1's
  // `lat_us` histogram). Grouped naively that yields two # TYPE headers
  // covering the same sample name — an invalid exposition scrapers reject.
  // Fold such families into the histogram they alias: their samples join
  // the histogram block and their own TYPE header is dropped.
  for (auto it = families.begin(); it != families.end();) {
    std::string base;
    for (const std::string suffix : {"_bucket", "_sum", "_count"}) {
      if (it->first.size() <= suffix.size() ||
          it->first.compare(it->first.size() - suffix.size(), suffix.size(),
                            suffix) != 0) {
        continue;
      }
      const std::string candidate =
          it->first.substr(0, it->first.size() - suffix.size());
      const auto host = families.find(candidate);
      if (host != families.end() && is_histogram(host->second.type_line)) {
        base = candidate;
        break;
      }
    }
    if (base.empty()) {
      ++it;
      continue;
    }
    Family& host = families[base];
    host.samples.insert(host.samples.end(), it->second.samples.begin(),
                        it->second.samples.end());
    it = families.erase(it);
  }

  std::string out;
  for (const auto& [name, fam] : families) {
    if (!fam.type_line.empty()) {
      out += fam.type_line;
      out += '\n';
    }
    for (const std::string& sample : fam.samples) {
      out += sample;
      out += '\n';
    }
  }
  return out;
}

}  // namespace atlas::router
