#include "router/backend_pool.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "obs/metrics.h"
#include "serve/client.h"
#include "util/strings.h"

namespace atlas::router {
namespace {

std::string quoted_backend_label(const std::string& id) {
  return "backend=\"" + id + "\"";
}

obs::Histogram& probe_latency_histogram() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("atlas_router_probe_latency_us");
  return h;
}

}  // namespace

BackendAddress parse_backend(const std::string& spec) {
  BackendAddress addr;
  if (spec.rfind("unix:", 0) == 0) {
    addr.unix_path = spec.substr(5);
    if (addr.unix_path.empty()) {
      throw std::runtime_error("backend spec '" + spec + "': empty unix path");
    }
    addr.id = "unix:" + addr.unix_path;
    return addr;
  }
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    throw std::runtime_error("backend spec '" + spec +
                             "': expected host:port or unix:/path");
  }
  addr.host = spec.substr(0, colon);
  const std::string port_text = spec.substr(colon + 1);
  std::size_t consumed = 0;
  int port = 0;
  try {
    port = std::stoi(port_text, &consumed);
  } catch (const std::exception&) {
    throw std::runtime_error("backend spec '" + spec + "': bad port '" +
                             port_text + "'");
  }
  if (consumed != port_text.size() || port <= 0 || port > 65535) {
    throw std::runtime_error("backend spec '" + spec + "': bad port '" +
                             port_text + "'");
  }
  addr.port = port;
  addr.id = addr.host + ":" + port_text;
  return addr;
}

std::vector<BackendAddress> parse_backend_list(const std::string& csv) {
  std::vector<BackendAddress> out;
  std::set<std::string> seen;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    const std::string spec(util::trim(csv.substr(start, comma - start)));
    start = comma + 1;
    if (spec.empty()) continue;
    BackendAddress addr = parse_backend(spec);
    if (!seen.insert(addr.id).second) {
      throw std::runtime_error("duplicate backend '" + addr.id + "'");
    }
    out.push_back(std::move(addr));
  }
  if (out.empty()) throw std::runtime_error("no backends configured");
  return out;
}

const char* backend_state_name(BackendState state) {
  switch (state) {
    case BackendState::kUp:
      return "up";
    case BackendState::kDown:
      return "down";
    case BackendState::kDraining:
      return "draining";
  }
  return "unknown";
}

BackendPool::BackendPool(std::vector<BackendAddress> backends,
                         ProbeConfig config)
    : config_(config), ring_(config.vnodes) {
  const auto now = std::chrono::steady_clock::now();
  entries_.reserve(backends.size());
  for (BackendAddress& addr : backends) {
    Entry e;
    e.address = std::move(addr);
    e.next_probe_at = now;
    entries_.push_back(std::move(e));
  }
  publish_gauges();
}

BackendPool::~BackendPool() { stop(); }

void BackendPool::start() {
  probe_all_now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return;
    started_ = true;
    stopping_ = false;
  }
  prober_ = std::thread([this] { prober_loop(); });
}

void BackendPool::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (prober_.joinable()) prober_.join();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

std::vector<std::string> BackendPool::route(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.preference(key, ring_.size());
}

std::optional<BackendAddress> BackendPool::address(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : entries_) {
    if (e.address.id == id) return e.address;
  }
  return std::nullopt;
}

std::vector<BackendAddress> BackendPool::all_backends() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<BackendAddress> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.address);
  return out;
}

void BackendPool::report_failure(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) {
    if (e.address.id != id) continue;
    e.state = BackendState::kDown;
    e.consecutive_failures = std::max(e.consecutive_failures,
                                      config_.fail_threshold);
    // Probe promptly: a data-path blip should not serve out a full backoff
    // ladder before the backend can rejoin.
    e.backoff_ms = config_.interval_ms;
    e.next_probe_at = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(config_.interval_ms);
    set_in_ring(e, false);
    obs::Registry::global()
        .counter("atlas_router_backend_evictions_total",
                 quoted_backend_label(id))
        .inc();
    return;
  }
}

void BackendPool::report_draining(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) {
    if (e.address.id != id) continue;
    e.state = BackendState::kDraining;
    set_in_ring(e, false);
    return;
  }
}

std::vector<BackendStatus> BackendPool::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<BackendStatus> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    BackendStatus s;
    s.address = e.address;
    s.state = e.state;
    s.health = e.health;
    s.probes_ok = e.probes_ok;
    s.probes_failed = e.probes_failed;
    s.consecutive_failures = e.consecutive_failures;
    s.in_ring = ring_.contains(e.address.id);
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t BackendPool::ring_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t BackendPool::ring_generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_generation_;
}

std::uint64_t BackendPool::library_hash_for(const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = model_library_hash_.find(model);
  return it == model_library_hash_.end() ? 0 : it->second;
}

serve::HealthResponse BackendPool::aggregate_health() const {
  std::lock_guard<std::mutex> lock(mu_);
  serve::HealthResponse agg;
  std::uint64_t max_models = 0;
  for (const Entry& e : entries_) {
    if (e.state != BackendState::kUp) continue;
    agg.registry_generation =
        std::max(agg.registry_generation, e.health.registry_generation);
    max_models = std::max(max_models, e.health.num_models);
    agg.cache_designs += e.health.cache_designs;
    agg.cache_total_bytes += e.health.cache_total_bytes;
    agg.cache_embedding_bytes += e.health.cache_embedding_bytes;
    agg.queue_depth += e.health.queue_depth;
  }
  // Models are replicated fleet-wide by admin fan-out, not sharded: report
  // the largest shard's count rather than a meaningless sum.
  agg.num_models = max_models;
  return agg;
}

void BackendPool::probe_all_now() {
  std::vector<BackendAddress> targets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    targets.reserve(entries_.size());
    for (const Entry& e : entries_) targets.push_back(e.address);
  }
  for (const BackendAddress& addr : targets) {
    ProbeResult result = probe_backend(addr);
    std::lock_guard<std::mutex> lock(mu_);
    for (Entry& e : entries_) {
      if (e.address.id == addr.id) {
        apply_probe_result(e, result);
        break;
      }
    }
  }
}

void BackendPool::prober_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    const auto now = std::chrono::steady_clock::now();
    // Probe whatever is due; earliest-deadline sleep otherwise.
    std::string due_id;
    for (Entry& e : entries_) {
      if (e.next_probe_at <= now) {
        due_id = e.address.id;
        // Push the schedule before the unlocked probe so a slow probe does
        // not cause a same-backend re-probe storm.
        e.next_probe_at = now + std::chrono::milliseconds(config_.interval_ms);
        break;
      }
    }
    if (due_id.empty()) {
      auto wake = now + std::chrono::milliseconds(config_.interval_ms);
      for (const Entry& e : entries_) wake = std::min(wake, e.next_probe_at);
      cv_.wait_until(lock, wake, [this] { return stopping_; });
      continue;
    }
    BackendAddress addr;
    for (const Entry& e : entries_) {
      if (e.address.id == due_id) addr = e.address;
    }
    lock.unlock();
    ProbeResult result = probe_backend(addr);
    lock.lock();
    if (stopping_) break;
    for (Entry& e : entries_) {
      if (e.address.id == due_id) {
        apply_probe_result(e, result);
        break;
      }
    }
  }
}

BackendPool::ProbeResult BackendPool::probe_backend(
    const BackendAddress& address) const {
  ProbeResult result;
  serve::ClientOptions options;
  options.connect_timeout_ms = config_.timeout_ms;
  options.io_timeout_ms = config_.timeout_ms;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    serve::Client client =
        address.is_unix()
            ? serve::Client::connect_unix(address.unix_path, options)
            : serve::Client::connect_tcp(address.host, address.port, options);
    result.health = client.health();
    result.models = client.models();
    result.ok = true;
  } catch (const std::exception&) {
    result.ok = false;
  }
  result.latency_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return result;
}

void BackendPool::apply_probe_result(Entry& e, const ProbeResult& result) {
  auto& registry = obs::Registry::global();
  probe_latency_histogram().record(result.latency_us);
  const auto now = std::chrono::steady_clock::now();
  if (result.ok) {
    registry
        .counter("atlas_router_probes_total",
                 quoted_backend_label(e.address.id) + ",result=\"ok\"")
        .inc();
    ++e.probes_ok;
    e.consecutive_failures = 0;
    e.backoff_ms = 0;
    e.health = result.health;
    e.next_probe_at = now + std::chrono::milliseconds(config_.interval_ms);
    for (const serve::ModelInfo& m : result.models) {
      if (m.library_hash != 0) model_library_hash_[m.name] = m.library_hash;
    }
    if (result.health.draining) {
      e.state = BackendState::kDraining;
      set_in_ring(e, false);
    } else {
      e.state = BackendState::kUp;
      set_in_ring(e, true);
    }
    publish_gauges();
    return;
  }
  registry
      .counter("atlas_router_probes_total",
               quoted_backend_label(e.address.id) + ",result=\"error\"")
      .inc();
  ++e.probes_failed;
  ++e.consecutive_failures;
  e.backoff_ms = e.backoff_ms == 0
                     ? config_.interval_ms
                     : std::min(e.backoff_ms * 2, config_.max_backoff_ms);
  e.next_probe_at = now + std::chrono::milliseconds(e.backoff_ms);
  if (e.consecutive_failures >= config_.fail_threshold) {
    e.state = BackendState::kDown;
    set_in_ring(e, false);
  }
  // set_in_ring only republishes on membership *changes*; a probe can update
  // health (queue depth) without one, so refresh unconditionally.
  publish_gauges();
}

void BackendPool::set_in_ring(Entry& e, bool in_ring) {
  bool changed = false;
  if (in_ring && !ring_.contains(e.address.id)) {
    ring_.add(e.address.id);
    changed = true;
  } else if (!in_ring && ring_.contains(e.address.id)) {
    ring_.remove(e.address.id);
    changed = true;
  }
  if (changed) {
    ++ring_generation_;
    publish_gauges();
  }
}

void BackendPool::publish_gauges() const {
  auto& registry = obs::Registry::global();
  registry.gauge("atlas_router_ring_backends")
      .set(static_cast<std::int64_t>(ring_.size()));
  registry.gauge("atlas_router_backends_configured")
      .set(static_cast<std::int64_t>(entries_.size()));
  for (const Entry& e : entries_) {
    const std::string label = quoted_backend_label(e.address.id);
    registry.gauge("atlas_router_backend_up", label)
        .set(e.state == BackendState::kUp ? 1 : 0);
    // The dispatcher queue depth the shard reported on its last successful
    // probe; forced to 0 while the shard is not up so a stale depth never
    // outlives the backend it described.
    registry.gauge("atlas_router_backend_queue_depth", label)
        .set(e.state == BackendState::kUp
                 ? static_cast<std::int64_t>(e.health.queue_depth)
                 : 0);
  }
}

}  // namespace atlas::router
