#include "router/backend_pool.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <tuple>

#include "obs/metrics.h"
#include "serve/client.h"
#include "util/strings.h"

namespace atlas::router {
namespace {

std::string quoted_backend_label(const std::string& id) {
  return "backend=\"" + id + "\"";
}

obs::Histogram& probe_latency_histogram() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("atlas_router_probe_latency_us");
  return h;
}

}  // namespace

BackendAddress parse_backend(const std::string& spec) {
  BackendAddress addr;
  if (spec.rfind("unix:", 0) == 0) {
    addr.unix_path = spec.substr(5);
    if (addr.unix_path.empty()) {
      throw std::runtime_error("backend spec '" + spec + "': empty unix path");
    }
    addr.id = "unix:" + addr.unix_path;
    return addr;
  }
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    throw std::runtime_error("backend spec '" + spec +
                             "': expected host:port or unix:/path");
  }
  addr.host = spec.substr(0, colon);
  const std::string port_text = spec.substr(colon + 1);
  std::size_t consumed = 0;
  int port = 0;
  try {
    port = std::stoi(port_text, &consumed);
  } catch (const std::exception&) {
    throw std::runtime_error("backend spec '" + spec + "': bad port '" +
                             port_text + "'");
  }
  if (consumed != port_text.size() || port <= 0 || port > 65535) {
    throw std::runtime_error("backend spec '" + spec + "': bad port '" +
                             port_text + "'");
  }
  addr.port = port;
  addr.id = addr.host + ":" + port_text;
  return addr;
}

std::vector<BackendAddress> parse_backend_list(const std::string& csv) {
  std::vector<BackendAddress> out;
  std::set<std::string> seen;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    const std::string spec(util::trim(csv.substr(start, comma - start)));
    start = comma + 1;
    if (spec.empty()) continue;
    BackendAddress addr = parse_backend(spec);
    if (!seen.insert(addr.id).second) {
      throw std::runtime_error("duplicate backend '" + addr.id + "'");
    }
    out.push_back(std::move(addr));
  }
  if (out.empty()) throw std::runtime_error("no backends configured");
  return out;
}

const char* backend_state_name(BackendState state) {
  switch (state) {
    case BackendState::kUp:
      return "up";
    case BackendState::kDown:
      return "down";
    case BackendState::kDraining:
      return "draining";
  }
  return "unknown";
}

BackendPool::BackendPool(std::vector<BackendAddress> backends,
                         ProbeConfig config, RoutingConfig routing)
    : config_(config), routing_(routing), ring_(config.vnodes) {
  const auto now = std::chrono::steady_clock::now();
  entries_.reserve(backends.size());
  for (BackendAddress& addr : backends) {
    Entry e;
    e.address = std::move(addr);
    e.next_probe_at = now;
    entries_.push_back(std::move(e));
  }
  publish_gauges();
}

BackendPool::~BackendPool() { stop(); }

void BackendPool::start() {
  probe_all_now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return;
    started_ = true;
    stopping_ = false;
  }
  prober_ = std::thread([this] { prober_loop(); });
}

void BackendPool::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (prober_.joinable()) prober_.join();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

std::vector<std::string> BackendPool::route(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.preference(key, ring_.size());
}

std::vector<RouteCandidate> order_candidates(
    std::vector<RouteCandidate> candidates) {
  std::sort(candidates.begin(), candidates.end(),
            [](const RouteCandidate& a, const RouteCandidate& b) {
              // A stale depth sorts as if 0 for the load term but after
              // every fresh one — never preferred on the strength of a
              // number that may describe a backend that no longer exists.
              const auto rank = [](const RouteCandidate& c) {
                return std::make_tuple(c.overloaded ? 1 : 0,
                                       c.load_fresh ? 0 : 1,
                                       c.load_fresh ? c.load : 0,
                                       c.chain_pos);
              };
              return rank(a) < rank(b);
            });
  return candidates;
}

std::vector<std::string> BackendPool::route_load_aware(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  hot_keys_.record(key);
  std::vector<std::string> chain = ring_.preference(key, ring_.size());
  const std::size_t eligible =
      std::min<std::size_t>(routing_.replicas, chain.size());
  if (eligible <= 1 ||
      !hot_keys_.is_hot(key, routing_.hot_top_k, routing_.hot_min_requests)) {
    return chain;
  }
  std::vector<RouteCandidate> candidates;
  candidates.reserve(eligible);
  for (std::size_t i = 0; i < eligible; ++i) {
    RouteCandidate c;
    c.id = chain[i];
    c.chain_pos = i;
    for (const Entry& e : entries_) {
      if (e.address.id != c.id) continue;
      c.load = e.load;
      c.load_fresh = e.load_fresh && e.state == BackendState::kUp;
      c.overloaded = e.overloaded;
      break;
    }
    candidates.push_back(std::move(c));
  }
  candidates = order_candidates(std::move(candidates));
  for (std::size_t i = 0; i < eligible; ++i) chain[i] = candidates[i].id;
  return chain;
}

void BackendPool::note_load(const std::string& id, std::uint64_t load,
                            bool wait_dominated) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) {
    if (e.address.id != id) continue;
    e.load = load;
    e.load_fresh = true;
    // An overload mark only persists while reports keep justifying it: a
    // busy-but-computing shard (high load, compute-dominated) stays a
    // normal candidate, and a drained one clears on its next reply.
    e.overloaded =
        wait_dominated && routing_.overload_load > 0 &&
        load >= routing_.overload_load;
    publish_gauges();
    return;
  }
}

void BackendPool::note_overloaded(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) {
    if (e.address.id != id) continue;
    e.overloaded = true;
    obs::Registry::global()
        .counter("atlas_router_backend_overloaded_total",
                 quoted_backend_label(id))
        .inc();
    return;
  }
}

std::size_t BackendPool::hot_keys_tracked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hot_keys_.tracked();
}

bool BackendPool::is_hot_key(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return hot_keys_.is_hot(key, routing_.hot_top_k, routing_.hot_min_requests);
}

std::optional<BackendAddress> BackendPool::address(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : entries_) {
    if (e.address.id == id) return e.address;
  }
  return std::nullopt;
}

std::vector<BackendAddress> BackendPool::all_backends() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<BackendAddress> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.address);
  return out;
}

void BackendPool::report_failure(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) {
    if (e.address.id != id) continue;
    e.state = BackendState::kDown;
    // Whatever depth we knew described a connection that just died.
    e.load_fresh = false;
    e.consecutive_failures = std::max(e.consecutive_failures,
                                      config_.fail_threshold);
    // Probe promptly: a data-path blip should not serve out a full backoff
    // ladder before the backend can rejoin.
    e.backoff_ms = config_.interval_ms;
    e.next_probe_at = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(config_.interval_ms);
    set_in_ring(e, false);
    obs::Registry::global()
        .counter("atlas_router_backend_evictions_total",
                 quoted_backend_label(id))
        .inc();
    return;
  }
}

void BackendPool::report_draining(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) {
    if (e.address.id != id) continue;
    e.state = BackendState::kDraining;
    set_in_ring(e, false);
    return;
  }
}

std::vector<BackendStatus> BackendPool::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<BackendStatus> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    BackendStatus s;
    s.address = e.address;
    s.state = e.state;
    s.health = e.health;
    s.probes_ok = e.probes_ok;
    s.probes_failed = e.probes_failed;
    s.consecutive_failures = e.consecutive_failures;
    s.in_ring = ring_.contains(e.address.id);
    s.load = e.load;
    s.load_fresh = e.load_fresh;
    s.overloaded = e.overloaded;
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t BackendPool::ring_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t BackendPool::ring_generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_generation_;
}

std::uint64_t BackendPool::library_hash_for(const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = model_library_hash_.find(model);
  return it == model_library_hash_.end() ? 0 : it->second;
}

serve::HealthResponse BackendPool::aggregate_health() const {
  std::lock_guard<std::mutex> lock(mu_);
  serve::HealthResponse agg;
  std::uint64_t max_models = 0;
  for (const Entry& e : entries_) {
    if (e.state != BackendState::kUp) continue;
    agg.registry_generation =
        std::max(agg.registry_generation, e.health.registry_generation);
    max_models = std::max(max_models, e.health.num_models);
    agg.cache_designs += e.health.cache_designs;
    agg.cache_total_bytes += e.health.cache_total_bytes;
    agg.cache_embedding_bytes += e.health.cache_embedding_bytes;
    agg.queue_depth += e.health.queue_depth;
  }
  // Models are replicated fleet-wide by admin fan-out, not sharded: report
  // the largest shard's count rather than a meaningless sum.
  agg.num_models = max_models;
  return agg;
}

void BackendPool::probe_all_now() {
  std::vector<BackendAddress> targets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    targets.reserve(entries_.size());
    for (const Entry& e : entries_) targets.push_back(e.address);
  }
  // Probe concurrently, then apply every result under one lock. The old
  // sequential sweep made `health` — which refreshes the fleet view
  // synchronously — block for a full connect timeout *per dead backend*,
  // so one downed shard turned a monitoring request into a multi-second
  // stall. One short-lived thread per backend bounds the sweep at a single
  // probe timeout; probe_backend touches no shared state.
  std::vector<ProbeResult> results(targets.size());
  std::vector<std::thread> probes;
  probes.reserve(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    probes.emplace_back(
        [this, &targets, &results, i] { results[i] = probe_backend(targets[i]); });
  }
  for (std::thread& t : probes) t.join();
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    for (Entry& e : entries_) {
      if (e.address.id == targets[i].id) {
        apply_probe_result(e, results[i]);
        break;
      }
    }
  }
}

void BackendPool::prober_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    const auto now = std::chrono::steady_clock::now();
    // Probe whatever is due; earliest-deadline sleep otherwise.
    std::string due_id;
    for (Entry& e : entries_) {
      if (e.next_probe_at <= now) {
        due_id = e.address.id;
        // Push the schedule before the unlocked probe so a slow probe does
        // not cause a same-backend re-probe storm.
        e.next_probe_at = now + std::chrono::milliseconds(config_.interval_ms);
        break;
      }
    }
    if (due_id.empty()) {
      auto wake = now + std::chrono::milliseconds(config_.interval_ms);
      for (const Entry& e : entries_) wake = std::min(wake, e.next_probe_at);
      cv_.wait_until(lock, wake, [this] { return stopping_; });
      continue;
    }
    BackendAddress addr;
    for (const Entry& e : entries_) {
      if (e.address.id == due_id) addr = e.address;
    }
    lock.unlock();
    ProbeResult result = probe_backend(addr);
    lock.lock();
    if (stopping_) break;
    for (Entry& e : entries_) {
      if (e.address.id == due_id) {
        apply_probe_result(e, result);
        break;
      }
    }
  }
}

BackendPool::ProbeResult BackendPool::probe_backend(
    const BackendAddress& address) const {
  ProbeResult result;
  serve::ClientOptions options;
  options.connect_timeout_ms = config_.timeout_ms;
  options.io_timeout_ms = config_.timeout_ms;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    serve::Client client =
        address.is_unix()
            ? serve::Client::connect_unix(address.unix_path, options)
            : serve::Client::connect_tcp(address.host, address.port, options);
    result.health = client.health();
    result.models = client.models();
    result.ok = true;
  } catch (const std::exception&) {
    result.ok = false;
  }
  result.latency_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return result;
}

void BackendPool::apply_probe_result(Entry& e, const ProbeResult& result) {
  auto& registry = obs::Registry::global();
  probe_latency_histogram().record(result.latency_us);
  const auto now = std::chrono::steady_clock::now();
  if (result.ok) {
    registry
        .counter("atlas_router_probes_total",
                 quoted_backend_label(e.address.id) + ",result=\"ok\"")
        .inc();
    ++e.probes_ok;
    e.consecutive_failures = 0;
    e.backoff_ms = 0;
    e.health = result.health;
    // A probe is a weaker load signal than the data-path piggyback (it
    // sees the dispatcher queue, not in-flight jobs) but it is *current*:
    // refresh the depth, and clear any overload mark — a shard that just
    // answered a probe promptly gets to be a candidate again.
    e.load = result.health.queue_depth;
    e.load_fresh = true;
    e.overloaded = false;
    e.next_probe_at = now + std::chrono::milliseconds(config_.interval_ms);
    for (const serve::ModelInfo& m : result.models) {
      if (m.library_hash != 0) model_library_hash_[m.name] = m.library_hash;
    }
    if (result.health.draining) {
      e.state = BackendState::kDraining;
      set_in_ring(e, false);
    } else {
      e.state = BackendState::kUp;
      set_in_ring(e, true);
    }
    publish_gauges();
    return;
  }
  registry
      .counter("atlas_router_probes_total",
               quoted_backend_label(e.address.id) + ",result=\"error\"")
      .inc();
  ++e.probes_failed;
  ++e.consecutive_failures;
  // The depth goes stale on the FIRST failed probe, not at fail_threshold:
  // below the threshold the backend stays kUp (and in the ring), and the
  // gauge used to keep publishing its last-good depth for the whole
  // backoff ladder — a frozen number describing a backend that may be
  // gone. publish_gauges() zeroes the gauge whenever the depth is stale,
  // and the routing policy stops trusting the value at the same instant.
  e.load_fresh = false;
  e.backoff_ms = e.backoff_ms == 0
                     ? config_.interval_ms
                     : std::min(e.backoff_ms * 2, config_.max_backoff_ms);
  e.next_probe_at = now + std::chrono::milliseconds(e.backoff_ms);
  if (e.consecutive_failures >= config_.fail_threshold) {
    e.state = BackendState::kDown;
    set_in_ring(e, false);
  }
  // set_in_ring only republishes on membership *changes*; a probe can update
  // health (queue depth) without one, so refresh unconditionally.
  publish_gauges();
}

void BackendPool::set_in_ring(Entry& e, bool in_ring) {
  bool changed = false;
  if (in_ring && !ring_.contains(e.address.id)) {
    ring_.add(e.address.id);
    changed = true;
  } else if (!in_ring && ring_.contains(e.address.id)) {
    ring_.remove(e.address.id);
    changed = true;
  }
  if (changed) {
    ++ring_generation_;
    publish_gauges();
  }
}

void BackendPool::publish_gauges() const {
  auto& registry = obs::Registry::global();
  registry.gauge("atlas_router_ring_backends")
      .set(static_cast<std::int64_t>(ring_.size()));
  registry.gauge("atlas_router_backends_configured")
      .set(static_cast<std::int64_t>(entries_.size()));
  for (const Entry& e : entries_) {
    const std::string label = quoted_backend_label(e.address.id);
    registry.gauge("atlas_router_backend_up", label)
        .set(e.state == BackendState::kUp ? 1 : 0);
    // The freshest queued + in-flight depth known for the shard; forced to
    // 0 the moment the signal goes stale (first failed probe or data-path
    // error) or the shard leaves kUp, so a stale depth never outlives the
    // backend state it described.
    registry.gauge("atlas_router_backend_queue_depth", label)
        .set(e.state == BackendState::kUp && e.load_fresh
                 ? static_cast<std::int64_t>(e.load)
                 : 0);
  }
}

}  // namespace atlas::router
