#include "router/router.h"

#include <algorithm>
#include <optional>
#include <sstream>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "router/fleet_obs.h"
#include "serve/client.h"
#include "util/hash.h"

namespace atlas::router {
namespace {

using serve::ErrorCode;
using serve::ErrorResponse;
using serve::Frame;
using serve::MsgType;

std::pair<MsgType, std::string> error_reply(ErrorCode code,
                                            const std::string& message) {
  ErrorResponse err;
  err.code = code;
  err.message = message;
  return {MsgType::kError, err.encode()};
}

obs::Counter& backend_counter(const char* name, const std::string& backend) {
  return obs::Registry::global().counter(name,
                                         "backend=\"" + backend + "\"");
}

void count_request(const std::string& backend) {
  backend_counter("atlas_router_requests_total", backend).inc();
}
void count_error(const std::string& backend) {
  backend_counter("atlas_router_errors_total", backend).inc();
}
void count_failover(const std::string& backend) {
  backend_counter("atlas_router_failovers_total", backend).inc();
}

/// Decode an optional selector payload ("fleet", ...); empty or undecodable
/// payloads — every pre-v2 client — mean "no selector".
std::string optional_string_payload(const std::string& payload) {
  if (payload.empty()) return std::string();
  try {
    return serve::decode_string_payload(payload);
  } catch (const serve::ProtocolError&) {
    return std::string();
  }
}

/// The trace context a routed request runs under: the client's when it sent
/// one, a fresh sampled root when tracing is on (so v1 clients still get a
/// fleet-linked trace), invalid otherwise (fully untraced fast path).
obs::TraceContext adopt_context(const obs::TraceContext& from_request) {
  if (from_request.valid()) return from_request;
  if (obs::trace_enabled()) return obs::make_root_context(/*sampled=*/true);
  return obs::TraceContext{};
}

}  // namespace

Router::Router(RouterConfig config, std::vector<BackendAddress> backends)
    : config_(std::move(config)),
      pool_(std::make_unique<BackendPool>(std::move(backends), config_.probe,
                                          config_.routing)) {}

Router::~Router() { stop(); }

void Router::start() {
  if (started_) throw std::logic_error("Router::start called twice");
  if (config_.port < 0 && config_.unix_path.empty()) {
    throw util::SocketError("router has no endpoint (TCP and UDS disabled)");
  }
  pool_->start();
  // Register the per-backend counter families up front so they render at
  // zero before the first request/error/failover — scrapers see the series
  // exist rather than inferring absence-of-incident from absence-of-metric.
  for (const BackendAddress& b : pool_->all_backends()) {
    backend_counter("atlas_router_requests_total", b.id);
    backend_counter("atlas_router_errors_total", b.id);
    backend_counter("atlas_router_failovers_total", b.id);
  }
  if (config_.port >= 0) {
    int port = config_.port;
    tcp_listener_ = util::Listener::tcp(config_.host, port);
    resolved_port_ = port;
  }
  if (!config_.unix_path.empty()) {
    unix_listener_ = util::Listener::unix_domain(config_.unix_path);
  }
  started_ = true;
  if (tcp_listener_.valid()) {
    accept_threads_.emplace_back([this] { accept_loop(&tcp_listener_); });
  }
  if (unix_listener_.valid()) {
    accept_threads_.emplace_back([this] { accept_loop(&unix_listener_); });
  }
  if (config_.verbose) {
    obs::LogLine line(obs::LogLevel::kInfo, "router");
    line.kv("event", "listening")
        .kv("backends", static_cast<std::int64_t>(pool_->all_backends().size()))
        .kv("ring", static_cast<std::int64_t>(pool_->ring_size()));
    if (resolved_port_ >= 0) {
      line.kv("host", config_.host).kv("port", resolved_port_);
    }
    if (!config_.unix_path.empty()) line.kv("uds", config_.unix_path);
  }
}

void Router::stop() {
  if (!started_ || stopped_) return;
  stopping_.store(true);
  for (std::thread& t : accept_threads_) t.join();
  accept_threads_.clear();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& c : conns_) c->sock.shutdown_read();
  }
  for (;;) {
    std::unique_ptr<Connection> conn;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (conns_.empty()) break;
      conn = std::move(conns_.back());
      conns_.pop_back();
    }
    if (conn->thread.joinable()) conn->thread.join();
  }
  tcp_listener_.close();
  unix_listener_.close();
  pool_->stop();
  stopped_ = true;
  if (config_.verbose) {
    obs::LogLine(obs::LogLevel::kInfo, "router").kv("event", "stopped");
  }
}

void Router::wait_for_stop_request(const std::function<bool()>& poll) {
  std::unique_lock<std::mutex> lock(stop_mu_);
  for (;;) {
    if (stop_requested_.load()) return;
    if (poll && poll()) return;
    if (poll) {
      stop_cv_.wait_for(lock, std::chrono::milliseconds(50));
    } else {
      stop_cv_.wait(lock);
    }
  }
}

std::string Router::stats_text() const {
  std::ostringstream os;
  const std::vector<BackendStatus> statuses = pool_->snapshot();
  std::size_t up = 0;
  for (const BackendStatus& s : statuses) {
    if (s.state == BackendState::kUp) ++up;
  }
  os << "atlas_router: " << up << "/" << statuses.size()
     << " backends up, ring size " << pool_->ring_size() << ", generation "
     << pool_->ring_generation() << ", hot keys " << pool_->hot_keys_tracked()
     << " tracked (replicas " << pool_->routing().replicas << ")\n";
  for (const BackendStatus& s : statuses) {
    os << "  " << s.address.id << ": " << backend_state_name(s.state)
       << (s.in_ring ? " (in ring)" : " (out of ring)") << ", probes "
       << s.probes_ok << " ok / " << s.probes_failed << " failed";
    if (s.probes_ok > 0) {
      os << ", models " << s.health.num_models << ", cache "
         << s.health.cache_designs << " designs / "
         << s.health.cache_total_bytes << " bytes, queue "
         << s.health.queue_depth << ", registry gen "
         << s.health.registry_generation << ", load " << s.load
         << (s.load_fresh ? " (fresh)" : " (stale)")
         << (s.overloaded ? " OVERLOADED" : "");
    }
    os << "\n";
  }
  return os.str();
}

serve::HealthResponse Router::health_snapshot() const {
  // Health is rare monitoring traffic: refresh every shard synchronously so
  // the aggregate reflects the fleet as of this request, not the last
  // background probe tick. The sweep probes concurrently (see
  // BackendPool::probe_all_now), so a downed shard costs this request one
  // probe timeout total — not one per dead backend.
  pool_->probe_all_now();
  serve::HealthResponse h = pool_->aggregate_health();
  h.draining = stopping_.load() || stop_requested_.load();
  return h;
}

void Router::accept_loop(util::Listener* listener) {
  while (!stopping_.load()) {
    std::optional<util::Socket> sock;
    try {
      sock = listener->accept(/*timeout_ms=*/100);
    } catch (const util::SocketError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    reap_finished_connections();
    if (!sock) continue;
    auto conn = std::make_unique<Connection>();
    conn->sock = std::move(*sock);
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { connection_loop(raw); });
  }
}

void Router::reap_finished_connections() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto it = std::partition(conns_.begin(), conns_.end(),
                             [](const auto& c) { return !c->done.load(); });
    for (auto move_it = it; move_it != conns_.end(); ++move_it) {
      finished.push_back(std::move(*move_it));
    }
    conns_.erase(it, conns_.end());
  }
  for (auto& c : finished) {
    if (c->thread.joinable()) c->thread.join();
  }
}

void Router::connection_loop(Connection* conn) {
  util::Socket& sock = conn->sock;
  UpstreamMap upstreams;  // owned by this thread; dies with the connection
  StreamRelay relay;
  try {
    for (;;) {
      Frame frame;
      try {
        if (!serve::read_frame(sock, frame, config_.max_frame_bytes)) break;
      } catch (const serve::ProtocolError& e) {
        const auto [type, payload] =
            error_reply(ErrorCode::kBadRequest, e.what());
        try {
          serve::write_frame(sock, type, payload);
        } catch (const util::SocketError&) {
        }
        break;
      }

      switch (frame.type) {
        case MsgType::kPing:
          serve::write_frame(sock, MsgType::kPong,
                             serve::encode_string_payload("pong"));
          break;
        case MsgType::kHealth:
          serve::write_frame(sock, MsgType::kHealthReport,
                             health_snapshot().encode());
          break;
        case MsgType::kStats:
          serve::write_frame(sock, MsgType::kStatsText,
                             serve::encode_string_payload(stats_text()));
          break;
        case MsgType::kMetrics:
          serve::write_frame(
              sock, MsgType::kMetricsText,
              serve::encode_string_payload(
                  optional_string_payload(frame.payload) == "fleet"
                      ? fleet_metrics()
                      : obs::Registry::global().render_prometheus()));
          break;
        case MsgType::kTraceDump: {
          const auto [type, payload] = trace_dump_fanout();
          serve::write_frame(sock, type, payload);
          break;
        }
        case MsgType::kShutdown:
          // Shut the router down; the backends are someone else's lifecycle
          // (an operator draining the tier does not want the fleet dead).
          {
            std::lock_guard<std::mutex> stop_lock(stop_mu_);
            stop_requested_.store(true);
          }
          stop_cv_.notify_all();
          serve::write_frame(sock, MsgType::kShutdownOk,
                             serve::encode_string_payload("ok"));
          break;
        case MsgType::kListModels: {
          // Models are replicated fleet-wide: any live shard's list is the
          // tier's list. Routed like a predict (with failover) so a dead
          // backend never blanks the answer.
          const auto [type, payload] = route_predict(upstreams, frame);
          serve::write_frame(sock, type, payload);
          break;
        }
        case MsgType::kLoadModel:
        case MsgType::kUnloadModel: {
          const auto [type, payload] = admin_fanout(frame);
          serve::write_frame(sock, type, payload);
          break;
        }
        case MsgType::kPredict: {
          const auto [type, payload] = route_predict(upstreams, frame);
          serve::write_frame(sock, type, payload);
          break;
        }
        case MsgType::kStreamBegin:
        case MsgType::kStreamChunk:
        case MsgType::kStreamEnd: {
          const auto [type, payload] = handle_stream(upstreams, frame, relay);
          serve::write_frame(sock, type, payload);
          break;
        }
        default: {
          const auto [type, payload] = error_reply(
              ErrorCode::kBadRequest,
              "unknown message type " +
                  std::to_string(static_cast<std::uint32_t>(frame.type)));
          serve::write_frame(sock, type, payload);
          break;
        }
      }
    }
  } catch (const std::exception&) {
    // Client vanished mid-write: drop this connection only.
  }
  sock.shutdown_both();
  conn->done.store(true);
}

util::Socket* Router::upstream(UpstreamMap& upstreams, const std::string& id) {
  auto it = upstreams.find(id);
  if (it != upstreams.end() && it->second.valid()) return &it->second;
  const std::optional<BackendAddress> addr = pool_->address(id);
  if (!addr) return nullptr;
  try {
    util::Socket sock =
        addr->is_unix()
            ? util::connect_unix(addr->unix_path,
                                 config_.backend_connect_timeout_ms)
            : util::connect_tcp(addr->host, addr->port,
                                config_.backend_connect_timeout_ms);
    if (config_.backend_io_timeout_ms > 0) {
      sock.set_io_timeout_ms(config_.backend_io_timeout_ms);
    }
    auto [pos, inserted] = upstreams.insert_or_assign(id, std::move(sock));
    return &pos->second;
  } catch (const util::SocketError&) {
    return nullptr;
  }
}

bool Router::forward(UpstreamMap& upstreams, const std::string& id,
                     const Frame& request, Frame& response) {
  util::Socket* sock = upstream(upstreams, id);
  if (sock == nullptr) {
    pool_->report_failure(id);
    return false;
  }
  try {
    serve::write_frame(*sock, request.type, request.payload);
    if (!serve::read_frame(*sock, response, config_.max_frame_bytes)) {
      throw serve::ProtocolError("backend closed the connection");
    }
  } catch (const std::exception&) {
    // SocketError, ProtocolError or EOF: the upstream byte stream is gone
    // or unsynchronizable either way. Drop the socket, evict the shard.
    upstreams.erase(id);
    pool_->report_failure(id);
    return false;
  }
  count_request(id);
  return true;
}

std::uint64_t Router::placement_key(std::uint64_t netlist_hash,
                                    const std::string& model) const {
  std::uint64_t lib_hash = pool_->library_hash_for(model);
  if (lib_hash == 0) lib_hash = util::fnv1a64(model);
  return util::hash_mix(netlist_hash, lib_hash);
}

std::pair<MsgType, std::string> Router::route_predict(UpstreamMap& upstreams,
                                                      const Frame& frame) {
  std::vector<std::string> chain;
  serve::PredictRequest req;
  // Keyed predicts are always re-encoded: the forwarded copy asks the
  // shard to piggyback its live load on the reply (want_queue_depth), and
  // traced ones additionally get a fresh per-attempt child span as the
  // backend's parent. Unkeyed requests (ListModels) keep the raw
  // zero-copy forwarding path.
  const bool keyed = frame.type == MsgType::kPredict;
  std::optional<obs::TraceContextScope> scope;
  std::optional<obs::ObsSpan> span;
  if (keyed) {
    try {
      req = serve::PredictRequest::decode(frame.payload);
    } catch (const serve::ProtocolError& e) {
      return error_reply(ErrorCode::kBadRequest, e.what());
    }
    chain = pool_->route_load_aware(
        placement_key(util::fnv1a64(req.netlist_verilog), req.model));
    req.ext.want_queue_depth = true;
    const obs::TraceContext ctx = adopt_context(req.ext.trace);
    if (ctx.valid()) {
      scope.emplace(ctx);
      span.emplace("router", "predict");
    }
  } else {
    // Any live shard will do; use the chain for a fixed key so the answer
    // is deterministic while the ring is.
    chain = pool_->route(0);
  }
  if (chain.empty()) {
    return error_reply(ErrorCode::kInternal,
                       "no live backends (ring is empty)");
  }
  // If every candidate sheds, the client must see the overload (retryable,
  // self-describing), not a generic routing failure.
  std::optional<std::pair<MsgType, std::string>> overloaded_reply;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const std::string& id = chain[i];
    Frame response;
    bool forwarded;
    if (keyed) {
      // The attempt span covers exactly this round trip, so a failover
      // shows up in the merged timeline as one short failed attempt
      // followed by a sibling against the successor.
      std::optional<obs::ObsSpan> attempt;
      if (span) {
        attempt.emplace("router", "forward:" + id);
        req.ext.trace = attempt->context();
      }
      Frame fwd;
      fwd.type = frame.type;
      fwd.payload = req.encode();
      forwarded = forward(upstreams, id, fwd, response);
    } else {
      forwarded = forward(upstreams, id, frame, response);
    }
    if (!forwarded) {
      count_failover(id);
      continue;
    }
    if (keyed) {
      // Strip the load tail before anything is relayed — the client's
      // payload must stay bit-identical to direct serving — and feed the
      // request-fresh depth to the routing policy.
      serve::LoadReport report;
      if (serve::strip_load_ext(response.payload, report)) {
        pool_->note_load(id, report.load, report.wait_dominated());
      }
    }
    if (response.type == MsgType::kError) {
      ErrorResponse err;
      try {
        err = ErrorResponse::decode(response.payload);
      } catch (const serve::ProtocolError&) {
        err.code = ErrorCode::kInternal;
      }
      if (err.code == ErrorCode::kShuttingDown) {
        // The shard is draining, not broken: take it out of new placements
        // and let the successor serve this request.
        pool_->report_draining(id);
        count_failover(id);
        continue;
      }
      if (err.code == ErrorCode::kOverloaded && keyed) {
        // Authoritative about the *shard's* state, not about the request:
        // the shard is healthy but past its cold-request watermark. Rank
        // it last for future picks and try the next candidate — for a hot
        // key that is a warm replica, which is exactly where the shed
        // wants this request to land.
        pool_->note_overloaded(id);
        count_failover(id);
        overloaded_reply = {response.type, response.payload};
        continue;
      }
      // Authoritative: the backend looked at the request and said no
      // (unknown model, bad request, unknown design, ...). Relay it.
      count_error(id);
    }
    return {response.type, response.payload};
  }
  if (overloaded_reply) return *overloaded_reply;
  return error_reply(ErrorCode::kInternal,
                     "all " + std::to_string(chain.size()) +
                         " candidate backends failed");
}

bool Router::replay_stream(UpstreamMap& upstreams, const std::string& id,
                           const StreamRelay& relay, Frame& error,
                           bool& authoritative) {
  authoritative = false;
  Frame request;
  request.type = MsgType::kStreamBegin;
  request.payload = relay.begin_payload;
  Frame response;
  if (!forward(upstreams, id, request, response)) return false;
  if (response.type == MsgType::kError) {
    // e.g. kUnknownDesign: the successor's cache is cold for a design-by-
    // hash stream. That is the client's fallback protocol, not ours.
    error = std::move(response);
    authoritative = true;
    return false;
  }
  request.type = MsgType::kStreamChunk;
  for (const std::string& chunk : relay.chunk_payloads) {
    request.payload = chunk;
    if (!forward(upstreams, id, request, response)) return false;
    if (response.type == MsgType::kError) {
      error = std::move(response);
      authoritative = true;
      return false;
    }
  }
  return true;
}

bool Router::failover_stream(UpstreamMap& upstreams, StreamRelay& relay,
                             std::pair<MsgType, std::string>& reply) {
  count_failover(relay.backend);
  // Traced streams: each failover attempt gets its own child span under the
  // context adopted at Begin, and the buffered Begin is re-parented under it
  // before replay so the successor's spans link through this attempt.
  std::optional<obs::TraceContextScope> scope;
  if (relay.ctx.valid()) scope.emplace(relay.ctx);
  while (++relay.chain_pos < relay.chain.size()) {
    const std::string& candidate = relay.chain[relay.chain_pos];
    std::optional<obs::ObsSpan> attempt;
    if (relay.ctx.valid()) {
      attempt.emplace("router", "stream_failover:" + candidate);
      try {
        serve::StreamBeginRequest begin =
            serve::StreamBeginRequest::decode(relay.begin_payload);
        begin.ext.trace = attempt->context();
        relay.begin_payload = begin.encode();
      } catch (const serve::ProtocolError&) {
        // The buffered payload came from our own encoder; replay it as-is
        // (losing only the re-parenting) rather than killing the stream.
      }
    }
    Frame error;
    bool authoritative = false;
    if (replay_stream(upstreams, candidate, relay, error, authoritative)) {
      relay.backend = candidate;
      return true;
    }
    if (authoritative) {
      count_error(candidate);
      reply = {error.type, error.payload};
      relay.reset();
      return false;
    }
    count_failover(candidate);
  }
  reply = error_reply(ErrorCode::kInternal,
                      "stream failover exhausted all candidate backends");
  relay.reset();
  return false;
}

std::pair<MsgType, std::string> Router::handle_stream(UpstreamMap& upstreams,
                                                      const Frame& frame,
                                                      StreamRelay& relay) {
  if (frame.type == MsgType::kStreamBegin) {
    if (relay.active) {
      // Mirror the backend contract (stream_begin while active is a
      // protocol error that discards the upload) — and close the pinned
      // upstream so the backend's per-connection stream state dies too,
      // keeping router and shard in sync for the client's retry.
      upstreams.erase(relay.backend);
      relay.reset();
      return error_reply(ErrorCode::kStreamProtocol,
                         "stream_begin while a stream is active (partial "
                         "upload discarded)");
    }
    serve::StreamBeginRequest begin;
    try {
      begin = serve::StreamBeginRequest::decode(frame.payload);
    } catch (const serve::ProtocolError& e) {
      return error_reply(ErrorCode::kBadRequest, e.what());
    }
    if (begin.trace_bytes == 0 ||
        begin.trace_bytes > config_.max_stream_bytes) {
      // Enforced here because the declared size bounds the replay buffer.
      return error_reply(
          ErrorCode::kStreamProtocol,
          "declared trace size " + std::to_string(begin.trace_bytes) +
              " outside (0, " + std::to_string(config_.max_stream_bytes) +
              "]");
    }
    const std::uint64_t netlist_hash = begin.design_hash != 0
                                           ? begin.design_hash
                                           : util::fnv1a64(begin.netlist_verilog);
    std::vector<std::string> chain =
        pool_->route_load_aware(placement_key(netlist_hash, begin.model));
    if (chain.empty()) {
      return error_reply(ErrorCode::kInternal,
                         "no live backends (ring is empty)");
    }
    const obs::TraceContext ctx = adopt_context(begin.ext.trace);
    std::optional<obs::TraceContextScope> scope;
    std::optional<obs::ObsSpan> span;
    if (ctx.valid()) {
      scope.emplace(ctx);
      span.emplace("router", "stream_begin");
    }
    // Forwarded Begins are always re-encoded: want_queue_depth makes the
    // shard piggyback its live load on the StreamEnd reply (stripped below
    // before it reaches the client).
    begin.ext.want_queue_depth = true;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      Frame response;
      Frame fwd;
      std::optional<obs::ObsSpan> attempt;
      if (span) {
        attempt.emplace("router", "forward:" + chain[i]);
        begin.ext.trace = attempt->context();
      }
      fwd.type = frame.type;
      fwd.payload = begin.encode();
      if (!forward(upstreams, chain[i], fwd, response)) {
        count_failover(chain[i]);
        continue;
      }
      if (response.type == MsgType::kError) {
        ErrorResponse err;
        try {
          err = ErrorResponse::decode(response.payload);
        } catch (const serve::ProtocolError&) {
          err.code = ErrorCode::kInternal;
        }
        if (err.code == ErrorCode::kShuttingDown) {
          pool_->report_draining(chain[i]);
          count_failover(chain[i]);
          continue;
        }
        count_error(chain[i]);
        return {response.type, response.payload};
      }
      relay.active = true;
      relay.backend = chain[i];
      relay.chain = std::move(chain);
      relay.chain_pos = i;
      relay.begin_payload = fwd.payload;
      relay.ctx = ctx;
      return {response.type, response.payload};
    }
    return error_reply(ErrorCode::kInternal,
                       "all " + std::to_string(chain.size()) +
                           " candidate backends failed");
  }

  // Chunk / End.
  if (!relay.active) {
    return error_reply(ErrorCode::kStreamProtocol,
                       frame.type == MsgType::kStreamChunk
                           ? "stream_chunk without stream_begin"
                           : "stream_end without stream_begin");
  }
  for (;;) {
    Frame response;
    if (!forward(upstreams, relay.backend, frame, response)) {
      std::pair<MsgType, std::string> reply;
      if (!failover_stream(upstreams, relay, reply)) return reply;
      continue;  // stream replayed onto the successor; re-send this frame
    }
    if (frame.type == MsgType::kStreamEnd) {
      // The load tail rides the End reply (the Begin we forwarded asked
      // for it) — on errors too. Strip before relaying anything.
      serve::LoadReport report;
      if (serve::strip_load_ext(response.payload, report)) {
        pool_->note_load(relay.backend, report.load, report.wait_dominated());
      }
    }
    if (response.type == MsgType::kError) {
      ErrorResponse err;
      try {
        err = ErrorResponse::decode(response.payload);
      } catch (const serve::ProtocolError&) {
        err.code = ErrorCode::kInternal;
      }
      if (err.code == ErrorCode::kShuttingDown) {
        // Only StreamEnd's predict dispatch answers this; the upload is
        // fully buffered, so replaying it to the successor turns a drain
        // into a transparent retry.
        pool_->report_draining(relay.backend);
        std::pair<MsgType, std::string> reply;
        if (!failover_stream(upstreams, relay, reply)) return reply;
        continue;
      }
      // Authoritative rejection: the backend discarded the upload; drop
      // our copy and relay.
      count_error(relay.backend);
      relay.reset();
      return {response.type, response.payload};
    }
    if (frame.type == MsgType::kStreamChunk) {
      relay.chunk_payloads.push_back(frame.payload);
      return {response.type, response.payload};
    }
    // StreamEnd answered with the prediction: the stream is done.
    relay.reset();
    return {response.type, response.payload};
  }
}

std::pair<MsgType, std::string> Router::admin_fanout(const Frame& frame) {
  if (!config_.allow_admin) {
    return error_reply(ErrorCode::kAdminDisabled,
                       "model administration is disabled "
                       "(start the router with --allow-admin)");
  }
  const std::vector<BackendAddress> backends = pool_->all_backends();
  std::ostringstream report;
  std::size_t ok = 0;
  // Fresh bounded connections rather than the data-path upstreams: admin
  // must reach *every* configured shard, including ones currently out of
  // the ring, and a wedged shard must cost a bounded wait, not a hang.
  serve::ClientOptions options;
  options.connect_timeout_ms = config_.backend_connect_timeout_ms;
  options.io_timeout_ms = std::max(config_.probe.timeout_ms * 10, 10000);
  for (const BackendAddress& addr : backends) {
    report << addr.id << ": ";
    try {
      util::Socket sock =
          addr.is_unix()
              ? util::connect_unix(addr.unix_path, options.connect_timeout_ms)
              : util::connect_tcp(addr.host, addr.port,
                                  options.connect_timeout_ms);
      sock.set_io_timeout_ms(options.io_timeout_ms);
      serve::write_frame(sock, frame.type, frame.payload);
      Frame response;
      if (!serve::read_frame(sock, response, config_.max_frame_bytes)) {
        throw serve::ProtocolError("backend closed the connection");
      }
      if (response.type == MsgType::kAdminOk) {
        report << serve::decode_string_payload(response.payload);
        ++ok;
      } else if (response.type == MsgType::kError) {
        const ErrorResponse err = ErrorResponse::decode(response.payload);
        report << "error " << serve::error_code_name(err.code) << ": "
               << err.message;
      } else {
        report << "unexpected response type "
               << static_cast<std::uint32_t>(response.type);
      }
    } catch (const std::exception& e) {
      report << "unreachable: " << e.what();
    }
    report << "\n";
  }
  // A load/unload changes the model -> library binding the placement key
  // depends on; refresh it now instead of waiting out a probe interval.
  pool_->probe_all_now();
  const std::string text = std::to_string(ok) + "/" +
                           std::to_string(backends.size()) + " backends ok\n" +
                           report.str();
  if (ok == backends.size()) {
    return {MsgType::kAdminOk, serve::encode_string_payload(text)};
  }
  return error_reply(ErrorCode::kInternal,
                     "admin fan-out incomplete: " + text);
}

std::pair<MsgType, std::string> Router::trace_dump_fanout() {
  if (!config_.allow_admin) {
    return error_reply(ErrorCode::kAdminDisabled,
                       "trace dump is disabled "
                       "(start the router with --allow-admin)");
  }
  serve::ClientOptions options;
  options.connect_timeout_ms = config_.backend_connect_timeout_ms;
  options.io_timeout_ms = std::max(config_.probe.timeout_ms * 10, 10000);
  std::vector<std::string> parts;
  parts.push_back(obs::Trace::drain_chrome_json());
  for (const BackendAddress& addr : pool_->all_backends()) {
    try {
      serve::Client client =
          addr.is_unix()
              ? serve::Client::connect_unix(addr.unix_path, options)
              : serve::Client::connect_tcp(addr.host, addr.port, options);
      parts.push_back(client.trace_dump_text());
    } catch (const std::exception& e) {
      // Unreachable (or admin-disabled) shard: a forensic pull should
      // return what the rest of the fleet has, not fail on the sickest
      // member. The gap is visible — that shard's pid is absent.
      if (config_.verbose) {
        obs::LogLine(obs::LogLevel::kWarn, "router")
            .kv("event", "trace_dump_skip")
            .kv("backend", addr.id)
            .kv("error", e.what());
      }
    }
  }
  return {MsgType::kTraceJson,
          serve::encode_string_payload(obs::merge_chrome_json(parts))};
}

std::string Router::fleet_metrics() {
  serve::ClientOptions options;
  options.connect_timeout_ms = config_.backend_connect_timeout_ms;
  options.io_timeout_ms = std::max(config_.probe.timeout_ms * 10, 10000);
  std::vector<std::pair<std::string, std::string>> shards;
  shards.emplace_back("router", obs::Registry::global().render_prometheus());
  for (const BackendAddress& addr : pool_->all_backends()) {
    try {
      serve::Client client =
          addr.is_unix()
              ? serve::Client::connect_unix(addr.unix_path, options)
              : serve::Client::connect_tcp(addr.host, addr.port, options);
      shards.emplace_back(addr.id, client.metrics_text());
    } catch (const std::exception&) {
      // A dead shard contributes no series; atlas_router_backend_up{...} 0
      // (in the router's own exposition) is the signal scrapers alert on.
    }
  }
  return merge_prometheus(shards);
}

}  // namespace atlas::router
