#include "power/power_report.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace atlas::power {

std::string summarize(const GroupPower& p) {
  return util::format(
      "comb=%.3f reg=%.3f clock=%.3f mem=%.3f total=%.3f (mW)", p.comb / 1e3,
      p.reg / 1e3, p.clock / 1e3, p.memory / 1e3, p.total() / 1e3);
}

std::string group_table(const GroupPower& avg) {
  std::ostringstream os;
  const double total = avg.total();
  auto row = [&](const char* name, double uw) {
    os << util::format("  %-14s %10.4f mW  %6.2f %%\n", name, uw / 1e3,
                       total > 0 ? 100.0 * uw / total : 0.0);
  };
  os << "power group breakdown (average per cycle):\n";
  row("combinational", avg.comb);
  row("register", avg.reg);
  row("clock tree", avg.clock);
  row("memory", avg.memory);
  row("total", total);
  return os.str();
}

std::string trace_csv(const PowerResult& result) {
  std::ostringstream os;
  os << "cycle,comb_uw,reg_uw,clock_uw,memory_uw,total_uw\n";
  for (int c = 0; c < result.num_cycles(); ++c) {
    const GroupPower& g = result.design(c);
    os << util::format("%d,%.4f,%.4f,%.4f,%.4f,%.4f\n", c, g.comb, g.reg,
                       g.clock, g.memory, g.total());
  }
  return os.str();
}

double mape(const std::vector<double>& labels, const std::vector<double>& preds) {
  if (labels.size() != preds.size()) {
    throw std::invalid_argument("mape: series size mismatch");
  }
  if (labels.empty()) throw std::invalid_argument("mape: empty series");
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == 0.0) {
      // Zero label with zero prediction contributes zero error; a nonzero
      // prediction against a zero label counts as 100% (paper's convention
      // for the absent gate-level clock tree).
      sum += preds[i] == 0.0 ? 0.0 : 1.0;
    } else {
      sum += std::abs(labels[i] - preds[i]) / std::abs(labels[i]);
    }
    ++counted;
  }
  return 100.0 * sum / static_cast<double>(counted);
}

std::vector<double> series_of(const PowerResult& result, Series s) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(result.num_cycles()));
  for (int c = 0; c < result.num_cycles(); ++c) {
    const GroupPower& g = result.design(c);
    switch (s) {
      case Series::kComb: out.push_back(g.comb); break;
      case Series::kReg: out.push_back(g.reg); break;
      case Series::kClock: out.push_back(g.clock); break;
      case Series::kMemory: out.push_back(g.memory); break;
      case Series::kRegPlusClock: out.push_back(g.reg + g.clock); break;
      case Series::kTotalNoMemory: out.push_back(g.total_no_memory()); break;
      case Series::kTotal: out.push_back(g.total()); break;
    }
  }
  return out;
}

}  // namespace atlas::power
