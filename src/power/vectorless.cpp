#include "power/vectorless.h"

#include <algorithm>
#include <cmath>

#include "layout/extraction.h"

namespace atlas::power {

using liberty::CellFunc;
using netlist::CellInstId;
using netlist::kNoNet;
using netlist::NetId;

namespace {

// Elementary statistic combinators under the classic independence
// assumption; toggle densities use the boolean-difference approximation.
SignalStats s_inv(const SignalStats& a) {
  return SignalStats{1.0 - a.p_high, a.toggle_density};
}
SignalStats s_and(const SignalStats& a, const SignalStats& b) {
  SignalStats o;
  o.p_high = a.p_high * b.p_high;
  o.toggle_density = a.toggle_density * b.p_high + b.toggle_density * a.p_high;
  return o;
}
SignalStats s_or(const SignalStats& a, const SignalStats& b) {
  SignalStats o;
  o.p_high = a.p_high + b.p_high - a.p_high * b.p_high;
  o.toggle_density = a.toggle_density * (1.0 - b.p_high) +
                     b.toggle_density * (1.0 - a.p_high);
  return o;
}
SignalStats s_xor(const SignalStats& a, const SignalStats& b) {
  SignalStats o;
  o.p_high = a.p_high * (1.0 - b.p_high) + b.p_high * (1.0 - a.p_high);
  o.toggle_density = a.toggle_density + b.toggle_density;
  return o;
}
SignalStats s_mux(const SignalStats& a, const SignalStats& b,
                  const SignalStats& s) {
  SignalStats o;
  o.p_high = (1.0 - s.p_high) * a.p_high + s.p_high * b.p_high;
  o.toggle_density = (1.0 - s.p_high) * a.toggle_density +
                     s.p_high * b.toggle_density +
                     s.toggle_density * std::abs(a.p_high - b.p_high);
  return o;
}

SignalStats clamp(SignalStats s) {
  s.p_high = std::clamp(s.p_high, 0.0, 1.0);
  s.toggle_density = std::clamp(s.toggle_density, 0.0, 1.0);
  return s;
}

SignalStats eval_gate(CellFunc f, const SignalStats* in) {
  switch (f) {
    case CellFunc::kInv: return s_inv(in[0]);
    case CellFunc::kBuf: return in[0];
    case CellFunc::kAnd2: return s_and(in[0], in[1]);
    case CellFunc::kAnd3: return s_and(s_and(in[0], in[1]), in[2]);
    case CellFunc::kOr2: return s_or(in[0], in[1]);
    case CellFunc::kOr3: return s_or(s_or(in[0], in[1]), in[2]);
    case CellFunc::kNand2: return s_inv(s_and(in[0], in[1]));
    case CellFunc::kNand3: return s_inv(s_and(s_and(in[0], in[1]), in[2]));
    case CellFunc::kNor2: return s_inv(s_or(in[0], in[1]));
    case CellFunc::kNor3: return s_inv(s_or(s_or(in[0], in[1]), in[2]));
    case CellFunc::kXor2: return s_xor(in[0], in[1]);
    case CellFunc::kXnor2: return s_inv(s_xor(in[0], in[1]));
    case CellFunc::kMux2: return s_mux(in[0], in[1], in[2]);
    case CellFunc::kAoi21: return s_inv(s_or(s_and(in[0], in[1]), in[2]));
    case CellFunc::kOai21: return s_inv(s_and(s_or(in[0], in[1]), in[2]));
    case CellFunc::kFaSum: return s_xor(s_xor(in[0], in[1]), in[2]);
    case CellFunc::kMaj3:
      return s_or(s_and(in[0], in[1]), s_and(in[2], s_xor(in[0], in[1])));
    case CellFunc::kTieHi: return SignalStats{1.0, 0.0};
    case CellFunc::kTieLo: return SignalStats{0.0, 0.0};
    default: return SignalStats{0.5, 0.0};
  }
}

}  // namespace

std::vector<SignalStats> propagate_vectorless(const netlist::Netlist& nl,
                                              const VectorlessConfig& config) {
  std::vector<SignalStats> stats(nl.num_nets());
  // Primary inputs.
  for (const NetId pi : nl.primary_inputs()) {
    stats[pi] = SignalStats{config.input_p_high, config.input_toggle_density};
  }
  // Clock network: the root toggles twice per cycle; clock cells scale by
  // their gating probability during propagation below.
  if (nl.clock_net() != kNoNet) stats[nl.clock_net()] = SignalStats{0.5, 2.0};

  // Sequential / macro outputs start at a neutral guess, refined by fixed-
  // point iteration (state statistics feed back through the comb logic).
  for (CellInstId id = 0; id < nl.num_cells(); ++id) {
    const liberty::Cell& lc = nl.lib_cell(id);
    if (liberty::is_sequential(lc.func) || liberty::is_macro(lc.func)) {
      for (std::size_t p = 0; p < lc.pins.size(); ++p) {
        if (lc.pins[p].dir == liberty::PinDir::kOutput) {
          stats[nl.cell(id).pin_nets[p]] =
              SignalStats{0.5, config.input_toggle_density};
        }
      }
    }
  }

  const auto topo = nl.comb_topo_order();
  constexpr int kIterations = 8;
  for (int iter = 0; iter < kIterations; ++iter) {
    // Combinational propagation (clock cells handled specially).
    for (const CellInstId id : topo) {
      const liberty::Cell& lc = nl.lib_cell(id);
      const auto& pins = nl.cell(id).pin_nets;
      const NetId out = nl.output_net(id);
      if (out == kNoNet) continue;
      if (liberty::is_clock_cell(lc.func)) {
        if (lc.func == CellFunc::kCkGate) {
          const SignalStats& ck = stats[pins[0]];
          const SignalStats& en = stats[pins[1]];
          stats[out] = SignalStats{0.5, ck.toggle_density * en.p_high};
        } else {
          stats[out] = stats[pins[0]];
        }
        continue;
      }
      SignalStats in[3];
      const int n_in = liberty::comb_input_count(lc.func);
      for (int i = 0; i < n_in; ++i) in[i] = stats[pins[static_cast<std::size_t>(i)]];
      stats[out] = clamp(eval_gate(lc.func, in));
    }
    // Sequential update: Q statistics follow D (damped).
    for (CellInstId id = 0; id < nl.num_cells(); ++id) {
      const liberty::Cell& lc = nl.lib_cell(id);
      if (!liberty::is_sequential(lc.func)) continue;
      const auto& pins = nl.cell(id).pin_nets;
      const SignalStats d = stats[pins[0]];
      const NetId q = nl.output_net(id);
      stats[q].p_high = d.p_high;
      // A register toggles at most once per cycle; its output toggle rate is
      // bounded by 2*p*(1-p) for an independent sequence.
      stats[q].toggle_density =
          std::min(d.toggle_density, 2.0 * d.p_high * (1.0 - d.p_high)) *
          config.register_damping;
    }
  }
  return stats;
}

GroupPower vectorless_average_power(const netlist::Netlist& nl,
                                    const VectorlessConfig& config) {
  const std::vector<SignalStats> stats = propagate_vectorless(nl, config);
  const liberty::Library& lib = nl.library();
  const double period = lib.clock_period_ns();
  GroupPower total;
  for (CellInstId id = 0; id < nl.num_cells(); ++id) {
    const liberty::Cell& lc = nl.lib_cell(id);
    const liberty::PowerGroup group = liberty::power_group_of(lc.type);
    double uw = lc.leakage_uw;
    const NetId out = nl.output_net(id);
    if (out != kNoNet && !liberty::is_macro(lc.func)) {
      const double load = layout::net_load_ff(nl, out);
      const double per_tr = lib.internal_energy_fj(nl.cell(id).lib_cell, load) +
                            lib.switching_energy_fj(load);
      uw += per_tr * stats[out].toggle_density / period;
    }
    if (lc.clock_pin_energy_fj > 0.0) {
      for (std::size_t p = 0; p < lc.pins.size(); ++p) {
        if (!lc.pins[p].is_clock) continue;
        uw += lc.clock_pin_energy_fj *
              stats[nl.cell(id).pin_nets[p]].toggle_density / period;
        break;
      }
    }
    if (liberty::is_macro(lc.func)) {
      // Access probability approximated from the chip-select statistic.
      const double p_active = 1.0 - stats[nl.cell(id).pin_nets[1]].p_high;
      uw += p_active * 0.5 * (lc.read_energy_fj + lc.write_energy_fj) / period;
    }
    total.add(group, uw);
  }
  return total;
}

}  // namespace atlas::power
