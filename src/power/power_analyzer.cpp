#include "power/power_analyzer.h"

#include <stdexcept>

#include "layout/extraction.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/parallel.h"

namespace atlas::power {

using liberty::CellFunc;
using liberty::PowerGroup;
using netlist::CellInstId;
using netlist::kNoNet;
using netlist::NetId;

// Grain for cycle-indexed parallel loops: one cycle is O(num_cells) work,
// so a handful of cycles per chunk amortizes dispatch while leaving enough
// chunks to fill a pool on 300-cycle traces.
constexpr std::size_t kCyclesPerChunk = 4;

double GroupPower::group(PowerGroup g) const {
  switch (g) {
    case PowerGroup::kComb: return comb;
    case PowerGroup::kRegister: return reg;
    case PowerGroup::kClockTree: return clock;
    case PowerGroup::kMemory: return memory;
  }
  throw std::logic_error("GroupPower::group: unhandled group");
}

void GroupPower::add(PowerGroup g, double uw) {
  switch (g) {
    case PowerGroup::kComb: comb += uw; return;
    case PowerGroup::kRegister: reg += uw; return;
    case PowerGroup::kClockTree: clock += uw; return;
    case PowerGroup::kMemory: memory += uw; return;
  }
  throw std::logic_error("GroupPower::add: unhandled group");
}

GroupPower& GroupPower::operator+=(const GroupPower& o) {
  comb += o.comb;
  reg += o.reg;
  clock += o.clock;
  memory += o.memory;
  return *this;
}

PowerResult::PowerResult(int num_cycles, std::size_t num_submodules)
    : num_cycles_(num_cycles), num_submodules_(num_submodules),
      design_(static_cast<std::size_t>(num_cycles)),
      submodule_(static_cast<std::size_t>(num_cycles) * num_submodules) {}

const GroupPower& PowerResult::submodule(int cycle, netlist::SubmoduleId sm) const {
  return submodule_.at(static_cast<std::size_t>(cycle) * num_submodules_ +
                       static_cast<std::size_t>(sm));
}

GroupPower& PowerResult::mutable_submodule(int cycle, netlist::SubmoduleId sm) {
  return submodule_.at(static_cast<std::size_t>(cycle) * num_submodules_ +
                       static_cast<std::size_t>(sm));
}

GroupPower PowerResult::average_design() const {
  // Ordered tree reduction: deterministic for every thread count (chunk
  // layout and combine order depend only on the cycle count).
  GroupPower avg = util::parallel_reduce(
      design_.size(), kCyclesPerChunk, GroupPower{},
      [this](std::size_t begin, std::size_t end) {
        GroupPower partial;
        for (std::size_t c = begin; c < end; ++c) partial += design_[c];
        return partial;
      },
      [](GroupPower a, const GroupPower& b) {
        a += b;
        return a;
      });
  if (num_cycles_ > 0) {
    const double inv = 1.0 / num_cycles_;
    avg.comb *= inv;
    avg.reg *= inv;
    avg.clock *= inv;
    avg.memory *= inv;
  }
  return avg;
}

std::vector<GroupPower> PowerResult::average_submodules() const {
  std::vector<GroupPower> avg(num_submodules_);
  for (int c = 0; c < num_cycles_; ++c) {
    for (std::size_t sm = 0; sm < num_submodules_; ++sm) {
      avg[sm] += submodule(c, static_cast<netlist::SubmoduleId>(sm));
    }
  }
  if (num_cycles_ > 0) {
    for (GroupPower& g : avg) {
      const double inv = 1.0 / num_cycles_;
      g.comb *= inv;
      g.reg *= inv;
      g.clock *= inv;
      g.memory *= inv;
    }
  }
  return avg;
}

namespace {

/// Static per-cell data hoisted out of the cycle loop.
struct CellPlan {
  PowerGroup group = PowerGroup::kComb;
  netlist::SubmoduleId submodule = netlist::kNoSubmodule;
  NetId out_net = kNoNet;
  double internal_fj = 0.0;     // per output transition, at actual load
  double switching_fj = 0.0;    // per output transition (0.5 C V^2)
  double clock_pin_fj = 0.0;    // per clock-pin transition
  NetId clock_pin_net = kNoNet;
  double leakage_uw = 0.0;
  // Macro-specific.
  bool is_macro = false;
  NetId csb = kNoNet, web = kNoNet;
  double read_fj = 0.0, write_fj = 0.0;
};

}  // namespace

PowerResult analyze_power(const netlist::Netlist& nl,
                          const sim::ToggleTrace& trace,
                          const PowerConfig& config) {
  if (trace.num_nets() != nl.num_nets()) {
    throw std::invalid_argument("analyze_power: trace/netlist net count mismatch");
  }
  obs::ObsSpan span("power", "analyze_power");
  {
    obs::Registry& reg = obs::Registry::global();
    static obs::Counter* analyses = &reg.counter("atlas_power_analyses_total");
    static obs::Counter* cycles = &reg.counter("atlas_power_cycles_total");
    analyses->inc();
    cycles->inc(static_cast<std::uint64_t>(
        trace.num_cycles() < 0 ? 0 : trace.num_cycles()));
  }
  const liberty::Library& lib = nl.library();
  const double period_ns = lib.clock_period_ns();

  std::vector<CellPlan> plans(nl.num_cells());
  for (CellInstId id = 0; id < nl.num_cells(); ++id) {
    const liberty::Cell& lc = nl.lib_cell(id);
    CellPlan& p = plans[id];
    p.group = liberty::power_group_of(lc.type);
    p.submodule = nl.cell(id).submodule;
    p.leakage_uw = config.include_leakage ? lc.leakage_uw : 0.0;
    p.out_net = nl.output_net(id);
    if (p.out_net != kNoNet && !liberty::is_macro(lc.func)) {
      const double load = layout::net_load_ff(nl, p.out_net);
      p.internal_fj = lib.internal_energy_fj(nl.cell(id).lib_cell, load);
      p.switching_fj = lib.switching_energy_fj(load);
    }
    // Clock-pin energy applies to sequential cells, clock gates and macros.
    if (lc.clock_pin_energy_fj > 0.0) {
      for (std::size_t pin = 0; pin < lc.pins.size(); ++pin) {
        if (lc.pins[pin].is_clock) {
          p.clock_pin_net = nl.cell(id).pin_nets[pin];
          // Library value is per edge == per transition of the clock net.
          p.clock_pin_fj = lc.clock_pin_energy_fj;
          break;
        }
      }
    }
    if (liberty::is_macro(lc.func)) {
      p.is_macro = true;
      p.csb = nl.cell(id).pin_nets[1];
      p.web = nl.cell(id).pin_nets[2];
      p.read_fj = lc.read_energy_fj;
      p.write_fj = lc.write_energy_fj;
    }
  }

  // Per-cycle accumulation: cycles are independent, so the cycle loop
  // parallelizes with no reduction — each cycle's output is produced by
  // exactly the serial inner loop, hence bit-identical at any thread count.
  PowerResult result(trace.num_cycles(), nl.submodules().size());
  util::parallel_for(static_cast<std::size_t>(trace.num_cycles()),
                     kCyclesPerChunk, [&](std::size_t cycle) {
    const int c = static_cast<int>(cycle);
    GroupPower& design = result.mutable_design(c);
    for (CellInstId id = 0; id < nl.num_cells(); ++id) {
      const CellPlan& p = plans[id];
      double energy_fj = 0.0;
      if (p.out_net != kNoNet && !p.is_macro) {
        const int tr = trace.transitions(c, p.out_net);
        if (tr > 0) energy_fj += tr * (p.internal_fj + p.switching_fj);
      }
      if (p.clock_pin_net != kNoNet) {
        const int ck_tr = trace.transitions(c, p.clock_pin_net);
        if (ck_tr > 0) energy_fj += ck_tr * p.clock_pin_fj;
      }
      if (p.is_macro) {
        // Access decode: chip-select low = active; WEB low = write.
        if (!trace.value(c, p.csb)) {
          energy_fj += trace.value(c, p.web) ? p.read_fj : p.write_fj;
        }
        // Macro output switching: lump sink-pin + wire loads of Q nets.
        // (Small next to access energy; covered by access energy here.)
      }
      const double uw = energy_fj / period_ns + p.leakage_uw;
      design.add(p.group, uw);
      if (p.submodule != netlist::kNoSubmodule) {
        result.mutable_submodule(c, p.submodule).add(p.group, uw);
      }
    }
  });
  return result;
}

}  // namespace atlas::power
