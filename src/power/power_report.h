// Text report helpers shared by the bench harnesses and examples.
#pragma once

#include <string>
#include <vector>

#include "power/power_analyzer.h"

namespace atlas::power {

/// One-line summary: "comb=... reg=... clock=... mem=... total=... (mW)".
std::string summarize(const GroupPower& p);

/// Multi-row group breakdown table (averages in mW with percentages).
std::string group_table(const GroupPower& average);

/// CSV of a per-cycle trace: cycle,comb,reg,clock,memory,total (uW).
std::string trace_csv(const PowerResult& result);

/// Mean absolute percentage error between two per-cycle scalar series.
/// Throws std::invalid_argument on size mismatch / empty input.
double mape(const std::vector<double>& labels, const std::vector<double>& preds);

/// Extract a per-cycle series of one group (or total) from a result.
enum class Series { kComb, kReg, kClock, kMemory, kRegPlusClock, kTotalNoMemory, kTotal };
std::vector<double> series_of(const PowerResult& result, Series s);

}  // namespace atlas::power
