// Vectorless average power estimation.
//
// The paper's related-work discussion (Table I) notes that most cross-design
// power models are *vectorless*: instead of simulating a workload they
// propagate user-defined input toggle rates through the netlist and report a
// single average power. This module implements that classic analysis as a
// comparison baseline: probabilistic signal statistics (P(high), toggle
// density) propagate through each gate under an independence assumption;
// average power then follows the same internal/switching/leakage physics as
// the per-cycle analyzer.
//
// By construction this cannot produce per-cycle power — which is exactly the
// gap ATLAS fills; bench_ablation quantifies the cost of vectorlessness on
// per-cycle metrics.
#pragma once

#include "netlist/netlist.h"
#include "power/power_analyzer.h"

namespace atlas::power {

struct VectorlessConfig {
  /// Assumed probability-high and toggle density (transitions/cycle) of
  /// every data primary input.
  double input_p_high = 0.5;
  double input_toggle_density = 0.2;
  /// Sequential outputs get the propagated D statistics damped by this
  /// factor (registers filter glitches and correlation).
  double register_damping = 1.0;
};

struct SignalStats {
  double p_high = 0.0;           // probability the net is 1
  double toggle_density = 0.0;   // expected transitions per cycle
};

/// Propagate signal statistics through the netlist (registers/macros are
/// fixed points solved by short iteration). Returns per-net statistics.
std::vector<SignalStats> propagate_vectorless(const netlist::Netlist& nl,
                                              const VectorlessConfig& config = {});

/// Average power per group from vectorless statistics.
GroupPower vectorless_average_power(const netlist::Netlist& nl,
                                    const VectorlessConfig& config = {});

}  // namespace atlas::power
