// Per-cycle grouped power analysis.
//
// Substitutes for Synopsys PrimeTime-PX time-based power simulation — both
// the paper's golden flow (post-layout netlist + SPEF wire caps) and its
// Gate-Level PTPX baseline (same engine on the unannotated gate-level
// netlist). Physics per cell per cycle, in the repo's unit system
// (fF / fJ / uW, see liberty/library.h):
//
//   internal   = transitions(out) * E_int(load)            [comb, CK, Q pins]
//              + clock-pin edges * E_ck                    [registers, ICGs,
//                                                           macro CLK pin]
//   switching  = transitions(out) * 0.5 * C_load * V^2,
//                C_load = annotated wire cap + sink pin caps
//   leakage    = constant per cell
//   macro      = read/write access energy per active cycle (CSB/WEB decoded
//                from the trace), matching the paper's Sec. VI-B memory model
//
// Power groups follow the paper (Sec. V footnote 3): the register group owns
// each register's clock-pin energy; the clock-tree group owns clock buffers
// and ICGs only — so a netlist without clock cells reports zero clock-tree
// power, reproducing the baseline's 100% clock-tree error.
//
// Switching power of primary-input nets has no driving cell and is excluded
// (I/O pad power is out of scope); every other net's power is attributed to
// its driver cell and thereby to exactly one sub-module.
#pragma once

#include <vector>

#include "liberty/types.h"
#include "netlist/netlist.h"
#include "sim/simulator.h"

namespace atlas::power {

/// Power of the four groups, in uW (per cycle) unless stated otherwise.
struct GroupPower {
  double comb = 0.0;
  double reg = 0.0;
  double clock = 0.0;
  double memory = 0.0;

  double total() const { return comb + reg + clock + memory; }
  /// Total excluding memory — the paper reports headline numbers without the
  /// (easy) memory group (Sec. VI-B).
  double total_no_memory() const { return comb + reg + clock; }

  double group(liberty::PowerGroup g) const;
  void add(liberty::PowerGroup g, double uw);

  GroupPower& operator+=(const GroupPower& o);
};

struct PowerConfig {
  bool include_leakage = true;
};

/// Result of a per-cycle analysis: design-level and per-sub-module traces.
class PowerResult {
 public:
  /// Empty result (0 cycles); assign a real one before use.
  PowerResult() = default;
  PowerResult(int num_cycles, std::size_t num_submodules);

  int num_cycles() const { return num_cycles_; }
  std::size_t num_submodules() const { return num_submodules_; }

  const GroupPower& design(int cycle) const { return design_.at(static_cast<std::size_t>(cycle)); }
  const GroupPower& submodule(int cycle, netlist::SubmoduleId sm) const;

  GroupPower& mutable_design(int cycle) { return design_.at(static_cast<std::size_t>(cycle)); }
  GroupPower& mutable_submodule(int cycle, netlist::SubmoduleId sm);

  /// Average over cycles of the design-level trace.
  GroupPower average_design() const;
  /// Average over cycles, per sub-module.
  std::vector<GroupPower> average_submodules() const;

 private:
  int num_cycles_ = 0;
  std::size_t num_submodules_ = 0;
  std::vector<GroupPower> design_;     // [cycle]
  std::vector<GroupPower> submodule_;  // [cycle * num_submodules + sm]
};

/// Analyze every cycle of `trace` against `nl` (whose Net::wire_cap_ff
/// annotation decides gate-level vs post-layout fidelity).
PowerResult analyze_power(const netlist::Netlist& nl,
                          const sim::ToggleTrace& trace,
                          const PowerConfig& config = {});

}  // namespace atlas::power
