#include "util/timer.h"

namespace atlas::util {

double Timer::seconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

void PhaseTimers::add(const std::string& phase, double seconds) {
  auto [it, inserted] = acc_.try_emplace(phase, 0.0);
  if (inserted) order_.push_back(phase);
  it->second += seconds;
}

void PhaseTimers::merge(const PhaseTimers& other) {
  for (const std::string& phase : other.phases()) {
    add(phase, other.get(phase));
  }
}

double PhaseTimers::get(const std::string& phase) const {
  const auto it = acc_.find(phase);
  return it == acc_.end() ? 0.0 : it->second;
}

double PhaseTimers::total() const {
  double t = 0.0;
  for (const auto& [_, v] : acc_) t += v;
  return t;
}

}  // namespace atlas::util
