// Deterministic thread-pool parallelism for the per-cycle hot paths.
//
// Design goals, in priority order:
//
//   1. **Bit-determinism across thread counts.** Work is split into chunks
//      whose layout depends only on (range size, grain) — never on the
//      number of threads. `parallel_for` writes disjoint outputs, and
//      `parallel_reduce` combines chunk partials in a fixed-shape ordered
//      binary tree, so every result is bit-identical whether it ran on 1
//      thread or 64.
//   2. **Serial fallback.** With one thread (`set_global_threads(1)`), a
//      single chunk, or inside an already-parallel region, all work runs
//      inline on the calling thread — same chunk order, same numerics, no
//      pool interaction.
//   3. **Coarse dispatch.** Chunks are meant to be large (thousands of
//      cells/rows); dispatch takes the pool mutex per chunk, which is
//      negligible at that granularity and keeps the pool logic simple
//      enough to audit.
//
// The global pool is sized by `set_global_threads` (0 = hardware
// concurrency); benches and the CLI expose this as `--threads`.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace atlas::util {

/// std::thread::hardware_concurrency, clamped to at least 1.
int hardware_concurrency();

/// Set the worker count for the global pool: 0 = hardware concurrency,
/// 1 = fully serial, N = exactly N threads (calling thread included).
void set_global_threads(int n);

/// The resolved global thread count (after the 0 -> hardware mapping).
int global_threads();

/// True while the calling thread is executing inside a parallel region;
/// nested parallel constructs run inline serially.
bool in_parallel_region();

/// Fixed-size pool of `num_threads - 1` workers; the caller of run()
/// participates as the final thread. Tasks are indexed 0..num_tasks-1 and
/// dispatched under a mutex (coarse chunks make this cheap).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Run task(i) for i in [0, num_tasks); blocks until all complete.
  /// The first exception thrown by any task is rethrown here after the
  /// batch drains. Reentrant calls (from inside a task) run inline.
  void run(std::size_t num_tasks, const std::function<void(std::size_t)>& task);

  /// The process-wide pool, sized by set_global_threads().
  static ThreadPool& global();

 private:
  struct Batch {
    const std::function<void(std::size_t)>* task = nullptr;
    std::size_t total = 0;
    std::size_t next = 0;  // guarded by pool mutex
    std::size_t done = 0;  // guarded by pool mutex
    std::exception_ptr error;
    // When the batch was posted; chunk start minus this is the queue wait
    // exported as atlas_parallel_task_queue_wait_us.
    std::chrono::steady_clock::time_point posted_at;
  };

  void worker_loop();
  void execute(Batch& b, std::size_t index);

  int num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // wakes workers
  std::condition_variable done_cv_;  // wakes the caller of run()
  Batch* batch_ = nullptr;           // current batch, null when idle
  bool stop_ = false;
};

/// Chunk layout shared by all parallel primitives: depends only on the
/// range size and grain, never on the thread count.
inline std::size_t chunk_count(std::size_t n, std::size_t grain) {
  if (n == 0) return 0;
  if (grain < 1) grain = 1;
  return (n + grain - 1) / grain;
}

/// Run fn(chunk_begin, chunk_end) over [0, n) in chunks of `grain`.
/// Chunks execute concurrently but each chunk iterates in index order, so
/// disjoint per-index writes are bit-identical to the serial loop.
template <typename Fn>
void parallel_for_chunks(std::size_t n, std::size_t grain, Fn&& fn) {
  if (n == 0) return;
  if (grain < 1) grain = 1;
  const std::size_t chunks = chunk_count(n, grain);
  auto run_chunk = [&](std::size_t c) {
    const std::size_t begin = c * grain;
    const std::size_t end = std::min(n, begin + grain);
    fn(begin, end);
  };
  if (chunks == 1) {
    run_chunk(0);
    return;
  }
  ThreadPool::global().run(chunks, run_chunk);
}

/// Run fn(i) for each i in [0, n), split into chunks of `grain`.
template <typename Fn>
void parallel_for(std::size_t n, std::size_t grain, Fn&& fn) {
  parallel_for_chunks(n, grain, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

/// Ordered deterministic reduction over [0, n):
///
///   map(chunk_begin, chunk_end) -> T   computes one chunk partial (callers
///                                      fold serially inside the chunk);
///   combine(T, T) -> T                 merges partials pairwise in a
///                                      fixed-shape left-to-right binary
///                                      tree over ascending chunk indices.
///
/// Because the chunk layout and the tree shape depend only on (n, grain),
/// the result is bit-identical for every thread count — including floating
/// point, where `combine` is not associative. Returns `identity` for an
/// empty range; a single chunk returns map(0, n) unchanged, i.e. exactly
/// the serial fold.
template <typename T, typename MapFn, typename CombineFn>
T parallel_reduce(std::size_t n, std::size_t grain, T identity, MapFn&& map,
                  CombineFn&& combine) {
  if (n == 0) return identity;
  if (grain < 1) grain = 1;
  const std::size_t chunks = chunk_count(n, grain);
  if (chunks == 1) return map(static_cast<std::size_t>(0), n);

  std::vector<T> partials(chunks, identity);
  parallel_for_chunks(n, grain, [&](std::size_t begin, std::size_t end) {
    partials[begin / grain] = map(begin, end);
  });

  // Fixed-shape pairwise tree: (((p0,p1),(p2,p3)),...) with odd tails
  // carried upward untouched. Shape is a function of `chunks` only.
  std::size_t width = chunks;
  while (width > 1) {
    const std::size_t half = width / 2;
    for (std::size_t i = 0; i < half; ++i) {
      partials[i] = combine(std::move(partials[2 * i]),
                            std::move(partials[2 * i + 1]));
    }
    if (width % 2 != 0) partials[half] = std::move(partials[width - 1]);
    width = half + width % 2;
  }
  return std::move(partials[0]);
}

}  // namespace atlas::util
