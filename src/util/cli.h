// Minimal command-line flag parser used by the bench harnesses and examples.
//
// Flags take the form `--name value` or `--name=value`; boolean flags may be
// given bare (`--verbose`). Unknown flags raise an error so typos in sweep
// scripts fail loudly.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace atlas::util {

class Cli {
 public:
  /// Declare a flag with its default and help text; returns *this for chaining.
  Cli& flag(const std::string& name, const std::string& default_value,
            const std::string& help);

  /// Parse argv. Throws std::runtime_error on unknown flags or missing values.
  /// Recognizes --help: prints usage and sets help_requested().
  void parse(int argc, const char* const* argv);

  bool help_requested() const { return help_requested_; }

  std::string str(const std::string& name) const;
  long long integer(const std::string& name) const;
  double real(const std::string& name) const;
  bool boolean(const std::string& name) const;

  /// Usage text built from declared flags.
  std::string usage(const std::string& program) const;

 private:
  struct Flag {
    std::string value;
    std::string help;
  };
  const Flag& lookup(const std::string& name) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
  bool help_requested_ = false;
};

}  // namespace atlas::util
