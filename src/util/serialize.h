// Binary serialization helpers for model / dataset caching.
//
// The experiment benches (Tables III/IV, Figs 5/6) share one trained ATLAS
// model via an on-disk cache; these helpers give a small, versioned,
// endian-naive binary format (the cache is machine-local by design).
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace atlas::util {

class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Hard ceilings on declared lengths. These codecs originally parsed only
/// trusted on-disk caches, but the serve layer now runs them over bytes
/// read off a socket: a hostile or corrupt length prefix must fail with
/// SerializeError *before* any allocation proportional to it (no
/// bad_alloc / OOM-kill allocation bombs).
inline constexpr std::uint64_t kMaxSerializedElems = 1ULL << 32;
inline constexpr std::uint64_t kMaxSerializedStringBytes = 1ULL << 32;

/// Largest up-front reserve honored for a declared element count; larger
/// (still legal) vectors grow incrementally, so a truncated stream throws
/// after a bounded allocation instead of reserving the declared size.
inline constexpr std::uint64_t kMaxEagerReserve = 1ULL << 16;

void write_u32(std::ostream& os, std::uint32_t v);
void write_u64(std::ostream& os, std::uint64_t v);
void write_i64(std::ostream& os, std::int64_t v);
void write_f64(std::ostream& os, double v);
void write_f32(std::ostream& os, float v);
void write_string(std::ostream& os, const std::string& s);

std::uint32_t read_u32(std::istream& is);
std::uint64_t read_u64(std::istream& is);
std::int64_t read_i64(std::istream& is);
double read_f64(std::istream& is);
float read_f32(std::istream& is);
std::string read_string(std::istream& is);

template <typename T, typename WriteFn>
void write_vector(std::ostream& os, const std::vector<T>& v, WriteFn fn) {
  write_u64(os, v.size());
  for (const T& x : v) fn(os, x);
}

template <typename T, typename ReadFn>
std::vector<T> read_vector(std::istream& is, ReadFn fn) {
  const std::uint64_t n = read_u64(is);
  if (n > kMaxSerializedElems) {
    throw SerializeError("vector length implausible: " + std::to_string(n));
  }
  std::vector<T> v;
  v.reserve(static_cast<std::size_t>(n < kMaxEagerReserve ? n : kMaxEagerReserve));
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(fn(is));
  return v;
}

void write_f32_span(std::ostream& os, const float* data, std::size_t n);
void read_f32_span(std::istream& is, float* data, std::size_t n);

/// Write/check a 4-byte magic + version header.
void write_header(std::ostream& os, const char magic[4], std::uint32_t version);
std::uint32_t read_header(std::istream& is, const char magic[4]);

}  // namespace atlas::util
