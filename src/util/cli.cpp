#include "util/cli.h"

#include <cstdio>
#include <stdexcept>

#include "util/strings.h"

namespace atlas::util {

Cli& Cli::flag(const std::string& name, const std::string& default_value,
               const std::string& help) {
  if (flags_.try_emplace(name, Flag{default_value, help}).second) {
    order_.push_back(name);
  }
  return *this;
}

void Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      help_requested_ = true;
      return;
    }
    if (!starts_with(arg, "--")) {
      throw std::runtime_error("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    const auto it = flags_.find(name);
    if (it == flags_.end()) throw std::runtime_error("unknown flag: --" + name);
    if (!has_value) {
      // Bare booleans allowed; otherwise consume the next token.
      if (it->second.value == "true" || it->second.value == "false") {
        if (i + 1 < argc && (std::string(argv[i + 1]) == "true" ||
                             std::string(argv[i + 1]) == "false")) {
          value = argv[++i];
        } else {
          value = "true";
        }
      } else {
        if (i + 1 >= argc) throw std::runtime_error("missing value for --" + name);
        value = argv[++i];
      }
    }
    it->second.value = value;
  }
}

const Cli::Flag& Cli::lookup(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) throw std::runtime_error("undeclared flag: --" + name);
  return it->second;
}

std::string Cli::str(const std::string& name) const { return lookup(name).value; }

long long Cli::integer(const std::string& name) const {
  return std::stoll(lookup(name).value);
}

double Cli::real(const std::string& name) const {
  return std::stod(lookup(name).value);
}

bool Cli::boolean(const std::string& name) const {
  const std::string& v = lookup(name).value;
  if (v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  throw std::runtime_error("flag --" + name + " is not boolean: " + v);
}

std::string Cli::usage(const std::string& program) const {
  std::string out = "usage: " + program + " [flags]\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    out += format("  --%-24s %s (default: %s)\n", name.c_str(), f.help.c_str(),
                  f.value.c_str());
  }
  return out;
}

}  // namespace atlas::util
