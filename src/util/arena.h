// Bump-pointer arena for per-request scratch memory.
//
// The serve hot path allocates the same shapes over and over: packed node
// feature blocks, encoder activations, GBDT feature rows, per-cycle output
// vectors. Heap-allocating each one per request costs malloc/free round
// trips and spreads hot data across the address space. An Arena instead
// carves allocations out of large recycled blocks with a bump pointer:
// allocation is a pointer increment, and `reset()` reclaims everything at
// once without running destructors or touching the system allocator.
//
// Contract: only trivially-destructible payloads (the hot path stores raw
// float/double/int arrays). `reset()` invalidates every pointer handed out
// since the last reset but keeps the blocks, so a recycled arena serves its
// second request with zero mallocs. Arena itself is single-threaded; share
// across threads only via ArenaPool, which hands each borrower an exclusive
// arena.
//
// ArenaPool is the recycling tier: `acquire()` pops a free arena (or makes
// one) and returns an RAII handle that resets and returns it on destruction.
// The dispatcher holds one pool and borrows an arena per formed batch, so
// steady-state batch execution performs no scratch mallocs at all.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

namespace atlas::util {

class Arena {
 public:
  /// `block_bytes` is the granularity of the underlying recycled blocks;
  /// oversized requests get a dedicated block of exactly their size.
  explicit Arena(std::size_t block_bytes = kDefaultBlockBytes);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw allocation, aligned to `align` (power of two). Never returns
  /// nullptr; zero-byte requests yield a valid unique pointer.
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t));

  /// Typed array of `n` trivially-destructible T, uninitialized.
  template <typename T>
  T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Recycle: every outstanding pointer becomes invalid, all blocks are
  /// retained for reuse. O(#blocks), no system-allocator traffic.
  void reset();

  /// Scoped recycling: `mark()` snapshots the bump position, `rewind(m)`
  /// frees everything allocated after the snapshot (keeping the blocks).
  /// Lets a long batched call reuse one block-sized footprint across many
  /// internal row blocks without invalidating the caller's allocations.
  struct Marker {
    std::size_t block = 0;
    std::size_t offset = 0;
    std::size_t allocated = 0;
  };
  Marker mark() const { return Marker{current_, offset_, bytes_allocated_}; }
  void rewind(const Marker& m) {
    current_ = m.block;
    offset_ = m.offset;
    bytes_allocated_ = m.allocated;
  }

  /// Bytes handed out since the last reset().
  std::size_t bytes_allocated() const { return bytes_allocated_; }
  /// Total capacity held across blocks (survives reset()).
  std::size_t bytes_reserved() const { return bytes_reserved_; }

  static constexpr std::size_t kDefaultBlockBytes = std::size_t{1} << 20;

 private:
  struct Block {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size = 0;
  };

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t current_ = 0;   // block being bumped (blocks_.size() if none)
  std::size_t offset_ = 0;    // bump offset within blocks_[current_]
  std::size_t bytes_allocated_ = 0;
  std::size_t bytes_reserved_ = 0;
};

class ArenaPool;

/// RAII loan of an arena from a pool. Movable, not copyable; returns the
/// arena (reset) to the pool on destruction.
class ArenaHandle {
 public:
  ArenaHandle() = default;
  ArenaHandle(ArenaHandle&& other) noexcept
      : pool_(other.pool_), arena_(std::move(other.arena_)) {
    other.pool_ = nullptr;
  }
  ArenaHandle& operator=(ArenaHandle&& other) noexcept;
  ~ArenaHandle();

  Arena& operator*() const { return *arena_; }
  Arena* operator->() const { return arena_.get(); }
  Arena* get() const { return arena_.get(); }
  explicit operator bool() const { return arena_ != nullptr; }

 private:
  friend class ArenaPool;
  ArenaHandle(ArenaPool* pool, std::unique_ptr<Arena> arena)
      : pool_(pool), arena_(std::move(arena)) {}

  ArenaPool* pool_ = nullptr;
  std::unique_ptr<Arena> arena_;
};

/// Thread-safe free list of arenas. Outliving every handle it issued is the
/// caller's job (the server owns the pool for its whole lifetime).
class ArenaPool {
 public:
  explicit ArenaPool(std::size_t block_bytes = Arena::kDefaultBlockBytes)
      : block_bytes_(block_bytes) {}

  /// Pop a recycled arena, or construct a fresh one if the pool is empty.
  ArenaHandle acquire();

  /// Number of arenas currently parked in the pool (test visibility).
  std::size_t idle() const;
  /// Total arenas ever constructed by this pool (test visibility: steady
  /// state should stop growing once recycling kicks in).
  std::size_t created() const { return created_.load(); }

 private:
  friend class ArenaHandle;
  void release(std::unique_ptr<Arena> arena);

  std::size_t block_bytes_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Arena>> free_;
  std::atomic<std::size_t> created_{0};
};

}  // namespace atlas::util
