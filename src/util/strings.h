// Small string helpers shared by the text-format parsers (Liberty, Verilog,
// SPEF) and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace atlas::util {

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Split on a single character; empty fields are kept.
std::vector<std::string> split(std::string_view s, char sep);

/// Split on any run of ASCII whitespace; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Render a double with fixed precision (for report tables).
std::string fixed(double v, int precision);

/// Thousands-separated integer, e.g. 289384 -> "289,384".
std::string with_commas(long long v);

}  // namespace atlas::util
