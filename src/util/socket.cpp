#include "util/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace atlas::util {
namespace {

[[noreturn]] void raise_errno(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}

sockaddr_in make_inet_addr(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw SocketError("invalid IPv4 address: " + host);
  }
  return addr;
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw SocketError("unix socket path empty or too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Socket::send_all(const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    // MSG_NOSIGNAL: a peer that disconnected mid-response must surface as
    // an error on this connection, not a process-wide SIGPIPE.
    const ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      raise_errno("send");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

bool Socket::recv_exact(void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      raise_errno("recv");
    }
    if (r == 0) {
      if (got == 0) return false;
      throw SocketError("connection closed mid-message");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(Listener&& o) noexcept
    : fd_(o.fd_), unlink_path_(std::move(o.unlink_path_)) {
  o.fd_ = -1;
  o.unlink_path_.clear();
}

Listener& Listener::operator=(Listener&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    unlink_path_ = std::move(o.unlink_path_);
    o.fd_ = -1;
    o.unlink_path_.clear();
  }
  return *this;
}

Listener Listener::tcp(const std::string& host, int& port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) raise_errno("socket");
  Listener l;
  l.fd_ = fd;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_inet_addr(host, port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    raise_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, backlog) != 0) raise_errno("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    raise_errno("getsockname");
  }
  port = ntohs(bound.sin_port);
  return l;
}

Listener Listener::unix_domain(const std::string& path, int backlog) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) raise_errno("socket");
  Listener l;
  l.fd_ = fd;
  sockaddr_un addr = make_unix_addr(path);
  ::unlink(path.c_str());  // stale socket file from a previous run
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    raise_errno("bind " + path);
  }
  if (::listen(fd, backlog) != 0) raise_errno("listen");
  l.unlink_path_ = path;
  return l;
}

std::optional<Socket> Listener::accept(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  const int n = ::poll(&pfd, 1, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return std::nullopt;
    raise_errno("poll");
  }
  if (n == 0) return std::nullopt;
  const int cfd = ::accept(fd_, nullptr, nullptr);
  if (cfd < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return std::nullopt;
    raise_errno("accept");
  }
  return Socket(cfd);
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!unlink_path_.empty()) {
    ::unlink(unlink_path_.c_str());
    unlink_path_.clear();
  }
}

Socket connect_tcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) raise_errno("socket");
  Socket s(fd);
  sockaddr_in addr = make_inet_addr(host, port);
  while (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno == EINTR) continue;
    raise_errno("connect " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  // Request/response framing: flush small frames immediately.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return s;
}

Socket connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) raise_errno("socket");
  Socket s(fd);
  sockaddr_un addr = make_unix_addr(path);
  while (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno == EINTR) continue;
    raise_errno("connect " + path);
  }
  return s;
}

}  // namespace atlas::util
