#include "util/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

namespace atlas::util {
namespace {

[[noreturn]] void raise_errno(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}

sockaddr_in make_inet_addr(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw SocketError("invalid IPv4 address: " + host);
  }
  return addr;
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw SocketError("unix socket path empty or too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Socket::send_all(const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    // MSG_NOSIGNAL: a peer that disconnected mid-response must surface as
    // an error on this connection, not a process-wide SIGPIPE.
    const ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw SocketError("send timed out");
      }
      raise_errno("send");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

bool Socket::recv_exact(void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw SocketError("recv timed out");
      }
      raise_errno("recv");
    }
    if (r == 0) {
      if (got == 0) return false;
      throw SocketError("connection closed mid-message");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void Socket::set_io_timeout_ms(int timeout_ms) {
  timeval tv{};
  if (timeout_ms > 0) {
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  }
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    raise_errno("setsockopt SO_RCVTIMEO");
  }
  if (::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    raise_errno("setsockopt SO_SNDTIMEO");
  }
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(Listener&& o) noexcept
    : fd_(o.fd_), unlink_path_(std::move(o.unlink_path_)) {
  o.fd_ = -1;
  o.unlink_path_.clear();
}

Listener& Listener::operator=(Listener&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    unlink_path_ = std::move(o.unlink_path_);
    o.fd_ = -1;
    o.unlink_path_.clear();
  }
  return *this;
}

Listener Listener::tcp(const std::string& host, int& port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) raise_errno("socket");
  Listener l;
  l.fd_ = fd;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_inet_addr(host, port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    raise_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, backlog) != 0) raise_errno("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    raise_errno("getsockname");
  }
  port = ntohs(bound.sin_port);
  return l;
}

Listener Listener::unix_domain(const std::string& path, int backlog) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) raise_errno("socket");
  Listener l;
  l.fd_ = fd;
  sockaddr_un addr = make_unix_addr(path);
  ::unlink(path.c_str());  // stale socket file from a previous run
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    raise_errno("bind " + path);
  }
  if (::listen(fd, backlog) != 0) raise_errno("listen");
  l.unlink_path_ = path;
  return l;
}

std::optional<Socket> Listener::accept(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  const int n = ::poll(&pfd, 1, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return std::nullopt;
    raise_errno("poll");
  }
  if (n == 0) return std::nullopt;
  const int cfd = ::accept(fd_, nullptr, nullptr);
  if (cfd < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return std::nullopt;
    raise_errno("accept");
  }
  // Request/response framing: flush small frames immediately (mirrors
  // connect_tcp). Harmless ENOTSUP on AF_UNIX listeners.
  const int one = 1;
  ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(cfd);
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!unlink_path_.empty()) {
    ::unlink(unlink_path_.c_str());
    unlink_path_.clear();
  }
}

namespace {

/// Connect `fd` to `addr`, optionally bounded by a timeout. A bounded
/// connect runs non-blocking (connect + poll for writability + SO_ERROR
/// check) and restores the blocking flag before returning, so callers see
/// an ordinary blocking socket either way.
void connect_fd(int fd, const sockaddr* addr, socklen_t len,
                const std::string& what, int timeout_ms) {
  if (timeout_ms <= 0) {
    while (::connect(fd, addr, len) != 0) {
      if (errno == EINTR) continue;
      raise_errno("connect " + what);
    }
    return;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) raise_errno("fcntl F_GETFL");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    raise_errno("fcntl F_SETFL O_NONBLOCK");
  }
  int rc = ::connect(fd, addr, len);
  if (rc != 0 && errno != EINPROGRESS && errno != EINTR) {
    raise_errno("connect " + what);
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n < 0) raise_errno("poll");
    if (n == 0) {
      throw SocketError("connect " + what + " timed out after " +
                        std::to_string(timeout_ms) + "ms");
    }
    int err = 0;
    socklen_t errlen = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &errlen) != 0) {
      raise_errno("getsockopt SO_ERROR");
    }
    if (err != 0) {
      throw SocketError("connect " + what + ": " + std::strerror(err));
    }
  }
  if (::fcntl(fd, F_SETFL, flags) != 0) raise_errno("fcntl F_SETFL restore");
}

}  // namespace

Socket connect_tcp(const std::string& host, int port, int connect_timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) raise_errno("socket");
  Socket s(fd);
  sockaddr_in addr = make_inet_addr(host, port);
  connect_fd(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr),
             host + ":" + std::to_string(port), connect_timeout_ms);
  const int one = 1;
  // Request/response framing: flush small frames immediately.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return s;
}

Socket connect_unix(const std::string& path, int connect_timeout_ms) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) raise_errno("socket");
  Socket s(fd);
  sockaddr_un addr = make_unix_addr(path);
  connect_fd(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr), path,
             connect_timeout_ms);
  return s;
}

}  // namespace atlas::util
