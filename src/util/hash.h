// Content hashing for cache keys.
//
// FNV-1a 64-bit: tiny, dependency-free, and stable across platforms and
// processes — the serve-layer feature cache keys designs by the hash of
// their Verilog text, and the same key must resolve identically for every
// client of one daemon. Not cryptographic; collision resistance at the
// scale of a design cache (tens of entries) is more than sufficient.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace atlas::util {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// FNV-1a over a byte range, optionally continuing a previous hash.
std::uint64_t fnv1a64(const void* data, std::size_t n,
                      std::uint64_t seed = kFnvOffsetBasis);

inline std::uint64_t fnv1a64(std::string_view s,
                             std::uint64_t seed = kFnvOffsetBasis) {
  return fnv1a64(s.data(), s.size(), seed);
}

/// Mix an integer into a running hash (for composite cache keys).
std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v);

/// 16-digit lowercase hex rendering (stable textual cache-key form).
std::string hash_hex(std::uint64_t h);

}  // namespace atlas::util
