#include "util/parallel.h"

#include <chrono>
#include <memory>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace atlas::util {

namespace {

// Pool observability. Chunks are coarse by design (thousands of cells per
// chunk), so a pair of steady_clock reads per chunk and a relaxed
// fetch_add per batch are noise next to the work being dispatched.
// References are cached once; the registry series outlive the pool.
struct PoolMetrics {
  obs::Counter& batches;        // pool batches dispatched (incl. inline)
  obs::Counter& tasks;          // chunk tasks executed
  obs::Counter& inline_tasks;   // tasks run inline (serial/nested/fallback)
  obs::Counter& busy_us;        // summed per-worker chunk execution time
  obs::Histogram& queue_wait;   // us between batch post and chunk start
};

PoolMetrics& pool_metrics() {
  obs::Registry& reg = obs::Registry::global();
  static PoolMetrics* m = new PoolMetrics{
      reg.counter("atlas_parallel_batches_total"),
      reg.counter("atlas_parallel_tasks_total"),
      reg.counter("atlas_parallel_inline_tasks_total"),
      reg.counter("atlas_parallel_worker_busy_us_total"),
      reg.histogram("atlas_parallel_task_queue_wait_us")};
  return *m;
}

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

// Global pool configuration. The pool is rebuilt lazily when the requested
// thread count changes; benches/tests call set_global_threads() from the
// main thread before spawning parallel work.
std::mutex g_config_mu;
int g_requested_threads = 0;  // 0 = hardware concurrency
std::unique_ptr<ThreadPool> g_pool;

int resolve(int requested) {
  return requested <= 0 ? hardware_concurrency() : requested;
}

// Depth of nested parallel regions on this thread; > 0 means "run inline".
thread_local int tl_parallel_depth = 0;

}  // namespace

int hardware_concurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void set_global_threads(int n) {
  std::lock_guard<std::mutex> lock(g_config_mu);
  g_requested_threads = n < 0 ? 0 : n;
  if (g_pool && g_pool->num_threads() != resolve(g_requested_threads)) {
    g_pool.reset();  // rebuilt at next global() call with the new size
  }
}

int global_threads() {
  std::lock_guard<std::mutex> lock(g_config_mu);
  return resolve(g_requested_threads);
}

bool in_parallel_region() { return tl_parallel_depth > 0; }

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_config_mu);
  if (!g_pool) {
    g_pool = std::make_unique<ThreadPool>(resolve(g_requested_threads));
  }
  return *g_pool;
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::execute(Batch& b, std::size_t index) {
  PoolMetrics& pm = pool_metrics();
  const auto start = std::chrono::steady_clock::now();
  pm.queue_wait.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(start -
                                                            b.posted_at)
          .count()));
  ++tl_parallel_depth;
  try {
    (*b.task)(index);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!b.error) b.error = std::current_exception();
  }
  --tl_parallel_depth;
  pm.tasks.inc();
  pm.busy_us.inc(elapsed_us(start));
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] {
      return stop_ || (batch_ != nullptr && batch_->next < batch_->total);
    });
    if (stop_) return;
    Batch& b = *batch_;
    const std::size_t index = b.next++;
    lock.unlock();
    execute(b, index);
    lock.lock();
    if (++b.done == b.total) {
      if (batch_ == &b) batch_ = nullptr;
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::run(std::size_t num_tasks,
                     const std::function<void(std::size_t)>& task) {
  if (num_tasks == 0) return;
  PoolMetrics& pm = pool_metrics();
  // Serial pool, single task, or nested call: run inline in index order.
  if (num_threads_ == 1 || num_tasks == 1 || tl_parallel_depth > 0) {
    pm.batches.inc();
    pm.inline_tasks.inc(num_tasks);
    ++tl_parallel_depth;
    try {
      for (std::size_t i = 0; i < num_tasks; ++i) task(i);
    } catch (...) {
      --tl_parallel_depth;
      throw;
    }
    --tl_parallel_depth;
    return;
  }

  Batch b;
  b.task = &task;
  b.total = num_tasks;
  std::unique_lock<std::mutex> lock(mu_);
  if (batch_ != nullptr) {
    // A concurrent external run() is already in flight; don't interleave
    // two batches — just run this one inline.
    lock.unlock();
    pm.batches.inc();
    pm.inline_tasks.inc(num_tasks);
    for (std::size_t i = 0; i < num_tasks; ++i) task(i);
    return;
  }
  obs::ObsSpan span("parallel", "pool_batch");
  pm.batches.inc();
  b.posted_at = std::chrono::steady_clock::now();
  batch_ = &b;
  work_cv_.notify_all();

  // The caller participates until the task queue drains...
  while (b.next < b.total) {
    const std::size_t index = b.next++;
    lock.unlock();
    execute(b, index);
    lock.lock();
    if (++b.done == b.total) {
      if (batch_ == &b) batch_ = nullptr;
      done_cv_.notify_all();
    }
  }
  // ...then waits for in-flight chunks on the workers.
  done_cv_.wait(lock, [&b] { return b.done == b.total; });
  if (batch_ == &b) batch_ = nullptr;
  if (b.error) std::rethrow_exception(b.error);
}

}  // namespace atlas::util
