#include "util/hash.h"

#include <cstdio>

namespace atlas::util {

std::uint64_t fnv1a64(const void* data, std::size_t n, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  return fnv1a64(bytes, sizeof(bytes), h);
}

std::string hash_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return std::string(buf, 16);
}

}  // namespace atlas::util
