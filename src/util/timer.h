// Wall-clock timing helpers for the runtime experiments (Table IV).
#pragma once

#include <chrono>
#include <string>
#include <unordered_map>
#include <vector>

namespace atlas::util {

/// Simple wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or last reset().
  double seconds() const;

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Named accumulating timers: the Table IV harness attributes wall time to
/// pipeline phases (preprocess / inference / P&R / simulation).
class PhaseTimers {
 public:
  /// Add `seconds` to the named phase (creates it on first use).
  void add(const std::string& phase, double seconds);

  /// Fold another timer set into this one (phase order: ours first, then
  /// any new phases in `other`'s order). Lets parallel pipeline stages
  /// time themselves locally and merge on the main thread afterwards.
  void merge(const PhaseTimers& other);

  /// Total accumulated seconds for a phase (0 if never recorded).
  double get(const std::string& phase) const;

  /// Phases in first-recorded order.
  const std::vector<std::string>& phases() const { return order_; }

  /// Sum over all phases.
  double total() const;

 private:
  std::unordered_map<std::string, double> acc_;
  std::vector<std::string> order_;
};

/// RAII scope timer that adds its lifetime to a PhaseTimers entry.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimers& timers, std::string phase)
      : timers_(timers), phase_(std::move(phase)) {}
  ~ScopedPhase() { timers_.add(phase_, timer_.seconds()); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimers& timers_;
  std::string phase_;
  Timer timer_;
};

}  // namespace atlas::util
