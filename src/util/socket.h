// Thin RAII wrappers over POSIX stream sockets (TCP and Unix-domain).
//
// Built for the serve subsystem's length-prefixed framing: blocking
// `send_all` / `recv_exact` primitives with EINTR handling, SIGPIPE
// suppressed per send, and a poll-based `accept` with timeout so accept
// loops can observe a stop flag without racing fd teardown from another
// thread. A listener bound to TCP port 0 reports the kernel-chosen port,
// which is how the tests run servers on ephemeral loopback ports.
#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>

namespace atlas::util {

class SocketError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A connected stream socket (move-only; closes on destruction).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Write exactly n bytes; throws SocketError on failure.
  void send_all(const void* data, std::size_t n);

  /// Read exactly n bytes. Returns false on clean EOF before the first
  /// byte; throws SocketError on mid-buffer EOF or errors.
  bool recv_exact(void* data, std::size_t n);

  /// Bound every subsequent recv/send (SO_RCVTIMEO / SO_SNDTIMEO): a peer
  /// that stops reading or never answers surfaces as SocketError("... timed
  /// out") instead of blocking the caller forever. 0 restores blocking
  /// forever. Routing-tier probers and failover paths depend on this — a
  /// wedged backend must cost a bounded wait, not a stuck thread.
  void set_io_timeout_ms(int timeout_ms);

  /// Half-close the read side: a peer (or another thread) blocked in
  /// recv_exact observes EOF while pending writes still flush.
  void shutdown_read();
  /// Full shutdown (both directions).
  void shutdown_both();

  void close();

 private:
  int fd_ = -1;
};

/// A listening socket; `accept` polls so callers can check a stop flag.
class Listener {
 public:
  Listener() = default;
  ~Listener() { close(); }
  Listener(Listener&& o) noexcept;
  Listener& operator=(Listener&& o) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Bind + listen on host:port. Port 0 picks an ephemeral port; the
  /// resolved port is returned through `port`.
  static Listener tcp(const std::string& host, int& port, int backlog = 64);

  /// Bind + listen on a Unix-domain socket path (unlinks a stale file).
  static Listener unix_domain(const std::string& path, int backlog = 64);

  bool valid() const { return fd_ >= 0; }

  /// Wait up to timeout_ms for a connection; nullopt on timeout.
  std::optional<Socket> accept(int timeout_ms);

  void close();

 private:
  int fd_ = -1;
  std::string unlink_path_;  // UDS file removed on close
};

/// Connect to host:port. `connect_timeout_ms > 0` bounds the handshake
/// (non-blocking connect + poll) and throws SocketError on expiry; 0 blocks
/// until the kernel gives up. The returned socket is blocking either way.
Socket connect_tcp(const std::string& host, int port,
                   int connect_timeout_ms = 0);
Socket connect_unix(const std::string& path, int connect_timeout_ms = 0);

}  // namespace atlas::util
