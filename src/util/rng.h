// Deterministic random-number utilities.
//
// Every stochastic stage of the ATLAS pipeline (design generation, rewrites,
// workload stimulus, masking, model init) takes an explicit seed so that the
// whole experiment flow is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace atlas::util {

/// Small, fast, deterministic PRNG (xoshiro256** core seeded by splitmix64).
/// Not cryptographic; intended for reproducible simulation only.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi);

  /// Bernoulli draw with probability `p` of true.
  bool next_bool(double p = 0.5);

  /// Standard normal via Box-Muller (cached pair).
  double next_gaussian();

  /// Gaussian with given mean / stddev.
  double next_gaussian(double mean, double stddev);

  /// Index drawn from a discrete distribution given non-negative weights.
  /// Requires at least one strictly positive weight.
  std::size_t next_weighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child stream (for per-submodule / per-cycle use).
  Rng fork();

 private:
  std::uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace atlas::util
