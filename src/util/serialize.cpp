#include "util/serialize.h"

#include <cstring>

namespace atlas::util {
namespace {

template <typename T>
void write_raw(std::ostream& os, T v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  if (!os) throw SerializeError("write failed");
}

template <typename T>
T read_raw(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw SerializeError("read failed (truncated stream)");
  return v;
}

}  // namespace

void write_u32(std::ostream& os, std::uint32_t v) { write_raw(os, v); }
void write_u64(std::ostream& os, std::uint64_t v) { write_raw(os, v); }
void write_i64(std::ostream& os, std::int64_t v) { write_raw(os, v); }
void write_f64(std::ostream& os, double v) { write_raw(os, v); }
void write_f32(std::ostream& os, float v) { write_raw(os, v); }

void write_string(std::ostream& os, const std::string& s) {
  write_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
  if (!os) throw SerializeError("write failed");
}

std::uint32_t read_u32(std::istream& is) { return read_raw<std::uint32_t>(is); }
std::uint64_t read_u64(std::istream& is) { return read_raw<std::uint64_t>(is); }
std::int64_t read_i64(std::istream& is) { return read_raw<std::int64_t>(is); }
double read_f64(std::istream& is) { return read_raw<double>(is); }
float read_f32(std::istream& is) { return read_raw<float>(is); }

std::string read_string(std::istream& is) {
  const std::uint64_t n = read_u64(is);
  if (n > kMaxSerializedStringBytes) {
    throw SerializeError("string length implausible");
  }
  // Fill incrementally past the eager-reserve cap so a hostile length
  // prefix on a short stream fails after a bounded allocation.
  std::string s;
  std::uint64_t remaining = n;
  char buf[4096];
  s.reserve(static_cast<std::size_t>(n < kMaxEagerReserve ? n : kMaxEagerReserve));
  while (remaining > 0) {
    const std::size_t chunk = static_cast<std::size_t>(
        remaining < sizeof(buf) ? remaining : sizeof(buf));
    is.read(buf, static_cast<std::streamsize>(chunk));
    if (!is) throw SerializeError("read failed (truncated string)");
    s.append(buf, chunk);
    remaining -= chunk;
  }
  return s;
}

void write_f32_span(std::ostream& os, const float* data, std::size_t n) {
  write_u64(os, n);
  os.write(reinterpret_cast<const char*>(data),
           static_cast<std::streamsize>(n * sizeof(float)));
  if (!os) throw SerializeError("write failed");
}

void read_f32_span(std::istream& is, float* data, std::size_t n) {
  const std::uint64_t stored = read_u64(is);
  if (stored > kMaxSerializedElems) {
    throw SerializeError("f32 span length implausible");
  }
  if (stored != n) throw SerializeError("f32 span size mismatch");
  is.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(n * sizeof(float)));
  if (!is) throw SerializeError("read failed (truncated span)");
}

void write_header(std::ostream& os, const char magic[4], std::uint32_t version) {
  os.write(magic, 4);
  write_u32(os, version);
  if (!os) throw SerializeError("write failed");
}

std::uint32_t read_header(std::istream& is, const char magic[4]) {
  char got[4];
  is.read(got, 4);
  if (!is || std::memcmp(got, magic, 4) != 0) {
    throw SerializeError("bad magic in serialized stream");
  }
  return read_u32(is);
}

}  // namespace atlas::util
