#include "util/rng.h"

#include <cmath>
#include <stdexcept>

namespace atlas::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound == 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                              std::numeric_limits<std::uint64_t>::max() % bound;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % bound;
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::next_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64()
                                                  : next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::next_bool(double p) { return next_double() < p; }

double Rng::next_gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = next_double();
  while (u1 <= 1e-300) u1 = next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::next_gaussian(double mean, double stddev) {
  return mean + stddev * next_gaussian();
}

std::size_t Rng::next_weighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::next_weighted: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("Rng::next_weighted: zero total weight");
  double x = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() { return Rng(next_u64() ^ 0xA5A5A5A55A5A5A5AULL); }

}  // namespace atlas::util
