#include "util/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cctype>

namespace atlas::util {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    const std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

std::string fixed(double v, int precision) {
  return format("%.*f", precision, v);
}

std::string with_commas(long long v) {
  const bool neg = v < 0;
  std::string digits = std::to_string(neg ? -v : v);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return neg ? "-" + out : out;
}

}  // namespace atlas::util
