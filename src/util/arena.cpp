#include "util/arena.h"

#include <cstdint>

namespace atlas::util {

Arena::Arena(std::size_t block_bytes)
    : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes) {}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (align == 0) align = 1;
  if (bytes == 0) bytes = 1;
  // Try to bump within the current block, then scan forward through retained
  // blocks (a recycled arena starts at block 0 with full capacity).
  while (current_ < blocks_.size()) {
    Block& b = blocks_[current_];
    const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(b.data.get());
    const std::uintptr_t raw = base + offset_;
    const std::uintptr_t aligned = (raw + (align - 1)) & ~std::uintptr_t(align - 1);
    const std::size_t start = static_cast<std::size_t>(aligned - base);
    if (start + bytes <= b.size) {
      offset_ = start + bytes;
      bytes_allocated_ += bytes;
      return reinterpret_cast<void*>(aligned);
    }
    ++current_;
    offset_ = 0;
  }
  // No retained block fits: grow. Oversized requests get a dedicated block
  // so one huge batch doesn't force every future block to that size.
  const std::size_t want = bytes + align;
  const std::size_t size = want > block_bytes_ ? want : block_bytes_;
  Block b;
  b.data = std::make_unique<std::uint8_t[]>(size);
  b.size = size;
  bytes_reserved_ += size;
  blocks_.push_back(std::move(b));
  current_ = blocks_.size() - 1;
  offset_ = 0;
  Block& nb = blocks_[current_];
  const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(nb.data.get());
  const std::uintptr_t aligned = (base + (align - 1)) & ~std::uintptr_t(align - 1);
  offset_ = static_cast<std::size_t>(aligned - base) + bytes;
  bytes_allocated_ += bytes;
  return reinterpret_cast<void*>(aligned);
}

void Arena::reset() {
  current_ = 0;
  offset_ = 0;
  bytes_allocated_ = 0;
}

ArenaHandle& ArenaHandle::operator=(ArenaHandle&& other) noexcept {
  if (this != &other) {
    if (pool_ && arena_) pool_->release(std::move(arena_));
    pool_ = other.pool_;
    arena_ = std::move(other.arena_);
    other.pool_ = nullptr;
  }
  return *this;
}

ArenaHandle::~ArenaHandle() {
  if (pool_ && arena_) pool_->release(std::move(arena_));
}

ArenaHandle ArenaPool::acquire() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      std::unique_ptr<Arena> a = std::move(free_.back());
      free_.pop_back();
      return ArenaHandle(this, std::move(a));
    }
  }
  created_.fetch_add(1);
  return ArenaHandle(this, std::make_unique<Arena>(block_bytes_));
}

std::size_t ArenaPool::idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_.size();
}

void ArenaPool::release(std::unique_ptr<Arena> arena) {
  arena->reset();
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(arena));
}

}  // namespace atlas::util
