#include "transform/rewrite.h"

#include <string>

#include "util/rng.h"

namespace atlas::transform {

using liberty::CellFunc;
using netlist::CellInstId;
using netlist::kNoNet;
using netlist::NetId;
using netlist::Netlist;
using netlist::SubmoduleId;

namespace {

/// In-place rewriting context over a netlist copy.
class Rewriter {
 public:
  Rewriter(Netlist& nl, const RewriteConfig& cfg, RewriteStats& stats)
      : nl_(nl), cfg_(cfg), stats_(stats), rng_(cfg.seed) {}

  void run() {
    // Gate rewrites first (over the original cell population; cells added by
    // rewrites are not themselves rewritten this pass).
    const std::size_t original_cells = nl_.num_cells();
    for (CellInstId id = 0; id < original_cells; ++id) {
      rewrite_cell(id);
    }
    // Net-level insertions over the original net population.
    const std::size_t original_nets = nl_.num_nets();
    for (NetId net = 0; net < original_nets; ++net) {
      maybe_insert_on_net(net);
    }
    nl_.compact();
    nl_.check();
  }

 private:
  NetId new_net() { return nl_.add_net("rwn" + std::to_string(nl_.num_nets())); }

  CellInstId add_gate(CellFunc func, std::vector<NetId> pins, SubmoduleId sm) {
    const liberty::CellId lc = nl_.library().cell_for(func, 1);
    return nl_.add_cell("rw" + std::to_string(nl_.num_cells()), lc,
                        std::move(pins), sm);
  }

  /// Emit gate with a fresh output net; returns the output net.
  NetId gate(CellFunc func, std::vector<NetId> ins, SubmoduleId sm) {
    const NetId out = new_net();
    ins.push_back(out);
    add_gate(func, std::move(ins), sm);
    return out;
  }

  void rewrite_cell(CellInstId id) {
    const liberty::Cell& lc = nl_.lib_cell(id);
    const SubmoduleId sm = nl_.cell(id).submodule;
    const std::vector<NetId> pins = nl_.cell(id).pin_nets;  // copy: we mutate
    const CellFunc f = lc.func;

    switch (f) {
      case CellFunc::kAnd2:
      case CellFunc::kOr2:
      case CellFunc::kNand2:
      case CellFunc::kNor2:
      case CellFunc::kXor2:
      case CellFunc::kXnor2: {
        if (!rng_.next_bool(cfg_.p_demorgan)) break;
        const NetId a = pins[0], b = pins[1], y = pins[2];
        nl_.disconnect_cell(id);
        // Dual gate followed by an inverter driving the original output.
        CellFunc dual;
        switch (f) {
          case CellFunc::kAnd2: dual = CellFunc::kNand2; break;
          case CellFunc::kOr2: dual = CellFunc::kNor2; break;
          case CellFunc::kNand2: dual = CellFunc::kAnd2; break;
          case CellFunc::kNor2: dual = CellFunc::kOr2; break;
          case CellFunc::kXor2: dual = CellFunc::kXnor2; break;
          default: dual = CellFunc::kXor2; break;
        }
        const NetId t = gate(dual, {a, b}, sm);
        add_gate(CellFunc::kInv, {t, y}, sm);
        ++stats_.demorgan;
        return;
      }
      case CellFunc::kAnd3:
      case CellFunc::kOr3:
      case CellFunc::kNand3:
      case CellFunc::kNor3: {
        if (!rng_.next_bool(cfg_.p_split_wide)) break;
        const NetId a = pins[0], b = pins[1], c = pins[2], y = pins[3];
        nl_.disconnect_cell(id);
        if (f == CellFunc::kAnd3) {
          const NetId t = gate(CellFunc::kAnd2, {a, b}, sm);
          add_gate(CellFunc::kAnd2, {t, c, y}, sm);
        } else if (f == CellFunc::kOr3) {
          const NetId t = gate(CellFunc::kOr2, {a, b}, sm);
          add_gate(CellFunc::kOr2, {t, c, y}, sm);
        } else if (f == CellFunc::kNand3) {
          const NetId t = gate(CellFunc::kAnd2, {a, b}, sm);
          add_gate(CellFunc::kNand2, {t, c, y}, sm);
        } else {
          const NetId t = gate(CellFunc::kOr2, {a, b}, sm);
          add_gate(CellFunc::kNor2, {t, c, y}, sm);
        }
        ++stats_.split_wide;
        return;
      }
      case CellFunc::kMux2: {
        if (!rng_.next_bool(cfg_.p_mux_decompose)) break;
        // y = s ? b : a = NAND(NAND(a, ~s), NAND(b, s)).
        const NetId a = pins[0], b = pins[1], s = pins[2], y = pins[3];
        nl_.disconnect_cell(id);
        const NetId ns = gate(CellFunc::kInv, {s}, sm);
        const NetId t0 = gate(CellFunc::kNand2, {a, ns}, sm);
        const NetId t1 = gate(CellFunc::kNand2, {b, s}, sm);
        add_gate(CellFunc::kNand2, {t0, t1, y}, sm);
        ++stats_.mux_decompose;
        return;
      }
      case CellFunc::kFaSum: {
        if (!rng_.next_bool(cfg_.p_adder_decompose)) break;
        const NetId a = pins[0], b = pins[1], c = pins[2], y = pins[3];
        nl_.disconnect_cell(id);
        const NetId t = gate(CellFunc::kXor2, {a, b}, sm);
        add_gate(CellFunc::kXor2, {t, c, y}, sm);
        ++stats_.adder_decompose;
        return;
      }
      case CellFunc::kMaj3: {
        if (!rng_.next_bool(cfg_.p_adder_decompose)) break;
        // maj(a,b,c) = (a & b) | (c & (a ^ b)).
        const NetId a = pins[0], b = pins[1], c = pins[2], y = pins[3];
        nl_.disconnect_cell(id);
        const NetId ab = gate(CellFunc::kAnd2, {a, b}, sm);
        const NetId x = gate(CellFunc::kXor2, {a, b}, sm);
        const NetId cx = gate(CellFunc::kAnd2, {c, x}, sm);
        add_gate(CellFunc::kOr2, {ab, cx, y}, sm);
        ++stats_.adder_decompose;
        return;
      }
      case CellFunc::kAoi21: {
        if (!rng_.next_bool(cfg_.p_aoi_flatten)) break;
        // !(ab | c) = NOR(AND(a,b), c).
        const NetId a = pins[0], b = pins[1], c = pins[2], y = pins[3];
        nl_.disconnect_cell(id);
        const NetId ab = gate(CellFunc::kAnd2, {a, b}, sm);
        add_gate(CellFunc::kNor2, {ab, c, y}, sm);
        ++stats_.aoi_flatten;
        return;
      }
      case CellFunc::kOai21: {
        if (!rng_.next_bool(cfg_.p_aoi_flatten)) break;
        // !((a|b) & c) = NAND(OR(a,b), c).
        const NetId a = pins[0], b = pins[1], c = pins[2], y = pins[3];
        nl_.disconnect_cell(id);
        const NetId ab = gate(CellFunc::kOr2, {a, b}, sm);
        add_gate(CellFunc::kNand2, {ab, c, y}, sm);
        ++stats_.aoi_flatten;
        return;
      }
      default:
        break;  // sequential / macro / tie / inv / buf cells untouched
    }
  }

  void maybe_insert_on_net(NetId net) {
    if (net == nl_.clock_net()) return;
    if (nl_.net(net).sinks.empty()) return;
    const bool want_double_inv = rng_.next_bool(cfg_.p_double_inv);
    const bool want_buffer = !want_double_inv && rng_.next_bool(cfg_.p_buffer);
    if (!want_double_inv && !want_buffer) return;
    // Attribute inserted cells to the sub-module of the first sink.
    const SubmoduleId sm = nl_.cell(nl_.net(net).sinks.front().cell).submodule;
    const std::vector<netlist::PinRef> sinks = nl_.net(net).sinks;  // copy
    NetId tail;
    if (want_double_inv) {
      const NetId mid = gate(CellFunc::kInv, {net}, sm);
      tail = gate(CellFunc::kInv, {mid}, sm);
      ++stats_.double_inv;
    } else {
      tail = gate(CellFunc::kBuf, {net}, sm);
      ++stats_.buffer;
    }
    for (const netlist::PinRef& s : sinks) {
      nl_.move_pin(s.cell, s.pin, tail);
    }
  }

  Netlist& nl_;
  const RewriteConfig& cfg_;
  RewriteStats& stats_;
  util::Rng rng_;
};

}  // namespace

netlist::Netlist apply_rewrites(const Netlist& src, const RewriteConfig& config,
                                RewriteStats* stats) {
  Netlist out = src;  // value copy; library reference shared
  out.set_name(src.name() + "_plus");
  RewriteStats local;
  Rewriter rw(out, config, stats ? *stats : local);
  rw.run();
  return out;
}

}  // namespace atlas::transform
