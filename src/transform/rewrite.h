// Logic-invariant netlist rewriting.
//
// Produces the paper's N_g+ (Sec. III-B.1): a netlist with identical
// functionality but different structure, used as the positive sample in the
// gate-level contrastive pre-training task (#4). The rewrite rules are the
// local restructurings a synthesis tool performs:
//
//   * De Morgan recomposition      AND2 <-> NAND2+INV, OR2 <-> NOR2+INV, ...
//   * wide-gate decomposition      AND3 -> AND2+AND2, NAND3 -> NAND2(AND2), ...
//   * mux / xor re-expression      MUX2 -> NAND network, XOR2 -> NAND network
//   * adder-cell re-expression     FASUM -> XOR tree, MAJ3 -> AND/OR/XOR
//   * AOI/OAI flattening           AOI21 -> NOR2(AND2), OAI21 -> NAND2(OR2)
//   * double-inverter insertion    net -> INV -> INV -> sinks
//   * buffer insertion             net -> BUF -> sinks
//
// Every rule preserves Boolean function exactly (verified by simulation in
// tests). Sequential cells, macros and the clock net are never touched; all
// original net names survive, so sub-module alignment between N_g and N_g+
// is positional by construction.
#pragma once

#include <cstdint>

#include "netlist/netlist.h"

namespace atlas::transform {

struct RewriteConfig {
  std::uint64_t seed = 1;
  double p_demorgan = 0.30;       // single-gate recomposition probability
  double p_split_wide = 0.50;     // 3-input gate decomposition probability
  double p_mux_decompose = 0.25;
  double p_xor_decompose = 0.20;
  double p_adder_decompose = 0.30;
  double p_aoi_flatten = 0.35;
  double p_double_inv = 0.04;     // per-net double-inverter probability
  double p_buffer = 0.04;         // per-net buffer probability
};

struct RewriteStats {
  int demorgan = 0;
  int split_wide = 0;
  int mux_decompose = 0;
  int xor_decompose = 0;
  int adder_decompose = 0;
  int aoi_flatten = 0;
  int double_inv = 0;
  int buffer = 0;

  int total() const {
    return demorgan + split_wide + mux_decompose + xor_decompose +
           adder_decompose + aoi_flatten + double_inv + buffer;
  }
};

/// Apply logic-invariant rewrites; returns the transformed netlist (N_g+).
/// The input is untouched. Resulting netlist passes Netlist::check().
netlist::Netlist apply_rewrites(const netlist::Netlist& src,
                                const RewriteConfig& config,
                                RewriteStats* stats = nullptr);

}  // namespace atlas::transform
