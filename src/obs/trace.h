// Span tracing with Chrome trace_event JSON export and distributed
// trace-context propagation.
//
// `ObsSpan{category, name}` is an RAII scope: construction stamps a start
// time, destruction records a complete ("ph":"X") event into a bounded
// in-memory ring. The ring renders as Chrome trace JSON loadable in
// chrome://tracing or https://ui.perfetto.dev, giving a per-thread,
// nested, time-based view of a run — the same fine-grained time axis
// ATLAS gives a design's power, turned on the pipeline itself.
//
// Distributed tracing: a request that fans across processes (client ->
// atlas_router -> atlas_serve shard) carries a `TraceContext` — a 128-bit
// trace id, the sender's span id, and a sampled flag. Each process installs
// the incoming context as a thread-local ambient via `TraceContextScope`;
// every ObsSpan constructed under that scope inherits the trace id, links
// its parent to the enclosing span, and becomes the ambient parent for its
// own children. Span rings drained from each process therefore merge into
// one coherent timeline (merge_chrome_json): events carry the real OS pid
// plus a process_name metadata record, so Perfetto shows client, router and
// every shard as separate processes linked by trace_id/parent_span_id args.
//
// Cost model:
//
//   * disabled (default), no ambient context: one relaxed atomic load, one
//     thread-local read and two branches per span — a few nanoseconds,
//     cheap enough to leave spans in every hot path (bench_micro
//     BM_ObsSpanDisabled pins this; target < 5 ns);
//   * ambient context present but unsampled (or tracing disabled): span-id
//     chaining only — an atomic increment and two thread-local writes, so
//     downstream processes still receive correct parent links;
//   * enabled + sampled: two steady_clock reads plus one short critical
//     section to push into the ring. Spans are meant to be coarse (a flow
//     phase, a pool batch, a request) — never a per-cell loop body.
//
// The ring is fixed-capacity and overwrites its oldest events; the dropped
// count is exported in the JSON so truncation is visible, and recording
// never allocates unboundedly no matter how long a daemon runs.
//
// Enabling: `--trace-out <file>` on atlas_cli / atlas_serve / atlas_router /
// atlas_client, or env `ATLAS_TRACE=<file>` (flag wins). Tools call
// Trace::flush_file() at exit; daemons additionally answer the admin-gated
// `trace_dump` wire request with drain_chrome_json().
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace atlas::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;

struct AmbientContext {
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t span_id = 0;
  bool sampled = false;
};

/// Thread-local ambient trace context. Inline so ObsSpan's fast path (no
/// tracing, no context) stays a handful of inlined instructions.
inline thread_local AmbientContext g_ambient{};
}  // namespace detail

/// True when spans are being recorded. Relaxed: a span racing an
/// enable/disable may be missed or dropped, never corrupted.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Microseconds since the process's trace epoch (first use). Monotonic;
/// shared by the tracer and the structured logger so their timestamps
/// line up.
std::uint64_t trace_now_us();

/// Distributed trace context: which trace a piece of work belongs to and
/// which span is its parent. `span_id` is the *current* span — a child
/// created under this context uses it as parent_span_id. A context with a
/// zero trace id is "absent" (valid() == false): spans behave exactly as
/// the pre-distributed tracer did.
struct TraceContext {
  std::uint64_t trace_hi = 0;  // 128-bit trace id, high half
  std::uint64_t trace_lo = 0;  // low half
  std::uint64_t span_id = 0;   // enclosing span (0 = root)
  /// Record spans for this request? Propagated end-to-end so one client
  /// decision samples (or not) the whole fleet's rings consistently; a
  /// process still needs tracing enabled locally to actually record.
  bool sampled = false;

  bool valid() const { return (trace_hi | trace_lo) != 0; }
};

/// The calling thread's ambient context (absent by default).
TraceContext current_trace_context();

/// Fresh process-unique span id (never 0).
std::uint64_t next_span_id();

/// New root context: random 128-bit trace id, no parent span.
TraceContext make_root_context(bool sampled);

/// RAII: install `ctx` as the thread's ambient context for a request
/// scope; restores the previous ambient on destruction. Used at process
/// entry points (one per request), not per span — ObsSpan maintains the
/// parent chain underneath automatically.
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& ctx);
  ~TraceContextScope();

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext prev_;
};

/// Ids attached to one recorded event (all-zero for spans recorded outside
/// any ambient context — the single-process tracer's behavior).
struct SpanIds {
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
};

/// Structured view of one recorded event, for tests and in-process
/// assertions (the JSON export is the interchange format).
struct TraceEventView {
  std::string name;
  std::string category;
  std::uint32_t tid = 0;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
  SpanIds ids;
};

class Trace {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  /// Start recording into a fresh ring of `capacity` events. Idempotent
  /// (re-enabling keeps already-recorded events if the capacity matches).
  static void enable(std::size_t capacity = kDefaultCapacity);
  static void disable();
  /// Drop all recorded events (and the dropped counter).
  static void clear();

  /// Where flush_file() writes; empty disables flushing.
  static void set_output_path(const std::string& path);
  static std::string output_path();

  /// Label this process in merged traces ("atlas_serve:7433", ...). Shows
  /// up as a Chrome process_name metadata event; default "atlas".
  static void set_process_name(const std::string& name);
  static std::string process_name();

  /// Record one complete event. Called by ~ObsSpan; public so tests and
  /// non-RAII call sites can record directly. No-op while disabled.
  static void record_complete(const char* category, const char* name,
                              std::uint64_t start_us, std::uint64_t dur_us,
                              const SpanIds& ids = {});
  static void record_complete(const char* category, const std::string& name,
                              std::uint64_t start_us, std::uint64_t dur_us,
                              const SpanIds& ids = {});

  /// Events currently held (<= capacity) and events overwritten so far.
  static std::size_t size();
  static std::uint64_t dropped();

  /// Copy of the ring, oldest-first (test/debug introspection).
  static std::vector<TraceEventView> snapshot();

  /// Chrome trace JSON: {"traceEvents":[{"name","cat","ph":"X","ts","dur",
  /// "pid","tid","args":{...}}...], "displayTimeUnit":"ms",
  /// "atlasDroppedEvents":N}. ts/dur are microseconds; pid is the real OS
  /// pid; a process_name metadata event labels it; spans recorded under a
  /// TraceContext carry args.trace_id / span_id / parent_span_id (hex).
  static std::string render_chrome_json();

  /// render_chrome_json() + clear(), atomically with respect to concurrent
  /// recording — the `trace_dump` wire request's drain semantics: every
  /// event is reported by exactly one dump.
  static std::string drain_chrome_json();

  /// Write render_chrome_json() to the configured output path. Returns
  /// false (without touching the filesystem) when no path is set; throws
  /// std::runtime_error when the file cannot be written.
  static bool flush_file();
};

/// Merge Chrome trace JSON documents (as produced by render_chrome_json,
/// one per process) into a single document: traceEvents concatenated,
/// dropped counts summed. Inputs that don't look like a trace document are
/// skipped. Events keep their original pid/tid, so a merged file shows one
/// lane per (process, thread).
std::string merge_chrome_json(const std::vector<std::string>& traces);

/// RAII span. The const char* arguments must outlive the span (string
/// literals in practice); the std::string overload copies for dynamic
/// names like "prepare_C3".
///
/// Under an ambient TraceContext the span allocates an id, records its
/// parent link, and becomes the ambient parent for spans nested inside it
/// (restored on destruction) — even when recording is off, so the id chain
/// stays correct across processes that *are* recording.
class ObsSpan {
 public:
  ObsSpan(const char* category, const char* name)
      : category_(category), name_(name) {
    init();
  }

  ObsSpan(const char* category, std::string name)
      : category_(category), dynamic_name_(std::move(name)) {
    init();
  }

  ~ObsSpan() {
    if (restore_ || active_) finish();
  }

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  /// This span's id (0 when no ambient context was present).
  std::uint64_t span_id() const { return ids_.span_id; }

  /// Context for propagating *this* span as the parent of downstream work
  /// (a forwarded request). Absent when the span has no ambient context.
  TraceContext context() const;

 private:
  void init() {
    // Fast path: tracing off and no ambient context — nothing to do.
    if (!trace_enabled() && (detail::g_ambient.trace_hi |
                             detail::g_ambient.trace_lo) == 0) {
      return;
    }
    init_slow();
  }

  void init_slow();
  void finish();

  bool active_ = false;   // recording into the ring
  bool restore_ = false;  // ambient span_id was advanced; restore on exit
  bool sampled_ = false;
  const char* category_ = nullptr;
  const char* name_ = nullptr;
  std::string dynamic_name_;
  std::uint64_t start_us_ = 0;
  std::uint64_t saved_span_id_ = 0;
  SpanIds ids_;
};

/// If env `ATLAS_TRACE` names a file and tracing is not already enabled,
/// enable it and set the output path. Returns true when tracing is active
/// after the call.
bool init_trace_from_env();

}  // namespace atlas::obs
