// Span tracing with Chrome trace_event JSON export.
//
// `ObsSpan{category, name}` is an RAII scope: construction stamps a start
// time, destruction records a complete ("ph":"X") event into a bounded
// in-memory ring. The ring renders as Chrome trace JSON loadable in
// chrome://tracing or https://ui.perfetto.dev, giving a per-thread,
// nested, time-based view of a run — the same fine-grained time axis
// ATLAS gives a design's power, turned on the pipeline itself.
//
// Cost model:
//
//   * disabled (default): one relaxed atomic load and a branch per span —
//     a few nanoseconds, cheap enough to leave spans in every hot path
//     (bench_micro BM_ObsSpanDisabled pins this; target < 5 ns);
//   * enabled: two steady_clock reads plus one short critical section to
//     push into the ring. Spans are meant to be coarse (a flow phase, a
//     pool batch, a request) — never a per-cell loop body.
//
// The ring is fixed-capacity and overwrites its oldest events; the dropped
// count is exported in the JSON so truncation is visible, and recording
// never allocates unboundedly no matter how long a daemon runs.
//
// Enabling: `--trace-out <file>` on atlas_cli / atlas_serve, or env
// `ATLAS_TRACE=<file>` (flag wins). Tools call Trace::flush_file() at exit.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace atlas::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// True when spans are being recorded. Relaxed: a span racing an
/// enable/disable may be missed or dropped, never corrupted.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Microseconds since the process's trace epoch (first use). Monotonic;
/// shared by the tracer and the structured logger so their timestamps
/// line up.
std::uint64_t trace_now_us();

class Trace {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  /// Start recording into a fresh ring of `capacity` events. Idempotent
  /// (re-enabling keeps already-recorded events if the capacity matches).
  static void enable(std::size_t capacity = kDefaultCapacity);
  static void disable();
  /// Drop all recorded events (and the dropped counter).
  static void clear();

  /// Where flush_file() writes; empty disables flushing.
  static void set_output_path(const std::string& path);
  static std::string output_path();

  /// Record one complete event. Called by ~ObsSpan; public so tests and
  /// non-RAII call sites can record directly. No-op while disabled.
  static void record_complete(const char* category, const char* name,
                              std::uint64_t start_us, std::uint64_t dur_us);
  static void record_complete(const char* category, const std::string& name,
                              std::uint64_t start_us, std::uint64_t dur_us);

  /// Events currently held (<= capacity) and events overwritten so far.
  static std::size_t size();
  static std::uint64_t dropped();

  /// Chrome trace JSON: {"traceEvents":[{"name","cat","ph":"X","ts","dur",
  /// "pid","tid"}...], "atlasDroppedEvents":N}. ts/dur are microseconds.
  static std::string render_chrome_json();

  /// Write render_chrome_json() to the configured output path. Returns
  /// false (without touching the filesystem) when no path is set; throws
  /// std::runtime_error when the file cannot be written.
  static bool flush_file();
};

/// RAII span. The const char* arguments must outlive the span (string
/// literals in practice); the std::string overload copies for dynamic
/// names like "prepare_C3".
class ObsSpan {
 public:
  ObsSpan(const char* category, const char* name)
      : active_(trace_enabled()), category_(category), name_(name) {
    if (active_) start_us_ = trace_now_us();
  }

  ObsSpan(const char* category, std::string name)
      : active_(trace_enabled()), category_(category), dynamic_name_(std::move(name)) {
    if (active_) start_us_ = trace_now_us();
  }

  ~ObsSpan() {
    if (!active_) return;
    const std::uint64_t dur = trace_now_us() - start_us_;
    if (name_ != nullptr) {
      Trace::record_complete(category_, name_, start_us_, dur);
    } else {
      Trace::record_complete(category_, dynamic_name_, start_us_, dur);
    }
  }

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  bool active_;
  const char* category_ = nullptr;
  const char* name_ = nullptr;
  std::string dynamic_name_;
  std::uint64_t start_us_ = 0;
};

/// If env `ATLAS_TRACE` names a file and tracing is not already enabled,
/// enable it and set the output path. Returns true when tracing is active
/// after the call.
bool init_trace_from_env();

}  // namespace atlas::obs
