// Process-wide metrics registry: named counters, gauges and log2-bucket
// histograms, rendered in Prometheus exposition format.
//
// Design constraints, in priority order:
//
//   1. **Lock-cheap hot path.** Every metric is a handful of relaxed
//      atomics; the registry mutex is taken only to *create or look up* a
//      series. Callers cache the returned reference (typically in a
//      function-local static), so steady-state instrumentation is one
//      `fetch_add` — safe inside the thread pool, the simulator cycle loop
//      and the serve dispatcher.
//   2. **Stable references.** Series objects are heap-allocated and never
//      destroyed (the registry intentionally leaks at exit), so a cached
//      `Counter&` outlives every subsystem including the global thread
//      pool's teardown.
//   3. **No dependencies.** obs/ sits below util/ in the dependency order
//      so the thread pool itself can be instrumented.
//
// Naming convention: `atlas_<subsystem>_<metric>_<unit>` with `_total` for
// counters (e.g. `atlas_parallel_tasks_total`,
// `atlas_serve_request_latency_us`). Labels are passed pre-rendered as
// `key="value"` pairs, e.g. `counter("atlas_serve_requests_total",
// "endpoint=\"ping\"")`.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

namespace atlas::obs {

/// Monotonic event count. Relaxed atomics: totals are exact, ordering
/// against other metrics is not guaranteed (nor needed for scraping).
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time signed value (cache occupancy, bytes held, ...).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log2-bucketed histogram of non-negative integer samples (microseconds
/// in practice): bucket i counts values in [2^i, 2^{i+1}), bucket 0 also
/// absorbs 0. Values >= 2^kBuckets land in an explicit overflow bucket
/// instead of being silently clamped into the top bucket, so a latency
/// spike beyond ~1.2h (or a unit bug) is visible as overflow rather than
/// masquerading as a legitimate top-bucket sample.
///
/// Percentiles return the upper bound of the bucket containing the p-th
/// sample — coarse (within 2x) but constant-memory and wait-free to
/// record. This generalizes the serve-local LatencyHistogram this class
/// replaced; see percentile() for the single-sample edge contract.
class Histogram {
 public:
  static constexpr int kBuckets = 32;

  /// Returned by percentile() when the rank falls in the overflow bucket:
  /// "beyond the largest representable bound", not a real measurement.
  static constexpr std::uint64_t kOverflowBound =
      std::numeric_limits<std::uint64_t>::max();

  void record(std::uint64_t v) {
    int bucket = 0;
    while (bucket < kBuckets && (1ULL << (bucket + 1)) <= v) ++bucket;
    if (bucket >= kBuckets) {
      overflow_.fetch_add(1, std::memory_order_relaxed);
    } else {
      buckets_[static_cast<std::size_t>(bucket)].fetch_add(
          1, std::memory_order_relaxed);
    }
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t overflow_count() const {
    return overflow_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket_count(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }
  /// Upper bound of bucket i (exclusive): 2^{i+1}.
  static std::uint64_t bucket_upper_bound(int i) { return 1ULL << (i + 1); }

  /// Upper bound of the bucket containing the p-th percentile sample,
  /// 0 < p <= 100. Rank is ceil(p/100 * count) clamped to at least 1, so a
  /// single-sample histogram returns that sample's bucket bound for every
  /// p in (0, 100]. Returns 0 when empty and kOverflowBound when the rank
  /// falls in the overflow bucket.
  std::uint64_t percentile(double p) const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// The process-wide named-series registry.
///
/// A series is (family name, label string); looking one up twice returns
/// the same object. Creating a name with two different metric kinds throws
/// std::logic_error — that is an instrumentation bug, not a runtime
/// condition.
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name, const std::string& labels = "");
  Gauge& gauge(const std::string& name, const std::string& labels = "");
  Histogram& histogram(const std::string& name, const std::string& labels = "");

  /// Prometheus text exposition: `# TYPE` per family, one line per series
  /// (histograms expand to cumulative `_bucket{le=...}` + `_sum` +
  /// `_count`). Families render name-sorted, series label-sorted, so the
  /// output is deterministic for a fixed set of values.
  std::string render_prometheus() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Series {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Series& lookup(const std::string& name, const std::string& labels, Kind kind);

  mutable std::mutex mu_;
  // Keyed (family, labels): ordered so rendering groups each family's
  // series under one TYPE header without a separate sort.
  std::map<std::pair<std::string, std::string>, Series> series_;
};

}  // namespace atlas::obs
