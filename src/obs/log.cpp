#include "obs/log.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "obs/trace.h"

namespace atlas::obs {

namespace {

std::atomic<int> g_level{[] {
  const char* env = std::getenv("ATLAS_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return static_cast<int>(LogLevel::kInfo);
  return static_cast<int>(parse_log_level(env));
}()};

struct SinkState {
  std::mutex mu;
  LogSink sink;  // empty -> stderr
};

SinkState& sink_state() {
  static SinkState* s = new SinkState();
  return *s;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

bool needs_quoting(std::string_view v) {
  if (v.empty()) return true;
  for (const char c : v) {
    if (c == ' ' || c == '"' || c == '=' || c == '\\' || c == '\n' ||
        c == '\t') {
      return true;
    }
  }
  return false;
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

LogLevel parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off" || name == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

void set_log_sink(LogSink sink) {
  SinkState& s = sink_state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.sink = std::move(sink);
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= g_level.load(std::memory_order_relaxed) &&
         level != LogLevel::kOff;
}

LogLine::LogLine(LogLevel level, const char* module)
    : enabled_(log_enabled(level)) {
  if (!enabled_) return;
  char head[96];
  std::snprintf(head, sizeof(head), "ts=%.6f level=%s mod=%s",
                static_cast<double>(trace_now_us()) / 1e6, level_name(level),
                module);
  line_ = head;
}

LogLine::~LogLine() {
  if (!enabled_) return;
  line_ += '\n';
  SinkState& s = sink_state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.sink) {
    s.sink(line_);
  } else {
    std::fputs(line_.c_str(), stderr);
  }
}

void LogLine::append_key(std::string_view key) {
  line_ += ' ';
  line_.append(key.data(), key.size());
  line_ += '=';
}

LogLine& LogLine::kv(std::string_view key, std::string_view value) {
  if (!enabled_) return *this;
  append_key(key);
  if (!needs_quoting(value)) {
    line_.append(value.data(), value.size());
    return *this;
  }
  line_ += '"';
  for (const char c : value) {
    switch (c) {
      case '"': line_ += "\\\""; break;
      case '\\': line_ += "\\\\"; break;
      case '\n': line_ += "\\n"; break;
      case '\t': line_ += "\\t"; break;
      default: line_ += c;
    }
  }
  line_ += '"';
  return *this;
}

LogLine& LogLine::kv(std::string_view key, double value) {
  if (!enabled_) return *this;
  append_key(key);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  line_ += buf;
  return *this;
}

LogLine& LogLine::kv_int(std::string_view key, long long value) {
  if (!enabled_) return *this;
  append_key(key);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  line_ += buf;
  return *this;
}

LogLine& LogLine::kv_uint(std::string_view key, unsigned long long value) {
  if (!enabled_) return *this;
  append_key(key);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", value);
  line_ += buf;
  return *this;
}

}  // namespace atlas::obs
