#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace atlas::obs {

std::uint64_t Histogram::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (p <= 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cumulative += bucket_count(i);
    if (cumulative >= rank) return bucket_upper_bound(i);
  }
  return kOverflowBound;
}

Registry& Registry::global() {
  // Intentionally leaked: cached Counter&/Histogram& references must stay
  // valid through every static destructor (including the global thread
  // pool's), and still-reachable memory is not a LeakSanitizer finding.
  static Registry* r = new Registry();
  return *r;
}

Registry::Series& Registry::lookup(const std::string& name,
                                   const std::string& labels, Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = series_.try_emplace({name, labels});
  Series& s = it->second;
  if (inserted) {
    s.kind = kind;
    switch (kind) {
      case Kind::kCounter: s.counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: s.gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram: s.histogram = std::make_unique<Histogram>(); break;
    }
  } else if (s.kind != kind) {
    throw std::logic_error("obs::Registry: metric '" + name +
                           "' registered with two different kinds");
  }
  return s;
}

Counter& Registry::counter(const std::string& name, const std::string& labels) {
  return *lookup(name, labels, Kind::kCounter).counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& labels) {
  return *lookup(name, labels, Kind::kGauge).gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& labels) {
  return *lookup(name, labels, Kind::kHistogram).histogram;
}

namespace {

void append_series_line(std::string& out, const std::string& name,
                        const std::string& labels, const std::string& extra,
                        std::uint64_t value) {
  out += name;
  if (!labels.empty() || !extra.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !extra.empty()) out += ',';
    out += extra;
    out += '}';
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %llu\n",
                static_cast<unsigned long long>(value));
  out += buf;
}

void append_gauge_line(std::string& out, const std::string& name,
                       const std::string& labels, std::int64_t value) {
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %lld\n", static_cast<long long>(value));
  out += buf;
}

}  // namespace

std::string Registry::render_prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(series_.size() * 64);
  const std::string* prev_family = nullptr;
  for (const auto& [key, s] : series_) {
    const auto& [name, labels] = key;
    if (prev_family == nullptr || *prev_family != name) {
      out += "# TYPE ";
      out += name;
      switch (s.kind) {
        case Kind::kCounter: out += " counter\n"; break;
        case Kind::kGauge: out += " gauge\n"; break;
        case Kind::kHistogram: out += " histogram\n"; break;
      }
      prev_family = &name;
    }
    switch (s.kind) {
      case Kind::kCounter:
        append_series_line(out, name, labels, "", s.counter->value());
        break;
      case Kind::kGauge:
        append_gauge_line(out, name, labels, s.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *s.histogram;
        std::uint64_t cumulative = 0;
        for (int i = 0; i < Histogram::kBuckets; ++i) {
          const std::uint64_t c = h.bucket_count(i);
          cumulative += c;
          // Skip interior empty buckets to keep the payload scrape-sized;
          // cumulative counts stay correct because `le` bounds are
          // inclusive upper bounds.
          if (c == 0 && i + 1 < Histogram::kBuckets) continue;
          char le[32];
          std::snprintf(le, sizeof(le), "le=\"%llu\"",
                        static_cast<unsigned long long>(
                            Histogram::bucket_upper_bound(i) - 1));
          append_series_line(out, name + "_bucket", labels, le, cumulative);
        }
        append_series_line(out, name + "_bucket", labels, "le=\"+Inf\"",
                           h.count());
        append_series_line(out, name + "_sum", labels, "", h.sum());
        append_series_line(out, name + "_count", labels, "", h.count());
        break;
      }
    }
  }
  return out;
}

}  // namespace atlas::obs
