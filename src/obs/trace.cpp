#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <vector>

#if defined(_WIN32)
#include <process.h>
#else
#include <unistd.h>
#endif

namespace atlas::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

struct TraceEvent {
  std::string name;
  const char* category = "";
  std::uint32_t tid = 0;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
  SpanIds ids;
};

/// Ring state behind one mutex. Spans are coarse (phases, batches,
/// requests), so contention on this lock is negligible next to the work
/// the spans measure. Leaked at exit for the same lifetime reason as the
/// metrics registry.
struct Ring {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::size_t capacity = Trace::kDefaultCapacity;
  std::size_t write = 0;     // next slot to write
  std::uint64_t total = 0;   // events ever recorded
  std::string output_path;
  std::string process_name = "atlas";
};

Ring& ring() {
  static Ring* r = new Ring();
  return *r;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

std::uint32_t this_thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t tid = next.fetch_add(1);
  return tid;
}

std::uint64_t os_pid() {
#if defined(_WIN32)
  return static_cast<std::uint64_t>(_getpid());
#else
  return static_cast<std::uint64_t>(::getpid());
#endif
}

// obs sits below util in the dependency order, so the splitmix64
// finalizer lives here too (same constants as util/hash).
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Per-process id seed: ids must differ across the processes of a fleet
/// even when they start in the same microsecond, so mix pid, wall clock,
/// and an address (ASLR) into the counter base.
std::uint64_t process_seed() {
  static const std::uint64_t seed = [] {
    std::uint64_t s = splitmix64(os_pid());
    s ^= splitmix64(static_cast<std::uint64_t>(
        std::chrono::system_clock::now().time_since_epoch().count()));
    s ^= splitmix64(reinterpret_cast<std::uintptr_t>(&ring));
    return s;
  }();
  return seed;
}

void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_hex(std::string& out, std::uint64_t v, int digits) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%0*llx", digits,
                static_cast<unsigned long long>(v));
  out += buf;
}

/// Body of render_chrome_json; caller holds r.mu.
std::string render_locked(Ring& r) {
  const std::uint64_t pid = os_pid();
  std::string out = "{\"traceEvents\":[";
  // Process-name metadata event so merged multi-process traces label
  // each lane.
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
  append_u64(out, pid);
  out += ",\"tid\":0,\"args\":{\"name\":\"";
  append_json_escaped(out, r.process_name.c_str());
  out += "\"}}";
  const std::size_t n = r.events.size();
  // Oldest-first: once wrapped, the oldest surviving event sits at the
  // write cursor.
  const std::size_t first = n < r.capacity ? 0 : r.write;
  for (std::size_t i = 0; i < n; ++i) {
    const TraceEvent& ev = r.events[(first + i) % n];
    out += ',';
    out += "{\"name\":\"";
    append_json_escaped(out, ev.name.c_str());
    out += "\",\"cat\":\"";
    append_json_escaped(out, ev.category);
    out += "\",\"ph\":\"X\",\"ts\":";
    append_u64(out, ev.start_us);
    out += ",\"dur\":";
    append_u64(out, ev.dur_us);
    out += ",\"pid\":";
    append_u64(out, pid);
    out += ",\"tid\":";
    append_u64(out, ev.tid);
    if ((ev.ids.trace_hi | ev.ids.trace_lo) != 0) {
      out += ",\"args\":{\"trace_id\":\"";
      append_hex(out, ev.ids.trace_hi, 16);
      append_hex(out, ev.ids.trace_lo, 16);
      out += "\",\"span_id\":\"";
      append_hex(out, ev.ids.span_id, 16);
      out += "\",\"parent_span_id\":\"";
      append_hex(out, ev.ids.parent_span_id, 16);
      out += "\"}";
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\",\"atlasDroppedEvents\":";
  append_u64(out, r.total > n ? r.total - n : 0);
  out += '}';
  return out;
}

}  // namespace

std::uint64_t trace_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

TraceContext current_trace_context() {
  const detail::AmbientContext& a = detail::g_ambient;
  TraceContext ctx;
  ctx.trace_hi = a.trace_hi;
  ctx.trace_lo = a.trace_lo;
  ctx.span_id = a.span_id;
  ctx.sampled = a.sampled;
  return ctx;
}

std::uint64_t next_span_id() {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t raw =
      counter.fetch_add(1, std::memory_order_relaxed) ^ process_seed();
  const std::uint64_t id = splitmix64(raw);
  return id != 0 ? id : 1;
}

TraceContext make_root_context(bool sampled) {
  TraceContext ctx;
  ctx.trace_hi = next_span_id();
  ctx.trace_lo = next_span_id();
  ctx.span_id = 0;
  ctx.sampled = sampled;
  return ctx;
}

TraceContextScope::TraceContextScope(const TraceContext& ctx) {
  detail::AmbientContext& a = detail::g_ambient;
  prev_.trace_hi = a.trace_hi;
  prev_.trace_lo = a.trace_lo;
  prev_.span_id = a.span_id;
  prev_.sampled = a.sampled;
  a.trace_hi = ctx.trace_hi;
  a.trace_lo = ctx.trace_lo;
  a.span_id = ctx.span_id;
  a.sampled = ctx.sampled;
}

TraceContextScope::~TraceContextScope() {
  detail::AmbientContext& a = detail::g_ambient;
  a.trace_hi = prev_.trace_hi;
  a.trace_lo = prev_.trace_lo;
  a.span_id = prev_.span_id;
  a.sampled = prev_.sampled;
}

void ObsSpan::init_slow() {
  detail::AmbientContext& a = detail::g_ambient;
  if ((a.trace_hi | a.trace_lo) != 0) {
    ids_.trace_hi = a.trace_hi;
    ids_.trace_lo = a.trace_lo;
    ids_.parent_span_id = a.span_id;
    ids_.span_id = next_span_id();
    saved_span_id_ = a.span_id;
    a.span_id = ids_.span_id;
    restore_ = true;
    sampled_ = a.sampled;
    active_ = sampled_ && trace_enabled();
  } else {
    sampled_ = true;
    active_ = trace_enabled();
  }
  if (active_) start_us_ = trace_now_us();
}

void ObsSpan::finish() {
  if (restore_) detail::g_ambient.span_id = saved_span_id_;
  if (!active_) return;
  const std::uint64_t end_us = trace_now_us();
  const std::uint64_t dur = end_us > start_us_ ? end_us - start_us_ : 0;
  if (name_ != nullptr) {
    Trace::record_complete(category_, name_, start_us_, dur, ids_);
  } else {
    Trace::record_complete(category_, dynamic_name_, start_us_, dur, ids_);
  }
}

TraceContext ObsSpan::context() const {
  TraceContext ctx;
  ctx.trace_hi = ids_.trace_hi;
  ctx.trace_lo = ids_.trace_lo;
  ctx.span_id = ids_.span_id;
  ctx.sampled = sampled_;
  return ctx;
}

void Trace::enable(std::size_t capacity) {
  if (capacity < 1) capacity = 1;
  Ring& r = ring();
  {
    std::lock_guard<std::mutex> lock(r.mu);
    if (r.capacity != capacity || r.events.capacity() < capacity) {
      r.events.clear();
      r.events.reserve(capacity);
      r.capacity = capacity;
      r.write = 0;
      r.total = 0;
    }
  }
  trace_epoch();  // pin the epoch no later than the first enable
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void Trace::disable() {
  detail::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void Trace::clear() {
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mu);
  r.events.clear();
  r.write = 0;
  r.total = 0;
}

void Trace::set_output_path(const std::string& path) {
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mu);
  r.output_path = path;
}

std::string Trace::output_path() {
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.output_path;
}

void Trace::set_process_name(const std::string& name) {
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mu);
  r.process_name = name.empty() ? "atlas" : name;
}

std::string Trace::process_name() {
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.process_name;
}

void Trace::record_complete(const char* category, const std::string& name,
                            std::uint64_t start_us, std::uint64_t dur_us,
                            const SpanIds& ids) {
  if (!trace_enabled()) return;
  const std::uint32_t tid = this_thread_id();
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mu);
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.tid = tid;
  ev.start_us = start_us;
  ev.dur_us = dur_us;
  ev.ids = ids;
  if (r.events.size() < r.capacity) {
    r.events.push_back(std::move(ev));
  } else {
    r.events[r.write] = std::move(ev);  // overwrite oldest
  }
  r.write = (r.write + 1) % r.capacity;
  ++r.total;
}

void Trace::record_complete(const char* category, const char* name,
                            std::uint64_t start_us, std::uint64_t dur_us,
                            const SpanIds& ids) {
  if (!trace_enabled()) return;
  record_complete(category, std::string(name), start_us, dur_us, ids);
}

std::size_t Trace::size() {
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.events.size();
}

std::uint64_t Trace::dropped() {
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.total > r.events.size() ? r.total - r.events.size() : 0;
}

std::vector<TraceEventView> Trace::snapshot() {
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<TraceEventView> out;
  const std::size_t n = r.events.size();
  out.reserve(n);
  const std::size_t first = n < r.capacity ? 0 : r.write;
  for (std::size_t i = 0; i < n; ++i) {
    const TraceEvent& ev = r.events[(first + i) % n];
    TraceEventView v;
    v.name = ev.name;
    v.category = ev.category;
    v.tid = ev.tid;
    v.start_us = ev.start_us;
    v.dur_us = ev.dur_us;
    v.ids = ev.ids;
    out.push_back(std::move(v));
  }
  return out;
}

std::string Trace::render_chrome_json() {
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mu);
  return render_locked(r);
}

std::string Trace::drain_chrome_json() {
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mu);
  std::string out = render_locked(r);
  r.events.clear();
  r.write = 0;
  r.total = 0;
  return out;
}

bool Trace::flush_file() {
  const std::string path = output_path();
  if (path.empty()) return false;
  const std::string json = render_chrome_json();
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("obs::Trace: cannot open " + path);
  os << json;
  if (!os) throw std::runtime_error("obs::Trace: write failed: " + path);
  return true;
}

std::string merge_chrome_json(const std::vector<std::string>& traces) {
  static const std::string kHead = "{\"traceEvents\":[";
  static const std::string kTail = "],\"displayTimeUnit\":\"ms\"";
  static const std::string kDropped = "\"atlasDroppedEvents\":";
  std::string out = kHead;
  std::uint64_t dropped = 0;
  bool any = false;
  for (const std::string& t : traces) {
    if (t.compare(0, kHead.size(), kHead) != 0) continue;
    const std::size_t tail = t.rfind(kTail);
    if (tail == std::string::npos || tail < kHead.size()) continue;
    const std::size_t body_len = tail - kHead.size();
    if (body_len > 0) {
      if (any) out += ',';
      out.append(t, kHead.size(), body_len);
      any = true;
    }
    const std::size_t dp = t.find(kDropped, tail);
    if (dp != std::string::npos) {
      dropped += std::strtoull(t.c_str() + dp + kDropped.size(), nullptr, 10);
    }
  }
  out += "],\"displayTimeUnit\":\"ms\",\"atlasDroppedEvents\":";
  append_u64(out, dropped);
  out += '}';
  return out;
}

bool init_trace_from_env() {
  if (trace_enabled()) return true;
  const char* path = std::getenv("ATLAS_TRACE");
  if (path == nullptr || *path == '\0') return false;
  Trace::enable();
  Trace::set_output_path(path);
  return true;
}

}  // namespace atlas::obs
