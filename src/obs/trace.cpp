#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace atlas::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

struct TraceEvent {
  std::string name;
  const char* category = "";
  std::uint32_t tid = 0;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
};

/// Ring state behind one mutex. Spans are coarse (phases, batches,
/// requests), so contention on this lock is negligible next to the work
/// the spans measure. Leaked at exit for the same lifetime reason as the
/// metrics registry.
struct Ring {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::size_t capacity = Trace::kDefaultCapacity;
  std::size_t write = 0;     // next slot to write
  std::uint64_t total = 0;   // events ever recorded
  std::string output_path;
};

Ring& ring() {
  static Ring* r = new Ring();
  return *r;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

std::uint32_t this_thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t tid = next.fetch_add(1);
  return tid;
}

void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

std::uint64_t trace_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

void Trace::enable(std::size_t capacity) {
  if (capacity < 1) capacity = 1;
  Ring& r = ring();
  {
    std::lock_guard<std::mutex> lock(r.mu);
    if (r.capacity != capacity || r.events.capacity() < capacity) {
      r.events.clear();
      r.events.reserve(capacity);
      r.capacity = capacity;
      r.write = 0;
      r.total = 0;
    }
  }
  trace_epoch();  // pin the epoch no later than the first enable
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void Trace::disable() {
  detail::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void Trace::clear() {
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mu);
  r.events.clear();
  r.write = 0;
  r.total = 0;
}

void Trace::set_output_path(const std::string& path) {
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mu);
  r.output_path = path;
}

std::string Trace::output_path() {
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.output_path;
}

void Trace::record_complete(const char* category, const std::string& name,
                            std::uint64_t start_us, std::uint64_t dur_us) {
  if (!trace_enabled()) return;
  const std::uint32_t tid = this_thread_id();
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mu);
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.tid = tid;
  ev.start_us = start_us;
  ev.dur_us = dur_us;
  if (r.events.size() < r.capacity) {
    r.events.push_back(std::move(ev));
  } else {
    r.events[r.write] = std::move(ev);  // overwrite oldest
  }
  r.write = (r.write + 1) % r.capacity;
  ++r.total;
}

void Trace::record_complete(const char* category, const char* name,
                            std::uint64_t start_us, std::uint64_t dur_us) {
  if (!trace_enabled()) return;
  record_complete(category, std::string(name), start_us, dur_us);
}

std::size_t Trace::size() {
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.events.size();
}

std::uint64_t Trace::dropped() {
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.total > r.events.size() ? r.total - r.events.size() : 0;
}

std::string Trace::render_chrome_json() {
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mu);
  std::string out = "{\"traceEvents\":[";
  const std::size_t n = r.events.size();
  // Oldest-first: once wrapped, the oldest surviving event sits at the
  // write cursor.
  const std::size_t first = n < r.capacity ? 0 : r.write;
  for (std::size_t i = 0; i < n; ++i) {
    const TraceEvent& ev = r.events[(first + i) % n];
    if (i > 0) out += ',';
    out += "{\"name\":\"";
    append_json_escaped(out, ev.name.c_str());
    out += "\",\"cat\":\"";
    append_json_escaped(out, ev.category);
    out += "\",\"ph\":\"X\",\"ts\":";
    append_u64(out, ev.start_us);
    out += ",\"dur\":";
    append_u64(out, ev.dur_us);
    out += ",\"pid\":1,\"tid\":";
    append_u64(out, ev.tid);
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\",\"atlasDroppedEvents\":";
  append_u64(out, r.total > n ? r.total - n : 0);
  out += '}';
  return out;
}

bool Trace::flush_file() {
  const std::string path = output_path();
  if (path.empty()) return false;
  const std::string json = render_chrome_json();
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("obs::Trace: cannot open " + path);
  os << json;
  if (!os) throw std::runtime_error("obs::Trace: write failed: " + path);
  return true;
}

bool init_trace_from_env() {
  if (trace_enabled()) return true;
  const char* path = std::getenv("ATLAS_TRACE");
  if (path == nullptr || *path == '\0') return false;
  Trace::enable();
  Trace::set_output_path(path);
  return true;
}

}  // namespace atlas::obs
