// Structured leveled logging: one `key=value` line per event, with a
// monotonic timestamp shared with the span tracer (`ts=` is seconds since
// the trace epoch, so log lines and trace spans line up).
//
//   obs::LogLine(obs::LogLevel::kInfo, "serve")
//       .kv("event", "listening").kv("port", port);
//   -> ts=0.001234 level=info mod=serve event=listening port=7433
//
// The line is emitted on destruction, to stderr by default or to an
// installed sink (tests capture lines that way). Level filtering happens
// at construction: a suppressed LogLine never formats its values' keys —
// callers should still avoid expensive argument computation by checking
// log_enabled() first when the values themselves are costly.
//
// The minimum level defaults to kInfo and can be set programmatically or
// via env `ATLAS_LOG_LEVEL` (debug|info|warn|error|off), read once at
// first use.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <type_traits>

namespace atlas::obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

void set_log_level(LogLevel level);
LogLevel log_level();

/// "debug" -> kDebug etc.; unrecognized names return kInfo.
LogLevel parse_log_level(std::string_view name);

/// Replace the output sink (nullptr/empty restores stderr). The sink is
/// called with one complete line, newline included, under an internal
/// mutex — it may be invoked from any thread but never concurrently.
using LogSink = std::function<void(const std::string& line)>;
void set_log_sink(LogSink sink);

bool log_enabled(LogLevel level);

class LogLine {
 public:
  LogLine(LogLevel level, const char* module);
  ~LogLine();

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  LogLine& kv(std::string_view key, std::string_view value);
  LogLine& kv(std::string_view key, const char* value) {
    return kv(key, std::string_view(value));
  }
  LogLine& kv(std::string_view key, const std::string& value) {
    return kv(key, std::string_view(value));
  }
  LogLine& kv(std::string_view key, double value);
  LogLine& kv(std::string_view key, bool value) {
    return kv(key, std::string_view(value ? "true" : "false"));
  }
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T> &&
                                        !std::is_same_v<T, bool>>>
  LogLine& kv(std::string_view key, T value) {
    if constexpr (std::is_signed_v<T>) {
      return kv_int(key, static_cast<long long>(value));
    } else {
      return kv_uint(key, static_cast<unsigned long long>(value));
    }
  }

  bool enabled() const { return enabled_; }

 private:
  LogLine& kv_int(std::string_view key, long long value);
  LogLine& kv_uint(std::string_view key, unsigned long long value);
  void append_key(std::string_view key);

  bool enabled_;
  std::string line_;
};

}  // namespace atlas::obs
