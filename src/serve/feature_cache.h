// LRU cache for the expensive per-design prediction artifacts.
//
// Two layers, keyed off the FNV-1a hash of the request's Verilog text mixed
// with the content hash of the Liberty library it was parsed against (see
// design_cache_key) — parsed netlists and graph features depend on the
// library's cell ids, capacitances and energy LUTs, so two models bound to
// different substrates must never share a design entry even for identical
// Verilog text:
//
//   design layer      (netlist hash, library hash) -> parsed netlist +
//                     sub-module graphs (the per-design preprocessing every
//                     request would otherwise repeat);
//   embedding layer   (model, generation, workload, cycles, trace hash) ->
//                     DesignEmbeddings (per-cycle encoder forwards + cycle
//                     extras), nested under the design entry so evicting a
//                     design drops its embeddings too. For streamed
//                     workloads the trace hash pins the *content* of the
//                     client-supplied toggle trace — two different traces
//                     under the same workload name can never alias. The
//                     registry generation invalidates embeddings across a
//                     model reload under the same name.
//
// A warm embedding hit skips netlist parsing, graph building, workload
// simulation AND the encoder — the request goes straight to the GBDT
// heads, which is the serving fast path the PR exists for. Entries are
// immutable once inserted (shared_ptr<const>), so handlers running on
// pool threads read them without further locking; the cache mutex only
// guards the index. Concurrent misses on the same key may both compute
// and insert — the first insert wins (results are identical by
// determinism), and put_* returns the winning entry so every racer serves
// exactly what the cache retained.
//
// Eviction is cost-aware, not just count-based: every entry is weighed by
// its design footprint plus DesignEmbeddings::approx_bytes(), and the LRU
// tail is evicted while either the design count exceeds `max_designs` or
// the total weight exceeds `max_bytes` — so one huge design cannot pin
// memory that many cheap hot designs would use better. The most recently
// used entry is never evicted by the byte budget (a single over-budget
// design must still be servable).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "atlas/model.h"
#include "graph/submodule_graph.h"
#include "netlist/netlist.h"

namespace atlas::serve {

/// Cached per-design preprocessing output.
struct DesignArtifacts {
  netlist::Netlist gate;
  std::vector<graph::SubmoduleGraph> graphs;
  /// Sub-modules created by the structural fallback splitter (0 when the
  /// netlist arrived with sub-module attributes).
  int structural_submodules = 0;
  /// The library `gate` was parsed against. Netlist keeps a raw reference
  /// to its library, so the cache entry must co-own it: a cached design may
  /// outlive the model (and library) binding that created it once models
  /// are unloadable at runtime.
  std::shared_ptr<const liberty::Library> library;
};

/// Key for the design-artifact layer: netlist text hash mixed with the
/// library content hash, so identical Verilog parsed against different
/// substrates occupies distinct entries.
std::uint64_t design_cache_key(std::uint64_t netlist_hash,
                               std::uint64_t library_hash);

/// Approximate resident size of a design entry (netlist + graphs), used to
/// weigh eviction victims alongside their embeddings' approx_bytes().
std::size_t approx_design_bytes(const DesignArtifacts& d);

struct EmbeddingKey {
  std::string model;
  std::string workload;
  std::int32_t cycles = 0;
  /// Content hash of an externally supplied toggle trace; 0 for the
  /// built-in synthetic workloads (whose name + cycles pin the stimulus).
  std::uint64_t trace_hash = 0;
  /// ModelEntry::generation of the artifact that computed the embeddings.
  /// A reload under the same name bumps it, so stale embeddings from the
  /// replaced artifact can never satisfy a lookup for the new one.
  std::uint64_t generation = 0;

  bool operator<(const EmbeddingKey& o) const {
    return std::tie(model, workload, cycles, trace_hash, generation) <
           std::tie(o.model, o.workload, o.cycles, o.trace_hash, o.generation);
  }
};

struct FeatureCacheStats {
  std::uint64_t design_hits = 0;
  std::uint64_t design_misses = 0;
  std::uint64_t embedding_hits = 0;
  std::uint64_t embedding_misses = 0;
  std::uint64_t design_evictions = 0;
  /// Freshly computed embeddings that could not be cached because their
  /// design entry was evicted between the handler's lookup and the insert.
  /// The inserting request still serves them (put_embeddings returns the
  /// caller's pointer), but future requests must recompute — nonzero values
  /// mean encoder work is being repeated; size the cache up.
  std::uint64_t embedding_drops = 0;
};

class FeatureCache {
 public:
  /// `max_designs` bounds the design layer (LRU); `max_embeddings_per_design`
  /// bounds each entry's embedding map (oldest-inserted evicted first);
  /// `max_bytes` bounds the summed approximate weight of designs +
  /// embeddings (0 = unlimited).
  explicit FeatureCache(std::size_t max_designs = 16,
                        std::size_t max_embeddings_per_design = 8,
                        std::size_t max_bytes = 0);

  std::shared_ptr<const DesignArtifacts> find_design(std::uint64_t key);
  /// Insert `d`, returning the entry that will serve future lookups. When a
  /// concurrent request already populated the key (both computed after
  /// racing on the same miss), the first insert wins and the loser gets the
  /// winner's pointer back — identical content by determinism, but callers
  /// must serve the returned entry so what they answer is what the cache
  /// holds.
  std::shared_ptr<const DesignArtifacts> put_design(
      std::uint64_t key, std::shared_ptr<const DesignArtifacts> d);

  std::shared_ptr<const core::DesignEmbeddings> find_embeddings(
      std::uint64_t design_key, const EmbeddingKey& emb_key);
  /// Insert freshly computed embeddings, returning the winning entry. Three
  /// cases: (a) normal insert — returns `emb`; (b) a racing request
  /// inserted the same key first — first insert wins, returns the cached
  /// pointer and `emb` is discarded; (c) the design entry was evicted
  /// between the handler's lookup and this insert — the embeddings cannot
  /// be cached (counted in embedding_drops), but `emb` itself is returned
  /// so the losing request still serves the encoder output it just paid
  /// for instead of failing or recomputing.
  std::shared_ptr<const core::DesignEmbeddings> put_embeddings(
      std::uint64_t design_key, const EmbeddingKey& emb_key,
      std::shared_ptr<const core::DesignEmbeddings> emb);

  /// Non-mutating presence probes for admission control (the overload shed
  /// path classifies a request warm/cold *before* deciding whether to queue
  /// it): no LRU touch, no hit/miss accounting — a shed decision must not
  /// perturb eviction order or the cache's observability.
  bool peek_design(std::uint64_t key) const;
  bool peek_embeddings(std::uint64_t design_key,
                       const EmbeddingKey& emb_key) const;

  FeatureCacheStats stats() const;
  std::size_t num_designs() const;
  /// Approximate bytes held by cached embeddings (all designs).
  std::size_t embedding_bytes() const;
  /// Approximate bytes held by the whole cache (designs + embeddings) —
  /// the quantity the `max_bytes` budget bounds.
  std::size_t total_bytes() const;

 private:
  struct Entry {
    std::shared_ptr<const DesignArtifacts> design;
    std::size_t design_bytes = 0;
    // Insertion-ordered for simple FIFO eviction within one design.
    std::map<EmbeddingKey, std::shared_ptr<const core::DesignEmbeddings>>
        embeddings;
    std::list<EmbeddingKey> embedding_order;
    std::list<std::uint64_t>::iterator lru_pos;
  };

  // Caller must hold mu_. Moves `key` to the front of the LRU list.
  void touch(std::uint64_t key, Entry& e);
  // Caller must hold mu_. Evicts the LRU tail while the design count is
  // over max_designs_ or the byte weight is over max_bytes_ (never the
  // MRU entry for the byte budget).
  void evict_if_needed();
  // Caller must hold mu_. Mirrors stats_/occupancy onto the global
  // atlas_serve_cache_* gauges after every mutation.
  void publish_gauges() const;

  const std::size_t max_designs_;
  const std::size_t max_embeddings_per_design_;
  const std::size_t max_bytes_;

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::list<std::uint64_t> lru_;  // front = most recently used
  FeatureCacheStats stats_;
  std::size_t embedding_bytes_ = 0;  // approx bytes across all entries
  std::size_t design_bytes_ = 0;     // approx bytes of design artifacts
};

}  // namespace atlas::serve
