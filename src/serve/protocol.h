// Wire protocol for the atlas_serve daemon.
//
// Every message is one length-prefixed binary frame:
//
//   offset  size  field
//   0       4     magic "ATSP"
//   4       4     message type (u32, little-endian like all payloads)
//   8       8     payload length in bytes (u64)
//   16      ...   payload (type-specific, encoded with util/serialize)
//
// The header is fixed-size so a reader can validate the magic and the
// declared length *before* allocating: declared lengths above
// `max_frame_bytes` are rejected without reading the payload, and payload
// decoding reuses the hardened util/serialize codecs, so truncated or
// hostile frames surface as ProtocolError / SerializeError — never as an
// allocation bomb or a crash.
//
// Requests: Ping, Predict, ListModels, Stats, Shutdown, Metrics,
// StreamBegin, StreamChunk, StreamEnd, LoadModel, UnloadModel, Health,
// TraceDump.
// Responses: Pong, PredictOk, ModelList, StatsText, ShutdownOk,
// MetricsText, StreamAck, AdminOk, HealthReport, TraceJson, Error.
// One response frame per request frame, in request order per connection.
//
// Protocol v2 (kProtocolVersion) adds optional extension *tails*: extra
// fields appended after a payload's base fields, carrying the distributed
// trace context on requests (RequestTraceExt) and the per-phase server
// timing breakdown on PredictOk (ServerTiming). Tails are
// backward/forward compatible by construction — see kProtocolVersion.
// Metrics and Stats requests additionally accept an optional string
// payload ("fleet" / "json") selecting an alternate rendering; servers
// that predate it ignore request payloads on those types entirely.
//
// Health is the readiness probe a routing tier keys decisions off: unlike
// ping (which only proves the accept loop is alive) it reports registry
// generation, feature-cache occupancy, dispatcher queue depth and drain
// state, so a prober can tell "up", "up but draining" and "up but
// overloaded" apart without scraping the full metrics text.
//
// LoadModel / UnloadModel mutate the daemon's model registry at runtime
// (pick up a freshly fine-tuned artifact, retire an old one) and are only
// honored when the daemon was started with --allow-admin — otherwise they
// answer kAdminDisabled. Load failures (unreadable path, corrupt artifact,
// bad Liberty file) answer kBadRequest and leave the registry untouched;
// the connection survives either way.
//
// The stream family uploads a client-supplied per-cycle toggle trace (VCD
// subset) too large for one frame: StreamBegin declares the model, netlist,
// cycle count and total trace size; each StreamChunk carries the next slice
// (sequence-numbered, acknowledged); StreamEnd closes the upload and is
// answered with the prediction itself (PredictOk) or an Error. Assembly
// state is per-connection, bounded by the declared size (itself capped),
// ordered by sequence number, and subject to the request deadline from the
// StreamBegin frame onward — a malformed, interleaved or abandoned stream
// costs one error reply or a dropped connection, never daemon state.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "power/power_analyzer.h"
#include "util/socket.h"

namespace atlas::serve {

class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr char kFrameMagic[4] = {'A', 'T', 'S', 'P'};
inline constexpr std::size_t kFrameHeaderBytes = 16;
inline constexpr std::size_t kDefaultMaxFrameBytes = 64ull << 20;  // 64 MiB

/// ATSP protocol version. v1: PRs 2–7 (no trace context). v2: optional
/// trace-context / server-timing extension tails on Predict and
/// StreamBegin requests and the PredictOk response, plus the TraceDump
/// admin request. The version is *not* negotiated on the wire — v2 relies
/// on v1 decoders ignoring trailing payload bytes, so every pairing of
/// old/new client/server interoperates:
///
///   * v2 -> v1: the extension tail rides after the base fields; a v1
///     decoder reads exactly the base fields and never looks further.
///   * v1 -> v2: no tail present; the v2 decoder detects end-of-payload
///     and proceeds with an absent context (the server then generates a
///     root context, so old clients still get coherent server-side spans).
///   * future vN -> v2: the tail leads with its own version tag; a v2
///     decoder skips tails it does not understand.
inline constexpr std::uint32_t kProtocolVersion = 2;
inline constexpr std::uint32_t kTraceExtVersion = 2;

enum class MsgType : std::uint32_t {
  // Requests.
  kPing = 1,
  kPredict = 2,
  kListModels = 3,
  kStats = 4,
  kShutdown = 5,
  kMetrics = 6,
  kStreamBegin = 7,
  kStreamChunk = 8,
  kStreamEnd = 9,
  kLoadModel = 10,
  kUnloadModel = 11,
  kHealth = 12,
  /// Admin-gated: drain the process's span ring and answer kTraceJson with
  /// the Chrome trace JSON (each recorded event is returned exactly once
  /// across successive dumps). The router additionally fans this out to
  /// every backend and answers with the merged fleet trace.
  kTraceDump = 13,
  // Responses.
  kPong = 100,
  kPredictOk = 101,
  kModelList = 102,
  kStatsText = 103,
  kShutdownOk = 104,
  kMetricsText = 105,
  kStreamAck = 106,
  kAdminOk = 107,
  kHealthReport = 108,
  kTraceJson = 109,
  kError = 199,
};

enum class ErrorCode : std::uint32_t {
  kBadRequest = 1,       // undecodable payload / bad frame
  kUnknownModel = 2,     // model name not in the registry
  kUnknownWorkload = 3,  // workload name not recognized
  kDeadlineExceeded = 4, // request expired (queued, streaming, or computing)
  kShuttingDown = 5,     // server is draining
  kInternal = 6,         // handler threw (bad netlist, ...)
  kStreamProtocol = 7,   // stream state violation (order, size, no begin)
  kAdminDisabled = 8,    // load/unload without --allow-admin
  kUnknownDesign = 9,    // design_hash not in the cache; re-send the netlist
  /// Admission control: the server is past its cold-request depth watermark
  /// and this request would need encode-heavy work (design or embeddings not
  /// cached). The request was not queued; retry elsewhere or later. Warm
  /// requests are never shed — answering from the cache is cheaper than the
  /// round trip it would take the client to go anywhere else.
  kOverloaded = 10,
};

/// Stable enum-style name ("kUnknownModel", ...) for diagnostics and smoke
/// scripts that assert on error classes; values outside the enum render as
/// "kUnknownErrorCode".
const char* error_code_name(ErrorCode code);

struct Frame {
  MsgType type = MsgType::kPing;
  std::string payload;
};

/// Serialize a frame (header + payload) into wire bytes.
std::string encode_frame(MsgType type, const std::string& payload);

/// Write one frame to a socket.
void write_frame(util::Socket& sock, MsgType type, const std::string& payload);

/// Read one frame. Returns false on clean EOF at a frame boundary. Throws
/// ProtocolError on bad magic, unreasonable declared length (checked
/// against `max_frame_bytes` before any payload allocation), or truncation.
bool read_frame(util::Socket& sock, Frame& out,
                std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

// ---- Request payloads -----------------------------------------------------

/// v2 extension tail shared by Predict and StreamBegin requests: the
/// distributed trace context plus per-request flags. Encoded only when it
/// carries information (context valid or want_timing set), so v2 clients
/// with tracing off emit byte-identical v1 payloads.
///
/// `trace.span_id` on the wire is the *sender's* current span — the
/// receiver installs the context as-is and its spans parent under it.
struct RequestTraceExt {
  obs::TraceContext trace;
  /// Ask the server to attach the per-phase ServerTiming breakdown to the
  /// PredictOk response (independent of tracing/sampling).
  bool want_timing = false;
  /// Ask the server to append a LoadReport tail to the response (set by the
  /// routing tier on forwarded predicts, and stripped by it before the
  /// reply reaches the client). This is what makes the router's per-backend
  /// load signal request-fresh instead of probe-fresh.
  bool want_queue_depth = false;

  bool should_encode() const {
    return trace.valid() || want_timing || want_queue_depth;
  }
};

struct PredictRequest {
  std::string model;            // registry name
  std::string netlist_verilog;  // gate-level structural Verilog text
  std::string workload;         // "w1" | "w2"
  std::int32_t cycles = 300;
  std::uint32_t deadline_ms = 0;     // 0 = no deadline
  bool want_submodules = false;      // include per-sub-module rows
  RequestTraceExt ext;               // v2 optional tail

  std::string encode() const;
  static PredictRequest decode(const std::string& payload);
};

/// Trace encodings accepted by the stream family. decode() rejects any
/// other value with ProtocolError (answered as kBadRequest) so an unknown
/// format can never misparse chunk bytes later.
enum class TraceFormat : std::uint32_t {
  kVcdText = 1,      // the write_vcd / parse_vcd subset
  kToggleDelta = 2,  // binary ATDT toggle-delta (sim/delta_trace.h)
};

/// Opens a streamed-workload upload. The prediction parameters travel here;
/// the trace bytes follow in StreamChunk frames.
struct StreamBeginRequest {
  std::string model;            // registry name
  std::string netlist_verilog;  // gate-level structural Verilog text
  TraceFormat format = TraceFormat::kVcdText;
  /// Expected trace cycle count; 0 = accept whatever the trace contains.
  /// Nonzero values are enforced against the parsed trace.
  std::int32_t cycles = 0;
  std::uint32_t deadline_ms = 0;  // 0 = none; runs from StreamBegin receipt
  bool want_submodules = false;
  /// Declared total trace size; chunks may not exceed it and StreamEnd
  /// checks the sum matches. Capped server-side (max_stream_bytes).
  std::uint64_t trace_bytes = 0;
  /// Design-by-hash: nonzero = reference an already-cached design by the
  /// FNV-1a hash of its Verilog text instead of re-sending it (leave
  /// netlist_verilog empty). A hash the server's cache doesn't hold answers
  /// kUnknownDesign — at StreamBegin when possible, or at predict time if
  /// the entry was evicted mid-upload — and the client falls back to a full
  /// upload. 0 = not used.
  std::uint64_t design_hash = 0;
  RequestTraceExt ext;  // v2 optional tail

  std::string encode() const;
  static StreamBeginRequest decode(const std::string& payload);
};

struct StreamChunk {
  std::uint64_t seq = 0;  // 0-based, must arrive consecutively
  std::string data;

  std::string encode() const;
  static StreamChunk decode(const std::string& payload);
};

struct StreamEndRequest {
  std::uint64_t total_chunks = 0;
  std::uint64_t total_bytes = 0;  // must equal the assembled size

  std::string encode() const;
  static StreamEndRequest decode(const std::string& payload);
};

/// Load (or replace) a model artifact on the server at runtime. Paths are
/// resolved on the *server's* filesystem. Answered with AdminOk or Error.
struct LoadModelRequest {
  std::string name;          // registry name to publish under
  std::string path;          // AtlasModel artifact on the server
  std::string library_path;  // Liberty file; empty = server default library

  std::string encode() const;
  static LoadModelRequest decode(const std::string& payload);
};

/// Retire a registry name. In-flight requests pinned to the old entry still
/// complete; new requests answer kUnknownModel. Answered with AdminOk.
struct UnloadModelRequest {
  std::string name;

  std::string encode() const;
  static UnloadModelRequest decode(const std::string& payload);
};

// ---- Response payloads ----------------------------------------------------

/// Acknowledges StreamBegin (seq = 0, received = 0) and each StreamChunk
/// (seq = the chunk's sequence number, received = assembled bytes so far).
struct StreamAck {
  std::uint64_t seq = 0;
  std::uint64_t received_bytes = 0;

  std::string encode() const;
  static StreamAck decode(const std::string& payload);
};

/// Cache-path flags reported back to the client (and asserted by tests).
inline constexpr std::uint32_t kCacheHitDesign = 1u << 0;      // graphs reused
inline constexpr std::uint32_t kCacheHitEmbeddings = 1u << 1;  // encoder skipped

/// Per-phase server-side breakdown of one predict request, in
/// microseconds. Carried on the PredictOk response when the request asked
/// for it (want_timing), and logged by the server's slow-request log.
/// Phases are disjoint; total_us additionally covers glue between them, so
/// the sum of phases is <= total_us.
///
/// batch_wait_us and queue_us split what one "queue" phase used to
/// double-count: time parked in the dispatcher queue while a batch formed
/// (batch_wait_us; for streamed requests this also spans chunk assembly,
/// since the clock starts at StreamBegin receipt) versus handoff from batch
/// formation to the handler actually starting (queue_us). The split is what
/// makes the reported phases add up to the end-to-end latency.
struct ServerTiming {
  std::uint64_t batch_wait_us = 0;  // enqueue -> dispatcher batch formed
  std::uint64_t queue_us = 0;       // batch formed -> handler entry
  std::uint64_t cache_us = 0;       // feature-cache lookups
  std::uint64_t encode_us = 0;      // parse/sim/feature/encoder work
  std::uint64_t predict_us = 0;     // GBDT head evaluation
  std::uint64_t serialize_us = 0;   // response payload encode
  std::uint64_t total_us = 0;       // enqueue -> response encoded
};

/// Version tag of the PredictOk timing tail. v3 added batch_wait_us; the
/// decoder still accepts v2 tails (six fields, batch_wait_us reads as 0)
/// from older servers, and pre-v3 clients simply ignore a v3 tail.
inline constexpr std::uint32_t kTimingTailVersion = 3;

struct PredictResponse {
  std::uint32_t cache_flags = 0;
  double server_seconds = 0.0;  // handler wall-clock on the server
  std::int32_t num_cycles = 0;
  std::uint64_t num_submodules = 0;
  std::vector<power::GroupPower> design;     // [cycle]
  std::vector<power::GroupPower> submodule;  // [cycle*nsm + sm], optional
  /// v2 optional tail: set only when the request carried want_timing and
  /// the server understands v2.
  bool has_timing = false;
  ServerTiming timing;

  bool design_cache_hit() const { return cache_flags & kCacheHitDesign; }
  bool embedding_cache_hit() const { return cache_flags & kCacheHitEmbeddings; }

  std::string encode() const;
  static PredictResponse decode(const std::string& payload);
};

/// Append the v2 timing tail to an already-encoded PredictResponse base
/// payload. The server uses this to measure serialize_us over the base
/// encode itself and then attach the finished numbers without re-encoding;
/// PredictResponse::encode() with has_timing produces identical bytes.
void append_timing_ext(std::string& payload, const ServerTiming& timing);

/// Per-response load piggyback (want_queue_depth): a fixed-size tail the
/// server appends after every other tail on the reply to a request that
/// asked for it, and the routing tier strips before relaying — clients
/// never see it, so routed responses stay bit-identical to direct serving.
///
/// `load` counts jobs admitted but not yet answered (queued + in flight),
/// which is the signal a replica-routing policy needs: the dispatcher
/// drains its queue into a forming batch immediately, so the health
/// `queue_depth` alone reads ~0 even on a saturated shard.
struct LoadReport {
  std::uint64_t load = 0;
  std::uint64_t flags = 0;

  /// flags bit 0: the serving-side phase split for this request was
  /// dominated by waiting (batch_wait_us + queue_us > half of total_us) —
  /// the PR 8 slow-log signal the router's shed policy keys off.
  static constexpr std::uint64_t kFlagWaitDominated = 1ull << 0;
  bool wait_dominated() const { return (flags & kFlagWaitDominated) != 0; }
};

/// The tail is self-delimiting from the *end* of the payload: 8 magic bytes
/// ("ATLDRPT1") + 2 u64s, total 24 bytes. Leading with magic-from-the-end
/// (rather than a version tag after the base fields) lets the router strip
/// it from any response type — PredictOk with or without a timing tail,
/// Error — without understanding the payload it rides on, and lets old
/// decoders ignore it exactly like any other trailing bytes.
inline constexpr std::size_t kLoadExtBytes = 24;
void append_load_ext(std::string& payload, const LoadReport& report);

/// Removes a trailing load tail from `payload` if one is present, filling
/// `out`. Returns false (payload untouched) when the tail is absent — e.g.
/// the backend predates want_queue_depth and ignored the flag.
bool strip_load_ext(std::string& payload, LoadReport& out);

struct ModelInfo {
  std::string name;
  std::uint64_t encoder_dim = 0;
  /// Name of the Liberty library the model is bound to.
  std::string library;
  /// Registry generation of the current binding (bumped by every reload).
  std::uint64_t generation = 0;
  /// liberty::content_hash of that library — the second component of the
  /// design-cache key. A routing tier mixes this with the netlist content
  /// hash so one (design, substrate) pair lives on exactly one shard, and
  /// model names sharing a substrate share that shard's parsed designs.
  std::uint64_t library_hash = 0;
};

struct ModelListResponse {
  std::vector<ModelInfo> models;

  std::string encode() const;
  static ModelListResponse decode(const std::string& payload);
};

/// Rich readiness report (kHealth -> kHealthReport). Every field is a value
/// the server already tracks (registry counter, feature-cache occupancy,
/// dispatcher queue) — this request just snapshots them in one frame.
struct HealthResponse {
  /// Registry-wide load counter: bumps on every model (re)load, so a
  /// routing tier can detect "this shard saw an admin change".
  std::uint64_t registry_generation = 0;
  std::uint64_t num_models = 0;
  /// Feature-cache occupancy: design entries and approximate bytes held.
  std::uint64_t cache_designs = 0;
  std::uint64_t cache_total_bytes = 0;
  std::uint64_t cache_embedding_bytes = 0;
  /// Predict jobs waiting for the dispatcher (not yet running).
  std::uint64_t queue_depth = 0;
  /// True once the server started draining (stop requested or stopping):
  /// answer what's in flight, send no new work here.
  bool draining = false;

  std::string encode() const;
  static HealthResponse decode(const std::string& payload);
};

struct ErrorResponse {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  std::string encode() const;
  static ErrorResponse decode(const std::string& payload);
};

/// StatsText and Pong/ShutdownOk payloads are a bare string / empty.
std::string encode_string_payload(const std::string& s);
std::string decode_string_payload(const std::string& payload);

}  // namespace atlas::serve
