#include "serve/registry.h"

namespace atlas::serve {

void ModelRegistry::load(const std::string& name, const std::string& path) {
  auto model =
      std::make_shared<const core::AtlasModel>(core::AtlasModel::load(path));
  add(name, std::move(model));
}

void ModelRegistry::add(const std::string& name,
                        std::shared_ptr<const core::AtlasModel> m) {
  std::lock_guard<std::mutex> lock(mu_);
  models_[name] = std::move(m);
}

std::shared_ptr<const core::AtlasModel> ModelRegistry::get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

std::vector<std::pair<std::string, std::size_t>> ModelRegistry::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::size_t>> out;
  out.reserve(models_.size());
  for (const auto& [name, model] : models_) {
    out.emplace_back(name, model->encoder().dim());
  }
  return out;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return models_.size();
}

}  // namespace atlas::serve
